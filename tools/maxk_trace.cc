/**
 * @file
 * maxk-trace: run an instrumented end-to-end scenario and emit the
 * observability artifacts of ISSUE 10:
 *
 *   <dir>/trace.json    Chrome trace_event JSON (chrome://tracing /
 *                       Perfetto) with the wall-clock and deterministic
 *                       sim-seconds tracks
 *   <dir>/metrics.txt   MetricsRegistry text dump
 *
 * The scenario is a 4-rank sharded training run (with end-of-epoch
 * checkpointing), a pipelined mini-batch run, and a short online
 * serving replay, all on small synthetic twins — enough to light up
 * every instrumented subsystem: per-layer forward/backward,
 * kernel-dispatch markers, sampler pipeline, per-rank comm spans,
 * checkpoint save/restore, and the serve batcher (whose spans carry
 * the deterministic sim-seconds durations for the second trace lane).
 *
 * Before writing anything the tool cross-checks, in-process, that the
 * per-phase span totals from the trace buffers reconcile exactly with
 * the span.count/span.wall_ns/span.sim_ns counters in the metrics
 * snapshot (the ISSUE 10 acceptance criterion), then re-reads
 * trace.json from disk, validates that it parses as JSON, and checks
 * the required span names are present.
 *
 * Exit status: 0 all checks passed, 1 a check failed, 2 usage.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"
#include "dist/sharded_trainer.hh"
#include "graph/partition.hh"
#include "graph/registry.hh"
#include "nn/model.hh"
#include "nn/trainer.hh"
#include "sample/sampled_trainer.hh"
#include "serve/session.hh"

using namespace maxk;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "\n"
        "Run a 4-rank sharded + pipelined mini-batch + serving\n"
        "scenario with telemetry armed, write trace.json + metrics.txt,\n"
        "and verify the trace reconciles with the metrics snapshot.\n"
        "\n"
        "options:\n"
        "  --dir D   output directory (default: maxk-trace-out)\n"
        "  --seed N  scenario seed (default 2024)\n",
        argv0);
    return 2;
}

bool
check(bool ok, const char *what)
{
    std::printf("%s %s\n", ok ? "ok:" : "FAILED:", what);
    return ok;
}

/** Flickr accuracy twin scaled down to CLI size (same shape as
 *  maxk-faults). */
TrainingTask
smallTask(NodeId nodes)
{
    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = nodes;
    task.accuracyAvgDegree = 8.0;
    return task;
}

nn::ModelConfig
smallModel(const TrainingTask &task)
{
    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nn::Nonlinearity::MaxK;
    cfg.maxkK = 8;
    cfg.numLayers = 2;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 32;
    cfg.outDim = task.numClasses;
    cfg.dropout = 0.2f;
    return cfg;
}

/* --------------------------------------------- minimal JSON validator */

/**
 * Recursive-descent validator for the written trace file. Accepts
 * exactly the JSON grammar (json.org); no DOM is built. Good enough to
 * prove "a JSON consumer can load this file" without external deps.
 */
class JsonValidator
{
  public:
    explicit JsonValidator(std::string_view text)
        : p_(text.data()), end_(text.data() + text.size())
    {
    }

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return p_ == end_;
    }

  private:
    void skipWs()
    {
        while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                             *p_ == '\r'))
            ++p_;
    }

    bool literal(const char *s)
    {
        const std::size_t n = std::strlen(s);
        if (static_cast<std::size_t>(end_ - p_) < n ||
            std::memcmp(p_, s, n) != 0)
            return false;
        p_ += n;
        return true;
    }

    bool string()
    {
        if (p_ >= end_ || *p_ != '"')
            return false;
        ++p_;
        while (p_ < end_ && *p_ != '"') {
            if (*p_ == '\\') {
                ++p_;
                if (p_ >= end_)
                    return false;
                if (*p_ == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++p_;
                        if (p_ >= end_ || !std::isxdigit(
                                              static_cast<unsigned char>(
                                                  *p_)))
                            return false;
                    }
                }
            }
            ++p_;
        }
        if (p_ >= end_)
            return false;
        ++p_; // closing quote
        return true;
    }

    bool number()
    {
        const char *start = p_;
        if (p_ < end_ && *p_ == '-')
            ++p_;
        while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_)))
            ++p_;
        if (p_ < end_ && *p_ == '.') {
            ++p_;
            while (p_ < end_ &&
                   std::isdigit(static_cast<unsigned char>(*p_)))
                ++p_;
        }
        if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
            ++p_;
            if (p_ < end_ && (*p_ == '+' || *p_ == '-'))
                ++p_;
            while (p_ < end_ &&
                   std::isdigit(static_cast<unsigned char>(*p_)))
                ++p_;
        }
        return p_ > start;
    }

    bool value()
    {
        skipWs();
        if (p_ >= end_)
            return false;
        switch (*p_) {
        case '{': {
            ++p_;
            skipWs();
            if (p_ < end_ && *p_ == '}') {
                ++p_;
                return true;
            }
            for (;;) {
                skipWs();
                if (!string())
                    return false;
                skipWs();
                if (p_ >= end_ || *p_ != ':')
                    return false;
                ++p_;
                if (!value())
                    return false;
                skipWs();
                if (p_ < end_ && *p_ == ',') {
                    ++p_;
                    continue;
                }
                break;
            }
            if (p_ >= end_ || *p_ != '}')
                return false;
            ++p_;
            return true;
        }
        case '[': {
            ++p_;
            skipWs();
            if (p_ < end_ && *p_ == ']') {
                ++p_;
                return true;
            }
            for (;;) {
                if (!value())
                    return false;
                skipWs();
                if (p_ < end_ && *p_ == ',') {
                    ++p_;
                    continue;
                }
                break;
            }
            if (p_ >= end_ || *p_ != ']')
                return false;
            ++p_;
            return true;
        }
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    const char *p_;
    const char *end_;
};

/* --------------------------------------------------------- scenario */

void
runShardedScenario(std::uint64_t seed, const std::string &ckpt_dir)
{
    const TrainingTask task = smallTask(400);
    Rng rng(seed);
    TrainingData data = materializeTrainingData(task, rng);
    const nn::ModelConfig cfg = smallModel(task);
    Rng prng(seed ^ 0x9E37ull);
    const Partition parts = bfsPartition(data.graph, 4, prng);

    nn::TrainConfig tc;
    tc.epochs = 4;
    tc.evalEvery = 2;
    tc.checkpointDir = ckpt_dir;
    tc.checkpointEvery = 2;
    tc.telemetry = true;

    dist::ShardedTrainer trainer(cfg, data, task, parts);
    trainer.run(tc);
}

void
runSampledScenario(std::uint64_t seed)
{
    const TrainingTask task = smallTask(400);
    Rng rng(seed ^ 0xABCDull);
    TrainingData data = materializeTrainingData(task, rng);
    nn::GnnModel model(smallModel(task));

    sample::SamplerConfig scfg;
    scfg.fanouts = {6, 6};
    scfg.batchSize = 64;
    scfg.seed = seed;
    sample::SampledTrainer trainer(model, data, task, scfg);

    sample::SampledTrainConfig tc;
    tc.epochs = 2;
    tc.evalEvery = 2;
    tc.pipeline = true;
    tc.queueDepth = 2;
    tc.telemetry = true;
    trainer.run(tc);
}

/** A short serve replay: serve.batch spans carry setSimSeconds(), so
 *  this is what populates the deterministic sim-seconds trace lane
 *  (and the serve.latency_ns histogram in metrics.txt). */
void
runServeScenario(std::uint64_t seed)
{
    const TrainingTask task = smallTask(400);
    Rng rng(seed ^ 0x5E12ull);
    TrainingData data = materializeTrainingData(task, rng);
    nn::GnnModel model(smallModel(task));
    {
        sample::SamplerConfig scfg;
        scfg.fanouts = {6, 6};
        scfg.batchSize = 64;
        scfg.seed = seed;
        sample::SampledTrainer trainer(model, data, task, scfg);
        sample::SampledTrainConfig tc;
        tc.epochs = 1;
        tc.evalEvery = 1;
        trainer.run(tc);
    }

    std::vector<serve::ServeRequest> trace(48);
    Rng traffic(seed);
    double t = 0.0;
    for (serve::ServeRequest &req : trace) {
        t += 2e-4;
        req.arrivalSimSeconds = t;
        req.vertex = traffic.nextBounded(data.graph.numNodes());
    }

    serve::ServeConfig scfg;
    scfg.fanout = 6;
    scfg.cacheFraction = 0.25;
    scfg.lruSlots = 32;
    scfg.seed = seed;
    serve::ServeSession session(model, data.graph, data.features, scfg);

    telemetry::ArmGuard arm(true);
    auto rep = session.replay(trace);
    if (!rep.hasValue())
        fatal("maxk-trace: serve replay rejected: " +
              rep.error().message);
}

/* ---------------------------------------------------- reconciliation */

struct PhaseTotals
{
    std::uint64_t count = 0;
    std::uint64_t wallNs = 0;
    std::uint64_t simNs = 0;
};

/** Sum the raw span buffers per phase name. */
std::map<std::string, PhaseTotals>
spanTotals(const std::vector<telemetry::SpanRecord> &spans)
{
    std::map<std::string, PhaseTotals> totals;
    for (const telemetry::SpanRecord &s : spans) {
        PhaseTotals &t = totals[s.name];
        t.count += 1;
        t.wallNs += s.durNs;
        if (s.simNs >= 0)
            t.simNs += static_cast<std::uint64_t>(s.simNs);
    }
    return totals;
}

bool
reconcile(const telemetry::MetricsSnapshot &snap,
          const std::map<std::string, PhaseTotals> &totals)
{
    bool ok = true;
    // Every phase seen in the trace must match its three counters...
    for (const auto &[name, t] : totals) {
        const std::uint64_t count = snap.counter("span.count." + name);
        const std::uint64_t wall = snap.counter("span.wall_ns." + name);
        const std::uint64_t sim = snap.counter("span.sim_ns." + name);
        const bool match =
            count == t.count && wall == t.wallNs && sim == t.simNs;
        if (!match) {
            std::printf("MISMATCH %s: trace {count=%llu wall=%llu "
                        "sim=%llu} vs metrics {count=%llu wall=%llu "
                        "sim=%llu}\n",
                        name.c_str(),
                        static_cast<unsigned long long>(t.count),
                        static_cast<unsigned long long>(t.wallNs),
                        static_cast<unsigned long long>(t.simNs),
                        static_cast<unsigned long long>(count),
                        static_cast<unsigned long long>(wall),
                        static_cast<unsigned long long>(sim));
            ok = false;
        }
    }
    // ...and every nonzero span.count counter must be backed by spans
    // (an uncounted phase would mean the buffers dropped events).
    for (const auto &[name, value] : snap.counters) {
        constexpr std::string_view prefix = "span.count.";
        if (value == 0 || name.rfind(prefix, 0) != 0)
            continue;
        const std::string phase = name.substr(prefix.size());
        if (!totals.count(phase)) {
            std::printf("MISMATCH %s = %llu but no spans recorded\n",
                        name.c_str(),
                        static_cast<unsigned long long>(value));
            ok = false;
        }
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir = "maxk-trace-out";
    std::uint64_t seed = 2024;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dir" && i + 1 < argc) {
            dir = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            return usage(argv[0]);
        }
    }

    // Stale checkpoints from a previous run would make the sharded
    // trainer resume past its final epoch and record no spans at all.
    std::filesystem::remove_all(dir + "/ckpt");
    std::filesystem::create_directories(dir);

    // Fresh slate so the reconciliation below is exact.
    telemetry::resetMetrics();
    telemetry::clearTrace();

    std::printf("scenario 1/3: 4-rank sharded training "
                "(checkpoints under %s/ckpt)\n",
                dir.c_str());
    runShardedScenario(seed, dir + "/ckpt");
    std::printf("scenario 2/3: pipelined mini-batch training\n");
    runSampledScenario(seed);
    std::printf("scenario 3/3: online serving replay\n");
    runServeScenario(seed);

    // In-process cross-check: span buffers vs reconciliation counters.
    const telemetry::MetricsSnapshot snap = telemetry::snapshotMetrics();
    const auto spans = telemetry::traceSnapshot();
    const auto totals = spanTotals(spans);

    std::printf("\n%-24s %10s %14s %14s\n", "phase", "count",
                "wall (ms)", "sim (ms)");
    for (const auto &[name, t] : totals)
        std::printf("%-24s %10llu %14.3f %14.3f\n", name.c_str(),
                    static_cast<unsigned long long>(t.count),
                    static_cast<double>(t.wallNs) / 1e6,
                    static_cast<double>(t.simNs) / 1e6);
    std::printf("\n");

    bool ok = true;
    ok &= check(!spans.empty(), "trace recorded spans");
    bool have_sim = false;
    for (const telemetry::SpanRecord &s : spans)
        have_sim |= s.simNs >= 0;
    ok &= check(have_sim, "sim-seconds lane populated");
    ok &= check(reconcile(snap, totals),
                "per-phase span totals reconcile with metrics snapshot");

    // Artifacts.
    const std::string trace_path = dir + "/trace.json";
    const std::string metrics_path = dir + "/metrics.txt";
    ok &= check(telemetry::writeChromeTrace(trace_path),
                "trace.json written");
    {
        std::ofstream out(metrics_path);
        out << snap.renderText();
        ok &= check(static_cast<bool>(out), "metrics.txt written");
    }

    // Re-read the trace from disk and validate it as a consumer would.
    std::string trace_text;
    {
        std::ifstream in(trace_path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        trace_text = buf.str();
    }
    ok &= check(JsonValidator(trace_text).valid(),
                "trace.json parses as JSON");

    const char *required[] = {
        "dist.epoch",        "dist.forward",      "dist.backward",
        "comm.allToAllv",    "comm.barrier",      "comm.allReduce",
        "nn.layer.forward",  "nn.layer.backward", "kernel.dispatch",
        "sample.epoch",      "sample.produce",    "sample.draw",
        "sample.extract",    "sample.train_step", "checkpoint.save",
        "serve.batch",
    };
    bool required_ok = true;
    for (const char *name : required) {
        const std::string needle =
            std::string("\"name\": \"") + name + "\"";
        const bool found =
            trace_text.find(needle) != std::string::npos;
        if (!found)
            std::printf("missing span: %s\n", name);
        required_ok &= found;
    }
    ok &= check(required_ok, "required span names present");

    std::printf("artifacts: %s, %s\n", trace_path.c_str(),
                metrics_path.c_str());
    if (!ok) {
        std::printf("maxk-trace: FAILED\n");
        return 1;
    }
    std::printf("maxk-trace: OK\n");
    return 0;
}
