/**
 * @file
 * maxk-convert: command-line converter between the three graph formats
 * the ingestion subsystem speaks (SNAP-style edge lists, the "maxk-csr"
 * text format, and the .maxkb binary container).
 *
 *   maxk-convert reddit.txt reddit.maxkb --symmetrize   # ingest once
 *   maxk-convert reddit.maxkb dump.csr                  # fast reload
 *   maxk-convert --validate reddit.maxkb                # check only
 *
 * Exit status: 0 success, 1 I/O or format error, 2 usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/formats/formats.hh"

using namespace maxk;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] <input> [<output>]\n"
        "\n"
        "Convert a graph between edge-list, text-CSR, and binary-CSR\n"
        "formats. With --validate and no <output>, only checks the\n"
        "input.\n"
        "\n"
        "options:\n"
        "  --from FMT    input format: auto|edgelist|textcsr|bincsr\n"
        "                (default auto: sniff file content)\n"
        "  --to FMT      output format (default: from the output\n"
        "                file extension: .maxkb/.csr/.txt/.tsv/.el)\n"
        "  --symmetrize  insert the reverse of every edge\n"
        "  --dedup       collapse duplicate edges (default)\n"
        "  --no-dedup    strict: duplicate edge-list records error\n"
        "  --zero-based  edge-list ids are 0-based (default: auto)\n"
        "  --one-based   edge-list ids are 1-based\n"
        "  --num-nodes N vertex-count override for edge lists\n"
        "  --no-values   drop edge values on output\n"
        "  --validate    print a summary and verify CSR invariants\n"
        "  -q, --quiet   suppress the summary line\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input, output;
    std::string from_name = "auto", to_name;
    formats::EdgeListOptions elopt;
    bool symmetrize = false, validate = false, quiet = false;
    bool with_values = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s requires an argument\n",
                             argv[0], flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--from") {
            const char *v = next_value("--from");
            if (v == nullptr)
                return 2;
            from_name = v;
        } else if (arg == "--to") {
            const char *v = next_value("--to");
            if (v == nullptr)
                return 2;
            to_name = v;
        } else if (arg == "--num-nodes") {
            const char *v = next_value("--num-nodes");
            if (v == nullptr)
                return 2;
            char *end = nullptr;
            const unsigned long long n = std::strtoull(v, &end, 10);
            if (end == v || *end != '\0' || n > 0xffffffffull) {
                std::fprintf(stderr, "%s: bad --num-nodes '%s'\n",
                             argv[0], v);
                return 2;
            }
            elopt.numNodes = static_cast<NodeId>(n);
        } else if (arg == "--symmetrize") {
            symmetrize = true;
        } else if (arg == "--dedup") {
            elopt.dedup = true;
        } else if (arg == "--no-dedup") {
            elopt.dedup = false;
        } else if (arg == "--zero-based") {
            elopt.base = formats::IndexBase::Zero;
        } else if (arg == "--one-based") {
            elopt.base = formats::IndexBase::One;
        } else if (arg == "--no-values") {
            with_values = false;
        } else if (arg == "--validate") {
            validate = true;
        } else if (arg == "-q" || arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            return 2;
        } else if (input.empty()) {
            input = arg;
        } else if (output.empty()) {
            output = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (input.empty() || (output.empty() && !validate))
        return usage(argv[0]);

    // Resolve the input format up front (explicit --from wins, else a
    // single content sniff) so the file is parsed exactly once —
    // edge-list symmetrisation happens at parse time, the CSR formats
    // get the identical post-load treatment.
    formats::GraphFormat in_fmt;
    if (from_name == "auto") {
        auto sniffed = formats::sniffFormat(input);
        if (!sniffed) {
            std::fprintf(stderr, "%s: %s\n", argv[0],
                         sniffed.error().describe().c_str());
            return 1;
        }
        in_fmt = sniffed.value();
    } else {
        const auto fmt = formats::graphFormatFromName(from_name);
        if (!fmt) {
            std::fprintf(stderr, "%s: unknown --from format '%s'\n",
                         argv[0], from_name.c_str());
            return 2;
        }
        in_fmt = *fmt;
    }
    if (in_fmt == formats::GraphFormat::EdgeList)
        elopt.symmetrize = symmetrize;

    GraphResult loaded = formats::loadGraphAs(in_fmt, input, elopt);
    if (!loaded) {
        std::fprintf(stderr, "%s: %s\n", argv[0],
                     loaded.error().describe().c_str());
        return 1;
    }
    CsrGraph g = std::move(loaded.value());
    if (symmetrize && in_fmt != formats::GraphFormat::EdgeList)
        g = formats::symmetrized(g);

    // --validate needs no extra check here: every loader enforces the
    // CSR invariants (formats::validateCsrArrays) before constructing
    // the graph, so a successful load IS the validation; it only
    // changes whether an <output> is required and what gets printed.

    if (!output.empty()) {
        formats::GraphFormat out_fmt;
        if (!to_name.empty()) {
            const auto fmt = formats::graphFormatFromName(to_name);
            if (!fmt) {
                std::fprintf(stderr, "%s: unknown --to format '%s'\n",
                             argv[0], to_name.c_str());
                return 2;
            }
            out_fmt = *fmt;
        } else {
            const auto fmt = formats::graphFormatFromExtension(output);
            if (!fmt) {
                std::fprintf(stderr,
                             "%s: cannot infer output format from '%s'; "
                             "pass --to\n",
                             argv[0], output.c_str());
                return 2;
            }
            out_fmt = *fmt;
        }
        if (!formats::saveGraphAs(out_fmt, g, output, with_values)) {
            std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                         output.c_str());
            return 1;
        }
        if (!quiet)
            std::printf("%s -> %s [%s]: %u nodes, %u edges, avg degree "
                        "%.2f\n",
                        input.c_str(), output.c_str(),
                        formats::graphFormatName(out_fmt), g.numNodes(),
                        g.numEdges(), g.avgDegree());
    } else if (!quiet) {
        std::printf("%s: OK — %u nodes, %u edges, avg degree %.2f, "
                    "structure %s\n",
                    input.c_str(), g.numNodes(), g.numEdges(),
                    g.avgDegree(),
                    g.structureSymmetric() ? "symmetric" : "directed");
    }
    return 0;
}
