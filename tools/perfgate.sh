#!/usr/bin/env bash
# Perf regression gate: run a bench with --json and compare the report
# against its committed baseline with maxk-perf-check.
#
#   perfgate.sh <bench-binary> <checker-binary> <baseline.json> <out.json>
#               [extra bench args...]
#
# The records are collected with the cache model off, so they are
# deterministic across machines — see bench/bench_perf_kernels.cc.
# MAXK_DATASET_DIR is cleared so a local dataset directory cannot swap a
# baseline twin for a real graph. MAXK_PERF_BLESS=1 refreshes the
# baseline from the current run instead of comparing (commit the result).
set -euo pipefail

if [ "$#" -lt 4 ]; then
    echo "usage: perfgate.sh <bench> <checker> <baseline.json> <out.json> [bench args...]" >&2
    exit 2
fi

bench=$1
checker=$2
baseline=$3
out=$4
shift 4

unset MAXK_DATASET_DIR
mkdir -p "$(dirname "$out")"

"$bench" --smoke --json "$out" "$@"

if [ "${MAXK_PERF_BLESS:-0}" = "1" ]; then
    cp "$out" "$baseline"
    echo "perfgate: blessed new baseline $baseline"
    exit 0
fi

exec "$checker" "$out" "$baseline"
