/**
 * @file
 * maxk-kernels: inspect the SpMM kernel registry and the adaptive
 * selector from the command line.
 *
 *   maxk-kernels list                       # enumerate registered variants
 *   maxk-kernels select reddit.maxkb        # decision for a graph file
 *   maxk-kernels select reddit.maxkb --dim 256 --k 32
 *
 * `select` loads the graph (format auto-sniffed, same ingest path as
 * maxk-convert), prints the feature vector the selector reads, and the
 * variant it picks with its justification — the CLI twin of setting
 * kernelVariant="auto" in a model config.
 *
 * Exit status: 0 success, 1 I/O or format error, 2 usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gpusim/device.hh"
#include "graph/formats/formats.hh"
#include "graph/stats.hh"
#include "kernels/registry.hh"
#include "kernels/selector.hh"

using namespace maxk;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s list\n"
        "       %s select <graph> [--dim N] [--k N] [--symmetrize]\n"
        "\n"
        "list    print every registered SpMM variant\n"
        "select  load <graph> (edge list, text CSR, or .maxkb; format\n"
        "        sniffed) and print the degree features plus the kernel\n"
        "        the adaptive selector picks for that launch shape\n"
        "\n"
        "options:\n"
        "  --dim N       dense feature width of the launch (default 64)\n"
        "  --k N         MaxK width; 0 means dense operand (default 0)\n"
        "  --symmetrize  insert the reverse of every edge after load\n",
        argv0, argv0);
    return 2;
}

int
runList()
{
    std::printf("%-18s %-4s %-5s %-6s %s\n", "name", "sim", "shape",
                "select", "summary");
    for (const kernels::KernelVariant &v : kernels::kernelRegistry())
        std::printf("%-18s %-4s %-5s %-6s %s\n",
                    std::string(v.name).c_str(), v.simulated ? "yes" : "no",
                    v.transposed ? "A^T" : "A", v.selectable ? "yes" : "no",
                    std::string(v.summary).c_str());
    return 0;
}

int
runSelect(const std::string &path, std::size_t dim, std::uint32_t k,
          bool symmetrize, const char *argv0)
{
    GraphResult loaded = formats::loadAnyGraph(path);
    if (!loaded) {
        std::fprintf(stderr, "%s: %s\n", argv0,
                     loaded.error().describe().c_str());
        return 1;
    }
    CsrGraph g = std::move(loaded.value());
    if (symmetrize)
        g = formats::symmetrized(g);

    const DegreeStats &s = g.degreeStatsCached();
    const double cv = s.avgDegree > 0.0 ? s.stdDegree / s.avgDegree : 0.0;
    const auto dev = gpusim::DeviceConfig::a100();
    const kernels::KernelChoice choice =
        kernels::selectSpmmVariant(s, dim, k, dev);

    std::printf("graph:    %s\n", path.c_str());
    std::printf("features: %s\n", describe(s).c_str());
    std::printf("          cv=%.3f (stdDegree/avgDegree)\n", cv);
    std::printf("launch:   dim=%zu k=%u device=%s\n", dim, k,
                dev.name.c_str());
    std::printf("decision: %s\n",
                std::string(choice.variant->name).c_str());
    std::printf("reason:   %s\n", choice.reason.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h") {
        usage(argv[0]);
        return 0;
    }
    if (cmd == "list") {
        if (argc != 2)
            return usage(argv[0]);
        return runList();
    }
    if (cmd != "select")
        return usage(argv[0]);

    std::string input;
    std::size_t dim = 64;
    std::uint32_t k = 0;
    bool symmetrize = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_number = [&](const char *flag,
                               unsigned long long max) -> long long {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s requires an argument\n",
                             argv[0], flag);
                return -1;
            }
            const char *v = argv[++i];
            char *end = nullptr;
            const unsigned long long n = std::strtoull(v, &end, 10);
            if (end == v || *end != '\0' || n > max) {
                std::fprintf(stderr, "%s: bad %s '%s'\n", argv[0], flag, v);
                return -1;
            }
            return static_cast<long long>(n);
        };
        if (arg == "--dim") {
            const long long n = next_number("--dim", 1u << 20);
            if (n <= 0)
                return 2;
            dim = static_cast<std::size_t>(n);
        } else if (arg == "--k") {
            const long long n = next_number("--k", 1u << 20);
            if (n < 0)
                return 2;
            k = static_cast<std::uint32_t>(n);
        } else if (arg == "--symmetrize") {
            symmetrize = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            return 2;
        } else if (input.empty()) {
            input = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (input.empty())
        return usage(argv[0]);
    return runSelect(input, dim, k, symmetrize, argv[0]);
}
