#!/usr/bin/env bash
# Round-trip a graph through all three formats and require the binary
# container to be byte-identical at both ends:
#
#   edge list -> .maxkb -> text CSR -> edge list -> .maxkb
#
# Usage: roundtrip.sh <maxk-convert> <fixture> <workdir>
set -euo pipefail

CONVERT=$1
FIXTURE=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK"

"$CONVERT" --validate "$FIXTURE"
"$CONVERT" -q "$FIXTURE" "$WORK/g1.maxkb"
"$CONVERT" -q "$WORK/g1.maxkb" "$WORK/g.csr"
"$CONVERT" -q "$WORK/g.csr" "$WORK/g.el" --to edgelist
"$CONVERT" -q "$WORK/g.el" "$WORK/g2.maxkb"
cmp "$WORK/g1.maxkb" "$WORK/g2.maxkb"
"$CONVERT" --validate "$WORK/g2.maxkb"
echo "round-trip OK: g1.maxkb == g2.maxkb"
