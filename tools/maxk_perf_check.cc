/**
 * @file
 * maxk-perf-check — compare a maxk-perf-v1 JSON report (bench --json)
 * against a committed baseline and fail on regressions.
 *
 * The records are deterministic by construction (the benches collect
 * them with the cache model off, so every metric is structural), which
 * is why the default thresholds can be tight. Regression rules, per
 * baseline record (keyed by bench/kernel/graph/dim/k):
 *
 *   sim_seconds, dram_bytes, l2_req_bytes:
 *       fail when current > baseline * (1 + tol)          [--tol, 0.02]
 *   peak_workspace_bytes:
 *       fail when current > baseline * (1 + wtol) AND
 *       current > baseline + 4096 bytes (absolute slack for allocator
 *       rounding differences across libstdc++ versions)
 *                                             [--workspace-tol, 0.25]
 *   alloc_count:
 *       fail when current > baseline (exact — allocation creep in the
 *       hot loop is the regression class ISSUE 4 exists to prevent)
 *
 * A baseline record missing from the current report fails (a kernel
 * silently dropped out of the bench); extra current records are listed
 * but pass (new kernels land with a later baseline refresh).
 * Improvements beyond tol are reported so baselines can be re-blessed
 * (see README "Performance": MAXK_PERF_BLESS=1 in tools/perfgate.sh).
 *
 * Exit codes: 0 ok, 1 regression/missing records, 2 usage/parse error.
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace
{

/* ----------------------------------------------- minimal JSON reader --
 * Supports exactly what maxk-perf-v1 emits: one object with a "records"
 * array of flat objects holding string and number values. Implemented
 * as a tiny recursive-descent scanner rather than a dependency — the
 * container must stay self-contained (no new packages).
 */

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;

    explicit Parser(const std::string &t) : text(t) {}

    [[noreturn]] void
    fail(const std::string &what) const
    {
        std::fprintf(stderr, "maxk-perf-check: JSON parse error at byte "
                             "%zu: %s\n",
                     pos, what.c_str());
        std::exit(2);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\') {
                if (pos >= text.size())
                    fail("dangling escape");
                char e = text[pos++];
                switch (e) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  default: c = e; break; // \" \\ \/ and friends
                }
            }
            out.push_back(c);
        }
        if (pos >= text.size())
            fail("unterminated string");
        ++pos; // closing quote
        return out;
    }

    double
    parseNumber()
    {
        skipWs();
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            fail("malformed number");
        pos += static_cast<std::size_t>(end - start);
        return v;
    }
};

/** One flat record: string fields + numeric fields. */
struct Record
{
    std::map<std::string, std::string> strings;
    std::map<std::string, double> numbers;

    std::string
    key() const
    {
        auto str = [&](const char *k) {
            auto it = strings.find(k);
            return it == strings.end() ? std::string("?") : it->second;
        };
        auto num = [&](const char *k) {
            auto it = numbers.find(k);
            return it == numbers.end()
                       ? std::string("?")
                       : std::to_string(
                             static_cast<long long>(it->second));
        };
        return str("bench") + "/" + str("kernel") + "/" + str("graph") +
               "/dim" + num("dim") + "/k" + num("k");
    }

    double
    num(const char *k, double fallback = 0.0) const
    {
        auto it = numbers.find(k);
        return it == numbers.end() ? fallback : it->second;
    }
};

Record
parseRecord(Parser &p)
{
    Record rec;
    p.expect('{');
    if (p.peek() == '}') {
        ++p.pos;
        return rec;
    }
    for (;;) {
        const std::string field = p.parseString();
        p.expect(':');
        const char c = p.peek();
        if (c == '"')
            rec.strings[field] = p.parseString();
        else
            rec.numbers[field] = p.parseNumber();
        if (p.peek() == ',') {
            ++p.pos;
            continue;
        }
        p.expect('}');
        return rec;
    }
}

std::vector<Record>
loadReport(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "maxk-perf-check: cannot open %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    Parser p(text);
    p.expect('{');
    std::vector<Record> records;
    bool saw_records = false;
    for (;;) {
        const std::string field = p.parseString();
        p.expect(':');
        if (field == "records") {
            saw_records = true;
            p.expect('[');
            if (p.peek() != ']') {
                for (;;) {
                    records.push_back(parseRecord(p));
                    if (p.peek() == ',') {
                        ++p.pos;
                        continue;
                    }
                    break;
                }
            }
            p.expect(']');
        } else if (p.peek() == '"') {
            const std::string v = p.parseString();
            if (field == "schema" && v != "maxk-perf-v1") {
                std::fprintf(stderr,
                             "maxk-perf-check: %s: unknown schema '%s'\n",
                             path.c_str(), v.c_str());
                std::exit(2);
            }
        } else {
            p.parseNumber();
        }
        if (p.peek() == ',') {
            ++p.pos;
            continue;
        }
        p.expect('}');
        break;
    }
    if (!saw_records) {
        std::fprintf(stderr, "maxk-perf-check: %s: no \"records\" array\n",
                     path.c_str());
        std::exit(2);
    }
    return records;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string current_path, baseline_path;
    double tol = 0.02;
    double wtol = 0.25;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tol" && i + 1 < argc) {
            tol = std::strtod(argv[++i], nullptr);
        } else if (arg == "--workspace-tol" && i + 1 < argc) {
            wtol = std::strtod(argv[++i], nullptr);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: maxk-perf-check <current.json> "
                        "<baseline.json> [--tol F] [--workspace-tol F]\n");
            return 0;
        } else if (current_path.empty()) {
            current_path = arg;
        } else if (baseline_path.empty()) {
            baseline_path = arg;
        } else {
            std::fprintf(stderr, "maxk-perf-check: unexpected '%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    if (current_path.empty() || baseline_path.empty()) {
        std::fprintf(stderr, "usage: maxk-perf-check <current.json> "
                             "<baseline.json> [--tol F] "
                             "[--workspace-tol F]\n");
        return 2;
    }

    const std::vector<Record> current = loadReport(current_path);
    const std::vector<Record> baseline = loadReport(baseline_path);

    std::map<std::string, const Record *> current_by_key;
    for (const Record &r : current)
        current_by_key[r.key()] = &r;

    int regressions = 0;
    int improvements = 0;
    std::map<std::string, bool> matched;

    auto check_metric = [&](const Record &base, const Record &cur,
                            const char *metric, double rel_tol,
                            double abs_slack, bool exact) {
        const double b = base.num(metric);
        const double c = cur.num(metric);
        const bool regressed =
            exact ? c > b
                  : (c > b * (1.0 + rel_tol) && c > b + abs_slack);
        if (regressed) {
            std::printf("REGRESSION %s %s: %.6g -> %.6g (+%.2f%%)\n",
                        base.key().c_str(), metric, b, c,
                        b > 0 ? 100.0 * (c - b) / b : 100.0);
            ++regressions;
        } else if (!exact && b > 0 && c < b * (1.0 - rel_tol)) {
            std::printf("improved   %s %s: %.6g -> %.6g (%.2f%%)\n",
                        base.key().c_str(), metric, b, c,
                        100.0 * (c - b) / b);
            ++improvements;
        }
    };

    for (const Record &base : baseline) {
        const std::string key = base.key();
        auto it = current_by_key.find(key);
        if (it == current_by_key.end()) {
            std::printf("MISSING    %s (in baseline, not in current "
                        "report)\n",
                        key.c_str());
            ++regressions;
            continue;
        }
        matched[key] = true;
        const Record &cur = *it->second;
        check_metric(base, cur, "sim_seconds", tol, 0.0, false);
        check_metric(base, cur, "dram_bytes", tol, 0.0, false);
        check_metric(base, cur, "l2_req_bytes", tol, 0.0, false);
        check_metric(base, cur, "peak_workspace_bytes", wtol, 4096.0,
                     false);
        check_metric(base, cur, "alloc_count", 0.0, 0.0, true);
    }

    int extra = 0;
    for (const Record &r : current)
        if (!matched.count(r.key()))
            ++extra;
    if (extra > 0)
        std::printf("note: %d record(s) in the current report have no "
                    "baseline yet (refresh to start gating them)\n",
                    extra);

    std::printf("maxk-perf-check: %zu baseline record(s), %d "
                "regression(s), %d improvement(s)\n",
                baseline.size(), regressions, improvements);
    if (improvements > 0 && regressions == 0)
        std::printf("note: improvements beyond tolerance — consider "
                    "refreshing the baseline (MAXK_PERF_BLESS=1, see "
                    "README Performance)\n");
    return regressions == 0 ? 0 : 1;
}
