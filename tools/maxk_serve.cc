/**
 * @file
 * maxk-serve: replay an online-inference request trace through
 * ServeSession from the command line.
 *
 *   maxk-serve Flickr                           # synthesized Zipf trace
 *   maxk-serve Flickr --trace requests.txt      # replay a trace file
 *   maxk-serve Yelp --cache 0.25 --lru 64 --verify
 *
 * Trains the named registry task's accuracy twin for a few epochs, then
 * serves single-vertex prediction requests with deadline batching and
 * the hot-vertex CBSR embedding cache. A trace file is plain text, one
 * request per line: `<arrival-sim-seconds> <vertex-id>` (`#` comments
 * allowed). Without --trace the tool synthesizes Zipf(s=1) traffic so
 * the cache has a hot set to pin. --verify additionally replays the
 * trace through a cache-off session and fails unless every logit row is
 * bitwise identical — the serving-path correctness anchor, on demand.
 *
 * Malformed trace lines are reported with their 1-based line number and
 * skipped by default (the replay continues with the well-formed
 * requests); --strict turns the first malformed line into a hard error.
 *
 * Exit status: 0 success, 1 runtime/trace error, 2 usage error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/table.hh"
#include "graph/registry.hh"
#include "nn/model.hh"
#include "sample/sampled_trainer.hh"
#include "serve/session.hh"
#include "serve/trace.hh"

using namespace maxk;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <task> [options]\n"
        "\n"
        "Train <task>'s accuracy twin, then replay single-vertex\n"
        "prediction requests through the online serving session.\n"
        "\n"
        "options:\n"
        "  --nodes N      accuracy-twin node count (default 600)\n"
        "  --requests N   synthesized Zipf requests (default 256)\n"
        "  --trace FILE   replay '<arrival> <vertex>' lines instead of\n"
        "                 synthesizing traffic\n"
        "  --strict       fail on the first malformed trace line\n"
        "                 (default: report line numbers and skip)\n"
        "  --cache F      pinned hot-vertex fraction in [0,1] "
        "(default 0.25)\n"
        "  --lru N        LRU slots per cached layer (default 64)\n"
        "  --fanout N     sampled fanout per layer (default 8)\n"
        "  --epochs N     training epochs before serving (default 2)\n"
        "  --seed N       trace/traffic seed (default 808)\n"
        "  --verify       also replay cache-off and require bitwise-\n"
        "                 identical logits\n",
        argv0);
    return 2;
}

/** Zipf(s=1) trace: exact 1/r cumulative weights, no pow/log. */
std::vector<serve::ServeRequest>
zipfTrace(Rng &rng, NodeId num_nodes, std::size_t count)
{
    std::vector<double> cum(num_nodes);
    double total = 0.0;
    for (NodeId r = 0; r < num_nodes; ++r) {
        total += 1.0 / static_cast<double>(r + 1);
        cum[r] = total;
    }
    std::vector<serve::ServeRequest> trace(count);
    double t = 0.0;
    for (serve::ServeRequest &req : trace) {
        t += rng.uniform() * 4e-4;
        req.arrivalSimSeconds = t;
        const double u = rng.uniform() * total;
        req.vertex = static_cast<NodeId>(
            std::lower_bound(cum.begin(), cum.end(), u) - cum.begin());
    }
    return trace;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);

    std::string task_name;
    std::string trace_path;
    NodeId nodes = 600;
    std::size_t requests = 256;
    double cache_fraction = 0.25;
    std::uint32_t lru_slots = 64;
    std::uint32_t fanout = 8;
    std::uint32_t epochs = 2;
    std::uint64_t seed = 808;
    bool verify = false;
    bool strict = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--nodes")
            nodes = static_cast<NodeId>(std::atoll(next("--nodes")));
        else if (arg == "--requests")
            requests = static_cast<std::size_t>(
                std::atoll(next("--requests")));
        else if (arg == "--trace")
            trace_path = next("--trace");
        else if (arg == "--cache")
            cache_fraction = std::atof(next("--cache"));
        else if (arg == "--lru")
            lru_slots =
                static_cast<std::uint32_t>(std::atoi(next("--lru")));
        else if (arg == "--fanout")
            fanout = static_cast<std::uint32_t>(
                std::atoi(next("--fanout")));
        else if (arg == "--epochs")
            epochs = static_cast<std::uint32_t>(
                std::atoi(next("--epochs")));
        else if (arg == "--seed")
            seed = static_cast<std::uint64_t>(
                std::atoll(next("--seed")));
        else if (arg == "--verify")
            verify = true;
        else if (arg == "--strict")
            strict = true;
        else if (arg == "--help" || arg == "-h")
            return usage(argv[0]);
        else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option %s\n", argv[0],
                         arg.c_str());
            return usage(argv[0]);
        } else if (task_name.empty())
            task_name = arg;
        else
            return usage(argv[0]);
    }
    if (task_name.empty())
        return usage(argv[0]);

    auto found = findTrainingTask(task_name);
    if (!found) {
        std::fprintf(stderr, "%s: unknown task '%s'\n", argv[0],
                     task_name.c_str());
        return 1;
    }
    TrainingTask task = *found;
    task.accuracyNodes = nodes;
    task.accuracyAvgDegree = 10.0;
    Rng data_rng(707);
    TrainingData data = materializeTrainingData(task, data_rng);

    std::printf("task %s: %u nodes, %llu edges, %u classes\n",
                task.info.name.c_str(), data.graph.numNodes(),
                static_cast<unsigned long long>(data.graph.numEdges()),
                task.numClasses);

    nn::ModelConfig mcfg;
    mcfg.kind = nn::GnnKind::Sage;
    mcfg.nonlin = nn::Nonlinearity::MaxK;
    mcfg.maxkK = 16;
    mcfg.numLayers = 2;
    mcfg.inDim = task.featureDim;
    mcfg.hiddenDim = 64;
    mcfg.outDim = task.numClasses;
    mcfg.dropout = 0.1f;
    nn::GnnModel model(mcfg);
    {
        sample::SamplerConfig scfg;
        scfg.fanouts = {fanout, fanout};
        scfg.batchSize = 64;
        scfg.seed = 909;
        sample::SampledTrainer trainer(model, data, task, scfg);
        sample::SampledTrainConfig tc;
        tc.epochs = epochs;
        tc.evalEvery = epochs;
        const sample::SampledTrainResult res = trainer.run(tc);
        std::printf("trained %u epochs: val %s\n", epochs,
                    formatFloat(res.bestValMetric, 4).c_str());
    }

    std::vector<serve::ServeRequest> trace;
    if (!trace_path.empty()) {
        auto parsed = serve::loadServeTrace(trace_path, strict);
        if (!parsed.hasValue()) {
            std::fprintf(stderr, "%s: %s\n", argv[0],
                         parsed.error().describe().c_str());
            return 1;
        }
        for (const IoError &skip : parsed.value().skipped)
            std::fprintf(stderr, "%s: skipped malformed line: %s\n",
                         argv[0], skip.describe().c_str());
        trace = std::move(parsed.value().requests);
        if (trace.empty()) {
            std::fprintf(stderr,
                         "%s: trace file '%s' contains no well-formed "
                         "'<arrival> <vertex>' lines\n",
                         argv[0], trace_path.c_str());
            return 1;
        }
    } else {
        Rng traffic_rng(seed);
        trace = zipfTrace(traffic_rng, data.graph.numNodes(), requests);
    }

    serve::ServeConfig scfg;
    scfg.fanout = fanout;
    scfg.cacheFraction = cache_fraction;
    scfg.lruSlots = lru_slots;
    serve::ServeSession session(model, data.graph, data.features, scfg);
    auto rep = session.replay(trace);
    if (!rep.hasValue()) {
        std::fprintf(stderr, "%s: request %llu rejected: %s\n", argv[0],
                     static_cast<unsigned long long>(
                         rep.error().requestIndex),
                     rep.error().message.c_str());
        return 1;
    }

    const serve::ServeReport &r = rep.value();
    const double lookups =
        static_cast<double>(r.cacheHits + r.cacheMisses);
    TextTable table({"metric", "value"});
    table.addRow({"requests", std::to_string(r.requests)});
    table.addRow({"batches", std::to_string(r.batches)});
    table.addRow(
        {"cache hit rate",
         formatFloat(lookups > 0.0 ? 100.0 *
                                         static_cast<double>(r.cacheHits) /
                                         lookups
                                   : 0.0,
                     1) +
             "%"});
    table.addRow({"nodes injected", std::to_string(r.nodesInjected)});
    table.addRow({"nodes recomputed", std::to_string(r.nodesRecomputed)});
    table.addRow({"req/s (sim)",
                  formatFloat(r.requestsPerSimSecond, 0)});
    table.addRow({"p50 latency",
                  formatFloat(r.p50LatencySimSeconds * 1e3, 3) + "ms"});
    table.addRow({"p99 latency",
                  formatFloat(r.p99LatencySimSeconds * 1e3, 3) + "ms"});
    table.addRow({"steady-state allocs",
                  std::to_string(r.steadyStateAllocCount)});
    std::printf("%s\n", table.render().c_str());

    if (verify) {
        serve::ServeConfig off = scfg;
        off.cacheFraction = 0.0;
        off.lruSlots = 0;
        serve::ServeSession off_session(model, data.graph,
                                        data.features, off);
        auto off_rep = off_session.replay(trace);
        if (!off_rep.hasValue()) {
            std::fprintf(stderr, "%s: cache-off verify replay failed\n",
                         argv[0]);
            return 1;
        }
        if (!off_rep.value().logits.equals(r.logits)) {
            std::fprintf(stderr,
                         "%s: VERIFY FAILED: cached logits diverge "
                         "from cache-off recompute\n",
                         argv[0]);
            return 1;
        }
        std::printf("verify: cached logits bitwise-equal to cache-off "
                    "recompute on all %llu requests\n",
                    static_cast<unsigned long long>(r.requests));
    }
    return 0;
}
