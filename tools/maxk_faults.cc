/**
 * @file
 * maxk-faults: replay the named fault-injection scenarios end-to-end
 * (ISSUE 9). Each scenario builds FaultPlan::named(<name>, seed), arms
 * a FaultInjector, drives the real subsystem against it, and checks
 * that the failure lands exactly where the plan scheduled it — plus
 * that recovery (retry, checkpoint fallback, load shedding) behaves as
 * documented:
 *
 *   maxk-faults rank-throw     kill one sharded rank mid-run, resume
 *                              from checkpoint, prove bitwise-equal
 *                              trajectories to the uninterrupted run
 *   maxk-faults comm-timeout   transient collective timeout absorbed by
 *                              retry, then a fatal one that aborts the
 *                              world with the typed CommTimeout
 *   maxk-faults ckpt-corrupt   bit-flip + truncate checkpoint images at
 *                              write; resume falls back past them to
 *                              the newest good image, bitwise-correct
 *   maxk-faults serve-burst    deadline-violating request burst at
 *                              replay entry; overload policy sheds to
 *                              keep the served tail bounded
 *
 * Everything is keyed on --seed: the same seed replays the identical
 * failure (same site, same occurrence, same rank) every time.
 *
 * Exit status: 0 scenario behaved as specified, 1 it did not, 2 usage.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "common/rng.hh"
#include "dist/comm.hh"
#include "dist/sharded_trainer.hh"
#include "graph/formats/checkpoint.hh"
#include "graph/partition.hh"
#include "graph/registry.hh"
#include "nn/model.hh"
#include "nn/trainer.hh"
#include "sample/sampled_trainer.hh"
#include "serve/session.hh"

using namespace maxk;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <scenario> [options]\n"
        "\n"
        "Replay a named fault-injection scenario end-to-end and verify\n"
        "the documented recovery behaviour.\n"
        "\n"
        "scenarios:\n"
        "  rank-throw    kill a sharded rank, resume from checkpoint\n"
        "  comm-timeout  transient retry + fatal collective timeout\n"
        "  ckpt-corrupt  corrupt checkpoint images, fall back on resume\n"
        "  serve-burst   request burst sheds under a latency budget\n"
        "\n"
        "options:\n"
        "  --seed N   scenario key (default 42); the same seed replays\n"
        "             the identical failure\n"
        "  --dir D    scratch directory for checkpoint scenarios\n"
        "             (default: a fresh directory under the system\n"
        "             temp dir, removed on success)\n",
        argv0);
    return 2;
}

/** Flickr accuracy twin scaled down to CLI size. */
TrainingTask
smallTask(NodeId nodes)
{
    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = nodes;
    task.accuracyAvgDegree = 8.0;
    return task;
}

nn::ModelConfig
smallModel(const TrainingTask &task)
{
    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nn::Nonlinearity::MaxK;
    cfg.maxkK = 8;
    cfg.numLayers = 2;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 32;
    cfg.outDim = task.numClasses;
    cfg.dropout = 0.2f;
    return cfg;
}

/** Print the plan so the replay is auditable. */
void
printPlan(const FaultPlan &plan)
{
    for (const FaultSpec &s : plan.specs())
        std::printf("plan: %s at '%s' occurrence %llu rank %s%s\n",
                    faultKindName(s.kind), s.site.c_str(),
                    static_cast<unsigned long long>(s.occurrence),
                    s.rank == kAnyRank ? "any"
                                       : std::to_string(s.rank).c_str(),
                    s.transient ? " (transient)" : "");
}

bool
check(bool ok, const char *what)
{
    std::printf("%s %s\n", ok ? "ok:" : "FAILED:", what);
    return ok;
}

/* ------------------------------------------------------- rank-throw */

int
runRankThrow(std::uint64_t seed, const std::string &dir)
{
    FaultInjector inj(FaultPlan::named("rank-throw", seed));
    printPlan(inj.plan());

    const TrainingTask task = smallTask(400);
    Rng rng(31);
    TrainingData data = materializeTrainingData(task, rng);
    const nn::ModelConfig cfg = smallModel(task);
    Rng prng(77);
    const Partition parts = bfsPartition(data.graph, 3, prng);

    nn::TrainConfig tc;
    tc.epochs = 8;
    tc.evalEvery = 2;

    // Uninterrupted reference run (no checkpointing, no faults).
    dist::ShardedTrainer ref_trainer(cfg, data, task, parts);
    const dist::ShardedTrainResult ref = ref_trainer.run(tc);

    // Faulted run: the scheduled rank dies at its epoch boundary.
    tc.checkpointDir = dir;
    tc.checkpointKeep = 4;
    tc.faults = &inj;
    bool fired = false;
    try {
        dist::ShardedTrainer trainer(cfg, data, task, parts);
        trainer.run(tc);
    } catch (const InjectedFault &f) {
        fired = true;
        std::printf("fired: %s\n", f.what());
    }
    if (!check(fired, "scheduled rank failure fired")) return 1;

    // Resume: a fresh trainer picks up the newest checkpoint and must
    // land bitwise-equal to the uninterrupted run.
    tc.faults = nullptr;
    dist::ShardedTrainer resumed(cfg, data, task, parts);
    const dist::ShardedTrainResult got = resumed.run(tc);
    bool ok = true;
    ok &= check(got.train.trainLoss == ref.train.trainLoss,
                "resumed loss trajectory bitwise-equal");
    ok &= check(got.train.valMetric == ref.train.valMetric &&
                    got.train.testMetric == ref.train.testMetric,
                "resumed metric trajectories bitwise-equal");
    ok &= check(got.finalLogits.equals(ref.finalLogits),
                "resumed final logits bitwise-equal");
    return ok ? 0 : 1;
}

/* ----------------------------------------------------- comm-timeout */

int
runCommTimeout(std::uint64_t seed)
{
    FaultInjector inj(FaultPlan::named("comm-timeout", seed));
    printPlan(inj.plan());

    // Drive the collectives directly: enough iterations that both the
    // transient allReduceSum fault (occurrence < 4) and the fatal
    // allToAllv one (occurrence 4..7) are reached.
    dist::CommWorld world(2);
    world.setFaultInjector(&inj);
    bool fatal_seen = false;
    std::string fatal_what;
    try {
        world.run([](dist::Communicator &comm) {
            std::vector<Float> acc(64, 1.0f);
            std::vector<std::vector<std::uint8_t>> send(2), recv;
            for (std::uint32_t d = 0; d < 2; ++d)
                send[d].assign(16, static_cast<std::uint8_t>(d));
            for (int iter = 0; iter < 12; ++iter) {
                comm.allReduceSum(acc.data(), acc.size());
                comm.allToAllv(send, recv, dist::CommChannel::Halo);
            }
        });
    } catch (const dist::CommTimeout &t) {
        fatal_seen = true;
        fatal_what = t.what();
    }
    bool ok = true;
    ok &= check(world.totalTransientRetries() == 1,
                "transient timeout absorbed by exactly one retry");
    ok &= check(fatal_seen, "fatal timeout surfaced as typed CommTimeout");
    if (fatal_seen)
        std::printf("fired: %s\n", fatal_what.c_str());
    ok &= check(inj.visits("comm.allToAllv", 0) > 0 ||
                    inj.visits("comm.allToAllv", 1) > 0,
                "allToAllv hook site visited");
    return ok ? 0 : 1;
}

/* ----------------------------------------------------- ckpt-corrupt */

int
runCkptCorrupt(std::uint64_t seed, const std::string &dir)
{
    FaultInjector inj(FaultPlan::named("ckpt-corrupt", seed));
    printPlan(inj.plan());

    // The truncate spec lands on save occurrence T; stop run 1 right
    // after it so the NEWEST image on disk is the truncated one and
    // resume must fall back.
    std::uint64_t trunc_occ = 0;
    for (const FaultSpec &s : inj.plan().specs())
        if (s.kind == FaultKind::CheckpointTruncate)
            trunc_occ = s.occurrence;

    const TrainingTask task = smallTask(300);
    Rng rng(41);
    TrainingData data = materializeTrainingData(task, rng);
    const nn::ModelConfig cfg = smallModel(task);

    nn::TrainConfig tc;
    tc.epochs = 10;
    tc.evalEvery = 2;

    // Uninterrupted reference.
    nn::GnnModel ref_model(cfg);
    nn::Trainer ref_trainer(ref_model, data, task);
    const nn::TrainResult ref = ref_trainer.run(tc);

    // Run 1: checkpoint every epoch through the corrupting injector,
    // "crashing" (stopping) right after the truncated save.
    tc.checkpointDir = dir;
    tc.checkpointKeep = 16;
    tc.faults = &inj;
    tc.epochs = static_cast<std::uint32_t>(trunc_occ) + 1;
    {
        nn::GnnModel model(cfg);
        nn::Trainer trainer(model, data, task);
        trainer.run(tc);
    }

    // The store must reject the damaged images and fall back.
    formats::CheckpointStore store(dir, "trainer", 16);
    std::vector<IoError> skipped;
    auto latest = store.loadLatest(&skipped);
    bool ok = true;
    ok &= check(latest.hasValue(), "a verifiable checkpoint survives");
    if (!latest.hasValue())
        return 1;
    for (const IoError &e : skipped)
        std::printf("rejected: %s\n", e.describe().c_str());
    ok &= check(!skipped.empty(),
                "corrupted image detected and skipped");
    ok &= check(latest.value().epoch < trunc_occ,
                "fell back past the truncated newest image");
    std::printf("resuming from epoch %llu\n",
                static_cast<unsigned long long>(latest.value().epoch));

    // Run 2: resume to the full horizon; must be bitwise-equal to the
    // uninterrupted run despite the corrupt images in between.
    tc.faults = nullptr;
    tc.epochs = 10;
    nn::GnnModel model(cfg);
    nn::Trainer trainer(model, data, task);
    const nn::TrainResult got = trainer.run(tc);
    ok &= check(got.trainLoss == ref.trainLoss,
                "resumed loss trajectory bitwise-equal");
    ok &= check(got.valMetric == ref.valMetric &&
                    got.testMetric == ref.testMetric,
                "resumed metric trajectories bitwise-equal");
    return ok ? 0 : 1;
}

/* ------------------------------------------------------ serve-burst */

int
runServeBurst(std::uint64_t seed)
{
    const FaultPlan plan = FaultPlan::named("serve-burst", seed);
    printPlan(plan);
    std::uint64_t planned_burst = 0;
    for (const FaultSpec &s : plan.specs())
        if (s.kind == FaultKind::ServeBurst)
            planned_burst = s.payload;

    const TrainingTask task = smallTask(400);
    Rng rng(51);
    TrainingData data = materializeTrainingData(task, rng);
    nn::ModelConfig mcfg = smallModel(task);
    nn::GnnModel model(mcfg);
    {
        sample::SamplerConfig scfg;
        scfg.fanouts = {6, 6};
        scfg.batchSize = 64;
        scfg.seed = 909;
        sample::SampledTrainer trainer(model, data, task, scfg);
        sample::SampledTrainConfig tc;
        tc.epochs = 2;
        tc.evalEvery = 2;
        trainer.run(tc);
    }

    // A steady trickle of requests; the injected burst all arrives at
    // once at the tail, deeper than one batch, so the serialized queue
    // model must stack burst batches behind each other.
    std::vector<serve::ServeRequest> trace(64);
    Rng traffic(seed);
    double t = 0.0;
    for (serve::ServeRequest &req : trace) {
        t += 2e-4;
        req.arrivalSimSeconds = t;
        req.vertex = traffic.nextBounded(data.graph.numNodes());
    }

    serve::ServeConfig scfg;
    scfg.fanout = 6;
    scfg.cacheFraction = 0.25;
    scfg.lruSlots = 32;
    scfg.seed = seed;

    // Pass 1: replay the burst with an unreachable budget (queue model
    // armed, nothing shed) to measure what the overload actually costs.
    FaultInjector measure_inj(plan);
    serve::ServeConfig mcfg2 = scfg;
    mcfg2.faults = &measure_inj;
    mcfg2.latencyBudgetSimSeconds = 1e9;
    serve::ServeSession measure(model, data.graph, data.features, mcfg2);
    auto unshed = measure.replay(trace);
    if (!unshed.hasValue()) {
        std::printf("measurement replay rejected: %s\n",
                    unshed.error().message.c_str());
        return 1;
    }
    const serve::ServeReport &u = unshed.value();
    bool ok = true;
    ok &= check(u.burstRequests == planned_burst,
                "burst size matches the plan payload");
    ok &= check(u.requests == trace.size() + planned_burst,
                "burst requests appended to the trace");

    // Per-batch worst latency == the shed policy's projection, so a
    // budget strictly between the tamest and worst batch must shed some
    // batches and serve others.
    std::vector<double> batch_worst(u.batchStats.size(), 0.0);
    for (std::size_t i = 0; i < u.latencySimSeconds.size(); ++i) {
        double &w = batch_worst[u.requestBatch[i]];
        if (u.latencySimSeconds[i] > w)
            w = u.latencySimSeconds[i];
    }
    double bmin = batch_worst[0], bmax = batch_worst[0];
    for (double w : batch_worst) {
        if (w < bmin) bmin = w;
        if (w > bmax) bmax = w;
    }
    ok &= check(bmax > bmin,
                "queue model stacks burst batches (latencies spread)");
    const double budget = 0.5 * (bmin + bmax);
    std::printf("batch worst latency %.6fms..%.6fms -> budget %.6fms\n",
                bmin * 1e3, bmax * 1e3, budget * 1e3);

    // Pass 2: same burst, shedding armed at the calibrated budget.
    FaultInjector shed_inj(plan);
    serve::ServeConfig scfg2 = scfg;
    scfg2.faults = &shed_inj;
    scfg2.latencyBudgetSimSeconds = budget;
    scfg2.shedOnOverload = true;
    serve::ServeSession session(model, data.graph, data.features, scfg2);
    auto rep = session.replay(trace);
    if (!rep.hasValue()) {
        std::printf("replay rejected: %s\n", rep.error().message.c_str());
        return 1;
    }
    const serve::ServeReport &r = rep.value();
    std::printf("requests %llu (burst %llu)  shed %llu  p99 %.6fms\n",
                static_cast<unsigned long long>(r.requests),
                static_cast<unsigned long long>(r.burstRequests),
                static_cast<unsigned long long>(r.sheddedRequests),
                r.p99LatencySimSeconds * 1e3);
    ok &= check(r.sheddedRequests > 0,
                "overload policy shed the over-budget batches");
    ok &= check(r.sheddedRequests < r.requests,
                "under-budget traffic still served");
    ok &= check(r.p99LatencySimSeconds <= budget * (1.0 + 1e-9),
                "served p99 bounded by the latency budget");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    std::string scenario;
    std::string dir;
    std::uint64_t seed = 42;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seed")
            seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
        else if (arg == "--dir")
            dir = next("--dir");
        else if (arg == "--help" || arg == "-h")
            return usage(argv[0]);
        else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option %s\n", argv[0],
                         arg.c_str());
            return usage(argv[0]);
        } else if (scenario.empty())
            scenario = arg;
        else
            return usage(argv[0]);
    }
    if (scenario.empty())
        return usage(argv[0]);

    bool made_dir = false;
    if (scenario == "rank-throw" || scenario == "ckpt-corrupt") {
        std::error_code ec;
        if (dir.empty()) {
            dir = (std::filesystem::temp_directory_path(ec) /
                   ("maxk-faults-" + scenario + "-" +
                    std::to_string(seed)))
                      .string();
            made_dir = true;
        }
        // The scenarios assume a fresh store: a stale image would make
        // run 1 resume instead of starting the scripted failure.
        std::filesystem::remove_all(dir, ec);
    }

    int rc = 2;
    if (scenario == "rank-throw")
        rc = runRankThrow(seed, dir);
    else if (scenario == "comm-timeout")
        rc = runCommTimeout(seed);
    else if (scenario == "ckpt-corrupt")
        rc = runCkptCorrupt(seed, dir);
    else if (scenario == "serve-burst")
        rc = runServeBurst(seed);
    else {
        std::fprintf(stderr,
                     "%s: unknown scenario '%s' (known: rank-throw, "
                     "comm-timeout, ckpt-corrupt, serve-burst)\n",
                     argv[0], scenario.c_str());
        return usage(argv[0]);
    }

    if (rc == 0 && made_dir) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
    std::printf("scenario %s: %s\n", scenario.c_str(),
                rc == 0 ? "OK" : "FAILED");
    return rc;
}
