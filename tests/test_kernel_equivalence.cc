/**
 * @file
 * Cross-kernel equivalence harness. The paper's central functional claim
 * is that MaxK sparsity changes the *cost* of aggregation, never its
 * *result*: every SpMM variant must compute the same Y = A * X, the
 * CBSR SpGEMM forward must equal dense aggregation of the decompressed
 * activations, and the SSpMM backward must be the pattern-gather of the
 * dense transposed aggregation. This suite sweeps all of those pairwise
 * agreements across graph shapes × feature dims × k values, instead of
 * the single-kernel spot checks the per-kernel suites perform.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <tuple>

#include "common/rng.hh"
#include "core/linear_backward_cbsr.hh"
#include "core/maxk.hh"
#include "graph/formats/formats.hh"
#include "graph/registry.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "graph/edge_groups.hh"
#include "kernels/registry.hh"
#include "kernels/spmm_fast.hh"
#include "kernels/spmm_gnna.hh"
#include "kernels/spmm_outer_naive.hh"
#include "kernels/spmm_ref.hh"
#include "kernels/spmm_row_wise.hh"
#include "nn/gnn_layer.hh"
#include "nn/linear.hh"
#include "support/comparators.hh"
#include "support/fixtures.hh"
#include "support/oracles.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

namespace maxk
{
namespace
{

using test::GraphShape;

constexpr Float kTol = 1e-3f;

/** (graph shape, feature dim, k). */
using SweepParam = std::tuple<GraphShape, std::uint32_t, std::uint32_t>;

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    const auto [shape, dim, k] = info.param;
    return test::graphShapeName(shape) + "_dim" + std::to_string(dim) +
           "_k" + std::to_string(k);
}

class KernelEquivalence : public ::testing::TestWithParam<SweepParam>
{
  protected:
    void
    SetUp() override
    {
        const auto [shape, dim, k] = GetParam();
        const std::uint64_t seed =
            1000 + static_cast<std::uint64_t>(shape) * 100 + dim * 7 + k;
        Rng rng(seed);
        g_ = test::makeGraph(shape, 128, 1100, rng);
        part_ = EdgeGroupPartition::build(g_, 16);
        x_.resize(g_.numNodes(), dim);
        fillNormal(x_, rng, 0.0f, 1.0f);
        opt_.simulateCaches = false;
        k_ = k;
    }

    CsrGraph g_;
    EdgeGroupPartition part_;
    Matrix x_;
    SimOptions opt_;
    std::uint32_t k_ = 0;
};

/** All forward SpMM variants agree pairwise on dense inputs. */
TEST_P(KernelEquivalence, DenseSpmmVariantsAgreePairwise)
{
    Matrix y_ref, y_row, y_gnna;
    spmmReference(g_, x_, y_ref);
    spmmRowWise(g_, x_, y_row, opt_);
    spmmGnna(g_, part_, x_, y_gnna, opt_);

    EXPECT_TRUE(test::matricesNear(y_row, y_ref, kTol));
    EXPECT_TRUE(test::matricesNear(y_gnna, y_ref, kTol));
    EXPECT_TRUE(test::matricesNear(y_row, y_gnna, kTol));
}

/**
 * Registry sweep, the PR-7 acceptance bar: every registered variant —
 * enumerated, not named — reproduces its reference bitwise (`equals`,
 * not "near") at every thread count. Forward variants must equal
 * spmmReference, transposed ones spmmTransposedReference; the fp32 fast
 * path of each variant must equal the shared fast loop the same way.
 */
TEST_P(KernelEquivalence, RegistryVariantsBitwiseMatchReferenceAcrossThreads)
{
    Matrix y_ref, y_tref, y_fast_ref, y_tfast_ref;
    spmmReference(g_, x_, y_ref);
    spmmTransposedReference(g_, x_, y_tref);
    spmmRowWiseFast(g_, x_, y_fast_ref);
    spmmTransposedFast(g_, x_, y_tfast_ref);

    for (const kernels::KernelVariant &v : kernels::kernelRegistry()) {
        const Matrix &want_sim = v.transposed ? y_tref : y_ref;
        for (const std::uint32_t threads : {1u, 4u, 8u}) {
            SimOptions opt = opt_;
            opt.threads = threads;
            Matrix y;
            v.run(g_, x_, y, opt);
            EXPECT_TRUE(y.equals(want_sim))
                << v.name << " (simulated) at threads=" << threads;
        }
        // spmm_ref's fast loop is the double-precision reference by
        // design; every other variant shares the fp32 loops.
        const Matrix &want_fast =
            v.name == "spmm_ref"
                ? y_ref
                : (v.transposed ? y_tfast_ref : y_fast_ref);
        Matrix y;
        v.fast(g_, x_, y);
        EXPECT_TRUE(y.equals(want_fast)) << v.name << " (fast)";
    }
}

/** The outer-product kernel computes A^T X: it must agree both with the
 *  transposed reference and with the row-wise kernel run on an
 *  explicitly transposed graph. */
TEST_P(KernelEquivalence, OuterProductMatchesBothTransposePaths)
{
    Matrix y_outer, y_t, y_row_t;
    spmmOuterNaive(g_, x_, y_outer, opt_);
    spmmTransposedReference(g_, x_, y_t);
    const CsrGraph gt = g_.transposed();
    spmmRowWise(gt, x_, y_row_t, opt_);

    EXPECT_TRUE(test::matricesNear(y_outer, y_t, kTol));
    EXPECT_TRUE(test::matricesNear(y_outer, y_row_t, kTol));
}

/** SpGEMM forward equals every dense kernel applied to decompress(h). */
TEST_P(KernelEquivalence, SpgemmForwardMatchesAllDenseKernels)
{
    const MaxKResult mk = maxkCompress(x_, k_, opt_);
    Matrix y, y_oracle, dense, y_row, y_fast;
    spgemmForward(g_, part_, mk.cbsr, y, opt_);

    test::spgemmOracle(g_, mk.cbsr, y_oracle);
    EXPECT_TRUE(test::matricesNear(y, y_oracle, kTol));

    mk.cbsr.decompress(dense);
    spmmRowWise(g_, dense, y_row, opt_);
    EXPECT_TRUE(test::matricesNear(y, y_row, kTol));

    nn::aggregateCbsr(g_, mk.cbsr, y_fast);
    EXPECT_TRUE(test::matricesNear(y, y_fast, kTol));
}

/** SSpMM backward equals the pattern-gather of both A^T-aggregation
 *  paths (the dense transposed reference and the outer-product kernel). */
TEST_P(KernelEquivalence, SspmmBackwardMatchesTransposedKernels)
{
    const MaxKResult mk = maxkCompress(x_, k_, opt_);
    Rng grad_rng(77);
    Matrix dxl(g_.numNodes(), x_.cols());
    fillNormal(dxl, grad_rng, 0.0f, 1.0f);

    CbsrMatrix dxs;
    dxs.adoptPattern(mk.cbsr);
    sspmmBackward(g_, part_, dxl, dxs, opt_);

    Matrix dense_t;
    test::sspmmOracle(g_, dxl, dense_t);
    EXPECT_TRUE(test::cbsrMatchesDenseGather(dxs, dense_t, kTol));

    Matrix y_outer;
    spmmOuterNaive(g_, dxl, y_outer, opt_);
    EXPECT_TRUE(test::cbsrMatchesDenseGather(dxs, y_outer, kTol));
}

/** CBSR data segments agree bitwise (pattern agreement via
 *  cbsrSamePattern). */
::testing::AssertionResult
cbsrSameData(const CbsrMatrix &a, const CbsrMatrix &b)
{
    if (a.rows() != b.rows() || a.dimK() != b.dimK())
        return ::testing::AssertionFailure() << "shape mismatch";
    for (NodeId r = 0; r < a.rows(); ++r)
        for (std::uint32_t kk = 0; kk < a.dimK(); ++kk)
            if (a.dataRow(r)[kk] != b.dataRow(r)[kk])
                return ::testing::AssertionFailure()
                       << "data mismatch at row " << r << " slot " << kk;
    return ::testing::AssertionSuccess();
}

/**
 * Fused MaxK->SpGEMM: one launch must reproduce the unfused pipeline
 * (maxkCompress then spgemmForward) bitwise — output, emitted pattern
 * and data — while moving strictly less modeled DRAM traffic (the
 * sp_data round-trip is the fusion's whole point, ISSUE 4).
 */
TEST_P(KernelEquivalence, FusedForwardBitwiseMatchesUnfusedPipeline)
{
    const MaxKResult mk = maxkCompress(x_, k_, opt_);
    Matrix y_unfused;
    const auto spgemm_stats =
        spgemmForward(g_, part_, mk.cbsr, y_unfused, opt_);

    CbsrMatrix fused_cbsr;
    Matrix y_fused;
    const auto fused_stats =
        spgemmForwardFused(g_, part_, x_, k_, fused_cbsr, y_fused, opt_);

    EXPECT_TRUE(y_fused.equals(y_unfused)); // bitwise, not near
    EXPECT_TRUE(test::cbsrSamePattern(fused_cbsr, mk.cbsr));
    EXPECT_TRUE(cbsrSameData(fused_cbsr, mk.cbsr));

    const auto unfused_total = [&] {
        gpusim::PhaseStats t = mk.stats.aggregate();
        t.accumulate(spgemm_stats.aggregate());
        return t;
    }();
    const auto fused_total = fused_stats.aggregate();
    EXPECT_LT(fused_total.dramReadBytes + fused_total.dramWriteBytes,
              unfused_total.dramReadBytes + unfused_total.dramWriteBytes);
    EXPECT_LT(fused_stats.totalSeconds,
              mk.stats.totalSeconds + spgemm_stats.totalSeconds);
}

/**
 * CBSR-aware linear backward: dW/db/dX computed straight from
 * sp_data/sp_index must equal — bitwise — the dense kernels applied to
 * the decompressed gradient (the path GnnLayer::backward used to take).
 */
TEST_P(KernelEquivalence, LinearBackwardCbsrBitwiseMatchesDense)
{
    const std::size_t in_dim = 24;
    Rng rng(90210 + k_);
    Matrix x(g_.numNodes(), in_dim);
    fillNormal(x, rng, 0.0f, 1.0f);
    // Plant exact zeros in X: the dense gemmTransA skips them, the CBSR
    // kernel must skip them identically.
    for (NodeId r = 0; r < g_.numNodes(); r += 3)
        x.at(r, r % in_dim) = 0.0f;
    Matrix w(in_dim, x_.cols());
    fillNormal(w, rng, 0.0f, 0.5f);

    // A CBSR gradient with realistic pattern + values.
    Matrix gsrc(g_.numNodes(), x_.cols());
    fillNormal(gsrc, rng, 0.0f, 1.0f);
    const MaxKResult mk = maxkCompress(gsrc, k_, opt_);

    Matrix dense;
    mk.cbsr.decompress(dense);

    Matrix dw_dense, db_dense, dx_dense;
    gemmTransA(x, dense, dw_dense);
    columnSums(dense, db_dense);
    gemmTransB(dense, w, dx_dense);

    Matrix dw, db, dx;
    cbsrGemmTransA(x, mk.cbsr, dw);
    cbsrColumnSums(mk.cbsr, db);
    cbsrGemmTransB(mk.cbsr, w, dx);

    EXPECT_TRUE(dw.equals(dw_dense));
    EXPECT_TRUE(db.equals(db_dense));
    EXPECT_TRUE(dx.equals(dx_dense));
}

/** Gradient-mask consistency: the backward CBSR inherits the forward
 *  pattern exactly, and that pattern is the dense MaxK backward mask. */
TEST_P(KernelEquivalence, GradientMaskConsistentWithForwardPattern)
{
    const MaxKResult mk = maxkCompress(x_, k_, opt_);

    CbsrMatrix dxs;
    dxs.adoptPattern(mk.cbsr);
    ASSERT_TRUE(test::cbsrSamePattern(dxs, mk.cbsr));

    Matrix ones(x_.rows(), x_.cols(), 1.0f);
    Matrix mask;
    maxkBackwardDense(x_, k_, ones, mask);
    for (NodeId r = 0; r < mk.cbsr.rows(); ++r) {
        std::set<std::uint32_t> live;
        for (std::uint32_t c = 0; c < x_.cols(); ++c)
            if (mask.at(r, c) != 0.0f)
                live.insert(c);
        std::set<std::uint32_t> pattern;
        for (std::uint32_t kk = 0; kk < mk.cbsr.dimK(); ++kk)
            pattern.insert(mk.cbsr.indexAt(r, kk));
        ASSERT_EQ(live, pattern) << "row " << r;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeDimK, KernelEquivalence,
    ::testing::Combine(::testing::Values(GraphShape::ErdosRenyi,
                                         GraphShape::PowerLaw,
                                         GraphShape::Star,
                                         GraphShape::Ring,
                                         GraphShape::Zipf),
                       ::testing::Values(16u, 33u, 64u),
                       ::testing::Values(4u, 8u, 16u)),
    sweepName);

/** Aggregator weights must not break any equivalence: repeat the core
 *  agreements under GCN and GIN weighting on the power-law twin. */
class AggregatorEquivalence
    : public ::testing::TestWithParam<Aggregator>
{
};

TEST_P(AggregatorEquivalence, AllKernelsAgreeUnderWeighting)
{
    Rng rng(4242);
    CsrGraph g =
        test::makeGraph(GraphShape::PowerLaw, 128, 1500, rng, GetParam());
    const auto part = EdgeGroupPartition::build(g, 32);
    Matrix x(g.numNodes(), 48);
    fillNormal(x, rng, 0.0f, 1.0f);
    SimOptions opt;
    opt.simulateCaches = false;

    Matrix y_ref, y_row, y_gnna;
    spmmReference(g, x, y_ref);
    spmmRowWise(g, x, y_row, opt);
    spmmGnna(g, part, x, y_gnna, opt);
    EXPECT_TRUE(test::matricesNear(y_row, y_ref, kTol));
    EXPECT_TRUE(test::matricesNear(y_gnna, y_ref, kTol));

    const MaxKResult mk = maxkCompress(x, 12, opt);
    Matrix y, y_oracle;
    spgemmForward(g, part, mk.cbsr, y, opt);
    test::spgemmOracle(g, mk.cbsr, y_oracle);
    EXPECT_TRUE(test::matricesNear(y, y_oracle, kTol));

    CbsrMatrix dxs;
    dxs.adoptPattern(mk.cbsr);
    sspmmBackward(g, part, x, dxs, opt);
    Matrix dense_t;
    test::sspmmOracle(g, x, dense_t);
    EXPECT_TRUE(test::cbsrMatchesDenseGather(dxs, dense_t, kTol));
}

INSTANTIATE_TEST_SUITE_P(Weights, AggregatorEquivalence,
                         ::testing::Values(Aggregator::SageMean,
                                           Aggregator::Gcn,
                                           Aggregator::Gin));

/**
 * Real-format inputs: the bundled karate fixture enters through the
 * ingestion subsystem (edge list → symmetrised CSR) and every kernel
 * variant must agree on it exactly as on the generator graphs — the
 * loaders feed the same CsrGraph substrate, so sparsity-changes-cost-
 * never-results extends to on-disk workloads.
 */
class DiskGraphEquivalence : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const std::string path =
            std::string(MAXK_TEST_DATA_DIR) + "/karate.txt";
        formats::EdgeListOptions elopt;
        elopt.symmetrize = true;
        auto loaded = formats::loadAnyGraph(path, elopt);
        ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
        g_ = std::move(loaded.value());
        ASSERT_EQ(g_.numNodes(), 34u);
        ASSERT_EQ(g_.numEdges(), 156u);
        g_.setAggregatorWeights(Aggregator::SageMean);
        part_ = EdgeGroupPartition::build(g_, 8);
        Rng rng(31337);
        x_.resize(g_.numNodes(), 32);
        fillNormal(x_, rng, 0.0f, 1.0f);
        opt_.simulateCaches = false;
    }

    CsrGraph g_;
    EdgeGroupPartition part_;
    Matrix x_;
    SimOptions opt_;
};

TEST_F(DiskGraphEquivalence, AllSpmmVariantsAgree)
{
    Matrix y_ref, y_row, y_gnna;
    spmmReference(g_, x_, y_ref);
    spmmRowWise(g_, x_, y_row, opt_);
    spmmGnna(g_, part_, x_, y_gnna, opt_);
    EXPECT_TRUE(test::matricesNear(y_row, y_ref, kTol));
    EXPECT_TRUE(test::matricesNear(y_gnna, y_ref, kTol));

    Matrix y_outer, y_t;
    spmmOuterNaive(g_, x_, y_outer, opt_);
    spmmTransposedReference(g_, x_, y_t);
    EXPECT_TRUE(test::matricesNear(y_outer, y_t, kTol));

    // And the full registry, bitwise, on the ingested graph.
    for (const kernels::KernelVariant &v : kernels::kernelRegistry()) {
        Matrix y;
        v.run(g_, x_, y, opt_);
        EXPECT_TRUE(y.equals(v.transposed ? y_t : y_ref)) << v.name;
    }
}

TEST_F(DiskGraphEquivalence, SpgemmAndSspmmMatchOracles)
{
    const MaxKResult mk = maxkCompress(x_, 8, opt_);
    Matrix y, y_oracle;
    spgemmForward(g_, part_, mk.cbsr, y, opt_);
    test::spgemmOracle(g_, mk.cbsr, y_oracle);
    EXPECT_TRUE(test::matricesNear(y, y_oracle, kTol));

    CbsrMatrix dxs;
    dxs.adoptPattern(mk.cbsr);
    sspmmBackward(g_, part_, x_, dxs, opt_);
    Matrix dense_t;
    test::sspmmOracle(g_, x_, dense_t);
    EXPECT_TRUE(test::cbsrMatchesDenseGather(dxs, dense_t, kTol));
}

TEST_F(DiskGraphEquivalence, FusedForwardMatchesUnfusedOnDiskGraph)
{
    const MaxKResult mk = maxkCompress(x_, 8, opt_);
    Matrix y_unfused;
    spgemmForward(g_, part_, mk.cbsr, y_unfused, opt_);

    CbsrMatrix fused_cbsr;
    Matrix y_fused;
    spgemmForwardFused(g_, part_, x_, 8, fused_cbsr, y_fused, opt_);
    EXPECT_TRUE(y_fused.equals(y_unfused));
    EXPECT_TRUE(test::cbsrSamePattern(fused_cbsr, mk.cbsr));

    // The CBSR-aware linear backward agrees bitwise on the disk graph
    // as well: same substrate, same arithmetic (see the sweep test).
    Matrix w(16, x_.cols());
    Rng rng(5150);
    fillNormal(w, rng, 0.0f, 0.5f);
    Matrix xin(g_.numNodes(), 16);
    fillNormal(xin, rng, 0.0f, 1.0f);
    Matrix dense;
    mk.cbsr.decompress(dense);
    Matrix dw_dense, dx_dense, dw, dx;
    gemmTransA(xin, dense, dw_dense);
    gemmTransB(dense, w, dx_dense);
    cbsrGemmTransA(xin, mk.cbsr, dw);
    cbsrGemmTransB(mk.cbsr, w, dx);
    EXPECT_TRUE(dw.equals(dw_dense));
    EXPECT_TRUE(dx.equals(dx_dense));
}

TEST_F(DiskGraphEquivalence, BinaryReloadIsBitwiseEquivalent)
{
    // Round-trip the loaded graph through the .maxkb container and
    // require bitwise-identical kernel output, not merely "near".
    const std::string path = ::testing::TempDir() + "maxk_equiv.maxkb";
    ASSERT_TRUE(formats::saveBinaryCsr(g_, path));
    auto reloaded = formats::loadBinaryCsr(path);
    ASSERT_TRUE(reloaded.hasValue()) << reloaded.error().describe();
    ASSERT_EQ(reloaded->rowPtr(), g_.rowPtr());
    ASSERT_EQ(reloaded->colIdx(), g_.colIdx());
    ASSERT_EQ(reloaded->values(), g_.values());

    Matrix y_a, y_b;
    spmmRowWise(g_, x_, y_a, opt_);
    spmmRowWise(reloaded.value(), x_, y_b, opt_);
    for (NodeId r = 0; r < g_.numNodes(); ++r)
        for (std::size_t c = 0; c < y_a.cols(); ++c)
            ASSERT_EQ(y_a.at(r, c), y_b.at(r, c));
}

TEST_F(DiskGraphEquivalence, RegistryResolvedDatasetAgreesAcrossVariants)
{
    // End-to-end acceptance path: the fixture masquerades as a
    // registry dataset via MAXK_DATASET_DIR and flows through
    // materializeGraph into every SpMM variant.
    const std::string dir = ::testing::TempDir() + "maxk_equiv_dsets";
    ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
    ASSERT_TRUE(formats::saveBinaryCsr(g_, dir + "/pubmed.maxkb"));

    const auto info = findDataset("pubmed");
    ASSERT_TRUE(info.has_value());
    Rng rng(11);
    CsrGraph g;
    {
        // RAII: a leaked dataset dir would re-route every later
        // registry call in this binary to the temp graph.
        test::ScopedEnv env(kDatasetDirEnv, dir);
        g = materializeGraph(*info, rng);
    }
    ASSERT_EQ(g.numNodes(), g_.numNodes());

    const auto part = EdgeGroupPartition::build(g, 8);
    Matrix y_ref, y_row, y_gnna;
    spmmReference(g, x_, y_ref);
    spmmRowWise(g, x_, y_row, opt_);
    spmmGnna(g, part, x_, y_gnna, opt_);
    EXPECT_TRUE(test::matricesNear(y_row, y_ref, kTol));
    EXPECT_TRUE(test::matricesNear(y_gnna, y_ref, kTol));
}

} // namespace
} // namespace maxk
