/**
 * @file
 * Tests for the design-ablation machinery: the SimOptions knobs that
 * disable the shared-memory accumulation buffer (SpGEMM) and the
 * dense-row prefetch (SSpMM) must preserve functional results while
 * degrading the simulated profile — evidence that the paper's two
 * kernel-design choices are what deliver the win. Also covers the
 * streaming (evict-first) cache hint.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "gpusim/context.hh"
#include "graph/edge_groups.hh"
#include "graph/generators.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

struct Fixture
{
    CsrGraph g;
    EdgeGroupPartition part;
    Matrix x;
    MaxKResult mk;
    SimOptions opt;

    Fixture()
    {
        Rng rng(41);
        g = rmat(10, 80000, rng);
        g.setAggregatorWeights(Aggregator::SageMean);
        part = EdgeGroupPartition::build(g, 32);
        x.resize(g.numNodes(), 256);
        fillNormal(x, rng, 0.0f, 1.0f);
        opt.device =
            gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);
        mk = maxkCompress(x, 16, opt);
    }
};

TEST(AblationSpgemm, NoBufferSameResult)
{
    Fixture f;
    Matrix y_buf, y_nobuf;
    spgemmForward(f.g, f.part, f.mk.cbsr, y_buf, f.opt);
    SimOptions no_buf = f.opt;
    no_buf.spgemmSharedBuffer = false;
    spgemmForward(f.g, f.part, f.mk.cbsr, y_nobuf, no_buf);
    EXPECT_TRUE(y_buf.approxEquals(y_nobuf, 1e-3f));
}

TEST(AblationSpgemm, NoBufferIsSlowerAndMoreAtomic)
{
    Fixture f;
    Matrix y;
    const auto with_buf =
        spgemmForward(f.g, f.part, f.mk.cbsr, y, f.opt);
    SimOptions no_buf = f.opt;
    no_buf.spgemmSharedBuffer = false;
    const auto without_buf =
        spgemmForward(f.g, f.part, f.mk.cbsr, y, no_buf);
    // Scattered per-element atomics: far more atomic transactions and
    // a slower kernel — the reason Algorithm 1 buffers on-chip.
    EXPECT_GT(without_buf.aggregate().atomicSectors,
              with_buf.aggregate().atomicSectors * 2);
    EXPECT_GT(without_buf.totalSeconds, with_buf.totalSeconds * 1.5);
}

TEST(AblationSspmm, NoPrefetchSameResult)
{
    Fixture f;
    Rng rng(42);
    Matrix dxl(f.g.numNodes(), 256);
    fillNormal(dxl, rng, 0.0f, 1.0f);
    CbsrMatrix a, b;
    a.adoptPattern(f.mk.cbsr);
    b.adoptPattern(f.mk.cbsr);
    sspmmBackward(f.g, f.part, dxl, a, f.opt);
    SimOptions no_pf = f.opt;
    no_pf.sspmmPrefetch = false;
    sspmmBackward(f.g, f.part, dxl, b, no_pf);
    for (NodeId r = 0; r < a.rows(); ++r)
        for (std::uint32_t kk = 0; kk < a.dimK(); ++kk)
            ASSERT_NEAR(a.dataRow(r)[kk], b.dataRow(r)[kk], 1e-4f);
}

TEST(AblationSspmm, NoPrefetchCostsMoreTraffic)
{
    // Compare in the uncached (pure-traffic) regime: at full dataset
    // scale the gradient matrix dwarfs the caches, which is exactly
    // the situation Sec. 4.2's prefetch exists for.
    Fixture f;
    SimOptions base = f.opt;
    base.simulateCaches = false;
    Matrix dxl(f.g.numNodes(), 256, 0.5f);
    CbsrMatrix a, b;
    a.adoptPattern(f.mk.cbsr);
    b.adoptPattern(f.mk.cbsr);
    const auto with_pf = sspmmBackward(f.g, f.part, dxl, a, base);
    SimOptions no_pf = base;
    no_pf.sspmmPrefetch = false;
    const auto without_pf = sspmmBackward(f.g, f.part, dxl, b, no_pf);
    // Uncoalesced gathers request a full sector per element.
    EXPECT_GT(without_pf.aggregate().reqBytes,
              with_pf.aggregate().reqBytes * 1.5);
    EXPECT_GT(without_pf.totalSeconds, with_pf.totalSeconds);
}

TEST(StreamingHint, DoesNotPolluteL2)
{
    gpusim::DeviceConfig cfg = gpusim::DeviceConfig::a100();
    cfg.l2Bytes = 2 * 1024; // 16 lines: tiny, easy to pollute
    cfg.l1BytesPerSm = 0;

    alignas(128) static float hot[32];
    alignas(128) static float stream[1 << 16];

    gpusim::KernelContext ctx(cfg, "t", true);
    ctx.globalRead(0, hot, sizeof(hot)); // install the hot line
    // Stream 256 KB with the evict-first hint...
    ctx.globalReadStreaming(0, stream, sizeof(stream));
    // ...the hot line must still be resident in L2 (probe from another
    // warp so its cold L1 cannot answer).
    ctx.globalRead(1, hot, sizeof(hot));
    const auto stats = ctx.finish();
    EXPECT_GT(stats.aggregate().l2Hits, 0u);
}

TEST(StreamingHint, NormalReadsDoPollute)
{
    gpusim::DeviceConfig cfg = gpusim::DeviceConfig::a100();
    cfg.l2Bytes = 2 * 1024;
    cfg.l1BytesPerSm = 0;

    alignas(128) static float hot[32];
    alignas(128) static float stream[1 << 16];

    gpusim::KernelContext ctx(cfg, "t", true);
    ctx.globalRead(0, hot, sizeof(hot));
    ctx.globalRead(0, stream, sizeof(stream)); // allocating stream
    ctx.globalRead(1, hot, sizeof(hot));       // hot line evicted
    const auto stats = ctx.finish();
    EXPECT_EQ(stats.aggregate().l2Hits, 0u);
}

TEST(Contention, LoneWriterCheaperThanManyWriters)
{
    // A ring (1 EG per row, no write-back contention) must spend fewer
    // issue ops per edge than a hub-heavy graph at identical nnz.
    SimOptions opt;
    opt.simulateCaches = false;
    const std::uint32_t dim = 64, k = 8;

    CsrGraph ring = ringLattice(4096, 16, false);
    ring.setAggregatorWeights(Aggregator::Gin);
    CsrGraph hubs = star(4096 * 8, false); // one massive row
    hubs.setAggregatorWeights(Aggregator::Gin);

    auto shared_ops_per_edge = [&](CsrGraph &g) {
        const auto part = EdgeGroupPartition::build(g, 32);
        Rng rng(1);
        Matrix x(g.numNodes(), dim);
        fillNormal(x, rng, 0.0f, 1.0f);
        MaxKResult mk = maxkCompress(x, k, opt);
        Matrix y;
        const auto stats = spgemmForward(g, part, mk.cbsr, y, opt);
        return static_cast<double>(stats.aggregate().sharedOps) /
               g.numEdges();
    };
    EXPECT_LT(shared_ops_per_edge(ring), shared_ops_per_edge(hubs));
}

} // namespace
} // namespace maxk
