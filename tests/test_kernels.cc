/**
 * @file
 * Tests for the baseline kernels: functional equivalence with the golden
 * reference, traffic expectations against the Sec. 4.3 formulas, and the
 * dense GEMM cost model.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/traffic_model.hh"
#include "graph/edge_groups.hh"
#include "graph/generators.hh"
#include "kernels/gemm_cost.hh"
#include "kernels/spmm_gnna.hh"
#include "kernels/spmm_outer_naive.hh"
#include "kernels/spmm_ref.hh"
#include "kernels/spmm_row_wise.hh"
#include "support/comparators.hh"
#include "support/fixtures.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

using Fixture = test::SpmmFixture;
using test::matricesNear;

TEST(SpmmRowWise, MatchesReference)
{
    Fixture f(200, 1500, 32, 1);
    Matrix y, y_ref;
    spmmRowWise(f.g, f.x, y, f.opt);
    spmmReference(f.g, f.x, y_ref);
    EXPECT_TRUE(matricesNear(y, y_ref, 1e-4f));
}

TEST(SpmmRowWise, HandlesEmptyRows)
{
    // Node 3 has no edges (no self loops requested).
    CsrGraph g = CsrGraph::fromEdges(4, {{0, 1}, {1, 2}}, true, false);
    Matrix x(4, 8, 1.0f);
    Matrix y;
    SimOptions opt;
    opt.simulateCaches = false;
    spmmRowWise(g, x, y, opt);
    for (std::size_t d = 0; d < 8; ++d)
        EXPECT_EQ(y.at(3, d), 0.0f);
}

TEST(SpmmRowWise, FeatureTrafficScalesWithDimAndNnz)
{
    Fixture f(256, 4000, 64, 2);
    Matrix y;
    const auto stats = spmmRowWise(f.g, f.x, y, f.opt);
    const Bytes expect =
        traffic::spmmFeatureBytes(f.g.numEdges(), 64);
    const Bytes got = stats.aggregate().reqBytes;
    // Feature fetches dominate; CSR metadata and output add < 20%.
    EXPECT_GT(got, expect);
    EXPECT_LT(got, expect * 1.2);
}

TEST(SpmmRowWise, NoAtomics)
{
    Fixture f(64, 300, 16, 3);
    Matrix y;
    const auto stats = spmmRowWise(f.g, f.x, y, f.opt);
    EXPECT_EQ(stats.aggregate().atomicSectors, 0u);
}

TEST(SpmmRowWise, CacheSimIncreasesHitRates)
{
    Fixture f(512, 16000, 64, 4);
    f.opt.simulateCaches = true;
    Matrix y;
    const auto stats = spmmRowWise(f.g, f.x, y, f.opt);
    // With 512 nodes x 64 dims the feature matrix fits in L2: repeat
    // fetches must hit.
    EXPECT_GT(stats.l2HitRate(), 0.5);
}

TEST(SpmmGnna, MatchesReference)
{
    Fixture f(200, 1500, 32, 5);
    const auto part = EdgeGroupPartition::build(f.g, 32);
    Matrix y, y_ref;
    spmmGnna(f.g, part, f.x, y, f.opt);
    spmmReference(f.g, f.x, y_ref);
    EXPECT_TRUE(matricesNear(y, y_ref, 1e-4f));
}

TEST(SpmmGnna, SlowerThanCuSparseModel)
{
    Fixture f(512, 8000, 128, 6);
    const auto part = EdgeGroupPartition::build(f.g, 32);
    Matrix y;
    const double t_cusparse =
        spmmRowWise(f.g, f.x, y, f.opt).totalSeconds;
    const double t_gnna =
        spmmGnna(f.g, part, f.x, y, f.opt).totalSeconds;
    // The paper measures GNNAdvisor ~1.3-1.4x behind cuSPARSE.
    EXPECT_GT(t_gnna, t_cusparse * 1.1);
    EXPECT_LT(t_gnna, t_cusparse * 2.0);
}

TEST(SpmmGnna, UsesAtomicsForWriteback)
{
    Fixture f(64, 400, 16, 7);
    const auto part = EdgeGroupPartition::build(f.g, 8);
    Matrix y;
    const auto stats = spmmGnna(f.g, part, f.x, y, f.opt);
    EXPECT_GT(stats.aggregate().atomicSectors, 0u);
}

TEST(SpmmOuterNaive, MatchesTransposedReference)
{
    Fixture f(150, 1200, 24, 8);
    Matrix y, y_ref;
    spmmOuterNaive(f.g, f.x, y, f.opt);
    spmmTransposedReference(f.g, f.x, y_ref);
    EXPECT_TRUE(matricesNear(y, y_ref, 1e-4f));
}

TEST(SpmmOuterNaive, EqualsExplicitTransposeSpmm)
{
    Fixture f(100, 900, 16, 9, Aggregator::Gcn);
    Matrix y_outer, y_t;
    spmmOuterNaive(f.g, f.x, y_outer, f.opt);
    const CsrGraph gt = f.g.transposed();
    spmmReference(gt, f.x, y_t);
    EXPECT_TRUE(matricesNear(y_outer, y_t, 1e-4f));
}

TEST(SpmmOuterNaive, WriteTrafficMatchesFormula)
{
    Fixture f(128, 2000, 32, 10);
    Matrix y;
    const auto stats = spmmOuterNaive(f.g, f.x, y, f.opt);
    // Atomic RMW on a full dense row per nonzero.
    const std::uint64_t expect_sectors =
        Bytes(f.g.numEdges()) * 32 * 4 / 32;
    EXPECT_EQ(stats.aggregate().atomicSectors, expect_sectors);
}

TEST(GemmCost, ScalesWithProblemSize)
{
    const auto cfg = gpusim::DeviceConfig::a100();
    // Sizes large enough that launch overhead is negligible.
    const double small = gemmSimSeconds(100000, 64, 64, cfg);
    const double big = gemmSimSeconds(800000, 64, 64, cfg);
    EXPECT_GT(big, small);
    EXPECT_NEAR(big / small, 8.0, 2.0); // roughly linear in m
}

TEST(GemmCost, IncludesLaunchOverhead)
{
    const auto cfg = gpusim::DeviceConfig::a100();
    EXPECT_GE(gemmSimSeconds(1, 1, 1, cfg),
              cfg.launchOverheadUs * 1e-6);
}

TEST(GemmCost, ComputeBoundForSquareShapes)
{
    const auto cfg = gpusim::DeviceConfig::a100();
    // 4096^3 GEMM: arithmetic intensity far above the roofline knee.
    // Dense GEMMs run on the TF32 tensor cores (the PyTorch path).
    const double t = gemmSimSeconds(4096, 4096, 4096, cfg, 1.0);
    const double t_compute =
        2.0 * 4096.0 * 4096.0 * 4096.0 / (cfg.peakTf32Tflops * 1e12);
    EXPECT_NEAR(t, cfg.launchOverheadUs * 1e-6 + t_compute, t * 0.05);
}

TEST(GemmCost, MemoryBoundForSkinnyShapes)
{
    const auto cfg = gpusim::DeviceConfig::a100();
    // m >> k = n = 4: bytes dominate flops.
    const double t = gemmSimSeconds(1 << 20, 4, 4, cfg, 1.0);
    const double t_mem =
        4.0 * ((1 << 20) * 4.0 + 16.0 + 2.0 * (1 << 20) * 4.0) /
        cfg.hbmBytesPerSec();
    EXPECT_NEAR(t, cfg.launchOverheadUs * 1e-6 + t_mem, t * 0.05);
}

TEST(ElementwiseCost, LinearInElements)
{
    const auto cfg = gpusim::DeviceConfig::a100();
    const double t1 = elementwiseSimSeconds(1 << 20, cfg);
    const double t2 = elementwiseSimSeconds(1 << 22, cfg);
    EXPECT_GT(t2, t1);
}

class SpmmEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SpmmEquivalenceSweep, AllBaselinesAgreeWithReference)
{
    const auto [dim, seed] = GetParam();
    Fixture f(96, 700, dim, 100 + seed);
    const auto part = EdgeGroupPartition::build(f.g, 16);
    Matrix y_row, y_gnna, y_ref;
    spmmRowWise(f.g, f.x, y_row, f.opt);
    spmmGnna(f.g, part, f.x, y_gnna, f.opt);
    spmmReference(f.g, f.x, y_ref);
    EXPECT_TRUE(matricesNear(y_row, y_ref, 1e-3f));
    EXPECT_TRUE(matricesNear(y_gnna, y_ref, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(DimSweep, SpmmEquivalenceSweep,
                         ::testing::Combine(::testing::Values(1, 7, 32,
                                                              129),
                                            ::testing::Values(0, 1)));

} // namespace
} // namespace maxk
