/**
 * @file
 * Unit tests for the GPU model: cache behaviour (LRU, dirty write-back),
 * device scaling, coalescing/sector accounting in KernelContext, the
 * phase bookkeeping, and the roofline timing law.
 */

#include <gtest/gtest.h>

#include <vector>

#include "gpusim/cache.hh"
#include "gpusim/context.hh"
#include "gpusim/device.hh"
#include "gpusim/kernel_stats.hh"

namespace maxk::gpusim
{
namespace
{

TEST(Cache, ColdMissThenHit)
{
    CacheModel c(1024, 4, 128);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1040, false).hit); // same 128B line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, DistinctLinesMissSeparately)
{
    CacheModel c(4096, 4, 128);
    EXPECT_FALSE(c.access(0, false).hit);
    EXPECT_FALSE(c.access(128, false).hit);
    EXPECT_FALSE(c.access(256, false).hit);
    EXPECT_EQ(c.misses(), 3u);
}

TEST(Cache, LruEvictsOldestWay)
{
    // 1 set x 2 ways of 128B lines: capacity 256B.
    CacheModel c(256, 2, 128);
    ASSERT_EQ(c.numSets(), 1u);
    c.access(0 * 128, false);      // A
    c.access(1 * 128, false);      // B
    c.access(0 * 128, false);      // touch A (B becomes LRU)
    c.access(2 * 128, false);      // C evicts B
    EXPECT_TRUE(c.access(0 * 128, false).hit);   // A survives
    EXPECT_FALSE(c.access(1 * 128, false).hit);  // B evicted
}

TEST(Cache, DirtyEvictionReported)
{
    CacheModel c(256, 2, 128);
    c.access(0, true);           // dirty A
    c.access(128, false);        // clean B
    const auto r = c.access(256, false); // evicts LRU = A (dirty)
    EXPECT_TRUE(r.evictedDirty);
}

TEST(Cache, CleanEvictionNotReported)
{
    CacheModel c(256, 2, 128);
    c.access(0, false);
    c.access(128, false);
    const auto r = c.access(256, false);
    EXPECT_FALSE(r.evictedDirty);
}

TEST(Cache, WriteMarksLineDirtyOnHit)
{
    CacheModel c(256, 2, 128);
    c.access(0, false);          // clean fill
    c.access(0, true);           // dirty it via hit
    c.access(128, false);
    const auto r = c.access(256, false); // evict line 0
    EXPECT_TRUE(r.evictedDirty);
}

TEST(Cache, ResetClearsContentsAndCounters)
{
    CacheModel c(1024, 4, 128);
    c.access(0, false);
    c.access(0, false);
    c.reset();
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_FALSE(c.access(0, false).hit);
}

TEST(Cache, HitRateComputed)
{
    CacheModel c(1024, 4, 128);
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    EXPECT_NEAR(c.hitRate(), 0.75, 1e-9);
}

TEST(Cache, SetsArePowerOfTwo)
{
    CacheModel c(40ull * 1024 * 1024, 16, 128);
    EXPECT_EQ(c.numSets() & (c.numSets() - 1), 0u);
    EXPECT_GE(c.numSets(), 1u);
}

TEST(Device, A100Defaults)
{
    const DeviceConfig cfg = DeviceConfig::a100();
    EXPECT_EQ(cfg.numSms, 108u);
    EXPECT_EQ(cfg.l2Bytes, 40ull * 1024 * 1024);
    EXPECT_NEAR(cfg.hbmBytesPerSec(), 1555e9, 1e6);
    EXPECT_GT(cfg.sharedOpsPerSec(), 1e11);
    EXPECT_GT(cfg.atomicSectorsPerSec(), 1e9);
}

TEST(Device, ScalingShrinksCachesProportionally)
{
    const DeviceConfig base = DeviceConfig::a100();
    const DeviceConfig half = base.scaledForWorkingSet(0.5);
    EXPECT_EQ(half.l2Bytes, base.l2Bytes / 2);
    EXPECT_EQ(half.l1BytesPerSm, base.l1BytesPerSm / 2);
    // Bandwidths untouched.
    EXPECT_EQ(half.hbmGBs, base.hbmGBs);
}

TEST(Device, ScalingFloorsTinyRatios)
{
    const DeviceConfig tiny =
        DeviceConfig::a100().scaledForWorkingSet(1e-9);
    EXPECT_GE(tiny.l2Bytes, 64u * 128u);
    EXPECT_GE(tiny.l1BytesPerSm, 16u * 128u);
}

TEST(Device, ScalingClampsAboveOne)
{
    const DeviceConfig cfg =
        DeviceConfig::a100().scaledForWorkingSet(5.0);
    EXPECT_EQ(cfg.l2Bytes, DeviceConfig::a100().l2Bytes);
}

TEST(Context, ContiguousReadSectorRounded)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "t", false);
    std::vector<float> buf(64);
    ctx.globalRead(0, buf.data(), 100); // 100B -> 4 sectors = 128B
    const KernelStats s = ctx.finish();
    EXPECT_EQ(s.aggregate().reqBytes, 128u);
}

TEST(Context, RepeatReadHitsL1)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "t", true);
    alignas(128) static float buf[32];
    ctx.globalRead(0, buf, sizeof(buf));
    ctx.globalRead(0, buf, sizeof(buf));
    const KernelStats s = ctx.finish();
    EXPECT_GT(s.aggregate().l1Hits, 0u);
    EXPECT_GT(s.l1HitRate(), 0.0);
}

TEST(Context, DifferentWarpsDifferentL1)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "t", true);
    alignas(128) static float buf[32];
    ctx.globalRead(0, buf, sizeof(buf));
    // Warp 1 maps to another SM: its L1 is cold, but L2 is shared.
    ctx.globalRead(1, buf, sizeof(buf));
    const KernelStats s = ctx.finish();
    EXPECT_EQ(s.aggregate().l1Hits, 0u);
    EXPECT_GT(s.aggregate().l2Hits, 0u);
}

TEST(Context, SameSmWarpsShareL1)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "t", true);
    alignas(128) static float buf[32];
    ctx.globalRead(0, buf, sizeof(buf));
    ctx.globalRead(cfg.modeledSms, buf, sizeof(buf)); // same SM slot
    const KernelStats s = ctx.finish();
    EXPECT_GT(s.aggregate().l1Hits, 0u);
}

TEST(Context, WritesBypassL1)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "t", true);
    alignas(128) static float buf[32];
    ctx.globalWrite(0, buf, sizeof(buf));
    ctx.globalWrite(0, buf, sizeof(buf));
    const KernelStats s = ctx.finish();
    EXPECT_EQ(s.aggregate().l1Hits, 0u);
    // Second write hits in L2 though.
    EXPECT_GT(s.aggregate().l2Hits, 0u);
}

TEST(Context, AtomicCountsSectorsAndRmwTraffic)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "t", false);
    alignas(128) static float buf[32];
    ctx.globalAtomicAccum(0, buf, sizeof(buf)); // 128B = 4 sectors
    const KernelStats s = ctx.finish();
    EXPECT_EQ(s.aggregate().atomicSectors, 4u);
    // RMW: write traffic plus L2 read-back accounted.
    EXPECT_GE(s.aggregate().l2ReqBytes, 2u * 128u);
}

TEST(Context, ScatteredAccessChargesFullSectors)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "t", false);
    static float a, b, c;
    const void *addrs[3] = {&a, &b, &c};
    ctx.globalReadScattered(0, addrs, 3, 4);
    const KernelStats s = ctx.finish();
    // 3 elements x 4 bytes requested, but 3 full sectors charged.
    EXPECT_GE(s.aggregate().reqBytes, 3u * 32u);
}

TEST(Context, PhasesAccumulateSeparately)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "t", false);
    ctx.beginPhase("one");
    ctx.flops(100);
    ctx.beginPhase("two");
    ctx.flops(50);
    ctx.usePhase("one");
    ctx.flops(10);
    const KernelStats s = ctx.finish();
    ASSERT_EQ(s.phases.size(), 2u);
    EXPECT_EQ(s.phases[0].name, "one");
    EXPECT_EQ(s.phases[0].flops, 110u);
    EXPECT_EQ(s.phases[1].flops, 50u);
    EXPECT_EQ(s.aggregate().flops, 160u);
}

TEST(Context, TimingIncludesLaunchOverhead)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "t", false);
    const KernelStats s = ctx.finish();
    EXPECT_NEAR(s.totalSeconds, cfg.launchOverheadUs * 1e-6, 1e-12);
}

TEST(Context, ComputeBoundKernelReportsComputeBottleneck)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "t", false);
    ctx.flops(1ull << 40); // ~1T flops, dwarfs everything else
    const KernelStats s = ctx.finish();
    EXPECT_EQ(s.bottleneck, "compute");
    EXPECT_NEAR(s.totalSeconds,
                cfg.launchOverheadUs * 1e-6 +
                    static_cast<double>(1ull << 40) / cfg.flopsPerSec(),
                1e-6);
}

TEST(Context, SharedOpsBoundKernel)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "t", false);
    ctx.sharedOps(1ull << 38, 0);
    const KernelStats s = ctx.finish();
    EXPECT_EQ(s.bottleneck, "shared");
}

TEST(Context, EfficiencyStretchesTime)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext c1(cfg, "t", false);
    c1.flops(1ull << 36);
    const double t1 = c1.finish(1.0).totalSeconds;

    KernelContext c2(cfg, "t", false);
    c2.flops(1ull << 36);
    const double t2 = c2.finish(0.5).totalSeconds;
    EXPECT_GT(t2, t1 * 1.8);
}

TEST(ContextDeathTest, UseAfterFinishPanics)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "t", false);
    ctx.finish();
    static float f;
    EXPECT_DEATH(ctx.globalRead(0, &f, 4), "finish");
}

TEST(KernelStats, MergeCombinesPhasesAndTime)
{
    KernelStats a, b;
    a.totalSeconds = 1.0;
    b.totalSeconds = 2.0;
    PhaseStats p;
    p.name = "x";
    p.flops = 5;
    a.phases.push_back(p);
    b.phases.push_back(p);
    a.merge(b);
    EXPECT_EQ(a.phases.size(), 2u);
    EXPECT_DOUBLE_EQ(a.totalSeconds, 3.0);
}

TEST(KernelStats, BandwidthUtilizationBounded)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "t", false);
    std::vector<float> buf(1 << 20);
    for (int i = 0; i < 16; ++i)
        ctx.globalRead(i, buf.data(), buf.size() * sizeof(float));
    const KernelStats s = ctx.finish();
    const double util = s.bandwidthUtilization(cfg);
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.01);
}

TEST(KernelStats, SummaryMentionsKernelName)
{
    DeviceConfig cfg = DeviceConfig::a100();
    KernelContext ctx(cfg, "my_kernel", false);
    ctx.flops(10);
    const KernelStats s = ctx.finish();
    EXPECT_NE(s.summary(cfg).find("my_kernel"), std::string::npos);
}

} // namespace
} // namespace maxk::gpusim
