/**
 * @file
 * Unit tests for src/common: RNG determinism and statistics, table/CSV
 * rendering, numeric formatting, logging levels.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stopwatch.hh"
#include "common/table.hh"

namespace maxk
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const Float u = rng.uniform();
        ASSERT_GE(u, 0.0f);
        ASSERT_LT(u, 1.0f);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const Float u = rng.uniform(-3.0f, 5.0f);
        ASSERT_GE(u, -3.0f);
        ASSERT_LT(u, 5.0f);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0f, 2.0f);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BoundedStaysBelowBound)
{
    Rng rng(19);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.nextBounded(37), 37u);
}

TEST(Rng, BoundedCoversAllResidues)
{
    Rng rng(23);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3f) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkedStreamsIndependent)
{
    Rng parent(31);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng a(37), b(37);
    Rng ca = a.fork(), cb = b.fork();
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(ca.next(), cb.next());
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    const std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22222"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RowCountTracked)
{
    TextTable t({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"x"});
    t.addRow({"y"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvEscapesCommasAndQuotes)
{
    TextTable t({"a", "b"});
    t.addRow({"x,y", "say \"hi\""});
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, CsvPlainCellsUnquoted)
{
    TextTable t({"a"});
    t.addRow({"plain"});
    EXPECT_NE(t.renderCsv().find("plain\n"), std::string::npos);
    EXPECT_EQ(t.renderCsv().find('"'), std::string::npos);
}

TEST(Format, FloatDecimals)
{
    EXPECT_EQ(formatFloat(3.14159, 2), "3.14");
    EXPECT_EQ(formatFloat(2.0, 0), "2");
    EXPECT_EQ(formatFloat(-1.5, 1), "-1.5");
}

TEST(Format, Scientific)
{
    EXPECT_EQ(formatSci(12345.0, 3), "1.23e+04");
}

TEST(Format, Bytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KB");
    EXPECT_EQ(formatBytes(13.13e9), "12.23 GB");
}

TEST(Format, Speedup)
{
    EXPECT_EQ(formatSpeedup(3.2234), "3.22x");
    EXPECT_EQ(formatSpeedup(1.0), "1.00x");
}

TEST(Logging, LevelGateHoldsMessages)
{
    const LogLevel prev = logLevel();
    setLogLevel(LogLevel::Error);
    // Only checks the gate does not crash; output goes to stderr.
    logMessage(LogLevel::Debug, "below the gate");
    logMessage(LogLevel::Error, "at the gate");
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(prev);
}

TEST(Logging, CheckInvariantPassesOnTrue)
{
    checkInvariant(true, "never fires");
    SUCCEED();
}

TEST(LoggingDeathTest, CheckInvariantAbortsOnFalse)
{
    EXPECT_DEATH(checkInvariant(false, "boom"), "boom");
}

TEST(Stopwatch, MeasuresNonNegativeTime)
{
    Stopwatch w;
    // Plain assignment: compound assignment on a volatile operand is
    // deprecated in C++20 (gcc 12 warns under -Werror).
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i)
        sink = sink + i;
    EXPECT_GE(w.seconds(), 0.0);
    EXPECT_GE(w.milliseconds(), w.seconds() * 1e3 - 1e-9);
}

} // namespace
} // namespace maxk
