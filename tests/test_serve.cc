/**
 * @file
 * Property-test layer for the online serving path (ISSUE 8):
 *
 *  - RequestBatcher: partition/order/deadline/capacity invariants on
 *    random traces, plus the capacity-fill early-dispatch rule;
 *  - EmbeddingCache: pinned + LRU accounting bitwise-matched against a
 *    naive map oracle, and CBSR/dense row round-trips;
 *  - ServeSession correctness anchor: cache-enabled serving is BITWISE
 *    equal to cache-disabled full-recompute serving on every request,
 *    across cache fractions {0.1, 0.5, 1.0}, LRU sizes, MAXK_THREADS
 *    {1, 4}, shuffled arrival orders, model kinds (SAGE/GCN/GIN) and
 *    nonlinearities (MaxK/ReLU), including warm-cache repeat replays;
 *  - steady-state replay performs zero Matrix/CbsrMatrix allocations;
 *  - repeat traffic yields cache hits and strictly higher simulated
 *    throughput than the cache-off path;
 *  - out-of-range vertices surface as typed errors, and the session
 *    stays usable afterwards.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "nn/model.hh"
#include "serve/session.hh"
#include "serve/trace.hh"
#include "support/fixtures.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

using serve::EmbeddingCache;
using serve::RequestBatch;
using serve::RequestBatcher;
using serve::ServeConfig;
using serve::ServeReport;
using serve::ServeRequest;
using serve::ServeSession;

struct ThreadGuard
{
    ~ThreadGuard() { setDefaultThreads(0); }
};

/* ----------------------------------------------------------- batcher */

std::vector<ServeRequest>
randomTrace(Rng &rng, NodeId num_nodes, std::size_t count,
            double mean_gap)
{
    std::vector<ServeRequest> trace(count);
    double t = 0.0;
    for (ServeRequest &r : trace) {
        t += rng.uniform() * 2.0 * mean_gap;
        r.arrivalSimSeconds = t;
        r.vertex = static_cast<NodeId>(rng.nextBounded(num_nodes));
    }
    return trace;
}

void
checkBatchingInvariants(const std::vector<ServeRequest> &trace,
                        const std::vector<RequestBatch> &batches,
                        double deadline, std::uint32_t capacity)
{
    std::vector<std::uint8_t> seen(trace.size(), 0);
    for (const RequestBatch &b : batches) {
        ASSERT_FALSE(b.requests.empty());
        ASSERT_LE(b.requests.size(), capacity);
        for (std::size_t i = 0; i < b.requests.size(); ++i) {
            const std::uint32_t idx = b.requests[i];
            ASSERT_LT(idx, trace.size());
            ASSERT_EQ(seen[idx], 0) << "request batched twice";
            seen[idx] = 1;
            // No member waits past its deadline, and dispatch never
            // precedes an arrival in the batch.
            ASSERT_LE(b.dispatchSimSeconds,
                      trace[idx].arrivalSimSeconds + deadline + 1e-12);
            ASSERT_GE(b.dispatchSimSeconds,
                      trace[idx].arrivalSimSeconds - 1e-12);
            if (i > 0) {
                const std::uint32_t prev = b.requests[i - 1];
                const bool ordered =
                    trace[prev].arrivalSimSeconds <
                        trace[idx].arrivalSimSeconds ||
                    (trace[prev].arrivalSimSeconds ==
                         trace[idx].arrivalSimSeconds &&
                     prev < idx);
                ASSERT_TRUE(ordered) << "batch not in arrival order";
            }
        }
    }
    // Partition: every request in exactly one batch.
    for (std::size_t i = 0; i < trace.size(); ++i)
        ASSERT_EQ(seen[i], 1) << "request " << i << " never batched";
}

TEST(RequestBatcher, InvariantsOnRandomTraces)
{
    Rng rng(901);
    for (const double deadline : {1e-4, 2e-3, 1.0}) {
        for (const std::uint32_t capacity : {1u, 7u, 32u}) {
            SCOPED_TRACE("deadline=" + std::to_string(deadline) +
                         " capacity=" + std::to_string(capacity));
            RequestBatcher batcher(deadline, capacity);
            std::vector<RequestBatch> batches;
            for (int round = 0; round < 4; ++round) {
                const std::vector<ServeRequest> trace =
                    randomTrace(rng, 50, 120, 5e-4);
                batcher.plan(trace, batches);
                checkBatchingInvariants(trace, batches, deadline,
                                        capacity);
            }
        }
    }
}

TEST(RequestBatcher, CapacityFillDispatchesEarly)
{
    RequestBatcher batcher(1.0, 2);
    // Four requests well inside one deadline window: capacity 2 must
    // split them into two batches dispatched at the filling arrival.
    const std::vector<ServeRequest> trace = {
        {0.10, 1}, {0.11, 2}, {0.12, 3}, {0.13, 4}};
    std::vector<RequestBatch> batches;
    batcher.plan(trace, batches);
    ASSERT_EQ(batches.size(), 2u);
    EXPECT_EQ(batches[0].requests, (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(batches[0].dispatchSimSeconds, 0.11);
    EXPECT_EQ(batches[1].requests, (std::vector<std::uint32_t>{2, 3}));
    EXPECT_EQ(batches[1].dispatchSimSeconds, 0.13);

    // A lone request under an unfilled deadline waits the full window.
    batcher.plan({{0.5, 9}}, batches);
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].dispatchSimSeconds, 1.5);
}

TEST(RequestBatcher, UnsortedTraceMatchesSortedTrace)
{
    Rng rng(902);
    std::vector<ServeRequest> trace = randomTrace(rng, 40, 64, 1e-3);
    RequestBatcher batcher(2e-3, 8);
    std::vector<RequestBatch> sorted_plan;
    batcher.plan(trace, sorted_plan);

    // Shuffle the vector order; arrivals are distinct, so batching must
    // regroup the exact same (arrival, vertex) sets.
    std::vector<std::uint32_t> perm(trace.size());
    for (std::uint32_t i = 0; i < perm.size(); ++i)
        perm[i] = i;
    for (std::size_t i = perm.size(); i > 1; --i)
        std::swap(perm[i - 1], perm[rng.nextBounded(i)]);
    std::vector<ServeRequest> shuffled(trace.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        shuffled[i] = trace[perm[i]];

    std::vector<RequestBatch> shuffled_plan;
    batcher.plan(shuffled, shuffled_plan);
    ASSERT_EQ(shuffled_plan.size(), sorted_plan.size());
    for (std::size_t b = 0; b < sorted_plan.size(); ++b) {
        ASSERT_EQ(shuffled_plan[b].dispatchSimSeconds,
                  sorted_plan[b].dispatchSimSeconds);
        ASSERT_EQ(shuffled_plan[b].requests.size(),
                  sorted_plan[b].requests.size());
        for (std::size_t i = 0; i < sorted_plan[b].requests.size(); ++i) {
            const ServeRequest &a = trace[sorted_plan[b].requests[i]];
            const ServeRequest &s =
                shuffled[shuffled_plan[b].requests[i]];
            ASSERT_EQ(a.arrivalSimSeconds, s.arrivalSimSeconds);
            ASSERT_EQ(a.vertex, s.vertex);
        }
    }
}

/* ---------------------------------------------------- embedding cache */

/** Naive reference for the pinned+LRU policy: same inputs, same slots,
 *  same stats — maps and linear scans instead of the cache's arrays. */
struct CacheOracle
{
    NodeId pinnedCount;
    std::uint32_t lruSlots;
    std::map<NodeId, std::int64_t> pinnedSlot;
    // Per layer: vertex -> slot and slot -> (vertex, last touch).
    std::vector<std::map<NodeId, std::int64_t>> slotOf;
    std::vector<std::map<std::int64_t, std::pair<NodeId, std::uint64_t>>>
        lru;
    std::uint64_t clock = 0;
    serve::CacheStats stats;

    CacheOracle(std::uint32_t layers, const std::vector<NodeId> &pinned,
                std::uint32_t lru_slots)
        : pinnedCount(static_cast<NodeId>(pinned.size())),
          lruSlots(lru_slots), slotOf(layers), lru(layers)
    {
        for (std::size_t p = 0; p < pinned.size(); ++p)
            pinnedSlot[pinned[p]] = static_cast<std::int64_t>(p);
    }

    std::int64_t
    lookup(std::uint32_t layer, NodeId v)
    {
        auto it = slotOf[layer].find(v);
        if (it == slotOf[layer].end()) {
            ++stats.misses;
            return -1;
        }
        ++stats.hits;
        if (it->second >= static_cast<std::int64_t>(pinnedCount))
            lru[layer][it->second] = {v, ++clock};
        return it->second;
    }

    std::int64_t
    admit(std::uint32_t layer, NodeId v)
    {
        auto pin = pinnedSlot.find(v);
        if (pin != pinnedSlot.end()) {
            slotOf[layer][v] = pin->second;
            ++stats.stores;
            return pin->second;
        }
        if (lruSlots == 0) {
            ++stats.rejected;
            return -1;
        }
        std::int64_t slot;
        if (lru[layer].size() < lruSlots) {
            slot = static_cast<std::int64_t>(pinnedCount +
                                             lru[layer].size());
        } else {
            auto victim = lru[layer].begin();
            for (auto it = lru[layer].begin(); it != lru[layer].end();
                 ++it)
                if (it->second.second < victim->second.second)
                    victim = it;
            slotOf[layer].erase(victim->second.first);
            slot = victim->first;
            ++stats.evictions;
        }
        slotOf[layer][v] = slot;
        lru[layer][slot] = {v, ++clock};
        ++stats.stores;
        return slot;
    }
};

TEST(EmbeddingCache, MatchesNaiveMapOracle)
{
    const NodeId n = 64;
    const std::vector<NodeId> pinned = {3, 17, 40, 41};
    for (const std::uint32_t lru_slots : {0u, 1u, 5u}) {
        SCOPED_TRACE("lruSlots=" + std::to_string(lru_slots));
        std::vector<EmbeddingCache::LayerSpec> specs(2);
        specs[0] = {4, 16, true};
        specs[1] = {8, 8, false};
        EmbeddingCache cache(n, specs, pinned, lru_slots);
        CacheOracle oracle(2, pinned, lru_slots);

        Rng rng(331 + lru_slots);
        for (int op = 0; op < 4000; ++op) {
            const std::uint32_t layer =
                static_cast<std::uint32_t>(rng.nextBounded(2));
            const NodeId v = static_cast<NodeId>(rng.nextBounded(n));
            const std::int64_t got = cache.lookup(layer, v);
            const std::int64_t want = oracle.lookup(layer, v);
            ASSERT_EQ(got, want) << "lookup op " << op;
            if (got < 0) {
                // Miss: compute-and-admit, exactly like the session.
                ASSERT_EQ(cache.admit(layer, v),
                          oracle.admit(layer, v))
                    << "admit op " << op;
            }
        }
        EXPECT_EQ(cache.stats().hits, oracle.stats.hits);
        EXPECT_EQ(cache.stats().misses, oracle.stats.misses);
        EXPECT_EQ(cache.stats().stores, oracle.stats.stores);
        EXPECT_EQ(cache.stats().evictions, oracle.stats.evictions);
        EXPECT_EQ(cache.stats().rejected, oracle.stats.rejected);
        // Validity probes agree with the oracle's final occupancy.
        for (std::uint32_t layer = 0; layer < 2; ++layer)
            for (NodeId v = 0; v < n; ++v)
                ASSERT_EQ(cache.cached(layer, v),
                          oracle.slotOf[layer].count(v) != 0);
    }
}

TEST(EmbeddingCache, CbsrAndDenseRowsRoundTripBitwise)
{
    const std::uint32_t k = 6, dim = 24;
    std::vector<EmbeddingCache::LayerSpec> specs = {
        {k, dim, true}, {dim, dim, false}};
    EmbeddingCache cache(32, specs, {0, 1, 2, 3}, 2);

    Rng rng(77);
    CbsrMatrix src(4, k, dim), dst(4, k, dim);
    for (NodeId r = 0; r < 4; ++r) {
        // Ascending distinct indices, random payload.
        std::uint32_t col = static_cast<std::uint32_t>(
            rng.nextBounded(dim - k));
        for (std::uint32_t kk = 0; kk < k; ++kk) {
            src.dataRow(r)[kk] =
                static_cast<Float>(rng.uniform() * 2.0 - 1.0);
            src.setIndex(r, kk, col);
            col += 1 + static_cast<std::uint32_t>(
                       rng.nextBounded(2));
        }
    }
    for (NodeId r = 0; r < 4; ++r) {
        const std::int64_t slot = cache.admit(0, r);
        ASSERT_GE(slot, 0);
        cache.storeCbsrRow(0, slot, src, r);
        cache.loadCbsrRow(0, slot, dst, r);
        for (std::uint32_t kk = 0; kk < k; ++kk) {
            ASSERT_EQ(dst.dataRow(r)[kk], src.dataRow(r)[kk]);
            ASSERT_EQ(dst.indexAt(r, kk), src.indexAt(r, kk));
        }
    }
    // CBSR rowBytes: k floats + k narrow indices (the ~k/dim win).
    EXPECT_EQ(cache.rowBytes(0), k * sizeof(Float) + k * 1);
    EXPECT_LT(cache.storageBytes(), cache.denseEquivalentBytes());

    Matrix dense(4, dim), back(4, dim);
    fillNormal(dense, rng, 0.0f, 1.0f);
    for (NodeId r = 0; r < 4; ++r) {
        const std::int64_t slot = cache.admit(1, r);
        ASSERT_GE(slot, 0);
        cache.storeDenseRow(1, slot, dense.row(r));
        cache.loadDenseRow(1, slot, back.row(r));
        for (std::uint32_t c = 0; c < dim; ++c)
            ASSERT_EQ(back.at(r, c), dense.at(r, c));
    }
}

/* ------------------------------------------------ serving equivalence */

struct ServeRig
{
    CsrGraph graph;
    Matrix features;
    nn::GnnModel model;

    ServeRig(nn::GnnKind kind, nn::Nonlinearity nonlin,
             std::uint32_t layers, std::uint64_t seed)
        : graph(test::makeGraph(test::GraphShape::Community, 300, 2400,
                                static_cast<std::uint32_t>(seed))),
          features(graph.numNodes(), 16),
          model(modelConfig(kind, nonlin, layers, seed))
    {
        Rng rng(seed * 31 + 7);
        fillNormal(features, rng, 0.0f, 1.0f);
    }

    static nn::ModelConfig
    modelConfig(nn::GnnKind kind, nn::Nonlinearity nonlin,
                std::uint32_t layers, std::uint64_t seed)
    {
        nn::ModelConfig cfg;
        cfg.kind = kind;
        cfg.nonlin = nonlin;
        cfg.maxkK = 8;
        cfg.numLayers = layers;
        cfg.inDim = 16;
        cfg.hiddenDim = 32;
        cfg.outDim = 7;
        cfg.dropout = 0.0f;
        cfg.seed = seed;
        return cfg;
    }
};

ServeConfig
serveConfig(double fraction, std::uint32_t lru_slots)
{
    ServeConfig cfg;
    cfg.fanout = 4;
    cfg.batchCapacity = 16;
    cfg.deadlineSimSeconds = 2e-3;
    cfg.cacheFraction = fraction;
    cfg.lruSlots = lru_slots;
    return cfg;
}

/** Zipf-flavoured trace: repeats concentrate on low vertex ids. */
std::vector<ServeRequest>
hotTrace(Rng &rng, NodeId num_nodes, std::size_t count)
{
    std::vector<ServeRequest> trace(count);
    double t = 0.0;
    for (ServeRequest &r : trace) {
        t += rng.uniform() * 1e-3;
        r.arrivalSimSeconds = t;
        // Half the traffic hits the 16 hottest vertices.
        if (rng.bernoulli(0.5))
            r.vertex = static_cast<NodeId>(rng.nextBounded(16));
        else
            r.vertex =
                static_cast<NodeId>(rng.nextBounded(num_nodes));
    }
    return trace;
}

/** Compare per-request logits between two reports over the SAME trace
 *  content, where `perm` maps reference trace index -> other index. */
void
expectSameLogits(const ServeReport &ref, const ServeReport &got,
                 const std::vector<std::uint32_t> &perm)
{
    ASSERT_EQ(ref.requests, got.requests);
    ASSERT_EQ(ref.logits.cols(), got.logits.cols());
    for (std::size_t i = 0; i < perm.size(); ++i)
        for (std::size_t c = 0; c < ref.logits.cols(); ++c)
            ASSERT_EQ(ref.logits.at(i, c), got.logits.at(perm[i], c))
                << "request " << i << " col " << c;
}

std::vector<std::uint32_t>
identityPerm(std::size_t n)
{
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; ++i)
        perm[i] = i;
    return perm;
}

TEST(ServeSession, CachedBitwiseEqualsUncachedAcrossEverything)
{
    ThreadGuard guard;
    struct Arch
    {
        nn::GnnKind kind;
        nn::Nonlinearity nonlin;
        std::uint32_t layers;
        const char *name;
    };
    const Arch archs[] = {
        {nn::GnnKind::Sage, nn::Nonlinearity::MaxK, 2, "sage-maxk-2"},
        {nn::GnnKind::Gcn, nn::Nonlinearity::MaxK, 2, "gcn-maxk-2"},
        {nn::GnnKind::Gin, nn::Nonlinearity::MaxK, 2, "gin-maxk-2"},
        {nn::GnnKind::Sage, nn::Nonlinearity::Relu, 2, "sage-relu-2"},
        {nn::GnnKind::Sage, nn::Nonlinearity::MaxK, 3, "sage-maxk-3"},
    };

    for (const Arch &arch : archs) {
        SCOPED_TRACE(arch.name);
        ServeRig rig(arch.kind, arch.nonlin, arch.layers, 1100);
        Rng rng(1200);
        const std::vector<ServeRequest> trace =
            hotTrace(rng, rig.graph.numNodes(), 160);

        setDefaultThreads(1);
        ServeSession ref_session(rig.model, rig.graph, rig.features,
                                 serveConfig(0.0, 0));
        ASSERT_FALSE(ref_session.cacheEnabled());
        auto ref = ref_session.replay(trace);
        ASSERT_TRUE(ref.hasValue());
        ASSERT_EQ(ref.value().requests, trace.size());

        const std::vector<std::uint32_t> id =
            identityPerm(trace.size());
        for (const double fraction : {0.1, 0.5, 1.0}) {
            for (const std::uint32_t threads : {1u, 4u}) {
                SCOPED_TRACE("fraction=" + std::to_string(fraction) +
                             " threads=" + std::to_string(threads));
                setDefaultThreads(threads);
                ServeSession cached(rig.model, rig.graph, rig.features,
                                    serveConfig(fraction, 8));
                ASSERT_TRUE(cached.cacheEnabled());
                auto cold = cached.replay(trace);
                ASSERT_TRUE(cold.hasValue());
                expectSameLogits(ref.value(), cold.value(), id);
                // Warm cache: different inject/compute split, same
                // logits.
                auto warm = cached.replay(trace);
                ASSERT_TRUE(warm.hasValue());
                expectSameLogits(ref.value(), warm.value(), id);
            }
        }

        // Arrival interleaving: shuffling the trace vector (distinct
        // arrival times keep batching identical) must not move a single
        // bit of any request's logits.
        setDefaultThreads(1);
        std::vector<std::uint32_t> perm = id;
        for (std::size_t i = perm.size(); i > 1; --i)
            std::swap(perm[i - 1], perm[rng.nextBounded(i)]);
        std::vector<ServeRequest> shuffled(trace.size());
        for (std::size_t i = 0; i < perm.size(); ++i)
            shuffled[perm[i]] = trace[i];
        ServeSession again(rig.model, rig.graph, rig.features,
                           serveConfig(0.5, 8));
        auto shuffled_rep = again.replay(shuffled);
        ASSERT_TRUE(shuffled_rep.hasValue());
        expectSameLogits(ref.value(), shuffled_rep.value(), perm);
    }
}

TEST(ServeSession, ReplayIsIdempotentOnLogits)
{
    // Same session, same trace, three replays: logits bitwise-stable
    // even as cache state evolves between them.
    ServeRig rig(nn::GnnKind::Sage, nn::Nonlinearity::MaxK, 2, 1300);
    Rng rng(1301);
    const std::vector<ServeRequest> trace =
        hotTrace(rng, rig.graph.numNodes(), 96);
    ServeSession session(rig.model, rig.graph, rig.features,
                         serveConfig(0.2, 4));
    auto first = session.replay(trace);
    ASSERT_TRUE(first.hasValue());
    const std::vector<std::uint32_t> id = identityPerm(trace.size());
    for (int round = 0; round < 2; ++round) {
        auto next = session.replay(trace);
        ASSERT_TRUE(next.hasValue());
        expectSameLogits(first.value(), next.value(), id);
    }
}

/* --------------------------------------------------- stats and allocs */

TEST(ServeSession, SteadyStateServingIsAllocationFree)
{
    ServeRig rig(nn::GnnKind::Sage, nn::Nonlinearity::MaxK, 2, 1400);
    Rng rng(1401);
    const std::vector<ServeRequest> trace =
        hotTrace(rng, rig.graph.numNodes(), 200);
    for (const double fraction : {0.0, 0.5}) {
        SCOPED_TRACE("fraction=" + std::to_string(fraction));
        ServeSession session(rig.model, rig.graph, rig.features,
                             serveConfig(fraction, 8));
        auto rep = session.replay(trace);
        ASSERT_TRUE(rep.hasValue());
        ASSERT_GT(rep.value().batches, 3u);
        EXPECT_EQ(rep.value().steadyStateAllocCount, 0u)
            << rep.value().steadyStateAllocCount
            << " Matrix/CbsrMatrix allocations after batch 2";
    }
}

TEST(ServeSession, CacheHitsAndThroughputOnRepeatTraffic)
{
    ServeRig rig(nn::GnnKind::Sage, nn::Nonlinearity::MaxK, 2, 1500);
    Rng rng(1501);
    const std::vector<ServeRequest> trace =
        hotTrace(rng, rig.graph.numNodes(), 240);

    ServeSession off(rig.model, rig.graph, rig.features,
                     serveConfig(0.0, 0));
    auto off_rep = off.replay(trace);
    ASSERT_TRUE(off_rep.hasValue());
    EXPECT_EQ(off_rep.value().cacheHits, 0u);
    EXPECT_EQ(off_rep.value().nodesInjected, 0u);

    ServeSession on(rig.model, rig.graph, rig.features,
                    serveConfig(0.5, 16));
    auto cold = on.replay(trace);
    ASSERT_TRUE(cold.hasValue());
    // Hot vertices repeat within the trace, so even the cold replay
    // hits once their first batch stored them.
    EXPECT_GT(cold.value().cacheHits, 0u);
    EXPECT_GT(cold.value().nodesInjected, 0u);
    EXPECT_GT(cold.value().cacheStores, 0u);

    auto warm = on.replay(trace);
    ASSERT_TRUE(warm.hasValue());
    EXPECT_GT(warm.value().cacheHits, cold.value().cacheHits / 2);
    // The cache must convert injected rows into strictly less
    // recomputation and strictly more simulated throughput.
    EXPECT_LT(warm.value().nodesRecomputed,
              off_rep.value().nodesRecomputed);
    EXPECT_GT(warm.value().requestsPerSimSecond,
              off_rep.value().requestsPerSimSecond);
}

TEST(ServeSession, ReportAccountingConsistent)
{
    ServeRig rig(nn::GnnKind::Gcn, nn::Nonlinearity::MaxK, 2, 1600);
    Rng rng(1601);
    const std::vector<ServeRequest> trace =
        hotTrace(rng, rig.graph.numNodes(), 120);
    ServeSession session(rig.model, rig.graph, rig.features,
                         serveConfig(0.3, 8));
    auto rep_or = session.replay(trace);
    ASSERT_TRUE(rep_or.hasValue());
    const ServeReport &rep = rep_or.value();

    ASSERT_EQ(rep.requests, trace.size());
    ASSERT_EQ(rep.batchStats.size(), rep.batches);
    ASSERT_EQ(rep.latencySimSeconds.size(), trace.size());
    ASSERT_EQ(rep.requestBatch.size(), trace.size());

    std::uint64_t requests = 0, recomputed = 0, injected = 0;
    double service = 0.0;
    for (const auto &bs : rep.batchStats) {
        requests += bs.requests;
        recomputed += bs.nodesRecomputed;
        injected += bs.nodesInjected;
        service += bs.serviceSimSeconds;
        ASSERT_GT(bs.serviceSimSeconds, 0.0);
        ASSERT_LE(bs.seeds, bs.requests);
    }
    EXPECT_EQ(requests, rep.requests);
    EXPECT_EQ(recomputed, rep.nodesRecomputed);
    EXPECT_EQ(injected, rep.nodesInjected);
    EXPECT_EQ(service, rep.serviceSimSeconds);

    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_LT(rep.requestBatch[i], rep.batches);
        const auto &bs = rep.batchStats[rep.requestBatch[i]];
        // latency = dispatch + service - arrival >= service > 0, and
        // the queueing part is bounded by the deadline.
        ASSERT_GE(rep.latencySimSeconds[i], bs.serviceSimSeconds);
        ASSERT_LE(rep.latencySimSeconds[i],
                  session.config().deadlineSimSeconds +
                      bs.serviceSimSeconds + 1e-12);
    }
    EXPECT_LE(rep.p50LatencySimSeconds, rep.p99LatencySimSeconds);
    EXPECT_LE(rep.p99LatencySimSeconds, rep.maxLatencySimSeconds);

    // Pinning honoured: every pinned vertex reports pinned() true.
    ASSERT_TRUE(session.cache() != nullptr);
    for (const NodeId v : session.pinnedVertices())
        EXPECT_TRUE(session.cache()->pinned(v));
    EXPECT_EQ(session.pinnedVertices().size(),
              static_cast<std::size_t>(
                  session.cache()->pinnedCount()));
}

/* --------------------------------------------------------- typed errors */

TEST(ServeSession, OutOfRangeVertexReturnsTypedError)
{
    ServeRig rig(nn::GnnKind::Sage, nn::Nonlinearity::MaxK, 2, 1700);
    ServeSession session(rig.model, rig.graph, rig.features,
                         serveConfig(0.2, 4));

    std::vector<ServeRequest> trace = {
        {1e-4, 3}, {2e-4, rig.graph.numNodes()}, {3e-4, 5}};
    auto bad = session.replay(trace);
    ASSERT_FALSE(bad.hasValue());
    EXPECT_EQ(bad.error().requestIndex, 1u);
    EXPECT_NE(bad.error().message.find("out of range"),
              std::string::npos);

    // The failed replay left the session usable.
    trace[1].vertex = 7;
    auto good = session.replay(trace);
    ASSERT_TRUE(good.hasValue());
    EXPECT_EQ(good.value().requests, 3u);

    // Non-finite arrival times are typed errors too.
    trace[2].arrivalSimSeconds =
        std::numeric_limits<double>::quiet_NaN();
    auto nan_rep = session.replay(trace);
    ASSERT_FALSE(nan_rep.hasValue());
    EXPECT_EQ(nan_rep.error().requestIndex, 2u);
}

/* ------------------------------------------------------ trace parsing */

TEST(ServeTrace, WellFormedLinesParseInFileOrder)
{
    const char *text = "# a comment\n"
                       "\n"
                       "1.5e-3 7\n"
                       "   2e-3\t42   \n" // whitespace-tolerant
                       "0 0\n";
    auto parsed = serve::parseServeTrace(text, "t.trace", true);
    ASSERT_TRUE(parsed.hasValue());
    const auto &r = parsed.value();
    EXPECT_TRUE(r.skipped.empty());
    ASSERT_EQ(r.requests.size(), 3u);
    EXPECT_EQ(r.requests[0].arrivalSimSeconds, 1.5e-3);
    EXPECT_EQ(r.requests[0].vertex, 7u);
    EXPECT_EQ(r.requests[1].arrivalSimSeconds, 2e-3);
    EXPECT_EQ(r.requests[1].vertex, 42u);
    EXPECT_EQ(r.requests[2].vertex, 0u);
}

TEST(ServeTrace, StrictModeFailsOnTheFirstMalformedLineWithItsNumber)
{
    const char *text = "1e-3 1\n"
                       "2e-3 2\n"
                       "not-a-number 3\n"
                       "4e-3 4\n";
    auto parsed = serve::parseServeTrace(text, "t.trace", true);
    ASSERT_FALSE(parsed.hasValue());
    EXPECT_EQ(parsed.error().code, IoErrorCode::ParseError);
    EXPECT_EQ(parsed.error().line, 3u);
    EXPECT_EQ(parsed.error().path, "t.trace");
}

TEST(ServeTrace, LenientModeSkipsAndReportsEveryMalformedLine)
{
    const char *text = "1e-3 1\n"
                       "bogus\n"            // line 2: not two fields
                       "2e-3 2 trailing\n"  // line 3: trailing junk
                       "inf 3\n"            // line 4: non-finite arrival
                       "3e-3 4294967296\n"  // line 5: vertex > 32 bits
                       "4e-3 -1\n"          // line 6: negative vertex
                       "5e-3 5\n";
    auto parsed = serve::parseServeTrace(text, "t.trace", false);
    ASSERT_TRUE(parsed.hasValue());
    const auto &r = parsed.value();
    ASSERT_EQ(r.requests.size(), 2u);
    EXPECT_EQ(r.requests[0].vertex, 1u);
    EXPECT_EQ(r.requests[1].vertex, 5u);
    ASSERT_EQ(r.skipped.size(), 5u);
    const std::size_t expect_lines[] = {2, 3, 4, 5, 6};
    for (std::size_t i = 0; i < r.skipped.size(); ++i) {
        EXPECT_EQ(r.skipped[i].code, IoErrorCode::ParseError);
        EXPECT_EQ(r.skipped[i].line, expect_lines[i]);
    }
}

TEST(ServeTrace, BoundaryVertexIdsRoundTrip)
{
    // 2^32-1 is the largest representable NodeId and must parse; one
    // past it must not.
    auto max_ok = serve::parseServeTrace("1e-3 4294967295\n", "t", true);
    ASSERT_TRUE(max_ok.hasValue());
    EXPECT_EQ(max_ok.value().requests[0].vertex, 4294967295u);
    auto overflow =
        serve::parseServeTrace("1e-3 4294967296\n", "t", true);
    ASSERT_FALSE(overflow.hasValue());
    EXPECT_EQ(overflow.error().line, 1u);
}

TEST(ServeTrace, MissingFileIsOpenFailed)
{
    auto missing =
        serve::loadServeTrace("/nonexistent/dir/x.trace", true);
    ASSERT_FALSE(missing.hasValue());
    EXPECT_EQ(missing.error().code, IoErrorCode::OpenFailed);
}

} // namespace
} // namespace maxk
