/**
 * @file
 * Unit tests for the kernel-variant registry (kernels/registry.hh), the
 * adaptive selector (kernels/selector.hh), and the cached structures
 * they lean on (CsrGraph::edgeGroupsCached / degreeStatsCached).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.hh"
#include "graph/edge_groups.hh"
#include "graph/generators.hh"
#include "graph/stats.hh"
#include "kernels/registry.hh"
#include "kernels/selector.hh"
#include "support/fixtures.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

using kernels::KernelVariant;

TEST(KernelRegistry, EnumerationIsCompleteAndConsistent)
{
    const auto reg = kernels::kernelRegistry();
    ASSERT_GE(reg.size(), 6u);

    std::set<std::string> names;
    std::size_t selectable = 0;
    for (const KernelVariant &v : reg) {
        EXPECT_TRUE(names.insert(std::string(v.name)).second)
            << "duplicate variant name " << v.name;
        EXPECT_NE(v.run, nullptr) << v.name;
        EXPECT_NE(v.fast, nullptr) << v.name;
        EXPECT_FALSE(v.summary.empty()) << v.name;
        if (v.selectable) {
            ++selectable;
            // A selector candidate must produce comparable stats on a
            // forward launch: simulated and forward-shaped.
            EXPECT_TRUE(v.simulated) << v.name;
            EXPECT_FALSE(v.transposed) << v.name;
        }
    }
    EXPECT_EQ(selectable, 4u);
    EXPECT_TRUE(names.count("spmm_ref"));
    EXPECT_TRUE(names.count("spmm_row_wise"));
    EXPECT_TRUE(names.count("spmm_gnna"));
    EXPECT_TRUE(names.count("spmm_nnz_balanced"));
    EXPECT_TRUE(names.count("spmm_row_caching"));
    EXPECT_TRUE(names.count("spmm_outer_naive"));
}

TEST(KernelRegistry, LookupAndDefault)
{
    EXPECT_EQ(kernels::findKernelVariant("no_such_kernel"), nullptr);
    const KernelVariant *row = kernels::findKernelVariant("spmm_row_wise");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(&kernels::defaultSpmmVariant(), row);
    EXPECT_EQ(&kernels::kernelVariantOrDie("spmm_gnna"),
              kernels::findKernelVariant("spmm_gnna"));
}

TEST(KernelRegistryDeathTest, UnknownNameDiesWithKnownList)
{
    EXPECT_DEATH(kernels::kernelVariantOrDie("spmm_bogus"),
                 "unknown kernel variant.*spmm_row_wise");
}

TEST(KernelRegistry, ReferenceVariantReportsNoStats)
{
    // A zero-stats entry must never win a stats-based comparison; the
    // registry guards that by marking it non-simulated/non-selectable.
    const KernelVariant &ref = kernels::kernelVariantOrDie("spmm_ref");
    EXPECT_FALSE(ref.simulated);
    EXPECT_FALSE(ref.selectable);

    test::SpmmFixture f(64, 500, 8, /*seed=*/3);
    Matrix y;
    const auto stats = ref.run(f.g, f.x, y, f.opt);
    EXPECT_EQ(stats.totalSeconds, 0.0);
    EXPECT_TRUE(stats.phases.empty());
}

TEST(KernelRegistry, SimulatedVariantsReportTraffic)
{
    test::SpmmFixture f(128, 1000, 16, /*seed=*/5);
    for (const KernelVariant &v : kernels::kernelRegistry()) {
        if (!v.simulated)
            continue;
        Matrix y;
        const auto stats = v.run(f.g, f.x, y, f.opt);
        const auto agg = stats.aggregate();
        EXPECT_GT(stats.totalSeconds, 0.0) << v.name;
        EXPECT_GT(agg.dramReadBytes + agg.dramWriteBytes, 0u) << v.name;
        EXPECT_GT(agg.flops, 0u) << v.name;
    }
}

TEST(KernelRegistry, ResolveHonoursExplicitAndDefault)
{
    Rng rng(7);
    const CsrGraph g = erdosRenyi(100, 800, rng);
    std::string reason;
    EXPECT_EQ(kernels::resolveSpmmVariant("", g, 16).name, "spmm_row_wise");
    EXPECT_EQ(kernels::resolveSpmmVariant("default", g, 16).name,
              "spmm_row_wise");
    EXPECT_EQ(kernels::resolveSpmmVariant("spmm_nnz_balanced", g, 16, 0, {},
                                          &reason)
                  .name,
              "spmm_nnz_balanced");
    EXPECT_EQ(reason, "explicitly configured");
}

TEST(KernelRegistryDeathTest, ResolveRejectsTransposedVariant)
{
    Rng rng(7);
    const CsrGraph g = erdosRenyi(50, 300, rng);
    EXPECT_DEATH(kernels::resolveSpmmVariant("spmm_outer_naive", g, 16),
                 "transposed variant");
}

TEST(KernelRegistry, AutoResolvesThroughSelectorWithReason)
{
    const CsrGraph g = ringLattice(512, 8, false);
    std::string reason;
    const KernelVariant &v =
        kernels::resolveSpmmVariant("auto", g, 32, 0, {}, &reason);
    EXPECT_TRUE(v.selectable) << v.name;
    EXPECT_FALSE(reason.empty());
}

// --- Selector decisions on the probe families the thresholds encode ---

TEST(KernelSelector, RegularGraphPicksRowCaching)
{
    // Ring lattice: gini ~ 0, cv ~ 0 — consecutive rows share most of
    // their neighbourhood, the staging collapse is maximal.
    const CsrGraph g = ringLattice(4096, 8, false);
    const auto choice = kernels::selectSpmmVariant(
        g.degreeStatsCached(), 64, 0, gpusim::DeviceConfig::a100());
    EXPECT_EQ(choice.variant->name, "spmm_row_caching");
    EXPECT_NE(choice.reason.find("near-regular"), std::string::npos);
}

TEST(KernelSelector, HubDominatedGraphPicksRowCaching)
{
    // Star: one hub column recurs in every tile.
    const CsrGraph g = star(4096, false);
    const auto choice = kernels::selectSpmmVariant(
        g.degreeStatsCached(), 64, 0, gpusim::DeviceConfig::a100());
    EXPECT_EQ(choice.variant->name, "spmm_row_caching");
    EXPECT_NE(choice.reason.find("hub"), std::string::npos);
}

TEST(KernelSelector, LowDegreeIrregularGraphPicksNnzBalanced)
{
    // Sparse Erdős–Rényi: no reuse to stage, but 4-edge rows waste most
    // of their metadata sectors — amortisation wins.
    Rng rng(11);
    CsrGraph g = erdosRenyi(4096, 6000, rng);
    const auto choice = kernels::selectSpmmVariant(
        g.degreeStatsCached(), 64, 0, gpusim::DeviceConfig::a100());
    EXPECT_EQ(choice.variant->name, "spmm_nnz_balanced");
}

TEST(KernelSelector, HighDegreeIrregularGraphKeepsRowWise)
{
    // Dense Erdős–Rényi: high degree, moderate skew, no tile reuse.
    Rng rng(13);
    CsrGraph g = erdosRenyi(2048, 20000, rng);
    const auto choice = kernels::selectSpmmVariant(
        g.degreeStatsCached(), 64, 0, gpusim::DeviceConfig::a100());
    EXPECT_EQ(choice.variant->name, "spmm_row_wise");
}

TEST(KernelSelector, MidSkewPowerLawKeepsRowWise)
{
    // RMAT: skewed but not hub-dominated enough for staging to pay —
    // the probe measured row-caching slower here.
    Rng rng(17);
    CsrGraph g = rmat(12, 50000, rng);
    const DegreeStats &s = g.degreeStatsCached();
    ASSERT_GT(s.avgDegree, kernels::kSelectLowDegree);
    const auto choice = kernels::selectSpmmVariant(
        s, 64, 0, gpusim::DeviceConfig::a100());
    EXPECT_EQ(choice.variant->name, "spmm_row_wise");
}

TEST(KernelSelector, TinySharedMemoryDisablesRowCaching)
{
    // A device whose shared memory cannot stage kSelectMinStagedRows
    // rows at this width must not pick the staging schedule.
    const CsrGraph g = ringLattice(1024, 8, false);
    gpusim::DeviceConfig dev = gpusim::DeviceConfig::a100();
    dev.sharedMemPerSm = 1024;
    const auto choice =
        kernels::selectSpmmVariant(g.degreeStatsCached(), 256, 0, dev);
    EXPECT_NE(choice.variant->name, "spmm_row_caching");
}

TEST(KernelSelector, MaxkWidthRestoresStagingBudget)
{
    // Same tiny device: a CBSR operand k << dim shrinks the staged row
    // footprint, so the budget check passes again.
    const CsrGraph g = ringLattice(1024, 8, false);
    gpusim::DeviceConfig dev = gpusim::DeviceConfig::a100();
    dev.sharedMemPerSm = 8192;
    const auto wide =
        kernels::selectSpmmVariant(g.degreeStatsCached(), 256, 0, dev);
    EXPECT_NE(wide.variant->name, "spmm_row_caching");
    const auto narrow =
        kernels::selectSpmmVariant(g.degreeStatsCached(), 256, 8, dev);
    EXPECT_EQ(narrow.variant->name, "spmm_row_caching");
}

// --- Cached structures the registry/selector path depends on ---

TEST(GraphCaches, EdgeGroupsBuildOncePerCap)
{
    Rng rng(19);
    const CsrGraph g = erdosRenyi(100, 900, rng);
    EXPECT_EQ(g.edgeGroupBuildCount(), 0u);

    const EdgeGroupPartition &p1 = g.edgeGroupsCached(32);
    EXPECT_EQ(g.edgeGroupBuildCount(), 1u);
    const EdgeGroupPartition &p2 = g.edgeGroupsCached(32);
    EXPECT_EQ(&p1, &p2); // same object, not an equal rebuild
    EXPECT_EQ(g.edgeGroupBuildCount(), 1u);

    // A different workload cap is a different partition.
    const EdgeGroupPartition &p3 = g.edgeGroupsCached(8);
    EXPECT_EQ(g.edgeGroupBuildCount(), 2u);
    EXPECT_TRUE(p3.covers(g));

    const EdgeGroupPartition fresh = EdgeGroupPartition::build(g, 8);
    ASSERT_EQ(p3.groups().size(), fresh.groups().size());
    for (std::size_t i = 0; i < fresh.groups().size(); ++i) {
        EXPECT_EQ(p3.groups()[i].row, fresh.groups()[i].row);
        EXPECT_EQ(p3.groups()[i].begin, fresh.groups()[i].begin);
        EXPECT_EQ(p3.groups()[i].end, fresh.groups()[i].end);
    }
}

TEST(GraphCaches, RepeatedRegistryLaunchesReuseCaches)
{
    test::SpmmFixture f(96, 700, 8, /*seed=*/23);
    const KernelVariant &nnz =
        kernels::kernelVariantOrDie("spmm_nnz_balanced");
    const KernelVariant &cache =
        kernels::kernelVariantOrDie("spmm_row_caching");

    Matrix y;
    nnz.run(f.g, f.x, y, f.opt);
    cache.run(f.g, f.x, y, f.opt);
    nnz.run(f.g, f.x, y, f.opt);
    cache.run(f.g, f.x, y, f.opt);
    // Same workloadCap everywhere: one partition build serves all four
    // launches (the GNNAdvisor-style preprocess-once contract).
    EXPECT_EQ(f.g.edgeGroupBuildCount(), 1u);

    kernels::resolveSpmmVariant("auto", f.g, 8);
    kernels::resolveSpmmVariant("auto", f.g, 8);
    EXPECT_EQ(f.g.degreeStatsBuildCount(), 1u);
}

} // namespace
} // namespace maxk
