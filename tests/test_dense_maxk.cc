/**
 * @file
 * Tests for the Sec. 6 future-work extension: MaxK-sparsified FFN
 * GEMMs. Functional correctness against dense oracles, gradient
 * checks, and the k/d_ff traffic-and-FLOP reduction.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/dense_maxk.hh"
#include "core/maxk.hh"
#include "nn/gnn_layer.hh"
#include "support/comparators.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

namespace maxk
{
namespace
{

struct Fixture
{
    Matrix x;        //!< pre-activation (N x d_ff)
    CbsrMatrix h;    //!< MaxK-compressed activation
    Matrix w;        //!< second FFN weight (d_ff x out)
    SimOptions opt;

    Fixture(NodeId n = 64, std::uint32_t d_ff = 128,
            std::uint32_t k = 16, std::size_t out = 32)
    {
        Rng rng(7);
        x.resize(n, d_ff);
        fillNormal(x, rng, 0.0f, 1.0f);
        nn::maxkCompressFast(x, k, h);
        w.resize(d_ff, out);
        fillNormal(w, rng, 0.0f, 0.5f);
        opt.simulateCaches = false;
    }
};

TEST(CbsrGemm, MatchesDenseOracle)
{
    Fixture f;
    Matrix y, dense, y_ref;
    cbsrGemm(f.h, f.w, y, f.opt);
    f.h.decompress(dense);
    gemm(dense, f.w, y_ref);
    EXPECT_TRUE(test::matricesNear(y, y_ref, 1e-3f));
}

TEST(CbsrGemm, FlopsScaleWithKNotDff)
{
    Fixture small(64, 128, 8, 32);
    Fixture large(64, 128, 64, 32);
    Matrix y;
    const auto s8 = cbsrGemm(small.h, small.w, y, small.opt);
    const auto s64 = cbsrGemm(large.h, large.w, y, large.opt);
    EXPECT_NEAR(static_cast<double>(s64.aggregate().flops) /
                    s8.aggregate().flops,
                8.0, 0.2);
}

TEST(CbsrGemm, WeightTrafficTouchesOnlyKRows)
{
    Fixture f(32, 256, 16, 64);
    Matrix y;
    const auto stats = cbsrGemm(f.h, f.w, y, f.opt);
    // Per sample: k weight rows (out*4 bytes) + CBSR row + dy write.
    const Bytes weight_reads = Bytes(32) * 16 * 64 * 4;
    const Bytes everything = stats.aggregate().reqBytes;
    EXPECT_GT(everything, weight_reads);
    EXPECT_LT(everything, weight_reads * 1.3);
}

TEST(CbsrGemmBackward, DataGradientMatchesDenseOracle)
{
    Fixture f;
    Rng rng(8);
    Matrix dy(64, 32);
    fillNormal(dy, rng, 0.0f, 1.0f);

    CbsrMatrix dh;
    dh.adoptPattern(f.h);
    cbsrGemmBackwardData(f.h, f.w, dy, dh, f.opt);

    // Oracle: d(dense h) = dy * W^T, gathered at the pattern.
    Matrix dh_dense(64, 128);
    gemmTransB(dy, f.w, dh_dense);
    for (NodeId i = 0; i < dh.rows(); ++i)
        for (std::uint32_t kk = 0; kk < dh.dimK(); ++kk)
            ASSERT_NEAR(dh.dataRow(i)[kk],
                        dh_dense.at(i, dh.indexAt(i, kk)), 1e-3f);
}

TEST(CbsrGemmBackward, WeightGradientMatchesDenseOracle)
{
    Fixture f;
    Rng rng(9);
    Matrix dy(64, 32);
    fillNormal(dy, rng, 0.0f, 1.0f);

    Matrix dw;
    cbsrGemmBackwardWeight(f.h, dy, dw, f.opt);

    Matrix dense, dw_ref;
    f.h.decompress(dense);
    gemmTransA(dense, dy, dw_ref);
    EXPECT_TRUE(test::matricesNear(dw, dw_ref, 1e-3f));
}

TEST(CbsrGemmBackward, WeightGradientAccumulates)
{
    Fixture f;
    Matrix dy(64, 32, 1.0f);
    Matrix dw;
    cbsrGemmBackwardWeight(f.h, dy, dw, f.opt);
    const double first = dw.sum();
    cbsrGemmBackwardWeight(f.h, dy, dw, f.opt);
    EXPECT_NEAR(dw.sum(), 2.0 * first, std::abs(first) * 1e-4);
}

TEST(CbsrGemm, EndToEndFfnGradientCheck)
{
    // FFN: y = CBSR(maxk(x W1)) W2 with loss = sum(y); check dW2
    // against finite differences through the full sparse path.
    Rng rng(10);
    const NodeId n = 12;
    Matrix x(n, 16), w1(8, 16), w2(16, 6);
    // x here is the pre-activation directly (skip W1 for brevity).
    fillNormal(x, rng, 0.0f, 1.0f);
    fillNormal(w2, rng, 0.0f, 0.5f);
    const std::uint32_t k = 4;

    SimOptions opt;
    opt.simulateCaches = false;
    CbsrMatrix h;
    nn::maxkCompressFast(x, k, h);

    Matrix y;
    cbsrGemm(h, w2, y, opt);
    const double base = y.sum();

    Matrix dy(n, 6, 1.0f);
    Matrix dw2;
    cbsrGemmBackwardWeight(h, dy, dw2, opt);

    const Float eps = 1e-2f;
    for (const auto &[r, c] : {std::pair<int, int>{0, 0}, {7, 3},
                               {15, 5}}) {
        Matrix w2p = w2;
        w2p.at(r, c) += eps;
        Matrix yp;
        cbsrGemm(h, w2p, yp, opt);
        EXPECT_NEAR(dw2.at(r, c), (yp.sum() - base) / eps, 5e-2);
    }
}

TEST(CbsrGemm, CheaperThanDenseGemmModel)
{
    // The Sec. 6 claim quantified: at k/d_ff = 1/8 the sparse FFN GEMM
    // moves ~8x less weight traffic than its dense counterpart.
    Fixture f(256, 512, 64, 128);
    Matrix y;
    const auto sparse = cbsrGemm(f.h, f.w, y, f.opt);
    const Bytes dense_weight_traffic = Bytes(256) * 512 * 128 * 4;
    EXPECT_LT(sparse.aggregate().reqBytes * 6, dense_weight_traffic);
}

} // namespace
} // namespace maxk
