/**
 * @file
 * Tests for the CBSR container: storage rules, (de)compression round
 * trips, index-width selection, and pattern adoption.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/cbsr.hh"
#include "core/maxk.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

TEST(Cbsr, NarrowIndexForSmallDims)
{
    CbsrMatrix m(4, 2, 256);
    EXPECT_EQ(m.indexBytes(), 1u);
}

TEST(Cbsr, WideIndexForLargeDims)
{
    CbsrMatrix m(4, 2, 384);
    EXPECT_EQ(m.indexBytes(), 2u);
}

TEST(Cbsr, StorageBytesMatchLayout)
{
    CbsrMatrix m(10, 8, 128);
    EXPECT_EQ(m.storageBytes(), 10u * 8u * 4u + 10u * 8u * 1u);
    CbsrMatrix wide(10, 8, 1024);
    EXPECT_EQ(wide.storageBytes(), 10u * 8u * 4u + 10u * 8u * 2u);
}

TEST(Cbsr, RowByteHelpers)
{
    CbsrMatrix m(3, 16, 256);
    EXPECT_EQ(m.dataRowBytes(), 64u);
    EXPECT_EQ(m.indexRowBytes(), 16u);
}

TEST(Cbsr, SetGetIndexRoundTrip)
{
    CbsrMatrix m(2, 3, 300); // wide path
    m.setIndex(1, 2, 299);
    EXPECT_EQ(m.indexAt(1, 2), 299u);
    CbsrMatrix n(2, 3, 200); // narrow path
    n.setIndex(0, 1, 199);
    EXPECT_EQ(n.indexAt(0, 1), 199u);
}

TEST(Cbsr, DecompressPlacesValuesAtIndices)
{
    CbsrMatrix m(2, 2, 6);
    m.dataRow(0)[0] = 1.5f;
    m.dataRow(0)[1] = 2.5f;
    m.setIndex(0, 0, 1);
    m.setIndex(0, 1, 4);
    m.dataRow(1)[0] = -1.0f;
    m.dataRow(1)[1] = 3.0f;
    m.setIndex(1, 0, 0);
    m.setIndex(1, 1, 5);

    Matrix dense;
    m.decompress(dense);
    EXPECT_EQ(dense.at(0, 1), 1.5f);
    EXPECT_EQ(dense.at(0, 4), 2.5f);
    EXPECT_EQ(dense.at(1, 0), -1.0f);
    EXPECT_EQ(dense.at(1, 5), 3.0f);
    EXPECT_EQ(dense.at(0, 0), 0.0f);
    EXPECT_EQ(dense.at(1, 3), 0.0f);
}

TEST(Cbsr, ValidateAcceptsAscendingIndices)
{
    CbsrMatrix m(1, 3, 8);
    m.setIndex(0, 0, 1);
    m.setIndex(0, 1, 4);
    m.setIndex(0, 2, 7);
    EXPECT_TRUE(m.validate());
}

TEST(Cbsr, ValidateRejectsNonAscending)
{
    CbsrMatrix m(1, 3, 8);
    m.setIndex(0, 0, 4);
    m.setIndex(0, 1, 4);
    m.setIndex(0, 2, 7);
    EXPECT_FALSE(m.validate());
}

TEST(Cbsr, ZeroDataKeepsPattern)
{
    CbsrMatrix m(1, 2, 4);
    m.dataRow(0)[0] = 3.0f;
    m.setIndex(0, 0, 1);
    m.setIndex(0, 1, 3);
    m.zeroData();
    EXPECT_EQ(m.dataRow(0)[0], 0.0f);
    EXPECT_EQ(m.indexAt(0, 1), 3u);
}

TEST(Cbsr, AdoptPatternCopiesIndicesZeroesData)
{
    Rng rng(1);
    Matrix x(8, 32);
    fillNormal(x, rng, 0.0f, 1.0f);
    MaxKResult res = maxkCompress(x, 4);
    CbsrMatrix grad;
    grad.adoptPattern(res.cbsr);
    EXPECT_EQ(grad.rows(), res.cbsr.rows());
    EXPECT_EQ(grad.dimK(), res.cbsr.dimK());
    EXPECT_EQ(grad.dimOrigin(), res.cbsr.dimOrigin());
    for (NodeId r = 0; r < grad.rows(); ++r)
        for (std::uint32_t kk = 0; kk < grad.dimK(); ++kk) {
            ASSERT_EQ(grad.indexAt(r, kk), res.cbsr.indexAt(r, kk));
            ASSERT_EQ(grad.dataRow(r)[kk], 0.0f);
        }
}

TEST(Cbsr, CompressDecompressRoundTripOnMaxkOutput)
{
    Rng rng(2);
    Matrix x(64, 100);
    fillNormal(x, rng, 0.0f, 1.0f);
    Matrix sparse;
    maxkDense(x, 10, sparse);
    MaxKResult res = maxkCompress(x, 10);
    Matrix recovered;
    res.cbsr.decompress(recovered);
    EXPECT_TRUE(recovered.equals(sparse));
}

TEST(CbsrDeathTest, RejectsKLargerThanDim)
{
    EXPECT_DEATH(CbsrMatrix(1, 9, 8), "dimK");
}

TEST(Cbsr, TrafficRatioFollowsFiveBytesPerElement)
{
    // uint8 index: 5 bytes per surviving element (Sec. 4.3).
    CbsrMatrix m(100, 16, 256);
    const double per_elem =
        static_cast<double>(m.storageBytes()) / (100.0 * 16.0);
    EXPECT_DOUBLE_EQ(per_elem, 5.0);
}

} // namespace
} // namespace maxk
