/**
 * @file
 * Robustness and degenerate-input tests across the stack: empty
 * graphs, single-node graphs, extreme k values, malformed input files,
 * zero-byte device accesses, and minimal training configurations. The
 * library must either handle these or fail loudly via fatal()/panic()
 * — never silently corrupt.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "gpusim/context.hh"
#include "graph/edge_groups.hh"
#include "graph/generators.hh"
#include "graph/io.hh"
#include "graph/registry.hh"
#include "graph/stats.hh"
#include "nn/trainer.hh"
#include "sample/sampled_trainer.hh"
#include "serve/session.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

TEST(Degenerate, EmptyGraphThroughKernelPipeline)
{
    const CsrGraph g = CsrGraph::fromEdges(0, {}, false, false);
    EXPECT_TRUE(g.validate());
    EXPECT_EQ(g.numEdges(), 0u);
    const auto part = EdgeGroupPartition::build(g, 32);
    EXPECT_TRUE(part.groups().empty());
    EXPECT_TRUE(part.covers(g));

    const DegreeStats s = computeDegreeStats(g);
    EXPECT_EQ(s.numNodes, 0u);
}

TEST(Degenerate, EdgelessGraphSpgemm)
{
    const CsrGraph g = CsrGraph::fromEdges(8, {}, false, false);
    const auto part = EdgeGroupPartition::build(g, 8);
    Rng rng(1);
    Matrix x(8, 16);
    fillNormal(x, rng, 0.0f, 1.0f);
    SimOptions opt;
    opt.simulateCaches = false;
    MaxKResult mk = maxkCompress(x, 4, opt);
    Matrix y;
    const auto stats = spgemmForward(g, part, mk.cbsr, y, opt);
    EXPECT_DOUBLE_EQ(y.sum(), 0.0);
    EXPECT_EQ(stats.aggregate().flops, 0u);
}

TEST(Degenerate, SingleNodeSelfLoopGraph)
{
    CsrGraph g = CsrGraph::fromEdges(1, {}, false, true);
    g.setAggregatorWeights(Aggregator::SageMean);
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.values()[0], 1.0f); // degree 1 -> mean weight 1

    const auto part = EdgeGroupPartition::build(g, 32);
    Rng rng(2);
    Matrix x(1, 8);
    fillNormal(x, rng, 0.0f, 1.0f);
    SimOptions opt;
    opt.simulateCaches = false;
    MaxKResult mk = maxkCompress(x, 8, opt); // k == dim keeps all
    Matrix y;
    spgemmForward(g, part, mk.cbsr, y, opt);
    EXPECT_TRUE(y.approxEquals(x, 1e-5f)); // identity aggregation
}

TEST(Degenerate, MaxkOnSingleColumnMatrix)
{
    Matrix x(5, 1);
    for (int i = 0; i < 5; ++i)
        x.at(i, 0) = static_cast<Float>(i - 2);
    Matrix out;
    maxkDense(x, 1, out);
    EXPECT_TRUE(out.equals(x)); // k == dim == 1: everything survives
}

TEST(Degenerate, SspmmWithFullDensityPattern)
{
    // k == dimOrigin: CBSR degenerates to dense; the backward must
    // equal the dense transposed aggregation exactly.
    Rng rng(3);
    CsrGraph g = erdosRenyi(40, 200, rng);
    g.setAggregatorWeights(Aggregator::Gin);
    const auto part = EdgeGroupPartition::build(g, 16);
    Matrix x(40, 12);
    fillNormal(x, rng, 0.0f, 1.0f);
    SimOptions opt;
    opt.simulateCaches = false;
    MaxKResult mk = maxkCompress(x, 12, opt);
    Matrix dxl(40, 12);
    fillNormal(dxl, rng, 0.0f, 1.0f);
    CbsrMatrix dxs;
    dxs.adoptPattern(mk.cbsr);
    sspmmBackward(g, part, dxl, dxs, opt);

    Matrix dense;
    dxs.decompress(dense);
    Matrix expect;
    nn::aggregateDenseTransposed(g, dxl, expect);
    EXPECT_TRUE(dense.approxEquals(expect, 1e-3f));
}

TEST(Degenerate, ZeroByteDeviceAccessesAreFree)
{
    gpusim::KernelContext ctx(gpusim::DeviceConfig::a100(), "t", true);
    static float f;
    ctx.globalRead(0, &f, 0);
    ctx.globalWrite(0, &f, 0);
    ctx.globalAtomicAccum(0, &f, 0);
    const auto stats = ctx.finish();
    EXPECT_EQ(stats.aggregate().reqBytes, 0u);
    EXPECT_EQ(stats.aggregate().atomicSectors, 0u);
}

TEST(Degenerate, HugeWarpIdsWrapSafely)
{
    gpusim::KernelContext ctx(gpusim::DeviceConfig::a100(), "t", true);
    static float f;
    ctx.globalRead(~0ull, &f, 4);
    ctx.globalRead(0x123456789abcdefull, &f, 4);
    SUCCEED();
}

TEST(IoRobustness, BadMagicIsFatal)
{
    const std::string path = "/tmp/maxk_bad_magic.csr";
    std::ofstream(path) << "not-a-graph 1 2 2\n0 1 2\n1 0\n";
    EXPECT_EXIT(loadGraph(path), ::testing::ExitedWithCode(1),
                "bad header");
    std::remove(path.c_str());
}

TEST(IoRobustness, WrongVersionIsFatal)
{
    const std::string path = "/tmp/maxk_bad_version.csr";
    std::ofstream(path) << "maxk-csr 9 2 2\n0 1 2\n1 0\n";
    EXPECT_EXIT(loadGraph(path), ::testing::ExitedWithCode(1),
                "bad header");
    std::remove(path.c_str());
}

TEST(IoRobustness, TruncatedRowPtrIsFatal)
{
    const std::string path = "/tmp/maxk_trunc_rowptr.csr";
    std::ofstream(path) << "maxk-csr 1 4 2\n0 1\n";
    EXPECT_EXIT(loadGraph(path), ::testing::ExitedWithCode(1),
                "truncated rowPtr");
    std::remove(path.c_str());
}

TEST(IoRobustness, TruncatedColIdxIsFatal)
{
    const std::string path = "/tmp/maxk_trunc_col.csr";
    std::ofstream(path) << "maxk-csr 1 2 3\n0 2 3\n1\n";
    EXPECT_EXIT(loadGraph(path), ::testing::ExitedWithCode(1),
                "truncated colIdx");
    std::remove(path.c_str());
}

TEST(IoRobustness, InconsistentCsrIsFatal)
{
    // rowPtr.back() != numEdges -> CSR validation failure (now a clean
    // IoError-driven fatal instead of the seed's fromCsr panic).
    const std::string path = "/tmp/maxk_inconsistent.csr";
    std::ofstream(path) << "maxk-csr 1 2 2\n0 1 1\n0 1\n";
    EXPECT_DEATH(loadGraph(path), "invalid CSR");
    std::remove(path.c_str());
}

TEST(IoRobustness, TrailingGarbageIsFatal)
{
    // The seed loader silently accepted trailing tokens after the
    // values line; the formats layer rejects them.
    const std::string path = "/tmp/maxk_trailing.csr";
    std::ofstream(path) << "maxk-csr 1 2 2\n0 1 2\n1 0\n0.5 0.25\njunk\n";
    EXPECT_EXIT(loadGraph(path), ::testing::ExitedWithCode(1),
                "trailing data");
    std::remove(path.c_str());
}

TEST(TrainerRobustness, SingleEpochRunWorks)
{
    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = 128;
    task.accuracyAvgDegree = 6.0;
    Rng rng(4);
    TrainingData data = materializeTrainingData(task, rng);
    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Gcn;
    cfg.nonlin = nn::Nonlinearity::MaxK;
    cfg.maxkK = 4;
    cfg.numLayers = 1;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 16;
    cfg.outDim = task.numClasses;
    nn::GnnModel model(cfg);
    nn::Trainer trainer(model, data, task);
    nn::TrainConfig tc;
    tc.epochs = 1;
    const auto r = trainer.run(tc);
    EXPECT_EQ(r.trainLoss.size(), 1u);
    EXPECT_EQ(r.evalEpochs.size(), 1u);
}

TEST(TrainerRobustness, EvalCadenceBeyondEpochsStillEvaluatesLast)
{
    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = 128;
    task.accuracyAvgDegree = 6.0;
    Rng rng(5);
    TrainingData data = materializeTrainingData(task, rng);
    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nn::Nonlinearity::Relu;
    cfg.numLayers = 2;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 16;
    cfg.outDim = task.numClasses;
    nn::GnnModel model(cfg);
    nn::Trainer trainer(model, data, task);
    nn::TrainConfig tc;
    tc.epochs = 5;
    tc.evalEvery = 100;
    const auto r = trainer.run(tc);
    // Epoch 0 (cadence) and the final epoch are always evaluated.
    EXPECT_EQ(r.evalEpochs.size(), 2u);
    EXPECT_EQ(r.evalEpochs.back(), 4u);
}

TEST(RegistryRobustness, AllTwentyFourTwinsValidate)
{
    // Materialise every Table-1 twin once and validate its CSR. Uses a
    // shared RNG so the whole sweep stays fast and deterministic.
    Rng rng(6);
    for (const auto &info : kernelSuite()) {
        const CsrGraph g = materializeGraph(info, rng);
        ASSERT_TRUE(g.validate()) << info.name;
        ASSERT_GT(g.numEdges(), 0u) << info.name;
        // RMAT twins round |V| up to the next power of two.
        ASSERT_GE(g.numNodes(), info.twinNodes) << info.name;
        ASSERT_LT(g.numNodes(), 2 * info.twinNodes + 2) << info.name;
    }
}

TEST(CbsrRobustness, DecompressOfZeroPatternIsZeroMatrix)
{
    CbsrMatrix m(3, 2, 8); // default indices 0,0 are invalid-ascending
    m.setIndex(0, 1, 1);   // fix rows to be valid
    m.setIndex(1, 1, 1);
    m.setIndex(2, 1, 1);
    EXPECT_TRUE(m.validate());
    Matrix dense;
    m.decompress(dense);
    EXPECT_DOUBLE_EQ(dense.sum(), 0.0);
}

TEST(PivotRobustness, InfinityAndTinyValues)
{
    const Float row[] = {1e30f, -1e30f, 1e-30f, 0.0f};
    std::vector<std::uint32_t> sel;
    pivotSelect(row, 4, 2, sel);
    ASSERT_EQ(sel.size(), 2u);
    EXPECT_EQ(sel[0], 0u); // 1e30
    EXPECT_EQ(sel[1], 2u); // 1e-30 beats 0 and -1e30
}

/* ---------------------------------------------- sampler config errors */

namespace samplerrobust
{

TrainingTask
tinyTask()
{
    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = 200;
    task.accuracyAvgDegree = 6.0;
    return task;
}

nn::ModelConfig
tinyModel(const TrainingTask &task)
{
    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nn::Nonlinearity::Relu;
    cfg.numLayers = 2;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 16;
    cfg.outDim = task.numClasses;
    return cfg;
}

} // namespace samplerrobust

TEST(SamplerRobustness, ZeroBatchSizeIsFatal)
{
    Rng rng(1);
    const CsrGraph g = erdosRenyi(50, 200, rng);
    sample::SamplerConfig scfg;
    scfg.batchSize = 0;
    EXPECT_EXIT(sample::NeighborSampler(g, scfg),
                ::testing::ExitedWithCode(1),
                "batch size must be >= 1");
}

TEST(SamplerRobustness, EmptyFanoutListIsFatal)
{
    Rng rng(2);
    const CsrGraph g = erdosRenyi(50, 200, rng);
    sample::SamplerConfig scfg;
    scfg.fanouts.clear();
    EXPECT_EXIT(sample::NeighborSampler(g, scfg),
                ::testing::ExitedWithCode(1),
                "need at least one fanout");
}

TEST(SamplerRobustness, FanoutArityMismatchIsFatal)
{
    const TrainingTask task = samplerrobust::tinyTask();
    Rng rng(7);
    TrainingData data = materializeTrainingData(task, rng);
    nn::GnnModel model(samplerrobust::tinyModel(task));

    sample::SamplerConfig scfg;
    scfg.fanouts = {4}; // one fanout for a two-layer model
    EXPECT_EXIT(sample::SampledTrainer(model, data, task, scfg),
                ::testing::ExitedWithCode(1),
                "fanout arity .1. must equal the model layer count .2.");
}

TEST(SamplerRobustness, EmptyTrainMaskIsFatal)
{
    const TrainingTask task = samplerrobust::tinyTask();
    Rng rng(8);
    TrainingData data = materializeTrainingData(task, rng);
    std::fill(data.trainMask.begin(), data.trainMask.end(), 0);
    nn::GnnModel model(samplerrobust::tinyModel(task));

    sample::SamplerConfig scfg;
    scfg.fanouts = {4, 4};
    EXPECT_EXIT(sample::SampledTrainer(model, data, task, scfg),
                ::testing::ExitedWithCode(1),
                "training mask selects no nodes");
}

/* ------------------------------------------------ serve config errors */

namespace serverobust
{

struct Rig
{
    CsrGraph graph;
    Matrix features;
    nn::GnnModel model;

    Rig()
        : graph([] {
              Rng rng(9);
              return erdosRenyi(60, 360, rng);
          }()),
          features(graph.numNodes(), 8), model([] {
              nn::ModelConfig cfg;
              cfg.kind = nn::GnnKind::Sage;
              cfg.nonlin = nn::Nonlinearity::MaxK;
              cfg.maxkK = 4;
              cfg.numLayers = 2;
              cfg.inDim = 8;
              cfg.hiddenDim = 16;
              cfg.outDim = 4;
              return nn::GnnModel(cfg);
          }())
    {
        Rng rng(10);
        fillNormal(features, rng, 0.0f, 1.0f);
    }
};

serve::ServeConfig
baseConfig()
{
    serve::ServeConfig cfg;
    cfg.fanout = 3;
    cfg.batchCapacity = 4;
    return cfg;
}

} // namespace serverobust

TEST(ServeRobustness, ZeroDeadlineIsFatal)
{
    serverobust::Rig rig;
    serve::ServeConfig cfg = serverobust::baseConfig();
    cfg.deadlineSimSeconds = 0.0;
    EXPECT_EXIT(serve::ServeSession(rig.model, rig.graph, rig.features,
                                    cfg),
                ::testing::ExitedWithCode(1),
                "deadline must be finite and > 0");
}

TEST(ServeRobustness, NegativeDeadlineIsFatal)
{
    serverobust::Rig rig;
    serve::ServeConfig cfg = serverobust::baseConfig();
    cfg.deadlineSimSeconds = -1e-3;
    EXPECT_EXIT(serve::ServeSession(rig.model, rig.graph, rig.features,
                                    cfg),
                ::testing::ExitedWithCode(1),
                "deadline must be finite and > 0");
}

TEST(ServeRobustness, CacheFractionOutsideUnitIntervalIsFatal)
{
    serverobust::Rig rig;
    for (const double fraction : {-0.1, 1.5}) {
        serve::ServeConfig cfg = serverobust::baseConfig();
        cfg.cacheFraction = fraction;
        EXPECT_EXIT(serve::ServeSession(rig.model, rig.graph,
                                        rig.features, cfg),
                    ::testing::ExitedWithCode(1),
                    "cacheFraction must be in .0, 1.");
    }
}

TEST(ServeRobustness, ZeroBatchCapacityIsFatal)
{
    serverobust::Rig rig;
    serve::ServeConfig cfg = serverobust::baseConfig();
    cfg.batchCapacity = 0;
    EXPECT_EXIT(serve::ServeSession(rig.model, rig.graph, rig.features,
                                    cfg),
                ::testing::ExitedWithCode(1),
                "batchCapacity must be >= 1");
}

TEST(ServeRobustness, OutOfRangeVertexIsTypedErrorNotAbort)
{
    // A bad REQUEST is recoverable input, not a config bug: the replay
    // returns a ServeError naming the offending trace index instead of
    // exiting, and the session keeps serving afterwards.
    serverobust::Rig rig;
    serve::ServeSession session(rig.model, rig.graph, rig.features,
                                serverobust::baseConfig());
    const auto bad = session.replay(
        {{1e-4, 2}, {2e-4, rig.graph.numNodes() + 5}});
    ASSERT_FALSE(bad.hasValue());
    EXPECT_EQ(bad.error().requestIndex, 1u);
    EXPECT_NE(bad.error().message.find("out of range"),
              std::string::npos);
    const auto good = session.replay({{1e-4, 2}, {2e-4, 3}});
    EXPECT_TRUE(good.hasValue());
}

} // namespace
} // namespace maxk
