/**
 * @file
 * Integration tests spanning the whole stack: registry -> training ->
 * metrics; simulated kernels composed into an epoch; the MaxK-vs-ReLU
 * accuracy relationship that Table 5 reports; and end-to-end agreement
 * between the simulated kernels and the fast functional paths inside a
 * real training step.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "graph/edge_groups.hh"
#include "graph/registry.hh"
#include "kernels/spmm_row_wise.hh"
#include "nn/trainer.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

TEST(Integration, RegistryToTrainerPipeline)
{
    // The exact pipeline bench_table5 runs, at miniature scale.
    TrainingTask task = *findTrainingTask("Reddit");
    task.accuracyNodes = 512;
    task.accuracyAvgDegree = 16.0;
    Rng rng(1);
    TrainingData data = materializeTrainingData(task, rng);

    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nn::Nonlinearity::MaxK;
    cfg.maxkK = 8;
    cfg.numLayers = 2;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 32;
    cfg.outDim = task.numClasses;
    cfg.dropout = 0.1f;
    nn::GnnModel model(cfg);
    nn::Trainer trainer(model, data, task);
    nn::TrainConfig tc;
    tc.epochs = 50;
    tc.evalEvery = 10;
    const nn::TrainResult r = trainer.run(tc);
    // 41-way classification, chance ~2.4%.
    EXPECT_GT(r.finalTestMetric, 0.30);
}

TEST(Integration, MaxkAccuracyTracksBaselineAtModerateK)
{
    // Table 5's central claim: MaxK with moderate k matches the ReLU
    // baseline. Train both on the same data and compare.
    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = 600;
    task.accuracyAvgDegree = 14.0;

    auto train = [&](nn::Nonlinearity nonlin, std::uint32_t k) {
        Rng rng(2);
        TrainingData data = materializeTrainingData(task, rng);
        nn::ModelConfig cfg;
        cfg.kind = nn::GnnKind::Gcn;
        cfg.nonlin = nonlin;
        cfg.maxkK = k;
        cfg.numLayers = 2;
        cfg.inDim = task.featureDim;
        cfg.hiddenDim = 32;
        cfg.outDim = task.numClasses;
        cfg.dropout = 0.1f;
        cfg.seed = 11;
        nn::GnnModel model(cfg);
        nn::Trainer trainer(model, data, task);
        nn::TrainConfig tc;
        tc.epochs = 60;
        tc.evalEvery = 15;
        return trainer.run(tc).finalTestMetric;
    };

    const double base = train(nn::Nonlinearity::Relu, 0);
    const double maxk8 = train(nn::Nonlinearity::MaxK, 8); // 25% density
    EXPECT_GT(base, 0.5);
    EXPECT_GT(maxk8, base - 0.10); // within a few points of baseline
}

TEST(Integration, SimulatedEpochCompositionIsConsistent)
{
    // Compose one simulated training step kernel-by-kernel and check
    // the pieces are each positive and sum to less than the baseline
    // SpMM-based step on a high-degree graph.
    Rng rng(3);
    const auto info = *findDataset("ddi"); // avg degree ~500
    CsrGraph g = materializeGraph(info, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    const auto part = EdgeGroupPartition::build(g, 32);
    const std::uint32_t dim = 256, k = 16;

    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.02);

    Matrix x(g.numNodes(), dim);
    fillNormal(x, rng, 0.0f, 1.0f);

    // MaxK step: select + SpGEMM + SSpMM.
    MaxKResult mk = maxkCompress(x, k, opt);
    Matrix y;
    const auto fwd = spgemmForward(g, part, mk.cbsr, y, opt);
    CbsrMatrix dxs;
    dxs.adoptPattern(mk.cbsr);
    const auto bwd = sspmmBackward(g, part, y, dxs, opt);

    // Baseline step: two SpMMs.
    Matrix yb;
    const auto spmm = spmmRowWise(g, x, yb, opt);

    EXPECT_GT(mk.stats.totalSeconds, 0.0);
    EXPECT_GT(fwd.totalSeconds, 0.0);
    EXPECT_GT(bwd.totalSeconds, 0.0);
    const double t_maxk =
        mk.stats.totalSeconds + fwd.totalSeconds + bwd.totalSeconds;
    const double t_base = 2.0 * spmm.totalSeconds;
    EXPECT_GT(t_base / t_maxk, 2.0)
        << "MaxK step should be >2x faster on a degree-500 graph at "
           "k/dim = 1/16";

    // The MaxK selection itself must be a small fraction (Table 4).
    // Launch overhead is excluded: at twin scale the fixed 3us launch
    // floors every kernel, which the paper's full-size graphs amortise.
    const double launch = opt.device.launchOverheadUs * 1e-6;
    EXPECT_LT(mk.stats.totalSeconds - launch,
              0.35 * (fwd.totalSeconds - launch));
}

TEST(Integration, KernelTwinWorkingSetScalingPreservesHitRateRegime)
{
    // With scaled caches, the SpMM on the twin should show the paper's
    // qualitative Table 2 pattern: SpGEMM hit rates above SpMM's.
    Rng rng(4);
    const auto info = *findDataset("Reddit");
    CsrGraph g = materializeGraph(info, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    const auto part = EdgeGroupPartition::build(g, 32);
    const std::uint32_t dim = 256, k = 32;

    const double paper_ws =
        static_cast<double>(info.paperNodes) * dim * 4;
    const double twin_ws = static_cast<double>(g.numNodes()) * dim * 4;
    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(
        twin_ws / paper_ws);

    Matrix x(g.numNodes(), dim);
    fillNormal(x, rng, 0.0f, 1.0f);
    Matrix y;
    const auto spmm = spmmRowWise(g, x, y, opt);
    MaxKResult mk = maxkCompress(x, k, opt);
    const auto spgemm = spgemmForward(g, part, mk.cbsr, y, opt);

    EXPECT_GT(spgemm.l2HitRate(), spmm.l2HitRate());
    // Traffic reduction close to the Table 2 ratio (90.5%).
    const double reduction =
        1.0 - static_cast<double>(spgemm.aggregate().l2ReqBytes) /
                  static_cast<double>(spmm.aggregate().l2ReqBytes);
    EXPECT_GT(reduction, 0.75);
}

TEST(Integration, ConvergenceCurveShapeMatchesFig10)
{
    // Fig. 10: MaxK at k=8..64 converges like the baseline. Check the
    // curve rises and plateaus for both.
    TrainingTask task = *findTrainingTask("ogbn-products");
    task.accuracyNodes = 512;
    task.accuracyAvgDegree = 12.0;

    auto curve = [&](nn::Nonlinearity nonlin) {
        Rng rng(5);
        TrainingData data = materializeTrainingData(task, rng);
        nn::ModelConfig cfg;
        cfg.kind = nn::GnnKind::Sage;
        cfg.nonlin = nonlin;
        cfg.maxkK = 8;
        cfg.numLayers = 2;
        cfg.inDim = task.featureDim;
        cfg.hiddenDim = 32;
        cfg.outDim = task.numClasses;
        nn::GnnModel model(cfg);
        nn::Trainer trainer(model, data, task);
        nn::TrainConfig tc;
        tc.epochs = 40;
        tc.evalEvery = 5;
        return trainer.run(tc).testMetric;
    };

    const auto base = curve(nn::Nonlinearity::Relu);
    const auto maxk = curve(nn::Nonlinearity::MaxK);
    // Both curves improve from start to finish.
    EXPECT_GT(base.back(), base.front() + 0.1);
    EXPECT_GT(maxk.back(), maxk.front() + 0.1);
}

} // namespace
} // namespace maxk
