/**
 * @file
 * Tests for the Fig. 4 universal-approximation experiment: both
 * nonlinearities fit y = x^2, error shrinks with hidden units, and MaxK
 * tracks ReLU — the paper's Theorem 3.2 demonstration.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mlp/approximator.hh"

namespace maxk::mlp
{
namespace
{

ApproxConfig
makeCfg(ApproxNonlin nonlin, std::uint32_t hidden,
        std::uint32_t epochs = 3000)
{
    ApproxConfig cfg;
    cfg.nonlin = nonlin;
    cfg.hiddenUnits = hidden;
    cfg.epochs = epochs;
    cfg.numSamples = 128;
    cfg.seed = 3;
    return cfg;
}

TEST(Approximator, MaxkFitsSquareFunction)
{
    const ApproxResult r =
        approximateSquare(makeCfg(ApproxNonlin::MaxK, 32));
    EXPECT_LT(r.mse, 5e-3);
}

TEST(Approximator, ReluFitsSquareFunction)
{
    const ApproxResult r =
        approximateSquare(makeCfg(ApproxNonlin::Relu, 32));
    EXPECT_LT(r.mse, 5e-3);
}

TEST(Approximator, ErrorShrinksWithHiddenUnits)
{
    const double few =
        approximateSquare(makeCfg(ApproxNonlin::MaxK, 4)).mse;
    const double many =
        approximateSquare(makeCfg(ApproxNonlin::MaxK, 64)).mse;
    EXPECT_LT(many, few);
}

TEST(Approximator, MaxkTracksReluQuality)
{
    const double maxk =
        approximateSquare(makeCfg(ApproxNonlin::MaxK, 32)).mse;
    const double relu =
        approximateSquare(makeCfg(ApproxNonlin::Relu, 32)).mse;
    // "Similar approximation performance" (Fig. 4c): within an order
    // of magnitude either way.
    EXPECT_LT(maxk, relu * 10.0 + 1e-3);
    EXPECT_LT(relu, maxk * 10.0 + 1e-3);
}

TEST(Approximator, LossCurveDecreases)
{
    const ApproxResult r =
        approximateSquare(makeCfg(ApproxNonlin::MaxK, 16));
    ASSERT_GE(r.lossCurve.size(), 2u);
    EXPECT_LT(r.lossCurve.back(), r.lossCurve.front());
}

TEST(Approximator, DeterministicBySeed)
{
    const ApproxResult a =
        approximateSquare(makeCfg(ApproxNonlin::MaxK, 8, 500));
    const ApproxResult b =
        approximateSquare(makeCfg(ApproxNonlin::MaxK, 8, 500));
    EXPECT_DOUBLE_EQ(a.mse, b.mse);
}

TEST(Approximator, GeneralisesToOtherFunctions)
{
    ApproxConfig cfg = makeCfg(ApproxNonlin::MaxK, 48, 4000);
    const ApproxResult r = approximateFunction(
        cfg, [](Float v) { return std::sin(3.0f * v); });
    EXPECT_LT(r.mse, 2e-2);
}

TEST(Approximator, MaxErrorBoundsMse)
{
    const ApproxResult r =
        approximateSquare(makeCfg(ApproxNonlin::Relu, 16));
    EXPECT_GE(r.maxError * r.maxError + 1e-12, r.mse);
}

} // namespace
} // namespace maxk::mlp
