/**
 * @file
 * Tests for graph reordering: permutation validity, structural
 * preservation under relabelling, locality improvement, and the effect
 * on the simulated cache (the GNNAdvisor/Rabbit-order observation).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "graph/generators.hh"
#include "graph/reorder.hh"
#include "kernels/spmm_ref.hh"
#include "kernels/spmm_row_wise.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

TEST(Reorder, IdentityIsPermutation)
{
    const Permutation p = identityOrder(10);
    EXPECT_TRUE(isPermutation(p));
    EXPECT_EQ(p[7], 7u);
}

TEST(Reorder, RandomOrderIsPermutation)
{
    Rng rng(1);
    EXPECT_TRUE(isPermutation(randomOrder(1000, rng)));
}

TEST(Reorder, BfsOrderIsPermutation)
{
    Rng rng(2);
    const CsrGraph g = rmat(10, 20000, rng);
    EXPECT_TRUE(isPermutation(bfsOrder(g)));
}

TEST(Reorder, DegreeOrderPutsHubsFirst)
{
    const CsrGraph g = star(50, false);
    const Permutation p = degreeOrder(g);
    EXPECT_TRUE(isPermutation(p));
    EXPECT_EQ(p[0], 0u); // the hub keeps rank 0
}

TEST(Reorder, IsPermutationRejectsDuplicatesAndGaps)
{
    EXPECT_FALSE(isPermutation({0, 0, 2}));
    EXPECT_FALSE(isPermutation({0, 1, 3}));
    EXPECT_TRUE(isPermutation({2, 0, 1}));
}

TEST(Reorder, ApplyIdentityIsNoop)
{
    Rng rng(3);
    const CsrGraph g = erdosRenyi(100, 500, rng);
    const CsrGraph h = applyPermutation(g, identityOrder(100));
    EXPECT_EQ(h.rowPtr(), g.rowPtr());
    EXPECT_EQ(h.colIdx(), g.colIdx());
    EXPECT_EQ(h.values(), g.values());
}

TEST(Reorder, ApplyPreservesDegreesAndEdgeCount)
{
    Rng rng(4);
    const CsrGraph g = rmat(9, 8000, rng);
    Rng prng(5);
    const Permutation perm = randomOrder(g.numNodes(), prng);
    const CsrGraph h = applyPermutation(g, perm);
    EXPECT_EQ(h.numEdges(), g.numEdges());
    EXPECT_TRUE(h.validate());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ASSERT_EQ(h.degree(perm[v]), g.degree(v));
}

TEST(Reorder, RelabelledSpmmEqualsPermutedReference)
{
    // SpMM commutes with relabelling: P(A x) == (PAP^T)(P x).
    Rng rng(6);
    CsrGraph g = erdosRenyi(60, 400, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    Matrix x(60, 8);
    fillNormal(x, rng, 0.0f, 1.0f);
    Matrix y_ref;
    spmmReference(g, x, y_ref);

    Rng prng(7);
    const Permutation perm = randomOrder(60, prng);
    const CsrGraph h = applyPermutation(g, perm);
    Matrix xp(60, 8);
    for (NodeId v = 0; v < 60; ++v)
        std::copy(x.row(v), x.row(v) + 8, xp.row(perm[v]));
    Matrix y_perm;
    spmmReference(h, xp, y_perm);
    for (NodeId v = 0; v < 60; ++v)
        for (std::size_t d = 0; d < 8; ++d)
            ASSERT_NEAR(y_perm.at(perm[v], d), y_ref.at(v, d), 1e-4f);
}

TEST(Reorder, BfsImprovesNeighbourDistanceOverRandom)
{
    Rng rng(8);
    CsrGraph g = rmat(11, 60000, rng);
    Rng prng(9);
    const CsrGraph scrambled =
        applyPermutation(g, randomOrder(g.numNodes(), prng));
    const CsrGraph clustered =
        applyPermutation(scrambled, bfsOrder(scrambled));
    EXPECT_LT(neighbourDistance(clustered),
              neighbourDistance(scrambled) * 0.9);
}

TEST(Reorder, BfsImprovesSimulatedL2HitRate)
{
    // The Rabbit-order effect: locality-aware relabelling improves
    // SpMM cache behaviour on a scrambled graph.
    Rng rng(10);
    CsrGraph base = rmat(11, 80000, rng);
    Rng prng(11);
    CsrGraph scrambled =
        applyPermutation(base, randomOrder(base.numNodes(), prng));
    scrambled.setAggregatorWeights(Aggregator::SageMean);
    CsrGraph clustered = applyPermutation(scrambled, bfsOrder(scrambled));
    clustered.setAggregatorWeights(Aggregator::SageMean);

    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.005);
    Matrix x(base.numNodes(), 64);
    fillNormal(x, rng, 0.0f, 1.0f);
    Matrix y;
    const auto before = spmmRowWise(scrambled, x, y, opt);
    const auto after = spmmRowWise(clustered, x, y, opt);
    EXPECT_GE(after.l2HitRate(), before.l2HitRate());
}

TEST(ReorderDeathTest, ApplyRejectsNonBijection)
{
    const CsrGraph g = ringLattice(4, 2, false);
    EXPECT_DEATH(applyPermutation(g, {0, 0, 1, 2}), "bijection");
}

} // namespace
} // namespace maxk
