/**
 * @file
 * Unit tests for src/tensor: Matrix container semantics, GEMM variants
 * against a naive oracle, element-wise ops, and initialisers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "tensor/init.hh"
#include "tensor/matrix.hh"
#include "tensor/ops.hh"

namespace maxk
{
namespace
{

Matrix
randomMatrix(std::size_t r, std::size_t c, std::uint64_t seed)
{
    Matrix m(r, c);
    Rng rng(seed);
    fillNormal(m, rng, 0.0f, 1.0f);
    return m;
}

/** Naive O(mnk) oracle for C = A * B. */
Matrix
naiveGemm(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < a.cols(); ++p)
                acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
            c.at(i, j) = static_cast<Float>(acc);
        }
    return c;
}

TEST(Matrix, ZeroInitialised)
{
    Matrix m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    for (std::size_t i = 0; i < m.size(); ++i)
        ASSERT_EQ(m.data()[i], 0.0f);
}

TEST(Matrix, FillConstructor)
{
    Matrix m(2, 2, 7.5f);
    EXPECT_EQ(m.at(1, 1), 7.5f);
    EXPECT_DOUBLE_EQ(m.sum(), 30.0);
}

TEST(Matrix, RowPointerArithmetic)
{
    Matrix m(3, 5);
    m.at(2, 3) = 9.0f;
    EXPECT_EQ(m.row(2)[3], 9.0f);
    EXPECT_EQ(m.row(0) + 2 * 5 + 3, &m.at(2, 3));
}

TEST(Matrix, ReshapePreservesData)
{
    Matrix m(2, 6);
    m.at(1, 5) = 3.0f;
    m.reshape(4, 3);
    EXPECT_EQ(m.rows(), 4u);
    EXPECT_EQ(m.at(3, 2), 3.0f);
}

TEST(MatrixDeathTest, ReshapeElementMismatchPanics)
{
    Matrix m(2, 3);
    EXPECT_DEATH(m.reshape(2, 4), "reshape");
}

TEST(Matrix, ResizeDestroysContents)
{
    Matrix m(2, 2, 1.0f);
    m.resize(3, 3);
    EXPECT_DOUBLE_EQ(m.sum(), 0.0);
}

TEST(Matrix, MaxAbsAndNorm)
{
    Matrix m(1, 3);
    m.at(0, 0) = -4.0f;
    m.at(0, 1) = 3.0f;
    EXPECT_EQ(m.maxAbs(), 4.0f);
    EXPECT_NEAR(m.norm(), 5.0, 1e-6);
}

TEST(Matrix, EqualsAndApprox)
{
    Matrix a(2, 2, 1.0f), b(2, 2, 1.0f);
    EXPECT_TRUE(a.equals(b));
    b.at(0, 0) += 1e-5f;
    EXPECT_FALSE(a.equals(b));
    EXPECT_TRUE(a.approxEquals(b, 1e-4f));
    EXPECT_FALSE(a.approxEquals(b, 1e-6f));
}

TEST(Gemm, MatchesNaiveOracle)
{
    const Matrix a = randomMatrix(7, 5, 1);
    const Matrix b = randomMatrix(5, 9, 2);
    Matrix c;
    gemm(a, b, c);
    EXPECT_TRUE(c.approxEquals(naiveGemm(a, b), 1e-4f));
}

TEST(Gemm, IdentityIsNeutral)
{
    const Matrix a = randomMatrix(4, 4, 3);
    Matrix eye(4, 4);
    for (int i = 0; i < 4; ++i)
        eye.at(i, i) = 1.0f;
    Matrix c;
    gemm(a, eye, c);
    EXPECT_TRUE(c.approxEquals(a, 1e-6f));
}

TEST(Gemm, AccumAddsOntoExisting)
{
    const Matrix a = randomMatrix(3, 3, 4);
    const Matrix b = randomMatrix(3, 3, 5);
    Matrix c(3, 3, 1.0f);
    gemmAccum(a, b, c);
    Matrix expect = naiveGemm(a, b);
    for (std::size_t i = 0; i < expect.size(); ++i)
        expect.data()[i] += 1.0f;
    EXPECT_TRUE(c.approxEquals(expect, 1e-4f));
}

TEST(Gemm, TransAMatchesExplicitTranspose)
{
    const Matrix a = randomMatrix(6, 4, 6);
    const Matrix b = randomMatrix(6, 5, 7);
    Matrix at, expect, got;
    transpose(a, at);
    gemm(at, b, expect);
    gemmTransA(a, b, got);
    EXPECT_TRUE(got.approxEquals(expect, 1e-4f));
}

TEST(Gemm, TransBMatchesExplicitTranspose)
{
    const Matrix a = randomMatrix(6, 4, 8);
    const Matrix b = randomMatrix(5, 4, 9);
    Matrix bt, expect, got;
    transpose(b, bt);
    gemm(a, bt, expect);
    got.resize(6, 5);
    gemmTransB(a, b, got);
    EXPECT_TRUE(got.approxEquals(expect, 1e-4f));
}

TEST(GemmDeathTest, InnerDimensionMismatchPanics)
{
    Matrix a(2, 3), b(4, 2), c;
    EXPECT_DEATH(gemm(a, b, c), "inner dimension");
}

TEST(Ops, TransposeInvolution)
{
    const Matrix a = randomMatrix(5, 8, 10);
    Matrix t, tt;
    transpose(a, t);
    transpose(t, tt);
    EXPECT_TRUE(tt.equals(a));
}

TEST(Ops, AddInPlace)
{
    Matrix a(2, 2, 1.0f), b(2, 2, 2.5f);
    addInPlace(a, b);
    EXPECT_EQ(a.at(1, 1), 3.5f);
}

TEST(Ops, Axpy)
{
    Matrix a(1, 3, 1.0f), b(1, 3, 2.0f);
    axpy(a, 0.5f, b);
    EXPECT_EQ(a.at(0, 0), 2.0f);
}

TEST(Ops, ScaleInPlace)
{
    Matrix a(1, 2, 4.0f);
    scaleInPlace(a, 0.25f);
    EXPECT_EQ(a.at(0, 1), 1.0f);
}

TEST(Ops, Subtract)
{
    Matrix a(1, 2, 5.0f), b(1, 2, 3.0f), c;
    subtract(a, b, c);
    EXPECT_EQ(c.at(0, 0), 2.0f);
}

TEST(Ops, AddRowVectorBroadcasts)
{
    Matrix x(3, 2, 1.0f);
    Matrix bias(1, 2);
    bias.at(0, 0) = 10.0f;
    bias.at(0, 1) = 20.0f;
    addRowVector(x, bias);
    EXPECT_EQ(x.at(2, 0), 11.0f);
    EXPECT_EQ(x.at(0, 1), 21.0f);
}

TEST(Ops, ColumnSums)
{
    Matrix x(2, 3);
    x.at(0, 0) = 1.0f;
    x.at(1, 0) = 2.0f;
    x.at(1, 2) = 5.0f;
    Matrix s;
    columnSums(x, s);
    EXPECT_EQ(s.at(0, 0), 3.0f);
    EXPECT_EQ(s.at(0, 1), 0.0f);
    EXPECT_EQ(s.at(0, 2), 5.0f);
}

TEST(Ops, Hadamard)
{
    Matrix a(1, 3, 2.0f), b(1, 3, 3.0f), c;
    hadamard(a, b, c);
    EXPECT_EQ(c.at(0, 2), 6.0f);
}

TEST(Ops, ReluForwardClampsNegatives)
{
    Matrix x(1, 4);
    x.at(0, 0) = -1.0f;
    x.at(0, 1) = 2.0f;
    x.at(0, 2) = 0.0f;
    x.at(0, 3) = -0.5f;
    Matrix y;
    reluForward(x, y);
    EXPECT_EQ(y.at(0, 0), 0.0f);
    EXPECT_EQ(y.at(0, 1), 2.0f);
    EXPECT_EQ(y.at(0, 2), 0.0f);
    EXPECT_EQ(y.at(0, 3), 0.0f);
}

TEST(Ops, ReluBackwardMasksByInputSign)
{
    Matrix x(1, 3), g(1, 3, 1.0f), dx;
    x.at(0, 0) = -1.0f;
    x.at(0, 1) = 2.0f;
    x.at(0, 2) = 0.0f;
    reluBackward(x, g, dx);
    EXPECT_EQ(dx.at(0, 0), 0.0f);
    EXPECT_EQ(dx.at(0, 1), 1.0f);
    EXPECT_EQ(dx.at(0, 2), 0.0f); // gradient at exactly 0 is 0
}

TEST(Ops, RowSoftmaxSumsToOne)
{
    const Matrix x = randomMatrix(5, 7, 11);
    Matrix p;
    rowSoftmax(x, p);
    for (std::size_t r = 0; r < p.rows(); ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < p.cols(); ++c) {
            s += p.at(r, c);
            ASSERT_GT(p.at(r, c), 0.0f);
        }
        EXPECT_NEAR(s, 1.0, 1e-5);
    }
}

TEST(Ops, RowSoftmaxShiftInvariant)
{
    Matrix x = randomMatrix(2, 4, 12);
    Matrix p1, p2;
    rowSoftmax(x, p1);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] += 100.0f;
    rowSoftmax(x, p2);
    EXPECT_TRUE(p1.approxEquals(p2, 1e-5f));
}

TEST(Ops, SigmoidRangeAndMidpoint)
{
    Matrix x(1, 3);
    x.at(0, 0) = 0.0f;
    x.at(0, 1) = 100.0f;
    x.at(0, 2) = -100.0f;
    Matrix y;
    sigmoid(x, y);
    EXPECT_NEAR(y.at(0, 0), 0.5f, 1e-6f);
    EXPECT_NEAR(y.at(0, 1), 1.0f, 1e-6f);
    EXPECT_NEAR(y.at(0, 2), 0.0f, 1e-6f);
}

TEST(Init, XavierBoundsRespected)
{
    Matrix w(64, 32);
    Rng rng(13);
    xavierUniform(w, rng);
    const Float bound = std::sqrt(6.0f / (64 + 32));
    EXPECT_LE(w.maxAbs(), bound);
    EXPECT_GT(w.maxAbs(), 0.0f);
}

TEST(Init, KaimingVarianceNearTwoOverFanIn)
{
    Matrix w(256, 256);
    Rng rng(14);
    kaimingNormal(w, rng);
    double sq = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i)
        sq += static_cast<double>(w.data()[i]) * w.data()[i];
    EXPECT_NEAR(sq / w.size(), 2.0 / 256.0, 2.0 / 256.0 * 0.1);
}

TEST(Init, DeterministicGivenSeed)
{
    Matrix w1(8, 8), w2(8, 8);
    Rng r1(5), r2(5);
    xavierUniform(w1, r1);
    xavierUniform(w2, r2);
    EXPECT_TRUE(w1.equals(w2));
}

} // namespace
} // namespace maxk
