/**
 * @file
 * Tests for the partitioning/sampling substrates and their composition
 * with MaxK-GNN training (the Sec. 1 compatibility claim).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hh"
#include "graph/generators.hh"
#include "support/fixtures.hh"
#include "graph/partition.hh"
#include "graph/registry.hh"
#include "nn/distributed.hh"
#include "nn/trainer.hh"

namespace maxk
{
namespace
{

TEST(Partition, AssignsEveryNode)
{
    Rng rng(1);
    const CsrGraph g = test::makeGraph(test::GraphShape::ErdosRenyi, 500, 3000, rng);
    const Partition p = bfsPartition(g, 4, rng);
    ASSERT_EQ(p.assignment.size(), 500u);
    for (std::uint32_t a : p.assignment)
        ASSERT_LT(a, 4u);
}

TEST(Partition, BalanceNearOne)
{
    Rng rng(2);
    const CsrGraph g = test::makeGraph(test::GraphShape::ErdosRenyi, 1000, 8000, rng);
    const Partition p = bfsPartition(g, 8, rng);
    EXPECT_LE(p.balance(1000), 1.15);
}

TEST(Partition, SinglePartHasNoCut)
{
    Rng rng(3);
    const CsrGraph g = test::makeGraph(test::GraphShape::ErdosRenyi, 100, 500, rng);
    const Partition p = bfsPartition(g, 1, rng);
    EXPECT_DOUBLE_EQ(p.edgeCutFraction(g), 0.0);
    EXPECT_DOUBLE_EQ(p.balance(100), 1.0);
}

TEST(Partition, BfsCutBeatsRandomAssignmentOnCommunityGraph)
{
    Rng rng(4);
    auto sbm = stochasticBlockModel(2000, 4, 16.0, 0.9, rng);
    const Partition bfs = bfsPartition(sbm.graph, 4, rng);

    Partition random;
    random.numParts = 4;
    random.assignment.resize(2000);
    for (auto &a : random.assignment)
        a = static_cast<std::uint32_t>(rng.nextBounded(4));

    // BFS growth follows edges, so it keeps communities together far
    // better than chance (random 4-way cut ~ 75%).
    EXPECT_LT(bfs.edgeCutFraction(sbm.graph),
              random.edgeCutFraction(sbm.graph) * 0.8);
}

TEST(Partition, MembersMatchAssignment)
{
    Rng rng(5);
    const CsrGraph g = test::makeGraph(test::GraphShape::ErdosRenyi, 200, 800, rng);
    const Partition p = bfsPartition(g, 3, rng);
    std::size_t total = 0;
    for (std::uint32_t part = 0; part < 3; ++part) {
        for (NodeId v : p.members(part))
            ASSERT_EQ(p.assignment[v], part);
        total += p.members(part).size();
    }
    EXPECT_EQ(total, 200u);
}

TEST(Partition, MembersAllMatchesPerPartScans)
{
    // The single-pass bucket build must agree with the O(V*P) per-part
    // scan it replaces, including ascending order within each bucket.
    Rng rng(12);
    const CsrGraph g =
        test::makeGraph(test::GraphShape::PowerLaw, 500, 4000, rng);
    const Partition p = bfsPartition(g, 5, rng);
    const auto buckets = p.membersAll();
    ASSERT_EQ(buckets.size(), 5u);
    for (std::uint32_t part = 0; part < 5; ++part) {
        EXPECT_EQ(buckets[part], p.members(part));
        EXPECT_TRUE(std::is_sorted(buckets[part].begin(),
                                   buckets[part].end()));
    }
}

TEST(Partition, EverySeedablePartIsNonEmpty)
{
    // Seed-collision regression: the bounded retry loop can fail on
    // tiny graphs, which used to leave a part frontier-less — and
    // empty whenever the seeded parts' BFS growth covered every vertex
    // (no leftovers to back-fill it). The first-unassigned-vertex
    // fallback guarantees every part is seeded while unassigned
    // vertices exist, so with n >= parts no part may be empty. Sweep
    // many streams on the small shapes where collisions concentrate.
    for (const NodeId n : {2u, 3u, 4u, 8u}) {
        std::vector<std::pair<NodeId, NodeId>> edges;
        for (NodeId v = 0; v + 1 < n; ++v)
            edges.emplace_back(v, v + 1);
        const CsrGraph g = CsrGraph::fromEdges(n, edges, true, false);
        for (std::uint64_t seed = 0; seed < 2048; ++seed) {
            Rng rng(seed * 2654435761u + n);
            const Partition p = bfsPartition(g, n, rng);
            std::vector<NodeId> sizes(n, 0);
            for (std::uint32_t a : p.assignment)
                ++sizes[a];
            for (NodeId part = 0; part < n; ++part)
                ASSERT_GT(sizes[part], 0u)
                    << "empty part " << part << " at n=" << n
                    << " seed=" << seed;
        }
    }
}

TEST(Subgraph, ExtractInducedEdgesOnly)
{
    // Path 0-1-2-3; extract {0, 1, 3}: only edge 0-1 survives.
    const CsrGraph g = CsrGraph::fromEdges(
        4, {{0, 1}, {1, 2}, {2, 3}}, true, false);
    std::vector<NodeId> ids;
    const CsrGraph sub = extractSubgraph(g, {0, 1, 3}, &ids);
    EXPECT_EQ(sub.numNodes(), 3u);
    EXPECT_EQ(sub.numEdges(), 2u); // 0->1 and 1->0
    EXPECT_TRUE(sub.validate());
    EXPECT_EQ(ids, (std::vector<NodeId>{0, 1, 3}));
}

TEST(Subgraph, PreservesEdgeValues)
{
    CsrGraph g = CsrGraph::fromEdges(3, {{0, 1}, {1, 2}}, true, false);
    g.setAggregatorWeights(Aggregator::Gcn);
    const CsrGraph sub = extractSubgraph(g, {0, 1});
    ASSERT_EQ(sub.numEdges(), 2u);
    // Edge 0-1 in g has weight 1/sqrt(d0*d1) = 1/sqrt(1*2).
    EXPECT_NEAR(sub.values()[0], 1.0f / std::sqrt(2.0f), 1e-6f);
}

TEST(Subgraph, DeduplicatesRequestedNodes)
{
    const CsrGraph g = CsrGraph::fromEdges(3, {{0, 1}}, true, false);
    const CsrGraph sub = extractSubgraph(g, {1, 1, 0, 0});
    EXPECT_EQ(sub.numNodes(), 2u);
}

TEST(Subgraph, RowsStaySorted)
{
    Rng rng(6);
    const CsrGraph g = test::makeGraph(test::GraphShape::ErdosRenyi, 300, 2500, rng);
    std::vector<NodeId> picks;
    for (NodeId v = 0; v < 300; v += 2)
        picks.push_back(299 - v); // descending order on purpose
    const CsrGraph sub = extractSubgraph(g, picks);
    EXPECT_TRUE(sub.validate());
}

TEST(Subgraph, GlobalIdRoundTrip)
{
    // Every subgraph edge must map back — through global_ids — to an
    // edge of the original graph with the same value, and the count
    // must equal the induced-edge count computed directly.
    Rng rng(13);
    CsrGraph g =
        test::makeGraph(test::GraphShape::PowerLaw, 300, 2600, rng);
    g.setAggregatorWeights(Aggregator::Gcn);
    const Partition p = bfsPartition(g, 4, rng);
    for (std::uint32_t part = 0; part < 4; ++part) {
        std::vector<NodeId> ids;
        const CsrGraph sub = extractSubgraph(g, p.members(part), &ids);
        ASSERT_TRUE(sub.validate());
        ASSERT_EQ(ids, p.members(part));
        EdgeId checked = 0;
        for (NodeId v = 0; v < sub.numNodes(); ++v) {
            for (EdgeId e = sub.rowPtr()[v]; e < sub.rowPtr()[v + 1];
                 ++e) {
                const NodeId gs = ids[v];
                const NodeId gd = ids[sub.colIdx()[e]];
                bool found = false;
                for (EdgeId ge = g.rowPtr()[gs];
                     ge < g.rowPtr()[gs + 1] && !found; ++ge) {
                    if (g.colIdx()[ge] == gd) {
                        found = true;
                        ASSERT_EQ(sub.values()[e], g.values()[ge]);
                    }
                }
                ASSERT_TRUE(found);
                ++checked;
            }
        }
        EdgeId expected = 0;
        for (NodeId v : ids)
            for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e)
                expected += p.assignment[g.colIdx()[e]] == part ? 1 : 0;
        EXPECT_EQ(checked, expected);
    }
}

TEST(Partition, ReplicaCountMatchesNaiveReference)
{
    // boundaryReplicaCount (stamp-based, one pass) against a per-node
    // set-based reference: Σ_v |{remote parts adjacent to v}|.
    Rng rng(14);
    const CsrGraph g =
        test::makeGraph(test::GraphShape::ErdosRenyi, 400, 3200, rng);
    const Partition p = bfsPartition(g, 5, rng);
    std::uint64_t expected = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        std::set<std::uint32_t> readers;
        for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e) {
            const std::uint32_t q = p.assignment[g.colIdx()[e]];
            if (q != p.assignment[v])
                readers.insert(q);
        }
        expected += readers.size();
    }
    EXPECT_EQ(nn::boundaryReplicaCount(g, p), expected);
    // Replicas >= distinct boundary nodes, strictly more when any node
    // borders several parts.
    std::uint64_t distinct = 0;
    for (std::uint64_t c : nn::boundaryCounts(g, p))
        distinct += c;
    EXPECT_GE(nn::boundaryReplicaCount(g, p), distinct);
}

TEST(Sampling, FractionRoughlyHonoured)
{
    Rng rng(7);
    const CsrGraph g = test::makeGraph(test::GraphShape::ErdosRenyi, 4000, 20000, rng);
    const SampledSubgraph s = sampleNodes(g, 0.25, rng);
    EXPECT_NEAR(static_cast<double>(s.graph.numNodes()) / 4000.0, 0.25,
                0.04);
    EXPECT_EQ(s.graph.numNodes(), s.globalIds.size());
    EXPECT_TRUE(s.graph.validate());
}

TEST(Sampling, FullFractionKeepsEverything)
{
    Rng rng(8);
    const CsrGraph g = test::makeGraph(test::GraphShape::ErdosRenyi, 100, 400, rng);
    const SampledSubgraph s = sampleNodes(g, 1.0, rng);
    EXPECT_EQ(s.graph.numNodes(), g.numNodes());
    EXPECT_EQ(s.graph.numEdges(), g.numEdges());
}

TEST(SamplingDeathTest, RejectsZeroFraction)
{
    Rng rng(9);
    const CsrGraph g = test::makeGraph(test::GraphShape::ErdosRenyi, 10, 20, rng);
    EXPECT_DEATH(sampleNodes(g, 0.0, rng), "fraction");
}

TEST(Compatibility, MaxkTrainsOnPartitionedSubgraph)
{
    // The paper's Sec. 1 claim: MaxK composes with partition-parallel
    // training. Train on one BFS partition of an SBM task and check it
    // still learns.
    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = 1200;
    task.accuracyAvgDegree = 14.0;
    Rng rng(10);
    TrainingData full = materializeTrainingData(task, rng);

    const Partition p = bfsPartition(full.graph, 3, rng);
    std::vector<NodeId> ids;
    TrainingData part_data;
    part_data.graph = extractSubgraph(full.graph, p.members(0), &ids);
    const NodeId n = part_data.graph.numNodes();
    ASSERT_GT(n, 100u);
    part_data.features.resize(n, full.features.cols());
    for (NodeId v = 0; v < n; ++v) {
        std::copy(full.features.row(ids[v]),
                  full.features.row(ids[v]) + full.features.cols(),
                  part_data.features.row(v));
        part_data.labels.push_back(full.labels[ids[v]]);
        part_data.trainMask.push_back(full.trainMask[ids[v]]);
        part_data.valMask.push_back(full.valMask[ids[v]]);
        part_data.testMask.push_back(full.testMask[ids[v]]);
    }

    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nn::Nonlinearity::MaxK;
    cfg.maxkK = 8;
    cfg.numLayers = 2;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 32;
    cfg.outDim = task.numClasses;
    nn::GnnModel model(cfg);
    nn::Trainer trainer(model, part_data, task);
    nn::TrainConfig tc;
    tc.epochs = 50;
    tc.evalEvery = 10;
    const auto r = trainer.run(tc);
    EXPECT_GT(r.finalTestMetric, 0.45); // far above 1/7 chance
}

TEST(Compatibility, MaxkTrainsOnSampledSubgraph)
{
    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = 1500;
    task.accuracyAvgDegree = 14.0;
    Rng rng(11);
    TrainingData full = materializeTrainingData(task, rng);

    const SampledSubgraph s = sampleNodes(full.graph, 0.5, rng);
    TrainingData sub;
    sub.graph = s.graph;
    const NodeId n = sub.graph.numNodes();
    sub.features.resize(n, full.features.cols());
    for (NodeId v = 0; v < n; ++v) {
        const NodeId gid = s.globalIds[v];
        std::copy(full.features.row(gid),
                  full.features.row(gid) + full.features.cols(),
                  sub.features.row(v));
        sub.labels.push_back(full.labels[gid]);
        sub.trainMask.push_back(full.trainMask[gid]);
        sub.valMask.push_back(full.valMask[gid]);
        sub.testMask.push_back(full.testMask[gid]);
    }

    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Gcn;
    cfg.nonlin = nn::Nonlinearity::MaxK;
    cfg.maxkK = 8;
    cfg.numLayers = 2;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 32;
    cfg.outDim = task.numClasses;
    nn::GnnModel model(cfg);
    nn::Trainer trainer(model, sub, task);
    nn::TrainConfig tc;
    tc.epochs = 50;
    tc.evalEvery = 10;
    EXPECT_GT(trainer.run(tc).finalTestMetric, 0.4);
}

} // namespace
} // namespace maxk
