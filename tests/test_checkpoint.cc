/**
 * @file
 * Acceptance suite for the checkpoint/restore half of ISSUE 9:
 *
 *  - Checkpoint container: typed round trip of every section kind,
 *    detection of structural bit flips and of truncation at EVERY
 *    prefix length, typed IoError values throughout (no process exit);
 *  - CheckpointStore: atomic saves (no .tmp residue), keep-last-N
 *    rotation, and loadLatest() falling back past corrupted images
 *    with the skip list reporting what was rejected and why;
 *  - bitwise recovery: for each of the three training loops
 *    (nn::Trainer, sample::SampledTrainer, dist::ShardedTrainer), a
 *    run killed at epoch k by an injected fault and resumed from its
 *    checkpoints finishes with trajectories and final logits bitwise
 *    equal to the uninterrupted run — dropout enabled, so the RNG
 *    stream positions must genuinely persist and restore.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "common/rng.hh"
#include "dist/sharded_trainer.hh"
#include "graph/formats/checkpoint.hh"
#include "graph/partition.hh"
#include "graph/registry.hh"
#include "nn/model.hh"
#include "nn/trainer.hh"
#include "sample/sampled_trainer.hh"
#include "tensor/matrix.hh"

namespace maxk
{
namespace
{

/** Fresh scratch directory, removed on scope exit. */
struct ScopedDir
{
    explicit ScopedDir(const std::string &tag)
    {
        std::error_code ec;
        path = (std::filesystem::temp_directory_path(ec) /
                ("maxk-test-ckpt-" + tag))
                   .string();
        std::filesystem::remove_all(path, ec);
        std::filesystem::create_directories(path, ec);
    }
    ~ScopedDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    std::string path;
};

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

formats::Checkpoint
sampleCheckpoint()
{
    formats::Checkpoint ck;
    ck.setU64("epoch", 41);
    ck.setU64s("rng.drop", {1, 2, 3, 4});
    ck.setDoubles("traj.trainLoss", {0.9, 0.5, 0.25});
    ck.setU32s("traj.evalEpochs", {0, 2});
    Matrix m(3, 4);
    Rng rng(5);
    for (std::size_t i = 0; i < m.size(); ++i)
        m.data()[i] = rng.normal();
    ck.setMatrix("param.0", m);
    const char raw[] = "opaque";
    ck.set("blob", raw, sizeof raw);
    return ck;
}

/* ----------------------------------------------------- the container */

TEST(Checkpoint, TypedSectionsRoundTripThroughDisk)
{
    ScopedDir dir("roundtrip");
    const formats::Checkpoint ck = sampleCheckpoint();
    const std::string path =
        dir.path + "/image" + formats::kCheckpointExtension;
    auto saved = ck.save(path);
    ASSERT_TRUE(saved.hasValue()) << saved.error().describe();
    EXPECT_EQ(saved.value(), ck.encodedBytes());
    // Atomic write: the temp file must be gone.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    auto loaded = formats::Checkpoint::load(path);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    const formats::Checkpoint &got = loaded.value();
    EXPECT_EQ(got.sectionCount(), ck.sectionCount());
    EXPECT_EQ(got.getU64("epoch").value(), 41u);
    EXPECT_EQ(got.getU64s("rng.drop").value(),
              (std::vector<std::uint64_t>{1, 2, 3, 4}));
    EXPECT_EQ(got.getDoubles("traj.trainLoss").value(),
              (std::vector<double>{0.9, 0.5, 0.25}));
    EXPECT_EQ(got.getU32s("traj.evalEpochs").value(),
              (std::vector<std::uint32_t>{0, 2}));
    Matrix m;
    ASSERT_TRUE(got.getMatrix("param.0", m).hasValue());
    Matrix ref;
    ASSERT_TRUE(ck.getMatrix("param.0", ref).hasValue());
    EXPECT_TRUE(m.equals(ref));
    auto blob = got.section("blob");
    ASSERT_TRUE(blob.hasValue());
    EXPECT_EQ(blob.value()->size(), sizeof "opaque");
}

TEST(Checkpoint, MissingAndMistypedSectionsAreTypedErrors)
{
    const formats::Checkpoint ck = sampleCheckpoint();
    EXPECT_FALSE(ck.getU64("absent").hasValue());
    EXPECT_FALSE(ck.section("absent").hasValue());
    // A 4-word section read as a single u64 must fail, not misparse.
    EXPECT_FALSE(ck.getU64("rng.drop").hasValue());
    Matrix m;
    EXPECT_FALSE(ck.getMatrix("epoch", m).hasValue());
}

TEST(Checkpoint, TruncationAtEveryPrefixLengthIsDetected)
{
    const formats::Checkpoint ck = sampleCheckpoint();
    std::vector<std::uint8_t> bytes;
    ck.encode(bytes);
    ASSERT_GT(bytes.size(), 0u);
    for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
        const std::vector<std::uint8_t> cut(bytes.begin(),
                                            bytes.begin() + keep);
        auto got = formats::Checkpoint::decode(cut, "cut");
        ASSERT_FALSE(got.hasValue()) << "prefix of " << keep
                                     << " bytes decoded successfully";
    }
}

TEST(Checkpoint, BitFlipsInStructureAndPayloadAreDetected)
{
    // Single one-letter section name: every byte of the container
    // except that name byte is structural or checksummed, so a flip
    // anywhere else MUST fail the decode.
    formats::Checkpoint ck;
    ck.setDoubles("p", {1.0, -2.0, 3.5});
    std::vector<std::uint8_t> bytes;
    ck.encode(bytes);
    const std::size_t name_byte = 8 + 4 + 4 + 4; // magic,version,count,len
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        if (i == name_byte)
            continue;
        std::vector<std::uint8_t> flipped = bytes;
        flipped[i] ^= 0x01;
        auto got = formats::Checkpoint::decode(flipped, "flip");
        ASSERT_FALSE(got.hasValue())
            << "flip at byte " << i << " decoded successfully";
    }
    // The one name byte yields a well-formed container with a different
    // section name — callers then see a typed missing-section error.
    std::vector<std::uint8_t> renamed = bytes;
    renamed[name_byte] ^= 0x01;
    auto got = formats::Checkpoint::decode(renamed, "rename");
    ASSERT_TRUE(got.hasValue());
    EXPECT_FALSE(got.value().getDoubles("p").hasValue());
}

/* --------------------------------------------------------- the store */

TEST(CheckpointStore, RotationKeepsTheNewestN)
{
    ScopedDir dir("rotate");
    formats::CheckpointStore store(dir.path, "trainer", 3);
    formats::Checkpoint ck;
    for (std::uint64_t epoch = 1; epoch <= 6; ++epoch) {
        ck.setU64("epoch", epoch);
        ASSERT_TRUE(store.save(ck, epoch).hasValue());
    }
    EXPECT_EQ(store.epochsOnDisk(),
              (std::vector<std::uint64_t>{4, 5, 6}));
    auto latest = store.loadLatest();
    ASSERT_TRUE(latest.hasValue());
    EXPECT_EQ(latest.value().epoch, 6u);
    EXPECT_EQ(latest.value().checkpoint.getU64("epoch").value(), 6u);
}

TEST(CheckpointStore, LoadLatestFallsBackPastCorruptImages)
{
    ScopedDir dir("fallback");
    formats::CheckpointStore store(dir.path, "trainer", 8);
    formats::Checkpoint ck;
    for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
        ck.setU64("epoch", epoch);
        ASSERT_TRUE(store.save(ck, epoch).hasValue());
    }
    // Newest: flip a payload byte. Second newest: truncate.
    {
        std::vector<std::uint8_t> bytes = readFile(store.pathFor(3));
        bytes[bytes.size() - 3] ^= 0x40;
        writeFile(store.pathFor(3), bytes);
        std::vector<std::uint8_t> cut = readFile(store.pathFor(2));
        cut.resize(cut.size() - 9);
        writeFile(store.pathFor(2), cut);
    }
    std::vector<IoError> skipped;
    auto latest = store.loadLatest(&skipped);
    ASSERT_TRUE(latest.hasValue());
    EXPECT_EQ(latest.value().epoch, 1u);
    ASSERT_EQ(skipped.size(), 2u);
    EXPECT_EQ(skipped[0].code, IoErrorCode::ChecksumMismatch);
    EXPECT_EQ(skipped[1].code, IoErrorCode::Truncated);

    // Corrupt the last good one too: the newest image's error surfaces.
    std::vector<std::uint8_t> bytes = readFile(store.pathFor(1));
    bytes[bytes.size() - 3] ^= 0x40;
    writeFile(store.pathFor(1), bytes);
    auto none = store.loadLatest();
    ASSERT_FALSE(none.hasValue());
    EXPECT_EQ(none.error().code, IoErrorCode::ChecksumMismatch);
}

TEST(CheckpointStore, EmptyDirIsATypedError)
{
    ScopedDir dir("empty");
    formats::CheckpointStore store(dir.path, "trainer", 2);
    auto got = store.loadLatest();
    ASSERT_FALSE(got.hasValue());
    EXPECT_EQ(got.error().code, IoErrorCode::OpenFailed);
}

/* ------------------------------------------------- bitwise recovery */

TrainingTask
smallTask(NodeId nodes)
{
    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = nodes;
    task.accuracyAvgDegree = 8.0;
    return task;
}

nn::ModelConfig
smallModel(const TrainingTask &task)
{
    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nn::Nonlinearity::MaxK;
    cfg.maxkK = 8;
    cfg.numLayers = 2;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 32;
    cfg.outDim = task.numClasses;
    cfg.dropout = 0.2f; // exercises the persisted RNG stream position
    return cfg;
}

/** One-spec plan: throw at `site` visit `occurrence` of `rank`. */
FaultPlan
killPlan(const char *site, std::uint64_t occurrence,
         std::uint32_t rank = kAnyRank)
{
    FaultSpec s;
    s.kind = FaultKind::RankThrow;
    s.site = site;
    s.occurrence = occurrence;
    s.rank = rank;
    return FaultPlan().add(std::move(s));
}

TEST(Recovery, TrainerKillAtEpochResumeIsBitwise)
{
    ScopedDir dir("trainer");
    const TrainingTask task = smallTask(300);
    Rng rng(61);
    TrainingData data = materializeTrainingData(task, rng);
    const nn::ModelConfig cfg = smallModel(task);

    nn::TrainConfig tc;
    tc.epochs = 6;
    tc.evalEvery = 2;

    nn::GnnModel ref_model(cfg);
    nn::Trainer ref_trainer(ref_model, data, task);
    const nn::TrainResult ref = ref_trainer.run(tc);

    FaultInjector inj(killPlan("trainer.epoch", 3));
    tc.checkpointDir = dir.path;
    tc.checkpointKeep = 2;
    tc.faults = &inj;
    {
        nn::GnnModel model(cfg);
        nn::Trainer trainer(model, data, task);
        EXPECT_THROW(trainer.run(tc), InjectedFault);
    }

    tc.faults = nullptr;
    nn::GnnModel model(cfg);
    nn::Trainer trainer(model, data, task);
    const nn::TrainResult got = trainer.run(tc);
    EXPECT_EQ(got.trainLoss, ref.trainLoss);
    EXPECT_EQ(got.evalEpochs, ref.evalEpochs);
    EXPECT_EQ(got.valMetric, ref.valMetric);
    EXPECT_EQ(got.testMetric, ref.testMetric);
    EXPECT_EQ(got.bestValMetric, ref.bestValMetric);
    EXPECT_EQ(got.testAtBestVal, ref.testAtBestVal);
    EXPECT_EQ(got.finalTestMetric, ref.finalTestMetric);
}

TEST(Recovery, TrainerResumeFallsBackPastCorruptSaves)
{
    ScopedDir dir("trainer-corrupt");
    const TrainingTask task = smallTask(300);
    Rng rng(62);
    TrainingData data = materializeTrainingData(task, rng);
    const nn::ModelConfig cfg = smallModel(task);

    nn::TrainConfig tc;
    tc.epochs = 6;
    tc.evalEvery = 2;

    nn::GnnModel ref_model(cfg);
    nn::Trainer ref_trainer(ref_model, data, task);
    const nn::TrainResult ref = ref_trainer.run(tc);

    // Run to epoch 4 with saves 2 and 3 corrupted at write, then
    // "crash". Keep-last covers every image so the fallback chain is
    // fully on disk.
    FaultPlan plan;
    FaultSpec flip;
    flip.kind = FaultKind::CheckpointBitFlip;
    flip.site = "checkpoint.write";
    flip.occurrence = 2;
    flip.payload = 12345;
    plan.add(std::move(flip));
    FaultSpec trunc;
    trunc.kind = FaultKind::CheckpointTruncate;
    trunc.site = "checkpoint.write";
    trunc.occurrence = 3;
    trunc.payload = 17;
    plan.add(std::move(trunc));
    FaultInjector inj(plan);
    tc.checkpointDir = dir.path;
    tc.checkpointKeep = 8;
    tc.faults = &inj;
    tc.epochs = 4;
    {
        nn::GnnModel model(cfg);
        nn::Trainer trainer(model, data, task);
        trainer.run(tc);
    }

    // Both damaged images must be rejected; epoch 1 is the survivor.
    formats::CheckpointStore store(dir.path, "trainer", 8);
    std::vector<IoError> skipped;
    auto latest = store.loadLatest(&skipped);
    ASSERT_TRUE(latest.hasValue());
    EXPECT_EQ(latest.value().epoch, 1u);
    EXPECT_EQ(skipped.size(), 2u);

    tc.faults = nullptr;
    tc.epochs = 6;
    nn::GnnModel model(cfg);
    nn::Trainer trainer(model, data, task);
    const nn::TrainResult got = trainer.run(tc);
    EXPECT_EQ(got.trainLoss, ref.trainLoss);
    EXPECT_EQ(got.valMetric, ref.valMetric);
    EXPECT_EQ(got.testMetric, ref.testMetric);
    EXPECT_EQ(got.finalTestMetric, ref.finalTestMetric);
}

TEST(Recovery, SampledTrainerKillAtEpochResumeIsBitwise)
{
    ScopedDir dir("sampled");
    const TrainingTask task = smallTask(300);
    Rng rng(63);
    TrainingData data = materializeTrainingData(task, rng);
    const nn::ModelConfig cfg = smallModel(task);

    sample::SamplerConfig scfg;
    scfg.fanouts = {4, 4};
    scfg.batchSize = 32;
    scfg.seed = 99;

    sample::SampledTrainConfig tc;
    tc.epochs = 6;
    tc.evalEvery = 2;

    sample::SampledTrainResult ref;
    {
        nn::GnnModel model(cfg);
        sample::SampledTrainer trainer(model, data, task, scfg);
        ref = trainer.run(tc);
    }

    FaultInjector inj(killPlan("sampled_trainer.epoch", 3));
    tc.checkpointDir = dir.path;
    tc.checkpointKeep = 2;
    tc.faults = &inj;
    {
        nn::GnnModel model(cfg);
        sample::SampledTrainer trainer(model, data, task, scfg);
        EXPECT_THROW(trainer.run(tc), InjectedFault);
    }

    tc.faults = nullptr;
    nn::GnnModel model(cfg);
    sample::SampledTrainer trainer(model, data, task, scfg);
    const sample::SampledTrainResult got = trainer.run(tc);
    EXPECT_EQ(got.trainLoss, ref.trainLoss);
    EXPECT_EQ(got.evalEpochs, ref.evalEpochs);
    EXPECT_EQ(got.valMetric, ref.valMetric);
    EXPECT_EQ(got.testMetric, ref.testMetric);
    EXPECT_EQ(got.finalTestMetric, ref.finalTestMetric);
    EXPECT_TRUE(got.finalLogits.equals(ref.finalLogits));
}

TEST(Recovery, ShardedTrainerRankKillResumeIsBitwise)
{
    ScopedDir dir("sharded");
    const TrainingTask task = smallTask(400);
    Rng rng(64);
    TrainingData data = materializeTrainingData(task, rng);
    const nn::ModelConfig cfg = smallModel(task);
    Rng prng(65);
    const Partition parts = bfsPartition(data.graph, 3, prng);

    nn::TrainConfig tc;
    tc.epochs = 6;
    tc.evalEvery = 2;

    dist::ShardedTrainer ref_trainer(cfg, data, task, parts);
    const dist::ShardedTrainResult ref = ref_trainer.run(tc);

    // Kill rank 1 at its third epoch boundary.
    FaultInjector inj(killPlan("sharded.epoch", 2, 1));
    tc.checkpointDir = dir.path;
    tc.checkpointKeep = 2;
    tc.faults = &inj;
    {
        dist::ShardedTrainer trainer(cfg, data, task, parts);
        EXPECT_THROW(trainer.run(tc), InjectedFault);
    }

    tc.faults = nullptr;
    dist::ShardedTrainer trainer(cfg, data, task, parts);
    const dist::ShardedTrainResult got = trainer.run(tc);
    EXPECT_EQ(got.train.trainLoss, ref.train.trainLoss);
    EXPECT_EQ(got.train.evalEpochs, ref.train.evalEpochs);
    EXPECT_EQ(got.train.valMetric, ref.train.valMetric);
    EXPECT_EQ(got.train.testMetric, ref.train.testMetric);
    EXPECT_EQ(got.train.finalTestMetric, ref.train.finalTestMetric);
    EXPECT_TRUE(got.finalLogits.equals(ref.finalLogits));
}

} // namespace
} // namespace maxk
