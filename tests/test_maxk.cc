/**
 * @file
 * Tests for the MaxK nonlinearity: pivot selection correctness against a
 * sort-based oracle, tie handling, kernel stats, and the backward mask.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "core/maxk.hh"
#include "support/oracles.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

using test::topKIndicesOracle;
using test::topKOracle;

TEST(PivotSelect, SelectsExactlyKDistinctValues)
{
    const Float row[] = {0.2f, -0.2f, 0.3f, 0.4f, 0.1f, 0.15f};
    std::vector<std::uint32_t> sel;
    pivotSelect(row, 6, 3, sel);
    ASSERT_EQ(sel.size(), 3u);
    std::multiset<Float> got;
    for (auto idx : sel)
        got.insert(row[idx]);
    EXPECT_EQ(got, topKOracle(row, 6, 3));
}

TEST(PivotSelect, IndicesAscending)
{
    const Float row[] = {5.0f, 1.0f, 4.0f, 2.0f, 3.0f};
    std::vector<std::uint32_t> sel;
    pivotSelect(row, 5, 3, sel);
    ASSERT_EQ(sel.size(), 3u);
    EXPECT_TRUE(std::is_sorted(sel.begin(), sel.end()));
    // Top 3 are 5,4,3 at positions 0,2,4.
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{0, 2, 4}));
}

TEST(PivotSelect, KEqualsNKeepsEverything)
{
    const Float row[] = {1.0f, -1.0f, 0.0f};
    std::vector<std::uint32_t> sel;
    const std::uint32_t iters = pivotSelect(row, 3, 3, sel);
    EXPECT_EQ(sel.size(), 3u);
    EXPECT_EQ(iters, 0u);
}

TEST(PivotSelect, KOneFindsMaximum)
{
    const Float row[] = {-5.0f, -1.0f, -3.0f};
    std::vector<std::uint32_t> sel;
    pivotSelect(row, 3, 1, sel);
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_EQ(sel[0], 1u);
}

TEST(PivotSelect, AllEqualValuesPicksFirstKColumns)
{
    std::vector<Float> row(8, 0.5f);
    std::vector<std::uint32_t> sel;
    pivotSelect(row.data(), 8, 3, sel);
    // Ties broken deterministically in ascending column order.
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(PivotSelect, TiesAtThresholdResolvedInOrder)
{
    const Float row[] = {1.0f, 2.0f, 2.0f, 2.0f, 0.0f};
    std::vector<std::uint32_t> sel;
    pivotSelect(row, 5, 2, sel);
    // Two of the three 2.0s survive: the earliest columns (1, 2).
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{1, 2}));
}

TEST(PivotSelect, NegativeOnlyRowsWork)
{
    const Float row[] = {-0.5f, -0.1f, -0.9f, -0.3f};
    std::vector<std::uint32_t> sel;
    pivotSelect(row, 4, 2, sel);
    std::multiset<Float> got;
    for (auto idx : sel)
        got.insert(row[idx]);
    EXPECT_EQ(got, topKOracle(row, 4, 2));
}

TEST(PivotSelect, ConvergesInFewIterationsOnGaussian)
{
    // The paper reports < 10 iterations on normally distributed
    // activations with dim 256.
    Rng rng(1);
    Matrix x(64, 256);
    fillNormal(x, rng, 0.0f, 1.0f);
    std::vector<std::uint32_t> sel;
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < x.rows(); ++r)
        total += pivotSelect(x.row(r), 256, 32, sel);
    EXPECT_LT(static_cast<double>(total) / x.rows(), 12.0);
}

/* Non-finite inputs used to break the bisection invariant (±inf) or
 * leave too few selectable values (NaN), aborting on the
 * `selected.size() == k` invariant. The defined ordering is:
 * +inf > finite (by value) > -inf > NaN, ties ascending by column. */

TEST(PivotSelect, PositiveInfinityAlwaysSelected)
{
    const Float inf = std::numeric_limits<Float>::infinity();
    const Float row[] = {0.1f, inf, -0.5f, 3.0f, inf, 0.2f};
    std::vector<std::uint32_t> sel;
    pivotSelect(row, 6, 3, sel);
    ASSERT_EQ(sel.size(), 3u);
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{1, 3, 4}));
}

TEST(PivotSelect, MorePlusInfThanKPicksFirstColumns)
{
    const Float inf = std::numeric_limits<Float>::infinity();
    const Float row[] = {inf, 1.0f, inf, inf, inf};
    std::vector<std::uint32_t> sel;
    pivotSelect(row, 5, 2, sel);
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{0, 2}));
}

TEST(PivotSelect, NanSortsLast)
{
    const Float nan = std::numeric_limits<Float>::quiet_NaN();
    const Float row[] = {nan, -5.0f, nan, 2.0f, 0.0f, nan};
    std::vector<std::uint32_t> sel;
    // k = 3: every finite value outranks every NaN.
    pivotSelect(row, 6, 3, sel);
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{1, 3, 4}));
    // k = 5: NaNs fill the remaining slots in ascending column order.
    pivotSelect(row, 6, 5, sel);
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(PivotSelect, NegativeInfinityRanksBelowFiniteAboveNan)
{
    const Float inf = std::numeric_limits<Float>::infinity();
    const Float nan = std::numeric_limits<Float>::quiet_NaN();
    const Float row[] = {nan, -inf, -100.0f, 0.5f};
    std::vector<std::uint32_t> sel;
    pivotSelect(row, 4, 2, sel);
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{2, 3}));
    pivotSelect(row, 4, 3, sel);
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(PivotSelect, AllNanRowSelectsFirstKColumns)
{
    const Float nan = std::numeric_limits<Float>::quiet_NaN();
    const Float row[] = {nan, nan, nan, nan};
    std::vector<std::uint32_t> sel;
    pivotSelect(row, 4, 2, sel);
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{0, 1}));
}

TEST(PivotSelect, MixedNonFiniteFullOrdering)
{
    const Float inf = std::numeric_limits<Float>::infinity();
    const Float nan = std::numeric_limits<Float>::quiet_NaN();
    const Float row[] = {nan, -inf, 1.0f, inf, -1.0f, nan, 2.0f};
    std::vector<std::uint32_t> sel;
    // Ranking: +inf(3), 2.0(6), 1.0(2), -1.0(4), -inf(1), NaN(0), NaN(5).
    pivotSelect(row, 7, 1, sel);
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{3}));
    pivotSelect(row, 7, 4, sel);
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{2, 3, 4, 6}));
    pivotSelect(row, 7, 5, sel);
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{1, 2, 3, 4, 6}));
    pivotSelect(row, 7, 6, sel);
    EXPECT_EQ(sel, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 6}));
}

TEST(PivotSelect, MaxkDenseToleratesNonFiniteRows)
{
    const Float inf = std::numeric_limits<Float>::infinity();
    const Float nan = std::numeric_limits<Float>::quiet_NaN();
    Matrix x(3, 4);
    x.at(0, 0) = nan;
    x.at(0, 1) = 1.0f;
    x.at(1, 2) = inf;
    x.at(1, 3) = -inf;
    x.at(2, 0) = 0.5f;
    x.at(2, 1) = 2.0f;
    Matrix out;
    maxkDense(x, 2, out); // must not abort
    EXPECT_EQ(out.at(0, 1), 1.0f);
    EXPECT_EQ(out.at(1, 2), inf);
    EXPECT_EQ(out.at(2, 1), 2.0f);
}

TEST(PivotSelectDeathTest, RejectsZeroK)
{
    const Float row[] = {1.0f};
    std::vector<std::uint32_t> sel;
    EXPECT_DEATH(pivotSelect(row, 1, 0, sel), "1 <= k");
}

class PivotSelectSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>>
{
};

TEST_P(PivotSelectSweep, MatchesOracleOnRandomRows)
{
    const auto [k, seed] = GetParam();
    Rng rng(seed);
    Matrix x(16, 128);
    fillNormal(x, rng, 0.0f, 1.0f);
    std::vector<std::uint32_t> sel;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        pivotSelect(x.row(r), 128, k, sel);
        ASSERT_EQ(sel.size(), k);
        // Exact positions, including the ascending-column tie-break.
        ASSERT_EQ(sel, topKIndicesOracle(x.row(r), 128, k));
    }
}

INSTANTIATE_TEST_SUITE_P(
    KSweep, PivotSelectSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 8u, 16u, 32u, 64u, 127u,
                                         128u),
                       ::testing::Values(11, 22)));

TEST(MaxKDense, ZeroesNonSurvivors)
{
    Matrix x(1, 4);
    x.at(0, 0) = 0.9f;
    x.at(0, 1) = -0.4f;
    x.at(0, 2) = 0.7f;
    x.at(0, 3) = 0.1f;
    Matrix out;
    maxkDense(x, 2, out);
    EXPECT_EQ(out.at(0, 0), 0.9f);
    EXPECT_EQ(out.at(0, 1), 0.0f);
    EXPECT_EQ(out.at(0, 2), 0.7f);
    EXPECT_EQ(out.at(0, 3), 0.0f);
}

TEST(MaxKDense, KeepsNegativeValuesWhenTheyAreTopK)
{
    // MaxK selects by value rank, not positivity (unlike ReLU).
    Matrix x(1, 3);
    x.at(0, 0) = -0.1f;
    x.at(0, 1) = -0.5f;
    x.at(0, 2) = -0.9f;
    Matrix out;
    maxkDense(x, 2, out);
    EXPECT_EQ(out.at(0, 0), -0.1f);
    EXPECT_EQ(out.at(0, 1), -0.5f);
    EXPECT_EQ(out.at(0, 2), 0.0f);
}

TEST(MaxKCompress, MatchesDenseReference)
{
    Rng rng(2);
    Matrix x(50, 64);
    fillNormal(x, rng, 0.0f, 1.0f);
    MaxKResult res = maxkCompress(x, 16);
    Matrix dense_kernel, dense_ref;
    res.cbsr.decompress(dense_kernel);
    maxkDense(x, 16, dense_ref);
    EXPECT_TRUE(dense_kernel.equals(dense_ref));
}

TEST(MaxKCompress, CbsrIsValid)
{
    Rng rng(3);
    Matrix x(30, 48);
    fillNormal(x, rng, 0.0f, 1.0f);
    MaxKResult res = maxkCompress(x, 8);
    EXPECT_TRUE(res.cbsr.validate());
    EXPECT_EQ(res.cbsr.rows(), 30u);
    EXPECT_EQ(res.cbsr.dimK(), 8u);
    EXPECT_EQ(res.cbsr.dimOrigin(), 48u);
}

TEST(MaxKCompress, StatsReportExpectedTraffic)
{
    Rng rng(4);
    const NodeId n = 256;
    const std::uint32_t dim = 256, k = 32;
    Matrix x(n, dim);
    fillNormal(x, rng, 0.0f, 1.0f);
    SimOptions opt;
    opt.simulateCaches = false;
    MaxKResult res = maxkCompress(x, k, opt);
    const auto agg = res.stats.aggregate();
    // Read N*dim*4 bytes; write N*k*(4+1) bytes (uint8 index).
    const Bytes reads = Bytes(n) * dim * 4;
    const Bytes writes = Bytes(n) * k * 5;
    EXPECT_NEAR(static_cast<double>(agg.reqBytes),
                static_cast<double>(reads + writes),
                0.1 * (reads + writes));
    EXPECT_GT(res.avgPivotIterations, 0.0);
    EXPECT_LE(res.maxPivotIterations, 48u);
}

TEST(MaxKCompress, CheaperThanAnySpmmKernel)
{
    // Table 4: the MaxK kernel costs < 2% of SpGEMM. We check it is
    // at least an order of magnitude below the feature-fetch traffic of
    // an SpMM on the same matrix with avg degree >= 16.
    Rng rng(5);
    Matrix x(1024, 256);
    fillNormal(x, rng, 0.0f, 1.0f);
    MaxKResult res = maxkCompress(x, 32);
    const Bytes maxk_bytes = res.stats.aggregate().reqBytes;
    const Bytes spmm_bytes = Bytes(1024) * 16 * 256 * 4; // nnz * dim * 4
    EXPECT_LT(maxk_bytes * 10, spmm_bytes);
}

TEST(MaxKBackward, GradientMaskedByForwardPattern)
{
    Matrix x(1, 4);
    x.at(0, 0) = 0.9f;
    x.at(0, 1) = -0.4f;
    x.at(0, 2) = 0.7f;
    x.at(0, 3) = 0.1f;
    Matrix grad_out(1, 4, 1.0f);
    Matrix grad_in;
    maxkBackwardDense(x, 2, grad_out, grad_in);
    EXPECT_EQ(grad_in.at(0, 0), 1.0f);
    EXPECT_EQ(grad_in.at(0, 1), 0.0f);
    EXPECT_EQ(grad_in.at(0, 2), 1.0f);
    EXPECT_EQ(grad_in.at(0, 3), 0.0f);
}

TEST(MaxKBackward, SparsityMatchesForwardExactly)
{
    Rng rng(6);
    Matrix x(20, 32), grad(20, 32, 1.0f), out, gin;
    fillNormal(x, rng, 0.0f, 1.0f);
    maxkDense(x, 7, out);
    maxkBackwardDense(x, 7, grad, gin);
    for (std::size_t i = 0; i < out.size(); ++i) {
        const bool fwd_live = out.data()[i] != 0.0f || x.data()[i] == 0.0f;
        const bool bwd_live = gin.data()[i] != 0.0f;
        if (bwd_live) {
            ASSERT_TRUE(fwd_live);
        }
    }
}

} // namespace
} // namespace maxk
