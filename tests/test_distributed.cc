/**
 * @file
 * Tests for the partition-parallel (BNS-GCN-style) deployment model:
 * boundary accounting, exchange-volume formulas, MaxK's communication
 * reduction, and boundary sampling.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "graph/generators.hh"
#include "nn/distributed.hh"

namespace maxk::nn
{
namespace
{

ModelConfig
baseModel(Nonlinearity nonlin, std::uint32_t k = 32)
{
    ModelConfig cfg;
    cfg.kind = GnnKind::Sage;
    cfg.nonlin = nonlin;
    cfg.maxkK = k;
    cfg.numLayers = 3;
    cfg.inDim = 64;
    cfg.hiddenDim = 256;
    cfg.outDim = 16;
    return cfg;
}

TEST(Boundary, SinglePartHasNoBoundary)
{
    Rng rng(1);
    const CsrGraph g = erdosRenyi(200, 1000, rng);
    const Partition p = bfsPartition(g, 1, rng);
    const auto counts = boundaryCounts(g, p);
    ASSERT_EQ(counts.size(), 1u);
    EXPECT_EQ(counts[0], 0u);
}

TEST(Boundary, FullyConnectedGraphAllBoundary)
{
    // K4 split in two: every vertex has a cross-part neighbour.
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId a = 0; a < 4; ++a)
        for (NodeId b = a + 1; b < 4; ++b)
            edges.emplace_back(a, b);
    const CsrGraph g = CsrGraph::fromEdges(4, edges, true, false);
    Partition p;
    p.numParts = 2;
    p.assignment = {0, 0, 1, 1};
    const auto counts = boundaryCounts(g, p);
    EXPECT_EQ(counts[0] + counts[1], 4u);
}

TEST(Boundary, BfsPartitionBeatsRandomOnBoundaries)
{
    Rng rng(2);
    auto sbm = stochasticBlockModel(2000, 4, 4.0, 0.95, rng);
    const Partition bfs = bfsPartition(sbm.graph, 4, rng);

    Partition random;
    random.numParts = 4;
    random.assignment.resize(2000);
    for (auto &a : random.assignment)
        a = static_cast<std::uint32_t>(rng.nextBounded(4));

    auto total = [&](const Partition &p) {
        std::uint64_t boundary = 0;
        for (auto c : boundaryCounts(sbm.graph, p))
            boundary += c;
        return boundary;
    };
    // Locality-aware partitioning keeps more nodes internal than a
    // random split — the property BNS-GCN's communication depends on.
    EXPECT_LT(total(bfs), total(random));
}

TEST(Distributed, ComputeAndExchangeBothPositive)
{
    Rng rng(3);
    CsrGraph g = rmat(10, 60000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    const Partition p = bfsPartition(g, 4, rng);
    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);
    ClusterConfig cluster;
    cluster.numGpus = 4;
    const auto t = profileDistributedEpoch(
        baseModel(Nonlinearity::Relu), g, p, cluster, opt);
    EXPECT_GT(t.computeSeconds, 0.0);
    EXPECT_GT(t.exchangeSeconds, 0.0);
    EXPECT_GT(t.boundaryNodes, 0u);
    EXPECT_GE(t.imbalance, 1.0);
}

TEST(Distributed, MaxkShrinksExchangeVolume)
{
    Rng rng(4);
    CsrGraph g = rmat(10, 60000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    const Partition p = bfsPartition(g, 4, rng);
    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);
    ClusterConfig cluster;
    cluster.numGpus = 4;

    const ModelConfig relu_cfg = baseModel(Nonlinearity::Relu);
    const ModelConfig maxk_cfg = baseModel(Nonlinearity::MaxK, 32);
    const auto relu = profileDistributedEpoch(relu_cfg, g, p, cluster,
                                              opt);
    const auto maxk = profileDistributedEpoch(maxk_cfg, g, p, cluster,
                                              opt);
    // Per-layer accounting: the two hidden layers ship CBSR rows
    // (5*32 = 160 B vs dense 4*256 = 1024 B); the final layer ships
    // dense logits (4*16 B) in both variants.
    Bytes relu_row = 0, maxk_row = 0;
    for (std::uint32_t l = 0; l < relu_cfg.numLayers; ++l) {
        relu_row += activationRowBytes(relu_cfg, l);
        maxk_row += activationRowBytes(maxk_cfg, l);
    }
    EXPECT_EQ(relu_row, Bytes(2 * 1024 + 64));
    EXPECT_EQ(maxk_row, Bytes(2 * 160 + 64));
    EXPECT_NEAR(static_cast<double>(relu.exchangedBytes) /
                    maxk.exchangedBytes,
                static_cast<double>(relu_row) / maxk_row, 1e-12);
    EXPECT_LT(maxk.total(), relu.total());
}

TEST(Distributed, ReplicaExactExchangeAccounting)
{
    // Path A - B - C with three singleton parts: B is one boundary
    // node but has TWO remote readers (parts 0 and 2), so it ships
    // twice per layer direction; A and C ship once each. Replicas = 4,
    // distinct boundary nodes = 3 — the old model undercounted B.
    const CsrGraph g = CsrGraph::fromEdges(
        3, {{0, 1}, {1, 2}}, true, false);
    Partition p;
    p.numParts = 3;
    p.assignment = {0, 1, 2};
    EXPECT_EQ(boundaryReplicaCount(g, p), 4u);
    const auto counts = boundaryCounts(g, p);
    EXPECT_EQ(counts[0] + counts[1] + counts[2], 3u);

    const ModelConfig cfg = baseModel(Nonlinearity::Relu);
    ClusterConfig cluster;
    cluster.numGpus = 3;
    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);
    const auto t = profileDistributedEpoch(cfg, g, p, cluster, opt);
    EXPECT_EQ(t.boundaryReplicas, 4u);
    EXPECT_EQ(t.boundaryNodes, 3u);
    Bytes per_replica = 0;
    for (std::uint32_t l = 0; l < cfg.numLayers; ++l)
        per_replica += activationRowBytes(cfg, l);
    EXPECT_EQ(t.exchangedBytes, Bytes(4) * per_replica * 2);
}

TEST(Distributed, ImbalanceIgnoresEmptyParts)
{
    // Two equal halves plus an empty third part: the mean must be over
    // the two non-empty parts, so a balanced split reports ~1.0, not
    // the 1.5 the old |parts| denominator produced.
    Rng rng(8);
    CsrGraph g = erdosRenyi(400, 2400, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    Partition p;
    p.numParts = 3;
    p.assignment.resize(400);
    for (NodeId v = 0; v < 400; ++v)
        p.assignment[v] = v < 200 ? 0 : 1;
    ClusterConfig cluster;
    cluster.numGpus = 3;
    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);
    const auto t = profileDistributedEpoch(
        baseModel(Nonlinearity::Relu), g, p, cluster, opt);
    EXPECT_GE(t.imbalance, 1.0);
    EXPECT_LT(t.imbalance, 1.3);
}

TEST(Distributed, BoundarySamplingCutsExchange)
{
    Rng rng(5);
    CsrGraph g = rmat(10, 50000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    const Partition p = bfsPartition(g, 2, rng);
    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);
    ClusterConfig full;
    full.numGpus = 2;
    ClusterConfig sampled = full;
    sampled.boundarySampleRate = 0.1; // BNS-GCN's trick

    const auto t_full = profileDistributedEpoch(
        baseModel(Nonlinearity::Relu), g, p, full, opt);
    const auto t_bns = profileDistributedEpoch(
        baseModel(Nonlinearity::Relu), g, p, sampled, opt);
    EXPECT_NEAR(static_cast<double>(t_bns.exchangedBytes) /
                    t_full.exchangedBytes,
                0.1, 0.02);
}

TEST(Distributed, MorePartitionsLessComputePerGpu)
{
    Rng rng(6);
    CsrGraph g = rmat(11, 120000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);

    ClusterConfig two;
    two.numGpus = 2;
    ClusterConfig eight;
    eight.numGpus = 8;
    const auto t2 = profileDistributedEpoch(
        baseModel(Nonlinearity::Relu), g, bfsPartition(g, 2, rng), two,
        opt);
    const auto t8 = profileDistributedEpoch(
        baseModel(Nonlinearity::Relu), g, bfsPartition(g, 8, rng), eight,
        opt);
    EXPECT_LT(t8.computeSeconds, t2.computeSeconds);
}

TEST(DistributedDeathTest, PartsMustMatchGpus)
{
    Rng rng(7);
    CsrGraph g = erdosRenyi(100, 400, rng);
    const Partition p = bfsPartition(g, 2, rng);
    ClusterConfig cluster;
    cluster.numGpus = 4;
    SimOptions opt;
    EXPECT_DEATH(profileDistributedEpoch(baseModel(Nonlinearity::Relu),
                                         g, p, cluster, opt),
                 "parts != GPUs");
}

} // namespace
} // namespace maxk::nn
