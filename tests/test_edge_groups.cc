/**
 * @file
 * Unit tests for the Edge-Group warp partitioner, including the paper's
 * Case 1 / Case 2 warp-packing rule and workload-balance property tests
 * over random power-law graphs.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "graph/edge_groups.hh"
#include "graph/generators.hh"
#include "support/fixtures.hh"

namespace maxk
{
namespace
{

TEST(EdgeGroups, CoversEveryEdgeExactlyOnce)
{
    Rng rng(1);
    const CsrGraph g = test::makeGraph(test::GraphShape::ErdosRenyi, 200, 2000, rng);
    const auto part = EdgeGroupPartition::build(g, 32);
    EXPECT_TRUE(part.covers(g));
}

TEST(EdgeGroups, RespectsWorkloadCap)
{
    Rng rng(2);
    const CsrGraph g = test::makeGraph(test::GraphShape::PowerLaw, 1024, 30000, rng);
    const auto part = EdgeGroupPartition::build(g, 16);
    for (const EdgeGroup &eg : part.groups()) {
        EXPECT_GT(eg.end, eg.begin);
        EXPECT_LE(eg.end - eg.begin, 16u);
    }
}

TEST(EdgeGroups, LongRowSplitsIntoMultipleGroups)
{
    const CsrGraph g = star(100, false);
    const auto part = EdgeGroupPartition::build(g, 32);
    // Hub row has 99 edges -> 4 groups; each leaf 1 edge -> 1 group.
    std::size_t hub_groups = 0;
    for (const EdgeGroup &eg : part.groups())
        hub_groups += eg.row == 0 ? 1 : 0;
    EXPECT_EQ(hub_groups, 4u);
    EXPECT_EQ(part.groups().size(), 4u + 99u);
}

TEST(EdgeGroups, EmptyRowsProduceNoGroups)
{
    const CsrGraph g =
        CsrGraph::fromEdges(5, {{0, 1}}, false, false);
    const auto part = EdgeGroupPartition::build(g, 8);
    EXPECT_EQ(part.groups().size(), 1u);
    EXPECT_TRUE(part.covers(g));
}

TEST(EdgeGroups, EgsPerWarpFollowsPaperCases)
{
    // Case 1 (dim_k <= 16): floor(32 / dim_k) EGs share a warp.
    EXPECT_EQ(EdgeGroupPartition::egsPerWarp(2), 16u);
    EXPECT_EQ(EdgeGroupPartition::egsPerWarp(4), 8u);
    EXPECT_EQ(EdgeGroupPartition::egsPerWarp(8), 4u);
    EXPECT_EQ(EdgeGroupPartition::egsPerWarp(16), 2u);
    // Case 2 (dim_k > 16): one EG per warp.
    EXPECT_EQ(EdgeGroupPartition::egsPerWarp(17), 1u);
    EXPECT_EQ(EdgeGroupPartition::egsPerWarp(32), 1u);
    EXPECT_EQ(EdgeGroupPartition::egsPerWarp(192), 1u);
}

TEST(EdgeGroups, WarpCountScalesWithPacking)
{
    Rng rng(3);
    const CsrGraph g = test::makeGraph(test::GraphShape::ErdosRenyi, 100, 1000, rng);
    const auto part = EdgeGroupPartition::build(g, 32);
    const std::uint64_t groups = part.groups().size();
    EXPECT_EQ(part.warpCount(32), groups);
    EXPECT_EQ(part.warpCount(16), (groups + 1) / 2);
    EXPECT_EQ(part.warpCount(8), (groups + 3) / 4);
}

TEST(EdgeGroups, BalancesPowerLawGraphs)
{
    Rng rng(4);
    const CsrGraph g = test::makeGraph(test::GraphShape::PowerLaw, 4096, 150000, rng);
    const auto part = EdgeGroupPartition::build(g, 32);
    // Capped EGs keep warp load within a small constant of the mean even
    // on heavy-tailed inputs — the property the paper's partitioner
    // exists to provide (vs. row-per-warp whose imbalance is the skew).
    EXPECT_LT(part.imbalance(32), 2.5);
}

TEST(EdgeGroups, ImbalanceOfUniformGraphIsNearOne)
{
    const CsrGraph g = ringLattice(512, 8, false);
    const auto part = EdgeGroupPartition::build(g, 8);
    EXPECT_NEAR(part.imbalance(32), 1.0, 1e-9);
}

TEST(EdgeGroups, CoverDetectsForeignPartition)
{
    Rng rng(5);
    const CsrGraph g1 = test::makeGraph(test::GraphShape::ErdosRenyi, 50, 200, rng);
    const CsrGraph g2 = test::makeGraph(test::GraphShape::ErdosRenyi, 50, 210, rng);
    const auto part = EdgeGroupPartition::build(g1, 16);
    EXPECT_TRUE(part.covers(g1));
    EXPECT_FALSE(part.covers(g2));
}

TEST(EdgeGroupsDeathTest, ZeroCapRejected)
{
    const CsrGraph g = ringLattice(4, 2, false);
    EXPECT_DEATH(EdgeGroupPartition::build(g, 0), "cap");
}

class EdgeGroupsPropertyTest
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(EdgeGroupsPropertyTest, CoverageHoldsForAnyCap)
{
    Rng rng(100 + GetParam());
    const CsrGraph g = test::makeGraph(test::GraphShape::PowerLaw, 512, 12000, rng);
    const auto part = EdgeGroupPartition::build(g, GetParam());
    EXPECT_TRUE(part.covers(g));
    // Total edges across groups equals nnz.
    EdgeId total = 0;
    for (const EdgeGroup &eg : part.groups())
        total += eg.end - eg.begin;
    EXPECT_EQ(total, g.numEdges());
}

INSTANTIATE_TEST_SUITE_P(CapSweep, EdgeGroupsPropertyTest,
                         ::testing::Values(1, 2, 3, 8, 16, 32, 64, 257));

} // namespace
} // namespace maxk
