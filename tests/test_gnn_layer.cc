/**
 * @file
 * Tests for GnnLayer: forward composition against manual references for
 * all three model kinds and both nonlinearity paths, plus end-to-end
 * numerical gradient checks through the full layer (the strongest
 * evidence that the MaxK/SSpMM backward is the true adjoint of the
 * SpGEMM forward).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/maxk.hh"
#include "graph/generators.hh"
#include "kernels/spmm_ref.hh"
#include "nn/gnn_layer.hh"
#include "support/comparators.hh"
#include "support/fixtures.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

namespace maxk::nn
{
namespace
{

struct Fixture
{
    CsrGraph g;
    Matrix x;
    Rng rng{99};

    explicit Fixture(GnnKind kind, NodeId n = 30, std::size_t dim = 8)
    {
        Rng gen(21);
        g = maxk::test::makeGraph(maxk::test::GraphShape::ErdosRenyi, n,
                                  n * 3, gen, aggregatorFor(kind));
        x.resize(n, dim);
        fillNormal(x, gen, 0.0f, 1.0f);
    }
};

GnnLayerConfig
makeCfg(GnnKind kind, Nonlinearity nonlin, std::uint32_t k = 4,
        bool last = false)
{
    GnnLayerConfig cfg;
    cfg.kind = kind;
    cfg.nonlin = nonlin;
    cfg.maxkK = k;
    cfg.lastLayer = last;
    cfg.dropout = 0.0f;
    return cfg;
}

TEST(GnnLayer, GcnReluForwardMatchesReference)
{
    Fixture f(GnnKind::Gcn);
    Rng rng(1);
    GnnLayer layer(makeCfg(GnnKind::Gcn, Nonlinearity::Relu), 8, 6, rng,
                   "t");
    Matrix out;
    layer.forward(f.g, f.x, out, false, f.rng);

    ParamRefs params;
    layer.collectParams(params);
    Matrix y;
    gemm(f.x, params[0]->value, y);
    addRowVector(y, params[1]->value);
    Matrix h;
    reluForward(y, h);
    Matrix expect;
    spmmReference(f.g, h, expect);
    EXPECT_TRUE(maxk::test::matricesNear(out, expect, 1e-4f));
}

TEST(GnnLayer, GcnMaxkForwardMatchesReference)
{
    Fixture f(GnnKind::Gcn);
    Rng rng(2);
    GnnLayer layer(makeCfg(GnnKind::Gcn, Nonlinearity::MaxK, 3), 8, 6,
                   rng, "t");
    Matrix out;
    layer.forward(f.g, f.x, out, false, f.rng);

    ParamRefs params;
    layer.collectParams(params);
    Matrix y;
    gemm(f.x, params[0]->value, y);
    addRowVector(y, params[1]->value);
    Matrix h;
    maxkDense(y, 3, h);
    Matrix expect;
    spmmReference(f.g, h, expect);
    EXPECT_TRUE(maxk::test::matricesNear(out, expect, 1e-4f));
}

TEST(GnnLayer, SageAddsSelfPath)
{
    Fixture f(GnnKind::Sage);
    Rng rng(3);
    GnnLayer layer(makeCfg(GnnKind::Sage, Nonlinearity::Relu), 8, 6, rng,
                   "t");
    Matrix out;
    layer.forward(f.g, f.x, out, false, f.rng);

    ParamRefs params;
    layer.collectParams(params);
    ASSERT_EQ(params.size(), 4u); // two linears
    Matrix y;
    gemm(f.x, params[0]->value, y);
    addRowVector(y, params[1]->value);
    Matrix h;
    reluForward(y, h);
    Matrix agg;
    spmmReference(f.g, h, agg);
    Matrix self;
    gemm(f.x, params[2]->value, self);
    addRowVector(self, params[3]->value);
    addInPlace(agg, self);
    EXPECT_TRUE(maxk::test::matricesNear(out, agg, 1e-4f));
}

TEST(GnnLayer, GinAddsEpsScaledActivation)
{
    Fixture f(GnnKind::Gin);
    Rng rng(4);
    GnnLayerConfig cfg = makeCfg(GnnKind::Gin, Nonlinearity::Relu);
    cfg.ginEps = 0.25f;
    GnnLayer layer(cfg, 8, 6, rng, "t");
    Matrix out;
    layer.forward(f.g, f.x, out, false, f.rng);

    ParamRefs params;
    layer.collectParams(params);
    Matrix y;
    gemm(f.x, params[0]->value, y);
    addRowVector(y, params[1]->value);
    Matrix h;
    reluForward(y, h);
    Matrix expect;
    spmmReference(f.g, h, expect);
    axpy(expect, 1.25f, h);
    EXPECT_TRUE(maxk::test::matricesNear(out, expect, 1e-4f));
}

TEST(GnnLayer, GinMaxkDirectPathUsesSparseActivation)
{
    Fixture f(GnnKind::Gin);
    Rng rng(5);
    GnnLayerConfig cfg = makeCfg(GnnKind::Gin, Nonlinearity::MaxK, 2);
    cfg.ginEps = 0.5f;
    GnnLayer layer(cfg, 8, 6, rng, "t");
    Matrix out;
    layer.forward(f.g, f.x, out, false, f.rng);

    ParamRefs params;
    layer.collectParams(params);
    Matrix y;
    gemm(f.x, params[0]->value, y);
    addRowVector(y, params[1]->value);
    Matrix h;
    maxkDense(y, 2, h);
    Matrix expect;
    spmmReference(f.g, h, expect);
    axpy(expect, 1.5f, h);
    EXPECT_TRUE(maxk::test::matricesNear(out, expect, 1e-4f));
}

TEST(GnnLayer, LastLayerSkipsNonlinearityForBothVariants)
{
    Fixture f(GnnKind::Gcn);
    Rng rng(6);
    GnnLayer relu_layer(
        makeCfg(GnnKind::Gcn, Nonlinearity::Relu, 4, true), 8, 5, rng,
        "a");
    Rng rng2(6);
    GnnLayer maxk_layer(
        makeCfg(GnnKind::Gcn, Nonlinearity::MaxK, 4, true), 8, 5, rng2,
        "b");
    Matrix out_relu, out_maxk;
    relu_layer.forward(f.g, f.x, out_relu, false, f.rng);
    maxk_layer.forward(f.g, f.x, out_maxk, false, f.rng);
    // Same seed -> same weights -> identical dense last-layer outputs.
    EXPECT_TRUE(maxk::test::matricesNear(out_relu, out_maxk, 1e-6f));
}

TEST(GnnLayer, EffectiveKClampedToWidth)
{
    Rng rng(7);
    GnnLayer layer(makeCfg(GnnKind::Gcn, Nonlinearity::MaxK, 100), 8, 6,
                   rng, "t");
    EXPECT_EQ(layer.effectiveK(), 6u);
}

/**
 * Full-layer numerical gradient check: perturb an input entry and a
 * weight entry, compare the loss delta against the analytic gradients.
 * Loss = sum(out).
 */
void
gradientCheck(GnnKind kind, Nonlinearity nonlin)
{
    Fixture f(kind, 20, 6);
    Rng rng(8);
    GnnLayerConfig cfg = makeCfg(kind, nonlin, 2);
    cfg.ginEps = 0.3f;
    GnnLayer layer(cfg, 6, 5, rng, "t");

    Matrix out;
    layer.forward(f.g, f.x, out, false, f.rng);
    const double base = out.sum();

    Matrix d_out(out.rows(), out.cols(), 1.0f);
    Matrix dx;
    layer.backward(f.g, d_out, dx);

    ParamRefs params;
    layer.collectParams(params);

    const Float eps = 1e-2f;
    // Check a handful of input entries.
    for (const auto &[r, c] : {std::pair<int, int>{0, 0}, {3, 2},
                               {10, 5}, {19, 1}}) {
        Matrix xp = f.x;
        xp.at(r, c) += eps;
        Matrix outp;
        GnnLayer probe = layer; // copy (same weights, fresh cache)
        probe.forward(f.g, xp, outp, false, f.rng);
        const double numeric = (outp.sum() - base) / eps;
        EXPECT_NEAR(dx.at(r, c), numeric, 6e-2)
            << gnnKindName(kind) << "/" << nonlinearityName(nonlin)
            << " input(" << r << "," << c << ")";
    }
    // Check a handful of weight entries.
    for (const auto &[i, j] :
         {std::pair<int, int>{0, 0}, {2, 3}, {5, 4}}) {
        GnnLayer probe = layer;
        ParamRefs pp;
        probe.collectParams(pp);
        pp[0]->value.at(i, j) += eps;
        Matrix outp;
        probe.forward(f.g, f.x, outp, false, f.rng);
        const double numeric = (outp.sum() - base) / eps;
        EXPECT_NEAR(params[0]->grad.at(i, j), numeric, 6e-2)
            << gnnKindName(kind) << "/" << nonlinearityName(nonlin)
            << " weight(" << i << "," << j << ")";
    }
}

TEST(GnnLayerGradient, GcnRelu) { gradientCheck(GnnKind::Gcn,
                                                Nonlinearity::Relu); }
TEST(GnnLayerGradient, GcnMaxk) { gradientCheck(GnnKind::Gcn,
                                                Nonlinearity::MaxK); }
TEST(GnnLayerGradient, SageRelu) { gradientCheck(GnnKind::Sage,
                                                 Nonlinearity::Relu); }
TEST(GnnLayerGradient, SageMaxk) { gradientCheck(GnnKind::Sage,
                                                 Nonlinearity::MaxK); }
TEST(GnnLayerGradient, GinRelu) { gradientCheck(GnnKind::Gin,
                                                Nonlinearity::Relu); }
TEST(GnnLayerGradient, GinMaxk) { gradientCheck(GnnKind::Gin,
                                                Nonlinearity::MaxK); }

TEST(GnnLayer, AggregatorNamesAndKinds)
{
    EXPECT_STREQ(gnnKindName(GnnKind::Sage), "SAGE");
    EXPECT_STREQ(gnnKindName(GnnKind::Gcn), "GCN");
    EXPECT_STREQ(gnnKindName(GnnKind::Gin), "GIN");
    EXPECT_STREQ(nonlinearityName(Nonlinearity::Relu), "ReLU");
    EXPECT_STREQ(nonlinearityName(Nonlinearity::MaxK), "MaxK");
    EXPECT_EQ(aggregatorFor(GnnKind::Sage), Aggregator::SageMean);
    EXPECT_EQ(aggregatorFor(GnnKind::Gcn), Aggregator::Gcn);
    EXPECT_EQ(aggregatorFor(GnnKind::Gin), Aggregator::Gin);
}

TEST(GnnLayer, DropoutOnlyActiveInTraining)
{
    Fixture f(GnnKind::Gcn);
    Rng rng(9);
    GnnLayerConfig cfg = makeCfg(GnnKind::Gcn, Nonlinearity::Relu);
    cfg.dropout = 0.5f;
    GnnLayer layer(cfg, 8, 6, rng, "t");
    Matrix out_eval1, out_eval2, out_train;
    layer.forward(f.g, f.x, out_eval1, false, f.rng);
    layer.forward(f.g, f.x, out_eval2, false, f.rng);
    EXPECT_TRUE(out_eval1.equals(out_eval2)); // eval is deterministic
    layer.forward(f.g, f.x, out_train, true, f.rng);
    EXPECT_FALSE(out_train.equals(out_eval1)); // dropout perturbs
}

} // namespace
} // namespace maxk::nn
