/**
 * @file
 * Tests for the Sec. 4.3 analytical traffic model, including the paper's
 * own worked numbers (Reddit, dim 256) as regression anchors.
 */

#include <gtest/gtest.h>

#include "core/traffic_model.hh"

namespace maxk
{
namespace
{

// Paper constants for the Reddit profile (Table 2).
constexpr EdgeId kRedditNnz = 114615891u;
constexpr NodeId kRedditNodes = 232965u;
constexpr std::uint32_t kDim = 256;

TEST(Traffic, SpmmFeatureBytesFormula)
{
    EXPECT_EQ(traffic::spmmFeatureBytes(10, 8), 320u);
    // Reddit at dim 256: 4 * 256 * nnz ~= 117.4 GB, the dominant term
    // of Table 2's measured 138 GB SpMM traffic.
    const double gb =
        static_cast<double>(traffic::spmmFeatureBytes(kRedditNnz, kDim)) /
        1e9;
    EXPECT_NEAR(gb, 117.4, 0.5);
}

TEST(Traffic, SpgemmFiveBytesPerElementWithUint8)
{
    EXPECT_EQ(traffic::spgemmFeatureBytes(10, 8, 1), 400u);
    // Reddit k=32 uint8: 5 * 32 * nnz ~= 18.3 GB; L1 filtering brings
    // the measured Table 2 value to 13.1 GB.
    const double gb = static_cast<double>(traffic::spgemmFeatureBytes(
                          kRedditNnz, 32, 1)) /
                      1e9;
    EXPECT_NEAR(gb, 18.3, 0.2);
}

TEST(Traffic, SavedBytesMatchesPaperExpression)
{
    // (4*dim_origin - 5*dim_k) * nnz
    const std::int64_t saved =
        traffic::spgemmSavedBytes(1000, 256, 16, 1);
    EXPECT_EQ(saved, (4 * 256 - 5 * 16) * 1000);
}

TEST(Traffic, SavedBytesNegativeWhenKTooLarge)
{
    // Past the crossover (5k > 4*dim) the format loses.
    EXPECT_LT(traffic::spgemmSavedBytes(100, 64, 64, 1), 0);
}

TEST(Traffic, ReductionFractionAnchors)
{
    // dim 256, k=16, uint8: 1 - 80/1024 = 92.2% feature-traffic cut —
    // the Sec. 1 claim of ~90% for the Reddit configuration.
    EXPECT_NEAR(traffic::spgemmReductionFraction(256, 16, 1), 0.9219,
                1e-3);
    // k=32: 84.4%.
    EXPECT_NEAR(traffic::spgemmReductionFraction(256, 32, 1), 0.8438,
                1e-3);
    // k = dim with uint8 index costs 25% MORE than dense.
    EXPECT_NEAR(traffic::spgemmReductionFraction(256, 256, 1), -0.25,
                1e-6);
}

TEST(Traffic, ReductionMonotoneInK)
{
    double prev = 1.0;
    for (std::uint32_t k : {2u, 4u, 8u, 16u, 32u, 64u, 96u, 128u, 192u}) {
        const double r = traffic::spgemmReductionFraction(256, k, 1);
        EXPECT_LT(r, prev);
        prev = r;
    }
}

TEST(Traffic, SspmmReadFormula)
{
    // 4*N*dim + 5*k*nnz with uint8.
    EXPECT_EQ(traffic::sspmmReadBytes(100, 64, 1000, 8, 1),
              4u * 100 * 64 + 5u * 8 * 1000);
    // Reddit k=32: ~0.24 GB prefetch + 18.3 GB sparse fetch.
    const double gb = static_cast<double>(traffic::sspmmReadBytes(
                          kRedditNodes, kDim, kRedditNnz, 32, 1)) /
                      1e9;
    EXPECT_NEAR(gb, 18.6, 0.3);
}

TEST(Traffic, SspmmWriteFormula)
{
    EXPECT_EQ(traffic::sspmmWriteBytes(1000, 8), 4u * 8 * 1000);
}

TEST(Traffic, SspmmSavingsVsNaiveOuterMatchPaper)
{
    // Reads saved: (4*dim - 5*k) * nnz; writes saved: (4*dim - 4*k)*nnz.
    const EdgeId nnz = 5000;
    const Bytes naive_r = traffic::outerNaiveReadBytes(nnz, 256);
    const Bytes sspmm_r =
        traffic::sspmmReadBytes(100, 256, nnz, 16, 1) -
        Bytes(4) * 100 * 256; // exclude the N-proportional prefetch
    EXPECT_EQ(naive_r - sspmm_r, Bytes(4 * 256 - 5 * 16) * nnz);

    const Bytes naive_w = traffic::outerNaiveWriteBytes(nnz, 256);
    const Bytes sspmm_w = traffic::sspmmWriteBytes(nnz, 16);
    EXPECT_EQ(naive_w - sspmm_w, Bytes(4 * 256 - 4 * 16) * nnz);
}

TEST(Traffic, BackwardReductionOver90PercentAtK16)
{
    // The paper's Sec. 1 claim: SSpMM cuts global traffic > 90% on
    // Reddit with dim 256, k=16.
    const double naive = static_cast<double>(
        traffic::outerNaiveReadBytes(kRedditNnz, kDim) +
        traffic::outerNaiveWriteBytes(kRedditNnz, kDim));
    const double sspmm = static_cast<double>(
        traffic::sspmmReadBytes(kRedditNodes, kDim, kRedditNnz, 16, 1) +
        traffic::sspmmWriteBytes(kRedditNnz, 16));
    EXPECT_GT(1.0 - sspmm / naive, 0.90);
}

TEST(Traffic, AtomicOpsFormula)
{
    // N * dim * ceil(avg_deg / w).
    EXPECT_EQ(traffic::spgemmAtomicOps(100, 64, 50.0, 32), 100u * 64 * 2);
    EXPECT_EQ(traffic::spgemmAtomicOps(100, 64, 32.0, 32), 100u * 64 * 1);
}

TEST(Traffic, AtomicOpsIndependentOfK)
{
    // The write-back cost does not shrink with k — the reason Fig. 8
    // speedups saturate at small k (Sec. 5.2).
    const auto ops = traffic::spgemmAtomicOps(kRedditNodes, kDim,
                                              492.0, 32);
    EXPECT_GT(ops, 900'000'000u); // ~0.95G atomic ops per SpGEMM
}

} // namespace
} // namespace maxk
