/**
 * @file
 * The ingestion subsystem's test-first I/O coverage: round-trip
 * property tests over generator graphs for all three formats, a
 * malformed-input table for the text and binary parsers, edge-list
 * option semantics (base, dedup, symmetrize, vertex-count override),
 * format sniffing, and the registry's MAXK_DATASET_DIR override. All
 * failures here are Expected<_, IoError> values — nothing in this
 * suite may terminate the process.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/rng.hh"
#include "graph/formats/formats.hh"
#include "graph/registry.hh"
#include "support/fixtures.hh"

namespace maxk
{
namespace
{

using formats::EdgeListOptions;
using formats::GraphFormat;
using formats::IndexBase;
using test::GraphShape;

/** Write `content` under TempDir and return the path. */
std::string
writeTemp(const std::string &name, const std::string &content)
{
    const std::string path = ::testing::TempDir() + "maxk_fmt_" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return data;
}

void
expectBitwiseEqual(const CsrGraph &a, const CsrGraph &b)
{
    EXPECT_EQ(a.numNodes(), b.numNodes());
    EXPECT_EQ(a.rowPtr(), b.rowPtr());
    EXPECT_EQ(a.colIdx(), b.colIdx());
    EXPECT_EQ(a.values(), b.values());
}

using test::ScopedEnv;

// ------------------------------------------------------------ Expected

TEST(ExpectedType, ValueAndErrorPaths)
{
    Expected<int, std::string> ok(7);
    ASSERT_TRUE(ok.hasValue());
    EXPECT_EQ(ok.value(), 7);
    EXPECT_EQ(ok.valueOr(9), 7);

    Expected<int, std::string> bad(unexpected(std::string("boom")));
    ASSERT_FALSE(bad);
    EXPECT_EQ(bad.error(), "boom");
    EXPECT_EQ(bad.valueOr(9), 9);
}

TEST(ExpectedType, IoErrorDescribeNamesEverything)
{
    const IoError e{IoErrorCode::ParseError, "g.txt", 3, "bad token"};
    const std::string d = e.describe();
    EXPECT_NE(d.find("g.txt:3"), std::string::npos);
    EXPECT_NE(d.find("bad token"), std::string::npos);
    EXPECT_NE(d.find("ParseError"), std::string::npos);
}

// --------------------------------------------------- round-trip sweeps

class FormatRoundTrip : public ::testing::TestWithParam<GraphShape>
{
  protected:
    CsrGraph
    makeWeighted()
    {
        Rng rng(501 + static_cast<std::uint64_t>(GetParam()));
        CsrGraph g =
            test::makeGraph(GetParam(), 96, 700, rng,
                            Aggregator::Gcn); // non-trivial fp32 values
        return g;
    }
};

TEST_P(FormatRoundTrip, TextCsrIsBitwiseStable)
{
    const CsrGraph g = makeWeighted();
    const std::string path =
        ::testing::TempDir() + "maxk_fmt_rt_" +
        test::graphShapeName(GetParam()) + ".csr";
    ASSERT_TRUE(formats::saveTextCsr(g, path));
    auto loaded = formats::loadTextCsr(path);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    expectBitwiseEqual(g, loaded.value());
}

TEST_P(FormatRoundTrip, BinaryCsrIsBitwiseStable)
{
    const CsrGraph g = makeWeighted();
    const std::string path =
        ::testing::TempDir() + "maxk_fmt_rt_" +
        test::graphShapeName(GetParam()) + ".maxkb";
    ASSERT_TRUE(formats::saveBinaryCsr(g, path));
    auto loaded = formats::loadBinaryCsr(path);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    expectBitwiseEqual(g, loaded.value());
}

TEST_P(FormatRoundTrip, EdgeListIsBitwiseStable)
{
    const CsrGraph g = makeWeighted();
    const std::string path =
        ::testing::TempDir() + "maxk_fmt_rt_" +
        test::graphShapeName(GetParam()) + ".el";
    ASSERT_TRUE(formats::saveEdgeList(g, path));
    auto loaded = formats::loadEdgeList(path);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    expectBitwiseEqual(g, loaded.value());
}

TEST_P(FormatRoundTrip, LoadAnyGraphSniffsAllThree)
{
    const CsrGraph g = makeWeighted();
    const std::string stem = ::testing::TempDir() + "maxk_fmt_sniff_" +
                             test::graphShapeName(GetParam());
    // Deliberately misleading extensions: sniffing is content-driven.
    ASSERT_TRUE(formats::saveTextCsr(g, stem + "_t.dat"));
    ASSERT_TRUE(formats::saveBinaryCsr(g, stem + "_b.dat"));
    ASSERT_TRUE(formats::saveEdgeList(g, stem + "_e.dat"));
    for (const char *suffix : {"_t.dat", "_b.dat", "_e.dat"}) {
        auto loaded = formats::loadAnyGraph(stem + suffix);
        ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
        expectBitwiseEqual(g, loaded.value());
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FormatRoundTrip,
                         ::testing::Values(GraphShape::ErdosRenyi,
                                           GraphShape::PowerLaw,
                                           GraphShape::Star,
                                           GraphShape::Ring),
                         [](const auto &info) {
                             return test::graphShapeName(info.param);
                         });

TEST(FormatRoundTrip, WithoutValuesLoadsOnes)
{
    Rng rng(77);
    CsrGraph g = test::makeGraph(GraphShape::ErdosRenyi, 32, 160, rng,
                                 Aggregator::Gcn);
    for (GraphFormat f : {GraphFormat::TextCsr, GraphFormat::BinaryCsr,
                          GraphFormat::EdgeList}) {
        const std::string path = ::testing::TempDir() +
                                 "maxk_fmt_nv_" +
                                 std::string(graphFormatName(f));
        ASSERT_TRUE(formats::saveGraphAs(f, g, path, false));
        auto loaded = formats::loadAnyGraph(path);
        ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
        EXPECT_EQ(loaded->rowPtr(), g.rowPtr());
        for (Float v : loaded->values())
            EXPECT_EQ(v, 1.0f);
    }
}

// -------------------------------------------- malformed-input tables

struct BadCase
{
    const char *name;
    const char *content;
    IoErrorCode code;
};

class MalformedTextCsr : public ::testing::TestWithParam<BadCase>
{
};

TEST_P(MalformedTextCsr, IsReportedNotFatal)
{
    const auto &[name, content, code] = GetParam();
    auto result = formats::parseTextCsr(content, name);
    ASSERT_FALSE(result.hasValue()) << "expected failure for " << name;
    EXPECT_EQ(result.error().code, code)
        << "got: " << result.error().describe();
}

INSTANTIATE_TEST_SUITE_P(
    Table, MalformedTextCsr,
    ::testing::Values(
        BadCase{"empty_file", "", IoErrorCode::Truncated},
        BadCase{"bad_magic", "not-a-graph 1 2 2\n0 1 2\n1 0\n",
                IoErrorCode::BadMagic},
        BadCase{"bad_version", "maxk-csr 9 2 2\n0 1 2\n1 0\n",
                IoErrorCode::BadVersion},
        BadCase{"truncated_header", "maxk-csr 1 4",
                IoErrorCode::BadHeader},
        BadCase{"counts_exceed_file", "maxk-csr 1 999999 2\n0 1 2\n",
                IoErrorCode::BadHeader},
        BadCase{"truncated_rowptr", "maxk-csr 1 4 2\n0 1\n",
                IoErrorCode::Truncated},
        BadCase{"truncated_colidx", "maxk-csr 1 2 3\n0 2 3\n1\n",
                IoErrorCode::Truncated},
        BadCase{"nnz_mismatch", "maxk-csr 1 2 2\n0 1 1\n0 1\n",
                IoErrorCode::CountMismatch},
        BadCase{"rowptr_not_monotone", "maxk-csr 1 2 2\n0 2 1\n0 1\n",
                IoErrorCode::CountMismatch},
        BadCase{"column_out_of_range", "maxk-csr 1 2 2\n0 1 2\n1 5\n",
                IoErrorCode::RangeError},
        BadCase{"non_numeric_rowptr", "maxk-csr 1 2 2\n0 x 2\n1 0\n",
                IoErrorCode::ParseError},
        BadCase{"non_numeric_colidx", "maxk-csr 1 2 2\n0 1 2\nq 0\n",
                IoErrorCode::ParseError},
        BadCase{"truncated_values", "maxk-csr 1 2 2\n0 1 2\n1 0\n0.5\n",
                IoErrorCode::Truncated},
        // The seed loader treated a garbage token where the optional
        // values block starts as "no values" and anything after a full
        // payload as ignorable; both must be errors now.
        BadCase{"garbage_values", "maxk-csr 1 2 2\n0 1 2\n1 0\nzz 1\n",
                IoErrorCode::ParseError},
        BadCase{"trailing_garbage",
                "maxk-csr 1 2 2\n0 1 2\n1 0\n0.5 0.25\nextra\n",
                IoErrorCode::TrailingData}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(TextCsrLenient, CrlfEndingsParse)
{
    auto result = formats::parseTextCsr(
        "maxk-csr 1 2 2\r\n0 1 2\r\n1 0\r\n0.5 0.25\r\n", "crlf");
    ASSERT_TRUE(result.hasValue()) << result.error().describe();
    EXPECT_EQ(result->numNodes(), 2u);
    EXPECT_EQ(result->values(), (std::vector<Float>{0.5f, 0.25f}));
}

TEST(MalformedBinaryCsr, CorruptionTable)
{
    Rng rng(9);
    CsrGraph g = test::makeGraph(GraphShape::ErdosRenyi, 24, 100, rng);
    const std::string path = writeTemp("bin_corrupt.maxkb", "");
    ASSERT_TRUE(formats::saveBinaryCsr(g, path));
    const std::string good = slurp(path);

    auto expectCode = [&](std::string bytes, IoErrorCode code,
                          const char *what) {
        auto result = formats::parseBinaryCsr(bytes, what);
        ASSERT_FALSE(result.hasValue()) << what;
        EXPECT_EQ(result.error().code, code)
            << what << ": " << result.error().describe();
    };

    expectCode("", IoErrorCode::Truncated, "empty_file");
    expectCode(good.substr(0, 16), IoErrorCode::Truncated,
               "truncated_header");
    expectCode(good.substr(0, good.size() - 4), IoErrorCode::Truncated,
               "truncated_payload");
    expectCode(good + "x", IoErrorCode::TrailingData, "trailing_bytes");

    std::string bad_magic = good;
    bad_magic[0] = 'Z';
    expectCode(bad_magic, IoErrorCode::BadMagic, "bad_magic");

    std::string bad_version = good;
    bad_version[8] = 9; // version u32 little-endian at offset 8
    expectCode(bad_version, IoErrorCode::BadVersion, "bad_version");

    std::string bad_flags = good;
    bad_flags[12] = 0x7f;
    expectCode(bad_flags, IoErrorCode::BadHeader, "unknown_flags");

    // The per-section checksum table occupies the last 24 bytes
    // (3 sections x u64); the last payload byte sits just before it.
    std::string flipped = good;
    flipped[flipped.size() - 1 - 24] ^= 0x01;
    expectCode(flipped, IoErrorCode::ChecksumMismatch,
               "payload_corruption");

    std::string bad_checksum = good;
    bad_checksum[32] ^= 0x01; // checksum field itself
    expectCode(bad_checksum, IoErrorCode::ChecksumMismatch,
               "checksum_corruption");
    // With the table intact, a damaged header checksum is called out as
    // such instead of blaming the payload.
    {
        auto result = formats::parseBinaryCsr(bad_checksum, "hdr");
        ASSERT_FALSE(result.hasValue());
        EXPECT_NE(result.error().message.find("header checksum field"),
                  std::string::npos)
            << result.error().describe();
    }

    // Damage confined to the diagnostic table does not reject the file:
    // the payload checksum is the corruption detector, the table only
    // localises a failure.
    std::string table_flip = good;
    table_flip[table_flip.size() - 1] ^= 0x01;
    EXPECT_TRUE(formats::parseBinaryCsr(table_flip, "tbl").hasValue());
}

TEST(MalformedBinaryCsr, SectionSweepNamesDamagedSection)
{
    // One flipped byte per payload section: the error must name the
    // section that was hit and its absolute byte offset in the file.
    Rng rng(11);
    CsrGraph g = test::makeGraph(GraphShape::ErdosRenyi, 24, 100, rng);
    const std::string path = writeTemp("bin_sweep.maxkb", "");
    ASSERT_TRUE(formats::saveBinaryCsr(g, path));
    const std::string good = slurp(path);

    const std::uint64_t indptr_off = 40;
    const std::uint64_t indices_off =
        indptr_off + (g.numNodes() + 1) * 8;
    const std::uint64_t values_off = indices_off + g.numEdges() * 4;
    const struct
    {
        const char *name;
        std::uint64_t offset;
    } sections[] = {{"indptr", indptr_off},
                    {"indices", indices_off},
                    {"values", values_off}};

    for (const auto &sec : sections) {
        std::string bytes = good;
        bytes[sec.offset] ^= 0x10; // first byte of the section
        auto result = formats::parseBinaryCsr(bytes, sec.name);
        ASSERT_FALSE(result.hasValue()) << sec.name;
        EXPECT_EQ(result.error().code, IoErrorCode::ChecksumMismatch);
        const std::string &msg = result.error().message;
        EXPECT_NE(msg.find("section '" + std::string(sec.name) + "'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("byte offset " +
                           std::to_string(sec.offset)),
                  std::string::npos)
            << msg;

        // The streaming loader must agree with the in-memory parser.
        const std::string bad_path = writeTemp("bin_sweep_bad.maxkb",
                                               bytes);
        auto streamed = formats::loadBinaryCsr(bad_path);
        ASSERT_FALSE(streamed.hasValue()) << sec.name;
        EXPECT_EQ(streamed.error().message, msg) << sec.name;
    }
}

TEST(MalformedBinaryCsr, ChecksumGuardsIndexBytes)
{
    // Flipping a column index without fixing the checksum must be
    // caught by the checksum, not by the CSR validator.
    Rng rng(10);
    CsrGraph g = test::makeGraph(GraphShape::Ring, 16, 32, rng);
    const std::string path = writeTemp("bin_idx.maxkb", "");
    ASSERT_TRUE(formats::saveBinaryCsr(g, path));
    std::string bytes = slurp(path);
    bytes[40 + (g.numNodes() + 1) * 8] ^= 0xff;
    auto result = formats::parseBinaryCsr(bytes, "idx_corrupt");
    ASSERT_FALSE(result.hasValue());
    EXPECT_EQ(result.error().code, IoErrorCode::ChecksumMismatch);
}

// ------------------------------------------------- edge-list semantics

TEST(EdgeList, ParsesCommentsBlanksTabsAndCrlf)
{
    auto result = formats::parseEdgeList("# SNAP header\r\n"
                                         "% matrix-market style\n"
                                         "\n"
                                         "0\t1\r\n"
                                         "1 2\n"
                                         "2,0\n",
                                         "mixed");
    ASSERT_TRUE(result.hasValue()) << result.error().describe();
    EXPECT_EQ(result->numNodes(), 3u);
    EXPECT_EQ(result->numEdges(), 3u);
}

TEST(EdgeList, AutoBaseDetectsOneBased)
{
    auto result = formats::parseEdgeList("1 2\n2 3\n3 1\n", "one");
    ASSERT_TRUE(result.hasValue()) << result.error().describe();
    EXPECT_EQ(result->numNodes(), 3u);
    EXPECT_EQ(result->colIdx(), (std::vector<NodeId>{1, 2, 0}));
}

TEST(EdgeList, AutoBaseKeepsZeroBased)
{
    auto result = formats::parseEdgeList("0 1\n1 2\n", "zero");
    ASSERT_TRUE(result.hasValue());
    EXPECT_EQ(result->numNodes(), 3u);
}

TEST(EdgeList, ExplicitOneBasedRejectsIdZero)
{
    EdgeListOptions opt;
    opt.base = IndexBase::One;
    auto result = formats::parseEdgeList("0 1\n", "bad_one", opt);
    ASSERT_FALSE(result.hasValue());
    EXPECT_EQ(result.error().code, IoErrorCode::RangeError);
}

TEST(EdgeList, NumNodesOverrideAddsIsolatedVertices)
{
    EdgeListOptions opt;
    opt.numNodes = 10;
    auto result = formats::parseEdgeList("0 1\n", "iso", opt);
    ASSERT_TRUE(result.hasValue());
    EXPECT_EQ(result->numNodes(), 10u);
    EXPECT_EQ(result->degree(9), 0u);
}

TEST(EdgeList, NumNodesOverrideRejectsOutOfRange)
{
    EdgeListOptions opt;
    opt.numNodes = 2;
    auto result = formats::parseEdgeList("0 5\n", "oor", opt);
    ASSERT_FALSE(result.hasValue());
    EXPECT_EQ(result.error().code, IoErrorCode::RangeError);
}

TEST(EdgeList, WeightsAreParsedAndFirstWinsOnDedup)
{
    auto result =
        formats::parseEdgeList("0 1 0.5\n0 1 0.75\n1 0 0.25\n", "w");
    ASSERT_TRUE(result.hasValue()) << result.error().describe();
    EXPECT_EQ(result->numEdges(), 2u);
    EXPECT_EQ(result->values()[0], 0.5f); // first record wins
    EXPECT_EQ(result->values()[1], 0.25f);
}

TEST(EdgeList, StrictModeReportsDuplicates)
{
    EdgeListOptions opt;
    opt.dedup = false;
    auto result = formats::parseEdgeList("0 1\n0 1\n", "dup", opt);
    ASSERT_FALSE(result.hasValue());
    EXPECT_EQ(result.error().code, IoErrorCode::DuplicateEdge);
}

TEST(EdgeList, StrictModeAcceptsBothDirectionsUnderSymmetrize)
{
    EdgeListOptions opt;
    opt.dedup = false;
    opt.symmetrize = true;
    auto result = formats::parseEdgeList("0 1 2.0\n1 0 3.0\n", "both",
                                         opt);
    ASSERT_TRUE(result.hasValue()) << result.error().describe();
    EXPECT_EQ(result->numEdges(), 2u);
    // Raw records precede their mirrored twins: both survive as-is.
    EXPECT_EQ(result->values(), (std::vector<Float>{2.0f, 3.0f}));
}

TEST(EdgeList, SubnormalWeightsRoundTrip)
{
    // glibc strtof flags subnormal results with ERANGE; they must
    // still parse (and round-trip — a graph is allowed tiny weights).
    auto result = formats::parseEdgeList("0 1 9.99999975e-39\n", "sub");
    ASSERT_TRUE(result.hasValue()) << result.error().describe();
    EXPECT_GT(result->values()[0], 0.0f);
    EXPECT_EQ(std::fpclassify(result->values()[0]), FP_SUBNORMAL);

    const std::string path = writeTemp("subnormal.el", "");
    ASSERT_TRUE(formats::saveEdgeList(result.value(), path));
    auto back = formats::loadEdgeList(path);
    ASSERT_TRUE(back.hasValue()) << back.error().describe();
    EXPECT_EQ(back->values(), result->values());

    // Genuine overflow is still rejected.
    auto huge = formats::parseEdgeList("0 1 1e50\n", "huge");
    ASSERT_FALSE(huge.hasValue());
    EXPECT_EQ(huge.error().code, IoErrorCode::ParseError);
}

TEST(EdgeList, SymmetrizedHelperMatchesParseTimeSymmetrize)
{
    // formats::symmetrized() (the CSR-input path of maxk-convert
    // --symmetrize) must agree exactly with the loader's option.
    const std::string content = "0 1 2.0\n1 0 3.0\n2 0 0.5\n";
    EdgeListOptions plain;
    auto base = formats::parseEdgeList(content, "base", plain);
    ASSERT_TRUE(base.hasValue());

    EdgeListOptions sym = plain;
    sym.symmetrize = true;
    auto at_parse = formats::parseEdgeList(content, "sym", sym);
    ASSERT_TRUE(at_parse.hasValue());

    expectBitwiseEqual(formats::symmetrized(base.value()),
                       at_parse.value());
}

TEST(EdgeList, SymmetrizeMirrorsWeights)
{
    EdgeListOptions opt;
    opt.symmetrize = true;
    auto result = formats::parseEdgeList("0 1 2.5\n", "sym", opt);
    ASSERT_TRUE(result.hasValue());
    EXPECT_EQ(result->numEdges(), 2u);
    EXPECT_EQ(result->values(), (std::vector<Float>{2.5f, 2.5f}));
    EXPECT_TRUE(result->structureSymmetric());
}

TEST(EdgeList, MixedArityIsAnError)
{
    auto r1 = formats::parseEdgeList("0 1 0.5\n1 2\n", "mixed1");
    ASSERT_FALSE(r1.hasValue());
    EXPECT_EQ(r1.error().code, IoErrorCode::ParseError);
    EXPECT_EQ(r1.error().line, 2u);

    auto r2 = formats::parseEdgeList("0 1\n1 2 0.5\n", "mixed2");
    ASSERT_FALSE(r2.hasValue());
    EXPECT_EQ(r2.error().code, IoErrorCode::ParseError);
}

TEST(EdgeList, NonNumericTokensNameTheLine)
{
    auto result = formats::parseEdgeList("0 1\nx 2\n", "tok");
    ASSERT_FALSE(result.hasValue());
    EXPECT_EQ(result.error().code, IoErrorCode::ParseError);
    EXPECT_EQ(result.error().line, 2u);
}

TEST(EdgeList, EmptyFileWithoutHintIsAnError)
{
    auto result = formats::parseEdgeList("# nothing\n", "empty");
    ASSERT_FALSE(result.hasValue());
    EXPECT_EQ(result.error().code, IoErrorCode::Truncated);
}

TEST(EdgeList, EmptyFileWithNumNodesIsAnEmptyGraph)
{
    EdgeListOptions opt;
    opt.numNodes = 4;
    auto result = formats::parseEdgeList("", "empty_ok", opt);
    ASSERT_TRUE(result.hasValue());
    EXPECT_EQ(result->numNodes(), 4u);
    EXPECT_EQ(result->numEdges(), 0u);
}

TEST(EdgeList, NodesHintPinsAutoBaseToZero)
{
    // Vertex 0 isolated, smallest listed id is 1: without the hint the
    // Auto heuristic would shift ids down and corrupt the graph.
    auto result = formats::parseEdgeList(
        "# maxk-edges nodes=3 edges=1\n1 2\n", "hint");
    ASSERT_TRUE(result.hasValue());
    EXPECT_EQ(result->numNodes(), 3u);
    EXPECT_EQ(result->degree(0), 0u);
    EXPECT_EQ(result->colIdx(), (std::vector<NodeId>{2}));
}

// ------------------------------------------------------------ sniffing

TEST(Sniffing, MissingFileIsOpenFailed)
{
    auto fmt = formats::sniffFormat("/definitely/missing/graph.txt");
    ASSERT_FALSE(fmt.hasValue());
    EXPECT_EQ(fmt.error().code, IoErrorCode::OpenFailed);

    auto loaded = formats::loadAnyGraph("/definitely/missing/graph.txt");
    ASSERT_FALSE(loaded.hasValue());
    EXPECT_EQ(loaded.error().code, IoErrorCode::OpenFailed);
}

TEST(Sniffing, ExtensionMapCoversKnownSuffixes)
{
    using formats::graphFormatFromExtension;
    EXPECT_EQ(graphFormatFromExtension("a/b.maxkb"),
              GraphFormat::BinaryCsr);
    EXPECT_EQ(graphFormatFromExtension("a.csr"), GraphFormat::TextCsr);
    EXPECT_EQ(graphFormatFromExtension("a.txt"), GraphFormat::EdgeList);
    EXPECT_EQ(graphFormatFromExtension("a.tsv"), GraphFormat::EdgeList);
    EXPECT_EQ(graphFormatFromExtension("noext"), std::nullopt);
}

TEST(Sniffing, BundledFixtureLoadsAsEdgeList)
{
    const std::string path =
        std::string(MAXK_TEST_DATA_DIR) + "/karate.txt";
    auto fmt = formats::sniffFormat(path);
    ASSERT_TRUE(fmt.hasValue()) << fmt.error().describe();
    EXPECT_EQ(fmt.value(), GraphFormat::EdgeList);

    auto loaded = formats::loadAnyGraph(path);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    EXPECT_EQ(loaded->numNodes(), 34u);
    EXPECT_EQ(loaded->numEdges(), 78u);

    EdgeListOptions opt;
    opt.symmetrize = true;
    auto sym = formats::loadAnyGraph(path, opt);
    ASSERT_TRUE(sym.hasValue());
    EXPECT_EQ(sym->numEdges(), 156u);
    EXPECT_TRUE(sym->structureSymmetric());
}

// --------------------------------------------- registry disk override

TEST(RegistryOverride, DatasetDirSwapsTwinForRealGraph)
{
    const std::string dir = ::testing::TempDir() + "maxk_dsets_a";
    ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
    Rng rng(21);
    CsrGraph real = test::makeGraph(GraphShape::PowerLaw, 64, 400, rng);
    ASSERT_TRUE(formats::saveBinaryCsr(real, dir + "/pubmed.maxkb"));

    const auto info = findDataset("pubmed");
    ASSERT_TRUE(info.has_value());

    {
        ScopedEnv env(kDatasetDirEnv, dir);
        ASSERT_TRUE(resolveDatasetSource(*info).has_value());
        Rng mat_rng(1);
        const CsrGraph loaded = materializeGraph(*info, mat_rng);
        expectBitwiseEqual(real, loaded);
    }

    // Without the env the twin comes back, at twin scale.
    EXPECT_FALSE(resolveDatasetSource(*info).has_value());
    Rng twin_rng(1);
    const CsrGraph twin = materializeGraph(*info, twin_rng);
    EXPECT_NE(twin.numNodes(), real.numNodes());
}

TEST(RegistryOverride, ExplicitOnDiskPathBeatsEnvironment)
{
    const std::string dir = ::testing::TempDir() + "maxk_dsets_b";
    ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
    Rng rng(22);
    CsrGraph g = test::makeGraph(GraphShape::Ring, 40, 80, rng);
    const std::string path = dir + "/explicit.maxkb";
    ASSERT_TRUE(formats::saveBinaryCsr(g, path));

    DatasetInfo info = *findDataset("pubmed");
    info.onDiskPath = path;
    const auto source = resolveDatasetSource(info);
    ASSERT_TRUE(source.has_value());
    EXPECT_EQ(*source, path);

    Rng mat_rng(2);
    expectBitwiseEqual(g, materializeGraph(info, mat_rng));
}

TEST(RegistryOverride, BinaryContainerIsPreferredOverText)
{
    const std::string dir = ::testing::TempDir() + "maxk_dsets_c";
    ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
    Rng rng(23);
    CsrGraph g = test::makeGraph(GraphShape::ErdosRenyi, 30, 90, rng);
    ASSERT_TRUE(formats::saveTextCsr(g, dir + "/artist.txt"));
    ASSERT_TRUE(formats::saveBinaryCsr(g, dir + "/artist.maxkb"));

    ScopedEnv env(kDatasetDirEnv, dir);
    const auto source = resolveDatasetFile("artist");
    ASSERT_TRUE(source.has_value());
    EXPECT_NE(source->find(".maxkb"), std::string::npos);
}

TEST(RegistryOverride, TrainingDataUsesDiskGraphWithDerivedLabels)
{
    const std::string dir = ::testing::TempDir() + "maxk_dsets_d";
    ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
    Rng rng(24);
    CsrGraph g = test::makeGraph(GraphShape::Community, 96, 900, rng);
    ASSERT_TRUE(formats::saveBinaryCsr(g, dir + "/Flickr.maxkb"));

    ScopedEnv env(kDatasetDirEnv, dir);
    const auto task = findTrainingTask("Flickr");
    ASSERT_TRUE(task.has_value());
    Rng data_rng(3);
    const TrainingData data = materializeTrainingData(*task, data_rng);
    EXPECT_EQ(data.graph.numNodes(), g.numNodes());
    ASSERT_EQ(data.labels.size(), g.numNodes());
    for (std::uint32_t label : data.labels)
        EXPECT_LT(label, task->numClasses);
    EXPECT_EQ(data.features.rows(), g.numNodes());
    EXPECT_EQ(data.trainMask.size(), g.numNodes());
}

} // namespace
} // namespace maxk
