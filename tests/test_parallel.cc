/**
 * @file
 * Determinism sweep for the parallel-execution subsystem
 * (common/parallel.hh): every converted row-parallel kernel must
 * produce bitwise-identical matrices AND identical simulated
 * KernelStats at 1/2/4/8 threads, including the scatter-shaped
 * backward paths and with cache simulation both on and off. Plus unit
 * coverage of the pool primitives themselves (splitRange coverage,
 * rowAlignedChunks row integrity, nesting, exception propagation).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "graph/edge_groups.hh"
#include "kernels/spmm_gnna.hh"
#include "kernels/spmm_outer_naive.hh"
#include "kernels/spmm_ref.hh"
#include "kernels/spmm_row_wise.hh"
#include "nn/gnn_layer.hh"
#include "support/fixtures.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

const std::vector<std::uint32_t> kThreadSweep{1, 2, 4, 8};

/** Restore the process default thread count on scope exit. */
struct ThreadGuard
{
    ~ThreadGuard() { setDefaultThreads(0); }
};

::testing::AssertionResult
matricesIdentical(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return ::testing::AssertionFailure() << "shape mismatch";
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            if (a.at(r, c) != b.at(r, c))
                return ::testing::AssertionFailure()
                       << "(" << r << "," << c << "): " << a.at(r, c)
                       << " != " << b.at(r, c);
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
cbsrIdentical(const CbsrMatrix &a, const CbsrMatrix &b)
{
    if (a.rows() != b.rows() || a.dimK() != b.dimK() ||
        a.dimOrigin() != b.dimOrigin())
        return ::testing::AssertionFailure() << "shape mismatch";
    for (NodeId r = 0; r < a.rows(); ++r) {
        for (std::uint32_t kk = 0; kk < a.dimK(); ++kk) {
            if (a.indexAt(r, kk) != b.indexAt(r, kk))
                return ::testing::AssertionFailure()
                       << "index (" << r << "," << kk << ")";
            if (a.dataRow(r)[kk] != b.dataRow(r)[kk])
                return ::testing::AssertionFailure()
                       << "data (" << r << "," << kk
                       << "): " << a.dataRow(r)[kk]
                       << " != " << b.dataRow(r)[kk];
        }
    }
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
phaseStatsIdentical(const gpusim::PhaseStats &a,
                    const gpusim::PhaseStats &b)
{
    if (a.name != b.name)
        return ::testing::AssertionFailure()
               << "phase name " << a.name << " != " << b.name;
#define MAXK_CMP(field)                                                   \
    if (a.field != b.field)                                               \
    return ::testing::AssertionFailure()                                  \
           << "phase " << a.name << " " #field " " << a.field             \
           << " != " << b.field
    MAXK_CMP(flops);
    MAXK_CMP(reqBytes);
    MAXK_CMP(l2ReqBytes);
    MAXK_CMP(dramReadBytes);
    MAXK_CMP(dramWriteBytes);
    MAXK_CMP(l1Hits);
    MAXK_CMP(l1Misses);
    MAXK_CMP(l2Hits);
    MAXK_CMP(l2Misses);
    MAXK_CMP(sharedOps);
    MAXK_CMP(sharedBytes);
    MAXK_CMP(atomicSectors);
#undef MAXK_CMP
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
statsIdentical(const gpusim::KernelStats &a, const gpusim::KernelStats &b)
{
    if (a.kernel != b.kernel)
        return ::testing::AssertionFailure() << "kernel name";
    if (a.phases.size() != b.phases.size())
        return ::testing::AssertionFailure()
               << "phase count " << a.phases.size()
               << " != " << b.phases.size();
    for (std::size_t i = 0; i < a.phases.size(); ++i) {
        auto r = phaseStatsIdentical(a.phases[i], b.phases[i]);
        if (!r)
            return r;
    }
    if (a.totalSeconds != b.totalSeconds)
        return ::testing::AssertionFailure()
               << "totalSeconds " << a.totalSeconds
               << " != " << b.totalSeconds;
    if (a.bottleneck != b.bottleneck)
        return ::testing::AssertionFailure() << "bottleneck";
    return ::testing::AssertionSuccess();
}

/* ------------------------------------------------------- primitives -- */

TEST(SplitRange, CoversRangeInOrder)
{
    for (std::size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
        for (std::uint32_t t : {1u, 2u, 4u, 8u, 32u}) {
            const auto chunks = splitRange(0, n, 4, t);
            std::size_t at = 0;
            for (const auto &c : chunks) {
                EXPECT_EQ(c.begin, at);
                EXPECT_LT(c.begin, c.end);
                at = c.end;
            }
            EXPECT_EQ(at, n);
            EXPECT_LE(chunks.size(), t);
            if (n >= 4) {
                for (const auto &c : chunks)
                    EXPECT_GE(c.size(), 4u);
            }
        }
    }
}

TEST(SplitRange, GrainLimitsChunkCount)
{
    const auto chunks = splitRange(0, 10, 8, 8);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0].begin, 0u);
    EXPECT_EQ(chunks[0].end, 10u);
}

TEST(RowAlignedChunks, NeverSplitsARow)
{
    Rng rng(99);
    const CsrGraph g =
        test::makeGraph(test::GraphShape::PowerLaw, 128, 1500, rng);
    const auto part = EdgeGroupPartition::build(g, 8);
    for (std::uint32_t t : {1u, 2u, 4u, 8u}) {
        const auto chunks = rowAlignedChunks(part.groups(), 4, t);
        std::size_t at = 0;
        for (const auto &c : chunks) {
            EXPECT_EQ(c.begin, at);
            EXPECT_LT(c.begin, c.end);
            if (c.begin > 0) {
                // A chunk boundary must coincide with a row change.
                EXPECT_NE(part.groups()[c.begin].row,
                          part.groups()[c.begin - 1].row);
            }
            at = c.end;
        }
        EXPECT_EQ(at, part.groups().size());
    }
}

TEST(ParallelFor, ExecutesEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h = 0;
    parallelFor(
        0, hits.size(), 8,
        [&](std::uint32_t, std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                ++hits[i];
        },
        4);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, NestedRegionsDegradeToSerial)
{
    std::atomic<int> total{0};
    parallelFor(
        0, 8, 1,
        [&](std::uint32_t, std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
                parallelFor(
                    0, 4, 1,
                    [&](std::uint32_t, std::size_t ib, std::size_t ie) {
                        total += static_cast<int>(ie - ib);
                    },
                    4);
            }
        },
        4);
    EXPECT_EQ(total.load(), 32);
}

TEST(ParallelFor, PropagatesWorkerExceptions)
{
    EXPECT_THROW(
        parallelFor(
            0, 64, 1,
            [&](std::uint32_t, std::size_t b, std::size_t) {
                if (b >= 32)
                    throw std::runtime_error("boom");
            },
            8),
        std::runtime_error);
    // The pool must stay usable afterwards.
    std::atomic<int> n{0};
    parallelFor(
        0, 16, 1,
        [&](std::uint32_t, std::size_t b, std::size_t e) {
            n += static_cast<int>(e - b);
        },
        4);
    EXPECT_EQ(n.load(), 16);
}

TEST(ResolveThreads, PrecedenceAndOverride)
{
    ThreadGuard guard;
    EXPECT_EQ(resolveThreads(3), 3u);
    setDefaultThreads(5);
    EXPECT_EQ(resolveThreads(0), 5u);
    EXPECT_EQ(resolveThreads(2), 2u); // explicit request wins
    setDefaultThreads(0);
}

/* -------------------------------------------- kernel determinism ----- */

/** (graph shape, simulateCaches). */
using SweepParam = std::tuple<test::GraphShape, bool>;

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    return test::graphShapeName(std::get<0>(info.param)) +
           (std::get<1>(info.param) ? "_caches" : "_nocaches");
}

class ThreadSweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    void
    SetUp() override
    {
        const auto [shape, caches] = GetParam();
        Rng rng(777);
        g_ = test::makeGraph(shape, 128, 1400, rng);
        part_ = EdgeGroupPartition::build(g_, 16);
        x_.resize(g_.numNodes(), 48);
        fillNormal(x_, rng, 0.0f, 1.0f);
        opt_.simulateCaches = caches;
    }

    SimOptions
    withThreads(std::uint32_t t) const
    {
        SimOptions o = opt_;
        o.threads = t;
        return o;
    }

    CsrGraph g_;
    EdgeGroupPartition part_;
    Matrix x_;
    SimOptions opt_;
    std::uint32_t k_ = 8;
};

// The simulator treats host pointers as device addresses, so simulated
// cache stats are a function of the actual buffer addresses. Every test
// below therefore reuses ONE output buffer for the baseline and every
// thread count — exactly how a training loop launches kernels — and
// snapshots the baseline values for comparison.

TEST_P(ThreadSweep, MaxkCompressBitwiseAndStats)
{
    MaxKResult result; // shared across runs: stable CBSR addresses
    maxkCompress(x_, k_, withThreads(1), result);
    const CbsrMatrix base_cbsr = result.cbsr;
    const gpusim::KernelStats base_stats = result.stats;
    const std::uint32_t base_max = result.maxPivotIterations;
    const double base_avg = result.avgPivotIterations;
    for (std::uint32_t t : kThreadSweep) {
        maxkCompress(x_, k_, withThreads(t), result);
        EXPECT_TRUE(cbsrIdentical(result.cbsr, base_cbsr)) << t;
        EXPECT_TRUE(statsIdentical(result.stats, base_stats)) << t;
        EXPECT_EQ(result.maxPivotIterations, base_max);
        EXPECT_DOUBLE_EQ(result.avgPivotIterations, base_avg);
    }
}

TEST_P(ThreadSweep, SpmmRowWiseBitwiseAndStats)
{
    Matrix y;
    const auto s_base = spmmRowWise(g_, x_, y, withThreads(1));
    const Matrix y_base = y;
    for (std::uint32_t t : kThreadSweep) {
        const auto s = spmmRowWise(g_, x_, y, withThreads(t));
        EXPECT_TRUE(matricesIdentical(y, y_base)) << t;
        EXPECT_TRUE(statsIdentical(s, s_base)) << t;
    }
}

TEST_P(ThreadSweep, SpmmGnnaBitwiseAndStats)
{
    Matrix y;
    const auto s_base = spmmGnna(g_, part_, x_, y, withThreads(1));
    const Matrix y_base = y;
    for (std::uint32_t t : kThreadSweep) {
        const auto s = spmmGnna(g_, part_, x_, y, withThreads(t));
        EXPECT_TRUE(matricesIdentical(y, y_base)) << t;
        EXPECT_TRUE(statsIdentical(s, s_base)) << t;
    }
}

TEST_P(ThreadSweep, SpmmOuterNaiveBitwiseAndStats)
{
    Matrix y;
    const auto s_base = spmmOuterNaive(g_, x_, y, withThreads(1));
    const Matrix y_base = y;
    for (std::uint32_t t : kThreadSweep) {
        const auto s = spmmOuterNaive(g_, x_, y, withThreads(t));
        EXPECT_TRUE(matricesIdentical(y, y_base)) << t;
        EXPECT_TRUE(statsIdentical(s, s_base)) << t;
    }
}

TEST_P(ThreadSweep, SpgemmForwardBitwiseAndStats)
{
    const MaxKResult mk = maxkCompress(x_, k_, withThreads(1));
    Matrix y;
    const auto s_base =
        spgemmForward(g_, part_, mk.cbsr, y, withThreads(1));
    const Matrix y_base = y;
    for (std::uint32_t t : kThreadSweep) {
        const auto s =
            spgemmForward(g_, part_, mk.cbsr, y, withThreads(t));
        EXPECT_TRUE(matricesIdentical(y, y_base)) << t;
        EXPECT_TRUE(statsIdentical(s, s_base)) << t;
    }
}

TEST_P(ThreadSweep, SpgemmForwardScatterAblationBitwiseAndStats)
{
    const MaxKResult mk = maxkCompress(x_, k_, withThreads(1));
    Matrix y;
    SimOptions o1 = withThreads(1);
    o1.spgemmSharedBuffer = false;
    const auto s_base = spgemmForward(g_, part_, mk.cbsr, y, o1);
    const Matrix y_base = y;
    for (std::uint32_t t : kThreadSweep) {
        SimOptions o = withThreads(t);
        o.spgemmSharedBuffer = false;
        const auto s = spgemmForward(g_, part_, mk.cbsr, y, o);
        EXPECT_TRUE(matricesIdentical(y, y_base)) << t;
        EXPECT_TRUE(statsIdentical(s, s_base)) << t;
    }
}

TEST_P(ThreadSweep, SspmmBackwardBitwiseAndStats)
{
    const MaxKResult mk = maxkCompress(x_, k_, withThreads(1));
    Rng grad_rng(31);
    Matrix dxl(g_.numNodes(), x_.cols());
    fillNormal(dxl, grad_rng, 0.0f, 1.0f);

    for (const bool prefetch : {true, false}) {
        CbsrMatrix dxs; // shared across runs: stable addresses
        dxs.adoptPattern(mk.cbsr);
        SimOptions o1 = withThreads(1);
        o1.sspmmPrefetch = prefetch;
        const auto s_base = sspmmBackward(g_, part_, dxl, dxs, o1);
        const CbsrMatrix base = dxs;
        for (std::uint32_t t : kThreadSweep) {
            SimOptions o = withThreads(t);
            o.sspmmPrefetch = prefetch;
            const auto s = sspmmBackward(g_, part_, dxl, dxs, o);
            EXPECT_TRUE(cbsrIdentical(dxs, base))
                << "t=" << t << " prefetch=" << prefetch;
            EXPECT_TRUE(statsIdentical(s, s_base))
                << "t=" << t << " prefetch=" << prefetch;
        }
    }
}

TEST_P(ThreadSweep, ReferenceAndAggregationPathsBitwise)
{
    ThreadGuard guard;

    // Baselines at one thread (the scatter paths take their serial
    // branch here; higher counts take the transpose-gather branch).
    setDefaultThreads(1);
    Matrix ref_base, reft_base, dense_base, denset_base, cbsr_base;
    Matrix dense_mk_base, grad_base;
    spmmReference(g_, x_, ref_base);
    spmmTransposedReference(g_, x_, reft_base);
    nn::aggregateDense(g_, x_, dense_base);
    nn::aggregateDenseTransposed(g_, x_, denset_base);
    CbsrMatrix mk_base;
    nn::maxkCompressFast(x_, k_, mk_base);
    nn::aggregateCbsr(g_, mk_base, cbsr_base);
    CbsrMatrix back_base;
    back_base.adoptPattern(mk_base);
    nn::aggregateCbsrBackward(g_, x_, back_base);
    maxkDense(x_, k_, dense_mk_base);
    maxkBackwardDense(x_, k_, x_, grad_base);

    for (std::uint32_t t : kThreadSweep) {
        setDefaultThreads(t);
        Matrix m;
        spmmReference(g_, x_, m);
        EXPECT_TRUE(matricesIdentical(m, ref_base)) << t;
        spmmTransposedReference(g_, x_, m);
        EXPECT_TRUE(matricesIdentical(m, reft_base)) << t;
        nn::aggregateDense(g_, x_, m);
        EXPECT_TRUE(matricesIdentical(m, dense_base)) << t;
        nn::aggregateDenseTransposed(g_, x_, m);
        EXPECT_TRUE(matricesIdentical(m, denset_base)) << t;

        CbsrMatrix mk;
        nn::maxkCompressFast(x_, k_, mk);
        EXPECT_TRUE(cbsrIdentical(mk, mk_base)) << t;
        nn::aggregateCbsr(g_, mk, m);
        EXPECT_TRUE(matricesIdentical(m, cbsr_base)) << t;

        CbsrMatrix back;
        back.adoptPattern(mk_base);
        nn::aggregateCbsrBackward(g_, x_, back);
        EXPECT_TRUE(cbsrIdentical(back, back_base)) << t;

        maxkDense(x_, k_, m);
        EXPECT_TRUE(matricesIdentical(m, dense_mk_base)) << t;
        maxkBackwardDense(x_, k_, x_, m);
        EXPECT_TRUE(matricesIdentical(m, grad_base)) << t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeCaches, ThreadSweep,
    ::testing::Combine(::testing::Values(test::GraphShape::ErdosRenyi,
                                         test::GraphShape::PowerLaw,
                                         test::GraphShape::Star),
                       ::testing::Bool()),
    sweepName);

} // namespace
} // namespace maxk
