/**
 * @file
 * Acceptance suite for the observability layer (ISSUE 10):
 *
 *  - MetricsRegistry snapshots are bitwise-stable across MAXK_THREADS
 *    {1, 4, 8} for the same deterministic workload (counter and
 *    histogram-bucket merges are order-independent integer sums);
 *  - histogram percentiles obey the bucket oracle against
 *    std::nth_element: percentile(q) is exactly the inclusive upper
 *    bound of the power-of-two bucket holding the true q-quantile;
 *  - trace spans nest and order correctly, and their per-phase totals
 *    reconcile exactly with the span.count/span.wall_ns/span.sim_ns
 *    counters (the maxk-trace cross-check, unit-sized);
 *  - armed steady-state training performs ZERO tracked allocations
 *    (AllocProbe): telemetry buffers are warm after the first epoch;
 *  - the telemetry config knob is bitwise-neutral: armed and disarmed
 *    training trajectories are identical at MAXK_THREADS 1 and 4.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"
#include "graph/registry.hh"
#include "nn/model.hh"
#include "nn/trainer.hh"
#include "sample/sampled_trainer.hh"

namespace maxk
{
namespace
{

namespace tel = telemetry;

struct ThreadGuard
{
    ~ThreadGuard() { setDefaultThreads(0); }
};

/** Flickr accuracy twin scaled to unit-test size. */
TrainingTask
smallTask(NodeId nodes)
{
    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = nodes;
    task.accuracyAvgDegree = 8.0;
    return task;
}

nn::ModelConfig
smallModel(const TrainingTask &task)
{
    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nn::Nonlinearity::MaxK;
    cfg.maxkK = 8;
    cfg.numLayers = 2;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 32;
    cfg.outDim = task.numClasses;
    cfg.dropout = 0.2f;
    return cfg;
}

/* ------------------------------------------------ snapshot stability */

TEST(MetricsRegistry, SnapshotStableAcrossThreadCounts)
{
    ThreadGuard guard;
    const tel::MetricId sum_id = tel::counterId("tt.sum");
    const tel::MetricId hist_id = tel::histogramId("tt.hist");
    constexpr std::size_t kN = 10000;

    std::vector<std::string> texts;
    std::vector<std::uint64_t> sums;
    for (std::uint32_t threads : {1u, 4u, 8u}) {
        setDefaultThreads(threads);
        tel::resetMetrics();
        // Deterministic workload: the merged totals are pure functions
        // of [0, kN), however the range was chunked across shards.
        parallelFor(0, kN, 1,
                    [&](std::uint32_t, std::size_t b, std::size_t e) {
                        for (std::size_t i = b; i < e; ++i) {
                            tel::counterAdd(sum_id, i);
                            tel::histogramRecord(hist_id, i % 257);
                        }
                    });
        const tel::MetricsSnapshot snap = tel::snapshotMetrics();
        sums.push_back(snap.counter("tt.sum"));
        texts.push_back(snap.renderText());

        const tel::HistogramSnapshot *h = snap.histogram("tt.hist");
        ASSERT_NE(h, nullptr);
        EXPECT_EQ(h->count, kN);
    }
    EXPECT_EQ(sums[0], kN * (kN - 1) / 2);
    EXPECT_EQ(sums[0], sums[1]);
    EXPECT_EQ(sums[0], sums[2]);
    // The whole rendered dump — every counter and every histogram
    // bucket — must be byte-identical at any thread count.
    EXPECT_EQ(texts[0], texts[1]);
    EXPECT_EQ(texts[0], texts[2]);
}

TEST(MetricsRegistry, ResetKeepsIdentitiesAndZeroesValues)
{
    const tel::MetricId id = tel::counterId("tt.reset");
    tel::counterAdd(id, 7);
    EXPECT_GE(tel::snapshotMetrics().counter("tt.reset"), 7u);
    tel::resetMetrics();
    EXPECT_EQ(tel::snapshotMetrics().counter("tt.reset"), 0u);
    // Same id after reset — call-site caches stay valid.
    EXPECT_EQ(tel::counterId("tt.reset"), id);
    tel::counterAdd(id, 3);
    EXPECT_EQ(tel::snapshotMetrics().counter("tt.reset"), 3u);
}

/* --------------------------------------------- histogram percentiles */

TEST(Histogram, PercentileMatchesNthElementBucketOracle)
{
    tel::resetMetrics();
    const tel::MetricId id = tel::histogramId("tt.lat");
    Rng rng(404);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 5000; ++i) {
        // Heavy-tailed like a latency distribution: exponentiate a
        // uniform draw so the buckets span many octaves.
        const double u = rng.uniform();
        values.push_back(
            static_cast<std::uint64_t>(std::pow(2.0, 20.0 * u)));
    }
    for (std::uint64_t v : values)
        tel::histogramRecord(id, v);

    const tel::MetricsSnapshot snap = tel::snapshotMetrics();
    const tel::HistogramSnapshot *h = snap.histogram("tt.lat");
    ASSERT_NE(h, nullptr);
    ASSERT_EQ(h->count, values.size());

    for (double q : {0.5, 0.9, 0.99}) {
        // Oracle: the true q-quantile at rank ceil(q * count).
        std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(values.size())));
        rank = std::min(std::max<std::size_t>(rank, 1), values.size());
        std::vector<std::uint64_t> sorted = values;
        std::nth_element(sorted.begin(), sorted.begin() + (rank - 1),
                         sorted.end());
        const std::uint64_t truth = sorted[rank - 1];
        // percentile(q) reports the inclusive upper bound of the bucket
        // holding the truth: [2^(b-1), 2^b - 1] for b = bit_width.
        const std::uint64_t expect =
            truth == 0 ? 0
                       : (std::uint64_t(1) << std::bit_width(truth)) - 1;
        EXPECT_EQ(h->percentile(q), expect) << "q = " << q;
        EXPECT_GE(h->percentile(q), truth) << "q = " << q;
    }
}

/* ------------------------------------------------------- trace spans */

TEST(Trace, SpanNestingOrderingAndReconciliation)
{
    tel::ArmGuard arm(true);
    tel::clearTrace();
    tel::resetMetrics();

    {
        MAXK_TRACE_SCOPE("tt.outer");
        {
            MAXK_TRACE_SCOPE("tt.inner", "first");
        }
        {
            MAXK_TRACE_SCOPE_NAMED(span, "tt.inner", "second");
            span.setSimSeconds(0.5);
        }
    }

    std::vector<tel::SpanRecord> spans;
    for (const tel::SpanRecord &s : tel::traceSnapshot())
        if (std::string_view(s.name).rfind("tt.", 0) == 0)
            spans.push_back(s);
    ASSERT_EQ(spans.size(), 3u);

    // Scopes close inner-first, so append order is inner, inner, outer.
    EXPECT_STREQ(spans[0].name, "tt.inner");
    EXPECT_STREQ(spans[1].name, "tt.inner");
    EXPECT_STREQ(spans[2].name, "tt.outer");
    EXPECT_EQ(spans[0].depth, 1u);
    EXPECT_EQ(spans[1].depth, 1u);
    EXPECT_EQ(spans[2].depth, 0u);
    EXPECT_STREQ(spans[0].detail, "first");
    EXPECT_STREQ(spans[1].detail, "second");
    EXPECT_EQ(spans[1].simNs, 500000000);
    EXPECT_EQ(spans[0].simNs, -1);

    // The outer span covers both inner ones.
    EXPECT_LE(spans[2].startNs, spans[0].startNs);
    EXPECT_LE(spans[0].startNs + spans[0].durNs,
              spans[1].startNs + spans[1].durNs);
    EXPECT_GE(spans[2].durNs, spans[0].durNs + spans[1].durNs);

    // Reconciliation counters: exactly the span sums.
    const tel::MetricsSnapshot snap = tel::snapshotMetrics();
    EXPECT_EQ(snap.counter("span.count.tt.outer"), 1u);
    EXPECT_EQ(snap.counter("span.count.tt.inner"), 2u);
    EXPECT_EQ(snap.counter("span.wall_ns.tt.inner"),
              spans[0].durNs + spans[1].durNs);
    EXPECT_EQ(snap.counter("span.wall_ns.tt.outer"), spans[2].durNs);
    EXPECT_EQ(snap.counter("span.sim_ns.tt.inner"), 500000000u);

    // The Chrome serialization carries both tracks and the span args.
    const std::string json = tel::renderChromeTrace();
    EXPECT_NE(json.find("\"name\": \"tt.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"detail\": \"second\""), std::string::npos);
    EXPECT_NE(json.find("\"sim_seconds\": 0.5"), std::string::npos);
    EXPECT_NE(json.find("wall-clock"), std::string::npos);
    EXPECT_NE(json.find("sim-seconds"), std::string::npos);
}

TEST(Trace, DisarmedScopesRecordNothing)
{
    tel::clearTrace();
    ASSERT_FALSE(tel::armed());
    {
        MAXK_TRACE_SCOPE("tt.disarmed");
    }
    for (const tel::SpanRecord &s : tel::traceSnapshot())
        EXPECT_STRNE(s.name, "tt.disarmed");
}

/* ------------------------------------- armed steady-state allocations */

TEST(Telemetry, ArmedSteadyStateIsAllocationFree)
{
    const TrainingTask task = smallTask(300);
    Rng rng(17);
    TrainingData data = materializeTrainingData(task, rng);
    nn::GnnModel model(smallModel(task));

    sample::SamplerConfig scfg;
    scfg.fanouts = {5, 5};
    scfg.batchSize = 48;
    scfg.seed = 321;
    sample::SampledTrainer trainer(model, data, task, scfg);

    sample::SampledTrainConfig tc;
    tc.epochs = 4;
    tc.evalEvery = 2;
    tc.telemetry = true;
    const sample::SampledTrainResult res = trainer.run(tc);
    // Same contract as the disarmed pipeline (test_pipeline.cc): the
    // telemetry layer must not add tracked Matrix/CBSR allocations —
    // and its own buffers are reused, not regrown, once warm.
    EXPECT_EQ(res.steadyStateAllocCount, 0u);
}

/* -------------------------------------------------- bitwise neutrality */

TEST(Telemetry, ArmedTrainingIsBitwiseEqualToDisarmed)
{
    ThreadGuard guard;
    const TrainingTask task = smallTask(300);
    Rng rng(29);
    TrainingData data = materializeTrainingData(task, rng);
    const nn::ModelConfig cfg = smallModel(task);

    for (std::uint32_t threads : {1u, 4u}) {
        setDefaultThreads(threads);
        nn::TrainConfig tc;
        tc.epochs = 3;
        tc.evalEvery = 2;

        nn::GnnModel off_model(cfg);
        nn::Trainer off_trainer(off_model, data, task);
        const nn::TrainResult off = off_trainer.run(tc);

        tc.telemetry = true;
        nn::GnnModel on_model(cfg);
        nn::Trainer on_trainer(on_model, data, task);
        const nn::TrainResult on = on_trainer.run(tc);

        EXPECT_EQ(on.trainLoss, off.trainLoss) << threads << " threads";
        EXPECT_EQ(on.valMetric, off.valMetric) << threads << " threads";
        EXPECT_EQ(on.testMetric, off.testMetric)
            << threads << " threads";
    }
}

} // namespace
} // namespace maxk
