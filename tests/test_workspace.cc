/**
 * @file
 * Zero-allocation hot-loop suite (ISSUE 4 tentpole): once the layer
 * workspaces are warm, a training epoch must perform no Matrix /
 * CbsrMatrix heap allocations anywhere in the layer stack, and a
 * shape-matching kernel relaunch must reuse its output storage. Both
 * properties are asserted through the AllocProbe counters that Matrix
 * and CbsrMatrix feed (tensor/alloc_probe.hh).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/linear_backward_cbsr.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "graph/edge_groups.hh"
#include "kernels/spmm_gnna.hh"
#include "kernels/spmm_row_wise.hh"
#include "nn/gnn_layer.hh"
#include "nn/loss.hh"
#include "nn/model.hh"
#include "nn/optimizer.hh"
#include "support/fixtures.hh"
#include "tensor/alloc_probe.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

using test::GraphShape;

/** Allocation delta of running `fn`. */
template <class Fn>
std::uint64_t
allocsDuring(Fn &&fn)
{
    const std::uint64_t before = AllocProbe::totalAllocCount();
    fn();
    return AllocProbe::totalAllocCount() - before;
}

TEST(AllocProbe, CountsMatrixStorageEvents)
{
    const std::uint64_t c0 = AllocProbe::matrixAllocCount();
    Matrix m(8, 8);
    EXPECT_EQ(AllocProbe::matrixAllocCount(), c0 + 1);
    m.resize(8, 8); // same element count: vector assign, no realloc
    EXPECT_EQ(AllocProbe::matrixAllocCount(), c0 + 1);
    m.resize(16, 16); // growth reallocates
    EXPECT_EQ(AllocProbe::matrixAllocCount(), c0 + 2);
    Matrix copy = m; // copy acquires storage
    EXPECT_EQ(AllocProbe::matrixAllocCount(), c0 + 3);
    Matrix moved = std::move(m); // move transfers, no allocation
    EXPECT_EQ(AllocProbe::matrixAllocCount(), c0 + 3);
}

TEST(AllocProbe, EnsureShapeIsNoOpAtMatchingElementCount)
{
    Matrix m(32, 16);
    const std::uint64_t c0 = AllocProbe::matrixAllocCount();
    m.ensureShape(32, 16);
    m.ensureShape(16, 32); // same element count, different shape
    EXPECT_EQ(AllocProbe::matrixAllocCount(), c0);
    EXPECT_EQ(m.rows(), 16u);
    EXPECT_EQ(m.cols(), 32u);

    CbsrMatrix c(64, 8, 128);
    const std::uint64_t b0 = AllocProbe::cbsrAllocCount();
    c.ensureShape(64, 8, 128);
    EXPECT_EQ(AllocProbe::cbsrAllocCount(), b0);
}

TEST(AllocProbe, LiveBytesTrackOwnership)
{
    const std::uint64_t live0 = AllocProbe::liveBytes();
    {
        Matrix m(128, 128);
        EXPECT_GE(AllocProbe::liveBytes(),
                  live0 + 128 * 128 * sizeof(Float));
        Matrix moved = std::move(m); // ownership transfer: no change
        EXPECT_GE(AllocProbe::liveBytes(),
                  live0 + 128 * 128 * sizeof(Float));
    }
    EXPECT_EQ(AllocProbe::liveBytes(), live0);
}

/**
 * Satellite regression (ISSUE 4): a shape-matching relaunch of the
 * simulated kernels must be allocation-free — the unconditional
 * y.resize() they used to perform is now an ensureShape no-op.
 */
TEST(KernelWorkspaceReuse, ShapeMatchingRelaunchAllocatesNothing)
{
    Rng rng(808);
    CsrGraph g = test::makeGraph(GraphShape::PowerLaw, 128, 1100, rng);
    const auto part = EdgeGroupPartition::build(g, 16);
    Matrix x(g.numNodes(), 48);
    fillNormal(x, rng, 0.0f, 1.0f);
    SimOptions opt;
    opt.simulateCaches = false;

    Matrix y_gnna, y_row, y_spgemm, y_fused;
    MaxKResult mk;
    CbsrMatrix fused_cbsr, dxs;

    // Warm-up launches size every output container.
    spmmGnna(g, part, x, y_gnna, opt);
    spmmRowWise(g, x, y_row, opt);
    maxkCompress(x, 8, opt, mk);
    spgemmForward(g, part, mk.cbsr, y_spgemm, opt);
    spgemmForwardFused(g, part, x, 8, fused_cbsr, y_fused, opt);
    dxs.adoptPattern(mk.cbsr);
    sspmmBackward(g, part, y_spgemm, dxs, opt);

    EXPECT_EQ(allocsDuring([&] {
                  spmmGnna(g, part, x, y_gnna, opt);
                  spmmRowWise(g, x, y_row, opt);
                  maxkCompress(x, 8, opt, mk);
                  spgemmForward(g, part, mk.cbsr, y_spgemm, opt);
                  spgemmForwardFused(g, part, x, 8, fused_cbsr, y_fused,
                                     opt);
                  dxs.adoptPattern(mk.cbsr);
                  sspmmBackward(g, part, y_spgemm, dxs, opt);
              }),
              0u);
}

TEST(KernelWorkspaceReuse, FastAggregationPathsAllocateNothingWhenWarm)
{
    Rng rng(809);
    CsrGraph g = test::makeGraph(GraphShape::ErdosRenyi, 128, 1100, rng);
    Matrix x(g.numNodes(), 32);
    fillNormal(x, rng, 0.0f, 1.0f);

    Matrix y_dense, y_cbsr, dw, db, dx;
    CbsrMatrix cbsr, dxs;
    nn::maxkCompressFast(x, 8, cbsr);
    nn::aggregateDense(g, x, y_dense);
    nn::aggregateCbsr(g, cbsr, y_cbsr);
    dxs.adoptPattern(cbsr);
    nn::aggregateCbsrBackward(g, x, dxs);
    Matrix w(32, 32);
    fillNormal(w, rng, 0.0f, 0.5f);
    cbsrGemmTransA(x, dxs, dw);
    cbsrColumnSums(dxs, db);
    cbsrGemmTransB(dxs, w, dx);

    EXPECT_EQ(allocsDuring([&] {
                  nn::maxkCompressFast(x, 8, cbsr);
                  nn::aggregateDense(g, x, y_dense);
                  nn::aggregateCbsr(g, cbsr, y_cbsr);
                  dxs.adoptPattern(cbsr);
                  nn::aggregateCbsrBackward(g, x, dxs);
                  cbsrGemmTransA(x, dxs, dw);
                  cbsrColumnSums(dxs, db);
                  cbsrGemmTransB(dxs, w, dx);
              }),
              0u);
}

/** Build a small training setup for one model family. */
struct EpochFixture
{
    CsrGraph graph;
    Matrix features;
    std::vector<std::uint32_t> labels;
    std::vector<std::uint8_t> mask;
    nn::GnnModel model;

    EpochFixture(nn::GnnKind kind, nn::Nonlinearity nonlin)
        : model(makeConfig(kind, nonlin))
    {
        Rng rng(1234);
        graph = test::makeGraph(GraphShape::PowerLaw, 128, 1200, rng,
                                nn::aggregatorFor(kind));
        features.resize(graph.numNodes(), 24);
        fillNormal(features, rng, 0.0f, 1.0f);
        labels.resize(graph.numNodes());
        for (NodeId i = 0; i < graph.numNodes(); ++i)
            labels[i] = i % 4;
        mask.assign(graph.numNodes(), 1);
    }

    static nn::ModelConfig
    makeConfig(nn::GnnKind kind, nn::Nonlinearity nonlin)
    {
        nn::ModelConfig mc;
        mc.kind = kind;
        mc.nonlin = nonlin;
        mc.maxkK = 8;
        mc.numLayers = 3;
        mc.inDim = 24;
        mc.hiddenDim = 32;
        mc.outDim = 4;
        mc.dropout = 0.4f;
        mc.ginEps = 0.1f;
        return mc;
    }
};

/**
 * Acceptance criterion of ISSUE 4: a steady-state training epoch
 * (epoch >= 2) performs zero Matrix/CbsrMatrix heap allocations inside
 * the layer stack — forward and backward both — for every model family
 * and both nonlinearities.
 */
class SteadyStateEpoch
    : public ::testing::TestWithParam<
          std::tuple<nn::GnnKind, nn::Nonlinearity>>
{
};

TEST_P(SteadyStateEpoch, LayerStackAllocatesNothing)
{
    const auto [kind, nonlin] = GetParam();
    EpochFixture f(kind, nonlin);
    nn::Adam adam(f.model.params(), 0.01f);

    const Matrix *logits = nullptr;
    auto run_epoch = [&](bool probed) {
        std::uint64_t fwd_allocs = allocsDuring([&] {
            logits = &f.model.forward(f.graph, f.features, true);
        });
        // Loss buffers are outside the layer stack: unprobed.
        nn::LossResult loss =
            nn::softmaxCrossEntropy(*logits, f.labels, f.mask);
        std::uint64_t bwd_allocs = allocsDuring(
            [&] { f.model.backward(f.graph, loss.gradLogits); });
        adam.step();
        if (probed) {
            EXPECT_EQ(fwd_allocs, 0u) << "forward allocated";
            EXPECT_EQ(bwd_allocs, 0u) << "backward allocated";
        }
    };

    run_epoch(false); // epoch 0: workspaces warm up
    run_epoch(false); // epoch 1: optimizer state settles
    run_epoch(true);  // epoch 2: steady state — zero allocations
    run_epoch(true);  // epoch 3: stays that way
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndNonlins, SteadyStateEpoch,
    ::testing::Combine(::testing::Values(nn::GnnKind::Sage,
                                         nn::GnnKind::Gcn,
                                         nn::GnnKind::Gin),
                       ::testing::Values(nn::Nonlinearity::MaxK,
                                         nn::Nonlinearity::Relu)),
    [](const ::testing::TestParamInfo<SteadyStateEpoch::ParamType>
           &info) {
        return std::string(nn::gnnKindName(std::get<0>(info.param))) +
               "_" +
               (std::get<1>(info.param) == nn::Nonlinearity::MaxK
                    ? "MaxK"
                    : "ReLU");
    });

/**
 * The CBSR-aware backward must leave training byte-for-byte unchanged:
 * losses and logits with the new sparse path equal the reference values
 * computed through an explicitly decompressed gradient (here: the
 * Linear dense overload driven by decompress, mirroring the old code).
 */
TEST(CbsrBackwardEndToEnd, SageMaxkGradStepMatchesDenseReference)
{
    EpochFixture f(nn::GnnKind::Sage, nn::Nonlinearity::MaxK);
    nn::GnnModel reference(
        EpochFixture::makeConfig(nn::GnnKind::Sage,
                                 nn::Nonlinearity::MaxK));
    nn::Adam adam_a(f.model.params(), 0.01f);
    nn::Adam adam_b(reference.params(), 0.01f);

    // Identical seeds => identical init; run both stacks three epochs
    // through the (shared) new code path and require bitwise-equal
    // logits — this guards determinism of the workspace-reuse rewrite
    // itself (same object reused across epochs, swapped grad buffers).
    for (int epoch = 0; epoch < 3; ++epoch) {
        const Matrix &la = f.model.forward(f.graph, f.features, true);
        const Matrix &lb = reference.forward(f.graph, f.features, true);
        ASSERT_TRUE(la.equals(lb)) << "epoch " << epoch;
        nn::LossResult loss_a =
            nn::softmaxCrossEntropy(la, f.labels, f.mask);
        nn::LossResult loss_b =
            nn::softmaxCrossEntropy(lb, f.labels, f.mask);
        ASSERT_EQ(loss_a.loss, loss_b.loss);
        f.model.backward(f.graph, loss_a.gradLogits);
        reference.backward(f.graph, loss_b.gradLogits);
        adam_a.step();
        adam_b.step();
    }
}

/**
 * GnnLayerConfig::fusedForward selects the fused cost model but must
 * not perturb the functional path: identical training trajectories.
 */
TEST(FusedForwardFlag, TrainingTrajectoryIsBitwiseIdentical)
{
    nn::ModelConfig mc = EpochFixture::makeConfig(
        nn::GnnKind::Gin, nn::Nonlinearity::MaxK);
    nn::ModelConfig mc_fused = mc;
    mc_fused.fusedForward = true;

    EpochFixture f(nn::GnnKind::Gin, nn::Nonlinearity::MaxK);
    nn::GnnModel plain(mc);
    nn::GnnModel fused(mc_fused);
    nn::Adam adam_a(plain.params(), 0.01f);
    nn::Adam adam_b(fused.params(), 0.01f);
    for (int epoch = 0; epoch < 2; ++epoch) {
        const Matrix &la = plain.forward(f.graph, f.features, true);
        const Matrix &lb = fused.forward(f.graph, f.features, true);
        ASSERT_TRUE(la.equals(lb)) << "epoch " << epoch;
        nn::LossResult loss_a =
            nn::softmaxCrossEntropy(la, f.labels, f.mask);
        nn::LossResult loss_b =
            nn::softmaxCrossEntropy(lb, f.labels, f.mask);
        plain.backward(f.graph, loss_a.gradLogits);
        fused.backward(f.graph, loss_b.gradLogits);
        adam_a.step();
        adam_b.step();
    }
}

/**
 * Linear's CBSR overload accumulates into the parameter gradients the
 * same way the dense overload does (a second call adds, SAGE-style).
 */
TEST(LinearCbsrBackward, AccumulatesAcrossCalls)
{
    Rng rng(77);
    nn::Linear lin(12, 16, rng, "lin");
    Matrix x(40, 12);
    fillNormal(x, rng, 0.0f, 1.0f);
    Matrix gsrc(40, 16);
    fillNormal(gsrc, rng, 0.0f, 1.0f);
    SimOptions opt;
    opt.simulateCaches = false;
    const MaxKResult mk = maxkCompress(gsrc, 4, opt);

    Matrix dx;
    lin.backward(x, mk.cbsr, dx);
    const Matrix grad_once = lin.weight().grad;
    lin.backward(x, mk.cbsr, dx);

    // Second call doubled every accumulated entry.
    for (std::size_t i = 0; i < grad_once.rows(); ++i)
        for (std::size_t j = 0; j < grad_once.cols(); ++j)
            ASSERT_FLOAT_EQ(lin.weight().grad.at(i, j),
                            2.0f * grad_once.at(i, j));
}

} // namespace
} // namespace maxk
