/**
 * @file
 * Tests for the dataset registry: Table 1 fidelity, twin scaling rules,
 * and training-data materialisation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "graph/registry.hh"
#include "graph/stats.hh"

namespace maxk
{
namespace
{

TEST(Registry, HasAll24Table1Datasets)
{
    EXPECT_EQ(kernelSuite().size(), 24u);
}

TEST(Registry, Table1NumbersMatchPaper)
{
    const auto reddit = findDataset("Reddit");
    ASSERT_TRUE(reddit.has_value());
    EXPECT_EQ(reddit->paperNodes, 232965u);
    EXPECT_EQ(reddit->paperEdges, 114615891u);

    const auto proteins = findDataset("ogbn-proteins");
    ASSERT_TRUE(proteins.has_value());
    EXPECT_EQ(proteins->paperNodes, 132534u);
    EXPECT_EQ(proteins->paperEdges, 79122504u);

    const auto pubmed = findDataset("pubmed");
    ASSERT_TRUE(pubmed.has_value());
    EXPECT_EQ(pubmed->paperNodes, 19717u);
    EXPECT_EQ(pubmed->paperEdges, 99203u);

    const auto products = findDataset("ogbn-products");
    ASSERT_TRUE(products.has_value());
    EXPECT_EQ(products->paperEdges, 123718280u);
}

TEST(Registry, UnknownDatasetReturnsNullopt)
{
    EXPECT_FALSE(findDataset("not-a-dataset").has_value());
}

TEST(Registry, TwinPreservesPaperAverageDegree)
{
    for (const auto &d : kernelSuite()) {
        const double paper_avg = d.paperAvgDegree();
        const double twin_avg =
            static_cast<double>(d.twinEdges) / d.twinNodes;
        // Preserved within 2% by construction.
        EXPECT_NEAR(twin_avg / paper_avg, 1.0, 0.02) << d.name;
    }
}

TEST(Registry, TwinEdgeBudgetRespected)
{
    for (const auto &d : kernelSuite()) {
        EXPECT_LE(d.twinEdges, (1u << 20) + d.twinNodes) << d.name;
        EXPECT_LE(d.twinNodes, 1u << 16) << d.name;
        EXPECT_GE(d.twinNodes, 128u) << d.name;
    }
}

TEST(Registry, SmallDatasetsKeepTheirNodeCount)
{
    // pubmed (19717 nodes, low degree) fits the budget unscaled.
    const auto pubmed = findDataset("pubmed");
    EXPECT_EQ(pubmed->twinNodes, 19717u);
}

TEST(Registry, HighDegreeTwinsShrinkNodes)
{
    const auto reddit = findDataset("Reddit");
    EXPECT_LT(reddit->twinNodes, 5000u); // avg degree ~492 caps nodes
    EXPECT_GT(reddit->paperAvgDegree(), 400.0);
}

TEST(Registry, MaterializePowerLawTwin)
{
    Rng rng(1);
    const auto artist = findDataset("artist");
    const CsrGraph g = materializeGraph(*artist, rng);
    EXPECT_TRUE(g.validate());
    const DegreeStats s = computeDegreeStats(g);
    EXPECT_GT(s.skewRatio, 4.0); // power-law shape
}

TEST(Registry, MaterializeMeshTwinIsBalanced)
{
    Rng rng(2);
    const auto dd = findDataset("DD");
    ASSERT_EQ(dd->kind, GraphKind::Mesh);
    const CsrGraph g = materializeGraph(*dd, rng);
    const DegreeStats s = computeDegreeStats(g);
    EXPECT_LT(s.skewRatio, 2.0); // molecule datasets are near-regular
}

TEST(Registry, TrainingSuiteHasFiveDatasets)
{
    const auto &suite = trainingSuite();
    ASSERT_EQ(suite.size(), 5u);
    EXPECT_EQ(suite[0].info.name, "Flickr");
    EXPECT_EQ(suite[2].info.name, "Reddit");
}

TEST(Registry, TrainingMetricsMatchTable5)
{
    EXPECT_EQ(findTrainingTask("Yelp")->metric, MetricKind::MicroF1);
    EXPECT_EQ(findTrainingTask("ogbn-proteins")->metric,
              MetricKind::RocAuc);
    EXPECT_EQ(findTrainingTask("Reddit")->metric, MetricKind::Accuracy);
    EXPECT_TRUE(findTrainingTask("Yelp")->multiLabel);
    EXPECT_FALSE(findTrainingTask("Flickr")->multiLabel);
}

TEST(Registry, MetricNames)
{
    EXPECT_STREQ(metricName(MetricKind::Accuracy), "Acc");
    EXPECT_STREQ(metricName(MetricKind::MicroF1), "F1");
    EXPECT_STREQ(metricName(MetricKind::RocAuc), "AUC");
}

TEST(Registry, TrainingDataMasksPartitionNodes)
{
    Rng rng(3);
    const auto task = findTrainingTask("Flickr");
    const TrainingData data = materializeTrainingData(*task, rng);
    const NodeId n = data.graph.numNodes();
    ASSERT_EQ(data.trainMask.size(), n);
    for (NodeId v = 0; v < n; ++v) {
        const int marks =
            data.trainMask[v] + data.valMask[v] + data.testMask[v];
        ASSERT_EQ(marks, 1) << "node " << v;
    }
}

TEST(Registry, TrainingFeaturesCarryClassSignal)
{
    Rng rng(4);
    const auto task = findTrainingTask("Flickr");
    const TrainingData data = materializeTrainingData(*task, rng);
    // Mean intra-class feature distance should be below inter-class.
    const Matrix &x = data.features;
    double intra = 0.0, inter = 0.0;
    int n_intra = 0, n_inter = 0;
    Rng pick(5);
    for (int t = 0; t < 4000; ++t) {
        const NodeId a =
            static_cast<NodeId>(pick.nextBounded(x.rows()));
        const NodeId b =
            static_cast<NodeId>(pick.nextBounded(x.rows()));
        double d = 0.0;
        for (std::size_t c = 0; c < x.cols(); ++c) {
            const double diff = x.at(a, c) - x.at(b, c);
            d += diff * diff;
        }
        if (data.labels[a] == data.labels[b]) {
            intra += d;
            ++n_intra;
        } else {
            inter += d;
            ++n_inter;
        }
    }
    ASSERT_GT(n_intra, 0);
    ASSERT_GT(n_inter, 0);
    EXPECT_LT(intra / n_intra, inter / n_inter);
}

TEST(Registry, TrainingDataDeterministicBySeed)
{
    const auto task = findTrainingTask("Reddit");
    Rng r1(9), r2(9);
    const TrainingData d1 = materializeTrainingData(*task, r1);
    const TrainingData d2 = materializeTrainingData(*task, r2);
    EXPECT_EQ(d1.graph.colIdx(), d2.graph.colIdx());
    EXPECT_EQ(d1.labels, d2.labels);
    EXPECT_TRUE(d1.features.equals(d2.features));
}

TEST(Registry, AccuracyTwinSmallerThanKernelTwin)
{
    for (const auto &t : trainingSuite()) {
        EXPECT_LE(t.accuracyNodes, 2048u) << t.info.name;
        EXPECT_LE(t.accuracyAvgDegree, 24.0) << t.info.name;
    }
}

} // namespace
} // namespace maxk
