/**
 * @file
 * Tests for the paper's two headline kernels. Functional correctness is
 * checked against dense oracles (SpGEMM vs A * decompress(CBSR); SSpMM
 * vs a gather of A^T * dXl at the CBSR pattern); traffic counters are
 * checked against the Sec. 4.3 analytical formulas; and the performance
 * relationships of Fig. 8 (speedup grows as k shrinks; SSpMM beats the
 * naive outer-product baseline) are asserted on a power-law twin.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "core/traffic_model.hh"
#include "graph/edge_groups.hh"
#include "graph/generators.hh"
#include "kernels/spmm_outer_naive.hh"
#include "kernels/spmm_ref.hh"
#include "kernels/spmm_row_wise.hh"
#include "nn/gnn_layer.hh"
#include "support/comparators.hh"
#include "support/fixtures.hh"
#include "support/oracles.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

using Fixture = test::MaxKFixture;
using test::cbsrMatchesDenseGather;
using test::matricesNear;

TEST(SpgemmForward, MatchesDenseOracle)
{
    Fixture f(200, 1600, 64, 16, 1);
    Matrix y, y_ref;
    spgemmForward(f.g, f.part, f.mk.cbsr, y, f.opt);
    test::spgemmOracle(f.g, f.mk.cbsr, y_ref);
    EXPECT_TRUE(matricesNear(y, y_ref, 1e-4f));
}

TEST(SpgemmForward, FastPathAgreesWithSimulatedKernel)
{
    Fixture f(150, 1000, 32, 8, 2);
    Matrix y_sim, y_fast;
    spgemmForward(f.g, f.part, f.mk.cbsr, y_sim, f.opt);
    nn::aggregateCbsr(f.g, f.mk.cbsr, y_fast);
    EXPECT_TRUE(matricesNear(y_sim, y_fast, 1e-5f));
}

TEST(SpgemmForward, FeatureTrafficMatchesFormula)
{
    Fixture f(256, 4000, 256, 32, 3);
    Matrix y;
    const auto stats = spgemmForward(f.g, f.part, f.mk.cbsr, y, f.opt);
    // compute phase request bytes ~ (4+1)*k*nnz plus CSR metadata.
    const Bytes formula = traffic::spgemmFeatureBytes(
        f.g.numEdges(), 32, f.mk.cbsr.indexBytes());
    Bytes compute_bytes = 0;
    for (const auto &p : stats.phases)
        if (p.name == "compute+accumulate")
            compute_bytes = p.reqBytes;
    EXPECT_GT(compute_bytes, formula);
    EXPECT_LT(compute_bytes, formula * 1.25);
}

TEST(SpgemmForward, TrafficReductionVsSpmmNear90Percent)
{
    // The paper's headline: Reddit, dim 256, k=16 -> ~90% reduction.
    Fixture f(256, 6000, 256, 16, 4);
    Matrix y;
    const auto spgemm = spgemmForward(f.g, f.part, f.mk.cbsr, y, f.opt);
    const auto spmm = spmmRowWise(f.g, f.x, y, f.opt);
    Bytes spgemm_fetch = 0;
    for (const auto &p : spgemm.phases)
        if (p.name == "compute+accumulate")
            spgemm_fetch = p.reqBytes;
    const double reduction =
        1.0 - static_cast<double>(spgemm_fetch) /
                  static_cast<double>(spmm.aggregate().reqBytes);
    EXPECT_GT(reduction, 0.85);
    EXPECT_LT(reduction, 0.95);
}

TEST(SpgemmForward, WritebackAtomicsMatchFormula)
{
    Fixture f(128, 2048, 64, 8, 5);
    Matrix y;
    const auto stats = spgemmForward(f.g, f.part, f.mk.cbsr, y, f.opt);
    // One dim_origin-wide atomic merge per EG.
    const std::uint64_t expect =
        f.part.groups().size() * (64ull * 4 / 32);
    EXPECT_EQ(stats.aggregate().atomicSectors, expect);
}

TEST(SpgemmForward, ZeroKRowsStillProduceOutput)
{
    // Graph with an isolated node: its output row is zero.
    CsrGraph g = CsrGraph::fromEdges(4, {{0, 1}, {1, 2}}, true, false);
    g.setAggregatorWeights(Aggregator::Gin);
    const auto part = EdgeGroupPartition::build(g, 8);
    Rng rng(6);
    Matrix x(4, 8);
    fillNormal(x, rng, 0.0f, 1.0f);
    SimOptions opt;
    opt.simulateCaches = false;
    MaxKResult mk = maxkCompress(x, 2, opt);
    Matrix y;
    spgemmForward(g, part, mk.cbsr, y, opt);
    for (std::size_t d = 0; d < 8; ++d)
        EXPECT_EQ(y.at(3, d), 0.0f);
}

TEST(SspmmBackward, MatchesGatheredDenseOracle)
{
    Fixture f(180, 1400, 48, 12, 7);
    Rng rng(8);
    Matrix dxl(180, 48);
    fillNormal(dxl, rng, 0.0f, 1.0f);

    CbsrMatrix dxs;
    dxs.adoptPattern(f.mk.cbsr);
    sspmmBackward(f.g, f.part, dxl, dxs, f.opt);

    // Oracle: dense A^T * dxl, gathered at the pattern.
    Matrix dense;
    test::sspmmOracle(f.g, dxl, dense);
    ASSERT_TRUE(cbsrMatchesDenseGather(dxs, dense, 1e-3f));
}

TEST(SspmmBackward, FastPathAgreesWithSimulatedKernel)
{
    Fixture f(120, 900, 32, 8, 9);
    Rng rng(10);
    Matrix dxl(120, 32);
    fillNormal(dxl, rng, 0.0f, 1.0f);

    CbsrMatrix sim, fast;
    sim.adoptPattern(f.mk.cbsr);
    fast.adoptPattern(f.mk.cbsr);
    sspmmBackward(f.g, f.part, dxl, sim, f.opt);
    nn::aggregateCbsrBackward(f.g, dxl, fast);
    ASSERT_TRUE(test::cbsrNear(sim, fast, 1e-5f));
}

TEST(SspmmBackward, PrefetchReadsEachGradientRowOnce)
{
    Fixture f(100, 3000, 64, 16, 11);
    Matrix dxl(100, 64, 1.0f);
    CbsrMatrix dxs;
    dxs.adoptPattern(f.mk.cbsr);
    const auto stats = sspmmBackward(f.g, f.part, dxl, dxs, f.opt);
    Bytes prefetch = 0;
    for (const auto &p : stats.phases)
        if (p.name == "prefetch")
            prefetch = p.reqBytes;
    // 4 * N * dim_origin, not nnz-proportional (the Sec. 4.3 claim).
    EXPECT_EQ(prefetch, Bytes(100) * 64 * 4);
}

TEST(SspmmBackward, ReadTrafficMatchesFormula)
{
    Fixture f(200, 4000, 128, 16, 12);
    Matrix dxl(200, 128, 0.5f);
    CbsrMatrix dxs;
    dxs.adoptPattern(f.mk.cbsr);
    const auto stats = sspmmBackward(f.g, f.part, dxl, dxs, f.opt);
    const Bytes formula = traffic::sspmmReadBytes(
        200, 128, f.g.numEdges(), 16, dxs.indexBytes());
    // Request bytes also include CSR metadata and the atomic RMW write
    // traffic; reads alone should bracket the formula.
    Bytes reads = 0;
    for (const auto &p : stats.phases)
        reads += p.reqBytes;
    EXPECT_GT(reads, formula);
    EXPECT_LT(reads, formula * 1.8);
}

TEST(SspmmBackward, OutputAtomicsScaleWithDimK)
{
    Fixture f8(100, 2000, 64, 8, 13);
    Fixture f32(100, 2000, 64, 32, 13);
    Matrix dxl(100, 64, 1.0f);

    CbsrMatrix d8, d32;
    d8.adoptPattern(f8.mk.cbsr);
    d32.adoptPattern(f32.mk.cbsr);
    const auto s8 = sspmmBackward(f8.g, f8.part, dxl, d8, f8.opt);
    const auto s32 = sspmmBackward(f32.g, f32.part, dxl, d32, f32.opt);
    EXPECT_NEAR(static_cast<double>(s32.aggregate().atomicSectors) /
                    s8.aggregate().atomicSectors,
                4.0, 0.2);
}

TEST(Fig8Shape, SpeedupGrowsAsKShrinks)
{
    // Power-law graph with decent average degree, dim 256, caches on.
    Rng rng(14);
    CsrGraph g = rmat(11, 120000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    const auto part = EdgeGroupPartition::build(g, 32);
    Matrix x(g.numNodes(), 256);
    fillNormal(x, rng, 0.0f, 1.0f);

    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);
    Matrix y;
    const double t_spmm = spmmRowWise(g, x, y, opt).totalSeconds;

    // Speedup grows as k shrinks, then saturates once the k-independent
    // write-back stage dominates — exactly the Sec. 5.2 behaviour
    // ("a further decrease in k leads to a speedup saturation").
    double speedup64 = 0.0, speedup16 = 0.0, speedup4 = 0.0;
    for (std::uint32_t k : {64u, 16u, 4u}) {
        MaxKResult mk = maxkCompress(x, k, opt);
        const double t =
            spgemmForward(g, part, mk.cbsr, y, opt).totalSeconds;
        (k == 64 ? speedup64 : k == 16 ? speedup16 : speedup4) =
            t_spmm / t;
    }
    EXPECT_GT(speedup16, speedup64);
    EXPECT_GE(speedup4, speedup16 * 0.99); // may saturate, not regress
    EXPECT_GT(speedup4, 2.0);
}

TEST(Fig8Shape, SspmmBeatsNaiveOuterProduct)
{
    Rng rng(15);
    CsrGraph g = rmat(10, 60000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    const auto part = EdgeGroupPartition::build(g, 32);
    Matrix dxl(g.numNodes(), 256);
    fillNormal(dxl, rng, 0.0f, 1.0f);

    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);
    MaxKResult mk = maxkCompress(dxl, 16, opt);
    CbsrMatrix dxs;
    dxs.adoptPattern(mk.cbsr);
    const double t_sspmm =
        sspmmBackward(g, part, dxl, dxs, opt).totalSeconds;

    Matrix out;
    const double t_naive =
        spmmOuterNaive(g, dxl, out, opt).totalSeconds;
    EXPECT_GT(t_naive / t_sspmm, 2.0);
}

class SpgemmOracleSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>>
{
};

TEST_P(SpgemmOracleSweep, MatchesOracleAcrossKAndGraphs)
{
    const auto [k, seed] = GetParam();
    Rng rng(300 + seed);
    CsrGraph g = seed % 2 == 0 ? erdosRenyi(128, 1024, rng)
                               : rmat(7, 1500, rng);
    g.setAggregatorWeights(seed % 3 == 0 ? Aggregator::Gcn
                                         : Aggregator::SageMean);
    const auto part = EdgeGroupPartition::build(g, 16);
    Matrix x(g.numNodes(), 64);
    fillNormal(x, rng, 0.0f, 1.0f);
    SimOptions opt;
    opt.simulateCaches = false;
    MaxKResult mk = maxkCompress(x, k, opt);

    Matrix y, y_ref;
    spgemmForward(g, part, mk.cbsr, y, opt);
    test::spgemmOracle(g, mk.cbsr, y_ref);
    ASSERT_TRUE(matricesNear(y, y_ref, 1e-3f));

    Matrix dxl(g.numNodes(), 64);
    fillNormal(dxl, rng, 0.0f, 1.0f);
    CbsrMatrix dxs;
    dxs.adoptPattern(mk.cbsr);
    sspmmBackward(g, part, dxl, dxs, opt);
    Matrix dense_t;
    test::sspmmOracle(g, dxl, dense_t);
    ASSERT_TRUE(cbsrMatchesDenseGather(dxs, dense_t, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    KAndGraphSweep, SpgemmOracleSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 8u, 16u, 32u, 64u),
                       ::testing::Values(0, 1, 2)));

} // namespace
} // namespace maxk
