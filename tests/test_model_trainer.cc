/**
 * @file
 * Tests for GnnModel and Trainer: stacking rules, learning progress on
 * SBM tasks for every model x nonlinearity combination, determinism,
 * and the simulated epoch profiler (Amdahl structure, MaxK < baseline).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "graph/edge_groups.hh"
#include "graph/generators.hh"
#include "graph/registry.hh"
#include "nn/trainer.hh"

namespace maxk::nn
{
namespace
{

/** Small SBM task shared by the training tests. */
struct TinyTask
{
    TrainingTask task;
    TrainingData data;

    TinyTask()
    {
        task = *findTrainingTask("Flickr");
        task.accuracyNodes = 400;
        task.accuracyAvgDegree = 12.0;
        Rng rng(4242);
        data = materializeTrainingData(task, rng);
    }
};

ModelConfig
tinyModel(GnnKind kind, Nonlinearity nonlin, const TrainingTask &task,
          std::uint32_t k = 8)
{
    ModelConfig cfg;
    cfg.kind = kind;
    cfg.nonlin = nonlin;
    cfg.maxkK = k;
    cfg.numLayers = 2;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 32;
    cfg.outDim = task.numClasses;
    cfg.dropout = 0.1f;
    cfg.seed = 7;
    return cfg;
}

TEST(GnnModel, LayerDimsFollowStackingRule)
{
    ModelConfig cfg;
    cfg.numLayers = 3;
    cfg.inDim = 10;
    cfg.hiddenDim = 20;
    cfg.outDim = 5;
    GnnModel model(cfg);
    EXPECT_EQ(model.layerInDim(0), 10u);
    EXPECT_EQ(model.layerOutDim(0), 20u);
    EXPECT_EQ(model.layerInDim(1), 20u);
    EXPECT_EQ(model.layerOutDim(1), 20u);
    EXPECT_EQ(model.layerInDim(2), 20u);
    EXPECT_EQ(model.layerOutDim(2), 5u);
}

TEST(GnnModel, SingleLayerNetworkWorks)
{
    TinyTask t;
    ModelConfig cfg = tinyModel(GnnKind::Gcn, Nonlinearity::Relu, t.task);
    cfg.numLayers = 1;
    GnnModel model(cfg);
    t.data.graph.setAggregatorWeights(Aggregator::Gcn);
    const Matrix &logits =
        model.forward(t.data.graph, t.data.features, false);
    EXPECT_EQ(logits.rows(), t.data.graph.numNodes());
    EXPECT_EQ(logits.cols(), t.task.numClasses);
}

TEST(GnnModel, ParamCountMatchesArchitecture)
{
    TinyTask t;
    GnnModel sage(tinyModel(GnnKind::Sage, Nonlinearity::Relu, t.task));
    GnnModel gcn(tinyModel(GnnKind::Gcn, Nonlinearity::Relu, t.task));
    // SAGE: 2 layers x 2 linears x (W, b) = 8; GCN: 2 x 1 x 2 = 4.
    EXPECT_EQ(sage.params().size(), 8u);
    EXPECT_EQ(gcn.params().size(), 4u);
}

TEST(GnnModel, ForwardDeterministicInEvalMode)
{
    TinyTask t;
    GnnModel model(tinyModel(GnnKind::Gcn, Nonlinearity::MaxK, t.task));
    t.data.graph.setAggregatorWeights(Aggregator::Gcn);
    const Matrix a =
        model.forward(t.data.graph, t.data.features, false);
    const Matrix b =
        model.forward(t.data.graph, t.data.features, false);
    EXPECT_TRUE(a.equals(b));
}

class TrainingConvergence
    : public ::testing::TestWithParam<std::tuple<GnnKind, Nonlinearity>>
{
};

TEST_P(TrainingConvergence, BeatsChanceOnSbmTask)
{
    const auto [kind, nonlin] = GetParam();
    TinyTask t;
    GnnModel model(tinyModel(kind, nonlin, t.task));
    Trainer trainer(model, t.data, t.task);
    TrainConfig cfg;
    cfg.epochs = 60;
    cfg.lr = 0.01f;
    cfg.evalEvery = 10;
    const TrainResult r = trainer.run(cfg);

    // 7-class task: chance ~0.143. Expect strong learning.
    EXPECT_GT(r.finalTestMetric, 0.5)
        << gnnKindName(kind) << "/" << nonlinearityName(nonlin);
    // Loss must drop substantially.
    EXPECT_LT(r.trainLoss.back(), r.trainLoss.front() * 0.7);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TrainingConvergence,
    ::testing::Combine(::testing::Values(GnnKind::Sage, GnnKind::Gcn,
                                         GnnKind::Gin),
                       ::testing::Values(Nonlinearity::Relu,
                                         Nonlinearity::MaxK)));

TEST(Trainer, DeterministicGivenSeeds)
{
    TinyTask t1, t2;
    GnnModel m1(tinyModel(GnnKind::Gcn, Nonlinearity::MaxK, t1.task));
    GnnModel m2(tinyModel(GnnKind::Gcn, Nonlinearity::MaxK, t2.task));
    Trainer tr1(m1, t1.data, t1.task);
    Trainer tr2(m2, t2.data, t2.task);
    TrainConfig cfg;
    cfg.epochs = 10;
    const TrainResult r1 = tr1.run(cfg);
    const TrainResult r2 = tr2.run(cfg);
    ASSERT_EQ(r1.trainLoss.size(), r2.trainLoss.size());
    for (std::size_t i = 0; i < r1.trainLoss.size(); ++i)
        ASSERT_DOUBLE_EQ(r1.trainLoss[i], r2.trainLoss[i]);
    EXPECT_DOUBLE_EQ(r1.finalTestMetric, r2.finalTestMetric);
}

TEST(Trainer, RecordsConvergenceCurve)
{
    TinyTask t;
    GnnModel model(tinyModel(GnnKind::Gcn, Nonlinearity::Relu, t.task));
    Trainer trainer(model, t.data, t.task);
    TrainConfig cfg;
    cfg.epochs = 12;
    cfg.evalEvery = 4;
    const TrainResult r = trainer.run(cfg);
    EXPECT_EQ(r.trainLoss.size(), 12u);
    // Eval at epochs 0,4,8 and the final epoch 11.
    ASSERT_EQ(r.evalEpochs.size(), 4u);
    EXPECT_EQ(r.evalEpochs.back(), 11u);
    EXPECT_EQ(r.valMetric.size(), r.testMetric.size());
    EXPECT_GE(r.bestValMetric, r.valMetric.front());
}

TEST(Trainer, EvalEveryZeroClampedToEveryEpoch)
{
    // Regression: evalEvery == 0 used to hit `epoch % 0` and crash.
    TinyTask t;
    GnnModel model(tinyModel(GnnKind::Gcn, Nonlinearity::Relu, t.task));
    Trainer trainer(model, t.data, t.task);
    TrainConfig cfg;
    cfg.epochs = 5;
    cfg.evalEvery = 0;
    const TrainResult r = trainer.run(cfg);
    EXPECT_EQ(r.trainLoss.size(), 5u);
    // Clamped to 1: an eval point at every epoch.
    ASSERT_EQ(r.evalEpochs.size(), 5u);
    EXPECT_EQ(r.evalEpochs.back(), 4u);
}

TEST(Trainer, MultiLabelTaskTrainsWithBce)
{
    TrainingTask task = *findTrainingTask("Yelp");
    task.accuracyNodes = 300;
    task.accuracyAvgDegree = 10.0;
    Rng rng(5);
    TrainingData data = materializeTrainingData(task, rng);
    ModelConfig mc = tinyModel(GnnKind::Sage, Nonlinearity::MaxK, task);
    GnnModel model(mc);
    Trainer trainer(model, data, task);
    TrainConfig cfg;
    cfg.epochs = 40;
    const TrainResult r = trainer.run(cfg);
    // Micro-F1 above the all-positive baseline (2/18 active bits ~ 0.2).
    EXPECT_GT(r.finalTestMetric, 0.4);
}

TEST(ProfileEpoch, AggregationDominatesOnHighDegreeGraph)
{
    // Reddit-like: avg degree ~256 at dim 256 -> SpMM should dominate
    // the baseline epoch (Fig. 1: 83.6% on ogbn-proteins).
    Rng rng(6);
    CsrGraph g = rmat(11, 524288, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    const auto part = EdgeGroupPartition::build(g, 32);

    ModelConfig cfg;
    cfg.kind = GnnKind::Sage;
    cfg.nonlin = Nonlinearity::Relu;
    cfg.numLayers = 3;
    cfg.inDim = 128;
    cfg.hiddenDim = 256;
    cfg.outDim = 64;

    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);
    const EpochTiming t = profileEpoch(cfg, g, part, opt);
    EXPECT_GT(t.aggFraction(), 0.6);
    EXPECT_GT(t.total(), 0.0);
    EXPECT_GT(t.linear, 0.0);
    EXPECT_GT(t.nonlin, 0.0);
}

TEST(ProfileEpoch, MaxkEpochFasterThanBaselineOnHighDegreeGraph)
{
    Rng rng(7);
    CsrGraph g = rmat(11, 262144, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    const auto part = EdgeGroupPartition::build(g, 32);

    ModelConfig base;
    base.kind = GnnKind::Sage;
    base.nonlin = Nonlinearity::Relu;
    base.numLayers = 3;
    base.inDim = 128;
    base.hiddenDim = 256;
    base.outDim = 64;
    ModelConfig maxk = base;
    maxk.nonlin = Nonlinearity::MaxK;
    maxk.maxkK = 16;

    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);
    const double t_base = profileEpoch(base, g, part, opt).total();
    const double t_maxk = profileEpoch(maxk, g, part, opt).total();
    EXPECT_GT(t_base / t_maxk, 1.5);

    // And the speedup must respect the Amdahl bound computed from the
    // baseline profile.
    const EpochTiming bt = profileEpoch(base, g, part, opt);
    const double amdahl = 1.0 / (1.0 - bt.aggFraction());
    EXPECT_LT(t_base / t_maxk, amdahl * 1.05);
}

TEST(ProfileEpoch, OptimizerSweepCountsTrueLayerShapes)
{
    // Regression: param_elems modelled the last layer as
    // hiddenDim x hiddenDim and ignored SAGE's second linear, so the
    // optimizer-sweep term was identical for SAGE and GCN. With the
    // true shapes, SAGE (two linears per layer) must charge a strictly
    // larger `other` term than GCN at identical dimensions.
    Rng rng(9);
    CsrGraph g = rmat(9, 40000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    const auto part = EdgeGroupPartition::build(g, 32);

    ModelConfig sage;
    sage.kind = GnnKind::Sage;
    sage.nonlin = Nonlinearity::Relu;
    sage.numLayers = 3;
    sage.inDim = 128;
    sage.hiddenDim = 4096; // params dwarf the n*outDim logits term
    sage.outDim = 16;
    ModelConfig gcn = sage;
    gcn.kind = GnnKind::Gcn;

    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);
    // The old model charged them identically; the flat per-layer
    // dispatch-overhead term keeps the ratio below a full 2x.
    const EpochTiming ts = profileEpoch(sage, g, part, opt);
    const EpochTiming tg = profileEpoch(gcn, g, part, opt);
    EXPECT_GT(ts.other, tg.other * 1.25);

    // And the sweep must scale with the output width of the last layer
    // (the hiddenDim x outDim term the old model dropped).
    ModelConfig wide = gcn;
    wide.outDim = 2048;
    const EpochTiming tw = profileEpoch(wide, g, part, opt);
    EXPECT_GT(tw.other, tg.other);
}

TEST(ProfileEpoch, GnnaBaselineSlowerThanCuSparse)
{
    Rng rng(8);
    CsrGraph g = rmat(10, 100000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    const auto part = EdgeGroupPartition::build(g, 32);

    ModelConfig cfg;
    cfg.kind = GnnKind::Gcn;
    cfg.nonlin = Nonlinearity::Relu;
    cfg.numLayers = 2;
    cfg.inDim = 64;
    cfg.hiddenDim = 256;
    cfg.outDim = 32;

    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);
    const double t_cusp =
        profileEpoch(cfg, g, part, opt, BaselineKernel::CuSparse).total();
    const double t_gnna =
        profileEpoch(cfg, g, part, opt, BaselineKernel::Gnna).total();
    EXPECT_GT(t_gnna, t_cusp);
}

} // namespace
} // namespace maxk::nn
