/**
 * @file
 * Unit tests for src/graph: CSR construction invariants, aggregator
 * weighting, transposition, generators' structural properties, stats,
 * and text I/O round-tripping.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.hh"
#include "core/transpose_gather.hh"
#include "graph/csr.hh"
#include "graph/generators.hh"
#include "graph/io.hh"
#include "graph/stats.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

CsrGraph
triangleGraph()
{
    // 0-1, 1-2, 2-0 symmetric, plus self loops.
    return CsrGraph::fromEdges(3, {{0, 1}, {1, 2}, {2, 0}}, true, true);
}

TEST(Csr, FromEdgesBuildsValidCsr)
{
    const CsrGraph g = triangleGraph();
    EXPECT_TRUE(g.validate());
    EXPECT_EQ(g.numNodes(), 3u);
    EXPECT_EQ(g.numEdges(), 9u); // 6 directed + 3 self loops
}

TEST(Csr, DuplicateEdgesCollapsed)
{
    const CsrGraph g = CsrGraph::fromEdges(
        2, {{0, 1}, {0, 1}, {0, 1}}, false, false);
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(Csr, SymmetrizeInsertsReverseEdges)
{
    const CsrGraph g =
        CsrGraph::fromEdges(3, {{0, 1}}, true, false);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_TRUE(g.structureSymmetric());
}

TEST(Csr, SelfLoopsAdded)
{
    const CsrGraph g = CsrGraph::fromEdges(4, {}, false, true);
    EXPECT_EQ(g.numEdges(), 4u);
    for (NodeId v = 0; v < 4; ++v) {
        EXPECT_EQ(g.degree(v), 1u);
        EXPECT_EQ(g.colIdx()[g.rowPtr()[v]], v);
    }
}

TEST(Csr, ColumnsSortedWithinRows)
{
    Rng rng(3);
    const CsrGraph g = erdosRenyi(100, 500, rng);
    EXPECT_TRUE(g.validate());
}

TEST(Csr, DegreesConsistent)
{
    const CsrGraph g = triangleGraph();
    EdgeId sum = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        sum += g.degree(v);
    EXPECT_EQ(sum, g.numEdges());
    EXPECT_DOUBLE_EQ(g.avgDegree(), 3.0);
    EXPECT_EQ(g.maxDegree(), 3u);
}

TEST(Csr, FromCsrRejectsBadRowPtr)
{
    EXPECT_DEATH(CsrGraph::fromCsr(2, {0, 2, 1}, {0, 1}), "invalid CSR");
}

TEST(Csr, FromCsrDefaultsValuesToOne)
{
    const CsrGraph g = CsrGraph::fromCsr(2, {0, 1, 2}, {1, 0});
    EXPECT_EQ(g.values()[0], 1.0f);
    EXPECT_EQ(g.values()[1], 1.0f);
}

TEST(Csr, SageWeightsAreInverseDegree)
{
    CsrGraph g = triangleGraph();
    g.setAggregatorWeights(Aggregator::SageMean);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        double row_sum = 0.0;
        for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e)
            row_sum += g.values()[e];
        EXPECT_NEAR(row_sum, 1.0, 1e-6); // mean aggregator rows sum to 1
    }
}

TEST(Csr, GcnWeightsSymmetricNormalised)
{
    CsrGraph g = triangleGraph();
    g.setAggregatorWeights(Aggregator::Gcn);
    // Every node has degree 3, so every weight is 1/3.
    for (Float v : g.values())
        EXPECT_NEAR(v, 1.0f / 3.0f, 1e-6f);
}

TEST(Csr, GinWeightsAllOnes)
{
    CsrGraph g = triangleGraph();
    g.setAggregatorWeights(Aggregator::Gin);
    for (Float v : g.values())
        EXPECT_EQ(v, 1.0f);
}

TEST(Csr, TransposeRoundTrip)
{
    Rng rng(5);
    const CsrGraph g = erdosRenyi(64, 300, rng, false);
    const CsrGraph tt = g.transposed().transposed();
    EXPECT_EQ(tt.rowPtr(), g.rowPtr());
    EXPECT_EQ(tt.colIdx(), g.colIdx());
    EXPECT_EQ(tt.values(), g.values());
}

TEST(Csr, TransposeMovesValues)
{
    CsrGraph g = CsrGraph::fromEdges(3, {{0, 1}, {0, 2}}, false, false);
    g.mutableValues()[0] = 5.0f; // edge 0->1
    g.mutableValues()[1] = 7.0f; // edge 0->2
    const CsrGraph t = g.transposed();
    // t has edges 1->0 (5.0) and 2->0 (7.0).
    EXPECT_EQ(t.degree(1), 1u);
    EXPECT_EQ(t.values()[t.rowPtr()[1]], 5.0f);
    EXPECT_EQ(t.values()[t.rowPtr()[2]], 7.0f);
}

TEST(Csr, DirectedGraphNotSymmetric)
{
    const CsrGraph g =
        CsrGraph::fromEdges(3, {{0, 1}, {1, 2}}, false, false);
    EXPECT_FALSE(g.structureSymmetric());
}

TEST(Csr, StorageBytesAccountsAllArrays)
{
    const CsrGraph g = triangleGraph();
    const Bytes expect = (3 + 1) * sizeof(EdgeId) +
                         9 * sizeof(NodeId) + 9 * sizeof(Float);
    EXPECT_EQ(g.storageBytes(), expect);
}

TEST(Generators, ErdosRenyiApproximatesTarget)
{
    Rng rng(7);
    const CsrGraph g = erdosRenyi(1000, 5000, rng);
    EXPECT_TRUE(g.validate());
    EXPECT_TRUE(g.structureSymmetric());
    // Symmetrised; some collisions removed. Self loops add 1000.
    EXPECT_GT(g.numEdges(), 8000u);
    EXPECT_LT(g.numEdges(), 12000u);
}

TEST(Generators, RmatIsHeavyTailed)
{
    Rng rng(11);
    const CsrGraph g = rmat(12, 120000, rng);
    EXPECT_TRUE(g.validate());
    const DegreeStats s = computeDegreeStats(g);
    // Power-law: max degree far above average, strong Gini skew.
    EXPECT_GT(s.skewRatio, 8.0);
    EXPECT_GT(s.gini, 0.35);
}

TEST(Generators, RmatEdgeCountNearTarget)
{
    Rng rng(13);
    const EdgeId target = 200000;
    const CsrGraph g = rmat(13, target, rng);
    EXPECT_GT(g.numEdges(), target / 2);
    EXPECT_LT(g.numEdges(), target * 2);
}

TEST(Generators, RmatSymmetric)
{
    Rng rng(17);
    const CsrGraph g = rmat(10, 20000, rng);
    EXPECT_TRUE(g.structureSymmetric());
}

TEST(Generators, SbmLabelsCoverAllBlocks)
{
    Rng rng(19);
    const auto sbm = stochasticBlockModel(600, 6, 12.0, 0.8, rng);
    EXPECT_EQ(sbm.labels.size(), 600u);
    std::vector<int> counts(6, 0);
    for (auto l : sbm.labels) {
        ASSERT_LT(l, 6u);
        ++counts[l];
    }
    for (int c : counts)
        EXPECT_EQ(c, 100);
}

TEST(Generators, SbmIsHomophilous)
{
    Rng rng(23);
    const auto sbm = stochasticBlockModel(2000, 4, 16.0, 0.8, rng);
    const CsrGraph &g = sbm.graph;
    EdgeId intra = 0, total = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e) {
            const NodeId u = g.colIdx()[e];
            if (u == v)
                continue; // self loops trivially intra
            ++total;
            intra += sbm.labels[u] == sbm.labels[v] ? 1 : 0;
        }
    }
    // Homophily well above the 1/4 chance level.
    EXPECT_GT(static_cast<double>(intra) / total, 0.6);
}

TEST(Generators, SbmAverageDegreeNearRequest)
{
    Rng rng(29);
    const auto sbm = stochasticBlockModel(3000, 5, 20.0, 0.7, rng);
    // Self loops add 1; collisions remove a few.
    EXPECT_NEAR(sbm.graph.avgDegree(), 21.0, 3.0);
}

TEST(Generators, RingLatticeIsRegular)
{
    const CsrGraph g = ringLattice(50, 6, false);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(g.degree(v), 6u);
    EXPECT_TRUE(g.structureSymmetric());
}

TEST(Generators, StarHasOneHub)
{
    const CsrGraph g = star(100, false);
    EXPECT_EQ(g.degree(0), 99u);
    for (NodeId v = 1; v < 100; ++v)
        EXPECT_EQ(g.degree(v), 1u);
    const DegreeStats s = computeDegreeStats(g);
    EXPECT_GT(s.skewRatio, 40.0);
}

TEST(Stats, UniformGraphHasZeroGini)
{
    const CsrGraph g = ringLattice(64, 4, false);
    const DegreeStats s = computeDegreeStats(g);
    EXPECT_NEAR(s.gini, 0.0, 1e-9);
    EXPECT_EQ(s.medianDegree, 4u);
    EXPECT_EQ(s.p99Degree, 4u);
}

TEST(Stats, DescribeMentionsKeyNumbers)
{
    const CsrGraph g = ringLattice(10, 2, false);
    const std::string d = describe(computeDegreeStats(g));
    EXPECT_NE(d.find("|V|=10"), std::string::npos);
    EXPECT_NE(d.find("|E|=20"), std::string::npos);
    EXPECT_NE(d.find("std="), std::string::npos);
    EXPECT_NE(d.find("dens="), std::string::npos);
    EXPECT_NE(d.find("empty="), std::string::npos);
}

TEST(Stats, ExtendedFieldsOnRegularGraph)
{
    const CsrGraph g = ringLattice(64, 4, false);
    const DegreeStats s = computeDegreeStats(g);
    EXPECT_NEAR(s.stdDegree, 0.0, 1e-12);
    EXPECT_NEAR(s.emptyRowFraction, 0.0, 1e-12);
    EXPECT_NEAR(s.density, 256.0 / (64.0 * 64.0), 1e-12);
}

TEST(Stats, ExtendedFieldsOnStar)
{
    const CsrGraph g = star(100, false);
    const DegreeStats s = computeDegreeStats(g);
    // Hub degree 99 against 99 leaves of degree 1: huge spread.
    EXPECT_GT(s.stdDegree, 5.0);
    EXPECT_NEAR(s.emptyRowFraction, 0.0, 1e-12);
    EXPECT_NEAR(s.density, 198.0 / (100.0 * 100.0), 1e-12);
}

TEST(Stats, EmptyRowFractionCountsIsolatedNodes)
{
    // Nodes 2 and 3 have no edges at all.
    const CsrGraph g =
        CsrGraph::fromEdges(4, {{0, 1}}, true, false);
    const DegreeStats s = computeDegreeStats(g);
    EXPECT_NEAR(s.emptyRowFraction, 0.5, 1e-12);
    EXPECT_NEAR(s.density, 2.0 / 16.0, 1e-12);
}

TEST(Generators, ZipfIsHubHeavy)
{
    Rng rng(37);
    const CsrGraph g = zipf(2000, 20000, 1.1, rng);
    EXPECT_TRUE(g.validate());
    EXPECT_TRUE(g.structureSymmetric());
    EXPECT_GT(g.numEdges(), 20000u / 2);
    EXPECT_LT(g.numEdges(), 20000u * 3);
    const DegreeStats s = computeDegreeStats(g);
    EXPECT_GT(s.skewRatio, 5.0);
    EXPECT_GT(s.gini, 0.25);
}

TEST(Generators, ZipfExponentControlsSkew)
{
    Rng rng_a(41), rng_b(41);
    const DegreeStats mild =
        computeDegreeStats(zipf(1500, 12000, 0.6, rng_a));
    const DegreeStats steep =
        computeDegreeStats(zipf(1500, 12000, 1.4, rng_b));
    EXPECT_GT(steep.gini, mild.gini);
    EXPECT_GT(steep.maxDegree, mild.maxDegree);
}

TEST(StatsCache, DegreeStatsBuildOnceAndMatchFresh)
{
    Rng rng(43);
    const CsrGraph g = erdosRenyi(80, 400, rng);
    EXPECT_EQ(g.degreeStatsBuildCount(), 0u);
    const DegreeStats &s1 = g.degreeStatsCached();
    EXPECT_EQ(g.degreeStatsBuildCount(), 1u);
    const DegreeStats &s2 = g.degreeStatsCached();
    EXPECT_EQ(&s1, &s2); // same object, not an equal rebuild
    EXPECT_EQ(g.degreeStatsBuildCount(), 1u);

    const DegreeStats fresh = computeDegreeStats(g);
    EXPECT_EQ(s1.avgDegree, fresh.avgDegree);
    EXPECT_EQ(s1.gini, fresh.gini);
    EXPECT_EQ(s1.stdDegree, fresh.stdDegree);
    EXPECT_EQ(s1.density, fresh.density);
    EXPECT_EQ(s1.emptyRowFraction, fresh.emptyRowFraction);
}

TEST(GraphIo, SaveLoadRoundTrip)
{
    Rng rng(31);
    CsrGraph g = erdosRenyi(40, 120, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    const std::string path = "/tmp/maxk_test_graph.csr";
    ASSERT_TRUE(saveGraph(g, path));
    const CsrGraph loaded = loadGraph(path);
    EXPECT_EQ(loaded.numNodes(), g.numNodes());
    EXPECT_EQ(loaded.rowPtr(), g.rowPtr());
    EXPECT_EQ(loaded.colIdx(), g.colIdx());
    ASSERT_EQ(loaded.values().size(), g.values().size());
    for (std::size_t i = 0; i < g.values().size(); ++i)
        EXPECT_NEAR(loaded.values()[i], g.values()[i], 1e-5f);
    std::remove(path.c_str());
}

TEST(GraphIo, SaveWithoutValuesLoadsOnes)
{
    const CsrGraph g = ringLattice(8, 2, false);
    const std::string path = "/tmp/maxk_test_graph_nv.csr";
    ASSERT_TRUE(saveGraph(g, path, false));
    const CsrGraph loaded = loadGraph(path);
    for (Float v : loaded.values())
        EXPECT_EQ(v, 1.0f);
    std::remove(path.c_str());
}

TEST(GraphIoDeathTest, LoadMissingFileIsFatal)
{
    EXPECT_EXIT(loadGraph("/tmp/definitely_missing_maxk.csr"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TransposeCache, SingleBuildIsReused)
{
    Rng rng(5);
    CsrGraph g = erdosRenyi(60, 240, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    EXPECT_EQ(g.transposeBuildCount(), 0u);

    const CsrGraph &t1 = g.transposeCached();
    EXPECT_EQ(g.transposeBuildCount(), 1u);
    const CsrGraph &t2 = g.transposeCached();
    EXPECT_EQ(&t1, &t2); // same object, not an equal rebuild
    EXPECT_EQ(g.transposeBuildCount(), 1u);

    const CsrGraph fresh = g.transposed();
    EXPECT_EQ(t1.rowPtr(), fresh.rowPtr());
    EXPECT_EQ(t1.colIdx(), fresh.colIdx());
    EXPECT_EQ(t1.values(), fresh.values());
}

TEST(TransposeCache, InvalidatedByValueMutation)
{
    Rng rng(6);
    CsrGraph g = erdosRenyi(40, 160, rng);
    g.transposeCached();
    EXPECT_EQ(g.transposeBuildCount(), 1u);

    g.setAggregatorWeights(Aggregator::Gcn);
    const CsrGraph &t = g.transposeCached();
    EXPECT_EQ(g.transposeBuildCount(), 2u);
    EXPECT_EQ(t.values(), g.transposed().values());

    g.mutableValues()[0] = 42.0f;
    EXPECT_EQ(g.transposeCached().values(), g.transposed().values());
    EXPECT_EQ(g.transposeBuildCount(), 3u);
}

TEST(TransposeCache, ScatterShapedGatherPathsBuildOnce)
{
    // The ROADMAP PR 2 follow-up: repeated backward-shaped launches
    // must not rebuild A^T per call.
    Rng rng(7);
    CsrGraph g = erdosRenyi(48, 200, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    Matrix x(g.numNodes(), 8);
    fillNormal(x, rng, 0.0f, 1.0f);

    Matrix out1(g.numNodes(), 8, 0.0f), out2(g.numNodes(), 8, 0.0f);
    gatherTransposedDense(g, x, out1);
    gatherTransposedDense(g, x, out2);
    EXPECT_EQ(g.transposeBuildCount(), 1u);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        for (std::size_t d = 0; d < 8; ++d)
            EXPECT_EQ(out1.at(v, d), out2.at(v, d));
}

} // namespace
} // namespace maxk
