/**
 * @file
 * Acceptance suite for the fault-injection half of ISSUE 9:
 *
 *  - FaultInjector: fires on the exact (site, rank) visit, counts
 *    visits deterministically, honours rank filters and the transient
 *    consume-once contract; named plans are pure functions of
 *    (name, seed);
 *  - Communicator hooks: transient CommTimeout faults are absorbed by
 *    a bounded retry without corrupting the collective's result, the
 *    retry budget is enforced, and a fatal fault at ANY hook site —
 *    including the mid-collective ones — wakes every peer with
 *    CommAborted instead of deadlocking (swept across sites,
 *    occurrences, and ranks; the TSan CI job runs this suite);
 *  - ServeSession overload policy: injected bursts are deterministic
 *    and metered, shedding is typed (all-shed => ServeError::Shedded),
 *    served responses stay bitwise-correct under shedding with the
 *    served tail bounded by the budget, and stale degraded answers are
 *    explicitly marked kOutcomeStale, never passed off as fresh.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "common/rng.hh"
#include "dist/comm.hh"
#include "graph/registry.hh"
#include "nn/model.hh"
#include "serve/session.hh"

namespace maxk
{
namespace
{

/* ------------------------------------------------------ the injector */

FaultSpec
spec(FaultKind kind, const char *site, std::uint64_t occurrence,
     std::uint32_t rank = kAnyRank, bool transient = false)
{
    FaultSpec s;
    s.kind = kind;
    s.site = site;
    s.occurrence = occurrence;
    s.rank = rank;
    s.transient = transient;
    return s;
}

TEST(FaultInjector, FiresOnTheExactVisitOfTheExactRank)
{
    FaultInjector inj(FaultPlan().add(
        spec(FaultKind::RankThrow, "s", 2, 1)));
    // Rank 0 never matches the rank-1 filter.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(inj.fire("s", 0), nullptr);
    // Rank 1 fires on its visit 2 exactly, before and after are clean.
    EXPECT_EQ(inj.fire("s", 1), nullptr);
    EXPECT_EQ(inj.fire("s", 1), nullptr);
    const FaultSpec *hit = inj.fire("s", 1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->occurrence, 2u);
    EXPECT_EQ(inj.fire("s", 1), nullptr);
    EXPECT_EQ(inj.visits("s", 0), 5u);
    EXPECT_EQ(inj.visits("s", 1), 4u);
    EXPECT_EQ(inj.visits("other", 0), 0u);
}

TEST(FaultInjector, AnyRankMatchesEachRanksOwnCounter)
{
    FaultInjector inj(FaultPlan().add(
        spec(FaultKind::RankThrow, "s", 1)));
    EXPECT_EQ(inj.fire("s", 0), nullptr); // rank 0 visit 0
    EXPECT_EQ(inj.fire("s", 1), nullptr); // rank 1 visit 0
    EXPECT_NE(inj.fire("s", 0), nullptr); // rank 0 visit 1: fires
    // Non-transient: rank 1's own visit 1 fires too.
    EXPECT_NE(inj.fire("s", 1), nullptr);
}

TEST(FaultInjector, TransientIsConsumedByItsFirstFiring)
{
    FaultInjector inj(FaultPlan().add(
        spec(FaultKind::CommTimeout, "s", 1, kAnyRank, true)));
    EXPECT_EQ(inj.fire("s", 0), nullptr);
    EXPECT_NE(inj.fire("s", 0), nullptr); // consumed here
    EXPECT_EQ(inj.fire("s", 1), nullptr);
    EXPECT_EQ(inj.fire("s", 1), nullptr); // rank 1 visit 1: already gone
    EXPECT_EQ(inj.fire("s", 0), nullptr); // later visits: gone
}

TEST(FaultInjector, MaybeThrowThrowsTypedInjectedFault)
{
    FaultInjector inj(FaultPlan().add(
        spec(FaultKind::RankThrow, "s", 0)));
    try {
        inj.maybeThrow("s");
        FAIL() << "expected InjectedFault";
    } catch (const InjectedFault &f) {
        EXPECT_EQ(f.spec.site, "s");
        EXPECT_NE(std::string(f.what()).find("rank-throw"),
                  std::string::npos);
    }
    inj.maybeThrow("s"); // visit 1: no fault
}

TEST(FaultPlan, NamedScenariosArePureFunctionsOfNameAndSeed)
{
    for (const char *name :
         {"rank-throw", "comm-timeout", "ckpt-corrupt", "serve-burst"}) {
        const FaultPlan a = FaultPlan::named(name, 42);
        const FaultPlan b = FaultPlan::named(name, 42);
        ASSERT_FALSE(a.empty());
        ASSERT_EQ(a.specs().size(), b.specs().size());
        for (std::size_t i = 0; i < a.specs().size(); ++i) {
            EXPECT_EQ(a.specs()[i].kind, b.specs()[i].kind);
            EXPECT_EQ(a.specs()[i].site, b.specs()[i].site);
            EXPECT_EQ(a.specs()[i].occurrence, b.specs()[i].occurrence);
            EXPECT_EQ(a.specs()[i].rank, b.specs()[i].rank);
            EXPECT_EQ(a.specs()[i].payload, b.specs()[i].payload);
            EXPECT_EQ(a.specs()[i].transient, b.specs()[i].transient);
        }
    }
}

TEST(FaultPlanDeathTest, UnknownScenarioNameIsFatal)
{
    EXPECT_DEATH(FaultPlan::named("no-such-scenario", 1),
                 "unknown scenario");
}

/* ------------------------------------------------------- comm hooks */

TEST(CommFault, TransientTimeoutIsRetriedWithoutCorruptingTheSum)
{
    FaultInjector inj(FaultPlan().add(
        spec(FaultKind::CommTimeout, "comm.allReduceSum", 2, kAnyRank,
             true)));
    dist::CommWorld world(2);
    world.setFaultInjector(&inj);
    std::vector<std::vector<Float>> out(2);
    world.run([&](dist::Communicator &comm) {
        for (int iter = 0; iter < 4; ++iter) {
            std::vector<Float> data(33,
                                    static_cast<Float>(comm.rank() + 1));
            comm.allReduceSum(data.data(), data.size());
            for (Float v : data)
                ASSERT_EQ(v, 3.0f); // 1 + 2, every iteration
        }
        out[comm.rank()].assign(1, 1.0f);
    });
    EXPECT_EQ(world.totalTransientRetries(), 1u);
}

TEST(CommFault, RetryBudgetExhaustionEscalatesToFatalTimeout)
{
    // Five back-to-back transient faults on one hook: the bounded
    // retry (limit 4) must give up and surface the typed CommTimeout.
    FaultPlan plan;
    for (std::uint64_t occ = 0; occ < 5; ++occ)
        plan.add(spec(FaultKind::CommTimeout, "comm.allReduceSum", occ,
                      0, true));
    FaultInjector inj(plan);
    dist::CommWorld world(2);
    world.setFaultInjector(&inj);
    EXPECT_THROW(world.run([](dist::Communicator &comm) {
        std::vector<Float> data(8, 1.0f);
        comm.allReduceSum(data.data(), data.size());
    }),
                 dist::CommTimeout);
    EXPECT_EQ(world.totalTransientRetries(), 4u);
}

TEST(CommFault, RankThrowAtAHookPropagatesInjectedFault)
{
    FaultInjector inj(FaultPlan().add(
        spec(FaultKind::RankThrow, "comm.barrier", 1, 2)));
    dist::CommWorld world(3);
    world.setFaultInjector(&inj);
    EXPECT_THROW(world.run([](dist::Communicator &comm) {
        for (int i = 0; i < 4; ++i)
            comm.barrier();
    }),
                 InjectedFault);
}

TEST(CommFault, AbortPropagationStressAllPeersWakeAtEverySite)
{
    // Sweep a fatal timeout over every hook site (including the
    // mid-collective ones), several occurrences, and two ranks of a
    // 4-rank world running concurrent mixed collectives. The contract:
    // the injected rank throws CommTimeout, every OTHER rank wakes
    // with CommAborted (counted below), and the world never deadlocks
    // (the test finishing is the assertion).
    constexpr std::uint32_t kRanks = 4;
    const char *sites[] = {"comm.allReduceSum", "comm.allReduceSum.mid",
                           "comm.allToAllv", "comm.allToAllv.mid",
                           "comm.barrier"};
    for (const char *site : sites) {
        for (const std::uint64_t occurrence : {0u, 2u, 5u}) {
            for (const std::uint32_t rank : {0u, 3u}) {
                FaultInjector inj(FaultPlan().add(spec(
                    FaultKind::CommTimeout, site, occurrence, rank)));
                dist::CommWorld world(kRanks);
                world.setFaultInjector(&inj);

                // Collective buffers are owned by the TEST, not the
                // rank functions: a mid-collective unwind must not
                // free memory a peer is still copying from.
                std::vector<std::vector<Float>> red(
                    kRanks, std::vector<Float>(17, 1.0f));
                std::vector<std::vector<std::vector<std::uint8_t>>>
                    send(kRanks), recv(kRanks);
                for (std::uint32_t r = 0; r < kRanks; ++r) {
                    send[r].resize(kRanks);
                    for (std::uint32_t d = 0; d < kRanks; ++d)
                        send[r][d].assign(
                            8, static_cast<std::uint8_t>(r * 16 + d));
                }

                std::atomic<std::uint32_t> aborted{0};
                bool timed_out = false;
                try {
                    world.run([&](dist::Communicator &comm) {
                        const std::uint32_t r = comm.rank();
                        try {
                            for (int iter = 0; iter < 8; ++iter) {
                                comm.allReduceSum(red[r].data(),
                                                  red[r].size());
                                comm.allToAllv(send[r], recv[r],
                                               dist::CommChannel::Halo);
                                comm.barrier();
                            }
                        } catch (const dist::CommAborted &) {
                            ++aborted;
                            throw;
                        }
                    });
                } catch (const dist::CommTimeout &) {
                    timed_out = true;
                }
                EXPECT_TRUE(timed_out)
                    << site << " occ " << occurrence << " rank " << rank;
                EXPECT_EQ(aborted.load(), kRanks - 1)
                    << site << " occ " << occurrence << " rank " << rank;
            }
        }
    }
}

/* --------------------------------------------------- serving policy */

struct ServeFixture
{
    TrainingTask task;
    TrainingData data;
    nn::GnnModel model;

    static nn::ModelConfig modelConfig(const TrainingTask &task)
    {
        nn::ModelConfig cfg;
        cfg.kind = nn::GnnKind::Sage;
        cfg.nonlin = nn::Nonlinearity::MaxK;
        cfg.maxkK = 8;
        cfg.numLayers = 2;
        cfg.inDim = task.featureDim;
        cfg.hiddenDim = 32;
        cfg.outDim = task.numClasses;
        cfg.dropout = 0.0f;
        return cfg;
    }

    static TrainingTask makeTask()
    {
        TrainingTask task = *findTrainingTask("Flickr");
        task.accuracyNodes = 300;
        task.accuracyAvgDegree = 8.0;
        return task;
    }

    static TrainingData makeData(const TrainingTask &task)
    {
        Rng rng(71);
        return materializeTrainingData(task, rng);
    }

    ServeFixture()
        : task(makeTask()), data(makeData(task)),
          model(modelConfig(task))
    {
    }

    serve::ServeConfig baseConfig() const
    {
        serve::ServeConfig cfg;
        cfg.fanout = 6;
        cfg.cacheFraction = 0.25;
        cfg.lruSlots = 32;
        cfg.seed = 2029;
        return cfg;
    }

    /** Trickle head + simultaneous flood tail: overloads the queue. */
    std::vector<serve::ServeRequest> overloadTrace() const
    {
        std::vector<serve::ServeRequest> trace;
        Rng rng(72);
        double t = 0.0;
        for (int i = 0; i < 16; ++i) {
            t += 2e-4;
            trace.push_back({t, static_cast<NodeId>(rng.nextBounded(
                                    data.graph.numNodes()))});
        }
        for (int i = 0; i < 128; ++i)
            trace.push_back({t + 1e-3,
                             static_cast<NodeId>(rng.nextBounded(
                                 data.graph.numNodes()))});
        return trace;
    }
};

TEST(ServeFault, InjectedBurstIsDeterministicAndMetered)
{
    ServeFixture fx;
    std::vector<serve::ServeRequest> trace;
    Rng rng(73);
    for (int i = 0; i < 40; ++i)
        trace.push_back({i * 3e-4,
                         static_cast<NodeId>(rng.nextBounded(
                             fx.data.graph.numNodes()))});

    const FaultPlan plan = FaultPlan::named("serve-burst", 42);
    std::uint64_t planned = 0;
    for (const FaultSpec &s : plan.specs())
        planned = s.payload;

    serve::ServeReport reports[2];
    for (int pass = 0; pass < 2; ++pass) {
        FaultInjector inj(plan);
        serve::ServeConfig cfg = fx.baseConfig();
        cfg.faults = &inj;
        serve::ServeSession session(fx.model, fx.data.graph,
                                    fx.data.features, cfg);
        auto rep = session.replay(trace);
        ASSERT_TRUE(rep.hasValue());
        reports[pass] = std::move(rep.value());
    }
    EXPECT_EQ(reports[0].burstRequests, planned);
    EXPECT_EQ(reports[0].requests, trace.size() + planned);
    EXPECT_EQ(reports[0].requestOutcome.size(),
              trace.size() + planned);
    // Bitwise-replayable: the injected burst is part of the
    // deterministic contract, not noise.
    EXPECT_TRUE(reports[0].logits.equals(reports[1].logits));
    EXPECT_EQ(reports[0].latencySimSeconds,
              reports[1].latencySimSeconds);
    EXPECT_EQ(reports[0].requestOutcome, reports[1].requestOutcome);
}

TEST(ServeFault, SheddingEverythingIsATypedError)
{
    ServeFixture fx;
    serve::ServeConfig cfg = fx.baseConfig();
    cfg.latencyBudgetSimSeconds = 1e-15; // unmeetable
    cfg.shedOnOverload = true;
    serve::ServeSession session(fx.model, fx.data.graph,
                                fx.data.features, cfg);
    auto rep = session.replay(fx.overloadTrace());
    ASSERT_FALSE(rep.hasValue());
    EXPECT_EQ(rep.error().kind, serve::ServeError::Kind::Shedded);
}

TEST(ServeFault, SheddingBoundsTheServedTailAndKeepsLogitsBitwise)
{
    ServeFixture fx;
    const std::vector<serve::ServeRequest> trace = fx.overloadTrace();

    // Pass 1: queue model armed, nothing shed — measure the overload.
    serve::ServeConfig mcfg = fx.baseConfig();
    mcfg.latencyBudgetSimSeconds = 1e9;
    serve::ServeSession measure(fx.model, fx.data.graph,
                                fx.data.features, mcfg);
    auto unshed = measure.replay(trace);
    ASSERT_TRUE(unshed.hasValue());
    const serve::ServeReport &u = unshed.value();

    // Budget strictly between the tamest and the worst batch.
    std::vector<double> batch_worst(u.batchStats.size(), 0.0);
    for (std::size_t i = 0; i < u.latencySimSeconds.size(); ++i)
        batch_worst[u.requestBatch[i]] = std::max(
            batch_worst[u.requestBatch[i]], u.latencySimSeconds[i]);
    double bmin = batch_worst[0], bmax = batch_worst[0];
    for (double w : batch_worst) {
        bmin = std::min(bmin, w);
        bmax = std::max(bmax, w);
    }
    ASSERT_GT(bmax, bmin);
    const double budget = 0.5 * (bmin + bmax);

    serve::ServeConfig cfg = fx.baseConfig();
    cfg.latencyBudgetSimSeconds = budget;
    cfg.shedOnOverload = true;
    serve::ServeSession session(fx.model, fx.data.graph,
                                fx.data.features, cfg);
    auto rep = session.replay(trace);
    ASSERT_TRUE(rep.hasValue());
    const serve::ServeReport &r = rep.value();

    EXPECT_GT(r.sheddedRequests, 0u);
    EXPECT_LT(r.sheddedRequests, r.requests);
    // The shed policy bounds the SERVED tail by the budget.
    EXPECT_LE(r.p99LatencySimSeconds, budget * (1.0 + 1e-12));
    EXPECT_LE(r.maxLatencySimSeconds, budget * (1.0 + 1e-12));

    // Served rows are bitwise what the unshed replay produced; shed
    // rows are explicitly zeroed and marked.
    const std::size_t cols = r.logits.cols();
    std::uint64_t shed_seen = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Float *row = r.logits.data() + i * cols;
        if (r.requestOutcome[i] == serve::ServeReport::kOutcomeShed) {
            ++shed_seen;
            for (std::size_t c = 0; c < cols; ++c)
                ASSERT_EQ(row[c], 0.0f) << "shed row " << i;
            ASSERT_EQ(r.latencySimSeconds[i], 0.0);
        } else {
            ASSERT_EQ(std::memcmp(row, u.logits.data() + i * cols,
                                  cols * sizeof(Float)),
                      0)
                << "served row " << i;
        }
    }
    EXPECT_EQ(shed_seen, r.sheddedRequests);
}

TEST(ServeFault, StaleDegradedModeMarksEveryDegradedAnswer)
{
    ServeFixture fx;
    const std::vector<serve::ServeRequest> trace = fx.overloadTrace();

    serve::ServeConfig cfg = fx.baseConfig();
    cfg.latencyBudgetSimSeconds = 1e-15; // every batch over budget
    cfg.staleServeEnabled = true;        // degrade, never shed
    serve::ServeSession session(fx.model, fx.data.graph,
                                fx.data.features, cfg);

    // Replay 1 warms the cache with FRESH entries: a stale replan finds
    // nothing stale, so every answer stays kOutcomeFresh.
    auto first = session.replay(trace);
    ASSERT_TRUE(first.hasValue());
    EXPECT_EQ(first.value().staleServedRequests, 0u);
    EXPECT_EQ(first.value().sheddedRequests, 0u);

    // Failover: every cached activation is now stale. Over-budget
    // batches may serve them — explicitly marked.
    session.degradeCache();
    auto second = session.replay(trace);
    ASSERT_TRUE(second.hasValue());
    const serve::ServeReport &r = second.value();
    EXPECT_GT(r.staleServedRequests, 0u);
    EXPECT_GT(r.degradedBatches, 0u);
    EXPECT_GT(r.staleRowsInjected, 0u);
    EXPECT_EQ(r.sheddedRequests, 0u);
    std::uint64_t stale_seen = 0;
    for (std::uint8_t o : r.requestOutcome) {
        EXPECT_NE(o, serve::ServeReport::kOutcomeShed);
        if (o == serve::ServeReport::kOutcomeStale)
            ++stale_seen;
    }
    EXPECT_EQ(stale_seen, r.staleServedRequests);
}

TEST(ServeFault, InvalidRequestKeepsItsTypedKind)
{
    ServeFixture fx;
    serve::ServeConfig cfg = fx.baseConfig();
    serve::ServeSession session(fx.model, fx.data.graph,
                                fx.data.features, cfg);
    std::vector<serve::ServeRequest> trace{
        {1e-4, 0}, {2e-4, fx.data.graph.numNodes()}};
    auto rep = session.replay(trace);
    ASSERT_FALSE(rep.hasValue());
    EXPECT_EQ(rep.error().kind,
              serve::ServeError::Kind::InvalidRequest);
    EXPECT_EQ(rep.error().requestIndex, 1u);
}

} // namespace
} // namespace maxk
