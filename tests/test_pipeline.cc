/**
 * @file
 * Acceptance suite for the mini-batch training pipeline (ISSUE 6):
 *
 *  - BoundedQueue / Pipeline: FIFO slot delivery, bounded look-ahead,
 *    clean shutdown, and producer-exception propagation to next();
 *  - SampledTrainer: the pipelined run is BITWISE-identical to the
 *    synchronous (--no-pipeline) run across queue depths {1,2,4} and
 *    MAXK_THREADS {1,4}, for both softmax and multi-label BCE tasks;
 *  - steady-state epochs (>= 2) perform zero Matrix/CbsrMatrix heap
 *    allocations across ALL stages — sampling, extraction, training,
 *    and full-graph evaluation (AllocProbe-enforced);
 *  - the mini-batch loop actually learns on the community task.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "graph/registry.hh"
#include "nn/model.hh"
#include "sample/pipeline.hh"
#include "sample/sampled_trainer.hh"
#include "support/fixtures.hh"

namespace maxk
{
namespace
{

using sample::BoundedQueue;
using sample::Pipeline;
using sample::SampledTrainConfig;
using sample::SampledTrainer;
using sample::SampledTrainResult;
using sample::SamplerConfig;

struct ThreadGuard
{
    ~ThreadGuard() { setDefaultThreads(0); }
};

/* ----------------------------------------------------- bounded queue */

TEST(BoundedQueue, FifoWithCloseDrain)
{
    BoundedQueue<int> q(4);
    int items[3] = {1, 2, 3};
    for (int &v : items)
        ASSERT_TRUE(q.push(&v));
    q.close();
    EXPECT_FALSE(q.push(&items[0])); // closed: push refused

    int *got = nullptr;
    for (int &v : items) { // close() drains before reporting closed
        ASSERT_TRUE(q.pop(got));
        EXPECT_EQ(got, &v);
    }
    EXPECT_FALSE(q.pop(got));
}

TEST(Pipeline, DeliversAllItemsInOrderAndRecyclesSlots)
{
    std::vector<int> slots(3, -1);
    std::atomic<int> produced{0};
    Pipeline<int> pipe(2, slots, [&](int &slot, std::size_t index) {
        if (index >= 100)
            return false;
        slot = static_cast<int>(index);
        produced.fetch_add(1);
        return true;
    });

    int expect = 0;
    while (int *item = pipe.next()) {
        EXPECT_EQ(*item, expect++);
        pipe.recycle(item);
    }
    EXPECT_EQ(expect, 100);
    EXPECT_EQ(produced.load(), 100);
}

TEST(Pipeline, ProducerExceptionReachesConsumer)
{
    std::vector<int> slots(2);
    Pipeline<int> pipe(1, slots, [](int &slot, std::size_t index) {
        if (index == 3)
            throw std::runtime_error("producer failed on batch 3");
        slot = static_cast<int>(index);
        return true;
    });

    int delivered = 0;
    try {
        while (int *item = pipe.next()) {
            ++delivered;
            pipe.recycle(item);
        }
        FAIL() << "producer exception was swallowed";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "producer failed on batch 3");
    }
    EXPECT_EQ(delivered, 3);
}

TEST(Pipeline, EarlyConsumerTeardownJoinsProducer)
{
    std::vector<int> slots(2);
    // Unbounded stream: the destructor must unblock and join the
    // producer even though the consumer abandons after one item.
    Pipeline<int> pipe(1, slots, [](int &slot, std::size_t index) {
        slot = static_cast<int>(index);
        return true;
    });
    int *item = pipe.next();
    ASSERT_NE(item, nullptr);
    // No recycle, no drain: ~Pipeline handles it.
}

/* ---------------------------------------------- trainer equivalence */

TrainingTask
miniTask(const char *name, NodeId nodes)
{
    TrainingTask task = *findTrainingTask(name);
    task.accuracyNodes = nodes;
    task.accuracyAvgDegree = 8.0;
    return task;
}

nn::ModelConfig
miniModel(const TrainingTask &task, std::uint32_t layers)
{
    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nn::Nonlinearity::MaxK;
    cfg.maxkK = 8;
    cfg.numLayers = layers;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 32;
    cfg.outDim = task.numClasses;
    cfg.dropout = 0.3f;
    return cfg;
}

SamplerConfig
miniSampler(std::uint32_t layers)
{
    SamplerConfig scfg;
    scfg.fanouts.assign(layers, 4);
    scfg.batchSize = 48;
    scfg.seed = 77;
    return scfg;
}

SampledTrainResult
runOnce(const TrainingTask &task, TrainingData &data, bool pipeline,
        std::uint32_t depth)
{
    const nn::ModelConfig cfg = miniModel(task, 2);
    nn::GnnModel model(cfg);
    SampledTrainer trainer(model, data, task, miniSampler(2));

    SampledTrainConfig tc;
    tc.epochs = 4;
    tc.evalEvery = 2;
    tc.pipeline = pipeline;
    tc.queueDepth = depth;
    return trainer.run(tc);
}

void
expectBitwiseEqual(const SampledTrainResult &a,
                   const SampledTrainResult &b)
{
    ASSERT_EQ(a.trainLoss, b.trainLoss);
    ASSERT_EQ(a.evalEpochs, b.evalEpochs);
    ASSERT_EQ(a.valMetric, b.valMetric);
    ASSERT_EQ(a.testMetric, b.testMetric);
    ASSERT_EQ(a.bestValMetric, b.bestValMetric);
    ASSERT_EQ(a.finalTestMetric, b.finalTestMetric);
    ASSERT_TRUE(a.finalLogits.equals(b.finalLogits));
    ASSERT_EQ(a.batchesTrained, b.batchesTrained);
    ASSERT_EQ(a.sampledNodes, b.sampledNodes);
    ASSERT_EQ(a.sampledEdges, b.sampledEdges);
}

TEST(SampledTrainer, PipelinedBitwiseEqualsSyncAcrossDepthsAndThreads)
{
    ThreadGuard guard;
    const TrainingTask task = miniTask("Flickr", 500);
    Rng rng(51);
    TrainingData data = materializeTrainingData(task, rng);

    setDefaultThreads(1);
    const SampledTrainResult ref = runOnce(task, data, false, 1);
    ASSERT_EQ(ref.trainLoss.size(), 4u);
    ASSERT_GT(ref.batchesTrained, 0u);

    for (const std::uint32_t threads : {1u, 4u}) {
        setDefaultThreads(threads);
        // The synchronous path must not depend on threads either.
        expectBitwiseEqual(runOnce(task, data, false, 1), ref);
        for (const std::uint32_t depth : {1u, 2u, 4u}) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " depth=" + std::to_string(depth));
            expectBitwiseEqual(runOnce(task, data, true, depth), ref);
        }
    }
}

TEST(SampledTrainer, MultiLabelPipelinedBitwiseEqualsSync)
{
    ThreadGuard guard;
    const TrainingTask task = miniTask("Yelp", 400);
    ASSERT_TRUE(task.multiLabel);
    Rng rng(52);
    TrainingData data = materializeTrainingData(task, rng);

    setDefaultThreads(4);
    const SampledTrainResult sync = runOnce(task, data, false, 1);
    const SampledTrainResult piped = runOnce(task, data, true, 2);
    expectBitwiseEqual(piped, sync);
}

TEST(SampledTrainer, ProducerLivesAcrossEpochs)
{
    // Cross-epoch pipelining: ONE producer thread spans the whole run
    // (epoch boundaries are just indices in its stream), so epoch N+1's
    // first batches are sampled while epoch N still trains. This pins
    // the thread count as the regression guard against reintroducing a
    // per-epoch spawn/join — and the bitwise sweep above proves the
    // pipelined stream stays identical to the synchronous one.
    ThreadGuard guard;
    const TrainingTask task = miniTask("Flickr", 400);
    Rng rng(55);
    TrainingData data = materializeTrainingData(task, rng);

    setDefaultThreads(4);
    const SampledTrainResult piped = runOnce(task, data, true, 2);
    EXPECT_EQ(piped.producerSpawns, 1u)
        << "expected one producer across all epochs (cross-epoch "
           "pipelining), not one per epoch";
    const SampledTrainResult sync = runOnce(task, data, false, 1);
    EXPECT_EQ(sync.producerSpawns, 0u);
    expectBitwiseEqual(piped, sync);
}

/* ------------------------------------------------- zero-alloc steady */

TEST(SampledTrainer, SteadyStateEpochsAreAllocationFree)
{
    ThreadGuard guard;
    const TrainingTask task = miniTask("Flickr", 500);
    Rng rng(53);
    TrainingData data = materializeTrainingData(task, rng);

    for (const bool pipeline : {true, false}) {
        SCOPED_TRACE(pipeline ? "pipelined" : "sync");
        setDefaultThreads(pipeline ? 4 : 1);
        const nn::ModelConfig cfg = miniModel(task, 2);
        nn::GnnModel model(cfg);
        SampledTrainer trainer(model, data, task, miniSampler(2));

        SampledTrainConfig tc;
        tc.epochs = 6;
        tc.evalEvery = 2; // evals inside the steady window too
        tc.pipeline = pipeline;
        tc.queueDepth = 2;
        const SampledTrainResult res = trainer.run(tc);
        EXPECT_EQ(res.steadyStateAllocCount, 0u)
            << res.steadyStateAllocCount
            << " Matrix/CbsrMatrix allocations in epochs >= 2";
    }
}

/* ------------------------------------------------------ convergence */

TEST(SampledTrainer, LearnsCommunityTask)
{
    const TrainingTask task = miniTask("Flickr", 600);
    Rng rng(54);
    TrainingData data = materializeTrainingData(task, rng);

    nn::ModelConfig cfg = miniModel(task, 2);
    cfg.dropout = 0.1f;
    nn::GnnModel model(cfg);
    SamplerConfig scfg = miniSampler(2);
    scfg.fanouts = {8, 8};
    SampledTrainer trainer(model, data, task, scfg);

    SampledTrainConfig tc;
    tc.epochs = 12;
    tc.evalEvery = 4;
    tc.lr = 0.01f;
    const SampledTrainResult res = trainer.run(tc);

    // Loss drops and the final full-graph accuracy clears chance by a
    // wide margin (7-class balanced-ish SBM task).
    EXPECT_LT(res.trainLoss.back(), res.trainLoss.front());
    EXPECT_GT(res.bestValMetric, 0.5);
    // Every seed visited exactly once per epoch.
    const std::uint32_t nb = trainer.sampler().numBatches(
        static_cast<std::size_t>(std::count(
            data.trainMask.begin(), data.trainMask.end(), 1)));
    EXPECT_EQ(res.batchesTrained, static_cast<std::uint64_t>(nb) * 12);
}

} // namespace
} // namespace maxk
