#include "support/oracles.hh"

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

#include "kernels/spmm_ref.hh"

namespace maxk::test
{

std::multiset<Float>
topKOracle(const Float *row, std::uint32_t n, std::uint32_t k)
{
    std::vector<Float> v(row, row + n);
    std::sort(v.begin(), v.end(), std::greater<Float>());
    return std::multiset<Float>(v.begin(), v.begin() + k);
}

std::vector<std::uint32_t>
topKIndicesOracle(const Float *row, std::uint32_t n, std::uint32_t k)
{
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    // Stable sort by descending value keeps earlier columns ahead on
    // ties, matching pivotSelect's deterministic tie-break.
    std::stable_sort(order.begin(), order.end(),
                     [row](std::uint32_t a, std::uint32_t b) {
                         return row[a] > row[b];
                     });
    std::vector<std::uint32_t> top(order.begin(), order.begin() + k);
    std::sort(top.begin(), top.end());
    return top;
}

void
spgemmOracle(const CsrGraph &g, const CbsrMatrix &h, Matrix &y)
{
    Matrix dense;
    h.decompress(dense);
    spmmReference(g, dense, y);
}

void
sspmmOracle(const CsrGraph &g, const Matrix &dxl, Matrix &dense)
{
    spmmTransposedReference(g, dxl, dense);
}

} // namespace maxk::test
