/**
 * @file
 * Shared graph/feature fixtures for the test suites. Before this library
 * existed every suite re-implemented a `Fixture` struct that drew an
 * Erdős–Rényi (or RMAT) graph, attached aggregator weights, filled a
 * feature matrix, and disabled cache simulation; the variants here cover
 * all of those uses plus named graph shapes for parameterised sweeps.
 */

#ifndef MAXK_TESTS_SUPPORT_FIXTURES_HH
#define MAXK_TESTS_SUPPORT_FIXTURES_HH

#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/rng.hh"
#include "core/maxk.hh"
#include "graph/edge_groups.hh"
#include "graph/generators.hh"
#include "kernels/sim_options.hh"
#include "tensor/matrix.hh"

namespace maxk::test
{

/** Named graph families the suites sweep over. */
enum class GraphShape
{
    ErdosRenyi, //!< uniform random (the default unit-test graph)
    PowerLaw,   //!< RMAT twin of the paper's skewed datasets
    Star,       //!< extreme imbalance: one hub row
    Ring,       //!< k-regular lattice: perfectly balanced rows
    Community,  //!< stochastic block model (learnable labels)
    Zipf,       //!< Zipfian in-degrees: tunable hub-heavy tail
};

/** Human-readable shape name (test parameter labels). */
std::string graphShapeName(GraphShape shape);

/**
 * Materialise a graph of the given shape with roughly `num_nodes` nodes
 * and `num_edges` nnz, aggregator weights attached. RMAT rounds the node
 * count up to a power of two; Star/Ring ignore `num_edges`.
 */
CsrGraph makeGraph(GraphShape shape, NodeId num_nodes, EdgeId num_edges,
                   Rng &rng, Aggregator agg = Aggregator::SageMean);

/** Seeded convenience overload (suites that don't keep an Rng). */
CsrGraph makeGraph(GraphShape shape, NodeId num_nodes, EdgeId num_edges,
                   std::uint64_t seed,
                   Aggregator agg = Aggregator::SageMean);

/**
 * Graph + dense feature matrix + no-cache SimOptions: the fixture most
 * kernel suites used to re-implement locally.
 */
struct SpmmFixture
{
    CsrGraph g;
    Matrix x;
    SimOptions opt;

    SpmmFixture(NodeId num_nodes, EdgeId num_edges, std::size_t dim,
                std::uint64_t seed, Aggregator agg = Aggregator::SageMean,
                GraphShape shape = GraphShape::ErdosRenyi);
};

/**
 * SpmmFixture plus the Edge-Group partition and a MaxK-compressed copy
 * of the features: everything the SpGEMM/SSpMM suites need.
 */
struct MaxKFixture
{
    CsrGraph g;
    EdgeGroupPartition part;
    Matrix x;
    MaxKResult mk;
    SimOptions opt;

    MaxKFixture(NodeId num_nodes, EdgeId num_edges, std::uint32_t dim,
                std::uint32_t k, std::uint64_t seed,
                Aggregator agg = Aggregator::SageMean,
                GraphShape shape = GraphShape::ErdosRenyi,
                std::uint32_t workload_cap = 32);
};

/**
 * Scoped environment override (MAXK_DATASET_DIR and friends): RAII so
 * the variable is restored to its previous state — set back to the old
 * value, or unset if it was absent — even when an ASSERT aborts the
 * test body. A leaked dataset dir would silently re-route every later
 * registry call in the binary to disk graphs.
 */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const std::string &value) : name_(name)
    {
        const char *prev = std::getenv(name);
        had_previous_ = prev != nullptr;
        if (had_previous_)
            previous_ = prev;
        setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv()
    {
        if (had_previous_)
            setenv(name_, previous_.c_str(), 1);
        else
            unsetenv(name_);
    }
    ScopedEnv(const ScopedEnv &) = delete;
    ScopedEnv &operator=(const ScopedEnv &) = delete;

  private:
    const char *name_;
    std::string previous_;
    bool had_previous_ = false;
};

} // namespace maxk::test

#endif // MAXK_TESTS_SUPPORT_FIXTURES_HH
