#include "support/comparators.hh"

#include <cmath>

namespace maxk::test
{
namespace
{

::testing::AssertionResult
dimensionMismatch(const char *what, std::size_t ar, std::size_t ac,
                  std::size_t br, std::size_t bc)
{
    return ::testing::AssertionFailure()
           << what << " dimension mismatch: " << ar << "x" << ac
           << " vs " << br << "x" << bc;
}

} // namespace

::testing::AssertionResult
matricesNear(const Matrix &a, const Matrix &b, Float atol)
{
    return matricesNearRel(a, b, 0.0f, atol);
}

::testing::AssertionResult
matricesNearRel(const Matrix &a, const Matrix &b, Float rtol, Float atol)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return dimensionMismatch("matrix", a.rows(), a.cols(), b.rows(),
                                 b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c) {
            const Float got = a.at(r, c);
            const Float want = b.at(r, c);
            const Float bound = atol + rtol * std::abs(want);
            if (!(std::abs(got - want) <= bound))
                return ::testing::AssertionFailure()
                       << "first mismatch at (" << r << ", " << c
                       << "): got " << got << ", want " << want
                       << " (|diff| " << std::abs(got - want) << " > "
                       << bound << ")";
        }
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
cbsrMatchesDenseGather(const CbsrMatrix &c, const Matrix &dense,
                       Float atol)
{
    if (c.rows() != dense.rows() || c.dimOrigin() != dense.cols())
        return dimensionMismatch("cbsr-vs-dense", c.rows(),
                                 c.dimOrigin(), dense.rows(),
                                 dense.cols());
    for (NodeId r = 0; r < c.rows(); ++r)
        for (std::uint32_t kk = 0; kk < c.dimK(); ++kk) {
            const Float got = c.dataRow(r)[kk];
            const Float want = dense.at(r, c.indexAt(r, kk));
            if (!(std::abs(got - want) <= atol))
                return ::testing::AssertionFailure()
                       << "first mismatch at row " << r << " slot " << kk
                       << " (column " << c.indexAt(r, kk) << "): got "
                       << got << ", want " << want;
        }
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
cbsrNear(const CbsrMatrix &a, const CbsrMatrix &b, Float atol)
{
    const auto pattern = cbsrSamePattern(a, b);
    if (!pattern)
        return pattern;
    for (NodeId r = 0; r < a.rows(); ++r)
        for (std::uint32_t kk = 0; kk < a.dimK(); ++kk) {
            const Float got = a.dataRow(r)[kk];
            const Float want = b.dataRow(r)[kk];
            if (!(std::abs(got - want) <= atol))
                return ::testing::AssertionFailure()
                       << "value mismatch at row " << r << " slot " << kk
                       << ": got " << got << ", want " << want;
        }
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
cbsrSamePattern(const CbsrMatrix &a, const CbsrMatrix &b)
{
    if (a.rows() != b.rows() || a.dimK() != b.dimK() ||
        a.dimOrigin() != b.dimOrigin())
        return ::testing::AssertionFailure()
               << "cbsr shape mismatch: " << a.rows() << "x" << a.dimK()
               << "/" << a.dimOrigin() << " vs " << b.rows() << "x"
               << b.dimK() << "/" << b.dimOrigin();
    for (NodeId r = 0; r < a.rows(); ++r)
        for (std::uint32_t kk = 0; kk < a.dimK(); ++kk)
            if (a.indexAt(r, kk) != b.indexAt(r, kk))
                return ::testing::AssertionFailure()
                       << "pattern mismatch at row " << r << " slot "
                       << kk << ": " << a.indexAt(r, kk) << " vs "
                       << b.indexAt(r, kk);
    return ::testing::AssertionSuccess();
}

} // namespace maxk::test
