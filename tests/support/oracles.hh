/**
 * @file
 * Golden oracles shared by the suites: the sort-based top-k reference the
 * MaxK tests compare pivot selection against, and dense aggregation
 * oracles (built on the double-precision `spmmReference` loops) for the
 * SpGEMM-forward / SSpMM-backward kernel pair.
 */

#ifndef MAXK_TESTS_SUPPORT_ORACLES_HH
#define MAXK_TESTS_SUPPORT_ORACLES_HH

#include <cstdint>
#include <set>

#include "core/cbsr.hh"
#include "graph/csr.hh"
#include "tensor/matrix.hh"

namespace maxk::test
{

/** The k largest values of row[0..n) as a multiset (sort-based). */
std::multiset<Float> topKOracle(const Float *row, std::uint32_t n,
                                std::uint32_t k);

/** Ascending positions of the k largest values, ties broken by column
 *  order — the exact contract of `pivotSelect`. */
std::vector<std::uint32_t> topKIndicesOracle(const Float *row,
                                             std::uint32_t n,
                                             std::uint32_t k);

/** Dense oracle for the forward SpGEMM: y = A * decompress(h). */
void spgemmOracle(const CsrGraph &g, const CbsrMatrix &h, Matrix &y);

/** Dense oracle for the backward SSpMM: the full A^T * dxl matrix, to be
 *  gathered at the CBSR pattern by the caller's comparator. */
void sspmmOracle(const CsrGraph &g, const Matrix &dxl, Matrix &dense);

} // namespace maxk::test

#endif // MAXK_TESTS_SUPPORT_ORACLES_HH
