/**
 * @file
 * gtest comparators for dense and CBSR matrices. These return
 * `AssertionResult`s that name the first offending element, so a sweep
 * failure points at (row, col, got, want) instead of a bare boolean —
 * the diagnostic the per-suite `approxEquals` checks never gave.
 */

#ifndef MAXK_TESTS_SUPPORT_COMPARATORS_HH
#define MAXK_TESTS_SUPPORT_COMPARATORS_HH

#include <gtest/gtest.h>

#include "core/cbsr.hh"
#include "tensor/matrix.hh"

namespace maxk::test
{

/** |a-b| <= atol element-wise (dimensions must match). */
::testing::AssertionResult matricesNear(const Matrix &a, const Matrix &b,
                                        Float atol);

/**
 * Mixed relative/absolute tolerance: |a-b| <= atol + rtol * |b|. Use for
 * quantities that span magnitudes (traffic bytes, accumulated sums).
 */
::testing::AssertionResult matricesNearRel(const Matrix &a,
                                           const Matrix &b, Float rtol,
                                           Float atol = 1e-6f);

/**
 * Every CBSR element (r, kk) agrees with dense.at(r, index(r, kk)) —
 * the gather comparison the SSpMM suites re-implemented as nested
 * ASSERT_NEAR loops.
 */
::testing::AssertionResult cbsrMatchesDenseGather(const CbsrMatrix &c,
                                                  const Matrix &dense,
                                                  Float atol);

/** Same sparsity pattern and element-wise near values between two CBSRs. */
::testing::AssertionResult cbsrNear(const CbsrMatrix &a,
                                    const CbsrMatrix &b, Float atol);

/** Identical sp_index patterns (the gradient-mask consistency check). */
::testing::AssertionResult cbsrSamePattern(const CbsrMatrix &a,
                                           const CbsrMatrix &b);

} // namespace maxk::test

#endif // MAXK_TESTS_SUPPORT_COMPARATORS_HH
