#include "support/fixtures.hh"

#include <bit>

#include "tensor/init.hh"

namespace maxk::test
{

std::string
graphShapeName(GraphShape shape)
{
    switch (shape) {
    case GraphShape::ErdosRenyi: return "ErdosRenyi";
    case GraphShape::PowerLaw: return "PowerLaw";
    case GraphShape::Star: return "Star";
    case GraphShape::Ring: return "Ring";
    case GraphShape::Community: return "Community";
    case GraphShape::Zipf: return "Zipf";
    }
    return "Unknown";
}

CsrGraph
makeGraph(GraphShape shape, NodeId num_nodes, EdgeId num_edges, Rng &rng,
          Aggregator agg)
{
    CsrGraph g;
    switch (shape) {
    case GraphShape::ErdosRenyi:
        g = erdosRenyi(num_nodes, num_edges, rng);
        break;
    case GraphShape::PowerLaw: {
        const std::uint32_t scale =
            std::bit_width(std::bit_ceil(std::uint64_t(num_nodes))) - 1;
        g = rmat(scale, num_edges, rng);
        break;
    }
    case GraphShape::Star:
        g = star(num_nodes);
        break;
    case GraphShape::Ring:
        g = ringLattice(num_nodes, 4);
        break;
    case GraphShape::Community: {
        const double avg_degree =
            static_cast<double>(num_edges) / num_nodes;
        g = stochasticBlockModel(num_nodes, 4, avg_degree, 0.8, rng)
                .graph;
        break;
    }
    case GraphShape::Zipf:
        g = zipf(num_nodes, num_edges, 1.1, rng);
        break;
    }
    g.setAggregatorWeights(agg);
    return g;
}

CsrGraph
makeGraph(GraphShape shape, NodeId num_nodes, EdgeId num_edges,
          std::uint64_t seed, Aggregator agg)
{
    Rng rng(seed);
    return makeGraph(shape, num_nodes, num_edges, rng, agg);
}

SpmmFixture::SpmmFixture(NodeId num_nodes, EdgeId num_edges,
                         std::size_t dim, std::uint64_t seed,
                         Aggregator agg, GraphShape shape)
{
    Rng rng(seed);
    g = makeGraph(shape, num_nodes, num_edges, rng, agg);
    x.resize(g.numNodes(), dim);
    fillNormal(x, rng, 0.0f, 1.0f);
    opt.simulateCaches = false;
}

MaxKFixture::MaxKFixture(NodeId num_nodes, EdgeId num_edges,
                         std::uint32_t dim, std::uint32_t k,
                         std::uint64_t seed, Aggregator agg,
                         GraphShape shape, std::uint32_t workload_cap)
{
    Rng rng(seed);
    g = makeGraph(shape, num_nodes, num_edges, rng, agg);
    part = EdgeGroupPartition::build(g, workload_cap);
    x.resize(g.numNodes(), dim);
    fillNormal(x, rng, 0.0f, 1.0f);
    opt.simulateCaches = false;
    mk = maxkCompress(x, k, opt);
}

} // namespace maxk::test
