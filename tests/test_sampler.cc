/**
 * @file
 * Acceptance suite for the neighbor sampler and minibatch extractor
 * (ISSUE 6):
 *
 *  - rngKey: stable, component-sensitive stream keys;
 *  - NeighborSampler: per-seed keyed streams make sampled batches
 *    bitwise-identical across repeats, MAXK_THREADS in {1,4,8}, fresh
 *    sampler instances, and any batch sampling order;
 *  - fanout edge cases: degree < fanout takes every neighbor without
 *    touching the stream, isolated vertices keep empty rows, self-loops
 *    sample like any edge, fanout 0 yields a seed-only batch;
 *  - MinibatchExtractor structural invariants (property-tested across
 *    graph shapes): valid padded CSR, global-id round trip, gathered
 *    rows bitwise-equal to direct indexing, and the saturated-ball
 *    sample equal to the extractSubgraph oracle of test_partition.cc.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "graph/partition.hh"
#include "nn/gnn_layer.hh"
#include "sample/extractor.hh"
#include "sample/sampler.hh"
#include "support/fixtures.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

using sample::MinibatchExtractor;
using sample::NeighborSampler;
using sample::SampleBatch;
using sample::SamplerConfig;

/** Restore the env-driven thread default even when an ASSERT aborts. */
struct ThreadGuard
{
    ~ThreadGuard() { setDefaultThreads(0); }
};

bool
sameBatch(const SampleBatch &a, const SampleBatch &b)
{
    return a.nodes == b.nodes && a.seeds == b.seeds &&
           a.rowPtr == b.rowPtr && a.colIdx == b.colIdx;
}

/** First `count` vertices of the keyed epoch order. */
std::vector<NodeId>
firstSeeds(const NeighborSampler &s, std::uint32_t epoch,
           const std::vector<NodeId> &ids, std::size_t count)
{
    std::vector<NodeId> order;
    s.epochOrder(epoch, ids, order);
    order.resize(std::min(count, order.size()));
    return order;
}

std::vector<NodeId>
allNodes(const CsrGraph &g)
{
    std::vector<NodeId> ids(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        ids[v] = v;
    return ids;
}

/* ------------------------------------------------------------ rngKey */

TEST(RngKey, ComponentSensitiveAndStable)
{
    // Any single-component change must move the key.
    const std::uint64_t base = rngKey(1, 2, 3, 4);
    EXPECT_NE(base, rngKey(2, 2, 3, 4));
    EXPECT_NE(base, rngKey(1, 3, 3, 4));
    EXPECT_NE(base, rngKey(1, 2, 4, 4));
    EXPECT_NE(base, rngKey(1, 2, 3, 5));
    // Position matters (no commutative collapse).
    EXPECT_NE(rngKey(1, 2), rngKey(2, 1));
    // Defaults are zero components.
    EXPECT_EQ(rngKey(7), rngKey(7, 0, 0, 0));
    // Same inputs, same key: streams are reproducible across calls.
    EXPECT_EQ(base, rngKey(1, 2, 3, 4));
}

/* ------------------------------------------------- sampler invariants */

void
checkBatchInvariants(const CsrGraph &g, const NeighborSampler &s,
                     const SampleBatch &b)
{
    // Node list sorted, unique, within capacity.
    ASSERT_TRUE(std::is_sorted(b.nodes.begin(), b.nodes.end()));
    ASSERT_EQ(std::adjacent_find(b.nodes.begin(), b.nodes.end()),
              b.nodes.end());
    ASSERT_LE(b.nodes.size(), s.nodeCapacity());
    for (const NodeId v : b.nodes)
        ASSERT_LT(v, g.numNodes());

    // Seeds are a subset of the node list.
    for (const NodeId v : b.seeds)
        ASSERT_TRUE(
            std::binary_search(b.nodes.begin(), b.nodes.end(), v));

    // Local CSR: monotone rowPtr, sorted in-bounds unique columns, and
    // every sampled edge present in the global graph with the right
    // per-row count: min(fanout_of_hop, degree) for expanded rows.
    ASSERT_EQ(b.rowPtr.size(), b.nodes.size() + 1);
    ASSERT_EQ(b.rowPtr.front(), 0u);
    ASSERT_EQ(b.rowPtr.back(), b.colIdx.size());
    for (std::size_t r = 0; r < b.nodes.size(); ++r) {
        ASSERT_LE(b.rowPtr[r], b.rowPtr[r + 1]);
        const NodeId v = b.nodes[r];
        const auto gl = g.colIdx().begin() + g.rowPtr()[v];
        const auto gh = g.colIdx().begin() + g.rowPtr()[v + 1];
        for (EdgeId e = b.rowPtr[r]; e < b.rowPtr[r + 1]; ++e) {
            const NodeId lc = b.colIdx[e];
            ASSERT_LT(lc, b.nodes.size());
            if (e > b.rowPtr[r]) {
                ASSERT_LT(b.colIdx[e - 1], lc); // sorted, no dupes
            }
            // The edge exists in the global graph.
            ASSERT_TRUE(std::binary_search(gl, gh, b.nodes[lc]));
        }
    }
}

TEST(NeighborSampler, BatchStructureAcrossShapes)
{
    for (const auto shape :
         {test::GraphShape::ErdosRenyi, test::GraphShape::PowerLaw,
          test::GraphShape::Star, test::GraphShape::Ring,
          test::GraphShape::Community}) {
        SCOPED_TRACE(test::graphShapeName(shape));
        const CsrGraph g = test::makeGraph(shape, 300, 2400, 11);

        SamplerConfig cfg;
        cfg.fanouts = {4, 3};
        cfg.batchSize = 16;
        NeighborSampler s(g, cfg);

        const std::vector<NodeId> ids = allNodes(g);
        SampleBatch b;
        for (std::uint32_t batch = 0; batch < 3; ++batch) {
            s.sample(1, batch,
                     firstSeeds(s, 1, ids, cfg.batchSize), b);
            checkBatchInvariants(g, s, b);
            ASSERT_EQ(b.seeds.size(), cfg.batchSize);
        }
    }
}

TEST(NeighborSampler, PerRowSampleCounts)
{
    const CsrGraph g =
        test::makeGraph(test::GraphShape::PowerLaw, 256, 2048, 5);
    SamplerConfig cfg;
    cfg.fanouts = {6};
    cfg.batchSize = 32;
    NeighborSampler s(g, cfg);

    SampleBatch b;
    s.sample(0, 0, firstSeeds(s, 0, allNodes(g), cfg.batchSize), b);

    // Exactly the seed rows are expanded: row length min(f, degree) for
    // seeds, zero for vertices first reached at the (only) hop.
    for (std::size_t r = 0; r < b.nodes.size(); ++r) {
        const EdgeId len = b.rowPtr[r + 1] - b.rowPtr[r];
        const bool is_seed = std::binary_search(
            b.seeds.begin(), b.seeds.end(), b.nodes[r]);
        if (is_seed)
            ASSERT_EQ(len, std::min<EdgeId>(6, g.degree(b.nodes[r])));
        else
            ASSERT_EQ(len, 0u);
    }
}

/* -------------------------------------------------- determinism sweep */

TEST(NeighborSampler, BitwiseDeterministicAcrossRepeatsThreadsInstances)
{
    ThreadGuard guard;
    const CsrGraph g =
        test::makeGraph(test::GraphShape::PowerLaw, 400, 3600, 21);
    SamplerConfig cfg;
    cfg.fanouts = {5, 4};
    cfg.batchSize = 24;

    // Reference batches at 1 thread.
    setDefaultThreads(1);
    NeighborSampler ref_sampler(g, cfg);
    const std::vector<NodeId> ids = allNodes(g);
    std::vector<SampleBatch> ref(4);
    for (std::uint32_t batch = 0; batch < 4; ++batch)
        ref_sampler.sample(2, batch, firstSeeds(ref_sampler, 2, ids, 24),
                           ref[batch]);

    // Repeats on the same sampler reproduce bitwise.
    SampleBatch again;
    ref_sampler.sample(2, 1, firstSeeds(ref_sampler, 2, ids, 24), again);
    ASSERT_TRUE(sameBatch(again, ref[1]));

    for (const std::uint32_t threads : {1u, 4u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        setDefaultThreads(threads);
        NeighborSampler s(g, cfg); // fresh instance: no hidden state
        // Permuted batch order: each batch depends only on its own
        // (epoch, batch, seeds) coordinates.
        SampleBatch b;
        for (const std::uint32_t batch : {3u, 0u, 2u, 1u}) {
            s.sample(2, batch, firstSeeds(s, 2, ids, 24), b);
            ASSERT_TRUE(sameBatch(b, ref[batch]));
        }
    }
}

TEST(NeighborSampler, EpochOrderIsKeyedPermutation)
{
    const CsrGraph g =
        test::makeGraph(test::GraphShape::ErdosRenyi, 100, 600, 3);
    SamplerConfig cfg;
    cfg.fanouts = {2};
    NeighborSampler s(g, cfg);

    std::vector<NodeId> ids;
    for (NodeId v = 0; v < 60; ++v)
        ids.push_back(v);

    std::vector<NodeId> e0, e0_again, e1;
    s.epochOrder(0, ids, e0);
    s.epochOrder(0, ids, e0_again);
    s.epochOrder(1, ids, e1);

    EXPECT_EQ(e0, e0_again);
    EXPECT_NE(e0, e1); // different epoch, different shuffle

    std::vector<NodeId> sorted = e0;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, ids); // a permutation, nothing lost

    // Distinct sampler seeds shuffle differently.
    SamplerConfig other = cfg;
    other.seed = cfg.seed + 1;
    NeighborSampler s2(g, other);
    std::vector<NodeId> o0;
    s2.epochOrder(0, ids, o0);
    EXPECT_NE(e0, o0);
}

/* -------------------------------------------------- fanout edge cases */

TEST(NeighborSampler, DegreeUnderFanoutTakesEveryNeighbor)
{
    // Ring: every vertex has degree 2, far under the fanout of 10.
    const CsrGraph g =
        test::makeGraph(test::GraphShape::Ring, 64, 0, 1);
    SamplerConfig cfg;
    cfg.fanouts = {10};
    cfg.batchSize = 4;
    NeighborSampler s(g, cfg);

    SampleBatch b;
    s.sample(0, 0, {5, 10, 20, 40}, b);
    for (std::size_t r = 0; r < b.nodes.size(); ++r) {
        const NodeId v = b.nodes[r];
        if (!std::binary_search(b.seeds.begin(), b.seeds.end(), v))
            continue;
        // All global neighbors present, in ascending local order.
        ASSERT_EQ(b.rowPtr[r + 1] - b.rowPtr[r], g.degree(v));
        for (EdgeId e = b.rowPtr[r]; e < b.rowPtr[r + 1]; ++e) {
            const NodeId gcol =
                g.colIdx()[g.rowPtr()[v] + (e - b.rowPtr[r])];
            ASSERT_EQ(b.nodes[b.colIdx[e]], gcol);
        }
    }
}

TEST(NeighborSampler, IsolatedVerticesAndSelfLoops)
{
    // Two components: a self-loop triangle and two isolated vertices.
    std::vector<std::pair<NodeId, NodeId>> edges = {
        {0, 1}, {1, 2}, {2, 0}};
    CsrGraph g = CsrGraph::fromEdges(5, edges, true, true);

    SamplerConfig cfg;
    cfg.fanouts = {8, 8};
    cfg.batchSize = 2;
    NeighborSampler s(g, cfg);

    SampleBatch b;
    s.sample(0, 0, {3, 4}, b); // isolated seeds: nothing to expand
    EXPECT_EQ(b.nodes, (std::vector<NodeId>{3, 4}));
    EXPECT_EQ(b.numEdges(), 2u); // just their self-loops
    for (std::size_t r = 0; r < 2; ++r)
        EXPECT_EQ(b.colIdx[b.rowPtr[r]], r); // self-loop maps to itself

    s.sample(0, 1, {0}, b); // self-loop seed pulls its component
    EXPECT_EQ(b.nodes, (std::vector<NodeId>{0, 1, 2}));
    checkBatchInvariants(g, s, b);
}

TEST(NeighborSampler, FanoutZeroYieldsSeedOnlyBatch)
{
    const CsrGraph g =
        test::makeGraph(test::GraphShape::ErdosRenyi, 128, 1024, 9);
    SamplerConfig cfg;
    cfg.fanouts = {0};
    cfg.batchSize = 8;
    NeighborSampler s(g, cfg);
    EXPECT_EQ(s.nodeCapacity(), 8u);

    SampleBatch b;
    const std::vector<NodeId> seeds = {1, 17, 33, 64, 90, 100, 110, 127};
    s.sample(0, 0, seeds, b);
    EXPECT_EQ(b.nodes, seeds);
    EXPECT_EQ(b.numEdges(), 0u);
    EXPECT_EQ(b.rowPtr, std::vector<EdgeId>(9, 0));
}

/* -------------------------------------- arbitrary request seed sets */

TEST(NeighborSampler, DuplicateSeedsCollapseToUniqueSet)
{
    // Serving traces routinely repeat a vertex inside one batch; the
    // sampler must collapse duplicates to the sorted unique set and
    // produce the exact batch the deduplicated request would.
    const CsrGraph g =
        test::makeGraph(test::GraphShape::PowerLaw, 200, 1600, 31);
    SamplerConfig cfg;
    cfg.fanouts = {4, 3};
    cfg.batchSize = 6;
    NeighborSampler s(g, cfg);

    SampleBatch unique, dup;
    s.sample(0, 0, {5, 9, 42}, unique);
    s.sample(0, 0, {42, 5, 9, 5, 42, 9}, dup);
    ASSERT_TRUE(sameBatch(unique, dup));
    EXPECT_EQ(dup.seeds, (std::vector<NodeId>{5, 9, 42}));
    checkBatchInvariants(g, s, dup);
}

TEST(NeighborSampler, ArbitraryRequestSetsNotJustTrainBatches)
{
    // Frontier-restricted extraction serves ANY vertex set: unsorted,
    // isolated members, duplicates — and each vertex's sampled rows are
    // independent of which request set pulled it in (keyed streams).
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId v = 0; v + 1 < 40; ++v)
        edges.push_back({v, v + 1});
    // Vertices 40..44 stay isolated.
    CsrGraph g = CsrGraph::fromEdges(45, edges, true, false);

    SamplerConfig cfg;
    cfg.fanouts = {2, 2};
    cfg.batchSize = 8;
    NeighborSampler s(g, cfg);

    SampleBatch lone, mixed;
    s.sample(7, 3, {12}, lone);
    s.sample(7, 3, {44, 12, 40, 3, 12}, mixed);
    checkBatchInvariants(g, s, mixed);
    EXPECT_EQ(mixed.seeds, (std::vector<NodeId>{3, 12, 40, 44}));
    // Isolated seeds contribute exactly their own empty row.
    for (const NodeId iso : {40u, 44u}) {
        const auto it = std::lower_bound(mixed.nodes.begin(),
                                         mixed.nodes.end(), iso);
        ASSERT_NE(it, mixed.nodes.end());
        const std::size_t r =
            static_cast<std::size_t>(it - mixed.nodes.begin());
        EXPECT_EQ(mixed.rowPtr[r + 1] - mixed.rowPtr[r], 0u);
    }
    // Vertex 12's sampled adjacency is the same in both batches.
    const auto row_of = [](const SampleBatch &b, NodeId v) {
        return static_cast<std::size_t>(
            std::lower_bound(b.nodes.begin(), b.nodes.end(), v) -
            b.nodes.begin());
    };
    const std::size_t rl = row_of(lone, 12), rm = row_of(mixed, 12);
    ASSERT_EQ(lone.rowPtr[rl + 1] - lone.rowPtr[rl],
              mixed.rowPtr[rm + 1] - mixed.rowPtr[rm]);
    for (EdgeId e = 0; e < lone.rowPtr[rl + 1] - lone.rowPtr[rl]; ++e)
        EXPECT_EQ(lone.nodes[lone.colIdx[lone.rowPtr[rl] + e]],
                  mixed.nodes[mixed.colIdx[mixed.rowPtr[rm] + e]]);
}

TEST(NeighborSampler, CapacityBoundsAndBatchCounts)
{
    const CsrGraph g =
        test::makeGraph(test::GraphShape::ErdosRenyi, 200, 1600, 13);
    SamplerConfig cfg;
    cfg.fanouts = {3, 2};
    cfg.batchSize = 10;
    NeighborSampler s(g, cfg);
    // 10 * (1 + 3 + 6) = 100 < |V|.
    EXPECT_EQ(s.nodeCapacity(), 100u);
    EXPECT_EQ(s.numBatches(25), 3u);
    EXPECT_EQ(s.numBatches(30), 3u);
    EXPECT_EQ(s.numBatches(31), 4u);

    // Huge fanouts clamp to |V|.
    SamplerConfig big = cfg;
    big.fanouts = {1000, 1000};
    NeighborSampler sb(g, big);
    EXPECT_EQ(sb.nodeCapacity(), g.numNodes());
}

/* --------------------------------------------------------- extractor */

TEST(MinibatchExtractor, GatherMatchesDirectIndexing)
{
    for (const auto shape :
         {test::GraphShape::PowerLaw, test::GraphShape::Community}) {
        SCOPED_TRACE(test::graphShapeName(shape));
        const CsrGraph g = test::makeGraph(shape, 300, 2400, 17);
        const NodeId n = g.numNodes();

        Rng rng(23);
        Matrix feats(n, 12);
        fillNormal(feats, rng, 0.0f, 1.0f);
        std::vector<std::uint32_t> labels(n);
        for (NodeId v = 0; v < n; ++v)
            labels[v] = v % 7;

        SamplerConfig cfg;
        cfg.fanouts = {4, 4};
        cfg.batchSize = 16;
        NeighborSampler s(g, cfg);
        MinibatchExtractor ex(s.nodeCapacity(), Aggregator::SageMean,
                              feats, labels);

        SampleBatch b;
        sample::Minibatch mb;
        for (std::uint32_t batch = 0; batch < 3; ++batch) {
            s.sample(0, batch, firstSeeds(s, 0, allNodes(g), 16), b);
            ex.extract(b, mb);

            // Shape: always capacity rows, real prefix first.
            ASSERT_EQ(mb.graph.numNodes(), s.nodeCapacity());
            ASSERT_TRUE(mb.graph.validate());
            ASSERT_EQ(mb.numNodes, b.numNodes());
            ASSERT_EQ(mb.numSeeds, b.seeds.size());
            ASSERT_EQ(mb.globalIds, b.nodes);
            ASSERT_EQ(mb.features.rows(), s.nodeCapacity());

            // Topology: the real prefix is exactly the sampled CSR;
            // padding rows are isolated.
            for (std::size_t r = 0; r < mb.numNodes; ++r) {
                ASSERT_EQ(mb.graph.rowPtr()[r], b.rowPtr[r]);
                ASSERT_EQ(mb.graph.rowPtr()[r + 1], b.rowPtr[r + 1]);
            }
            for (std::size_t e = 0; e < b.colIdx.size(); ++e)
                ASSERT_EQ(mb.graph.colIdx()[e], b.colIdx[e]);
            for (NodeId r = static_cast<NodeId>(mb.numNodes);
                 r < s.nodeCapacity(); ++r)
                ASSERT_EQ(mb.graph.degree(r), 0u);

            // Rows gathered bitwise; padding rows zero; labels/mask
            // round-trip through globalIds.
            for (NodeId r = 0; r < s.nodeCapacity(); ++r) {
                if (r < mb.numNodes) {
                    const NodeId v = mb.globalIds[r];
                    ASSERT_EQ(mb.labels[r], labels[v]);
                    ASSERT_EQ(
                        mb.trainMask[r] != 0,
                        std::binary_search(b.seeds.begin(),
                                           b.seeds.end(), v));
                    for (std::size_t c = 0; c < feats.cols(); ++c)
                        ASSERT_EQ(mb.features.at(r, c), feats.at(v, c));
                } else {
                    ASSERT_EQ(mb.labels[r], 0u);
                    ASSERT_EQ(mb.trainMask[r], 0);
                    for (std::size_t c = 0; c < feats.cols(); ++c)
                        ASSERT_EQ(mb.features.at(r, c), 0.0f);
                }
            }
        }
    }
}

TEST(MinibatchExtractor, MultiLabelTargetRowsGathered)
{
    const CsrGraph g =
        test::makeGraph(test::GraphShape::ErdosRenyi, 120, 960, 29);
    const NodeId n = g.numNodes();
    Rng rng(5);
    Matrix feats(n, 6);
    fillNormal(feats, rng, 0.0f, 1.0f);
    std::vector<std::uint32_t> labels(n);
    for (NodeId v = 0; v < n; ++v)
        labels[v] = v % 5;
    Matrix targets(n, 5);
    for (NodeId v = 0; v < n; ++v)
        targets.at(v, labels[v]) = 1.0f;

    SamplerConfig cfg;
    cfg.fanouts = {3};
    cfg.batchSize = 10;
    NeighborSampler s(g, cfg);
    MinibatchExtractor ex(s.nodeCapacity(), Aggregator::SageMean, feats,
                          labels, &targets);

    SampleBatch b;
    sample::Minibatch mb;
    s.sample(0, 0, firstSeeds(s, 0, allNodes(g), 10), b);
    ex.extract(b, mb);

    ASSERT_EQ(mb.targets.rows(), s.nodeCapacity());
    for (NodeId r = 0; r < s.nodeCapacity(); ++r)
        for (std::size_t c = 0; c < 5; ++c)
            ASSERT_EQ(mb.targets.at(r, c),
                      r < mb.numNodes
                          ? targets.at(mb.globalIds[r], c)
                          : 0.0f);
}

TEST(MinibatchExtractor, SaturatedBallEqualsExtractSubgraphOracle)
{
    // Fanouts >= max degree and more hops than the diameter: every
    // reachable vertex is expanded with ALL its neighbors, so the
    // sampled block must equal the induced subgraph over the component.
    const CsrGraph g =
        test::makeGraph(test::GraphShape::Community, 150, 900, 41);
    SamplerConfig cfg;
    const std::uint32_t full =
        static_cast<std::uint32_t>(g.maxDegree());
    cfg.fanouts = {full, full, full, full, full, full, full, full};
    cfg.batchSize = 4;
    NeighborSampler s(g, cfg);

    SampleBatch b;
    s.sample(0, 0, {0, 1, 2, 3}, b);

    // Saturation check: the last hop discovered nothing new, so every
    // node in the ball is expanded (no empty frontier rows left).
    std::vector<NodeId> ids;
    const CsrGraph oracle = extractSubgraph(g, b.nodes, &ids);
    ASSERT_EQ(ids, b.nodes);
    ASSERT_EQ(oracle.numNodes(), b.numNodes());
    ASSERT_EQ(oracle.numEdges(), b.numEdges());
    for (std::size_t r = 0; r <= b.numNodes(); ++r)
        ASSERT_EQ(oracle.rowPtr()[r], b.rowPtr[r]);
    for (std::size_t e = 0; e < b.numEdges(); ++e)
        ASSERT_EQ(oracle.colIdx()[e], b.colIdx[e]);
}

} // namespace
} // namespace maxk
