/**
 * @file
 * Acceptance suite for the sharded execution subsystem (ISSUE 5):
 *
 *  - Communicator: deterministic mailbox collectives + byte accounting;
 *  - HaloPlan: replica-exact exchange lists and extended subgraphs;
 *  - ShardedTrainer: 1-rank runs bitwise-equal to nn::Trainer, R-rank
 *    runs deterministic across repeats and thread counts and within
 *    1e-5 of the single-device loss trajectory, steady-state epochs
 *    allocation-free, and measured Halo-channel traffic equal to the
 *    corrected profileDistributedEpoch model — with MaxK models
 *    exchanging strictly fewer bytes than ReLU models.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "dist/comm.hh"
#include "dist/halo.hh"
#include "dist/sharded_trainer.hh"
#include "graph/formats/formats.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "graph/registry.hh"
#include "nn/distributed.hh"
#include "nn/trainer.hh"
#include "support/fixtures.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

/* ------------------------------------------------------ Communicator */

TEST(CommWorld, AllToAllvRoutesLanesAndCountsBytes)
{
    dist::CommWorld world(3);
    world.run([](dist::Communicator &comm) {
        const std::uint32_t r = comm.rank();
        std::vector<std::vector<std::uint8_t>> send(3), recv;
        for (std::uint32_t d = 0; d < 3; ++d)
            send[d].assign(r + 1, static_cast<std::uint8_t>(10 * r + d));
        comm.allToAllv(send, recv, dist::CommChannel::Halo);
        for (std::uint32_t s = 0; s < 3; ++s) {
            ASSERT_EQ(recv[s].size(), s + 1u);
            for (std::uint8_t b : recv[s])
                ASSERT_EQ(b, 10 * s + r);
        }
    });
    // Rank r ships (r+1) bytes to each of its two peers.
    for (std::uint32_t r = 0; r < 3; ++r)
        EXPECT_EQ(world.traffic(r).sent[0], 2 * (r + 1));
    EXPECT_EQ(world.totalSentBytes(dist::CommChannel::Halo),
              2u * (1 + 2 + 3));
    EXPECT_EQ(world.totalSentBytes(dist::CommChannel::Reduce), 0u);
}

TEST(CommWorld, AllReduceSumIsFixedOrderAndIdenticalAcrossRanks)
{
    // The fold order is rank 0..R-1 regardless of scheduling, so every
    // rank must land on the bit-identical fp32 sum — which equals the
    // explicit serial left-to-right fold.
    constexpr std::uint32_t kRanks = 4;
    const std::size_t n = 257;
    std::vector<std::vector<Float>> inputs(kRanks,
                                           std::vector<Float>(n));
    Rng rng(99);
    for (auto &v : inputs)
        for (Float &x : v)
            x = rng.normal();
    std::vector<Float> expected = inputs[0];
    for (std::uint32_t r = 1; r < kRanks; ++r)
        for (std::size_t i = 0; i < n; ++i)
            expected[i] += inputs[r][i];

    for (int repeat = 0; repeat < 3; ++repeat) {
        dist::CommWorld world(kRanks);
        std::vector<std::vector<Float>> out(kRanks);
        world.run([&](dist::Communicator &comm) {
            std::vector<Float> data = inputs[comm.rank()];
            comm.allReduceSum(data.data(), data.size());
            out[comm.rank()] = data;
        });
        for (std::uint32_t r = 0; r < kRanks; ++r)
            ASSERT_EQ(out[r], expected) << "rank " << r;
    }
}

TEST(CommWorld, RankExceptionAbortsPeersAndRethrows)
{
    dist::CommWorld world(3);
    EXPECT_THROW(world.run([](dist::Communicator &comm) {
        if (comm.rank() == 1)
            throw std::runtime_error("rank 1 failed");
        // Peers block on a collective; the abort must wake them
        // instead of deadlocking the world.
        comm.barrier();
        comm.barrier();
    }),
                 std::runtime_error);
}

/* ----------------------------------------------------------- HaloPlan */

TEST(HaloPlan, ExchangeListsAreSymmetricAndReplicaExact)
{
    Rng rng(21);
    auto sbm = stochasticBlockModel(600, 4, 8.0, 0.85, rng);
    CsrGraph g = sbm.graph;
    g.setAggregatorWeights(Aggregator::SageMean);
    const Partition p = bfsPartition(g, 4, rng);
    const dist::HaloPlan plan = dist::HaloPlan::build(g, p);

    EXPECT_EQ(plan.totalReplicas(), nn::boundaryReplicaCount(g, p));

    EdgeId ext_edges = 0;
    for (std::uint32_t r = 0; r < 4; ++r) {
        const dist::HaloShard &s = plan.shards[r];
        ASSERT_TRUE(s.extGraph.validate());
        ASSERT_EQ(s.extGraph.numNodes(), s.numExt());
        ext_edges += s.extGraph.numEdges();
        // Halo rows are empty; local rows keep every original edge.
        for (NodeId slot = s.numLocal(); slot < s.numExt(); ++slot)
            ASSERT_EQ(s.extGraph.degree(slot), 0u);
        for (NodeId i = 0; i < s.numLocal(); ++i)
            ASSERT_EQ(s.extGraph.degree(i), g.degree(s.localGlobal[i]));
        // Send lists match the peers' halo slots, vertex for vertex.
        for (std::uint32_t d = 0; d < 4; ++d) {
            const auto &sends = s.sendRows[d];
            const auto &recvs = plan.shards[d].recvRows[r];
            ASSERT_EQ(sends.size(), recvs.size());
            for (std::size_t i = 0; i < sends.size(); ++i) {
                const NodeId send_global = s.localGlobal[sends[i]];
                const NodeId slot = recvs[i];
                const NodeId recv_global =
                    plan.shards[d]
                        .haloGlobal[slot - plan.shards[d].numLocal()];
                ASSERT_EQ(send_global, recv_global);
            }
        }
    }
    // Every original edge appears in exactly one shard's local rows.
    EXPECT_EQ(ext_edges, g.numEdges());
}

TEST(HaloPlan, DirectedStructureReplicasMatchModelCount)
{
    // Directed 0->1, 0->2 with parts {0} and {1,2}: a row reads its
    // out-neighbours, so shard 0 materialises TWO halo rows and part 1
    // none. boundaryReplicaCount must count (reader part, read vertex)
    // pairs — the per-reader-vertex count (1 here) undercounts on
    // asymmetric structure.
    const CsrGraph g =
        CsrGraph::fromEdges(3, {{0, 1}, {0, 2}}, false, false);
    Partition p;
    p.numParts = 2;
    p.assignment = {0, 1, 1};
    const dist::HaloPlan plan = dist::HaloPlan::build(g, p);
    EXPECT_EQ(plan.shards[0].haloGlobal.size(), 2u);
    EXPECT_EQ(plan.shards[1].haloGlobal.size(), 0u);
    EXPECT_EQ(plan.totalReplicas(), 2u);
    EXPECT_EQ(nn::boundaryReplicaCount(g, p), 2u);
}

/* ----------------------------------------------- ShardedTrainer setup */

nn::ModelConfig
shardedModel(nn::GnnKind kind, nn::Nonlinearity nonlin,
             const TrainingTask &task, Float dropout)
{
    nn::ModelConfig cfg;
    cfg.kind = kind;
    cfg.nonlin = nonlin;
    cfg.maxkK = 8;
    cfg.numLayers = 3;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 32;
    cfg.outDim = task.numClasses;
    cfg.dropout = dropout;
    return cfg;
}

TrainingTask
smallTask(NodeId nodes = 700)
{
    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = nodes;
    task.accuracyAvgDegree = 10.0;
    return task;
}

Partition
makeParts(const CsrGraph &g, std::uint32_t parts, std::uint64_t seed)
{
    Rng rng(seed);
    return bfsPartition(g, parts, rng);
}

/* ------------------------------------------------- acceptance checks */

TEST(Sharded, OneRankBitwiseEqualsTrainer)
{
    const TrainingTask task = smallTask();
    Rng rng(31);
    TrainingData data = materializeTrainingData(task, rng);

    nn::TrainConfig tc;
    tc.epochs = 8;
    tc.evalEvery = 2;

    for (const auto nonlin :
         {nn::Nonlinearity::MaxK, nn::Nonlinearity::Relu}) {
        const nn::ModelConfig cfg =
            shardedModel(nn::GnnKind::Sage, nonlin, task, 0.3f);

        nn::GnnModel single(cfg);
        nn::Trainer trainer(single, data, task);
        const nn::TrainResult ref = trainer.run(tc);

        Partition p1;
        p1.numParts = 1;
        p1.assignment.assign(data.graph.numNodes(), 0);
        dist::ShardedTrainer sharded(cfg, data, task, p1);
        const dist::ShardedTrainResult got = sharded.run(tc);

        // Bitwise: double == on every recorded loss and metric.
        ASSERT_EQ(got.train.trainLoss, ref.trainLoss);
        ASSERT_EQ(got.train.evalEpochs, ref.evalEpochs);
        ASSERT_EQ(got.train.valMetric, ref.valMetric);
        ASSERT_EQ(got.train.testMetric, ref.testMetric);
        ASSERT_EQ(got.train.bestValMetric, ref.bestValMetric);
        ASSERT_EQ(got.train.testAtBestVal, ref.testAtBestVal);
        ASSERT_EQ(got.train.finalTestMetric, ref.finalTestMetric);

        // The gathered logits equal a post-training single-device
        // forward, element for element.
        const Matrix &ref_logits =
            single.forward(data.graph, data.features, false);
        ASSERT_TRUE(got.finalLogits.equals(ref_logits));

        // One rank exchanges nothing.
        EXPECT_EQ(got.trainHaloBytes, 0u);
        EXPECT_EQ(got.evalHaloBytes, 0u);
    }
}

TEST(Sharded, MultiRankDeterministicAcrossRepeatsAndThreadCounts)
{
    const TrainingTask task = smallTask(500);
    Rng rng(32);
    TrainingData data = materializeTrainingData(task, rng);
    const nn::ModelConfig cfg = shardedModel(
        nn::GnnKind::Sage, nn::Nonlinearity::MaxK, task, 0.4f);
    const Partition parts = makeParts(data.graph, 4, 77);

    nn::TrainConfig tc;
    tc.epochs = 5;
    tc.evalEvery = 2;

    std::vector<double> ref_loss;
    Matrix ref_logits;
    bool first = true;
    for (const std::uint32_t threads : {1u, 4u, 1u, 4u}) {
        setDefaultThreads(threads);
        dist::ShardedTrainer sharded(cfg, data, task, parts);
        const dist::ShardedTrainResult got = sharded.run(tc);
        if (first) {
            ref_loss = got.train.trainLoss;
            ref_logits = got.finalLogits;
            first = false;
        } else {
            ASSERT_EQ(got.train.trainLoss, ref_loss)
                << "threads=" << threads;
            ASSERT_TRUE(got.finalLogits.equals(ref_logits))
                << "threads=" << threads;
        }
    }
    setDefaultThreads(0);
}

TEST(Sharded, MultiRankLossWithinTolOfSingleDevice)
{
    // Dropout off: masks are rank-local streams, so trajectory
    // comparison is only meaningful without them. What remains is pure
    // fp32 reassociation across shard boundaries (reductions +
    // halo-sorted row orders), bounded far below 1e-5 per epoch.
    const TrainingTask task = smallTask(600);
    Rng rng(33);
    TrainingData data = materializeTrainingData(task, rng);

    nn::TrainConfig tc;
    tc.epochs = 10;
    tc.evalEvery = 5;

    for (const auto kind : {nn::GnnKind::Sage, nn::GnnKind::Gcn}) {
        const nn::ModelConfig cfg =
            shardedModel(kind, nn::Nonlinearity::MaxK, task, 0.0f);

        nn::GnnModel single(cfg);
        nn::Trainer trainer(single, data, task);
        const nn::TrainResult ref = trainer.run(tc);

        for (const std::uint32_t ranks : {2u, 4u, 8u}) {
            dist::ShardedTrainer sharded(
                cfg, data, task, makeParts(data.graph, ranks, 55));
            const dist::ShardedTrainResult got = sharded.run(tc);
            ASSERT_EQ(got.train.trainLoss.size(),
                      ref.trainLoss.size());
            for (std::size_t e = 0; e < ref.trainLoss.size(); ++e)
                EXPECT_NEAR(got.train.trainLoss[e], ref.trainLoss[e],
                            1e-5)
                    << "ranks=" << ranks << " epoch=" << e;
            EXPECT_NEAR(got.train.finalTestMetric, ref.finalTestMetric,
                        0.05);
        }
    }
}

TEST(Sharded, SteadyStateEpochsAllocationFree)
{
    const TrainingTask task = smallTask(500);
    Rng rng(34);
    TrainingData data = materializeTrainingData(task, rng);

    nn::TrainConfig tc;
    tc.epochs = 6;
    tc.evalEvery = 1; // evaluate every epoch: the gather path is hot too

    for (const auto nonlin :
         {nn::Nonlinearity::MaxK, nn::Nonlinearity::Relu}) {
        const nn::ModelConfig cfg =
            shardedModel(nn::GnnKind::Sage, nonlin, task, 0.4f);
        dist::ShardedTrainer sharded(cfg, data, task,
                                     makeParts(data.graph, 4, 66));
        const dist::ShardedTrainResult got = sharded.run(tc);
        // Epochs >= 2, all ranks, forward + loss + backward +
        // allReduce + eval gather: zero Matrix/CbsrMatrix heap
        // allocations once the workspaces are warm.
        EXPECT_EQ(got.steadyStateAllocCount, 0u)
            << nn::nonlinearityName(nonlin);
    }
}

/** Manual TrainingData over an arbitrary graph (labels by index). */
TrainingData
syntheticData(CsrGraph graph, std::uint32_t classes, std::size_t dim,
              std::uint64_t seed)
{
    TrainingData data;
    data.graph = std::move(graph);
    const NodeId n = data.graph.numNodes();
    data.features.resize(n, dim);
    Rng rng(seed);
    fillNormal(data.features, rng, 0.0f, 1.0f);
    for (NodeId v = 0; v < n; ++v) {
        data.labels.push_back(v % classes);
        data.trainMask.push_back(v % 3 != 2 ? 1 : 0);
        data.valMask.push_back(v % 6 == 2 ? 1 : 0);
        data.testMask.push_back(v % 6 == 5 ? 1 : 0);
    }
    return data;
}

TrainingTask
syntheticTask(std::uint32_t classes, std::size_t dim)
{
    TrainingTask task{};
    task.info.name = "synthetic";
    task.numClasses = classes;
    task.featureDim = static_cast<std::uint32_t>(dim);
    task.multiLabel = false;
    task.metric = MetricKind::Accuracy;
    return task;
}

/**
 * The acceptance reconciliation: measured Communicator Halo bytes must
 * equal the corrected profileDistributedEpoch model exactly — per
 * training epoch (forward + backward) and per evaluation forward — and
 * MaxK models must exchange strictly fewer bytes than ReLU models.
 */
void
expectBytesMatchModel(TrainingData &data, const TrainingTask &task,
                      std::uint32_t ranks)
{
    const Partition parts = makeParts(data.graph, ranks, 44);
    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.evalEvery = 100; // evals at epoch 0 and the last epoch only

    nn::ClusterConfig cluster;
    cluster.numGpus = ranks;
    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);

    std::uint64_t maxk_bytes = 0, relu_bytes = 0;
    for (const auto nonlin :
         {nn::Nonlinearity::MaxK, nn::Nonlinearity::Relu}) {
        const nn::ModelConfig cfg =
            shardedModel(nn::GnnKind::Sage, nonlin, task, 0.2f);
        dist::ShardedTrainer sharded(cfg, data, task, parts);
        const dist::ShardedTrainResult got = sharded.run(tc);
        const auto model = nn::profileDistributedEpoch(
            cfg, data.graph, parts, cluster, opt);

        EXPECT_EQ(sharded.plan().totalReplicas(),
                  model.boundaryReplicas);
        EXPECT_EQ(got.trainHaloBytes, model.exchangedBytes * tc.epochs)
            << nn::nonlinearityName(nonlin) << " ranks=" << ranks;
        // Two eval forwards, each half of a fwd+bwd epoch's volume.
        EXPECT_EQ(got.evalHaloBytes * 2, model.exchangedBytes * 2)
            << nn::nonlinearityName(nonlin) << " ranks=" << ranks;
        (nonlin == nn::Nonlinearity::MaxK ? maxk_bytes : relu_bytes) =
            got.trainHaloBytes;
    }
    EXPECT_GT(relu_bytes, 0u);
    EXPECT_LT(maxk_bytes, relu_bytes); // the CBSR compounding win
}

TEST(Sharded, MeasuredBytesMatchModelOnGeneratorTwin)
{
    const TrainingTask task = smallTask(600);
    Rng rng(35);
    TrainingData data = materializeTrainingData(task, rng);
    expectBytesMatchModel(data, task, 3);
    expectBytesMatchModel(data, task, 5);
}

TEST(Sharded, MeasuredBytesMatchModelOnKarateFixture)
{
    const std::string path =
        std::string(MAXK_TEST_DATA_DIR) + "/karate.txt";
    formats::EdgeListOptions elopt;
    elopt.symmetrize = true;
    auto loaded = formats::loadAnyGraph(path, elopt);
    ASSERT_TRUE(loaded.hasValue()) << loaded.error().describe();
    TrainingData data = syntheticData(loaded.value(), 4, 16, 2024);
    const TrainingTask task = syntheticTask(4, 16);
    expectBytesMatchModel(data, task, 3);
}

TEST(Sharded, EmptyPartTrainsAndReconciles)
{
    // parts > naturally-seedable communities: force one empty part by
    // assigning everything to parts {0, 1} of a 3-part world; the empty
    // rank must participate in every collective without deadlock and
    // the byte reconciliation must still hold.
    Rng rng(36);
    TrainingData data =
        syntheticData(erdosRenyi(120, 700, rng), 4, 12, 7);
    const TrainingTask task = syntheticTask(4, 12);
    Partition parts;
    parts.numParts = 3;
    parts.assignment.resize(120);
    for (NodeId v = 0; v < 120; ++v)
        parts.assignment[v] = v % 2;

    const nn::ModelConfig cfg = shardedModel(
        nn::GnnKind::Gin, nn::Nonlinearity::MaxK, task, 0.2f);
    nn::TrainConfig tc;
    tc.epochs = 4;
    tc.evalEvery = 2;
    dist::ShardedTrainer sharded(cfg, data, task, parts);
    const dist::ShardedTrainResult got = sharded.run(tc);
    ASSERT_EQ(got.train.trainLoss.size(), 4u);

    nn::ClusterConfig cluster;
    cluster.numGpus = 3;
    SimOptions opt;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);
    const auto model = nn::profileDistributedEpoch(
        cfg, data.graph, parts, cluster, opt);
    EXPECT_EQ(got.trainHaloBytes, model.exchangedBytes * tc.epochs);
}

} // namespace
} // namespace maxk
