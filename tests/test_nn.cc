/**
 * @file
 * Tests for the nn primitives: Linear (including numerical gradient
 * checks), Dropout, losses (values + gradients), metrics, and
 * optimizers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "nn/dropout.hh"
#include "nn/linear.hh"
#include "nn/loss.hh"
#include "nn/metrics.hh"
#include "nn/optimizer.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

namespace maxk::nn
{
namespace
{

TEST(Linear, ForwardMatchesManualGemm)
{
    Rng rng(1);
    Linear lin(3, 2, rng, "t");
    Matrix x(4, 3);
    fillNormal(x, rng, 0.0f, 1.0f);
    Matrix y;
    lin.forward(x, y);
    Matrix expect;
    gemm(x, lin.weight().value, expect);
    addRowVector(expect, lin.bias().value);
    EXPECT_TRUE(y.approxEquals(expect, 1e-6f));
}

TEST(Linear, BiasInitZeroWeightsNonZero)
{
    Rng rng(2);
    Linear lin(5, 4, rng, "t");
    EXPECT_DOUBLE_EQ(lin.bias().value.sum(), 0.0);
    EXPECT_GT(lin.weight().value.maxAbs(), 0.0f);
}

TEST(Linear, BackwardWeightGradientNumerical)
{
    Rng rng(3);
    Linear lin(3, 2, rng, "t");
    Matrix x(5, 3);
    fillNormal(x, rng, 0.0f, 1.0f);

    // Loss = sum(y); dL/dy = ones.
    Matrix y;
    lin.forward(x, y);
    Matrix dy(5, 2, 1.0f), dx;
    lin.backward(x, dy, dx);

    const Float eps = 1e-3f;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 2; ++j) {
            Linear probe = lin;
            probe.weight().value.at(i, j) += eps;
            Matrix yp;
            probe.forward(x, yp);
            const double numeric = (yp.sum() - y.sum()) / eps;
            EXPECT_NEAR(lin.weight().grad.at(i, j), numeric, 2e-2)
                << i << "," << j;
        }
}

TEST(Linear, BackwardInputGradientNumerical)
{
    Rng rng(4);
    Linear lin(3, 2, rng, "t");
    Matrix x(2, 3);
    fillNormal(x, rng, 0.0f, 1.0f);
    Matrix y;
    lin.forward(x, y);
    Matrix dy(2, 2, 1.0f), dx;
    lin.backward(x, dy, dx);

    const Float eps = 1e-3f;
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c) {
            Matrix xp = x;
            xp.at(r, c) += eps;
            Matrix yp;
            lin.forward(xp, yp);
            const double numeric = (yp.sum() - y.sum()) / eps;
            EXPECT_NEAR(dx.at(r, c), numeric, 2e-2);
        }
}

TEST(Linear, BiasGradientIsColumnSum)
{
    Rng rng(5);
    Linear lin(2, 3, rng, "t");
    Matrix x(4, 2);
    fillNormal(x, rng, 0.0f, 1.0f);
    Matrix dy(4, 3);
    fillNormal(dy, rng, 0.0f, 1.0f);
    Matrix dx;
    lin.backward(x, dy, dx);
    Matrix expect;
    columnSums(dy, expect);
    EXPECT_TRUE(lin.bias().grad.approxEquals(expect, 1e-5f));
}

TEST(Linear, GradientsAccumulateAcrossCalls)
{
    Rng rng(6);
    Linear lin(2, 2, rng, "t");
    Matrix x(1, 2, 1.0f), dy(1, 2, 1.0f), dx;
    lin.backward(x, dy, dx);
    const Matrix first = lin.weight().grad;
    lin.backward(x, dy, dx);
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_NEAR(lin.weight().grad.data()[i], 2.0f * first.data()[i],
                    1e-6f);
}

TEST(Dropout, EvalModePassesThrough)
{
    Rng rng(7);
    Dropout drop(0.5f);
    Matrix x(3, 3, 2.0f), y;
    drop.forward(x, y, false, rng);
    EXPECT_TRUE(y.equals(x));
}

TEST(Dropout, ZeroRateIsIdentityEvenTraining)
{
    Rng rng(8);
    Dropout drop(0.0f);
    Matrix x(2, 2, 1.5f), y;
    drop.forward(x, y, true, rng);
    EXPECT_TRUE(y.equals(x));
}

TEST(Dropout, TrainingDropsAndRescales)
{
    Rng rng(9);
    Dropout drop(0.5f);
    Matrix x(100, 100, 1.0f), y;
    drop.forward(x, y, true, rng);
    std::size_t zeros = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        if (y.data()[i] == 0.0f)
            ++zeros;
        else
            ASSERT_NEAR(y.data()[i], 2.0f, 1e-6f); // 1/(1-0.5)
    }
    EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.5, 0.03);
    // Expectation preserved.
    EXPECT_NEAR(y.sum() / y.size(), 1.0, 0.06);
}

TEST(Dropout, BackwardUsesSameMask)
{
    Rng rng(10);
    Dropout drop(0.3f);
    Matrix x(10, 10, 1.0f), y;
    drop.forward(x, y, true, rng);
    Matrix dy(10, 10, 1.0f), dx;
    drop.backward(dy, dx);
    for (std::size_t i = 0; i < y.size(); ++i) {
        if (y.data()[i] == 0.0f)
            ASSERT_EQ(dx.data()[i], 0.0f);
        else
            ASSERT_NEAR(dx.data()[i], 1.0f / 0.7f, 1e-5f);
    }
}

TEST(SoftmaxCe, UniformLogitsGiveLogC)
{
    Matrix logits(4, 8); // all zeros -> uniform distribution
    std::vector<std::uint32_t> labels{0, 1, 2, 3};
    std::vector<std::uint8_t> mask{1, 1, 1, 1};
    const LossResult r = softmaxCrossEntropy(logits, labels, mask);
    EXPECT_NEAR(r.loss, std::log(8.0), 1e-5);
}

TEST(SoftmaxCe, MaskedRowsGetZeroGradient)
{
    Matrix logits(3, 4);
    logits.at(0, 1) = 2.0f;
    std::vector<std::uint32_t> labels{1, 0, 2};
    std::vector<std::uint8_t> mask{1, 0, 1};
    const LossResult r = softmaxCrossEntropy(logits, labels, mask);
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_EQ(r.gradLogits.at(1, c), 0.0f);
}

TEST(SoftmaxCe, GradientRowsSumToZero)
{
    Rng rng(11);
    Matrix logits(5, 6);
    fillNormal(logits, rng, 0.0f, 1.0f);
    std::vector<std::uint32_t> labels{0, 1, 2, 3, 4};
    std::vector<std::uint8_t> mask{1, 1, 1, 1, 1};
    const LossResult r = softmaxCrossEntropy(logits, labels, mask);
    for (std::size_t row = 0; row < 5; ++row) {
        double s = 0.0;
        for (std::size_t c = 0; c < 6; ++c)
            s += r.gradLogits.at(row, c);
        EXPECT_NEAR(s, 0.0, 1e-6);
    }
}

TEST(SoftmaxCe, GradientNumericalCheck)
{
    Rng rng(12);
    Matrix logits(2, 3);
    fillNormal(logits, rng, 0.0f, 1.0f);
    std::vector<std::uint32_t> labels{2, 0};
    std::vector<std::uint8_t> mask{1, 1};
    const LossResult r = softmaxCrossEntropy(logits, labels, mask);
    const Float eps = 1e-3f;
    for (std::size_t row = 0; row < 2; ++row)
        for (std::size_t c = 0; c < 3; ++c) {
            Matrix probe = logits;
            probe.at(row, c) += eps;
            const double lp =
                softmaxCrossEntropy(probe, labels, mask).loss;
            EXPECT_NEAR(r.gradLogits.at(row, c), (lp - r.loss) / eps,
                        5e-3);
        }
}

TEST(Bce, KnownValueAtZeroLogits)
{
    Matrix logits(1, 2); // zeros -> p = 0.5
    Matrix targets(1, 2);
    targets.at(0, 0) = 1.0f;
    std::vector<std::uint8_t> mask{1};
    const LossResult r = sigmoidBce(logits, targets, mask);
    EXPECT_NEAR(r.loss, std::log(2.0), 1e-5);
}

TEST(Bce, GradientNumericalCheck)
{
    Rng rng(13);
    Matrix logits(2, 3);
    fillNormal(logits, rng, 0.0f, 1.0f);
    Matrix targets(2, 3);
    targets.at(0, 1) = 1.0f;
    targets.at(1, 2) = 1.0f;
    std::vector<std::uint8_t> mask{1, 1};
    const LossResult r = sigmoidBce(logits, targets, mask);
    const Float eps = 1e-3f;
    for (std::size_t row = 0; row < 2; ++row)
        for (std::size_t c = 0; c < 3; ++c) {
            Matrix probe = logits;
            probe.at(row, c) += eps;
            const double lp = sigmoidBce(probe, targets, mask).loss;
            EXPECT_NEAR(r.gradLogits.at(row, c), (lp - r.loss) / eps,
                        5e-3);
        }
}

TEST(Bce, MultiLabelTargetsSetTwoBits)
{
    std::vector<std::uint32_t> labels{0, 5, 15};
    const Matrix t = multiLabelTargets(labels, 16);
    EXPECT_EQ(t.at(0, 0), 1.0f);
    EXPECT_EQ(t.at(0, 1), 1.0f);
    EXPECT_EQ(t.at(1, 5), 1.0f);
    EXPECT_EQ(t.at(1, 6), 1.0f);
    EXPECT_EQ(t.at(2, 15), 1.0f);
    EXPECT_EQ(t.at(2, 0), 1.0f); // wraps around
    EXPECT_DOUBLE_EQ(t.sum(), 6.0);
}

TEST(Metrics, AccuracySimpleCases)
{
    Matrix logits(3, 2);
    logits.at(0, 1) = 1.0f; // predict 1
    logits.at(1, 0) = 1.0f; // predict 0
    logits.at(2, 1) = 1.0f; // predict 1
    std::vector<std::uint32_t> labels{1, 0, 0};
    std::vector<std::uint8_t> mask{1, 1, 1};
    EXPECT_NEAR(accuracy(logits, labels, mask), 2.0 / 3.0, 1e-9);
    std::vector<std::uint8_t> partial{1, 1, 0};
    EXPECT_NEAR(accuracy(logits, labels, partial), 1.0, 1e-9);
}

TEST(Metrics, MicroF1PerfectAndWorst)
{
    Matrix logits(2, 2);
    logits.at(0, 0) = 5.0f;
    logits.at(1, 1) = 5.0f;
    logits.at(0, 1) = -5.0f;
    logits.at(1, 0) = -5.0f;
    Matrix targets(2, 2);
    targets.at(0, 0) = 1.0f;
    targets.at(1, 1) = 1.0f;
    std::vector<std::uint8_t> mask{1, 1};
    EXPECT_NEAR(microF1(logits, targets, mask), 1.0, 1e-9);

    Matrix inverted(2, 2);
    inverted.at(0, 1) = 5.0f;
    inverted.at(1, 0) = 5.0f;
    inverted.at(0, 0) = -5.0f;
    inverted.at(1, 1) = -5.0f;
    EXPECT_NEAR(microF1(inverted, targets, mask), 0.0, 1e-9);
}

TEST(Metrics, RocAucPerfectRankingIsOne)
{
    Matrix logits(4, 1);
    logits.at(0, 0) = 0.9f;
    logits.at(1, 0) = 0.8f;
    logits.at(2, 0) = 0.2f;
    logits.at(3, 0) = 0.1f;
    Matrix targets(4, 1);
    targets.at(0, 0) = 1.0f;
    targets.at(1, 0) = 1.0f;
    std::vector<std::uint8_t> mask{1, 1, 1, 1};
    EXPECT_NEAR(rocAuc(logits, targets, mask), 1.0, 1e-9);
}

TEST(Metrics, RocAucRandomScoresNearHalf)
{
    Rng rng(14);
    Matrix logits(2000, 1);
    Matrix targets(2000, 1);
    std::vector<std::uint8_t> mask(2000, 1);
    for (int i = 0; i < 2000; ++i) {
        logits.at(i, 0) = rng.normal();
        targets.at(i, 0) = rng.bernoulli(0.5f) ? 1.0f : 0.0f;
    }
    EXPECT_NEAR(rocAuc(logits, targets, mask), 0.5, 0.05);
}

TEST(Metrics, RocAucHandlesTiedScores)
{
    Matrix logits(4, 1); // all equal
    Matrix targets(4, 1);
    targets.at(0, 0) = 1.0f;
    targets.at(1, 0) = 1.0f;
    std::vector<std::uint8_t> mask{1, 1, 1, 1};
    EXPECT_NEAR(rocAuc(logits, targets, mask), 0.5, 1e-9);
}

TEST(Adam, MinimisesQuadratic)
{
    // Minimise f(w) = sum (w - 3)^2.
    Param p;
    p.name = "w";
    p.value.resize(1, 4);
    p.resetGrad();
    Adam adam({&p}, 0.1f);
    for (int it = 0; it < 500; ++it) {
        for (std::size_t i = 0; i < 4; ++i)
            p.grad.data()[i] = 2.0f * (p.value.data()[i] - 3.0f);
        adam.step();
    }
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(p.value.data()[i], 3.0f, 1e-2f);
}

TEST(Adam, StepZeroesGradients)
{
    Param p;
    p.value.resize(1, 2);
    p.resetGrad();
    p.grad.at(0, 0) = 1.0f;
    Adam adam({&p}, 0.01f);
    adam.step();
    EXPECT_EQ(p.grad.at(0, 0), 0.0f);
}

TEST(Adam, WeightDecayShrinksWeights)
{
    Param p;
    p.value.resize(1, 1);
    p.value.fill(10.0f);
    p.resetGrad();
    Adam adam({&p}, 0.1f, 0.9f, 0.999f, 1e-8f, 1.0f);
    for (int i = 0; i < 200; ++i)
        adam.step(); // gradient is pure decay
    EXPECT_LT(std::fabs(p.value.at(0, 0)), 1.0f);
}

TEST(Sgd, TakesPlainSteps)
{
    Param p;
    p.value.resize(1, 1);
    p.value.fill(1.0f);
    p.resetGrad();
    p.grad.at(0, 0) = 0.5f;
    Sgd sgd({&p}, 0.2f);
    sgd.step();
    EXPECT_NEAR(p.value.at(0, 0), 0.9f, 1e-6f);
    EXPECT_EQ(p.grad.at(0, 0), 0.0f);
}

} // namespace
} // namespace maxk::nn
