/**
 * @file
 * Mini-batch sampling pipeline bench (ISSUE 6): exercises the
 * NeighborSampler -> MinibatchExtractor -> SampledTrainer stack end to
 * end and emits deterministic maxk-perf-v1 records gated by
 * tools/maxk-perf-check against bench/baselines/sampler.json.
 *
 * Every reported number is structural — sampled node/edge totals,
 * gathered bytes, and the elementwise cost model applied to them —
 * never wall time, so records are identical on every machine, thread
 * count, and pipeline mode. The bench also re-runs each configuration
 * synchronously (--no-pipeline equivalent) and fails hard if the
 * trajectories are not bitwise-identical to the pipelined run: the
 * determinism contract is enforced on every perf-gate run, not only in
 * the unit suites. alloc_count carries the steady-state allocation
 * count, pinned at 0 by the committed baseline.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "kernels/gemm_cost.hh"
#include "nn/model.hh"
#include "sample/sampled_trainer.hh"

using namespace maxk;

namespace
{

constexpr const char *kBench = "bench_sampler";

struct SweepPoint
{
    std::string name;
    std::vector<std::uint32_t> fanouts;
    std::uint32_t batchSize;
};

nn::ModelConfig
modelFor(const TrainingTask &task, std::uint32_t layers)
{
    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nn::Nonlinearity::MaxK;
    cfg.maxkK = 16;
    cfg.numLayers = layers;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 64;
    cfg.outDim = task.numClasses;
    cfg.dropout = 0.3f;
    return cfg;
}

sample::SampledTrainResult
runOnce(const TrainingTask &task, TrainingData &data,
        const SweepPoint &point, bool pipelined)
{
    const nn::ModelConfig cfg =
        modelFor(task, static_cast<std::uint32_t>(point.fanouts.size()));
    nn::GnnModel model(cfg);
    sample::SamplerConfig scfg;
    scfg.fanouts = point.fanouts;
    scfg.batchSize = point.batchSize;
    scfg.seed = 909;
    sample::SampledTrainer trainer(model, data, task, scfg);

    sample::SampledTrainConfig tc;
    tc.epochs = 4;
    tc.evalEvery = 2;
    tc.pipeline = pipelined;
    tc.queueDepth = 2;
    return trainer.run(tc);
}

bool
bitwiseEqual(const sample::SampledTrainResult &a,
             const sample::SampledTrainResult &b)
{
    return a.trainLoss == b.trainLoss && a.valMetric == b.valMetric &&
           a.testMetric == b.testMetric &&
           a.finalLogits.equals(b.finalLogits) &&
           a.batchesTrained == b.batchesTrained &&
           a.sampledNodes == b.sampledNodes &&
           a.sampledEdges == b.sampledEdges;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Mini-batch sampling pipeline: deterministic fanout "
                  "sampling + pipelined training");

    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = 600;
    task.accuracyAvgDegree = 10.0;
    Rng rng(606);
    TrainingData data = materializeTrainingData(task, rng);
    const std::size_t feat_dim = data.features.cols();

    const auto device = gpusim::DeviceConfig::a100();

    std::vector<SweepPoint> sweep{
        {"f4x4/b64", {4, 4}, 64},
        {"f8x8/b64", {8, 8}, 64},
        {"f8x8/b256", {8, 8}, 256},
    };
    bench::smokeShrink(sweep);

    TextTable table({"config", "batches", "nodes/batch", "smp nodes",
                     "smp edges", "steady allocs", "piped==sync",
                     "final acc"});
    for (const SweepPoint &point : sweep) {
        const sample::SampledTrainResult piped =
            runOnce(task, data, point, true);
        const sample::SampledTrainResult sync =
            runOnce(task, data, point, false);
        const bool equal = bitwiseEqual(piped, sync);
        if (!equal)
            fatal("bench_sampler: pipelined run diverged from the "
                  "synchronous run on " + point.name);

        const double nodes_per_batch =
            static_cast<double>(piped.sampledNodes) /
            static_cast<double>(piped.batchesTrained);
        table.addRow({point.name,
                      std::to_string(piped.batchesTrained),
                      formatFloat(nodes_per_batch, 1),
                      std::to_string(piped.sampledNodes),
                      std::to_string(piped.sampledEdges),
                      std::to_string(piped.steadyStateAllocCount),
                      equal ? "yes" : "NO",
                      formatFloat(piped.finalTestMetric, 3)});

        if (bench::perfEnabled()) {
            // Structural costs only: gather traffic = feature rows
            // copied; sampling touches one edge record per sampled
            // edge. The elementwise model converts element counts to
            // simulated seconds; nothing here reads a clock.
            bench::PerfRecord smp;
            smp.bench = kBench;
            smp.kernel = "sample+extract";
            smp.graph = task.info.name + "-acc/" + point.name;
            smp.dim = static_cast<std::uint32_t>(feat_dim);
            smp.k = point.fanouts.front();
            smp.simSeconds = elementwiseSimSeconds(
                piped.sampledNodes * feat_dim + piped.sampledEdges,
                device);
            smp.dramBytes =
                piped.sampledNodes * feat_dim * sizeof(Float);
            smp.l2ReqBytes =
                piped.sampledEdges * (sizeof(NodeId) + sizeof(Float));
            smp.peakWorkspaceBytes = 0;
            smp.allocCount = piped.steadyStateAllocCount;
            bench::perfRecords().push_back(smp);

            bench::PerfRecord train;
            train.bench = kBench;
            train.kernel = "train-minibatch";
            train.graph = smp.graph;
            train.dim = 64; // hidden width
            train.k = 16;   // model maxkK
            train.simSeconds = elementwiseSimSeconds(
                piped.sampledNodes * 64, device);
            train.dramBytes = piped.sampledEdges;
            train.l2ReqBytes = piped.batchesTrained;
            train.peakWorkspaceBytes = 0;
            train.allocCount = piped.steadyStateAllocCount;
            bench::perfRecords().push_back(train);
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Takeaways: keyed per-(epoch,batch,vertex) streams make every "
        "sampled minibatch\nbitwise-reproducible at any thread count; "
        "the bounded-queue pipeline overlaps\nsampling with training "
        "without perturbing the trajectory; steady-state epochs\n"
        "allocate nothing thanks to capacity-padded slot workspaces.\n");
    bench::writePerfReport();
    return 0;
}
