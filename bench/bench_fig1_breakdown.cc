/**
 * @file
 * Fig. 1 reproduction: latency breakdown of full-batch GraphSAGE
 * training on the ogbn-proteins twin (3 layers, hidden 256). The paper
 * measures SpMM at 83.6% of epoch time on an A100; this bench
 * recomputes the same decomposition with the simulated kernels.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "nn/trainer.hh"

using namespace maxk;

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Fig. 1: GraphSAGE training time breakdown on "
                  "ogbn-proteins (ReLU baseline)");

    const auto info = *findDataset("ogbn-proteins");
    bench::TwinBundle twin =
        bench::makeTwin(info, 256, Aggregator::SageMean);

    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nn::Nonlinearity::Relu;
    cfg.numLayers = 3;
    cfg.inDim = 128; // ogbn-proteins has 8-dim edge feats; node feats
                     // are aggregated to ~128 in the DGL pipeline
    cfg.hiddenDim = 256;
    cfg.outDim = 112;

    const nn::EpochTiming t =
        nn::profileEpoch(cfg, twin.graph, twin.part, twin.opt);

    const double total = t.total();
    TextTable table({"Stage", "sim time/epoch (ms)", "share",
                     "paper share"});
    table.addRow({"SpMM (fwd+bwd aggregation)",
                  formatFloat((t.aggFwd + t.aggBwd) * 1e3, 3),
                  formatFloat(t.aggFraction() * 100.0, 1) + "%",
                  "83.6%"});
    table.addRow({"Linear layers", formatFloat(t.linear * 1e3, 3),
                  formatFloat(t.linear / total * 100.0, 1) + "%",
                  "3.7%"});
    table.addRow({"Others (ReLU, loss, optim)",
                  formatFloat((t.nonlin + t.other) * 1e3, 3),
                  formatFloat((t.nonlin + t.other) / total * 100.0, 1) +
                      "%",
                  "12.7%"});
    table.addRow({"Total", formatFloat(total * 1e3, 3), "100%", "100%"});
    std::printf("%s\n", table.render().c_str());

    std::printf("Amdahl speedup limit from this profile: %.2fx "
                "(paper derives 5-7x on such graphs)\n",
                1.0 / (1.0 - t.aggFraction()));
    std::printf("Twin: %u nodes, %u edges (paper: %llu nodes, %llu "
                "edges; times scale ~linearly with nnz)\n",
                twin.graph.numNodes(), twin.graph.numEdges(),
                static_cast<unsigned long long>(info.paperNodes),
                static_cast<unsigned long long>(info.paperEdges));

    // With --metrics-json the telemetry is armed, so profileEpoch also
    // published the Fig. 1 buckets as profile.*.sim_ns counters; the
    // snapshot makes the table above machine-checkable.
    bench::writeMetricsReport();
    return 0;
}
