/**
 * @file
 * Checkpoint write/restore bench (ISSUE 9): snapshots a live
 * model+optimizer state through the trainer section mapping
 * (nn::writeModelState) into a rotated CheckpointStore, then restores
 * it into a warm twin model, and pins the subsystem's perf contract:
 *
 *  - steady-state saves perform ZERO tracked (Matrix/CBSR) heap
 *    allocations and ZERO transient workspace growth — section buffers
 *    and the encode scratch are reused after the first save;
 *  - restore cost is pinned, not zero: resume is a one-time path that
 *    allocates the Adam moment temporaries by design, and the gate
 *    keeps that count from creeping;
 *  - the restored state is bitwise the saved one, and rotation keeps
 *    exactly keep-last-N images on disk.
 *
 * All reported numbers are structural (image bytes, section counts,
 * allocation counters) or derived from them through a fixed modeled
 * write bandwidth — never wall time — so the maxk-perf-v1 records are
 * identical on every machine and thread count, and tools/maxk-perf-check
 * gates them against bench/baselines/checkpoint.json.
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "graph/formats/checkpoint.hh"
#include "nn/checkpoint.hh"
#include "nn/model.hh"
#include "nn/optimizer.hh"
#include "nn/trainer.hh"

using namespace maxk;

namespace
{

constexpr const char *kBench = "bench_checkpoint";

/** Modeled sequential checkpoint-device bandwidth (bytes/simsec). A
 *  fixed constant: simSeconds stays a pure function of image bytes. */
constexpr double kModelWriteBytesPerSec = 12.8e9;

/** One deterministic optimizer step on synthetic gradients: moves the
 *  parameters and the Adam moments so successive snapshots persist
 *  genuinely different, realistic state. */
void
syntheticStep(nn::ParamRefs &params, nn::Adam &adam, Rng &rng)
{
    for (nn::Param *p : params) {
        p->resetGrad();
        Float *g = p->grad.data();
        const std::size_t n = p->grad.rows() * p->grad.cols();
        for (std::size_t i = 0; i < n; ++i)
            g[i] = static_cast<Float>(rng.normal()) * 0.1f;
    }
    adam.step();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Checkpoint/restore: rotated sectioned images, "
                  "allocation-free steady state");

    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = 400;
    task.accuracyAvgDegree = 8.0;

    nn::ModelConfig mcfg;
    mcfg.kind = nn::GnnKind::Sage;
    mcfg.nonlin = nn::Nonlinearity::MaxK;
    mcfg.maxkK = 16;
    mcfg.numLayers = 2;
    mcfg.inDim = task.featureDim;
    mcfg.hiddenDim = 64;
    mcfg.outDim = task.numClasses;
    mcfg.dropout = 0.1f;

    nn::GnnModel model(mcfg);
    nn::ParamRefs params = model.params();
    nn::Adam adam(params);
    Rng grad_rng(515);
    nn::TrainResult traj;
    traj.trainLoss = {1.9, 1.7, 1.5};
    traj.valMetric = {0.3, 0.4};
    traj.testMetric = {0.29, 0.41};
    traj.evalEpochs = {0, 2};

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "maxk-bench-ckpt";
    std::filesystem::remove_all(dir);
    const formats::CheckpointStore store(dir.string(), "bench", 4);

    formats::Checkpoint ck;
    auto snapshot = [&](std::uint64_t epoch) {
        nn::writeModelState(ck, model, adam);
        nn::writeTrajectories(ck, traj);
        ck.setU64("epoch", epoch);
    };
    auto save = [&](std::uint64_t epoch) {
        auto saved = store.save(ck, epoch);
        if (!saved.hasValue())
            fatal("bench_checkpoint: save failed: " +
                  saved.error().describe());
    };

    // Warm-up save: allocates the section buffers and encode scratch.
    syntheticStep(params, adam, grad_rng);
    snapshot(0);
    save(0);
    const std::uint64_t image_bytes = ck.encodedBytes();

    // Steady state: every later save must reuse that storage.
    const std::uint64_t saves = bench::fastMode() ? 4 : 16;
    const std::uint64_t live_before = AllocProbe::liveBytes();
    const std::uint64_t allocs_before = AllocProbe::totalAllocCount();
    AllocProbe::resetPeak();
    for (std::uint64_t e = 1; e <= saves; ++e) {
        syntheticStep(params, adam, grad_rng);
        snapshot(e);
        save(e);
    }
    const std::uint64_t save_allocs =
        AllocProbe::totalAllocCount() - allocs_before;
    const std::uint64_t save_peak_bytes =
        AllocProbe::peakBytes() > live_before
            ? AllocProbe::peakBytes() - live_before
            : 0;
    if (save_allocs != 0)
        fatal("bench_checkpoint: steady-state saves performed " +
              std::to_string(save_allocs) +
              " tracked allocations (contract: 0 after the first save)");

    // Rotation: keep-last-4 means exactly 4 images survive 17 saves.
    const std::vector<std::uint64_t> on_disk = store.epochsOnDisk();
    if (on_disk.size() != 4 || on_disk.back() != saves)
        fatal("bench_checkpoint: rotation kept " +
              std::to_string(on_disk.size()) +
              " images (expected the newest 4)");

    // Restore into a warm twin. Resume is a one-time path and allocates
    // moment temporaries by design (Adam owns its state); the gate pins
    // the measured per-restore count instead of demanding zero.
    nn::GnnModel twin(mcfg);
    nn::Adam twin_adam(twin.params());
    auto restore_once = [&]() -> std::uint64_t {
        auto loaded = store.loadLatest();
        if (!loaded.hasValue())
            fatal("bench_checkpoint: loadLatest failed: " +
                  loaded.error().describe());
        auto restored =
            nn::readModelState(loaded.value().checkpoint, twin, twin_adam);
        if (!restored.hasValue())
            fatal("bench_checkpoint: readModelState failed: " +
                  restored.error().describe());
        return loaded.value().epoch;
    };
    restore_once(); // warm-up restore
    const std::uint64_t restores = bench::fastMode() ? 4 : 16;
    const std::uint64_t restore_allocs_before =
        AllocProbe::totalAllocCount();
    std::uint64_t latest_epoch = 0;
    for (std::uint64_t i = 0; i < restores; ++i)
        latest_epoch = restore_once();
    const std::uint64_t restore_allocs =
        AllocProbe::totalAllocCount() - restore_allocs_before;
    if (latest_epoch != saves)
        fatal("bench_checkpoint: restored epoch " +
              std::to_string(latest_epoch) + ", expected " +
              std::to_string(saves));

    // Bitwise fidelity: the twin now IS the saved state.
    nn::ParamRefs twin_params = twin.params();
    for (std::size_t i = 0; i < params.size(); ++i)
        if (!params[i]->value.equals(twin_params[i]->value))
            fatal("bench_checkpoint: restored parameter " +
                  params[i]->name + " diverged bitwise");
    if (twin_adam.stepCount() != adam.stepCount())
        fatal("bench_checkpoint: restored Adam step count diverged");
    for (std::size_t i = 0; i < adam.firstMoments().size(); ++i)
        if (!adam.firstMoments()[i].equals(twin_adam.firstMoments()[i]) ||
            !adam.secondMoments()[i].equals(
                twin_adam.secondMoments()[i]))
            fatal("bench_checkpoint: restored Adam moments diverged");

    TextTable table({"metric", "value"});
    table.addRow({"image bytes", std::to_string(image_bytes)});
    table.addRow({"sections", std::to_string(ck.sectionCount())});
    table.addRow({"steady saves", std::to_string(saves)});
    table.addRow({"save tracked allocs", std::to_string(save_allocs)});
    table.addRow({"save peak workspace",
                  std::to_string(save_peak_bytes)});
    table.addRow({"steady restores", std::to_string(restores)});
    table.addRow({"restore tracked allocs",
                  std::to_string(restore_allocs)});
    table.addRow({"images on disk (keep 4)",
                  std::to_string(on_disk.size())});
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Takeaways: a full model+Adam+trajectory image is %llu bytes "
        "across %zu checksummed\nsections; steady-state saves are "
        "allocation-free (section buffers and encode\nscratch reused — "
        "enforced above), rotation bounds disk to keep-last-N, restore\n"
        "pays a fixed one-time moment-temporary cost, and the restored "
        "state is bitwise\nthe saved one (enforced above).\n",
        static_cast<unsigned long long>(image_bytes),
        ck.sectionCount());

    if (bench::perfEnabled()) {
        bench::PerfRecord wr;
        wr.bench = kBench;
        wr.kernel = "ckpt-save/steady";
        wr.graph = task.info.name + "-acc";
        wr.dim = static_cast<std::uint32_t>(mcfg.hiddenDim);
        wr.k = mcfg.maxkK;
        wr.simSeconds = static_cast<double>(image_bytes) * saves /
                        kModelWriteBytesPerSec;
        wr.dramBytes = image_bytes;
        wr.l2ReqBytes = image_bytes * saves;
        wr.peakWorkspaceBytes = save_peak_bytes;
        wr.allocCount = save_allocs;
        bench::perfRecords().push_back(wr);

        bench::PerfRecord rd;
        rd.bench = kBench;
        rd.kernel = "ckpt-restore/steady";
        rd.graph = wr.graph;
        rd.dim = wr.dim;
        rd.k = wr.k;
        rd.simSeconds = static_cast<double>(image_bytes) * restores /
                        kModelWriteBytesPerSec;
        rd.dramBytes = image_bytes;
        rd.l2ReqBytes = image_bytes * restores;
        rd.peakWorkspaceBytes = 0;
        rd.allocCount = restore_allocs;
        bench::perfRecords().push_back(rd);
    }
    bench::writePerfReport();
    std::filesystem::remove_all(dir);
    return 0;
}
