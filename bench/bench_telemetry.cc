/**
 * @file
 * Telemetry overhead gate (ISSUE 10): proves the two contracts the
 * observability layer makes, and pins them in CI via the maxk-perf-v1
 * baseline (bench/baselines/telemetry.json):
 *
 *  - Bitwise neutrality: the armed run is bitwise-identical to the
 *    disarmed run. Checked in-process (fatal on divergence) for the
 *    simulated epoch profile, the full-batch trainer trajectories, and
 *    the pipelined mini-batch trajectories + final logits; pinned in
 *    the baseline as armed-vs-disarmed sim_seconds records that must
 *    stay equal.
 *  - Zero steady-state allocations while armed: spans and counters
 *    reuse their buffers, so the sampled trainer's AllocProbe-measured
 *    steady state stays 0 tracked allocations with telemetry on
 *    (alloc_count is an exact gate — baseline 0 means forever 0).
 *
 * All reported numbers are simulated or structural — never wall time —
 * so the records are identical on every machine and thread count.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "common/telemetry.hh"
#include "nn/model.hh"
#include "nn/trainer.hh"
#include "sample/sampled_trainer.hh"

using namespace maxk;

namespace
{

constexpr const char *kBench = "bench_telemetry";

TrainingTask
accuracyTask()
{
    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = 400;
    task.accuracyAvgDegree = 8.0;
    return task;
}

nn::ModelConfig
accuracyModel(const TrainingTask &task)
{
    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nn::Nonlinearity::MaxK;
    cfg.maxkK = 8;
    cfg.numLayers = 2;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 32;
    cfg.outDim = task.numClasses;
    cfg.dropout = 0.2f;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Telemetry gate: armed == disarmed (bitwise), "
                  "armed steady state allocation-free");

    /* ---- 1. Simulated epoch profile, armed vs disarmed ---- */

    const auto info = *findDataset("Flickr");
    bench::TwinBundle twin =
        bench::makeTwin(info, 64, Aggregator::SageMean);
    nn::ModelConfig pcfg;
    pcfg.kind = nn::GnnKind::Sage;
    pcfg.nonlin = nn::Nonlinearity::MaxK;
    pcfg.maxkK = 16;
    pcfg.numLayers = 3;
    pcfg.inDim = 64;
    pcfg.hiddenDim = 64;
    pcfg.outDim = 7;

    const nn::EpochTiming t_off =
        nn::profileEpoch(pcfg, twin.graph, twin.part, twin.opt);
    nn::EpochTiming t_on;
    {
        telemetry::ArmGuard arm(true);
        t_on = nn::profileEpoch(pcfg, twin.graph, twin.part, twin.opt);
    }
    if (t_on.total() != t_off.total() || t_on.aggFwd != t_off.aggFwd ||
        t_on.aggBwd != t_off.aggBwd || t_on.linear != t_off.linear ||
        t_on.nonlin != t_off.nonlin || t_on.other != t_off.other)
        fatal("bench_telemetry: armed profileEpoch diverged from "
              "disarmed (telemetry steered the numerics)");

    /* ---- 2. Full-batch trainer trajectories, armed vs disarmed ---- */

    const TrainingTask task = accuracyTask();
    Rng rng(71);
    TrainingData data = materializeTrainingData(task, rng);
    const nn::ModelConfig mcfg = accuracyModel(task);

    nn::TrainConfig tc;
    tc.epochs = bench::fastMode() ? 4 : 8;
    tc.evalEvery = 2;

    nn::TrainResult full_off;
    {
        nn::GnnModel model(mcfg);
        nn::Trainer trainer(model, data, task);
        full_off = trainer.run(tc);
    }
    nn::TrainResult full_on;
    {
        tc.telemetry = true;
        nn::GnnModel model(mcfg);
        nn::Trainer trainer(model, data, task);
        full_on = trainer.run(tc);
        tc.telemetry = false;
    }
    if (full_on.trainLoss != full_off.trainLoss ||
        full_on.valMetric != full_off.valMetric ||
        full_on.testMetric != full_off.testMetric)
        fatal("bench_telemetry: armed full-batch trajectories diverged "
              "bitwise from disarmed");

    /* ---- 3. Pipelined mini-batch run, armed vs disarmed ---- */

    sample::SamplerConfig scfg;
    scfg.fanouts = {6, 6};
    scfg.batchSize = 64;
    scfg.seed = 909;

    sample::SampledTrainConfig stc;
    stc.epochs = bench::fastMode() ? 3 : 5;
    stc.evalEvery = 2;
    stc.pipeline = true;
    stc.queueDepth = 2;

    sample::SampledTrainResult samp_off;
    {
        nn::GnnModel model(mcfg);
        sample::SampledTrainer trainer(model, data, task, scfg);
        samp_off = trainer.run(stc);
    }
    sample::SampledTrainResult samp_on;
    {
        stc.telemetry = true;
        nn::GnnModel model(mcfg);
        sample::SampledTrainer trainer(model, data, task, scfg);
        samp_on = trainer.run(stc);
    }
    if (samp_on.trainLoss != samp_off.trainLoss ||
        samp_on.valMetric != samp_off.valMetric ||
        !samp_on.finalLogits.equals(samp_off.finalLogits))
        fatal("bench_telemetry: armed mini-batch run diverged bitwise "
              "from disarmed");
    if (samp_on.steadyStateAllocCount != 0)
        fatal("bench_telemetry: armed steady-state epochs performed " +
              std::to_string(samp_on.steadyStateAllocCount) +
              " tracked allocations (contract: 0 — telemetry buffers "
              "must be warm after epoch 1)");

    TextTable table({"check", "result"});
    table.addRow({"profileEpoch armed == disarmed",
                  formatFloat(t_on.total() * 1e3, 3) + " ms (equal)"});
    table.addRow({"full-batch trajectories", "bitwise-equal"});
    table.addRow({"mini-batch trajectories + logits", "bitwise-equal"});
    table.addRow({"armed steady-state allocs",
                  std::to_string(samp_on.steadyStateAllocCount)});
    std::printf("%s\n", table.render().c_str());
    std::printf("Takeaway: arming telemetry changes nothing the "
                "numerics can see — identical simulated\ntimings, "
                "identical training trajectories, and no steady-state "
                "allocations. The\ndisarmed cost at every site is one "
                "relaxed load plus one branch.\n");

    if (bench::perfEnabled()) {
        auto record = [&](const char *kernel, double sim_seconds,
                          std::uint64_t dram, std::uint64_t l2,
                          std::uint64_t allocs) {
            bench::PerfRecord r;
            r.bench = kBench;
            r.kernel = kernel;
            r.graph = info.name;
            r.dim = static_cast<std::uint32_t>(pcfg.hiddenDim);
            r.k = pcfg.maxkK;
            r.simSeconds = sim_seconds;
            r.dramBytes = dram;
            r.l2ReqBytes = l2;
            r.peakWorkspaceBytes = 0;
            r.allocCount = allocs;
            bench::perfRecords().push_back(r);
        };
        // Armed and disarmed epoch profiles: the baseline holds the
        // SAME sim_seconds for both, so either record drifting —
        // including the two diverging from each other — fails the gate.
        record("profile_epoch/disarmed", t_off.total(), 0, 0, 0);
        record("profile_epoch/armed", t_on.total(), 0, 0, 0);
        // Armed mini-batch steady state: alloc_count gates exactly at
        // 0; the byte fields carry the structural sampled volume.
        record("sampled/armed-steady", 0.0, samp_on.sampledNodes,
               samp_on.sampledEdges, samp_on.steadyStateAllocCount);
    }
    bench::writePerfReport();
    bench::writeMetricsReport();
    return 0;
}
