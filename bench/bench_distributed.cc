/**
 * @file
 * Sharded-execution bench: really runs rank-based partition-parallel
 * training (dist::ShardedTrainer) and reconciles the measured
 * Communicator traffic against the analytical profileDistributedEpoch
 * model, for the ReLU baseline vs MaxK-GNN at 2/4/8 ranks.
 *
 * With --json it emits maxk-perf-v1 records gated by
 * tools/maxk-perf-check (baseline bench/baselines/distributed.json):
 *
 *   kernel "halo-train":  dram_bytes = measured Halo-channel bytes of
 *                         the training epochs, l2_req_bytes = the
 *                         analytical model's total for the same epochs
 *                         (the gate thereby pins their agreement),
 *                         sim_seconds = modeled exchange seconds/epoch,
 *                         alloc_count = steady-state Matrix/CBSR heap
 *                         allocations across ALL ranks (0 when warm);
 *   kernel "shard-compute": sim_seconds = modeled slowest-shard compute
 *                         seconds/epoch, dram_bytes = replica count.
 *
 * All metrics are structural (topology + shapes, cache model off), so
 * the records are bit-identical across machines and thread counts.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "dist/sharded_trainer.hh"
#include "nn/distributed.hh"

using namespace maxk;

namespace
{

nn::ModelConfig
modelFor(nn::Nonlinearity nonlin, const TrainingTask &task)
{
    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nonlin;
    cfg.maxkK = 16;
    cfg.numLayers = 3;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = 64;
    cfg.outDim = task.numClasses;
    cfg.dropout = 0.3f;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Sharded execution: rank-parallel training with CBSR "
                  "halo exchange (measured vs model)");

    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = 600;
    task.accuracyAvgDegree = 10.0;
    Rng rng(404);
    TrainingData data = materializeTrainingData(task, rng);

    nn::TrainConfig tc;
    tc.epochs = 3;
    tc.evalEvery = 100; // evals at the first and last epoch only

    SimOptions opt;
    opt.simulateCaches = false;
    opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(0.01);

    std::vector<std::uint32_t> rank_sweep{2, 4, 8};
    bench::smokeShrink(rank_sweep);

    TextTable table({"ranks", "method", "replicas", "halo KB (meas)",
                     "halo KB (model)", "compute ms", "exchange ms",
                     "imbalance", "steady allocs", "final acc"});
    for (const std::uint32_t ranks : rank_sweep) {
        Rng prng(171);
        const Partition parts = bfsPartition(data.graph, ranks, prng);
        nn::ClusterConfig cluster;
        cluster.numGpus = ranks;

        for (const auto nonlin :
             {nn::Nonlinearity::Relu, nn::Nonlinearity::MaxK}) {
            const nn::ModelConfig cfg = modelFor(nonlin, task);
            dist::ShardedTrainer sharded(cfg, data, task, parts);
            const dist::ShardedTrainResult run = sharded.run(tc);
            const auto model = nn::profileDistributedEpoch(
                cfg, data.graph, parts, cluster, opt);
            const std::uint64_t model_bytes =
                model.exchangedBytes * tc.epochs;

            table.addRow(
                {std::to_string(ranks),
                 nonlin == nn::Nonlinearity::MaxK ? "MaxK-GNN k=16"
                                                  : "ReLU baseline",
                 std::to_string(model.boundaryReplicas),
                 formatFloat(run.trainHaloBytes / 1e3, 2),
                 formatFloat(model_bytes / 1e3, 2),
                 formatFloat(model.computeSeconds * 1e3, 3),
                 formatFloat(model.exchangeSeconds * 1e3, 3),
                 formatFloat(model.imbalance, 3),
                 std::to_string(run.steadyStateAllocCount),
                 formatFloat(run.train.finalTestMetric, 3)});

            if (bench::perfEnabled()) {
                const std::uint32_t k_field =
                    nonlin == nn::Nonlinearity::MaxK ? cfg.maxkK : 0;
                bench::PerfRecord halo;
                halo.bench = "bench_distributed";
                halo.kernel = "halo-train";
                halo.graph = task.info.name + "-acc/r" +
                             std::to_string(ranks);
                halo.dim =
                    static_cast<std::uint32_t>(cfg.hiddenDim);
                halo.k = k_field;
                halo.simSeconds = model.exchangeSeconds;
                halo.dramBytes = run.trainHaloBytes;
                halo.l2ReqBytes = model_bytes;
                halo.peakWorkspaceBytes = 0;
                halo.allocCount = run.steadyStateAllocCount;
                bench::perfRecords().push_back(halo);

                bench::PerfRecord compute;
                compute.bench = "bench_distributed";
                compute.kernel = "shard-compute";
                compute.graph = halo.graph;
                compute.dim = halo.dim;
                compute.k = k_field;
                compute.simSeconds = model.computeSeconds;
                compute.dramBytes = model.boundaryReplicas;
                bench::perfRecords().push_back(compute);
            }
        }
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Takeaways: measured halo traffic equals the replica-exact "
        "model; MaxK ships CBSR\nrows ((4+idx)*k bytes) on the hidden "
        "layers instead of 4*dim, so its exchange\nvolume shrinks on "
        "top of the kernel speedup; steady-state epochs allocate "
        "nothing.\n");
    bench::writePerfReport();
    return 0;
}
