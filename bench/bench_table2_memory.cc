/**
 * @file
 * Table 2 reproduction: memory-system profile of SpMM vs SpGEMM vs
 * SSpMM on the Reddit twin at dim_origin = 256, k = 32 — total traffic,
 * L1/L2 hit rates, and bandwidth utilisation, next to the paper's
 * measured A100 numbers.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "core/traffic_model.hh"
#include "kernels/spmm_row_wise.hh"
#include "tensor/init.hh"

using namespace maxk;

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Table 2: memory-system profiling on Reddit "
                  "(dim_org = 256, dim_k = 32)");

    const auto info = *findDataset("Reddit");
    bench::TwinBundle twin =
        bench::makeTwin(info, 256, Aggregator::SageMean);
    const double scale = bench::paperScaleFactor(twin);

    Rng rng(55);
    Matrix x(twin.graph.numNodes(), 256);
    fillNormal(x, rng, 0.0f, 1.0f);

    Matrix y;
    const auto spmm = spmmRowWise(twin.graph, x, y, twin.opt);
    MaxKResult mk = maxkCompress(x, 32, twin.opt);
    const auto spgemm =
        spgemmForward(twin.graph, twin.part, mk.cbsr, y, twin.opt);
    CbsrMatrix dxs;
    dxs.adoptPattern(mk.cbsr);
    const auto sspmm =
        sspmmBackward(twin.graph, twin.part, y, dxs, twin.opt);

    auto row = [&](const char *metric, auto fn,
                   const char *paper_spmm, const char *paper_spgemm,
                   const char *paper_sspmm) {
        return std::vector<std::string>{
            metric, fn(spmm), fn(spgemm), fn(sspmm),
            std::string(paper_spmm) + " / " + paper_spgemm + " / " +
                paper_sspmm};
    };

    TextTable table({"Metric", "SpMM", "SpGEMM", "SSpMM",
                     "paper (SpMM/SpGEMM/SSpMM)"});
    table.addRow(row(
        "Total traffic, twin (MB)",
        [&](const gpusim::KernelStats &s) {
            return formatFloat(s.aggregate().l2ReqBytes / 1e6, 1);
        },
        "138.05 GB", "13.13 GB", "14.02 GB"));
    table.addRow(row(
        "Total traffic, scaled to paper nnz (GB)",
        [&](const gpusim::KernelStats &s) {
            return formatFloat(s.aggregate().l2ReqBytes * scale / 1e9,
                               1);
        },
        "138.05", "13.13", "14.02"));
    table.addRow(row(
        "L1 hit rate (%)",
        [&](const gpusim::KernelStats &s) {
            return formatFloat(s.l1HitRate() * 100.0, 2);
        },
        "1.53", "22.16", "28.27"));
    table.addRow(row(
        "L2 hit rate (%)",
        [&](const gpusim::KernelStats &s) {
            return formatFloat(s.l2HitRate() * 100.0, 2);
        },
        "51.75", "75.44", "89.43"));
    table.addRow(row(
        "Memory BW utilisation (%)",
        [&](const gpusim::KernelStats &s) {
            return formatFloat(
                s.bandwidthUtilization(twin.opt.device) * 100.0, 2);
        },
        "60.90", "33.60", "48.08"));
    table.addRow(row(
        "Simulated latency (ms, twin)",
        [&](const gpusim::KernelStats &s) {
            return formatFloat(s.milliseconds(), 4);
        },
        "44.98", "15.49", "15.07"));
    std::printf("%s\n", table.render().c_str());

    const double reduction =
        1.0 - static_cast<double>(spgemm.aggregate().l2ReqBytes) /
                  spmm.aggregate().l2ReqBytes;
    std::printf("Traffic reduction SpGEMM vs SpMM: %.1f%% (paper: "
                "~90.5%%); SSpMM: %.1f%% (paper: ~89.8%%)\n",
                reduction * 100.0,
                (1.0 -
                 static_cast<double>(sspmm.aggregate().l2ReqBytes) /
                     spmm.aggregate().l2ReqBytes) *
                    100.0);
    std::printf("Analytical Sec. 4.3 formulas at paper scale: SpMM "
                "%.1f GB, SpGEMM %.1f GB, SSpMM %.1f GB reads\n",
                traffic::spmmFeatureBytes(114615891u, 256) / 1e9,
                traffic::spgemmFeatureBytes(114615891u, 32, 1) / 1e9,
                traffic::sspmmReadBytes(232965u, 256, 114615891u, 32, 1) /
                    1e9);
    return 0;
}
