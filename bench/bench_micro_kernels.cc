/**
 * @file
 * google-benchmark microbenchmarks of the host-side hot paths: MaxK
 * pivot selection, CBSR (de)compression, the fast aggregation loops,
 * and the cache model itself. These measure the reproduction's own
 * throughput (host wall-clock), complementing the simulated-GPU
 * numbers the table/figure benches report.
 */

#include <benchmark/benchmark.h>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/maxk.hh"
#include "gpusim/cache.hh"
#include "graph/edge_groups.hh"
#include "graph/generators.hh"
#include "nn/gnn_layer.hh"
#include "tensor/init.hh"

namespace maxk
{
namespace
{

void
BM_PivotSelect(benchmark::State &state)
{
    const std::uint32_t dim = 256;
    const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
    Rng rng(1);
    Matrix x(64, dim);
    fillNormal(x, rng, 0.0f, 1.0f);
    std::vector<std::uint32_t> sel;
    std::size_t row = 0;
    for (auto _ : state) {
        pivotSelect(x.row(row % 64), dim, k, sel);
        benchmark::DoNotOptimize(sel.data());
        ++row;
    }
    state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_PivotSelect)->Arg(8)->Arg(32)->Arg(128);

void
BM_MaxkCompressFast(benchmark::State &state)
{
    Rng rng(2);
    Matrix x(1024, 256);
    fillNormal(x, rng, 0.0f, 1.0f);
    CbsrMatrix out;
    for (auto _ : state) {
        nn::maxkCompressFast(x, static_cast<std::uint32_t>(
                                    state.range(0)),
                             out);
        benchmark::DoNotOptimize(out.rows());
    }
    state.SetItemsProcessed(state.iterations() * x.size());
}
BENCHMARK(BM_MaxkCompressFast)->Arg(16)->Arg(64);

void
BM_CbsrDecompress(benchmark::State &state)
{
    Rng rng(3);
    Matrix x(1024, 256);
    fillNormal(x, rng, 0.0f, 1.0f);
    CbsrMatrix cbsr;
    nn::maxkCompressFast(x, 32, cbsr);
    Matrix dense;
    for (auto _ : state) {
        cbsr.decompress(dense);
        benchmark::DoNotOptimize(dense.data());
    }
}
BENCHMARK(BM_CbsrDecompress);

void
BM_AggregateCbsr(benchmark::State &state)
{
    Rng rng(4);
    CsrGraph g = rmat(12, 200000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    Matrix x(g.numNodes(), 256);
    fillNormal(x, rng, 0.0f, 1.0f);
    CbsrMatrix cbsr;
    nn::maxkCompressFast(x, static_cast<std::uint32_t>(state.range(0)),
                         cbsr);
    Matrix y;
    for (auto _ : state) {
        nn::aggregateCbsr(g, cbsr, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges() *
                            state.range(0));
}
BENCHMARK(BM_AggregateCbsr)->Arg(8)->Arg(32);

void
BM_AggregateDense(benchmark::State &state)
{
    Rng rng(5);
    CsrGraph g = rmat(12, 200000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    Matrix x(g.numNodes(), static_cast<std::size_t>(state.range(0)));
    fillNormal(x, rng, 0.0f, 1.0f);
    Matrix y;
    for (auto _ : state) {
        nn::aggregateDense(g, x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges() *
                            state.range(0));
}
BENCHMARK(BM_AggregateDense)->Arg(64)->Arg(256);

/* ------------------------------------------------ thread scaling ----- */
// Wall-clock scaling of the row-parallel hot paths over the worker
// count (Arg = MAXK_THREADS equivalent). Results are bitwise-identical
// across counts, so items/s differences are pure scheduling. Compare
// e.g. BM_AggregateDenseThreads/1 vs /4 for the host-side speedup.

void
BM_AggregateDenseThreads(benchmark::State &state)
{
    setDefaultThreads(static_cast<std::uint32_t>(state.range(0)));
    Rng rng(8);
    CsrGraph g = rmat(12, 200000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    Matrix x(g.numNodes(), 256);
    fillNormal(x, rng, 0.0f, 1.0f);
    Matrix y;
    for (auto _ : state) {
        nn::aggregateDense(g, x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges() * 256);
    setDefaultThreads(0);
}
BENCHMARK(BM_AggregateDenseThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void
BM_AggregateCbsrThreads(benchmark::State &state)
{
    setDefaultThreads(static_cast<std::uint32_t>(state.range(0)));
    Rng rng(9);
    CsrGraph g = rmat(12, 200000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    Matrix x(g.numNodes(), 256);
    fillNormal(x, rng, 0.0f, 1.0f);
    CbsrMatrix cbsr;
    nn::maxkCompressFast(x, 32, cbsr);
    Matrix y;
    for (auto _ : state) {
        nn::aggregateCbsr(g, cbsr, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges() * 32);
    setDefaultThreads(0);
}
BENCHMARK(BM_AggregateCbsrThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void
BM_MaxkCompressFastThreads(benchmark::State &state)
{
    setDefaultThreads(static_cast<std::uint32_t>(state.range(0)));
    Rng rng(10);
    Matrix x(8192, 256);
    fillNormal(x, rng, 0.0f, 1.0f);
    CbsrMatrix out;
    for (auto _ : state) {
        nn::maxkCompressFast(x, 32, out);
        benchmark::DoNotOptimize(out.rows());
    }
    state.SetItemsProcessed(state.iterations() * x.size());
    setDefaultThreads(0);
}
BENCHMARK(BM_MaxkCompressFastThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void
BM_AggregateCbsrBackwardThreads(benchmark::State &state)
{
    // Scatter-shaped backward path: >1 worker takes the stable
    // transpose-gather branch (the transpose is rebuilt per call, so
    // this also prices that overhead honestly).
    setDefaultThreads(static_cast<std::uint32_t>(state.range(0)));
    Rng rng(11);
    CsrGraph g = rmat(12, 200000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    Matrix x(g.numNodes(), 256);
    fillNormal(x, rng, 0.0f, 1.0f);
    CbsrMatrix pattern;
    nn::maxkCompressFast(x, 32, pattern);
    CbsrMatrix dxs;
    dxs.adoptPattern(pattern);
    for (auto _ : state) {
        nn::aggregateCbsrBackward(g, x, dxs);
        benchmark::DoNotOptimize(dxs.rows());
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges() * 32);
    setDefaultThreads(0);
}
BENCHMARK(BM_AggregateCbsrBackwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void
BM_EdgeGroupPartition(benchmark::State &state)
{
    Rng rng(6);
    CsrGraph g = rmat(13, 400000, rng);
    for (auto _ : state) {
        auto part = EdgeGroupPartition::build(g, 32);
        benchmark::DoNotOptimize(part.groups().size());
    }
    state.SetItemsProcessed(state.iterations() * g.numEdges());
}
BENCHMARK(BM_EdgeGroupPartition);

void
BM_CacheModelAccess(benchmark::State &state)
{
    gpusim::CacheModel cache(1 << 20, 16, 128);
    Rng rng(7);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        addr = rng.next() & ((1 << 24) - 1);
        benchmark::DoNotOptimize(cache.access(addr, false).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheModelAccess);

} // namespace
} // namespace maxk

BENCHMARK_MAIN();
