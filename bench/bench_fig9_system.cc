/**
 * @file
 * Fig. 9 reproduction: end-to-end training speedup of MaxK-GNN over the
 * DGL+cuSPARSE and GNNAdvisor baselines, as a function of k, for
 * GraphSAGE / GCN / GIN on the five system-evaluation datasets, with
 * the per-dataset Amdahl's-law speedup limits (Table 3 architectures).
 *
 * Epoch times come from the simulated kernel profiles on the
 * degree-faithful kernel twins (DESIGN.md: timing is decoupled from the
 * accuracy runs, which bench_table5 performs).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stopwatch.hh"
#include "common/table.hh"
#include "nn/trainer.hh"

using namespace maxk;

namespace
{

/** Table 3 architecture per dataset. */
struct ArchSetup
{
    std::uint32_t layers;
    std::size_t hidden;
};

ArchSetup
archFor(const std::string &name)
{
    if (name == "Flickr")
        return {3, 256};
    if (name == "Yelp")
        return {4, 384};
    if (name == "Reddit")
        return {4, 256};
    if (name == "ogbn-products")
        return {3, 256};
    return {3, 256}; // ogbn-proteins
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Fig. 9: MaxK-GNN system training speedup vs k "
                  "(Table 3 architectures)");
    std::printf("Table 3 setup: layers/hidden = Flickr 3/256, Yelp "
                "4/384, Reddit 4/256,\nogbn-products 3/256, "
                "ogbn-proteins 3/256; full-batch training.\n");

    const auto ks = bench::fastMode()
                        ? std::vector<std::uint32_t>{8, 32, 128}
                        : bench::paperKSweep();
    std::vector<nn::GnnKind> models = {nn::GnnKind::Sage,
                                       nn::GnnKind::Gcn,
                                       nn::GnnKind::Gin};
    bench::smokeShrink(models);
    std::vector<TrainingTask> tasks = trainingSuite();
    bench::smokeShrink(tasks);

    Stopwatch watch;
    for (const auto &task : tasks) {
        const ArchSetup arch = archFor(task.info.name);
        bench::TwinBundle twin = bench::makeTwin(
            task.info, static_cast<std::uint32_t>(arch.hidden),
            Aggregator::SageMean);

        std::printf("\n### Dataset %s (twin |V|=%u |E|=%u, avg deg "
                    "%.0f) ###\n",
                    task.info.name.c_str(), twin.graph.numNodes(),
                    twin.graph.numEdges(), twin.graph.avgDegree());

        for (const nn::GnnKind kind : models) {
            twin.graph.setAggregatorWeights(nn::aggregatorFor(kind));

            nn::ModelConfig base;
            base.kind = kind;
            base.nonlin = nn::Nonlinearity::Relu;
            base.numLayers = arch.layers;
            base.inDim = 128;
            base.hiddenDim = arch.hidden;
            base.outDim = task.numClasses;

            const nn::EpochTiming t_cusp = nn::profileEpoch(
                base, twin.graph, twin.part, twin.opt,
                nn::BaselineKernel::CuSparse);
            const nn::EpochTiming t_gnna = nn::profileEpoch(
                base, twin.graph, twin.part, twin.opt,
                nn::BaselineKernel::Gnna);
            const double amdahl_cusp =
                1.0 / (1.0 - t_cusp.aggFraction());
            const double amdahl_gnna =
                t_gnna.total() / (t_cusp.total() -
                                  (t_cusp.aggFwd + t_cusp.aggBwd));

            TextTable table({"k", "epoch (sim ms)", "spd vs cuSP.",
                             "spd vs GNNA.", "limit cuSP.",
                             "limit GNNA."});
            table.addRow({"baseline(ReLU)",
                          formatFloat(t_cusp.total() * 1e3, 3), "1.00x",
                          formatFloat(t_gnna.total() / t_cusp.total(),
                                      2) +
                              "x",
                          formatFloat(amdahl_cusp, 2) + "x",
                          formatFloat(amdahl_gnna, 2) + "x"});

            for (const std::uint32_t k : ks) {
                nn::ModelConfig mcfg = base;
                mcfg.nonlin = nn::Nonlinearity::MaxK;
                mcfg.maxkK = k;
                const nn::EpochTiming t_maxk = nn::profileEpoch(
                    mcfg, twin.graph, twin.part, twin.opt);
                table.addRow(
                    {std::to_string(k),
                     formatFloat(t_maxk.total() * 1e3, 3),
                     formatSpeedup(t_cusp.total() / t_maxk.total()),
                     formatSpeedup(t_gnna.total() / t_maxk.total()),
                     "", ""});
            }
            std::printf("\n%s on %s:\n%s", nn::gnnKindName(kind),
                        task.info.name.c_str(), table.render().c_str());
        }
        std::fprintf(stderr, "  [%s done, %.1fs]\n",
                     task.info.name.c_str(),
                     watch.elapsedNs() * 1e-9);
    }

    std::printf("\nExpected shape (paper Fig. 9): Reddit and "
                "ogbn-proteins approach their high\nAmdahl limits "
                "(3-4.5x achieved); ogbn-products / Yelp / Flickr have "
                "limits near\n1.1-2x and MaxK-GNN lands within them. "
                "Total bench time: %.1fs\n",
                watch.elapsedNs() * 1e-9);
    return 0;
}
