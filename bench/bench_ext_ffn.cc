/**
 * @file
 * Extension bench for the Sec. 6 future-work direction: MaxK inside a
 * Transformer-style FFN block. Compares the dense FFN second GEMM with
 * the CBSR sparse-activation GEMM across k, reporting FLOPs, simulated
 * traffic, and simulated latency — the regular sparsity carries over
 * from GNNs to dense architectures unchanged.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/dense_maxk.hh"
#include "core/maxk.hh"
#include "kernels/gemm_cost.hh"
#include "nn/gnn_layer.hh"
#include "tensor/init.hh"

using namespace maxk;

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Extension (Sec. 6): MaxK-sparsified Transformer FFN "
                  "second GEMM");

    // A small-transformer shape: tokens x d_ff -> d_model.
    const NodeId tokens = bench::fastMode() ? 1024 : 4096;
    const std::uint32_t d_ff = 1024;
    const std::size_t d_model = 256;

    Rng rng(21);
    Matrix h_dense(tokens, d_ff);
    fillNormal(h_dense, rng, 0.0f, 1.0f);
    Matrix w(d_ff, d_model);
    fillNormal(w, rng, 0.0f, 0.1f);

    SimOptions opt;
    const double t_dense =
        gemmSimSeconds(tokens, d_ff, d_model, opt.device);

    TextTable table({"activation", "k/d_ff", "GFLOP", "sim traffic MB",
                     "sim ms", "speedup vs dense"});
    table.addRow({"dense (ReLU FFN)", "1.000",
                  formatFloat(2.0 * tokens * d_ff * d_model / 1e9, 2),
                  formatFloat((4.0 * (double(tokens) * d_ff +
                                      double(d_ff) * d_model +
                                      double(tokens) * d_model)) /
                                  1e6,
                              1),
                  formatFloat(t_dense * 1e3, 4), "1.00x"});

    for (const std::uint32_t k : {256u, 128u, 64u, 32u}) {
        MaxKResult mk = maxkCompress(h_dense, k, opt);
        Matrix y;
        const auto stats = cbsrGemm(mk.cbsr, w, y, opt);
        table.addRow(
            {"MaxK k=" + std::to_string(k),
             formatFloat(static_cast<double>(k) / d_ff, 3),
             formatFloat(stats.aggregate().flops / 1e9, 2),
             formatFloat(stats.aggregate().reqBytes / 1e6, 1),
             formatFloat(stats.milliseconds(), 4),
             formatSpeedup(t_dense / stats.totalSeconds)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Finding: FLOPs fall linearly with k/d_ff, but unlike "
                "the GNN case the dense\nbaseline here is a tiled "
                "tensor-core GEMM that amortises weight reads across\n"
                "samples, while the sparse kernel re-gathers k rows per "
                "sample. The crossover\nsits near k/d_ff ~ 3%% — the "
                "regular sparsity helps dense architectures only\nat "
                "much higher sparsity than GNN aggregation, a genuine "
                "caveat to Sec. 6's\nconjecture that this bench "
                "quantifies.\n");
    return 0;
}
