/**
 * @file
 * Adaptive kernel-selector sweep: for every corpus entry, compare the
 * selector's pick (kernelVariant="auto") against the static row-wise
 * default and against the per-entry oracle (best selectable variant by
 * simulated seconds, DRAM bytes breaking ties).
 *
 * The corpus mixes the deterministic generator families the selector
 * thresholds were derived from (regular lattice, sparse/dense uniform,
 * mid-skew power law, Zipfian and star hubs) with the bundled on-disk
 * fixture, loaded through the same ingest path as real datasets.
 *
 * Two guarantees are enforced, not just reported:
 *  - in-process: the bench exits non-zero if the adaptive pick is ever
 *    slower (simulated seconds or DRAM bytes) than the static default
 *    on any entry — run in CI by the smoke entry on every build;
 *  - cross-commit: with --json the per-entry records for both schedules
 *    are compared against bench/baselines/adaptive.json by
 *    tools/maxk-perf-check (perf_gate_adaptive), so a selector or
 *    traffic-model change that erodes the adaptive win fails the gate.
 *
 * All launches run with the cache model off, so every number is
 * structural: identical on every machine, every run, every thread count.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "graph/formats/formats.hh"
#include "graph/generators.hh"
#include "graph/stats.hh"
#include "kernels/registry.hh"
#include "kernels/selector.hh"
#include "tensor/init.hh"

using namespace maxk;

namespace
{

constexpr const char *kBench = "adaptive";

struct CorpusEntry
{
    std::string name;
    CsrGraph graph;
    std::uint32_t dim;
};

std::vector<CorpusEntry>
makeCorpus()
{
    std::vector<CorpusEntry> corpus;
    auto add = [&](std::string name, CsrGraph g, std::uint32_t dim) {
        g.setAggregatorWeights(Aggregator::SageMean);
        corpus.push_back({std::move(name), std::move(g), dim});
    };

    // Generator families, one per selector regime (and one per rule
    // boundary the thresholds encode).
    {
        add("ring4k", ringLattice(4096, 8, false), 64);
    }
    {
        Rng rng(82001);
        add("er_sparse", erdosRenyi(4096, 8000, rng), 64);
    }
    {
        Rng rng(82002);
        add("er_dense", erdosRenyi(2048, 40000, rng), 64);
    }
    {
        Rng rng(82003);
        add("rmat13", rmat(13, 100000, rng), 256);
    }
    {
        Rng rng(82004);
        add("zipf4k", zipf(4096, 40000, 1.1, rng), 64);
    }
    {
        add("star8k", star(8192, false), 64);
    }
    {
        // Regular lattice at the paper's dim_origin: the staging budget
        // check must still pass at wide rows.
        add("ring2k_w", ringLattice(2048, 16, false), 256);
    }

    // On-disk corpus: the bundled fixture through the real ingest path.
    {
        GraphResult loaded =
            formats::loadAnyGraph(std::string(MAXK_TEST_DATA_DIR) +
                                  "/karate.txt");
        if (!loaded)
            fatal("adaptive corpus: " + loaded.error().describe());
        add("karate", std::move(loaded.value()), 64);
    }
    return corpus;
}

struct EntryResult
{
    std::string name;
    std::string pick;
    std::string oracle;
    double cv = 0.0;
    double tDefault = 0.0, tPick = 0.0, tOracle = 0.0;
    std::uint64_t dramDefault = 0, dramPick = 0, dramOracle = 0;
};

std::uint64_t
dramBytes(const gpusim::KernelStats &stats)
{
    const gpusim::PhaseStats total = stats.aggregate();
    return total.dramReadBytes + total.dramWriteBytes;
}

EntryResult
runEntry(const CorpusEntry &e)
{
    SimOptions opt;
    opt.simulateCaches = false; // structural counters only (see @file)

    Rng rng(5600 + e.graph.numNodes());
    Matrix x(e.graph.numNodes(), e.dim);
    fillNormal(x, rng, 0.0f, 1.0f);

    EntryResult r;
    r.name = e.name;
    const DegreeStats &s = e.graph.degreeStatsCached();
    r.cv = s.avgDegree > 0.0 ? s.stdDegree / s.avgDegree : 0.0;

    std::string reason;
    const kernels::KernelVariant &pick =
        kernels::resolveSpmmVariant("auto", e.graph, e.dim, 0, opt,
                                    &reason);
    r.pick = std::string(pick.name);

    // Oracle: every selectable variant, best simulated seconds (DRAM
    // breaking ties). Also yields the default/pick numbers.
    Matrix y;
    for (const kernels::KernelVariant &v : kernels::kernelRegistry()) {
        if (!v.selectable)
            continue;
        v.run(e.graph, x, y, opt); // warm the output container
        const gpusim::KernelStats stats = v.run(e.graph, x, y, opt);
        const double t = stats.totalSeconds;
        const std::uint64_t dram = dramBytes(stats);
        if (r.oracle.empty() || t < r.tOracle ||
            (t == r.tOracle && dram < r.dramOracle)) {
            r.oracle = std::string(v.name);
            r.tOracle = t;
            r.dramOracle = dram;
        }
        if (v.name == kernels::defaultSpmmVariant().name) {
            r.tDefault = t;
            r.dramDefault = dram;
        }
        if (v.name == pick.name) {
            r.tPick = t;
            r.dramPick = dram;
        }
    }

    // Perf records for the committed baseline: the static default and
    // the adaptive pick, under stable pseudo-kernel names so the
    // (bench, kernel, graph, dim, k) key is unique even when the
    // selector picks the default variant.
    bench::recordKernel(kBench, e.name, e.dim, 0, [&] {
        gpusim::KernelStats stats =
            kernels::defaultSpmmVariant().run(e.graph, x, y, opt);
        stats.kernel = "static_default";
        return stats;
    });
    bench::recordKernel(kBench, e.name, e.dim, 0, [&] {
        gpusim::KernelStats stats = pick.run(e.graph, x, y, opt);
        stats.kernel = "adaptive_pick";
        return stats;
    });
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Adaptive SpMM selector vs static default vs oracle "
                  "(cache model off; bench/baselines/adaptive.json)");

    std::vector<CorpusEntry> corpus = makeCorpus();
    // Smoke mode still sweeps the full corpus: the never-slower check
    // below IS the point of this bench, and the corpus is small.

    std::vector<EntryResult> results;
    for (const CorpusEntry &e : corpus)
        results.push_back(runEntry(e));

    TextTable table({"graph", "dim", "avg deg", "cv", "pick", "oracle",
                     "default ms", "pick ms", "oracle ms", "DRAM ratio"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const EntryResult &r = results[i];
        const CorpusEntry &e = corpus[i];
        table.addRow(
            {r.name, std::to_string(e.dim),
             formatFloat(e.graph.avgDegree(), 1), formatFloat(r.cv, 2),
             r.pick, r.oracle, formatFloat(r.tDefault * 1e3, 3),
             formatFloat(r.tPick * 1e3, 3),
             formatFloat(r.tOracle * 1e3, 3),
             formatFloat(static_cast<double>(r.dramPick) /
                             static_cast<double>(r.dramDefault),
                         3)});
    }
    std::printf("%s", table.render().c_str());

    // The hard guarantee: "auto" must never lose to the static default
    // on either axis. Equality is fine (the pick often IS the default).
    int failures = 0;
    for (const EntryResult &r : results) {
        if (r.tPick > r.tDefault || r.dramPick > r.dramDefault) {
            std::fprintf(stderr,
                         "FAIL: %s — adaptive pick %s slower than "
                         "default (%.6f ms vs %.6f ms, %llu vs %llu "
                         "DRAM bytes)\n",
                         r.name.c_str(), r.pick.c_str(), r.tPick * 1e3,
                         r.tDefault * 1e3,
                         static_cast<unsigned long long>(r.dramPick),
                         static_cast<unsigned long long>(r.dramDefault));
            ++failures;
        }
        if (r.pick != r.oracle && r.tPick > r.tOracle)
            std::printf("note: %s — oracle %s beats pick %s by %.3fx "
                        "(selector stays conservative)\n",
                        r.name.c_str(), r.oracle.c_str(), r.pick.c_str(),
                        r.tPick / r.tOracle);
    }
    if (failures != 0) {
        std::fprintf(stderr, "FAIL: adaptive selector lost on %d of %zu "
                             "corpus entries\n",
                     failures, results.size());
        return 1;
    }
    std::printf("adaptive pick never slower than static default on all "
                "%zu entries\n",
                results.size());

    bench::writePerfReport();
    return 0;
}
