/**
 * @file
 * Ablation bench for the design choices DESIGN.md calls out:
 *
 *  A1. Shared-memory accumulation buffer in the forward SpGEMM
 *      (Algorithm 1) vs direct scattered global atomics.
 *  A2. Dense-row prefetch in the backward SSpMM (Algorithm 2) vs
 *      uncoalesced global gathers through sp_index.
 *  A3. sp_index width (uint8 / uint16 / uint32) — the Sec. 4.3
 *      5-bytes-per-element traffic claim.
 *  A4. Edge-Group workload cap w — write-back atomics vs balance.
 *  A5. Graph reordering (the Rabbit-order effect GNNAdvisor relies on)
 *      vs CBSR traffic reduction — showing the MaxK-GNN win is
 *      orthogonal to, and larger than, locality reordering.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "core/traffic_model.hh"
#include "graph/reorder.hh"
#include "kernels/spmm_row_wise.hh"
#include "tensor/init.hh"

using namespace maxk;

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Ablation: MaxK-GNN kernel design choices "
                  "(Reddit twin, dim_org = 256, k = 32)");

    const auto info = *findDataset("Reddit");
    bench::TwinBundle twin =
        bench::makeTwin(info, 256, Aggregator::SageMean);
    Rng rng(77);
    Matrix x(twin.graph.numNodes(), 256);
    fillNormal(x, rng, 0.0f, 1.0f);
    MaxKResult mk = maxkCompress(x, 32, twin.opt);

    // --- A1: shared-memory accumulation buffer ---------------------
    {
        Matrix y;
        const auto with_buf =
            spgemmForward(twin.graph, twin.part, mk.cbsr, y, twin.opt);
        SimOptions no_buf = twin.opt;
        no_buf.spgemmSharedBuffer = false;
        Matrix y2;
        const auto without_buf =
            spgemmForward(twin.graph, twin.part, mk.cbsr, y2, no_buf);
        if (!y.approxEquals(y2, 1e-3f))
            std::printf("WARNING: ablation changed results!\n");

        TextTable t({"SpGEMM variant", "sim ms", "atomic sectors",
                     "l2 req MB", "slowdown"});
        t.addRow({"shared-memory buffer (paper)",
                  formatFloat(with_buf.milliseconds(), 4),
                  std::to_string(with_buf.aggregate().atomicSectors),
                  formatFloat(with_buf.aggregate().l2ReqBytes / 1e6, 1),
                  "1.00x"});
        t.addRow({"direct global atomics",
                  formatFloat(without_buf.milliseconds(), 4),
                  std::to_string(without_buf.aggregate().atomicSectors),
                  formatFloat(without_buf.aggregate().l2ReqBytes / 1e6,
                              1),
                  formatSpeedup(without_buf.totalSeconds /
                                with_buf.totalSeconds)});
        std::printf("\nA1 — forward accumulation buffer:\n%s",
                    t.render().c_str());
    }

    // --- A2: dense-row prefetch in SSpMM ---------------------------
    // Compared in the uncached regime: at paper scale the gradient
    // matrix (238 MB on Reddit) dwarfs L1/L2, so every uncoalesced
    // gather becomes a full global-memory sector — the case the
    // prefetch exists for. (At twin scale the caches would mask it.)
    {
        Matrix dxl(twin.graph.numNodes(), 256);
        fillNormal(dxl, rng, 0.0f, 1.0f);
        CbsrMatrix d1, d2;
        d1.adoptPattern(mk.cbsr);
        d2.adoptPattern(mk.cbsr);
        SimOptions uncached = twin.opt;
        uncached.simulateCaches = false;
        const auto with_pf =
            sspmmBackward(twin.graph, twin.part, dxl, d1, uncached);
        SimOptions no_pf = uncached;
        no_pf.sspmmPrefetch = false;
        const auto without_pf =
            sspmmBackward(twin.graph, twin.part, dxl, d2, no_pf);

        TextTable t({"SSpMM variant", "sim ms", "l2 req MB",
                     "dram MB", "slowdown"});
        auto mb = [](const gpusim::KernelStats &s) {
            return formatFloat(s.aggregate().l2ReqBytes / 1e6, 1);
        };
        auto dram = [](const gpusim::KernelStats &s) {
            const auto a = s.aggregate();
            return formatFloat(
                (a.dramReadBytes + a.dramWriteBytes) / 1e6, 1);
        };
        t.addRow({"dense-row prefetch (paper)",
                  formatFloat(with_pf.milliseconds(), 4), mb(with_pf),
                  dram(with_pf), "1.00x"});
        t.addRow({"uncoalesced global gather",
                  formatFloat(without_pf.milliseconds(), 4),
                  mb(without_pf), dram(without_pf),
                  formatSpeedup(without_pf.totalSeconds /
                                with_pf.totalSeconds)});
        std::printf("\nA2 — backward dense-row prefetch:\n%s",
                    t.render().c_str());
    }

    // --- A3: index width ---------------------------------------------
    {
        TextTable t({"sp_index type", "bytes/element",
                     "feature traffic (paper scale, GB)",
                     "reduction vs SpMM"});
        for (const std::uint32_t idx_bytes : {1u, 2u, 4u}) {
            const Bytes traffic = traffic::spgemmFeatureBytes(
                114615891u, 32, idx_bytes);
            t.addRow({idx_bytes == 1   ? "uint8 (paper, dim<=256)"
                      : idx_bytes == 2 ? "uint16"
                                       : "uint32",
                      std::to_string(4 + idx_bytes),
                      formatFloat(traffic / 1e9, 1),
                      formatFloat(traffic::spgemmReductionFraction(
                                      256, 32, idx_bytes) *
                                      100.0,
                                  1) +
                          "%"});
        }
        std::printf("\nA3 — sp_index width (analytical, Reddit "
                    "scale):\n%s",
                    t.render().c_str());
    }

    // --- A4: EG workload cap sweep -----------------------------------
    {
        TextTable t({"w (EG cap)", "EGs", "imbalance", "sim ms",
                     "atomic sectors"});
        for (const std::uint32_t w : {8u, 16u, 32u, 64u, 128u}) {
            const auto part = EdgeGroupPartition::build(twin.graph, w);
            SimOptions opt = twin.opt;
            opt.workloadCap = w;
            Matrix y;
            const auto stats =
                spgemmForward(twin.graph, part, mk.cbsr, y, opt);
            t.addRow({std::to_string(w),
                      std::to_string(part.groups().size()),
                      formatFloat(part.imbalance(32), 3),
                      formatFloat(stats.milliseconds(), 4),
                      std::to_string(stats.aggregate().atomicSectors)});
        }
        std::printf("\nA4 — Edge-Group workload cap (write-back "
                    "atomics shrink as w grows; balance\nstays near 1 "
                    "because EGs are size-capped):\n%s",
                    t.render().c_str());
    }

    // --- A5: reordering vs CBSR --------------------------------------
    // Reordering only matters on sparse graphs (on the degree-500
    // Reddit twin every row touches a quarter of all nodes, so order
    // is irrelevant); use an ogbn-arxiv-like sparse twin instead.
    {
        Rng prng(123);
        Rng grng(321);
        CsrGraph sparse = rmat(13, 500000, grng);
        CsrGraph scrambled = applyPermutation(
            sparse, randomOrder(sparse.numNodes(), prng));
        scrambled.setAggregatorWeights(Aggregator::SageMean);
        CsrGraph clustered =
            applyPermutation(scrambled, bfsOrder(scrambled));
        clustered.setAggregatorWeights(Aggregator::SageMean);

        TextTable t({"configuration", "SpMM sim ms", "L2 hit %",
                     "SpGEMM(k=32) sim ms", "speedup"});
        auto profile_pair = [&](CsrGraph &graph, const char *name) {
            const auto part2 = EdgeGroupPartition::build(graph, 32);
            Matrix xb(graph.numNodes(), 256);
            Rng r2(5);
            fillNormal(xb, r2, 0.0f, 1.0f);
            Matrix yb;
            const auto spmm_s = spmmRowWise(graph, xb, yb, twin.opt);
            MaxKResult mk2 = maxkCompress(xb, 32, twin.opt);
            const auto spgemm_s =
                spgemmForward(graph, part2, mk2.cbsr, yb, twin.opt);
            t.addRow({name, formatFloat(spmm_s.milliseconds(), 4),
                      formatFloat(spmm_s.l2HitRate() * 100.0, 1),
                      formatFloat(spgemm_s.milliseconds(), 4),
                      formatSpeedup(spmm_s.totalSeconds /
                                    spgemm_s.totalSeconds)});
        };
        profile_pair(scrambled, "random order (worst locality)");
        profile_pair(clustered, "BFS/Rabbit-style order");
        std::printf("\nA5 — reordering vs CBSR (MaxK's traffic cut "
                    "applies on top of any ordering):\n%s",
                    t.render().c_str());
    }

    return 0;
}
