/**
 * @file
 * Table 4 reproduction: latency of the MaxK selection kernel next to
 * SpMM / SpGEMM / SSpMM on the Reddit twin (dim_org = 256, dim_k = 32),
 * plus pivot-iteration statistics for the Sec. 5.3 claim that the
 * bisection converges in < 10 rounds on normal activations.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "kernels/spmm_row_wise.hh"
#include "tensor/init.hh"

using namespace maxk;

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Table 4: MaxK nonlinearity kernel profiling on "
                  "Reddit (dim_org = 256, dim_k = 32)");

    const auto info = *findDataset("Reddit");
    bench::TwinBundle twin =
        bench::makeTwin(info, 256, Aggregator::SageMean);
    const double scale = bench::paperScaleFactor(twin);

    Rng rng(66);
    Matrix x(twin.graph.numNodes(), 256);
    fillNormal(x, rng, 0.0f, 1.0f);

    Matrix y;
    const auto spmm = spmmRowWise(twin.graph, x, y, twin.opt);
    MaxKResult mk = maxkCompress(x, 32, twin.opt);
    const auto spgemm =
        spgemmForward(twin.graph, twin.part, mk.cbsr, y, twin.opt);
    CbsrMatrix dxs;
    dxs.adoptPattern(mk.cbsr);
    const auto sspmm =
        sspmmBackward(twin.graph, twin.part, y, dxs, twin.opt);

    TextTable table({"Kernel", "sim latency (ms, twin)",
                     "scaled estimate (ms)", "paper (ms)"});
    auto add = [&](const char *name, const gpusim::KernelStats &s,
                   double row_scale, const char *paper) {
        table.addRow({name, formatFloat(s.milliseconds(), 4),
                      formatFloat(s.milliseconds() * row_scale, 2),
                      paper});
    };
    add("SpMM (cuSPARSE-like)", spmm, scale, "44.98");
    add("SpGEMM (forward)", spgemm, scale, "15.49");
    add("SSpMM (backward)", sspmm, scale, "15.07");
    // The MaxK kernel's work is N-proportional, not nnz-proportional.
    const double node_scale = static_cast<double>(info.paperNodes) /
                              twin.graph.numNodes();
    add("MaxK selection", mk.stats, node_scale, "0.261");
    std::printf("%s\n", table.render().c_str());

    std::printf("MaxK cost relative to SpGEMM: %.2f%% (paper: < 2%%, "
                "0.261/15.49 = 1.7%%)\n",
                mk.stats.milliseconds() * node_scale /
                    (spgemm.milliseconds() * scale) * 100.0);
    std::printf("Pivot iterations: avg %.2f, max %u (paper: converges "
                "in < 10 on normal activations)\n",
                mk.avgPivotIterations, mk.maxPivotIterations);
    return 0;
}
