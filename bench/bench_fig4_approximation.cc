/**
 * @file
 * Fig. 4 reproduction: y = x^2 approximation error versus hidden-unit
 * count for MLPs with MaxK (k = ceil(hid/4)) and ReLU nonlinearities.
 * The paper's claim: both act as universal approximators and their
 * error curves track each other.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "mlp/approximator.hh"

using namespace maxk;

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Fig. 4: MLP universal approximation of y = x^2 "
                  "(MaxK vs ReLU)");

    const std::vector<std::uint32_t> hidden_units =
        bench::fastMode() ? std::vector<std::uint32_t>{8, 32}
                          : std::vector<std::uint32_t>{4, 8, 16, 32, 64,
                                                       128};

    TextTable table({"hidden units", "k (=ceil(h/4))", "MaxK MSE",
                     "MaxK max|err|", "ReLU MSE", "ReLU max|err|"});

    for (const std::uint32_t h : hidden_units) {
        mlp::ApproxConfig cfg;
        cfg.hiddenUnits = h;
        cfg.epochs = bench::fastMode() ? 1500 : 5000;
        cfg.seed = 33;

        cfg.nonlin = mlp::ApproxNonlin::MaxK;
        const auto maxk = mlp::approximateSquare(cfg);
        cfg.nonlin = mlp::ApproxNonlin::Relu;
        const auto relu = mlp::approximateSquare(cfg);

        table.addRow({std::to_string(h),
                      std::to_string((h + 3) / 4),
                      formatSci(maxk.mse, 3),
                      formatSci(maxk.maxError, 3),
                      formatSci(relu.mse, 3),
                      formatSci(relu.maxError, 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape (paper Fig. 4b/4c): error decreases "
                "with hidden units; MaxK\nand ReLU achieve similar "
                "approximation quality.\n");
    return 0;
}
