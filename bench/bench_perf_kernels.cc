/**
 * @file
 * Deterministic micro-kernel perf bench — the data source for the
 * kernel perf CI (ROADMAP "Kernel perf CI", ISSUE 4).
 *
 * Runs every simulated kernel once per (graph, dim, k) configuration
 * with the cache model off, so each record is purely structural:
 * identical on every machine, every run, every thread count. The
 * resulting --json report is compared against the committed
 * bench/baselines/perf_kernels.json by tools/maxk-perf-check, which
 * fails on simulated-seconds/traffic/workspace/allocation regressions.
 *
 * Two extra pseudo-kernel records gate the zero-allocation contract of
 * the training hot loop: a steady-state epoch (forward + backward of a
 * 3-layer MaxK SAGE model) must report alloc_count = 0 and no
 * transient Matrix/CbsrMatrix growth.
 *
 * Every graph here comes from the deterministic generators directly —
 * no registry resolution, so MAXK_DATASET_DIR cannot swap a baseline
 * graph out from underneath the committed numbers.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "graph/generators.hh"
#include "kernels/spmm_gnna.hh"
#include "kernels/spmm_row_wise.hh"
#include "nn/loss.hh"
#include "nn/model.hh"
#include "nn/optimizer.hh"
#include "tensor/init.hh"

using namespace maxk;

namespace
{

constexpr const char *kBench = "perf_kernels";

struct PerfGraph
{
    std::string name;
    CsrGraph graph;
    EdgeGroupPartition part;
};

std::vector<PerfGraph>
makeGraphs()
{
    std::vector<PerfGraph> graphs;
    {
        Rng rng(71001);
        PerfGraph g;
        g.name = "rmat12";
        g.graph = rmat(12, 120000, rng);
        g.graph.setAggregatorWeights(Aggregator::SageMean);
        g.part = EdgeGroupPartition::build(g.graph, 32);
        graphs.push_back(std::move(g));
    }
    {
        Rng rng(71002);
        PerfGraph g;
        g.name = "er2k";
        g.graph = erdosRenyi(2048, 60000, rng);
        g.graph.setAggregatorWeights(Aggregator::Gcn);
        g.part = EdgeGroupPartition::build(g.graph, 32);
        graphs.push_back(std::move(g));
    }
    return graphs;
}

/** Sum simulated seconds of the records emitted for one kernel name. */
double
recordedSeconds(const char *kernel)
{
    double s = 0.0;
    for (const auto &r : bench::perfRecords())
        if (r.kernel == kernel)
            s += r.simSeconds;
    return s;
}

/** Sum modeled DRAM bytes of the records for one kernel name. */
std::uint64_t
recordedDram(const char *kernel)
{
    std::uint64_t b = 0;
    for (const auto &r : bench::perfRecords())
        if (r.kernel == kernel)
            b += r.dramBytes;
    return b;
}

void
runKernelSweep(const PerfGraph &pg, std::uint32_t dim,
               const std::vector<std::uint32_t> &ks)
{
    SimOptions opt;
    opt.simulateCaches = false; // structural counters only (see @file)

    Rng rng(4200 + pg.graph.numNodes());
    Matrix x(pg.graph.numNodes(), dim);
    fillNormal(x, rng, 0.0f, 1.0f);

    // Warm every output container once so the records capture the
    // steady-state (zero-allocation) launch.
    Matrix y_spmm, y_spgemm, y_fused;
    spmmRowWise(pg.graph, x, y_spmm, opt);
    bench::recordKernel(kBench, pg.name, dim, 0, [&] {
        return spmmRowWise(pg.graph, x, y_spmm, opt);
    });
    spmmGnna(pg.graph, pg.part, x, y_spmm, opt);
    bench::recordKernel(kBench, pg.name, dim, 0, [&] {
        return spmmGnna(pg.graph, pg.part, x, y_spmm, opt);
    });

    for (const std::uint32_t k : ks) {
        MaxKResult mk;
        maxkCompress(x, k, opt, mk);
        bench::recordKernel(kBench, pg.name, dim, k, [&] {
            maxkCompress(x, k, opt, mk);
            return mk.stats;
        });
        spgemmForward(pg.graph, pg.part, mk.cbsr, y_spgemm, opt);
        bench::recordKernel(kBench, pg.name, dim, k, [&] {
            return spgemmForward(pg.graph, pg.part, mk.cbsr, y_spgemm,
                                 opt);
        });
        CbsrMatrix fused_cbsr;
        spgemmForwardFused(pg.graph, pg.part, x, k, fused_cbsr, y_fused,
                           opt);
        bench::recordKernel(kBench, pg.name, dim, k, [&] {
            return spgemmForwardFused(pg.graph, pg.part, x, k,
                                      fused_cbsr, y_fused, opt);
        });
        CbsrMatrix dxs;
        dxs.adoptPattern(mk.cbsr);
        sspmmBackward(pg.graph, pg.part, y_spgemm, dxs, opt);
        bench::recordKernel(kBench, pg.name, dim, k, [&] {
            return sspmmBackward(pg.graph, pg.part, y_spgemm, dxs, opt);
        });
    }
}

/**
 * Steady-state training-epoch pseudo-kernels: epoch >= 2 of a MaxK
 * SAGE stack must allocate nothing in the layer stack. Reported as two
 * records (forward / backward) whose alloc_count and workspace growth
 * the perf gate pins at 0.
 */
void
runLayerStackProbe()
{
    Rng rng(31007);
    CsrGraph g = erdosRenyi(1024, 16000, rng);
    g.setAggregatorWeights(Aggregator::SageMean);
    nn::ModelConfig mc;
    mc.kind = nn::GnnKind::Sage;
    mc.nonlin = nn::Nonlinearity::MaxK;
    mc.maxkK = 16;
    mc.numLayers = 3;
    mc.inDim = 48;
    mc.hiddenDim = 64;
    mc.outDim = 8;
    mc.dropout = 0.3f;
    nn::GnnModel model(mc);
    Matrix x(g.numNodes(), mc.inDim);
    fillNormal(x, rng, 0.0f, 1.0f);
    std::vector<std::uint32_t> labels(g.numNodes());
    for (NodeId i = 0; i < g.numNodes(); ++i)
        labels[i] = i % mc.outDim;
    std::vector<std::uint8_t> mask(g.numNodes(), 1);
    nn::Adam adam(model.params(), 0.01f, 0.9f, 0.999f, 1e-8f, 0.0f);

    auto epoch = [&](bool record) {
        const Matrix *logits = nullptr;
        if (record) {
            bench::recordKernel(kBench, "er1k", 48, 16, [&] {
                logits = &model.forward(g, x, true);
                gpusim::KernelStats st;
                st.kernel = "layer_stack_forward";
                return st;
            });
        } else {
            logits = &model.forward(g, x, true);
        }
        // The loss lives outside the layer stack; keep it unprobed.
        nn::LossResult loss =
            nn::softmaxCrossEntropy(*logits, labels, mask);
        if (record) {
            bench::recordKernel(kBench, "er1k", 48, 16, [&] {
                model.backward(g, loss.gradLogits);
                gpusim::KernelStats st;
                st.kernel = "layer_stack_backward";
                return st;
            });
        } else {
            model.backward(g, loss.gradLogits);
        }
        adam.step();
    };

    epoch(false); // epoch 0: warm the workspaces
    epoch(false); // epoch 1: settle Adam moments and scratch shapes
    epoch(true);  // epoch 2: steady state, recorded
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Deterministic micro-kernel perf records (cache model "
                  "off; see bench/baselines/perf_kernels.json)");

    const std::vector<std::uint32_t> ks{8, 32};
    for (const PerfGraph &pg : makeGraphs())
        runKernelSweep(pg, 256, ks);
    runLayerStackProbe();

    // Human-readable summary of what went into the report.
    TextTable table({"bench", "kernel", "graph", "dim", "k", "sim ms",
                     "DRAM MB", "workspace B", "allocs"});
    for (const auto &r : bench::perfRecords())
        table.addRow({r.bench, r.kernel, r.graph, std::to_string(r.dim),
                      std::to_string(r.k),
                      formatFloat(r.simSeconds * 1e3, 3),
                      formatFloat(static_cast<double>(r.dramBytes) / 1e6,
                                  2),
                      std::to_string(r.peakWorkspaceBytes),
                      std::to_string(r.allocCount)});
    if (bench::perfEnabled())
        std::printf("%s", table.render().c_str());
    else
        std::printf("(run with --json <path> to collect records; "
                    "smoke mode just exercises the sweeps)\n");

    if (bench::perfEnabled()) {
        // The fused launch must beat select + aggregate or the fusion
        // story is broken — fail the bench (and thus the perf job)
        // loudly rather than committing a lying baseline.
        const double unfused = recordedSeconds("maxk_select") +
                               recordedSeconds("spgemm_forward");
        const double fused = recordedSeconds("spgemm_forward_fused");
        const std::uint64_t unfused_dram =
            recordedDram("maxk_select") + recordedDram("spgemm_forward");
        const std::uint64_t fused_dram =
            recordedDram("spgemm_forward_fused");
        std::printf("fused forward: %.3f ms / %.2f MB DRAM vs unfused "
                    "%.3f ms / %.2f MB DRAM\n",
                    fused * 1e3, static_cast<double>(fused_dram) / 1e6,
                    unfused * 1e3,
                    static_cast<double>(unfused_dram) / 1e6);
        if (fused >= unfused || fused_dram >= unfused_dram) {
            std::fprintf(stderr, "FAIL: fused pipeline not strictly "
                                 "cheaper than unfused\n");
            return 1;
        }
    }

    bench::writePerfReport();
    return 0;
}
