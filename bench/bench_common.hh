/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: twin
 * materialisation with aggregator weights and EG partition, working-set
 * scaled device configs, and the k sweep of the evaluation section.
 */

#ifndef MAXK_BENCH_BENCH_COMMON_HH
#define MAXK_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "graph/csr.hh"
#include "graph/edge_groups.hh"
#include "graph/registry.hh"
#include "gpusim/device.hh"
#include "kernels/sim_options.hh"

namespace maxk::bench
{

/** The k sweep used by Fig. 8 and Fig. 9. */
inline std::vector<std::uint32_t>
paperKSweep()
{
    return {2, 4, 8, 16, 32, 64, 96, 128, 192};
}

/** A materialised kernel twin ready for the simulated kernels. */
struct TwinBundle
{
    DatasetInfo info;
    CsrGraph graph;
    EdgeGroupPartition part;
    SimOptions opt;  //!< device scaled for this twin's working set

    /**
     * Non-empty when the registry resolved a real on-disk dataset
     * (DatasetInfo::onDiskPath or $MAXK_DATASET_DIR) instead of the
     * synthetic twin. makeTwin logs the swap (stderr), so no result
     * row is silently backed by a real graph; benches can additionally
     * annotate their tables via fromDisk().
     */
    std::string sourcePath;
    bool fromDisk() const { return !sourcePath.empty(); }
};

/**
 * Materialise the kernel twin of a dataset with the given aggregator,
 * EG cap, and a device whose caches are scaled so that the twin's
 * feature-matrix working set occupies the same fraction of L2 as the
 * real dataset's does on the A100 (DESIGN.md Sec. 1).
 */
inline TwinBundle
makeTwin(const DatasetInfo &info, std::uint32_t dim_origin,
         Aggregator agg = Aggregator::SageMean,
         std::uint32_t workload_cap = 32, std::uint64_t seed = 2024)
{
    TwinBundle t;
    t.info = info;
    DatasetInfo pinned = info;
    if (auto source = pinResolvedSource(pinned)) {
        t.sourcePath = *source;
        logMessage(LogLevel::Info, "makeTwin(" + info.name +
                                       "): loading on-disk dataset " +
                                       *source);
    }
    Rng rng(seed ^ std::hash<std::string>{}(info.name));
    t.graph = materializeGraph(pinned, rng);
    t.graph.setAggregatorWeights(agg);
    t.part = EdgeGroupPartition::build(t.graph, workload_cap);

    const double paper_ws =
        static_cast<double>(info.paperNodes) * dim_origin * 4.0 +
        static_cast<double>(info.paperEdges) * 8.0;
    const double twin_ws =
        static_cast<double>(t.graph.numNodes()) * dim_origin * 4.0 +
        static_cast<double>(t.graph.numEdges()) * 8.0;
    t.opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(
        twin_ws / paper_ws);
    t.opt.workloadCap = workload_cap;
    return t;
}

/** Scale factor that maps twin kernel times to paper-size estimates:
 *  the dominant terms are nnz-proportional. */
inline double
paperScaleFactor(const TwinBundle &t)
{
    return static_cast<double>(t.info.paperEdges) /
           static_cast<double>(t.graph.numEdges());
}

/**
 * Fast-mode switch: when MAXK_BENCH_FAST is set in the environment the
 * benches shrink their sweeps so the full suite runs in seconds (used
 * by CI-style smoke runs). Default: full sweeps.
 */
inline bool
fastMode()
{
    const char *env = std::getenv("MAXK_BENCH_FAST");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/**
 * Parse bench CLI arguments. `--smoke` switches the bench into fast
 * mode (tiny sweeps, same code paths) — equivalent to exporting
 * MAXK_BENCH_FAST=1 — so CTest can smoke-run every bench binary and
 * catch bench rot without paying for the full paper sweeps.
 */
inline void
initBench(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            setenv("MAXK_BENCH_FAST", "1", 1);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--smoke]\n  --smoke  tiny sweeps "
                        "(same as MAXK_BENCH_FAST=1 in the env)\n",
                        argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                         arg.c_str());
            std::exit(2);
        }
    }
}

/** In fast mode keep only the first `keep` entries of a sweep. */
template <class T>
void
smokeShrink(std::vector<T> &v, std::size_t keep = 1)
{
    if (fastMode() && v.size() > keep)
        v.resize(keep);
}

/** Print a section banner matching the other bench binaries. */
inline void
banner(const std::string &title)
{
    std::printf("\n================================================"
                "===============\n%s\n"
                "================================================"
                "===============\n",
                title.c_str());
}

} // namespace maxk::bench

#endif // MAXK_BENCH_BENCH_COMMON_HH
