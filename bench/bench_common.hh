/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: twin
 * materialisation with aggregator weights and EG partition, working-set
 * scaled device configs, and the k sweep of the evaluation section.
 */

#ifndef MAXK_BENCH_BENCH_COMMON_HH
#define MAXK_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/telemetry.hh"
#include "graph/csr.hh"
#include "graph/edge_groups.hh"
#include "graph/registry.hh"
#include "gpusim/device.hh"
#include "gpusim/kernel_stats.hh"
#include "kernels/sim_options.hh"
#include "tensor/alloc_probe.hh"

namespace maxk::bench
{

/** The k sweep used by Fig. 8 and Fig. 9. */
inline std::vector<std::uint32_t>
paperKSweep()
{
    return {2, 4, 8, 16, 32, 64, 96, 128, 192};
}

/** A materialised kernel twin ready for the simulated kernels. */
struct TwinBundle
{
    DatasetInfo info;
    CsrGraph graph;
    EdgeGroupPartition part;
    SimOptions opt;  //!< device scaled for this twin's working set

    /**
     * Non-empty when the registry resolved a real on-disk dataset
     * (DatasetInfo::onDiskPath or $MAXK_DATASET_DIR) instead of the
     * synthetic twin. makeTwin logs the swap (stderr), so no result
     * row is silently backed by a real graph; benches can additionally
     * annotate their tables via fromDisk().
     */
    std::string sourcePath;
    bool fromDisk() const { return !sourcePath.empty(); }
};

/**
 * Materialise the kernel twin of a dataset with the given aggregator,
 * EG cap, and a device whose caches are scaled so that the twin's
 * feature-matrix working set occupies the same fraction of L2 as the
 * real dataset's does on the A100 (DESIGN.md Sec. 1).
 */
inline TwinBundle
makeTwin(const DatasetInfo &info, std::uint32_t dim_origin,
         Aggregator agg = Aggregator::SageMean,
         std::uint32_t workload_cap = 32, std::uint64_t seed = 2024)
{
    TwinBundle t;
    t.info = info;
    DatasetInfo pinned = info;
    if (auto source = pinResolvedSource(pinned)) {
        t.sourcePath = *source;
        logMessage(LogLevel::Info, "makeTwin(" + info.name +
                                       "): loading on-disk dataset " +
                                       *source);
    }
    Rng rng(seed ^ std::hash<std::string>{}(info.name));
    t.graph = materializeGraph(pinned, rng);
    t.graph.setAggregatorWeights(agg);
    t.part = EdgeGroupPartition::build(t.graph, workload_cap);

    const double paper_ws =
        static_cast<double>(info.paperNodes) * dim_origin * 4.0 +
        static_cast<double>(info.paperEdges) * 8.0;
    const double twin_ws =
        static_cast<double>(t.graph.numNodes()) * dim_origin * 4.0 +
        static_cast<double>(t.graph.numEdges()) * 8.0;
    t.opt.device = gpusim::DeviceConfig::a100().scaledForWorkingSet(
        twin_ws / paper_ws);
    t.opt.workloadCap = workload_cap;
    return t;
}

/** Scale factor that maps twin kernel times to paper-size estimates:
 *  the dominant terms are nnz-proportional. */
inline double
paperScaleFactor(const TwinBundle &t)
{
    return static_cast<double>(t.info.paperEdges) /
           static_cast<double>(t.graph.numEdges());
}

/**
 * Fast-mode switch: when MAXK_BENCH_FAST is set in the environment the
 * benches shrink their sweeps so the full suite runs in seconds (used
 * by CI-style smoke runs). Default: full sweeps.
 */
inline bool
fastMode()
{
    const char *env = std::getenv("MAXK_BENCH_FAST");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/* ------------------------------------------------- perf JSON report -- */

/**
 * One machine-readable perf measurement: a simulated kernel launch (or
 * a pseudo-kernel like the steady-state layer stack) identified by
 * (bench, kernel, graph, dim, k). All metrics are deterministic by
 * construction — records are taken with simulateCaches=false so every
 * byte count is structural (graph topology and shapes only, never host
 * heap addresses) — which is what lets tools/maxk-perf-check gate CI on
 * tight thresholds against the committed baselines under
 * bench/baselines/.
 */
struct PerfRecord
{
    std::string bench;
    std::string kernel;
    std::string graph;
    std::uint32_t dim = 0;
    std::uint32_t k = 0;
    double simSeconds = 0.0;             //!< KernelStats::totalSeconds
    std::uint64_t dramBytes = 0;         //!< DRAM read + write traffic
    std::uint64_t l2ReqBytes = 0;        //!< paper's "total traffic"
    std::uint64_t peakWorkspaceBytes = 0; //!< transient Matrix/CBSR growth
    std::uint64_t allocCount = 0;        //!< Matrix/CBSR heap allocations
};

/** Collected perf records of this bench process (see --json). */
inline std::vector<PerfRecord> &
perfRecords()
{
    static std::vector<PerfRecord> records;
    return records;
}

/** Path given via --json; empty = reporting disabled. */
inline std::string &
perfJsonPath()
{
    static std::string path;
    return path;
}

inline bool
perfEnabled()
{
    return !perfJsonPath().empty();
}

/** Path given via --metrics-json; empty = disabled. */
inline std::string &
metricsJsonPath()
{
    static std::string path;
    return path;
}

/**
 * Write a MetricsRegistry snapshot to the --metrics-json path (no-op
 * when the flag was not given). Call at the end of main(), after the
 * instrumented work ran with telemetry armed (initBench arms it when
 * the flag is present).
 */
inline void
writeMetricsReport()
{
    if (metricsJsonPath().empty())
        return;
    const std::string json = telemetry::snapshotMetrics().renderJson();
    std::FILE *f = std::fopen(metricsJsonPath().c_str(), "w");
    if (!f)
        fatal("metrics report: cannot open " + metricsJsonPath());
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "metrics report: -> %s\n",
                 metricsJsonPath().c_str());
}

/**
 * Run one kernel launch under the allocation probe and append its
 * record. `run` must return the launch's gpusim::KernelStats; callers
 * pass a cache-free SimOptions (see PerfRecord) and should warm the
 * output buffers once beforehand so the record captures the
 * steady-state allocation count (0 for the workspace-reusing kernels).
 */
template <class Fn>
inline void
recordKernel(const std::string &bench_name, const std::string &graph,
             std::uint32_t dim, std::uint32_t k, Fn &&run)
{
    if (!perfEnabled()) {
        // Still execute the launch: --smoke without --json must walk
        // the exact same code paths (that is what smoke-testing is for).
        run();
        return;
    }
    const std::uint64_t live_before = AllocProbe::liveBytes();
    const std::uint64_t allocs_before = AllocProbe::totalAllocCount();
    AllocProbe::resetPeak();
    const gpusim::KernelStats stats = run();
    PerfRecord rec;
    rec.bench = bench_name;
    rec.kernel = stats.kernel;
    rec.graph = graph;
    rec.dim = dim;
    rec.k = k;
    rec.simSeconds = stats.totalSeconds;
    const gpusim::PhaseStats total = stats.aggregate();
    rec.dramBytes = total.dramReadBytes + total.dramWriteBytes;
    rec.l2ReqBytes = total.l2ReqBytes;
    const std::uint64_t peak = AllocProbe::peakBytes();
    rec.peakWorkspaceBytes = peak > live_before ? peak - live_before : 0;
    rec.allocCount = AllocProbe::totalAllocCount() - allocs_before;
    perfRecords().push_back(std::move(rec));
}

/**
 * Write the collected records to the --json path (no-op when the flag
 * was not given). Schema "maxk-perf-v1": a flat array of flat objects —
 * see README "Performance" for the field list and the baseline-refresh
 * workflow.
 */
inline void
writePerfReport()
{
    if (!perfEnabled())
        return;
    std::FILE *f = std::fopen(perfJsonPath().c_str(), "w");
    if (!f)
        fatal("perf report: cannot open " + perfJsonPath());
    std::fprintf(f, "{\n  \"schema\": \"maxk-perf-v1\",\n"
                    "  \"records\": [\n");
    const auto &records = perfRecords();
    for (std::size_t i = 0; i < records.size(); ++i) {
        const PerfRecord &r = records[i];
        std::fprintf(
            f,
            "    {\"bench\": \"%s\", \"kernel\": \"%s\", "
            "\"graph\": \"%s\", \"dim\": %u, \"k\": %u, "
            "\"sim_seconds\": %.17g, \"dram_bytes\": %llu, "
            "\"l2_req_bytes\": %llu, \"peak_workspace_bytes\": %llu, "
            "\"alloc_count\": %llu}%s\n",
            r.bench.c_str(), r.kernel.c_str(), r.graph.c_str(), r.dim,
            r.k, r.simSeconds,
            static_cast<unsigned long long>(r.dramBytes),
            static_cast<unsigned long long>(r.l2ReqBytes),
            static_cast<unsigned long long>(r.peakWorkspaceBytes),
            static_cast<unsigned long long>(r.allocCount),
            i + 1 == records.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "perf report: %zu records -> %s\n",
                 records.size(), perfJsonPath().c_str());
}

/**
 * Parse bench CLI arguments. `--smoke` switches the bench into fast
 * mode (tiny sweeps, same code paths) — equivalent to exporting
 * MAXK_BENCH_FAST=1 — so CTest can smoke-run every bench binary and
 * catch bench rot without paying for the full paper sweeps.
 * `--json <path>` enables the machine-readable perf report above.
 */
inline void
initBench(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            setenv("MAXK_BENCH_FAST", "1", 1);
        } else if (arg == "--json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --json needs a path\n", argv[0]);
                std::exit(2);
            }
            perfJsonPath() = argv[++i];
        } else if (arg == "--metrics-json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: --metrics-json needs a path\n",
                             argv[0]);
                std::exit(2);
            }
            metricsJsonPath() = argv[++i];
            // Arm process-wide so every instrumented path the bench
            // exercises lands in the snapshot. Benches that compare
            // armed-vs-disarmed behaviour manage arming themselves and
            // simply should not take this flag.
            telemetry::setArmed(true);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--smoke] [--json <path>] "
                "[--metrics-json <path>]\n"
                "  --smoke        tiny sweeps (same as MAXK_BENCH_FAST=1 "
                "in the env)\n"
                "  --json <path>  write deterministic per-kernel perf "
                "records (maxk-perf-v1)\n"
                "  --metrics-json <path>  arm telemetry and write a "
                "MetricsRegistry snapshot (maxk-metrics-v1)\n",
                argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                         arg.c_str());
            std::exit(2);
        }
    }
}

/** In fast mode keep only the first `keep` entries of a sweep. */
template <class T>
void
smokeShrink(std::vector<T> &v, std::size_t keep = 1)
{
    if (fastMode() && v.size() > keep)
        v.resize(keep);
}

/** Print a section banner matching the other bench binaries. */
inline void
banner(const std::string &title)
{
    std::printf("\n================================================"
                "===============\n%s\n"
                "================================================"
                "===============\n",
                title.c_str());
}

} // namespace maxk::bench

#endif // MAXK_BENCH_BENCH_COMMON_HH
