/**
 * @file
 * Extension bench: MaxK-GNN under partition-parallel full-graph
 * training (the BNS-GCN deployment the paper cites as compatible,
 * Sec. 1). For 1-8 simulated GPUs on the ogbn-products twin, compares
 * the ReLU baseline with MaxK-GNN on per-epoch compute, boundary
 * exchange volume, and total epoch time — including the BNS boundary
 * sampling knob.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "nn/distributed.hh"

using namespace maxk;

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Extension: partition-parallel training (BNS-GCN "
                  "deployment) with MaxK-GNN");

    const auto info = *findDataset("ogbn-products");
    bench::TwinBundle twin =
        bench::makeTwin(info, 256, Aggregator::SageMean);

    nn::ModelConfig relu;
    relu.kind = nn::GnnKind::Sage;
    relu.nonlin = nn::Nonlinearity::Relu;
    relu.numLayers = 3;
    relu.inDim = 100;
    relu.hiddenDim = 256;
    relu.outDim = 47;
    nn::ModelConfig maxk = relu;
    maxk.nonlin = nn::Nonlinearity::MaxK;
    maxk.maxkK = 32;

    Rng rng(31);
    TextTable table({"GPUs", "method", "compute ms", "exchange ms",
                     "boundary nodes", "exchanged MB", "epoch ms",
                     "speedup"});
    for (const std::uint32_t gpus : {1u, 2u, 4u, 8u}) {
        const Partition part = bfsPartition(twin.graph, gpus, rng);
        nn::ClusterConfig cluster;
        cluster.numGpus = gpus;

        const auto t_relu = nn::profileDistributedEpoch(
            relu, twin.graph, part, cluster, twin.opt);
        const auto t_maxk = nn::profileDistributedEpoch(
            maxk, twin.graph, part, cluster, twin.opt);

        auto add = [&](const char *name,
                       const nn::DistributedEpochTiming &t,
                       double speedup) {
            table.addRow({std::to_string(gpus), name,
                          formatFloat(t.computeSeconds * 1e3, 3),
                          formatFloat(t.exchangeSeconds * 1e3, 3),
                          std::to_string(t.boundaryNodes),
                          formatFloat(t.exchangedBytes / 1e6, 2),
                          formatFloat(t.total() * 1e3, 3),
                          formatSpeedup(speedup)});
        };
        add("ReLU baseline", t_relu, 1.0);
        add("MaxK-GNN k=32", t_maxk, t_relu.total() / t_maxk.total());
    }
    std::printf("%s\n", table.render().c_str());

    // BNS sampling sweep at 4 GPUs.
    const Partition part = bfsPartition(twin.graph, 4, rng);
    TextTable bns({"boundary sample rate", "exchanged MB (ReLU)",
                   "exchanged MB (MaxK)", "epoch ms (MaxK)"});
    for (const double rate : {1.0, 0.5, 0.1}) {
        nn::ClusterConfig cluster;
        cluster.numGpus = 4;
        cluster.boundarySampleRate = rate;
        const auto t_relu = nn::profileDistributedEpoch(
            relu, twin.graph, part, cluster, twin.opt);
        const auto t_maxk = nn::profileDistributedEpoch(
            maxk, twin.graph, part, cluster, twin.opt);
        bns.addRow({formatFloat(rate, 2),
                    formatFloat(t_relu.exchangedBytes / 1e6, 2),
                    formatFloat(t_maxk.exchangedBytes / 1e6, 2),
                    formatFloat(t_maxk.total() * 1e3, 3)});
    }
    std::printf("\nBNS-GCN boundary sampling at 4 GPUs:\n%s\n",
                bns.render().c_str());
    std::printf("Takeaways: MaxK shrinks the hidden-layer boundary "
                "exchange by 4*dim/(4+1)k (6.4x\nat k=32, dim=256; the "
                "final layer ships dense logits either way) on top of "
                "its\nkernel speedup; boundary sampling composes "
                "multiplicatively. Accounting is\nreplica-exact: a "
                "boundary node ships once per remote reader part "
                "(matching the\nreal dist::ShardedTrainer traffic — "
                "see bench_distributed).\n");
    return 0;
}
