/**
 * @file
 * Table 1 reproduction: the 24 benchmark graphs with the paper's
 * published |V| / |E| alongside the synthetic twin actually
 * materialised in this environment (DESIGN.md substitution).
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "graph/stats.hh"

using namespace maxk;

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Table 1: graph datasets — paper sizes vs synthetic "
                  "twins");

    TextTable table({"Graph", "paper |V|", "paper |E|", "avg deg",
                     "twin |V|", "twin |E|", "twin avg", "twin max deg",
                     "gini"});

    bool any_disk = false;
    for (const auto &info : kernelSuite()) {
        // Pin the resolution so the "*" label and the actual load
        // cannot diverge; a per-row seed keeps every synthetic twin's
        // stream independent of whether earlier rows came from disk.
        DatasetInfo pinned = info;
        const bool from_disk = pinResolvedSource(pinned).has_value();
        any_disk = any_disk || from_disk;
        Rng rng(7 ^ std::hash<std::string>{}(info.name));
        CsrGraph g = materializeGraph(pinned, rng);
        const DegreeStats s = computeDegreeStats(g);
        table.addRow({from_disk ? info.name + " *" : info.name,
                      std::to_string(info.paperNodes),
                      std::to_string(info.paperEdges),
                      formatFloat(info.paperAvgDegree(), 1),
                      std::to_string(s.numNodes),
                      std::to_string(s.numEdges),
                      formatFloat(s.avgDegree, 1),
                      std::to_string(s.maxDegree),
                      formatFloat(s.gini, 3)});
    }
    std::printf("%s\n", table.render().c_str());
    if (any_disk)
        std::printf("* loaded from an on-disk dataset (%s), not a "
                    "synthetic twin; the 'twin' columns show the real "
                    "graph's statistics.\n",
                    kDatasetDirEnv);
    std::printf("Twins preserve the paper's average degree exactly and "
                "its degree skew\nfamily (power-law via RMAT, regular "
                "via ring lattice); node counts are\ncapped so every "
                "kernel run fits the simulation budget.\n");
    return 0;
}
