/**
 * @file
 * Fig. 8 reproduction: forward SpGEMM and backward SSpMM speedup over
 * the cuSPARSE-like and GNNAdvisor-like SpMM baselines across all 24
 * Table-1 graphs and the paper's k sweep (dim_origin = 256).
 *
 * Reported exactly as the figure's four series per graph:
 *   SpGEMM/cuSPARSE, SSpMM/cuSPARSE, SpGEMM/GNNA, SSpMM/GNNA.
 *
 * Expected shape: speedup grows as k shrinks and saturates below k~8;
 * high-average-degree graphs (Reddit, ddi, ogbn-proteins, ppa,
 * ogbn-products) show the largest gains; k <= 128 wins nearly
 * everywhere against GNNA and in most cases against cuSPARSE.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stopwatch.hh"
#include "common/table.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "kernels/registry.hh"
#include "kernels/spmm_gnna.hh"
#include "kernels/spmm_row_wise.hh"
#include "tensor/init.hh"

using namespace maxk;

namespace
{
constexpr std::uint32_t kDimOrigin = 256;

struct GraphResult
{
    std::string name;
    double avgDeg;
    double tSpmmCusp, tSpmmGnna;
    std::string selectorPick;   //!< adaptive SpMM pick for this twin
    std::string selectorReason;
    std::vector<double> spgemmVsCusp, sspmmVsCusp;
    std::vector<double> spgemmVsGnna, sspmmVsGnna;
};

/**
 * Perf-report pass (--json): rerun each kernel with the cache model off
 * so every recorded byte is structural — deterministic across runs and
 * machines, which is what lets tools/maxk-perf-check hold tight
 * regression thresholds against bench/baselines/fig8_smoke.json. Each
 * configuration is warmed once so the records capture the steady-state
 * (zero-allocation) launch.
 */
void
recordPerf(const std::string &graph_name, const bench::TwinBundle &twin,
           const Matrix &x, const std::vector<std::uint32_t> &ks)
{
    SimOptions opt = twin.opt;
    opt.simulateCaches = false;

    Matrix y;
    spmmRowWise(twin.graph, x, y, opt);
    bench::recordKernel("fig8", graph_name, kDimOrigin, 0, [&] {
        return spmmRowWise(twin.graph, x, y, opt);
    });
    spmmGnna(twin.graph, twin.part, x, y, opt);
    bench::recordKernel("fig8", graph_name, kDimOrigin, 0, [&] {
        return spmmGnna(twin.graph, twin.part, x, y, opt);
    });

    for (const std::uint32_t k : ks) {
        MaxKResult mk;
        maxkCompress(x, k, opt, mk);
        bench::recordKernel("fig8", graph_name, kDimOrigin, k, [&] {
            maxkCompress(x, k, opt, mk);
            return mk.stats;
        });
        spgemmForward(twin.graph, twin.part, mk.cbsr, y, opt);
        bench::recordKernel("fig8", graph_name, kDimOrigin, k, [&] {
            return spgemmForward(twin.graph, twin.part, mk.cbsr, y, opt);
        });
        CbsrMatrix fused_cbsr;
        Matrix y_fused;
        spgemmForwardFused(twin.graph, twin.part, x, k, fused_cbsr,
                           y_fused, opt);
        bench::recordKernel("fig8", graph_name, kDimOrigin, k, [&] {
            return spgemmForwardFused(twin.graph, twin.part, x, k,
                                      fused_cbsr, y_fused, opt);
        });
        CbsrMatrix dxs;
        dxs.adoptPattern(mk.cbsr);
        sspmmBackward(twin.graph, twin.part, y, dxs, opt);
        bench::recordKernel("fig8", graph_name, kDimOrigin, k, [&] {
            return sspmmBackward(twin.graph, twin.part, y, dxs, opt);
        });
    }
}

GraphResult
runGraph(const DatasetInfo &info, const std::vector<std::uint32_t> &ks)
{
    bench::TwinBundle twin =
        bench::makeTwin(info, kDimOrigin, Aggregator::SageMean);
    GraphResult r;
    r.name = info.name;
    r.avgDeg = twin.graph.avgDegree();
    r.selectorPick = std::string(
        kernels::resolveSpmmVariant("auto", twin.graph, kDimOrigin, 0,
                                    twin.opt, &r.selectorReason)
            .name);

    Rng rng(9000 + twin.graph.numNodes());
    Matrix x(twin.graph.numNodes(), kDimOrigin);
    fillNormal(x, rng, 0.0f, 1.0f);

    Matrix y;
    r.tSpmmCusp = spmmRowWise(twin.graph, x, y, twin.opt).totalSeconds;
    r.tSpmmGnna =
        spmmGnna(twin.graph, twin.part, x, y, twin.opt).totalSeconds;

    for (const std::uint32_t k : ks) {
        MaxKResult mk = maxkCompress(x, k, twin.opt);
        const double t_fwd =
            spgemmForward(twin.graph, twin.part, mk.cbsr, y, twin.opt)
                .totalSeconds;
        CbsrMatrix dxs;
        dxs.adoptPattern(mk.cbsr);
        const double t_bwd =
            sspmmBackward(twin.graph, twin.part, y, dxs, twin.opt)
                .totalSeconds;
        r.spgemmVsCusp.push_back(r.tSpmmCusp / t_fwd);
        r.sspmmVsCusp.push_back(r.tSpmmCusp / t_bwd);
        r.spgemmVsGnna.push_back(r.tSpmmGnna / t_fwd);
        r.sspmmVsGnna.push_back(r.tSpmmGnna / t_bwd);
    }

    if (bench::perfEnabled())
        recordPerf(info.name, twin, x, ks);
    return r;
}

void
printSeries(const char *title, const std::vector<GraphResult> &results,
            const std::vector<std::uint32_t> &ks,
            std::vector<double> GraphResult::*series)
{
    std::vector<std::string> headers{"Graph", "avg deg"};
    for (auto k : ks)
        headers.push_back("k=" + std::to_string(k));
    TextTable table(std::move(headers));
    for (const auto &r : results) {
        std::vector<std::string> row{r.name, formatFloat(r.avgDeg, 0)};
        for (double s : r.*series)
            row.push_back(formatFloat(s, 2));
        table.addRow(std::move(row));
    }
    std::printf("\n-- %s --\n%s", title, table.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Fig. 8: SpGEMM / SSpMM kernel speedup over SpMM "
                  "baselines (dim_origin = 256)");

    const auto ks = bench::fastMode()
                        ? std::vector<std::uint32_t>{8, 32, 128}
                        : bench::paperKSweep();
    const auto &suite = kernelSuite();
    const std::size_t limit = bench::fastMode() ? 4 : suite.size();

    Stopwatch watch;
    std::vector<GraphResult> results;
    for (std::size_t i = 0; i < limit; ++i) {
        results.push_back(runGraph(suite[i], ks));
        std::fprintf(stderr, "  [%zu/%zu] %s done (%.1fs)\n", i + 1,
                     limit, suite[i].name.c_str(),
                     watch.elapsedNs() * 1e-9);
    }

    // What the adaptive selector would run for the dense SpMM baseline
    // of each dataset (kernelVariant="auto" at the same launch shape).
    TextTable picks({"Graph", "avg deg", "adaptive SpMM pick", "why"});
    for (const auto &r : results)
        picks.addRow({r.name, formatFloat(r.avgDeg, 0), r.selectorPick,
                      r.selectorReason});
    std::printf("\n-- Adaptive selector picks (dim_origin = 256) --\n%s",
                picks.render().c_str());

    printSeries("MaxK-GNN forward SpGEMM speedup vs cuSPARSE SpMM",
                results, ks, &GraphResult::spgemmVsCusp);
    printSeries("MaxK-GNN backward SSpMM speedup vs cuSPARSE SpMM",
                results, ks, &GraphResult::sspmmVsCusp);
    printSeries("MaxK-GNN forward SpGEMM speedup vs GNNAdvisor SpMM",
                results, ks, &GraphResult::spgemmVsGnna);
    printSeries("MaxK-GNN backward SSpMM speedup vs GNNAdvisor SpMM",
                results, ks, &GraphResult::sspmmVsGnna);

    // Paper's headline aggregate: average speedup on graphs with avg
    // degree > 50 at k = 8/16/32/64 (Sec. 5.2).
    std::printf("\n-- Aggregate: graphs with average degree > 50 --\n");
    TextTable agg({"k", "SpGEMM/cuSP (paper 4.63/4.15/2.54/1.46)",
                   "SSpMM/cuSP (paper 6.93/5.39/2.55/1.46)",
                   "SpGEMM/GNNA (paper 6.39/5.71/3.50/2.02)",
                   "SSpMM/GNNA (paper 9.57/7.46/3.55/2.04)"});
    for (const std::uint32_t target_k : {8u, 16u, 32u, 64u}) {
        std::size_t ki = ks.size();
        for (std::size_t i = 0; i < ks.size(); ++i)
            if (ks[i] == target_k)
                ki = i;
        if (ki == ks.size())
            continue;
        double s1 = 0, s2 = 0, s3 = 0, s4 = 0;
        int n = 0;
        for (const auto &r : results) {
            if (r.avgDeg <= 50.0)
                continue;
            s1 += r.spgemmVsCusp[ki];
            s2 += r.sspmmVsCusp[ki];
            s3 += r.spgemmVsGnna[ki];
            s4 += r.sspmmVsGnna[ki];
            ++n;
        }
        if (n == 0)
            continue;
        agg.addRow({std::to_string(target_k), formatFloat(s1 / n, 2),
                    formatFloat(s2 / n, 2), formatFloat(s3 / n, 2),
                    formatFloat(s4 / n, 2)});
    }
    std::printf("%s\n", agg.render().c_str());

    // Coverage claim: fraction of (graph, k<=128) cases with speedup.
    int wins_cusp = 0, wins_gnna = 0, cases = 0;
    for (const auto &r : results)
        for (std::size_t i = 0; i < ks.size(); ++i) {
            if (ks[i] > 128)
                continue;
            ++cases;
            wins_cusp += r.spgemmVsCusp[i] > 1.0 ? 1 : 0;
            wins_gnna += r.spgemmVsGnna[i] > 1.0 ? 1 : 0;
        }
    std::printf("SpGEMM wins at k<=128: %.1f%% vs cuSPARSE (paper "
                "92.2%%), %.1f%% vs GNNA (paper 100%%)\n",
                100.0 * wins_cusp / cases, 100.0 * wins_gnna / cases);
    std::printf("Total bench time: %.1fs\n", watch.elapsedNs() * 1e-9);
    bench::writePerfReport();
    return 0;
}
