/**
 * @file
 * Fig. 10 reproduction: full-batch training convergence on the
 * ogbn-products twin for the ReLU baseline and MaxK-GNN at k = 64, 32,
 * 8 (scaled to the accuracy twin's hidden width). The paper's claim:
 * MaxK converges like — or slightly faster than — the baseline.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/table.hh"
#include "nn/trainer.hh"

using namespace maxk;

namespace
{
constexpr std::size_t kHidden = 64;

std::vector<double>
runCurve(TrainingTask task, nn::Nonlinearity nonlin,
         std::uint32_t k_paper, std::uint32_t epochs,
         std::uint32_t eval_every)
{
    // Harden the twin task so convergence takes tens of epochs, like
    // the paper's 500-epoch full-batch runs: noisier features, weaker
    // homophily, sparser graph.
    task.featureNoise = 1.35;
    task.intraEdgeFraction = 0.5;
    task.accuracyAvgDegree = 8.0;

    Rng rng(4242);
    TrainingData data = materializeTrainingData(task, rng);
    nn::ModelConfig cfg;
    cfg.kind = nn::GnnKind::Sage;
    cfg.nonlin = nonlin;
    cfg.maxkK = std::max<std::uint32_t>(1, k_paper * kHidden / 256);
    cfg.numLayers = 2;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = kHidden;
    cfg.outDim = task.numClasses;
    cfg.dropout = 0.3f;
    cfg.seed = 99;
    nn::GnnModel model(cfg);
    nn::Trainer trainer(model, data, task);
    nn::TrainConfig tc;
    tc.epochs = epochs;
    tc.lr = 0.005f;
    tc.evalEvery = eval_every;
    return trainer.run(tc).testMetric;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Fig. 10: convergence on ogbn-products — ReLU "
                  "baseline vs MaxK-GNN (k = 64, 32, 8)");

    TrainingTask task = *findTrainingTask("ogbn-products");
    const std::uint32_t epochs = bench::fastMode() ? 30 : 100;
    const std::uint32_t eval_every = bench::fastMode() ? 5 : 10;

    const auto base =
        runCurve(task, nn::Nonlinearity::Relu, 0, epochs, eval_every);
    const auto k64 =
        runCurve(task, nn::Nonlinearity::MaxK, 64, epochs, eval_every);
    const auto k32 =
        runCurve(task, nn::Nonlinearity::MaxK, 32, epochs, eval_every);
    const auto k8 =
        runCurve(task, nn::Nonlinearity::MaxK, 8, epochs, eval_every);

    TextTable table({"epoch", "ReLU baseline", "MaxK k=64", "MaxK k=32",
                     "MaxK k=8"});
    for (std::size_t i = 0; i < base.size(); ++i) {
        const std::uint32_t epoch =
            static_cast<std::uint32_t>(i * eval_every);
        table.addRow({std::to_string(std::min(epoch, epochs - 1)),
                      formatFloat(base[i], 4), formatFloat(k64[i], 4),
                      formatFloat(k32[i], 4), formatFloat(k8[i], 4)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape (paper Fig. 10): all four curves "
                "converge to similar test\naccuracy; lower k converges "
                "slightly faster early on.\n");
    return 0;
}
