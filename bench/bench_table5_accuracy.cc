/**
 * @file
 * Table 5 reproduction: accuracy AND speedup of MaxK-GNN against the
 * ReLU baseline for SAGE / GCN / GIN on the five evaluation datasets,
 * at two k values per model (the paper picks the best-performing k).
 *
 * Accuracy comes from real full-batch training on the SBM accuracy
 * twins (hidden 64; k scaled to preserve the paper's k/hidden density).
 * Speedups come from the simulated epoch profiles on the kernel twins
 * at the Table 3 architecture, as in Fig. 9.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/stopwatch.hh"
#include "common/table.hh"
#include "nn/trainer.hh"

using namespace maxk;

namespace
{

constexpr std::size_t kAccuracyHidden = 64;

/** Paper k values reported per dataset (SAGE row of Table 5). */
std::pair<std::uint32_t, std::uint32_t>
paperKs(const std::string &name)
{
    if (name == "Reddit")
        return {32, 16};
    if (name == "ogbn-proteins")
        return {64, 32};
    if (name == "ogbn-products")
        return {32, 16};
    if (name == "Yelp")
        return {96, 32};
    return {32, 8}; // Flickr
}

double
trainOnce(const TrainingTask &task, TrainingData data, nn::GnnKind kind,
          nn::Nonlinearity nonlin, std::uint32_t k_scaled)
{
    nn::ModelConfig cfg;
    cfg.kind = kind;
    cfg.nonlin = nonlin;
    cfg.maxkK = k_scaled;
    cfg.numLayers = 2;
    cfg.inDim = task.featureDim;
    cfg.hiddenDim = kAccuracyHidden;
    cfg.outDim = task.numClasses;
    cfg.dropout = 0.1f;
    cfg.seed = 1234;
    nn::GnnModel model(cfg);
    nn::Trainer trainer(model, data, task);
    nn::TrainConfig tc;
    tc.epochs = bench::fastMode() ? 30 : 80;
    tc.lr = 0.01f;
    tc.evalEvery = 10;
    return trainer.run(tc).testAtBestVal;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Table 5: MaxK-GNN accuracy & speedup vs ReLU "
                  "baseline (DGL/cuSPARSE and GNNAdvisor)");
    std::printf("Accuracy: SBM twin, hidden %zu, k scaled by "
                "hidden/256 to preserve density.\n"
                "Speedup: simulated epoch profile at Table 3 scale "
                "(hidden 256/384).\n",
                kAccuracyHidden);

    Stopwatch watch;
    std::vector<nn::GnnKind> models = {nn::GnnKind::Sage,
                                       nn::GnnKind::Gcn,
                                       nn::GnnKind::Gin};
    bench::smokeShrink(models);
    std::vector<TrainingTask> tasks = trainingSuite();
    bench::smokeShrink(tasks);

    for (const auto &task : tasks) {
        const auto [k_hi, k_lo] = paperKs(task.info.name);
        bench::TwinBundle twin =
            bench::makeTwin(task.info, 256, Aggregator::SageMean);

        std::printf("\n### %s (metric: %s) ###\n",
                    task.info.name.c_str(), metricName(task.metric));
        TextTable table({"model", "method", "k(paper)", "k(scaled)",
                         "metric", "spd cuSP.", "spd GNNA."});

        for (const nn::GnnKind kind : models) {
            twin.graph.setAggregatorWeights(nn::aggregatorFor(kind));
            nn::ModelConfig prof;
            prof.kind = kind;
            prof.nonlin = nn::Nonlinearity::Relu;
            prof.numLayers = 3;
            prof.inDim = 128;
            prof.hiddenDim = 256;
            prof.outDim = task.numClasses;
            const double t_cusp =
                nn::profileEpoch(prof, twin.graph, twin.part, twin.opt,
                                 nn::BaselineKernel::CuSparse)
                    .total();
            const double t_gnna =
                nn::profileEpoch(prof, twin.graph, twin.part, twin.opt,
                                 nn::BaselineKernel::Gnna)
                    .total();

            Rng rng(777);
            TrainingData data = materializeTrainingData(task, rng);

            const double base_metric =
                trainOnce(task, data, kind, nn::Nonlinearity::Relu, 0);
            table.addRow({nn::gnnKindName(kind), "baseline", "-", "-",
                          formatFloat(base_metric, 4), "1.00x",
                          formatFloat(t_gnna / t_cusp, 2) + "x vs self"});

            for (const std::uint32_t k : {k_hi, k_lo}) {
                const std::uint32_t k_scaled = std::max<std::uint32_t>(
                    1, k * kAccuracyHidden / 256);
                const double metric = trainOnce(
                    task, data, kind, nn::Nonlinearity::MaxK, k_scaled);
                nn::ModelConfig mcfg = prof;
                mcfg.nonlin = nn::Nonlinearity::MaxK;
                mcfg.maxkK = k;
                const double t_maxk =
                    nn::profileEpoch(mcfg, twin.graph, twin.part,
                                     twin.opt)
                        .total();
                table.addRow({nn::gnnKindName(kind), "MaxK-GNN",
                              std::to_string(k),
                              std::to_string(k_scaled),
                              formatFloat(metric, 4),
                              formatSpeedup(t_cusp / t_maxk),
                              formatSpeedup(t_gnna / t_maxk)});
            }
        }
        std::printf("%s", table.render().c_str());
        std::fprintf(stderr, "  [%s done, %.1fs]\n",
                     task.info.name.c_str(),
                     watch.elapsedNs() * 1e-9);
    }

    std::printf("\nExpected shape (paper Table 5): MaxK at the larger "
                "k matches baseline metric\n(sometimes exceeding it); "
                "the smaller k trades a little metric for more "
                "speedup;\nReddit-class datasets reach ~2-4.5x, "
                "Flickr/Yelp-class 1.05-1.4x.\nTotal bench time: "
                "%.1fs\n",
                watch.elapsedNs() * 1e-9);
    return 0;
}
