/**
 * @file
 * Online inference serving bench (ISSUE 8): trains a small SAGE+MaxK
 * model, then replays Zipfian single-vertex request traffic through
 * ServeSession with the embedding cache off and at increasing cache
 * fractions. Emits deterministic maxk-perf-v1 records gated by
 * tools/maxk-perf-check against bench/baselines/serve.json.
 *
 * Every reported number is structural: planned rows/edges/bytes through
 * the gemm/elementwise roofline and arrival times built from uniform
 * draws — never wall time and never libm on data-dependent values — so
 * records are identical on every machine and thread count. The bench
 * hard-fails (fatal) if any cached replay's logits diverge bitwise from
 * the cache-off replay, if the warm cache serves zero hits, or if the
 * warm simulated throughput fails to strictly beat the cache-off path:
 * the correctness anchor and the headline win are enforced on every
 * perf-gate run, not only in the unit suites.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/table.hh"
#include "nn/model.hh"
#include "sample/sampled_trainer.hh"
#include "serve/session.hh"

using namespace maxk;

namespace
{

constexpr const char *kBench = "bench_serve";

struct CachePoint
{
    std::string name;
    double fraction;
    std::uint32_t lruSlots;
};

/**
 * Zipf(s=1.0) request trace: vertex rank r drawn with exact weight 1/r
 * (cumulative table + one uniform draw — no pow/log), arrival gaps
 * uniform in [0, 2*mean_gap). Hot ranks map to vertex ids directly.
 */
std::vector<serve::ServeRequest>
zipfTrace(Rng &rng, NodeId num_nodes, std::size_t count, double mean_gap)
{
    std::vector<double> cum(num_nodes);
    double total = 0.0;
    for (NodeId r = 0; r < num_nodes; ++r) {
        total += 1.0 / static_cast<double>(r + 1);
        cum[r] = total;
    }
    std::vector<serve::ServeRequest> trace(count);
    double t = 0.0;
    for (serve::ServeRequest &req : trace) {
        t += rng.uniform() * 2.0 * mean_gap;
        req.arrivalSimSeconds = t;
        const double u = rng.uniform() * total;
        req.vertex = static_cast<NodeId>(
            std::lower_bound(cum.begin(), cum.end(), u) - cum.begin());
    }
    return trace;
}

void
expectSameLogits(const Matrix &ref, const Matrix &got,
                 const std::string &config)
{
    if (!ref.equals(got))
        fatal("bench_serve: cached logits diverged bitwise from the "
              "cache-off replay on " + config);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initBench(argc, argv);
    bench::banner("Online inference serving: deadline batching + "
                  "hot-vertex CBSR embedding cache");

    // Train a small model on the Flickr accuracy twin so the served
    // logits are the output of a real training trajectory.
    TrainingTask task = *findTrainingTask("Flickr");
    task.accuracyNodes = 600;
    task.accuracyAvgDegree = 10.0;
    Rng rng(707);
    TrainingData data = materializeTrainingData(task, rng);

    nn::ModelConfig mcfg;
    mcfg.kind = nn::GnnKind::Sage;
    mcfg.nonlin = nn::Nonlinearity::MaxK;
    mcfg.maxkK = 16;
    mcfg.numLayers = 2;
    mcfg.inDim = task.featureDim;
    mcfg.hiddenDim = 64;
    mcfg.outDim = task.numClasses;
    mcfg.dropout = 0.1f;
    nn::GnnModel model(mcfg);
    {
        sample::SamplerConfig scfg;
        scfg.fanouts = {8, 8};
        scfg.batchSize = 64;
        scfg.seed = 909;
        sample::SampledTrainer trainer(model, data, task, scfg);
        sample::SampledTrainConfig tc;
        tc.epochs = bench::fastMode() ? 1 : 3;
        tc.evalEvery = 4;
        trainer.run(tc);
    }

    const std::size_t count = bench::fastMode() ? 192 : 768;
    Rng traffic_rng(808);
    const std::vector<serve::ServeRequest> trace =
        zipfTrace(traffic_rng, data.graph.numNodes(), count, 2e-4);

    auto serve_cfg = [](const CachePoint &point) {
        serve::ServeConfig cfg;
        cfg.fanout = 8;
        cfg.batchCapacity = 32;
        cfg.deadlineSimSeconds = 2e-3;
        cfg.cacheFraction = point.fraction;
        cfg.lruSlots = point.lruSlots;
        return cfg;
    };

    // Cache-off reference: full recompute for every request.
    const CachePoint off{"cache-off", 0.0, 0};
    serve::ServeSession off_session(model, data.graph, data.features,
                                    serve_cfg(off));
    auto off_rep = off_session.replay(trace);
    if (!off_rep.hasValue())
        fatal("bench_serve: cache-off replay failed: " +
              off_rep.error().message);

    std::vector<CachePoint> sweep{
        {"pin5%", 0.05, 0},
        {"pin10%+lru64", 0.10, 64},
        {"pin25%+lru64", 0.25, 64},
    };
    bench::smokeShrink(sweep);

    TextTable table({"config", "batches", "hit rate", "injected",
                     "recomputed", "req/s (sim)", "p50 lat", "p99 lat",
                     "steady allocs"});
    auto add_row = [&](const std::string &name,
                       const serve::ServeReport &rep) {
        const double lookups =
            static_cast<double>(rep.cacheHits + rep.cacheMisses);
        const double hit_rate =
            lookups > 0.0
                ? static_cast<double>(rep.cacheHits) / lookups
                : 0.0;
        table.addRow({name, std::to_string(rep.batches),
                      formatFloat(hit_rate * 100.0, 1) + "%",
                      std::to_string(rep.nodesInjected),
                      std::to_string(rep.nodesRecomputed),
                      formatFloat(rep.requestsPerSimSecond, 0),
                      formatFloat(rep.p50LatencySimSeconds * 1e3, 3) +
                          "ms",
                      formatFloat(rep.p99LatencySimSeconds * 1e3, 3) +
                          "ms",
                      std::to_string(rep.steadyStateAllocCount)});
    };
    auto record = [&](const std::string &name,
                      const serve::ServeReport &rep) {
        if (!bench::perfEnabled())
            return;
        bench::PerfRecord rec;
        rec.bench = kBench;
        rec.kernel = "serve-replay/" + name;
        rec.graph = task.info.name + "-acc";
        rec.dim = static_cast<std::uint32_t>(mcfg.hiddenDim);
        rec.k = mcfg.maxkK;
        rec.simSeconds = rep.serviceSimSeconds;
        rec.dramBytes =
            rep.featureBytesGathered + rep.cacheBytesInjected;
        rec.l2ReqBytes =
            rep.edgesAggregated * (sizeof(NodeId) + sizeof(Float));
        rec.peakWorkspaceBytes = 0;
        rec.allocCount = rep.steadyStateAllocCount;
        bench::perfRecords().push_back(rec);

        bench::PerfRecord lat;
        lat.bench = kBench;
        lat.kernel = "serve-p99/" + name;
        lat.graph = rec.graph;
        lat.dim = rec.dim;
        lat.k = rec.k;
        lat.simSeconds = rep.p99LatencySimSeconds;
        lat.dramBytes = rep.nodesInjected;
        lat.l2ReqBytes = rep.nodesRecomputed;
        lat.peakWorkspaceBytes = 0;
        lat.allocCount = rep.steadyStateAllocCount;
        bench::perfRecords().push_back(lat);
    };

    add_row(off.name, off_rep.value());
    record(off.name, off_rep.value());

    for (const CachePoint &point : sweep) {
        serve::ServeSession session(model, data.graph, data.features,
                                    serve_cfg(point));
        // Cold replay fills the cache; the warm replay is the
        // steady-state measurement the paper's serving story is about.
        auto cold = session.replay(trace);
        if (!cold.hasValue())
            fatal("bench_serve: cold replay failed on " + point.name);
        expectSameLogits(off_rep.value().logits, cold.value().logits,
                         point.name + " (cold)");
        auto warm = session.replay(trace);
        if (!warm.hasValue())
            fatal("bench_serve: warm replay failed on " + point.name);
        expectSameLogits(off_rep.value().logits, warm.value().logits,
                         point.name + " (warm)");

        if (warm.value().cacheHits == 0)
            fatal("bench_serve: warm cache served zero hits on " +
                  point.name);
        if (warm.value().requestsPerSimSecond <=
            off_rep.value().requestsPerSimSecond)
            fatal("bench_serve: cache failed to improve simulated "
                  "throughput on " + point.name);

        add_row(point.name + " (warm)", warm.value());
        record(point.name, warm.value());
    }

    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Takeaways: fixed per-vertex sampled adjacency + batch-invariant "
        "edge weights make\ncached serving bitwise-equal to full "
        "recompute (enforced above); CBSR storage\nkeeps each cached row "
        "at k values + k narrow indices (~k/dim of dense); Zipfian\n"
        "traffic turns the pinned hot set into cache hits and strictly "
        "higher simulated\nthroughput, with steady-state replay "
        "allocating nothing.\n");
    bench::writePerfReport();
    return 0;
}
