#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace maxk
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    checkInvariant(!headers_.empty(), "TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    checkInvariant(cells.size() == headers_.size(),
                   "TextTable row arity mismatch");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream out;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(width[c] - row[c].size() + 2, ' ');
        }
        out << '\n';
    };

    emitRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emitRow(row);
    return out.str();
}

std::string
TextTable::renderCsv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string q = "\"";
        for (char ch : s) {
            if (ch == '"')
                q += "\"\"";
            else
                q += ch;
        }
        q += "\"";
        return q;
    };

    std::ostringstream out;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        out << (c ? "," : "") << quote(headers_[c]);
    out << '\n';
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            out << (c ? "," : "") << quote(row[c]);
        out << '\n';
    }
    return out.str();
}

std::string
formatFloat(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatSci(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", digits - 1, value);
    return buf;
}

std::string
formatBytes(double bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    int u = 0;
    while (bytes >= 1024.0 && u < 4) {
        bytes /= 1024.0;
        ++u;
    }
    char buf[64];
    if (u == 0)
        std::snprintf(buf, sizeof(buf), "%.0f %s", bytes, units[u]);
    else
        std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
    return buf;
}

std::string
formatSpeedup(double ratio)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
    return buf;
}

} // namespace maxk
