/**
 * @file
 * Process-wide metrics registry: counters, gauges, and fixed-bucket
 * histograms with deterministic snapshots (ISSUE 10).
 *
 * Design contract (mirrors the repo's determinism stance):
 *
 *  - Writes are lock-free: every thread owns a private shard of
 *    relaxed std::atomic<uint64_t> slots, created on first touch and
 *    registered (under a mutex, once per thread) with the process
 *    registry. Increments never contend and never allocate.
 *  - Snapshots merge shards in shard-registration order. Counter and
 *    histogram-bucket merges are integer sums, so the merged totals
 *    are independent of how work was sharded — a snapshot is
 *    bitwise-stable at any MAXK_THREADS as long as the workload itself
 *    is deterministic (which the parallelFor contract guarantees).
 *  - TSan-clean by construction: shard slots are atomics (relaxed),
 *    and registration/merge take the registry mutex.
 *  - Metric identities are registered once (mutex) and cached by the
 *    call sites, so the hot path is: one relaxed load of the armed
 *    flag, one branch, one relaxed fetch_add.
 *
 * Histograms use power-of-two buckets over uint64 values (bucket b
 * holds values with bit_width(v) == b, i.e. [2^(b-1), 2^b - 1]).
 * percentile(q) reports the inclusive upper bound of the bucket that
 * contains the q-quantile — tests/test_telemetry.cc pins the oracle
 * relation against std::nth_element.
 *
 * Nothing in the numerics layer may *read* telemetry state: telemetry
 * observes training, never steers it. That is what makes the armed
 * and disarmed runs bitwise-identical (pinned by test_telemetry and
 * bench_telemetry).
 */

#ifndef MAXK_COMMON_TELEMETRY_HH
#define MAXK_COMMON_TELEMETRY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace maxk::telemetry
{

/** Capacity limits per metric family (panic on overflow). */
inline constexpr std::size_t kMaxCounters = 192;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kMaxHistograms = 32;
inline constexpr std::size_t kHistogramBuckets = 64;

using MetricId = std::uint32_t;

/*
 * Global arming switch. Disarmed is the default; every instrumentation
 * site is gated as `if (telemetry::armed()) ...`, so the disarmed cost
 * is one relaxed atomic load plus one branch.
 */

namespace detail
{
extern std::atomic<bool> g_armed;
} // namespace detail

inline bool
armed()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

void setArmed(bool on);

/** RAII arm/disarm that restores the previous state. */
class ArmGuard
{
  public:
    explicit ArmGuard(bool on) : prev_(armed()) { setArmed(on); }
    ~ArmGuard() { setArmed(prev_); }
    ArmGuard(const ArmGuard &) = delete;
    ArmGuard &operator=(const ArmGuard &) = delete;

  private:
    bool prev_;
};

/*
 * Registration: returns a stable id for `name`, creating the metric on
 * first call (idempotent; takes the registry mutex). Call sites cache
 * the id in a function-local static so registration happens once.
 */
MetricId counterId(const std::string &name);
MetricId gaugeId(const std::string &name);
MetricId histogramId(const std::string &name);

/* Hot-path update primitives (lock-free, relaxed). */
void counterAdd(MetricId id, std::uint64_t delta);
void gaugeSet(MetricId id, std::int64_t value);
void gaugeMax(MetricId id, std::int64_t value);
void histogramRecord(MetricId id, std::uint64_t value);

/** Convenience: register-or-lookup by name, then update. Registration
 *  cost on every call — use the id forms on hot paths. */
void counterAdd(const std::string &name, std::uint64_t delta);
void gaugeSet(const std::string &name, std::int64_t value);
void histogramRecord(const std::string &name, std::uint64_t value);

/** Merged view of one histogram. */
struct HistogramSnapshot
{
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kHistogramBuckets> buckets{};

    /**
     * Inclusive upper bound of the bucket holding the q-quantile
     * (rank = ceil(q * count), matching serve/session.cc's percentile
     * convention). 0 when the histogram is empty.
     */
    std::uint64_t percentile(double q) const;

    /** Mean of recorded values (0 when empty). */
    double mean() const;
};

/** Deterministic merged view of the whole registry. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;

    /** Counter value by name; 0 when absent. */
    std::uint64_t counter(std::string_view name) const;
    /** Gauge value by name; 0 when absent. */
    std::int64_t gauge(std::string_view name) const;
    /** Histogram by name; nullptr when absent. */
    const HistogramSnapshot *histogram(std::string_view name) const;

    /** Human-readable text dump (the maxk-trace metrics.txt format). */
    std::string renderText() const;
    /** JSON object (the --metrics-json format). */
    std::string renderJson() const;
};

/** Merge all shards (registration order) into one snapshot. */
MetricsSnapshot snapshotMetrics();

/**
 * Zero every metric value. Identities (names/ids) and thread shards
 * stay registered, so cached ids remain valid and the steady state
 * stays allocation-free.
 */
void resetMetrics();

/**
 * Per-epoch summary the trainers emit when their `telemetry` config
 * knob is on: capture() at a boundary, deltaText() against the prior
 * capture for the "what changed this epoch" line set.
 */
struct TelemetryReport
{
    MetricsSnapshot snapshot;

    static TelemetryReport capture() { return {snapshotMetrics()}; }

    /** Counters that advanced since `prev`, one "name +delta" per line. */
    std::string deltaText(const TelemetryReport &prev) const;
};

} // namespace maxk::telemetry

#endif // MAXK_COMMON_TELEMETRY_HH
