/**
 * @file
 * Host-side parallel execution subsystem: a persistent thread pool and a
 * deterministic `parallelFor` over row ranges.
 *
 * Every converted hot loop in this reproduction partitions its row (or
 * edge-group) range *statically*: the chunk layout depends only on the
 * range, the grain, and the requested worker count — never on scheduling
 * — and each chunk is executed by exactly one worker. Combined with the
 * gather-form scatter paths (see nn/gnn_layer.cc) and the ordered
 * KernelShard replay (see gpusim/context.hh), this makes every parallel
 * kernel produce bitwise-identical matrices and identical simulated
 * KernelStats for any thread count, including the serial baseline.
 *
 * Thread-count resolution (strongest first):
 *   1. an explicit per-call request (e.g. SimOptions::threads > 0),
 *   2. the process-wide override set by setDefaultThreads(),
 *   3. the MAXK_THREADS environment variable,
 *   4. serial (1 thread).
 */

#ifndef MAXK_COMMON_PARALLEL_HH
#define MAXK_COMMON_PARALLEL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace maxk
{

/** Half-open index interval [begin, end). */
struct IndexRange
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
    bool empty() const { return begin >= end; }
};

/**
 * Resolve the effective worker count for one parallel region.
 * `requested` > 0 wins; otherwise the process default applies
 * (setDefaultThreads() override, then MAXK_THREADS, then 1).
 */
std::uint32_t resolveThreads(std::uint32_t requested = 0);

/**
 * Process-wide default worker count. 0 restores the environment-driven
 * default (MAXK_THREADS, else serial). Intended for tests and benches;
 * do not call concurrently with running parallel regions.
 */
void setDefaultThreads(std::uint32_t threads);

/** Current process default (after env resolution; >= 1). */
std::uint32_t defaultThreads();

/**
 * Deterministic static partition of [begin, end) into at most `threads`
 * contiguous, ascending, non-empty chunks of at least `grain` elements
 * (except that a range smaller than `grain` yields one chunk). The
 * layout is a pure function of the arguments.
 */
std::vector<IndexRange> splitRange(std::size_t begin, std::size_t end,
                                   std::size_t grain,
                                   std::uint32_t threads);

/**
 * Execute fn(chunkIndex) for every chunkIndex in [0, n) on the shared
 * pool; the calling thread participates. Blocks until every chunk
 * completed; the first exception thrown by any chunk is rethrown here.
 * Nested calls from inside a worker run serially (no deadlock).
 */
void runChunks(std::size_t n,
               const std::function<void(std::uint32_t)> &fn);

/**
 * Deterministic parallel loop over [begin, end): statically partitions
 * the range (splitRange) and invokes fn(chunkIndex, chunkBegin,
 * chunkEnd) for each chunk, each on exactly one worker.
 *
 * @param threads explicit worker count; 0 = process default
 */
void parallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::uint32_t, std::size_t, std::size_t)>
        &fn,
    std::uint32_t threads = 0);

} // namespace maxk

#endif // MAXK_COMMON_PARALLEL_HH
