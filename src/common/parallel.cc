#include "common/parallel.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <pthread.h>
#include <thread>

#include "common/logging.hh"

namespace maxk
{

namespace
{

/** Hard ceiling on pool size; far above any sane MAXK_THREADS value. */
constexpr std::uint32_t kMaxWorkers = 256;

std::uint32_t
envThreads()
{
    const char *env = std::getenv("MAXK_THREADS");
    if (env == nullptr || env[0] == '\0')
        return 1;
    const long v = std::strtol(env, nullptr, 10);
    if (v < 1)
        return 1;
    return v > kMaxWorkers ? kMaxWorkers : static_cast<std::uint32_t>(v);
}

/** Programmatic override; 0 = fall back to MAXK_THREADS. */
std::atomic<std::uint32_t> g_defaultOverride{0};

/** Set while this thread executes chunk bodies, so nested parallel
 *  regions degrade to serial instead of deadlocking the pool. */
thread_local bool t_inParallelRegion = false;

/** Set in a fork()ed child: the pool's worker threads exist only in the
 *  parent, so the child must never join (or signal) them. Without this,
 *  fork+exit paths — gtest death tests, daemonisation — hang in the
 *  child's static destructors waiting on threads that will never run. */
std::atomic<bool> g_inForkedChild{false};

/**
 * Persistent worker pool. One process-wide instance, grown lazily to the
 * largest concurrency any region has asked for.
 *
 * Each run() posts one heap-allocated Batch; workers copy a shared_ptr
 * to it under the pool mutex, then claim chunk indices through the
 * batch's own atomic cursor. Keeping the cursor and completion count
 * inside the batch (instead of the pool) means a worker that stalls
 * between waking and claiming can never touch a *later* batch's work
 * with an earlier batch's function — its claims land on its own,
 * already-exhausted batch and simply return.
 *
 * The instance is intentionally leaked: a static-destruction join would
 * hang any fork()+exit() child (gtest death tests, daemonisation),
 * because the workers — and, post-fork, even their glibc thread
 * descriptors — exist only in the parent. Idle workers are simply torn
 * down with the process; the leaked object stays reachable through the
 * static pointer, so leak checkers stay quiet.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    get()
    {
        static ThreadPool *pool = new ThreadPool;
        return *pool;
    }

    void
    run(std::size_t n, const std::function<void(std::uint32_t)> &fn)
    {
        if (n == 0)
            return;
        // A forked child inherits the pool bookkeeping but none of the
        // worker threads (and possibly a mutex locked by a thread that
        // no longer exists) — always run serially there.
        if (n == 1 || t_inParallelRegion || g_inForkedChild.load()) {
            // Serial fast path; nested regions also land here.
            const bool saved = t_inParallelRegion;
            t_inParallelRegion = true;
            try {
                for (std::size_t i = 0; i < n; ++i)
                    fn(static_cast<std::uint32_t>(i));
            } catch (...) {
                t_inParallelRegion = saved;
                throw;
            }
            t_inParallelRegion = saved;
            return;
        }

        ensureWorkers(static_cast<std::uint32_t>(n) - 1);
        auto batch = std::make_shared<Batch>();
        batch->fn = &fn;
        batch->n = n;
        {
            std::lock_guard<std::mutex> lk(mu_);
            batch_ = batch;
            ++generation_;
        }
        cv_.notify_all();

        // The caller claims chunks alongside the workers.
        t_inParallelRegion = true;
        drain(*batch);
        t_inParallelRegion = false;

        std::unique_lock<std::mutex> lk(mu_);
        doneCv_.wait(lk, [&] { return batch->done == batch->n; });
        if (batch_ == batch)
            batch_.reset();
        if (batch->error) {
            std::exception_ptr err = batch->error;
            lk.unlock();
            std::rethrow_exception(err);
        }
    }

  private:
    struct Batch
    {
        const std::function<void(std::uint32_t)> *fn = nullptr;
        std::size_t n = 0;
        std::atomic<std::size_t> next{0};
        std::size_t done = 0;       //!< guarded by the pool mutex
        std::exception_ptr error;   //!< guarded by the pool mutex
    };

    ThreadPool()
    {
        pthread_atfork(nullptr, nullptr,
                       [] { g_inForkedChild.store(true); });
    }

    void
    ensureWorkers(std::uint32_t want)
    {
        want = want > kMaxWorkers ? kMaxWorkers : want;
        std::lock_guard<std::mutex> lk(mu_);
        while (workers_.size() < want)
            workers_.emplace_back([this] { workerLoop(); });
    }

    /** Claim and execute chunks of `b` until its cursor is exhausted. */
    void
    drain(Batch &b)
    {
        std::size_t completed = 0;
        for (;;) {
            const std::size_t i =
                b.next.fetch_add(1, std::memory_order_relaxed);
            if (i >= b.n)
                break;
            try {
                (*b.fn)(static_cast<std::uint32_t>(i));
            } catch (...) {
                std::lock_guard<std::mutex> lk(mu_);
                if (!b.error)
                    b.error = std::current_exception();
            }
            ++completed;
        }
        if (completed > 0) {
            std::lock_guard<std::mutex> lk(mu_);
            b.done += completed;
            if (b.done == b.n)
                doneCv_.notify_all();
        }
    }

    void
    workerLoop()
    {
        t_inParallelRegion = true;
        std::uint64_t seen = 0;
        for (;;) {
            std::shared_ptr<Batch> batch;
            {
                std::unique_lock<std::mutex> lk(mu_);
                cv_.wait(lk, [&] { return generation_ != seen; });
                seen = generation_;
                batch = batch_;
            }
            if (batch)
                drain(*batch);
        }
    }

    std::mutex mu_;
    std::condition_variable cv_;      //!< new batch posted
    std::condition_variable doneCv_;  //!< batch completion
    std::vector<std::thread> workers_;
    std::shared_ptr<Batch> batch_;    //!< current batch (guarded by mu_)
    std::uint64_t generation_ = 0;    //!< bumped per batch (guarded by mu_)
};

} // namespace

std::uint32_t
defaultThreads()
{
    const std::uint32_t over =
        g_defaultOverride.load(std::memory_order_relaxed);
    return over > 0 ? over : envThreads();
}

void
setDefaultThreads(std::uint32_t threads)
{
    g_defaultOverride.store(threads > kMaxWorkers ? kMaxWorkers : threads,
                            std::memory_order_relaxed);
}

std::uint32_t
resolveThreads(std::uint32_t requested)
{
    if (requested > 0)
        return requested > kMaxWorkers ? kMaxWorkers : requested;
    return defaultThreads();
}

std::vector<IndexRange>
splitRange(std::size_t begin, std::size_t end, std::size_t grain,
           std::uint32_t threads)
{
    std::vector<IndexRange> chunks;
    if (begin >= end)
        return chunks;
    const std::size_t range = end - begin;
    if (grain == 0)
        grain = 1;
    if (threads == 0)
        threads = 1;
    std::size_t n = range / grain;
    if (n > threads)
        n = threads;
    if (n == 0)
        n = 1;

    const std::size_t base = range / n;
    const std::size_t rem = range % n;
    std::size_t at = begin;
    chunks.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t len = base + (i < rem ? 1 : 0);
        chunks.push_back({at, at + len});
        at += len;
    }
    checkInvariant(at == end, "splitRange: chunks do not cover range");
    return chunks;
}

void
runChunks(std::size_t n, const std::function<void(std::uint32_t)> &fn)
{
    ThreadPool::get().run(n, fn);
}

void
parallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::uint32_t, std::size_t, std::size_t)>
        &fn,
    std::uint32_t threads)
{
    const auto chunks =
        splitRange(begin, end, grain, resolveThreads(threads));
    if (chunks.empty())
        return;
    if (chunks.size() == 1) {
        fn(0, chunks[0].begin, chunks[0].end);
        return;
    }
    runChunks(chunks.size(), [&](std::uint32_t t) {
        fn(t, chunks[t].begin, chunks[t].end);
    });
}

} // namespace maxk
