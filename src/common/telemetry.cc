#include "common/telemetry.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/logging.hh"

namespace maxk::telemetry
{

namespace detail
{
std::atomic<bool> g_armed{false};
} // namespace detail

namespace
{

/*
 * One thread's private slice of every metric. Slots are relaxed
 * atomics so a concurrent snapshotMetrics() is race-free under TSan;
 * only the owning thread writes, so there is never contention.
 */
struct Shard
{
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<std::atomic<std::uint64_t>,
               kMaxHistograms * kHistogramBuckets> buckets{};
    std::array<std::atomic<std::uint64_t>, kMaxHistograms> histCount{};
    std::array<std::atomic<std::uint64_t>, kMaxHistograms> histSum{};
};

struct Registry
{
    std::mutex mu;
    std::vector<std::string> counterNames;
    std::vector<std::string> gaugeNames;
    std::vector<std::string> histogramNames;
    // Gauges are last-write-wins process globals, not per-thread sums.
    std::array<std::atomic<std::int64_t>, kMaxGauges> gauges{};
    // Shards in registration order; never freed (threads may exit but
    // their totals must survive into later snapshots).
    std::vector<std::unique_ptr<Shard>> shards;
};

/* Leaked singleton: dodges static-destruction races with pool threads
 * (same stance as the parallel.cc worker pool). */
Registry &
registry()
{
    static Registry *r = new Registry();
    return *r;
}

Shard &
myShard()
{
    thread_local Shard *tls = nullptr;
    if (!tls) {
        auto shard = std::make_unique<Shard>();
        tls = shard.get();
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.shards.push_back(std::move(shard));
    }
    return *tls;
}

MetricId
internName(std::vector<std::string> &names, const std::string &name,
           std::size_t cap, const char *family)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == name)
            return static_cast<MetricId>(i);
    }
    checkInvariant(names.size() < cap,
                   std::string("telemetry: too many ") + family +
                       " metrics (cap " + std::to_string(cap) + ")");
    names.push_back(name);
    return static_cast<MetricId>(names.size() - 1);
}

/** Bucket index for a histogram value: bit_width, so bucket b holds
 *  [2^(b-1), 2^b - 1] and bucket 0 holds only the value 0. */
std::size_t
bucketOf(std::uint64_t value)
{
    return static_cast<std::size_t>(std::bit_width(value));
}

/** Inclusive upper bound of bucket b. */
std::uint64_t
bucketUpper(std::size_t b)
{
    if (b == 0)
        return 0;
    if (b >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
}

} // namespace

void
setArmed(bool on)
{
    detail::g_armed.store(on, std::memory_order_relaxed);
}

MetricId
counterId(const std::string &name)
{
    return internName(registry().counterNames, name, kMaxCounters,
                      "counter");
}

MetricId
gaugeId(const std::string &name)
{
    return internName(registry().gaugeNames, name, kMaxGauges, "gauge");
}

MetricId
histogramId(const std::string &name)
{
    return internName(registry().histogramNames, name, kMaxHistograms,
                      "histogram");
}

void
counterAdd(MetricId id, std::uint64_t delta)
{
    myShard().counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void
gaugeSet(MetricId id, std::int64_t value)
{
    registry().gauges[id].store(value, std::memory_order_relaxed);
}

void
gaugeMax(MetricId id, std::int64_t value)
{
    auto &g = registry().gauges[id];
    std::int64_t cur = g.load(std::memory_order_relaxed);
    while (value > cur &&
           !g.compare_exchange_weak(cur, value,
                                    std::memory_order_relaxed)) {
    }
}

void
histogramRecord(MetricId id, std::uint64_t value)
{
    Shard &s = myShard();
    s.buckets[id * kHistogramBuckets + bucketOf(value)].fetch_add(
        1, std::memory_order_relaxed);
    s.histCount[id].fetch_add(1, std::memory_order_relaxed);
    s.histSum[id].fetch_add(value, std::memory_order_relaxed);
}

void
counterAdd(const std::string &name, std::uint64_t delta)
{
    counterAdd(counterId(name), delta);
}

void
gaugeSet(const std::string &name, std::int64_t value)
{
    gaugeSet(gaugeId(name), value);
}

void
histogramRecord(const std::string &name, std::uint64_t value)
{
    histogramRecord(histogramId(name), value);
}

std::uint64_t
HistogramSnapshot::percentile(double q) const
{
    if (count == 0)
        return 0;
    // rank = ceil(q * count), clamped to [1, count] — the same
    // convention the serving layer uses for p50/p99.
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    rank = std::max<std::uint64_t>(1, std::min(rank, count));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        seen += buckets[b];
        if (seen >= rank)
            return bucketUpper(b);
    }
    return bucketUpper(buckets.size() - 1);
}

double
HistogramSnapshot::mean() const
{
    if (count == 0)
        return 0.0;
    return static_cast<double>(sum) / static_cast<double>(count);
}

MetricsSnapshot
snapshotMetrics()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);

    MetricsSnapshot out;
    out.counters.reserve(r.counterNames.size());
    for (std::size_t i = 0; i < r.counterNames.size(); ++i) {
        std::uint64_t total = 0;
        for (const auto &shard : r.shards)
            total += shard->counters[i].load(std::memory_order_relaxed);
        out.counters.emplace_back(r.counterNames[i], total);
    }
    out.gauges.reserve(r.gaugeNames.size());
    for (std::size_t i = 0; i < r.gaugeNames.size(); ++i) {
        out.gauges.emplace_back(
            r.gaugeNames[i], r.gauges[i].load(std::memory_order_relaxed));
    }
    out.histograms.reserve(r.histogramNames.size());
    for (std::size_t i = 0; i < r.histogramNames.size(); ++i) {
        HistogramSnapshot h;
        h.name = r.histogramNames[i];
        for (const auto &shard : r.shards) {
            h.count +=
                shard->histCount[i].load(std::memory_order_relaxed);
            h.sum += shard->histSum[i].load(std::memory_order_relaxed);
            for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
                h.buckets[b] +=
                    shard->buckets[i * kHistogramBuckets + b].load(
                        std::memory_order_relaxed);
            }
        }
        out.histograms.push_back(std::move(h));
    }
    return out;
}

void
resetMetrics()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &g : r.gauges)
        g.store(0, std::memory_order_relaxed);
    for (const auto &shard : r.shards) {
        for (auto &c : shard->counters)
            c.store(0, std::memory_order_relaxed);
        for (auto &b : shard->buckets)
            b.store(0, std::memory_order_relaxed);
        for (auto &c : shard->histCount)
            c.store(0, std::memory_order_relaxed);
        for (auto &s : shard->histSum)
            s.store(0, std::memory_order_relaxed);
    }
}

std::uint64_t
MetricsSnapshot::counter(std::string_view name) const
{
    for (const auto &[n, v] : counters) {
        if (n == name)
            return v;
    }
    return 0;
}

std::int64_t
MetricsSnapshot::gauge(std::string_view name) const
{
    for (const auto &[n, v] : gauges) {
        if (n == name)
            return v;
    }
    return 0;
}

const HistogramSnapshot *
MetricsSnapshot::histogram(std::string_view name) const
{
    for (const auto &h : histograms) {
        if (h.name == name)
            return &h;
    }
    return nullptr;
}

std::string
MetricsSnapshot::renderText() const
{
    std::ostringstream os;
    os << "# maxk metrics snapshot\n";
    os << "## counters\n";
    for (const auto &[n, v] : counters)
        os << n << " " << v << "\n";
    os << "## gauges\n";
    for (const auto &[n, v] : gauges)
        os << n << " " << v << "\n";
    os << "## histograms\n";
    for (const auto &h : histograms) {
        os << h.name << " count=" << h.count << " sum=" << h.sum
           << " mean=" << h.mean() << " p50=" << h.percentile(0.50)
           << " p99=" << h.percentile(0.99) << "\n";
    }
    return os.str();
}

namespace
{
void
appendJsonString(std::ostringstream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}
} // namespace

std::string
MetricsSnapshot::renderJson() const
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"maxk-metrics-v1\",\n  \"counters\": {";
    bool first = true;
    for (const auto &[n, v] : counters) {
        os << (first ? "\n    " : ",\n    ");
        appendJsonString(os, n);
        os << ": " << v;
        first = false;
    }
    os << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[n, v] : gauges) {
        os << (first ? "\n    " : ",\n    ");
        appendJsonString(os, n);
        os << ": " << v;
        first = false;
    }
    os << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &h : histograms) {
        os << (first ? "\n    " : ",\n    ");
        appendJsonString(os, h.name);
        os << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
           << ", \"p50\": " << h.percentile(0.50)
           << ", \"p99\": " << h.percentile(0.99) << "}";
        first = false;
    }
    os << "\n  }\n}\n";
    return os.str();
}

std::string
TelemetryReport::deltaText(const TelemetryReport &prev) const
{
    std::ostringstream os;
    for (const auto &[name, value] : snapshot.counters) {
        const std::uint64_t before = prev.snapshot.counter(name);
        if (value > before)
            os << name << " +" << (value - before) << "\n";
    }
    return os.str();
}

} // namespace maxk::telemetry
