/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 convention: fatal() reports a user-caused condition and
 * exits cleanly; panic() reports an internal invariant violation and aborts.
 */

#ifndef MAXK_COMMON_LOGGING_HH
#define MAXK_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace maxk
{

/** Severity for log(). */
enum class LogLevel { Debug, Info, Warn, Error };

/** Global minimum level; messages below it are suppressed. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Emit a log line (to stderr) at the given severity. */
void logMessage(LogLevel level, const std::string &msg);

/**
 * Terminate due to a user-visible misconfiguration (bad argument, bad
 * input file). Exits with status 1.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Terminate due to an internal bug (broken invariant). Aborts so that a
 * debugger or core dump captures the state.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Check a runtime invariant; panic with a formatted message on failure.
 * Kept as a function (not a macro) so call sites stay expression-like.
 */
inline void
checkInvariant(bool ok, const std::string &msg)
{
    if (!ok)
        panic(msg);
}

} // namespace maxk

#endif // MAXK_COMMON_LOGGING_HH
