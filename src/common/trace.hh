/**
 * @file
 * Scoped trace spans over the telemetry registry (ISSUE 10).
 *
 * `MAXK_TRACE_SCOPE("phase.name")` drops an RAII span into the current
 * thread's append-only buffer. Disarmed cost is one relaxed load plus
 * one branch (the scope stores a null phase and the destructor
 * returns immediately). Armed cost is a steady_clock read on entry
 * and one buffer append + three counter bumps on exit — no locks, no
 * allocation once the thread's buffer has grown to its working size.
 *
 * Every span also advances three reconciliation counters in the
 * MetricsRegistry — `span.count.<name>`, `span.wall_ns.<name>`, and
 * `span.sim_ns.<name>` — so the serialized trace can be cross-checked
 * against a metrics snapshot (the maxk-trace CLI does this
 * in-process; acceptance criterion of ISSUE 10).
 *
 * writeChromeTrace() serializes everything as Chrome `trace_event`
 * JSON (load in chrome://tracing or Perfetto). Two tracks:
 *
 *   pid 1 "wall-clock":  real steady_clock timings (machine-varying)
 *   pid 2 "sim-seconds": spans that carry a simulated duration, laid
 *                        out back-to-back per thread in append order —
 *                        fully deterministic, diffable across runs.
 */

#ifndef MAXK_COMMON_TRACE_HH
#define MAXK_COMMON_TRACE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/telemetry.hh"

namespace maxk::telemetry
{

/** Longest span `detail` arg kept (truncated beyond; no heap). */
inline constexpr std::size_t kTraceDetailBytes = 64;

/**
 * Interned span identity. Declare one `static Phase` per call site
 * (the MAXK_TRACE_SCOPE macro does) so the three reconciliation
 * counters are registered exactly once per phase name.
 */
class Phase
{
  public:
    explicit Phase(const char *name);

    const char *name() const { return name_; }
    MetricId countId() const { return countId_; }
    MetricId wallNsId() const { return wallNsId_; }
    MetricId simNsId() const { return simNsId_; }

  private:
    const char *name_;
    MetricId countId_;
    MetricId wallNsId_;
    MetricId simNsId_;
};

/** One completed span, as stored in the per-thread buffers. */
struct SpanRecord
{
    const char *name = nullptr;
    std::uint64_t startNs = 0;  //!< steady_clock ns since recorder epoch
    std::uint64_t durNs = 0;
    std::int64_t simNs = -1;    //!< deterministic duration; -1 = none
    std::uint32_t tid = 0;      //!< recorder thread id (registration order)
    std::uint32_t depth = 0;    //!< nesting depth at entry (0 = top level)
    bool instant = false;       //!< zero-duration marker event
    char detail[kTraceDetailBytes] = {};  //!< args.detail (may be empty)
};

/** RAII span. Prefer the MAXK_TRACE_SCOPE macro. */
class TraceScope
{
  public:
    explicit TraceScope(const Phase &phase)
        : TraceScope(phase, std::string_view{})
    {
    }
    TraceScope(const Phase &phase, std::string_view detail);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    /** Attach a deterministic simulated duration to this span. */
    void
    setSimSeconds(double seconds)
    {
        if (phase_)
            simNs_ = static_cast<std::int64_t>(seconds * 1e9 + 0.5);
    }

  private:
    const Phase *phase_ = nullptr;  //!< nullptr when disarmed at entry
    std::uint64_t startNs_ = 0;
    std::uint32_t depth_ = 0;
    std::int64_t simNs_ = -1;
    char detail_[kTraceDetailBytes] = {};
};

/** Zero-duration marker (kernel-dispatch decisions etc.). No-op when
 *  disarmed. Also bumps the phase's span.count reconciliation counter. */
void traceInstant(const Phase &phase, std::string_view detail);

/** Snapshot of every recorded span, buffers merged in thread-id order
 *  (within a thread: append order). Call quiescently. */
std::vector<SpanRecord> traceSnapshot();

/** Drop all recorded spans (buffer capacity is kept). */
void clearTrace();

/** Serialize as Chrome trace_event JSON. Returns false on I/O error. */
bool writeChromeTrace(const std::string &path);

/** The JSON text writeChromeTrace() emits (for tests/tools). */
std::string renderChromeTrace();

#define MAXK_TRACE_CONCAT2_(a, b) a##b
#define MAXK_TRACE_CONCAT_(a, b) MAXK_TRACE_CONCAT2_(a, b)

/**
 * Scoped span: MAXK_TRACE_SCOPE("name") or
 * MAXK_TRACE_SCOPE("name", detail_string_view).
 * Expands to a function-local static Phase (one-time registration)
 * plus a TraceScope covering the rest of the enclosing block.
 */
#define MAXK_TRACE_SCOPE(name, ...)                                        \
    static const ::maxk::telemetry::Phase MAXK_TRACE_CONCAT_(              \
        maxkTracePhase_, __LINE__){name};                                  \
    ::maxk::telemetry::TraceScope MAXK_TRACE_CONCAT_(                      \
        maxkTraceScope_, __LINE__)                                         \
    {                                                                      \
        MAXK_TRACE_CONCAT_(maxkTracePhase_, __LINE__)                      \
            __VA_OPT__(, ) __VA_ARGS__                                     \
    }

/**
 * Like MAXK_TRACE_SCOPE but binds the scope to `var`, so the caller
 * can attach a simulated duration: `var.setSimSeconds(stats.seconds)`.
 */
#define MAXK_TRACE_SCOPE_NAMED(var, name, ...)                             \
    static const ::maxk::telemetry::Phase MAXK_TRACE_CONCAT_(              \
        maxkTracePhase_, __LINE__){name};                                  \
    ::maxk::telemetry::TraceScope var                                      \
    {                                                                      \
        MAXK_TRACE_CONCAT_(maxkTracePhase_, __LINE__)                      \
            __VA_OPT__(, ) __VA_ARGS__                                     \
    }

} // namespace maxk::telemetry

#endif // MAXK_COMMON_TRACE_HH
