/**
 * @file
 * ASCII table and CSV emitters used by the benchmark harnesses to print
 * paper-style tables (Table 2, 4, 5, ...) and figure series (Fig. 8, 9, 10).
 */

#ifndef MAXK_COMMON_TABLE_HH
#define MAXK_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace maxk
{

/**
 * Column-aligned text table. Collect rows of strings, then render with a
 * header rule. Numeric formatting is the caller's responsibility (use
 * formatFloat / formatSci below for consistency).
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render to a string with aligned columns. */
    std::string render() const;

    /** Render as CSV (no alignment, comma-separated, quoted as needed). */
    std::string renderCsv() const;

    /** Number of data rows added so far. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Fixed-point float formatting, e.g. formatFloat(3.14159, 2) == "3.14". */
std::string formatFloat(double value, int decimals);

/** Scientific formatting with the given significant digits. */
std::string formatSci(double value, int digits);

/** Human-readable byte count: "13.1 GB", "512 B", ... */
std::string formatBytes(double bytes);

/** Render "12.3x" style speedup cells. */
std::string formatSpeedup(double ratio);

} // namespace maxk

#endif // MAXK_COMMON_TABLE_HH
