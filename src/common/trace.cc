#include "common/trace.hh"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

namespace maxk::telemetry
{

namespace
{

struct ThreadTrack
{
    std::uint32_t tid = 0;
    std::uint32_t depth = 0;      //!< open-scope nesting on this thread
    std::vector<SpanRecord> events;
};

struct TraceRecorder
{
    std::mutex mu;
    std::vector<std::unique_ptr<ThreadTrack>> tracks;
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
};

/* Leaked singleton (same stance as the metrics registry): tracks must
 * outlive pool/rank threads and static destruction order. */
TraceRecorder &
recorder()
{
    static TraceRecorder *r = new TraceRecorder();
    return *r;
}

ThreadTrack &
myTrack()
{
    thread_local ThreadTrack *tls = nullptr;
    if (!tls) {
        auto track = std::make_unique<ThreadTrack>();
        tls = track.get();
        TraceRecorder &r = recorder();
        std::lock_guard<std::mutex> lock(r.mu);
        track->tid = static_cast<std::uint32_t>(r.tracks.size());
        track->events.reserve(1024);
        r.tracks.push_back(std::move(track));
    }
    return *tls;
}

std::uint64_t
nowNs()
{
    const auto d = std::chrono::steady_clock::now() - recorder().epoch;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

void
copyDetail(char (&dst)[kTraceDetailBytes], std::string_view src)
{
    const std::size_t n = std::min(src.size(), kTraceDetailBytes - 1);
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
}

} // namespace

Phase::Phase(const char *name)
    : name_(name),
      countId_(counterId(std::string("span.count.") + name)),
      wallNsId_(counterId(std::string("span.wall_ns.") + name)),
      simNsId_(counterId(std::string("span.sim_ns.") + name))
{
}

TraceScope::TraceScope(const Phase &phase, std::string_view detail)
{
    if (!armed())
        return;
    phase_ = &phase;
    if (!detail.empty())
        copyDetail(detail_, detail);
    ThreadTrack &t = myTrack();
    depth_ = t.depth++;
    startNs_ = nowNs();
}

TraceScope::~TraceScope()
{
    if (!phase_)
        return;
    const std::uint64_t end = nowNs();
    ThreadTrack &t = myTrack();
    t.depth--;
    SpanRecord rec;
    rec.name = phase_->name();
    rec.startNs = startNs_;
    rec.durNs = end - startNs_;
    rec.simNs = simNs_;
    rec.tid = t.tid;
    rec.depth = depth_;
    std::memcpy(rec.detail, detail_, kTraceDetailBytes);
    t.events.push_back(rec);

    counterAdd(phase_->countId(), 1);
    counterAdd(phase_->wallNsId(), rec.durNs);
    if (simNs_ >= 0)
        counterAdd(phase_->simNsId(),
                   static_cast<std::uint64_t>(simNs_));
}

void
traceInstant(const Phase &phase, std::string_view detail)
{
    if (!armed())
        return;
    ThreadTrack &t = myTrack();
    SpanRecord rec;
    rec.name = phase.name();
    rec.startNs = nowNs();
    rec.durNs = 0;
    rec.tid = t.tid;
    rec.depth = t.depth;
    rec.instant = true;
    copyDetail(rec.detail, detail);
    t.events.push_back(rec);
    counterAdd(phase.countId(), 1);
}

std::vector<SpanRecord>
traceSnapshot()
{
    TraceRecorder &r = recorder();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<SpanRecord> out;
    for (const auto &track : r.tracks)
        out.insert(out.end(), track->events.begin(), track->events.end());
    return out;
}

void
clearTrace()
{
    TraceRecorder &r = recorder();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &track : r.tracks)
        track->events.clear();
}

namespace
{

void
appendEscaped(std::ostringstream &os, const char *s)
{
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            os << '\\';
        os << *s;
    }
}

void
appendEventJson(std::ostringstream &os, const SpanRecord &e, int pid,
                double tsUs, double durUs, bool &first)
{
    os << (first ? "\n  " : ",\n  ");
    first = false;
    os << "{\"name\": \"";
    appendEscaped(os, e.name);
    os << "\", \"cat\": \"maxk\", \"ph\": \""
       << (e.instant ? 'i' : 'X') << "\", \"pid\": " << pid
       << ", \"tid\": " << e.tid << ", \"ts\": " << tsUs;
    if (!e.instant)
        os << ", \"dur\": " << durUs;
    else
        os << ", \"s\": \"t\"";
    os << ", \"args\": {";
    bool firstArg = true;
    if (e.detail[0] != '\0') {
        os << "\"detail\": \"";
        appendEscaped(os, e.detail);
        os << "\"";
        firstArg = false;
    }
    if (e.simNs >= 0) {
        os << (firstArg ? "" : ", ") << "\"sim_seconds\": "
           << static_cast<double>(e.simNs) / 1e9;
    }
    os << "}}";
}

} // namespace

std::string
renderChromeTrace()
{
    TraceRecorder &r = recorder();
    std::lock_guard<std::mutex> lock(r.mu);

    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    os << "{\"traceEvents\": [";
    bool first = true;

    // Track-name metadata: pid 1 is wall-clock, pid 2 the sim lane.
    for (int pid = 1; pid <= 2; ++pid) {
        os << (first ? "\n  " : ",\n  ");
        first = false;
        os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
           << pid << ", \"tid\": 0, \"args\": {\"name\": \""
           << (pid == 1 ? "wall-clock" : "sim-seconds") << "\"}}";
    }

    for (const auto &track : r.tracks) {
        // Wall-clock lane: real steady_clock timestamps.
        for (const auto &e : track->events) {
            appendEventJson(os, e, 1,
                            static_cast<double>(e.startNs) / 1e3,
                            static_cast<double>(e.durNs) / 1e3, first);
        }
        // Sim lane: deterministic, spans laid back-to-back per thread
        // in append order — identical across runs and machines.
        std::uint64_t cursorNs = 0;
        for (const auto &e : track->events) {
            if (e.simNs < 0)
                continue;
            appendEventJson(os, e, 2,
                            static_cast<double>(cursorNs) / 1e3,
                            static_cast<double>(e.simNs) / 1e3, first);
            cursorNs += static_cast<std::uint64_t>(e.simNs);
        }
    }
    os << "\n]}\n";
    return os.str();
}

bool
writeChromeTrace(const std::string &path)
{
    const std::string json = renderChromeTrace();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = (n == json.size()) && std::fclose(f) == 0;
    if (n != json.size())
        std::fclose(f);
    return ok;
}

} // namespace maxk::telemetry
