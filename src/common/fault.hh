/**
 * @file
 * Deterministic fault injection (ISSUE 9 tentpole).
 *
 * A FaultPlan schedules faults against named hook points ("sites")
 * threaded through the training, communication, checkpoint, and serving
 * subsystems. Firing is keyed on the Nth visit of a (site, rank) pair —
 * never on wall clock or thread scheduling — so every failure scenario
 * is bitwise-reproducible across runs and thread counts: each rank's
 * own call sequence is deterministic, hence so is its per-site visit
 * counter, hence so is the exact program point where the fault lands.
 *
 * The injector is a cheap null check when disarmed; production code
 * pays one pointer test per hook point. Named scenarios derive their
 * firing indices from rngKey streams, the same discipline the sampler
 * uses for reproducible randomness.
 */

#ifndef MAXK_COMMON_FAULT_HH
#define MAXK_COMMON_FAULT_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace maxk
{

/** What an injected fault does at its hook point. */
enum class FaultKind : std::uint32_t
{
    RankThrow,          //!< throw InjectedFault (kill a rank / a trainer)
    CommTimeout,        //!< a collective times out (dist::CommTimeout)
    CheckpointTruncate, //!< truncate the checkpoint image before write
    CheckpointBitFlip,  //!< flip one payload bit before write
    ServeBurst,         //!< append a deadline-violating request burst
};

/** Stable name of a FaultKind (logs, CLI output). */
const char *faultKindName(FaultKind kind);

/** Any-rank wildcard for FaultSpec::rank. */
inline constexpr std::uint32_t kAnyRank = 0xFFFFFFFFu;

/** One scheduled fault: fire at the `occurrence`-th visit (0-based) of
 *  `site` by `rank` (kAnyRank matches every rank's own counter). */
struct FaultSpec
{
    FaultKind kind = FaultKind::RankThrow;
    std::string site;              //!< hook-point name, e.g. "comm.allReduceSum"
    std::uint64_t occurrence = 0;  //!< 0-based visit index that triggers
    std::uint32_t rank = kAnyRank; //!< rank filter
    std::uint64_t payload = 0;     //!< kind-specific (byte offset, burst size)
    bool transient = false;        //!< clears after firing once (retryable)
};

/** Thrown by hook points for RankThrow faults (and by kinds whose
 *  subsystem has no more specific exception). */
struct InjectedFault : std::runtime_error
{
    explicit InjectedFault(const FaultSpec &s)
        : std::runtime_error("injected fault [" +
                             std::string(faultKindName(s.kind)) +
                             "] at site '" + s.site + "' occurrence " +
                             std::to_string(s.occurrence)),
          spec(s)
    {
    }
    FaultSpec spec;
};

/** An ordered set of FaultSpecs; the replayable failure scenario. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    FaultPlan &add(FaultSpec spec)
    {
        specs_.push_back(std::move(spec));
        return *this;
    }

    const std::vector<FaultSpec> &specs() const { return specs_; }
    bool empty() const { return specs_.empty(); }

    /**
     * Build a named scenario with keyed-RNG firing indices: the same
     * (name, seed) always schedules the same faults at the same visit
     * counts. Known names (the maxk-faults CLI replays them):
     *   "rank-throw"   one RankThrow at a sharded epoch boundary
     *   "comm-timeout" one transient + one fatal CommTimeout
     *   "ckpt-corrupt" a CheckpointBitFlip then a CheckpointTruncate
     *   "serve-burst"  one ServeBurst at replay entry
     * fatal() on an unknown name.
     */
    static FaultPlan named(const std::string &name, std::uint64_t seed);

  private:
    std::vector<FaultSpec> specs_;
};

/**
 * Runtime half: counts (site, rank) visits and hands back the spec that
 * fires at the current one. Thread-safe (rank threads share one
 * injector); deterministic because each rank's visit sequence is.
 */
class FaultInjector
{
  public:
    /** Disarmed injector: every fire() is a null check away from free. */
    FaultInjector() = default;

    explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

    bool armed() const { return !plan_.empty(); }

    /**
     * Record one visit of (site, rank); return the scheduled spec if
     * this visit triggers one, nullptr otherwise. A transient spec is
     * consumed by its first firing (a retry of the same site then
     * passes); a non-transient spec keeps firing its visit forever —
     * i.e. exactly once per run, since the visit count moves on.
     * The returned pointer stays valid for the injector's lifetime.
     */
    const FaultSpec *fire(std::string_view site, std::uint32_t rank = 0);

    /** Throw InjectedFault if a RankThrow fault fires here. Hook points
     *  that cannot host other kinds use this shorthand. */
    void maybeThrow(std::string_view site, std::uint32_t rank = 0);

    /** Visits of (site, rank) so far (tests pin determinism on this). */
    std::uint64_t visits(std::string_view site,
                         std::uint32_t rank = 0) const;

    const FaultPlan &plan() const { return plan_; }

  private:
    mutable std::mutex mu_;
    FaultPlan plan_;
    std::map<std::pair<std::string, std::uint32_t>, std::uint64_t>
        counts_;
    std::vector<bool> consumed_; //!< per-spec transient-fired flags
};

} // namespace maxk

#endif // MAXK_COMMON_FAULT_HH
