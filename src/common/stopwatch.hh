/**
 * @file
 * Wall-clock stopwatch for host-side measurements. Simulated GPU time comes
 * from gpusim::KernelStats, never from this class; the stopwatch only feeds
 * the informational "host ms" columns in bench output.
 */

#ifndef MAXK_COMMON_STOPWATCH_HH
#define MAXK_COMMON_STOPWATCH_HH

#include <chrono>
#include <cstdint>

namespace maxk
{

/** Simple monotonic stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    /** Restart timing from zero. */
    void reset() { start_ = Clock::now(); }

    /** Integer nanoseconds elapsed since construction or reset() —
     *  the precise form the telemetry span counters store. */
    std::uint64_t
    elapsedNs() const
    {
        const auto d = Clock::now() - start_;
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(d)
                .count());
    }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        const auto d = Clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

    /** Milliseconds elapsed. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    // Wall-clock deltas must never run backwards (NTP steps on the
    // system clock would corrupt bench timings and trace spans).
    static_assert(Clock::is_steady,
                  "Stopwatch requires a monotonic clock");
    Clock::time_point start_;
};

} // namespace maxk

#endif // MAXK_COMMON_STOPWATCH_HH
