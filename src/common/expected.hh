/**
 * @file
 * Minimal Expected<T, E>: a value-or-error sum type for recoverable
 * failures (std::expected arrives only in C++23; this is the subset the
 * I/O layer needs). Unlike fatal()/panic(), an Expected return makes the
 * failure path *testable*: malformed input files become assertable
 * IoError values instead of process exits.
 *
 * Accessing the wrong alternative is a programming error and panics —
 * callers must branch on hasValue() / operator bool first.
 */

#ifndef MAXK_COMMON_EXPECTED_HH
#define MAXK_COMMON_EXPECTED_HH

#include <utility>
#include <variant>

#include "common/logging.hh"

namespace maxk
{

/** Tag wrapper selecting the error alternative of an Expected. */
template <class E>
struct Unexpected
{
    E error;
};

/** Deduction-friendly maker: `return unexpected(IoError{...});`. */
template <class E>
Unexpected<std::decay_t<E>>
unexpected(E &&e)
{
    return {std::forward<E>(e)};
}

template <class T, class E>
class Expected
{
  public:
    Expected(T value) : storage_(std::in_place_index<0>, std::move(value))
    {
    }

    Expected(Unexpected<E> err)
        : storage_(std::in_place_index<1>, std::move(err.error))
    {
    }

    bool hasValue() const { return storage_.index() == 0; }
    explicit operator bool() const { return hasValue(); }

    T &
    value()
    {
        checkInvariant(hasValue(), "Expected::value() on error state");
        return std::get<0>(storage_);
    }

    const T &
    value() const
    {
        checkInvariant(hasValue(), "Expected::value() on error state");
        return std::get<0>(storage_);
    }

    E &
    error()
    {
        checkInvariant(!hasValue(), "Expected::error() on value state");
        return std::get<1>(storage_);
    }

    const E &
    error() const
    {
        checkInvariant(!hasValue(), "Expected::error() on value state");
        return std::get<1>(storage_);
    }

    T
    valueOr(T fallback) const
    {
        return hasValue() ? std::get<0>(storage_) : std::move(fallback);
    }

    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }
    T &operator*() { return value(); }
    const T &operator*() const { return value(); }

  private:
    std::variant<T, E> storage_;
};

} // namespace maxk

#endif // MAXK_COMMON_EXPECTED_HH
