#include "common/fault.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace maxk
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::RankThrow:
        return "rank-throw";
      case FaultKind::CommTimeout:
        return "comm-timeout";
      case FaultKind::CheckpointTruncate:
        return "ckpt-truncate";
      case FaultKind::CheckpointBitFlip:
        return "ckpt-bitflip";
      case FaultKind::ServeBurst:
        return "serve-burst";
    }
    return "unknown";
}

FaultPlan
FaultPlan::named(const std::string &name, std::uint64_t seed)
{
    // Keyed firing indices: small deterministic draws so the scenario
    // lands inside short CI-sized runs but still moves with the seed.
    FaultPlan plan;
    if (name == "rank-throw") {
        Rng rng(rngKey(seed, 0xFA017ull, 1));
        FaultSpec s;
        s.kind = FaultKind::RankThrow;
        s.site = "sharded.epoch";
        s.occurrence = 2 + rng.nextBounded(3); // epoch 2..4
        s.rank = static_cast<std::uint32_t>(rng.nextBounded(3));
        plan.add(std::move(s));
    } else if (name == "comm-timeout") {
        Rng rng(rngKey(seed, 0xFA017ull, 2));
        FaultSpec transient;
        transient.kind = FaultKind::CommTimeout;
        transient.site = "comm.allReduceSum";
        transient.occurrence = rng.nextBounded(4);
        transient.rank = kAnyRank;
        transient.transient = true;
        plan.add(std::move(transient));
        FaultSpec fatal_spec;
        fatal_spec.kind = FaultKind::CommTimeout;
        fatal_spec.site = "comm.allToAllv";
        fatal_spec.occurrence = 4 + rng.nextBounded(4);
        fatal_spec.rank = static_cast<std::uint32_t>(rng.nextBounded(2));
        plan.add(std::move(fatal_spec));
    } else if (name == "ckpt-corrupt") {
        Rng rng(rngKey(seed, 0xFA017ull, 3));
        FaultSpec flip;
        flip.kind = FaultKind::CheckpointBitFlip;
        flip.site = "checkpoint.write";
        flip.occurrence = 1 + rng.nextBounded(2); // the 2nd or 3rd save
        flip.payload = rng.next();                // bit position (mod size)
        plan.add(std::move(flip));
        FaultSpec trunc;
        trunc.kind = FaultKind::CheckpointTruncate;
        trunc.site = "checkpoint.write";
        trunc.occurrence = 3 + rng.nextBounded(2);
        trunc.payload = 1 + rng.nextBounded(64); // bytes cut off the tail
        plan.add(std::move(trunc));
    } else if (name == "serve-burst") {
        Rng rng(rngKey(seed, 0xFA017ull, 4));
        FaultSpec burst;
        burst.kind = FaultKind::ServeBurst;
        burst.site = "serve.replay";
        burst.occurrence = 0;
        burst.payload = 96 + rng.nextBounded(64); // burst request count
        plan.add(std::move(burst));
    } else {
        fatal("FaultPlan::named: unknown scenario '" + name +
              "' (known: rank-throw, comm-timeout, ckpt-corrupt, "
              "serve-burst)");
    }
    return plan;
}

const FaultSpec *
FaultInjector::fire(std::string_view site, std::uint32_t rank)
{
    if (!armed())
        return nullptr;
    std::lock_guard<std::mutex> lk(mu_);
    if (consumed_.size() != plan_.specs().size())
        consumed_.assign(plan_.specs().size(), false);
    const std::uint64_t visit =
        counts_[{std::string(site), rank}]++;
    const std::vector<FaultSpec> &specs = plan_.specs();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const FaultSpec &s = specs[i];
        if (s.site != site)
            continue;
        if (s.rank != kAnyRank && s.rank != rank)
            continue;
        if (s.occurrence != visit)
            continue;
        if (s.transient) {
            if (consumed_[i])
                continue;
            consumed_[i] = true;
        }
        return &s;
    }
    return nullptr;
}

void
FaultInjector::maybeThrow(std::string_view site, std::uint32_t rank)
{
    if (const FaultSpec *s = fire(site, rank))
        throw InjectedFault(*s);
}

std::uint64_t
FaultInjector::visits(std::string_view site, std::uint32_t rank) const
{
    if (!armed())
        return 0;
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = counts_.find({std::string(site), rank});
    return it == counts_.end() ? 0 : it->second;
}

} // namespace maxk
