/**
 * @file
 * Fundamental scalar types shared by every MaxK-GNN module.
 *
 * The reproduction standardises on 32-bit node/edge indices (the largest
 * paper graph, ogbn-products, has 123.7M edges which fits in uint32) and
 * 32-bit IEEE-754 features, matching the CUDA artifact.
 */

#ifndef MAXK_COMMON_TYPES_HH
#define MAXK_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace maxk
{

/** Node identifier within a graph (row/column of the adjacency matrix). */
using NodeId = std::uint32_t;

/** Edge identifier: position within the CSR column-index array. */
using EdgeId = std::uint32_t;

/** Feature scalar. The CUDA artifact trains in fp32 end to end. */
using Float = float;

/** Byte count for memory-traffic accounting. */
using Bytes = std::uint64_t;

/** Cycle count for the device timing model. */
using Cycles = std::uint64_t;

} // namespace maxk

#endif // MAXK_COMMON_TYPES_HH
