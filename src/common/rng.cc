#include "common/rng.hh"

#include <cmath>

namespace maxk
{

namespace
{
inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}
} // namespace

std::uint64_t
Rng::splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Lemire-style rejection-free bounded draw is overkill here; the simple
    // modulo bias is < 2^-40 for all bounds used in this project.
    return next() % bound;
}

Float
Rng::uniform()
{
    // Use the top 24 bits for a dense fp32 mantissa.
    return static_cast<Float>(next() >> 40) * (1.0f / 16777216.0f);
}

Float
Rng::uniform(Float lo, Float hi)
{
    return lo + (hi - lo) * uniform();
}

Float
Rng::normal()
{
    // Box-Muller; reject u1 == 0 to avoid log(0).
    Float u1 = uniform();
    while (u1 <= 1e-12f)
        u1 = uniform();
    const Float u2 = uniform();
    const Float r = std::sqrt(-2.0f * std::log(u1));
    return r * std::cos(6.28318530717958647692f * u2);
}

Float
Rng::normal(Float mean, Float stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(Float p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    // Derive the child from two draws so parent and child streams differ.
    const std::uint64_t a = next();
    const std::uint64_t b = next();
    return Rng(a ^ rotl(b, 31) ^ 0xA5A5A5A55A5A5A5Aull);
}

namespace
{

/** Absorb one word into a running key (splitmix64 finalisation). */
inline std::uint64_t
absorbWord(std::uint64_t h, std::uint64_t w)
{
    h += w + 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    return h ^ (h >> 31);
}

} // namespace

std::uint64_t
rngKey(std::uint64_t a, std::uint64_t b, std::uint64_t c, std::uint64_t d)
{
    std::uint64_t h = 0x243F6A8885A308D3ull; // pi fraction: nothing up the sleeve
    h = absorbWord(h, a);
    h = absorbWord(h, b);
    h = absorbWord(h, c);
    h = absorbWord(h, d);
    return h;
}

} // namespace maxk
