#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace maxk
{

namespace
{

/*
 * Level filter. Initialised from MAXK_LOG_LEVEL (name or 0-3) on
 * first use; setLogLevel() overrides. Atomic because rank and
 * producer threads log concurrently.
 */
constexpr int kLevelUnset = -1;
std::atomic<int> g_level{kLevelUnset};

int
levelFromEnv()
{
    const char *env = std::getenv("MAXK_LOG_LEVEL");
    if (!env || !*env)
        return static_cast<int>(LogLevel::Info);
    if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0)
        return static_cast<int>(LogLevel::Debug);
    if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0)
        return static_cast<int>(LogLevel::Info);
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "2") == 0)
        return static_cast<int>(LogLevel::Warn);
    if (std::strcmp(env, "error") == 0 || std::strcmp(env, "3") == 0)
        return static_cast<int>(LogLevel::Error);
    std::fprintf(stderr,
                 "[WARN] MAXK_LOG_LEVEL=%s not recognised "
                 "(debug|info|warn|error or 0-3); using info\n",
                 env);
    return static_cast<int>(LogLevel::Info);
}

int
effectiveLevel()
{
    int level = g_level.load(std::memory_order_relaxed);
    if (level == kLevelUnset) {
        level = levelFromEnv();
        // Lost races recompute the same env-derived value; harmless.
        g_level.store(level, std::memory_order_relaxed);
    }
    return level;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

/** Emit one fully-formed line with a single locked write, so lines
 *  from concurrent ranks/producer threads never interleave mid-line. */
void
writeLine(const std::string &line)
{
    flockfile(stderr);
    std::fwrite(line.data(), 1, line.size(), stderr);
    funlockfile(stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(effectiveLevel());
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < effectiveLevel())
        return;
    std::string line;
    line.reserve(msg.size() + 16);
    line += '[';
    line += levelName(level);
    line += "] ";
    line += msg;
    line += '\n';
    writeLine(line);
}

void
fatal(const std::string &msg)
{
    writeLine("fatal: " + msg + "\n");
    std::exit(1);
}

void
panic(const std::string &msg)
{
    writeLine("panic: " + msg + "\n");
    std::abort();
}

} // namespace maxk
