#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace maxk
{

namespace
{
LogLevel g_level = LogLevel::Info;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_level))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace maxk
