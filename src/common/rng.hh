/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the reproduction (graph generators, weight
 * init, dropout, dataset splits) draws from this xoshiro256** generator so
 * that runs are bit-exact across machines and build modes. std::mt19937 is
 * avoided because libstdc++'s distribution implementations are not
 * guaranteed stable across versions.
 */

#ifndef MAXK_COMMON_RNG_HH
#define MAXK_COMMON_RNG_HH

#include <cstdint>

#include "common/types.hh"

namespace maxk
{

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain reference
 * implementation re-typed for this project), seeded via splitmix64.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform in [0, bound). bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform float in [0, 1). */
    Float uniform();

    /** Uniform float in [lo, hi). */
    Float uniform(Float lo, Float hi);

    /** Standard normal via Box-Muller (uses two uniform draws). */
    Float normal();

    /** Normal with the given mean / stddev. */
    Float normal(Float mean, Float stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(Float p);

    /**
     * Fork a child generator whose stream is independent of (and stable
     * with respect to) the parent. Used to give each module its own stream
     * so adding draws in one place does not perturb another.
     */
    Rng fork();

    /**
     * Stream-position capture for checkpoint/restore: copy the raw
     * xoshiro256** state out / back in. A generator restored via
     * setStateWords continues the exact draw sequence the captured one
     * would have produced — the property that makes a resumed training
     * run bitwise-equal to the uninterrupted one.
     */
    void stateWords(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = s_[i];
    }
    void setStateWords(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            s_[i] = in[i];
    }

  private:
    std::uint64_t s_[4];

    static std::uint64_t splitmix64(std::uint64_t &state);
};

/**
 * Derive a stream key from up to four component words (splitmix64
 * finalisation per word, so every component fully avalanches). The
 * neighbor sampler keys one Rng per (epoch, batch, seed vertex) through
 * this, which is what makes sampled minibatches bitwise-identical at
 * any thread count and any pipeline interleaving: the stream a vertex
 * draws from depends only on these coordinates, never on which worker
 * expands it or when.
 */
std::uint64_t rngKey(std::uint64_t a, std::uint64_t b = 0,
                     std::uint64_t c = 0, std::uint64_t d = 0);

} // namespace maxk

#endif // MAXK_COMMON_RNG_HH
