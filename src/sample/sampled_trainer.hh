/**
 * @file
 * Sample-based mini-batch trainer: the third stage of the pipeline,
 * driving the existing GnnModel forward/backward on extracted
 * minibatches (ISSUE 6).
 *
 * Loss semantics: each batch contributes the mean loss over its seed
 * vertices (softmaxCrossEntropyInto / sigmoidBceInto with norm_count =
 * 0, i.e. the active masked count), and the reported epoch loss is the
 * seed-weighted mean over the epoch — identical to the mean over all
 * training vertices visited once per epoch.
 *
 * Determinism contract (asserted by tests/test_pipeline.cc): the
 * pipelined run (`pipeline = true`, any queueDepth >= 1) is
 * bitwise-identical to the synchronous run at any MAXK_THREADS.
 * Sampling draws only from per-(epoch, batch, vertex) keyed streams;
 * the model's dropout stream is consumed exclusively on the consumer
 * thread in batch order; and padding to the sampler's fixed node
 * capacity makes every forward shape-constant, so stream consumption
 * cannot depend on sampled sizes either.
 *
 * Evaluation runs full-graph on a second, identically-configured model
 * whose parameter values are copied from the training model at each
 * eval point. Two models keep the minibatch-shaped and graph-shaped
 * workspaces separate, which is what makes steady-state epochs
 * (epoch >= 2) free of Matrix/CbsrMatrix heap allocations across all
 * pipeline stages (sampling, extraction, training, evaluation).
 */

#ifndef MAXK_SAMPLE_SAMPLED_TRAINER_HH
#define MAXK_SAMPLE_SAMPLED_TRAINER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "graph/registry.hh"
#include "nn/model.hh"
#include "nn/optimizer.hh"
#include "sample/extractor.hh"
#include "sample/sampler.hh"

namespace maxk::sample
{

/** Mini-batch training hyper-parameters. */
struct SampledTrainConfig
{
    std::uint32_t epochs = 20;
    Float lr = 0.01f;
    Float weightDecay = 0.0f;
    std::uint32_t evalEvery = 1;   //!< 0 is clamped to 1 (every epoch)
    bool pipeline = true;          //!< overlap sampling with training
    std::uint32_t queueDepth = 2;  //!< batches buffered ahead (>= 1)
    bool verbose = false;

    /** Checkpoint/restore (ISSUE 9) — same contract as TrainConfig:
     *  non-empty dir enables rotated end-of-epoch checkpoints and
     *  resume-from-newest with bitwise-identical continuation (the
     *  produce index restarts at start_epoch * numBatches, so the
     *  keyed sample streams line up exactly). */
    std::string checkpointDir;
    std::uint32_t checkpointEvery = 1;
    std::uint32_t checkpointKeep = 2;

    /** Optional fault injector (site "sampled_trainer.epoch",
     *  "checkpoint.write"). Not owned. */
    FaultInjector *faults = nullptr;

    /** Arm telemetry for the run (ISSUE 10). Observation only —
     *  bitwise-neutral, same contract as nn::TrainConfig::telemetry. */
    bool telemetry = false;
};

/** Outcome of a mini-batch run: trajectory, metrics, and the pipeline
 *  observability counters the tests and bench pin down. */
struct SampledTrainResult
{
    std::vector<double> trainLoss;   //!< seed-weighted mean per epoch
    std::vector<double> valMetric;   //!< one per eval point (full graph)
    std::vector<double> testMetric;
    std::vector<std::uint32_t> evalEpochs;

    double bestValMetric = 0.0;
    double testAtBestVal = 0.0;
    double finalTestMetric = 0.0;
    double hostSeconds = 0.0;

    /** Full-graph logits of the last evaluation. */
    Matrix finalLogits;

    /** Matrix/CbsrMatrix heap allocations during epochs >= 2 (0 once
     *  every slot and workspace is warm). */
    std::uint64_t steadyStateAllocCount = 0;

    std::uint64_t batchesTrained = 0;
    std::uint64_t sampledNodes = 0;  //!< Σ real (unpadded) batch nodes
    std::uint64_t sampledEdges = 0;  //!< Σ sampled minibatch edges

    /** Producer threads spawned over the whole run: 1 in pipelined mode
     *  (the producer lives across epochs — cross-epoch pipelining), 0 in
     *  synchronous mode. Pinned by tests/test_pipeline.cc as the
     *  regression guard against reintroducing a per-epoch join. */
    std::uint32_t producerSpawns = 0;
};

/** Mini-batch trainer over NeighborSampler + MinibatchExtractor. */
class SampledTrainer
{
  public:
    /**
     * fatal() on config errors: sampler fanout arity != model layer
     * count, empty training mask, or an invalid SamplerConfig (zero
     * batch size, empty fanout list — checked by NeighborSampler).
     *
     * @param model training model (its dropout stream is the only
     *              shared RNG; consumed in batch order)
     * @param data  graph + features + labels + masks (mutated: edge
     *              weights are set for the model's aggregator, for the
     *              full-graph evaluation forward)
     * @param task  metric / multi-label configuration
     * @param scfg  sampling configuration
     */
    SampledTrainer(nn::GnnModel &model, TrainingData &data,
                   const TrainingTask &task, const SamplerConfig &scfg);

    /** Run the loop; bitwise-deterministic given seeds (any threads,
     *  any pipeline mode/depth). */
    SampledTrainResult run(const SampledTrainConfig &cfg);

    const NeighborSampler &sampler() const { return sampler_; }

  private:
    double evalMetric(const Matrix &logits,
                      const std::vector<std::uint8_t> &mask) const;

    /** Copy training parameter values into the eval replica. */
    void syncEvalParams();

    /** Forward/backward/step on one extracted minibatch. */
    double trainStep(const Minibatch &mb, nn::Adam &adam);

    nn::GnnModel &model_;
    TrainingData &data_;
    const TrainingTask &task_;
    NeighborSampler sampler_;
    nn::GnnModel evalModel_;   //!< full-graph eval replica (same cfg)
    Matrix multiTargets_;      //!< global BCE targets when multiLabel
    std::optional<MinibatchExtractor> extractor_;
    std::vector<NodeId> trainIds_;

    // Persistent run() workspaces.
    std::vector<NodeId> order_;    //!< epoch seed order
    std::vector<NodeId> seedsWs_;  //!< current batch seeds
    SampleBatch batchWs_;          //!< sampler output
    Matrix gradWs_;                //!< d(loss)/d(logits)
    Matrix probsWs_;               //!< softmax scratch
};

} // namespace maxk::sample

#endif // MAXK_SAMPLE_SAMPLED_TRAINER_HH
