/**
 * @file
 * Minibatch extraction — stage two of the sample/extract/train pipeline
 * (FGNN's dedicated extraction task, SNIPPETS.md Sec. 1).
 *
 * Gathers one SampleBatch into a self-contained training input: a
 * compact local CSR with the model's aggregator weights, plus feature /
 * label / mask rows gathered from the global training data. Every
 * minibatch is padded to the sampler's fixed node capacity with
 * isolated, zero-feature, unmasked rows, so the downstream GnnModel
 * workspaces see ONE shape for the whole run — that is what makes
 * steady-state epochs Matrix/CbsrMatrix-allocation-free (alloc_probe)
 * even though sampled subgraph sizes vary per batch. Padding rows cost
 * dense FLOPs but touch no edges, draw a deterministic amount of
 * dropout stream (shape-constant), and contribute nothing to the loss.
 */

#ifndef MAXK_SAMPLE_EXTRACTOR_HH
#define MAXK_SAMPLE_EXTRACTOR_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"
#include "sample/sampler.hh"
#include "tensor/matrix.hh"

namespace maxk::sample
{

/** One extracted minibatch (a persistent pipeline-slot workspace). */
struct Minibatch
{
    std::uint32_t epoch = 0;
    std::uint32_t batchIndex = 0;

    std::size_t numSeeds = 0;  //!< real seed rows (loss normalisation)
    std::size_t numNodes = 0;  //!< real rows; rows beyond are padding

    /** Local subgraph: always `capacity` rows (padding rows isolated),
     *  aggregator weights applied over local sampled degrees. */
    CsrGraph graph;

    /** Local row -> global vertex id (size numNodes). */
    std::vector<NodeId> globalIds;

    /** capacity x featureDim; rows >= numNodes zeroed. */
    Matrix features;

    /** capacity entries; padding rows get label 0 (never masked). */
    std::vector<std::uint32_t> labels;

    /** capacity entries; 1 exactly on the seed rows. */
    std::vector<std::uint8_t> trainMask;

    /** capacity x numClasses multi-label targets; only gathered when
     *  the extractor was given global targets (empty otherwise). */
    Matrix targets;
};

/** Gathers SampleBatch topology + global tensors into Minibatch slots. */
class MinibatchExtractor
{
  public:
    /**
     * @param capacity       fixed padded row count
     *                       (NeighborSampler::nodeCapacity())
     * @param agg            aggregator convention applied to each local
     *                       CSR (local sampled degrees, the GraphSAGE
     *                       minibatch semantics)
     * @param features       global N x featureDim inputs
     * @param labels         global per-node labels
     * @param multi_targets  global N x C multi-label targets, or nullptr
     *                       for single-label tasks
     */
    MinibatchExtractor(NodeId capacity, Aggregator agg,
                       const Matrix &features,
                       const std::vector<std::uint32_t> &labels,
                       const Matrix *multi_targets = nullptr);

    NodeId capacity() const { return capacity_; }

    /**
     * Fill `out` from `sb`. All slot storage is reused via ensureShape /
     * assign; at steady state (every slot warmed once) the call performs
     * zero Matrix/CbsrMatrix heap allocations. Bitwise-deterministic at
     * any thread count (per-row disjoint gather).
     */
    void extract(const SampleBatch &sb, Minibatch &out);

  private:
    NodeId capacity_;
    Aggregator agg_;
    const Matrix &features_;
    const std::vector<std::uint32_t> &labels_;
    const Matrix *multiTargets_;

    // CSR staging reused across batches (vectors are moved into the
    // slot's CsrGraph, then reclaimed from scratch next call — untracked
    // scratch, not part of the Matrix/CbsrMatrix contract).
    std::vector<EdgeId> rowPtrStage_;
    std::vector<NodeId> colIdxStage_;
};

} // namespace maxk::sample

#endif // MAXK_SAMPLE_EXTRACTOR_HH
