/**
 * @file
 * Deterministic per-layer neighbor sampling — the first stage of the
 * sample-based mini-batch pipeline (ISSUE 6; FGNN's factored design,
 * SNIPPETS.md Sec. 1).
 *
 * Full-batch training caps this system at graphs that fit one shard;
 * mini-batch training over sampled k-hop neighborhoods is the standard
 * unlock (GraphSAGE fanout sampling). The sampler here is built on the
 * repo's determinism substrate: every vertex expansion draws from its
 * own Rng stream keyed on (sampler seed, epoch, batch, vertex) via
 * rngKey() (common/rng.hh), so the sampled subgraph of a given
 * (epoch, batch) is bitwise-identical at any MAXK_THREADS, any queue
 * depth, and any producer/consumer interleaving — the property the
 * pipelined trainer's bitwise-reproducibility contract rests on.
 *
 * Sampling semantics (one flattened k-hop block, not per-layer
 * bipartite blocks): seeds form hop 0; at hop h every vertex first
 * reached at hop h draws min(fanouts[h], degree) distinct out-neighbors
 * from its keyed stream; the union of reached vertices becomes the
 * minibatch node set, and each expanded vertex keeps exactly its
 * sampled edges. Vertices first reached at the last hop keep empty
 * rows (their features enter only as aggregation sources). A fanout of
 * 0 at hop 0 therefore yields a seed-only batch.
 */

#ifndef MAXK_SAMPLE_SAMPLER_HH
#define MAXK_SAMPLE_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "graph/csr.hh"

namespace maxk::sample
{

/** Mini-batch sampling configuration. */
struct SamplerConfig
{
    /** Neighbors sampled per vertex at each hop; arity must equal the
     *  model's layer count (checked by SampledTrainer). */
    std::vector<std::uint32_t> fanouts{10, 10};

    /** Seed vertices per minibatch (>= 1; the last batch of an epoch
     *  may be smaller). */
    std::uint32_t batchSize = 64;

    /** Root of every keyed stream (seed order and neighbor draws). */
    std::uint64_t seed = 7;
};

/**
 * One sampled minibatch in global ids + local CSR topology. The node
 * list is ascending in global id, so local ids are order-preserving:
 * sorted global neighbor lists map to sorted local rows for free.
 */
struct SampleBatch
{
    std::uint32_t epoch = 0;
    std::uint32_t batchIndex = 0;

    /** Sampled vertices, ascending global ids (seeds included). */
    std::vector<NodeId> nodes;

    /** Seed vertices of this batch, ascending global ids, deduplicated
     *  (duplicate seeds in the input collapse to one row). */
    std::vector<NodeId> seeds;

    /** Local-id CSR over `nodes`: row r holds the sampled out-edges of
     *  nodes[r] (empty for vertices first reached at the last hop). */
    std::vector<EdgeId> rowPtr;
    std::vector<NodeId> colIdx;

    std::size_t numNodes() const { return nodes.size(); }
    std::size_t numEdges() const { return colIdx.size(); }
};

/** Fanout-per-layer neighbor sampler with keyed per-vertex streams. */
class NeighborSampler
{
  public:
    /**
     * @param g   graph to sample (must outlive the sampler)
     * @param cfg validated config: fatal() on batchSize == 0 or an
     *            empty fanout list (fanout values of 0 are legal)
     */
    NeighborSampler(const CsrGraph &g, const SamplerConfig &cfg);

    const SamplerConfig &config() const { return cfg_; }

    /**
     * Upper bound on the node count of any sampled batch:
     * min(|V|, batchSize * (1 + f0 + f0*f1 + ...)). The extractor pads
     * every minibatch to this capacity so downstream Matrix workspaces
     * keep one shape across batches (zero-allocation steady state).
     */
    NodeId nodeCapacity() const { return capacity_; }

    /** ceil(num_train / batchSize): batches per epoch. */
    std::uint32_t numBatches(std::size_t num_train) const;

    /**
     * Deterministic seed order of one epoch: Fisher-Yates shuffle of
     * `train_ids` keyed on (seed, epoch). Slicing the order into
     * batchSize runs yields the epoch's batch seed sets.
     */
    void epochOrder(std::uint32_t epoch,
                    const std::vector<NodeId> &train_ids,
                    std::vector<NodeId> &order) const;

    /**
     * Sample the k-hop neighborhood of `seeds` into `out` (workspaces
     * reused; all vectors overwritten). Seeds may be an arbitrary
     * request set — any order, duplicates allowed (collapsed), isolated
     * vertices allowed (they become seed-only rows) — not just
     * train-mask batches. Bitwise-deterministic for a given
     * (epoch, batch, seed set) at any thread count. Not reentrant:
     * one sample() at a time per sampler (the pipeline's single
     * producer stage satisfies this by construction).
     */
    void sample(std::uint32_t epoch, std::uint32_t batch,
                const std::vector<NodeId> &seeds, SampleBatch &out);

  private:
    const CsrGraph &g_;
    SamplerConfig cfg_;
    NodeId capacity_ = 0;

    // Per-call workspaces (untracked std::vector scratch; reused so the
    // steady-state sampling loop does not grow them).
    std::vector<std::uint32_t> stamp_;     //!< visit marker per vertex
    std::uint32_t curStamp_ = 0;
    std::vector<NodeId> frontier_;         //!< vertices expanded this hop
    std::vector<NodeId> nextFrontier_;
    std::vector<NodeId> sampledFlat_;      //!< expansion-order vertices
    std::vector<NodeId> adjData_;          //!< sampled edges, global ids
    std::vector<EdgeId> adjStart_;         //!< per expanded vertex
    std::vector<std::uint32_t> adjLen_;
    std::vector<std::uint32_t> expandedOf_; //!< vertex -> expansion index
    std::vector<NodeId> localOf_;          //!< vertex -> local id
};

} // namespace maxk::sample

#endif // MAXK_SAMPLE_SAMPLER_HH
