#include "sample/sampler.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace maxk::sample
{

namespace
{
/** Frontier vertices per parallel chunk of the draw loop. */
constexpr std::size_t kDrawGrain = 64;

/** Tag word separating the epoch-order stream from vertex streams. */
constexpr std::uint64_t kOrderTag = 0x5EED0CDEull;
} // namespace

NeighborSampler::NeighborSampler(const CsrGraph &g,
                                 const SamplerConfig &cfg)
    : g_(g), cfg_(cfg)
{
    if (cfg_.batchSize == 0)
        fatal("NeighborSampler: batch size must be >= 1");
    if (cfg_.fanouts.empty())
        fatal("NeighborSampler: need at least one fanout (one per layer)");

    // Node-count bound: B * (1 + f0 + f0*f1 + ...), clamped to |V|.
    std::uint64_t bound = cfg_.batchSize;
    std::uint64_t width = cfg_.batchSize;
    for (const std::uint32_t f : cfg_.fanouts) {
        width *= f;
        bound += width;
        if (bound >= g_.numNodes()) {
            bound = g_.numNodes();
            break;
        }
    }
    capacity_ = static_cast<NodeId>(
        std::min<std::uint64_t>(bound, g_.numNodes()));
}

std::uint32_t
NeighborSampler::numBatches(std::size_t num_train) const
{
    return static_cast<std::uint32_t>(
        (num_train + cfg_.batchSize - 1) / cfg_.batchSize);
}

void
NeighborSampler::epochOrder(std::uint32_t epoch,
                            const std::vector<NodeId> &train_ids,
                            std::vector<NodeId> &order) const
{
    order = train_ids;
    Rng rng(rngKey(cfg_.seed, kOrderTag, epoch));
    for (std::size_t i = order.size(); i > 1; --i) {
        const std::size_t j =
            static_cast<std::size_t>(rng.nextBounded(i));
        std::swap(order[i - 1], order[j]);
    }
}

void
NeighborSampler::sample(std::uint32_t epoch, std::uint32_t batch,
                        const std::vector<NodeId> &seeds,
                        SampleBatch &out)
{
    checkInvariant(!seeds.empty(), "NeighborSampler::sample: no seeds");
    const NodeId n = g_.numNodes();
    if (stamp_.size() != n) {
        stamp_.assign(n, 0);
        curStamp_ = 0;
        localOf_.resize(n);
        expandedOf_.resize(n);
    }
    if (++curStamp_ == 0) { // uint32 wrap: restart the marker epoch
        stamp_.assign(n, 0);
        curStamp_ = 1;
    }

    out.epoch = epoch;
    out.batchIndex = batch;
    out.seeds = seeds;
    std::sort(out.seeds.begin(), out.seeds.end());

    out.nodes.clear();
    adjData_.clear();
    adjStart_.clear();
    adjLen_.clear();
    frontier_.clear();
    std::vector<NodeId> &exp_vertex = sampledFlat_; // expansion order
    exp_vertex.clear();

    // Duplicate seeds collapse to one row: serving traces routinely ask
    // for the same vertex twice in a batch window, and the sampled
    // neighborhood of a vertex is seed-multiplicity-independent anyway
    // (per-vertex keyed streams). out.seeds keeps the deduplicated,
    // ascending set.
    NodeId unique_seeds = 0;
    for (const NodeId s : out.seeds) {
        checkInvariant(s < n, "NeighborSampler::sample: seed out of range");
        if (stamp_[s] == curStamp_)
            continue;
        stamp_[s] = curStamp_;
        out.seeds[unique_seeds++] = s;
        frontier_.push_back(s);
        out.nodes.push_back(s);
    }
    out.seeds.resize(unique_seeds);

    for (std::size_t hop = 0; hop < cfg_.fanouts.size(); ++hop) {
        const std::uint32_t f = cfg_.fanouts[hop];
        const std::size_t F = frontier_.size();
        const std::size_t exp_base = adjStart_.size();
        const std::size_t data_base = adjData_.size();
        adjStart_.resize(exp_base + F);
        adjLen_.resize(exp_base + F);
        adjData_.resize(data_base + F * static_cast<std::size_t>(f));
        exp_vertex.insert(exp_vertex.end(), frontier_.begin(),
                          frontier_.end());

        // Keyed per-vertex draws: every slot range is written by exactly
        // one frontier index, so the chunk layout cannot change results.
        parallelFor(
            0, F, kDrawGrain,
            [&](std::uint32_t, std::size_t begin, std::size_t end) {
                std::vector<EdgeId> pick;
                for (std::size_t i = begin; i < end; ++i) {
                    const NodeId v = frontier_[i];
                    const EdgeId e0 = g_.rowPtr()[v];
                    const EdgeId deg = g_.degree(v);
                    const std::size_t slot =
                        data_base + i * static_cast<std::size_t>(f);
                    adjStart_[exp_base + i] = static_cast<EdgeId>(slot);
                    expandedOf_[v] =
                        static_cast<std::uint32_t>(exp_base + i);
                    std::uint32_t cnt = 0;
                    if (f == 0) {
                        // Seed-only hop: expanded with an empty row.
                    } else if (deg <= f) {
                        // Degree under the fanout: take every neighbor
                        // (already ascending in the CSR); no draw, so
                        // the keyed stream is untouched.
                        cnt = deg;
                        std::copy(g_.colIdx().begin() + e0,
                                  g_.colIdx().begin() + e0 + deg,
                                  adjData_.begin() + slot);
                    } else {
                        // Partial Fisher-Yates over the edge positions:
                        // f distinct picks from this vertex's own
                        // (epoch, batch, vertex)-keyed stream.
                        Rng rng(rngKey(cfg_.seed, epoch, batch, v));
                        pick.resize(deg);
                        std::iota(pick.begin(), pick.end(), EdgeId{0});
                        for (std::uint32_t t = 0; t < f; ++t) {
                            const std::uint64_t j =
                                t + rng.nextBounded(deg - t);
                            std::swap(pick[t], pick[j]);
                        }
                        for (std::uint32_t t = 0; t < f; ++t)
                            adjData_[slot + t] = g_.colIdx()[e0 + pick[t]];
                        std::sort(adjData_.begin() + slot,
                                  adjData_.begin() + slot + f);
                        cnt = f;
                    }
                    adjLen_[exp_base + i] = cnt;
                }
            });

        // Serial merge: discover unseen vertices in frontier order, then
        // sort — the discovered set (and hence everything downstream) is
        // independent of the parallel chunk layout.
        nextFrontier_.clear();
        for (std::size_t i = 0; i < F; ++i) {
            const EdgeId start = adjStart_[exp_base + i];
            for (std::uint32_t t = 0; t < adjLen_[exp_base + i]; ++t) {
                const NodeId u = adjData_[start + t];
                if (stamp_[u] != curStamp_) {
                    stamp_[u] = curStamp_;
                    nextFrontier_.push_back(u);
                }
            }
        }
        std::sort(nextFrontier_.begin(), nextFrontier_.end());
        out.nodes.insert(out.nodes.end(), nextFrontier_.begin(),
                         nextFrontier_.end());
        std::swap(frontier_, nextFrontier_);
    }

    // Canonical local ids: ascending global order. The map is monotone,
    // so the per-vertex sorted global neighbor lists stay sorted as
    // local rows.
    std::sort(out.nodes.begin(), out.nodes.end());
    checkInvariant(out.nodes.size() <= capacity_,
                   "NeighborSampler::sample: capacity bound violated");
    for (std::size_t r = 0; r < out.nodes.size(); ++r)
        localOf_[out.nodes[r]] = static_cast<NodeId>(r);

    const std::size_t nl = out.nodes.size();
    out.rowPtr.assign(nl + 1, 0);
    for (std::size_t e = 0; e < exp_vertex.size(); ++e)
        out.rowPtr[localOf_[exp_vertex[e]] + 1] = adjLen_[e];
    for (std::size_t r = 0; r < nl; ++r)
        out.rowPtr[r + 1] += out.rowPtr[r];

    out.colIdx.resize(out.rowPtr[nl]);
    for (std::size_t e = 0; e < exp_vertex.size(); ++e) {
        const std::size_t r = localOf_[exp_vertex[e]];
        const EdgeId start = adjStart_[e];
        EdgeId at = out.rowPtr[r];
        for (std::uint32_t t = 0; t < adjLen_[e]; ++t)
            out.colIdx[at++] = localOf_[adjData_[start + t]];
    }
}

} // namespace maxk::sample
