#include "sample/extractor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace maxk::sample
{

namespace
{
/** Rows per parallel chunk of the feature gather. */
constexpr std::size_t kGatherGrain = 128;
} // namespace

MinibatchExtractor::MinibatchExtractor(NodeId capacity, Aggregator agg,
                                       const Matrix &features,
                                       const std::vector<std::uint32_t> &labels,
                                       const Matrix *multi_targets)
    : capacity_(capacity), agg_(agg), features_(features), labels_(labels),
      multiTargets_(multi_targets)
{
    if (capacity_ == 0)
        fatal("MinibatchExtractor: capacity must be >= 1");
    checkInvariant(features_.rows() == labels_.size(),
                   "MinibatchExtractor: feature/label row mismatch");
    if (multiTargets_ != nullptr)
        checkInvariant(multiTargets_->rows() == labels_.size(),
                       "MinibatchExtractor: target row mismatch");
}

void
MinibatchExtractor::extract(const SampleBatch &sb, Minibatch &out)
{
    const std::size_t nl = sb.numNodes();
    checkInvariant(nl >= 1 && nl <= capacity_,
                   "MinibatchExtractor: batch node count out of range");
    checkInvariant(sb.rowPtr.size() == nl + 1,
                   "MinibatchExtractor: malformed batch rowPtr");

    out.epoch = sb.epoch;
    out.batchIndex = sb.batchIndex;
    out.numSeeds = sb.seeds.size();
    out.numNodes = nl;
    out.globalIds = sb.nodes;

    // Padded local CSR: real rows first, then isolated padding rows up
    // to the fixed capacity (rowPtr stays flat at nnz).
    const EdgeId nnz = sb.rowPtr[nl];
    rowPtrStage_.resize(capacity_ + 1);
    std::copy(sb.rowPtr.begin(), sb.rowPtr.end(), rowPtrStage_.begin());
    std::fill(rowPtrStage_.begin() + nl + 1, rowPtrStage_.end(), nnz);
    colIdxStage_ = sb.colIdx;
    out.graph = CsrGraph::fromCsr(capacity_, std::move(rowPtrStage_),
                                  std::move(colIdxStage_));
    out.graph.setAggregatorWeights(agg_);
    rowPtrStage_.clear();
    colIdxStage_.clear();

    // Gather feature rows (disjoint destination rows: thread-layout
    // independent); zero padding rows so their dense contributions are
    // constant across batches.
    const std::size_t dim = features_.cols();
    out.features.ensureShape(capacity_, dim);
    parallelFor(0, capacity_, kGatherGrain,
                [&](std::uint32_t, std::size_t begin, std::size_t end) {
                    for (std::size_t r = begin; r < end; ++r) {
                        Float *dst = out.features.row(r);
                        if (r < nl) {
                            const Float *src = features_.row(sb.nodes[r]);
                            std::copy(src, src + dim, dst);
                        } else {
                            std::fill(dst, dst + dim, Float{0});
                        }
                    }
                });

    out.labels.assign(capacity_, 0);
    for (std::size_t r = 0; r < nl; ++r)
        out.labels[r] = labels_[sb.nodes[r]];

    // Seeds are a sorted subset of the sorted node list: one linear merge
    // marks their local rows.
    out.trainMask.assign(capacity_, 0);
    std::size_t row = 0;
    for (const NodeId s : sb.seeds) {
        while (row < nl && sb.nodes[row] < s)
            ++row;
        checkInvariant(row < nl && sb.nodes[row] == s,
                       "MinibatchExtractor: seed missing from node list");
        out.trainMask[row] = 1;
    }

    if (multiTargets_ != nullptr) {
        const std::size_t classes = multiTargets_->cols();
        out.targets.ensureShape(capacity_, classes);
        parallelFor(
            0, capacity_, kGatherGrain,
            [&](std::uint32_t, std::size_t begin, std::size_t end) {
                for (std::size_t r = begin; r < end; ++r) {
                    Float *dst = out.targets.row(r);
                    if (r < nl) {
                        const Float *src =
                            multiTargets_->row(sb.nodes[r]);
                        std::copy(src, src + classes, dst);
                    } else {
                        std::fill(dst, dst + classes, Float{0});
                    }
                }
            });
    }
}

} // namespace maxk::sample
