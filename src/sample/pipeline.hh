/**
 * @file
 * Bounded producer/consumer pipeline overlapping minibatch preparation
 * with training (FGNN's pipelined task queues, SNIPPETS.md Sec. 1).
 *
 * One producer thread fills pre-allocated slots and hands them through a
 * bounded ready-queue to the consumer (the training loop); consumed
 * slots return through a free-queue for reuse, so steady-state operation
 * recycles the same slot workspaces forever. Because slots are
 * persistent and production order equals consumption order, running the
 * same produce function synchronously (no thread, depth ignored) yields
 * bitwise-identical training trajectories — the property test_pipeline
 * pins down.
 *
 * Producer exceptions are captured and rethrown from next() on the
 * consumer thread. The queue depth bounds how far the producer may run
 * ahead (depth batches in the ready queue plus one being consumed).
 */

#ifndef MAXK_SAMPLE_PIPELINE_HH
#define MAXK_SAMPLE_PIPELINE_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/trace.hh"

namespace maxk::sample
{

/**
 * Blocking bounded MPMC queue of pointers. close() wakes all waiters;
 * pop() drains remaining items before reporting closed.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity)
    {
        checkInvariant(capacity_ >= 1, "BoundedQueue: capacity must be >= 1");
    }

    /** Block until space; false if the queue was closed instead. */
    bool push(T *item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (!closed_ && items_.size() >= capacity_)
            ++stalls_; // producer would block: queue full
        notFull_.wait(lock,
                      [&] { return closed_ || items_.size() < capacity_; });
        if (closed_)
            return false;
        items_.push_back(item);
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /** Block until an item; false once closed and drained. */
    bool pop(T *&item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        notEmpty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        item = items_.front();
        items_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return true;
    }

    /** Close: no further pushes; pops drain then report closed. */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    /** Pushes that found the queue full and had to wait. */
    std::uint64_t stalls() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return stalls_;
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T *> items_;
    bool closed_ = false;
    std::uint64_t stalls_ = 0;
};

/**
 * Single-producer pipeline over caller-owned slots. The producer thread
 * runs `produce(slot, index)` for index 0, 1, ... until it returns
 * false; the consumer drains with next()/recycle(). Slots must outlive
 * the pipeline.
 */
template <typename T>
class Pipeline
{
  public:
    using ProduceFn = std::function<bool(T &, std::size_t)>;

    /**
     * @param depth   max batches buffered ahead of the consumer (>= 1)
     * @param slots   persistent slot workspaces (need depth + 1 to keep
     *                the producer busy while one slot is consumed)
     * @param produce fill `slot` with item `index`; false = end of
     *                stream (slot untouched or ignored)
     */
    Pipeline(std::size_t depth, std::vector<T> &slots, ProduceFn produce)
        : ready_(depth), free_(slots.size() == 0 ? 1 : slots.size()),
          produce_(std::move(produce))
    {
        checkInvariant(depth >= 1, "Pipeline: depth must be >= 1");
        checkInvariant(slots.size() >= 2,
                       "Pipeline: need at least two slots");
        for (T &slot : slots)
            free_.push(&slot);
        producer_ = std::thread([this] { producerLoop(); });
    }

    Pipeline(const Pipeline &) = delete;
    Pipeline &operator=(const Pipeline &) = delete;

    ~Pipeline()
    {
        // Unblock the producer whatever it is waiting on, then join.
        ready_.close();
        free_.close();
        if (producer_.joinable())
            producer_.join();
    }

    /**
     * Next produced slot in production order; nullptr at end of stream.
     * Rethrows any producer exception on this (consumer) thread.
     */
    T *next()
    {
        T *slot = nullptr;
        if (ready_.pop(slot))
            return slot;
        if (error_)
            std::rethrow_exception(error_);
        return nullptr;
    }

    /** Return a consumed slot for reuse. */
    void recycle(T *slot) { free_.push(slot); }

  private:
    void producerLoop()
    {
        try {
            for (std::size_t index = 0;; ++index) {
                T *slot = nullptr;
                if (!free_.pop(slot))
                    return; // consumer tore the pipeline down
                {
                    MAXK_TRACE_SCOPE("sample.produce");
                    if (!produce_(*slot, index)) {
                        free_.push(slot);
                        break;
                    }
                }
                if (!ready_.push(slot))
                    return;
                if (telemetry::armed()) {
                    // Scheduling-dependent observability gauges (the
                    // deterministic contract covers counters, not the
                    // instantaneous queue state).
                    telemetry::gaugeSet(
                        "sample.queue.depth",
                        static_cast<std::int64_t>(ready_.size()));
                    telemetry::gaugeSet(
                        "sample.producer.stalls",
                        static_cast<std::int64_t>(ready_.stalls()));
                }
            }
        } catch (...) {
            error_ = std::current_exception();
        }
        ready_.close();
    }

    BoundedQueue<T> ready_;
    BoundedQueue<T> free_;
    ProduceFn produce_;
    std::exception_ptr error_;
    std::thread producer_;
};

} // namespace maxk::sample

#endif // MAXK_SAMPLE_PIPELINE_HH
