#include "sample/sampled_trainer.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "common/stopwatch.hh"
#include "common/trace.hh"
#include "nn/checkpoint.hh"
#include "nn/gnn_layer.hh"
#include "nn/loss.hh"
#include "nn/metrics.hh"
#include "sample/pipeline.hh"
#include "tensor/alloc_probe.hh"

namespace maxk::sample
{

SampledTrainer::SampledTrainer(nn::GnnModel &model, TrainingData &data,
                               const TrainingTask &task,
                               const SamplerConfig &scfg)
    : model_(model), data_(data), task_(task),
      sampler_(data.graph, scfg), evalModel_(model.config())
{
    if (scfg.fanouts.size() != model_.config().numLayers)
        fatal("SampledTrainer: fanout arity (" +
              std::to_string(scfg.fanouts.size()) +
              ") must equal the model layer count (" +
              std::to_string(model_.config().numLayers) + ")");

    for (NodeId v = 0; v < data_.graph.numNodes(); ++v)
        if (data_.trainMask[v])
            trainIds_.push_back(v);
    if (trainIds_.empty())
        fatal("SampledTrainer: training mask selects no nodes");

    // Full-graph weights for the evaluation forward (same convention as
    // nn::Trainer); minibatch CSRs get their own local weights from the
    // extractor.
    data_.graph.setAggregatorWeights(
        nn::aggregatorFor(model_.config().kind));
    if (task_.multiLabel)
        multiTargets_ =
            nn::multiLabelTargets(data_.labels, task_.numClasses);

    extractor_.emplace(sampler_.nodeCapacity(),
                       nn::aggregatorFor(model_.config().kind),
                       data_.features, data_.labels,
                       task_.multiLabel ? &multiTargets_ : nullptr);
}

double
SampledTrainer::evalMetric(const Matrix &logits,
                           const std::vector<std::uint8_t> &mask) const
{
    switch (task_.metric) {
      case MetricKind::Accuracy:
        return nn::accuracy(logits, data_.labels, mask);
      case MetricKind::MicroF1:
        return nn::microF1(logits, multiTargets_, mask);
      case MetricKind::RocAuc:
        return nn::rocAuc(logits, multiTargets_, mask);
    }
    return 0.0;
}

void
SampledTrainer::syncEvalParams()
{
    const nn::ParamRefs src = model_.params();
    const nn::ParamRefs dst = evalModel_.params();
    checkInvariant(src.size() == dst.size(),
                   "SampledTrainer: eval replica parameter mismatch");
    // Same config => identical shapes; same-size Matrix copy-assign
    // reuses the destination storage (no allocation event).
    for (std::size_t i = 0; i < src.size(); ++i)
        dst[i]->value = src[i]->value;
}

double
SampledTrainer::trainStep(const Minibatch &mb, nn::Adam &adam)
{
    const Matrix &logits = model_.forward(mb.graph, mb.features, true);
    // norm_count 0: normalise by the active masked count, i.e. the mean
    // over this batch's seeds (padding rows are never masked).
    const double mean_loss =
        task_.multiLabel
            ? nn::sigmoidBceInto(logits, mb.targets, mb.trainMask, 0,
                                 gradWs_)
            : nn::softmaxCrossEntropyInto(logits, mb.labels, mb.trainMask,
                                          0, gradWs_, probsWs_);
    model_.backward(mb.graph, gradWs_);
    adam.step();
    return mean_loss;
}

SampledTrainResult
SampledTrainer::run(const SampledTrainConfig &cfg)
{
    checkInvariant(model_.config().outDim == task_.numClasses,
                   "SampledTrainer: model outDim != task classes");
    const std::uint32_t eval_every =
        std::max<std::uint32_t>(cfg.evalEvery, 1);
    if (cfg.evalEvery == 0)
        logMessage(LogLevel::Warn,
                   "SampledTrainer: evalEvery=0 clamped to 1");
    const std::uint32_t depth = std::max<std::uint32_t>(cfg.queueDepth, 1);

    Stopwatch watch;
    SampledTrainResult result;

    // Observation only; bitwise-neutral (tests/test_telemetry.cc).
    std::optional<telemetry::ArmGuard> arm;
    if (cfg.telemetry)
        arm.emplace(true);

    nn::Adam adam(model_.params(), cfg.lr, 0.9f, 0.999f, 1e-8f,
                  cfg.weightDecay);

    // Slot workspaces persist across epochs; the pipeline recycles them,
    // so after warmup no stage allocates tracked storage.
    std::vector<Minibatch> slots(cfg.pipeline ? depth + 1 : 1);

    const std::uint32_t batch_size = sampler_.config().batchSize;
    const std::uint32_t nb = sampler_.numBatches(trainIds_.size());
    std::uint64_t alloc_base = 0;

    // Checkpoint/resume: the saved epoch shifts the global produce
    // index, so the producer regenerates exactly the keyed sample
    // streams the uninterrupted run would have used from start_epoch on.
    std::optional<formats::CheckpointStore> store;
    formats::Checkpoint ck;
    std::uint32_t start_epoch = 0;
    if (!cfg.checkpointDir.empty()) {
        store.emplace(cfg.checkpointDir, "sampled",
                      cfg.checkpointKeep);
        if (!store->epochsOnDisk().empty()) {
            auto loaded = store->loadLatest();
            if (loaded) {
                const formats::Checkpoint &image =
                    loaded.value().checkpoint;
                auto ok = nn::readModelState(image, model_, adam);
                if (ok)
                    if (auto r = nn::readTrajectories(image, result); !r)
                        ok = r;
                if (ok) {
                    if (auto counters = image.getU64s("counters");
                        counters && counters.value().size() == 3) {
                        result.batchesTrained = counters.value()[0];
                        result.sampledNodes = counters.value()[1];
                        result.sampledEdges = counters.value()[2];
                    }
                    start_epoch = static_cast<std::uint32_t>(
                                      loaded.value().epoch) +
                                  1;
                    logMessage(LogLevel::Info,
                               "SampledTrainer: resuming after epoch " +
                                   std::to_string(loaded.value().epoch));
                } else {
                    logMessage(LogLevel::Warn,
                               "SampledTrainer: checkpoint rejected, "
                               "starting fresh: " +
                                   ok.error().describe());
                    result = SampledTrainResult{};
                }
            } else {
                logMessage(LogLevel::Warn,
                           "SampledTrainer: no usable checkpoint, "
                           "starting fresh: " +
                               loaded.error().describe());
            }
        }
    }

    // Cross-epoch production: one produce function maps a GLOBAL batch
    // index to (epoch, batch), so a single producer thread can run ahead
    // across epoch boundaries (it samples epoch e+1 while the consumer
    // still trains and evaluates epoch e). The epoch seed order is
    // computed by whoever produces batch 0 of that epoch — in pipelined
    // mode that is the producer thread, which is the only reader/writer
    // of order_/seedsWs_/batchWs_; the consumer touches none of them.
    auto produce = [&](Minibatch &slot, std::size_t idx) {
        const std::size_t epoch = start_epoch + idx / nb;
        const std::size_t b = idx % nb;
        if (epoch >= cfg.epochs)
            return false;
        if (b == 0)
            sampler_.epochOrder(static_cast<std::uint32_t>(epoch),
                                trainIds_, order_);
        const std::size_t lo = b * static_cast<std::size_t>(batch_size);
        const std::size_t hi =
            std::min<std::size_t>(lo + batch_size, order_.size());
        seedsWs_.assign(order_.begin() + lo, order_.begin() + hi);
        {
            MAXK_TRACE_SCOPE("sample.draw");
            sampler_.sample(static_cast<std::uint32_t>(epoch),
                            static_cast<std::uint32_t>(b), seedsWs_,
                            batchWs_);
        }
        {
            MAXK_TRACE_SCOPE("sample.extract");
            extractor_->extract(batchWs_, slot);
        }
        return true;
    };

    std::optional<Pipeline<Minibatch>> pipe;
    if (cfg.pipeline) {
        pipe.emplace(depth, slots, produce);
        ++result.producerSpawns;
    }

    std::size_t sync_idx = 0;
    const std::uint32_t steady_epoch = start_epoch + 2;
    for (std::uint32_t epoch = start_epoch; epoch < cfg.epochs;
         ++epoch) {
        MAXK_TRACE_SCOPE("sample.epoch");
        if (cfg.faults)
            cfg.faults->maybeThrow("sampled_trainer.epoch");
        if (epoch == steady_epoch)
            alloc_base = AllocProbe::totalAllocCount();

        double loss_sum = 0.0;
        std::size_t seed_sum = 0;
        auto consume = [&](const Minibatch &mb) {
            {
                MAXK_TRACE_SCOPE("sample.train_step");
                loss_sum += trainStep(mb, adam) *
                            static_cast<double>(mb.numSeeds);
            }
            seed_sum += mb.numSeeds;
            ++result.batchesTrained;
            result.sampledNodes += mb.numNodes;
            result.sampledEdges += mb.graph.numEdges();
            if (telemetry::armed()) {
                telemetry::counterAdd("sample.batches", 1);
                telemetry::counterAdd("sample.nodes", mb.numNodes);
                telemetry::counterAdd("sample.edges",
                                      mb.graph.numEdges());
            }
        };

        // Exactly nb batches belong to this epoch in either mode.
        for (std::uint32_t b = 0; b < nb; ++b) {
            if (cfg.pipeline) {
                Minibatch *mb = pipe->next();
                checkInvariant(mb != nullptr,
                               "SampledTrainer: pipeline ended early");
                consume(*mb);
                pipe->recycle(mb);
            } else {
                const bool ok = produce(slots[0], sync_idx++);
                checkInvariant(ok, "SampledTrainer: produce ended early");
                consume(slots[0]);
            }
        }
        checkInvariant(seed_sum == trainIds_.size(),
                       "SampledTrainer: epoch did not visit every seed");
        result.trainLoss.push_back(loss_sum /
                                   static_cast<double>(seed_sum));

        if (epoch % eval_every == 0 || epoch + 1 == cfg.epochs) {
            MAXK_TRACE_SCOPE("sample.eval");
            syncEvalParams();
            const Matrix &logits =
                evalModel_.forward(data_.graph, data_.features, false);
            const double val = evalMetric(logits, data_.valMask);
            const double test = evalMetric(logits, data_.testMask);
            result.evalEpochs.push_back(epoch);
            result.valMetric.push_back(val);
            result.testMetric.push_back(test);
            if (val >= result.bestValMetric) {
                result.bestValMetric = val;
                result.testAtBestVal = test;
            }
            result.finalTestMetric = test;
            result.finalLogits = logits;
            if (cfg.verbose)
                logMessage(LogLevel::Info,
                           "epoch " + std::to_string(epoch) + " loss " +
                               std::to_string(result.trainLoss.back()) +
                               " val " + std::to_string(val) + " test " +
                               std::to_string(test));
        }

        if (store && ((epoch + 1) %
                              std::max<std::uint32_t>(cfg.checkpointEvery,
                                                      1) ==
                          0 ||
                      epoch + 1 == cfg.epochs)) {
            nn::writeModelState(ck, model_, adam);
            nn::writeTrajectories(ck, result);
            ck.setU64("epoch", epoch);
            ck.setU64s("counters", {result.batchesTrained,
                                    result.sampledNodes,
                                    result.sampledEdges});
            auto saved = store->save(ck, epoch, cfg.faults);
            if (!saved)
                logMessage(LogLevel::Warn,
                           "SampledTrainer: checkpoint save failed: " +
                               saved.error().describe());
        }
    }

    if (cfg.epochs > steady_epoch)
        result.steadyStateAllocCount =
            AllocProbe::totalAllocCount() - alloc_base;
    result.hostSeconds = watch.seconds();
    return result;
}

} // namespace maxk::sample
