#include "mlp/approximator.hh"

#include <algorithm>
#include <cmath>

#include "common/rng.hh"
#include "core/maxk.hh"
#include "nn/linear.hh"
#include "nn/optimizer.hh"
#include "tensor/ops.hh"

namespace maxk::mlp
{

ApproxResult
approximateFunction(const ApproxConfig &cfg,
                    const std::function<Float(Float)> &f)
{
    Rng rng(cfg.seed);

    // Sample grid on [-1, 1] and targets.
    Matrix x(cfg.numSamples, 1);
    Matrix target(cfg.numSamples, 1);
    for (std::uint32_t i = 0; i < cfg.numSamples; ++i) {
        const Float xi =
            -1.0f + 2.0f * static_cast<Float>(i) / (cfg.numSamples - 1);
        x.at(i, 0) = xi;
        target.at(i, 0) = f(xi);
    }

    nn::Linear l1(1, cfg.hiddenUnits, rng, "mlp.l1");
    nn::Linear l2(cfg.hiddenUnits, 1, rng, "mlp.l2");
    nn::ParamRefs params;
    l1.collectParams(params);
    l2.collectParams(params);
    nn::Adam adam(params, cfg.lr);

    const std::uint32_t k = std::max<std::uint32_t>(
        1, (cfg.hiddenUnits + cfg.kDivisor - 1) / cfg.kDivisor);

    ApproxResult result;
    Matrix hidden, act, out, d_out, d_act, d_hidden, dx;
    for (std::uint32_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        l1.forward(x, hidden);
        if (cfg.nonlin == ApproxNonlin::Relu)
            reluForward(hidden, act);
        else
            maxkDense(hidden, k, act);
        l2.forward(act, out);

        // MSE loss: L = mean((out - target)^2).
        subtract(out, target, d_out);
        double loss = 0.0;
        for (std::size_t i = 0; i < d_out.size(); ++i)
            loss += static_cast<double>(d_out.data()[i]) *
                    d_out.data()[i];
        loss /= cfg.numSamples;
        if (epoch % 100 == 0)
            result.lossCurve.push_back(loss);

        scaleInPlace(d_out, 2.0f / static_cast<Float>(cfg.numSamples));
        l2.backward(act, d_out, d_act);
        if (cfg.nonlin == ApproxNonlin::Relu)
            reluBackward(hidden, d_act, d_hidden);
        else
            maxkBackwardDense(hidden, k, d_act, d_hidden);
        l1.backward(x, d_hidden, dx);
        adam.step();
    }

    // Final evaluation.
    l1.forward(x, hidden);
    if (cfg.nonlin == ApproxNonlin::Relu)
        reluForward(hidden, act);
    else
        maxkDense(hidden, k, act);
    l2.forward(act, out);

    double mse = 0.0, worst = 0.0;
    for (std::uint32_t i = 0; i < cfg.numSamples; ++i) {
        const double err = out.at(i, 0) - target.at(i, 0);
        mse += err * err;
        worst = std::max(worst, std::fabs(err));
    }
    result.mse = mse / cfg.numSamples;
    result.maxError = worst;
    return result;
}

ApproxResult
approximateSquare(const ApproxConfig &cfg)
{
    return approximateFunction(cfg, [](Float v) { return v * v; });
}

} // namespace maxk::mlp
