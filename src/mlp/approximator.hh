/**
 * @file
 * Fig. 4 experiment: a single-hidden-layer MLP with MaxK or ReLU
 * nonlinearity trained to approximate a 1-D continuous function
 * (y = x^2 in the paper). Demonstrates the universal-approximation
 * property of Theorem 3.2: error decreases as hidden units grow, and
 * MaxK tracks ReLU.
 */

#ifndef MAXK_MLP_APPROXIMATOR_HH
#define MAXK_MLP_APPROXIMATOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace maxk::mlp
{

/** Nonlinearity under test. */
enum class ApproxNonlin { Relu, MaxK };

/** Experiment configuration. */
struct ApproxConfig
{
    std::uint32_t hiddenUnits = 16;
    ApproxNonlin nonlin = ApproxNonlin::MaxK;
    /** k = ceil(hidden / kDivisor); the paper uses ceil(hid/4). */
    std::uint32_t kDivisor = 4;
    std::uint32_t epochs = 4000;
    Float lr = 0.01f;
    std::uint32_t numSamples = 256;  //!< grid points on [-1, 1]
    std::uint64_t seed = 17;
};

/** Outcome: final fit quality plus the training curve. */
struct ApproxResult
{
    double mse = 0.0;               //!< mean squared error on the grid
    double maxError = 0.0;          //!< worst-case |f - g| on the grid
    std::vector<double> lossCurve;  //!< sampled every 100 epochs
};

/** Train the MLP to approximate f on [-1, 1]. Deterministic by seed. */
ApproxResult approximateFunction(const ApproxConfig &cfg,
                                 const std::function<Float(Float)> &f);

/** The paper's y = x^2 instance. */
ApproxResult approximateSquare(const ApproxConfig &cfg);

} // namespace maxk::mlp

#endif // MAXK_MLP_APPROXIMATOR_HH
