#include "graph/registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "common/logging.hh"
#include "graph/formats/formats.hh"
#include "tensor/init.hh"

namespace maxk
{

namespace
{

/** Simulation budget: twins keep the paper's average degree but cap nnz. */
constexpr EdgeId kMaxTwinEdges = 1u << 20;  // ~1.05M
constexpr NodeId kMaxTwinNodes = 1u << 16;  // 65536
constexpr NodeId kMinTwinNodes = 1u << 10;  // 1024

DatasetInfo
makeEntry(const std::string &name, std::uint64_t nodes, std::uint64_t edges,
          GraphKind kind)
{
    DatasetInfo d;
    d.name = name;
    d.paperNodes = nodes;
    d.paperEdges = edges;
    d.kind = kind;

    const double avg_deg =
        std::max(1.0, static_cast<double>(edges) / nodes);
    NodeId n = static_cast<NodeId>(
        std::min<std::uint64_t>(nodes, kMaxTwinNodes));
    const NodeId edge_cap =
        static_cast<NodeId>(std::max(1.0, kMaxTwinEdges / avg_deg));
    n = std::min(n, edge_cap);
    n = std::max(n, std::min<NodeId>(kMinTwinNodes,
                                     static_cast<NodeId>(nodes)));
    d.twinNodes = n;
    d.twinEdges = static_cast<EdgeId>(n * avg_deg);
    return d;
}

std::vector<DatasetInfo>
buildKernelSuite()
{
    using GK = GraphKind;
    return {
        makeEntry("am", 881680, 5668682, GK::PowerLaw),
        makeEntry("amazon0505", 410236, 4878874, GK::PowerLaw),
        makeEntry("amazon0601", 403394, 5478357, GK::PowerLaw),
        makeEntry("artist", 50515, 1638396, GK::PowerLaw),
        makeEntry("citation", 2927963, 30387995, GK::PowerLaw),
        makeEntry("collab", 235868, 2358104, GK::PowerLaw),
        makeEntry("com-amazon", 334863, 1851744, GK::PowerLaw),
        makeEntry("DD", 334925, 1686092, GK::Mesh),
        makeEntry("ddi", 4267, 2135822, GK::PowerLaw),
        makeEntry("Flickr", 89250, 989006, GK::PowerLaw),
        makeEntry("ogbn-arxiv", 169343, 1166243, GK::PowerLaw),
        makeEntry("ogbn-products", 2449029, 123718280, GK::PowerLaw),
        makeEntry("ogbn-proteins", 132534, 79122504, GK::PowerLaw),
        makeEntry("OVCAR-8H", 1889542, 3946402, GK::Mesh),
        makeEntry("ppa", 576289, 42463862, GK::PowerLaw),
        makeEntry("PROTEINS_full", 43466, 162088, GK::Mesh),
        makeEntry("pubmed", 19717, 99203, GK::PowerLaw),
        makeEntry("ppi", 56944, 818716, GK::PowerLaw),
        makeEntry("Reddit", 232965, 114615891, GK::PowerLaw),
        makeEntry("SW-620H", 1888584, 3944206, GK::Mesh),
        makeEntry("TWITTER-Partial", 580768, 1435116, GK::PowerLaw),
        makeEntry("Yeast", 1710902, 3636546, GK::Mesh),
        makeEntry("Yelp", 716847, 13954819, GK::PowerLaw),
        makeEntry("youtube", 1138499, 5980886, GK::PowerLaw),
    };
}

TrainingTask
makeTask(const std::string &name, std::uint32_t classes,
         std::uint32_t feature_dim, bool multi_label, MetricKind metric,
         double noise, double intra)
{
    auto info = findDataset(name);
    checkInvariant(info.has_value(), "training task references unknown "
                                     "dataset: " + name);
    DatasetInfo d = *info;
    d.kind = GraphKind::Community;
    TrainingTask t;
    t.info = d;
    t.numClasses = classes;
    t.featureDim = feature_dim;
    t.multiLabel = multi_label;
    t.metric = metric;
    t.featureNoise = noise;
    t.intraEdgeFraction = intra;
    t.accuracyNodes = static_cast<NodeId>(
        std::min<std::uint64_t>(d.paperNodes, 2048));
    t.accuracyAvgDegree = std::min(d.paperAvgDegree(), 24.0);
    return t;
}

std::vector<TrainingTask>
buildTrainingSuite()
{
    // Class counts follow the real datasets (Flickr 7, Yelp 100-way
    // multilabel -> twin uses 16 label bits, Reddit 41, products 47,
    // proteins 112-way multilabel -> twin uses 16 bits). Metrics follow
    // Table 5: accuracy / F1 (Yelp) / ROC-AUC (proteins).
    using MK = MetricKind;
    return {
        makeTask("Flickr", 7, 64, false, MK::Accuracy, 0.55, 0.72),
        makeTask("Yelp", 16, 64, true, MK::MicroF1, 0.50, 0.70),
        makeTask("Reddit", 41, 64, false, MK::Accuracy, 0.50, 0.75),
        makeTask("ogbn-products", 47, 64, false, MK::Accuracy, 0.50,
                 0.75),
        makeTask("ogbn-proteins", 16, 64, true, MK::RocAuc, 0.55, 0.70),
    };
}

/**
 * Homophilous labels for a loaded real graph, which ships no twin
 * labelling: seed every vertex with a random class, then run a few
 * deterministic majority-vote sweeps over the neighbourhoods so that
 * the label field clusters along the graph structure (the property the
 * SBM twins get by construction and the aggregation layers need for
 * the task to be learnable).
 */
std::vector<std::uint32_t>
propagateLabels(const CsrGraph &g, std::uint32_t num_classes, Rng &rng)
{
    const NodeId n = g.numNodes();
    std::vector<std::uint32_t> labels(n);
    for (NodeId v = 0; v < n; ++v)
        labels[v] =
            static_cast<std::uint32_t>(rng.nextBounded(num_classes));

    std::vector<std::uint32_t> votes(num_classes);
    for (int sweep = 0; sweep < 3; ++sweep) {
        std::vector<std::uint32_t> next = labels;
        for (NodeId v = 0; v < n; ++v) {
            if (g.degree(v) == 0)
                continue;
            std::fill(votes.begin(), votes.end(), 0u);
            for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e)
                ++votes[labels[g.colIdx()[e]]];
            std::uint32_t best = 0;
            for (std::uint32_t c = 1; c < num_classes; ++c)
                if (votes[c] > votes[best])
                    best = c; // ties keep the smallest class id
            next[v] = best;
        }
        labels.swap(next);
    }
    return labels;
}

} // namespace

std::optional<std::string>
resolveDatasetFile(const std::string &name)
{
    const char *dir = std::getenv(kDatasetDirEnv);
    if (dir == nullptr || dir[0] == '\0')
        return std::nullopt;
    static const char *kExtensions[] = {".maxkb", ".csr", ".maxkcsr",
                                        ".txt",   ".tsv", ".el",
                                        ".edges"};
    for (const char *ext : kExtensions) {
        const std::string candidate =
            std::string(dir) + "/" + name + ext;
        if (std::ifstream(candidate).good())
            return candidate;
    }
    return std::nullopt;
}

std::optional<std::string>
resolveDatasetSource(const DatasetInfo &info)
{
    if (!info.onDiskPath.empty())
        return info.onDiskPath;
    return resolveDatasetFile(info.name);
}

std::optional<std::string>
pinResolvedSource(DatasetInfo &info)
{
    auto source = resolveDatasetSource(info);
    if (source)
        info.onDiskPath = *source;
    return source;
}

const std::vector<DatasetInfo> &
kernelSuite()
{
    static const std::vector<DatasetInfo> suite = buildKernelSuite();
    return suite;
}

std::optional<DatasetInfo>
findDataset(const std::string &name)
{
    for (const auto &d : kernelSuite())
        if (d.name == name)
            return d;
    return std::nullopt;
}

const std::vector<TrainingTask> &
trainingSuite()
{
    static const std::vector<TrainingTask> suite = buildTrainingSuite();
    return suite;
}

std::optional<TrainingTask>
findTrainingTask(const std::string &name)
{
    for (const auto &t : trainingSuite())
        if (t.info.name == name)
            return t;
    return std::nullopt;
}

CsrGraph
materializeGraph(const DatasetInfo &info, Rng &rng)
{
    if (auto source = resolveDatasetSource(info)) {
        GraphResult loaded = formats::loadAnyGraph(*source);
        if (!loaded)
            fatal("materializeGraph(" + info.name +
                  "): " + loaded.error().describe());
        return std::move(loaded.value());
    }
    switch (info.kind) {
      case GraphKind::PowerLaw: {
        std::uint32_t scale = 1;
        while ((NodeId{1} << scale) < info.twinNodes && scale < 26)
            ++scale;
        return rmat(scale, info.twinEdges, rng);
      }
      case GraphKind::Mesh: {
        // Molecule-collection datasets (DD, Yeast, ...) have near-uniform
        // small degrees; a ring lattice of matching average degree models
        // their balanced-workload behaviour.
        const std::uint32_t k = std::max<std::uint32_t>(
            2, static_cast<std::uint32_t>(info.paperAvgDegree()));
        return ringLattice(info.twinNodes, k);
      }
      case GraphKind::Community: {
        auto sbm = stochasticBlockModel(info.twinNodes, 8,
                                        info.paperAvgDegree(), 0.7, rng);
        return std::move(sbm.graph);
      }
    }
    panic("materializeGraph: unknown kind");
}

const char *
metricName(MetricKind m)
{
    switch (m) {
      case MetricKind::Accuracy: return "Acc";
      case MetricKind::MicroF1:  return "F1";
      case MetricKind::RocAuc:   return "AUC";
    }
    return "?";
}

TrainingData
materializeTrainingData(const TrainingTask &task, Rng &rng)
{
    TrainingData data;
    if (auto source = resolveDatasetSource(task.info)) {
        GraphResult loaded = formats::loadAnyGraph(*source);
        if (!loaded)
            fatal("materializeTrainingData(" + task.info.name +
                  "): " + loaded.error().describe());
        data.graph = std::move(loaded.value());
        data.labels = propagateLabels(data.graph, task.numClasses, rng);
    } else {
        auto sbm = stochasticBlockModel(task.accuracyNodes,
                                        task.numClasses,
                                        task.accuracyAvgDegree,
                                        task.intraEdgeFraction, rng);
        data.graph = std::move(sbm.graph);
        data.labels = std::move(sbm.labels);
    }

    const NodeId n = data.graph.numNodes();

    // Features: class-embedding prototype plus Gaussian corruption. The
    // prototype magnitudes are small so the task needs several hops of
    // aggregation to denoise — mirroring why GNNs beat MLPs on the
    // real datasets.
    Matrix prototypes(task.numClasses, task.featureDim);
    fillNormal(prototypes, rng, 0.0f, 1.0f);
    data.features.resize(n, task.featureDim);
    for (NodeId v = 0; v < n; ++v) {
        const Float *proto = prototypes.row(data.labels[v]);
        Float *row = data.features.row(v);
        for (std::uint32_t d = 0; d < task.featureDim; ++d)
            row[d] = proto[d] +
                     rng.normal(0.0f,
                                static_cast<Float>(task.featureNoise) *
                                    2.0f);
    }

    data.trainMask.assign(n, 0);
    data.valMask.assign(n, 0);
    data.testMask.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
        const double r = rng.uniform();
        if (r < 0.6)
            data.trainMask[v] = 1;
        else if (r < 0.8)
            data.valMask[v] = 1;
        else
            data.testMask[v] = 1;
    }
    return data;
}

} // namespace maxk
