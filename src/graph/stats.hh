/**
 * @file
 * Degree-distribution statistics used to characterise synthetic dataset
 * twins against the paper's Table 1 graphs.
 */

#ifndef MAXK_GRAPH_STATS_HH
#define MAXK_GRAPH_STATS_HH

#include <string>

#include "graph/csr.hh"

namespace maxk
{

/** Summary of a graph's degree distribution. */
struct DegreeStats
{
    NodeId numNodes = 0;
    EdgeId numEdges = 0;
    double avgDegree = 0.0;
    EdgeId maxDegree = 0;
    EdgeId medianDegree = 0;
    EdgeId p99Degree = 0;     //!< 99th-percentile degree
    double gini = 0.0;        //!< Gini coefficient of the degree vector
    double skewRatio = 0.0;   //!< maxDegree / avgDegree ("evil row" factor)
    double stdDegree = 0.0;   //!< population std dev of the degree vector
    double density = 0.0;     //!< nnz / (|V| * |V|)
    double emptyRowFraction = 0.0; //!< fraction of zero-degree rows
};

/** Compute the summary in O(|V| log |V|). */
DegreeStats computeDegreeStats(const CsrGraph &g);

/** One-line human-readable rendering. */
std::string describe(const DegreeStats &s);

} // namespace maxk

#endif // MAXK_GRAPH_STATS_HH
