/**
 * @file
 * Compressed Sparse Row adjacency matrix — the substrate every kernel in
 * this reproduction consumes.
 *
 * MaxK-GNN (Sec. 3.2) stores the adjacency matrix A in CSR for the forward
 * SpGEMM and reuses the identical buffers as the CSC representation of A^T
 * for the backward SSpMM ("the transposed CSC format is equal to original
 * CSR format", Fig. 5). This class therefore exposes both views: rowPtr /
 * colIdx / values is simultaneously CSR(A) and CSC(A^T).
 */

#ifndef MAXK_GRAPH_CSR_HH
#define MAXK_GRAPH_CSR_HH

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace maxk
{

class EdgeGroupPartition;
struct DegreeStats;

/**
 * Aggregator semantics decide the edge weights used during feature
 * aggregation (Fig. 5 caption): SAGE mean uses 1/d(target), GCN uses
 * 1/sqrt(d_i * d_j), GIN sums with weight 1.
 */
enum class Aggregator { SageMean, Gcn, Gin };

/** Name for bench output. */
const char *aggregatorName(Aggregator agg);

/**
 * CSR graph with fp32 edge values. Nodes are [0, numNodes). Edges within a
 * row are kept sorted by destination for deterministic iteration.
 */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Build from an edge list. Duplicate edges are collapsed.
     *
     * @param num_nodes number of vertices
     * @param edges     (src, dst) pairs
     * @param symmetrize insert the reverse of every edge
     * @param self_loops insert (v, v) for every vertex
     */
    static CsrGraph fromEdges(NodeId num_nodes,
                              std::vector<std::pair<NodeId, NodeId>> edges,
                              bool symmetrize, bool self_loops);

    /** Build directly from raw CSR arrays (values default to 1). */
    static CsrGraph fromCsr(NodeId num_nodes, std::vector<EdgeId> row_ptr,
                            std::vector<NodeId> col_idx,
                            std::vector<Float> values = {});

    NodeId numNodes() const { return numNodes_; }
    EdgeId numEdges() const
    {
        return static_cast<EdgeId>(colIdx_.size());
    }

    const std::vector<EdgeId> &rowPtr() const { return rowPtr_; }
    const std::vector<NodeId> &colIdx() const { return colIdx_; }
    const std::vector<Float> &values() const { return values_; }

    /**
     * Mutable access to the edge values. Invalidates the cached
     * transpose (see transposeCached()): call it again for every
     * mutation session rather than retaining the reference across
     * later transposeCached() calls.
     */
    std::vector<Float> &
    mutableValues()
    {
        transposeCache_.reset();
        return values_;
    }

    /** Out-degree of vertex v (row length). */
    EdgeId degree(NodeId v) const { return rowPtr_[v + 1] - rowPtr_[v]; }

    /** Average degree nnz / |V|. */
    double avgDegree() const;

    /** Maximum row length. */
    EdgeId maxDegree() const;

    /**
     * Set edge values according to the aggregator convention. For SAGE the
     * weight of edge (i, j) is 1/degree(i) (mean over neighbours of the
     * target row); for GCN it is 1/sqrt(d_i * d_j); for GIN it is 1.
     * Zero-degree rows contribute no edges, so no division by zero arises.
     */
    void setAggregatorWeights(Aggregator agg);

    /**
     * Explicit structural transpose (A^T as its own CSR). For symmetric
     * structure this returns the same pattern; values are transposed
     * faithfully. The MaxK-GNN kernels never need this — they reuse this
     * object as CSC(A^T) — but reference implementations and tests do.
     */
    CsrGraph transposed() const;

    /**
     * Lazily built, cached stable transpose — the scatter-shaped
     * backward paths (transpose_gather.hh) call this once per kernel
     * launch and used to rebuild A^T every time. The cache is
     * invalidated by value mutation (mutableValues(),
     * setAggregatorWeights()); the structure of a CsrGraph is immutable
     * after construction, so no structural invalidation exists. Copies
     * share the cached object (it is immutable).
     *
     * Not internally locked: like the kernels' other pre-launch setup,
     * the first call for a given graph must come from the coordinating
     * thread, never from inside a parallelFor body.
     */
    const CsrGraph &transposeCached() const;

    /** Times transposeCached() actually built (test observability). */
    std::size_t transposeBuildCount() const { return transposeBuilds_; }

    /**
     * Lazily built, cached Edge-Group partition at the given workload
     * cap — the partition-consuming kernels (spmm_gnna, the nnz-balanced
     * and row-caching variants, SpGEMM/SSpMM launch sites going through
     * the kernel registry) share one build per (graph, cap). The
     * partition depends only on the sparsity structure, which is
     * immutable after construction, so no invalidation exists; a call
     * with a different cap rebuilds and replaces the cache. Same
     * threading contract as transposeCached(): first call for a given
     * cap from the coordinating thread. Defined in graph/edge_groups.cc.
     */
    const EdgeGroupPartition &
    edgeGroupsCached(std::uint32_t workload_cap) const;

    /** Times edgeGroupsCached() actually built (test observability). */
    std::size_t edgeGroupBuildCount() const { return egBuilds_; }

    /**
     * Lazily built, cached degree-distribution summary — the adaptive
     * kernel selector reads these features on every launch, so the
     * O(|V| log |V|) pass must run once per graph, not once per launch.
     * Structure-only, hence never invalidated. Same threading contract
     * as transposeCached(). Defined in graph/stats.cc.
     */
    const DegreeStats &degreeStatsCached() const;

    /** Times degreeStatsCached() actually built (test observability). */
    std::size_t degreeStatsBuildCount() const { return statsBuilds_; }

    /** True when the sparsity pattern (not values) is symmetric. */
    bool structureSymmetric() const;

    /** Validate CSR invariants (monotone rowPtr, in-range sorted cols). */
    bool validate() const;

    /** Bytes of the CSR arrays (rowPtr + colIdx + values). */
    Bytes storageBytes() const;

  private:
    NodeId numNodes_ = 0;
    std::vector<EdgeId> rowPtr_{0};
    std::vector<NodeId> colIdx_;
    std::vector<Float> values_;
    mutable std::shared_ptr<const CsrGraph> transposeCache_;
    mutable std::size_t transposeBuilds_ = 0;
    mutable std::shared_ptr<const EdgeGroupPartition> egCache_;
    mutable std::uint32_t egCacheCap_ = 0;
    mutable std::size_t egBuilds_ = 0;
    mutable std::shared_ptr<const DegreeStats> statsCache_;
    mutable std::size_t statsBuilds_ = 0;
};

} // namespace maxk

#endif // MAXK_GRAPH_CSR_HH
