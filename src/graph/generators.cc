#include "graph/generators.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace maxk
{

CsrGraph
erdosRenyi(NodeId num_nodes, EdgeId num_edges, Rng &rng, bool self_loops)
{
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(num_edges);
    for (EdgeId e = 0; e < num_edges; ++e) {
        const NodeId s = static_cast<NodeId>(rng.nextBounded(num_nodes));
        const NodeId d = static_cast<NodeId>(rng.nextBounded(num_nodes));
        if (s != d)
            edges.emplace_back(s, d);
    }
    return CsrGraph::fromEdges(num_nodes, std::move(edges), true,
                               self_loops);
}

CsrGraph
rmat(std::uint32_t scale, EdgeId target_edges, Rng &rng, double a, double b,
     double c, bool self_loops)
{
    checkInvariant(scale >= 1 && scale <= 26, "rmat: scale out of range");
    checkInvariant(a + b + c < 1.0, "rmat: quadrant probabilities invalid");
    const NodeId n = NodeId{1} << scale;

    auto draw_edge = [&](NodeId &src, NodeId &dst) {
        src = dst = 0;
        for (std::uint32_t bit = 0; bit < scale; ++bit) {
            const double r = rng.uniform();
            src <<= 1;
            dst <<= 1;
            if (r < a) {
                // top-left quadrant: no bits set
            } else if (r < a + b) {
                dst |= 1;
            } else if (r < a + b + c) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
    };

    // Symmetrisation + dedup discards a draw-dependent fraction (severe
    // for dense graphs, where the skewed quadrants collide constantly),
    // so draw in rounds until the built graph reaches the target or an
    // attempt cap is hit.
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(target_edges);
    EdgeId draws = static_cast<EdgeId>(target_edges * 0.62);
    CsrGraph g;
    for (int round = 0; round < 8; ++round) {
        for (EdgeId e = 0; e < draws; ++e) {
            NodeId src, dst;
            draw_edge(src, dst);
            if (src != dst)
                edges.emplace_back(src, dst);
        }
        g = CsrGraph::fromEdges(n, edges, true, self_loops);
        if (g.numEdges() >= target_edges)
            break;
        // Oversample the shortfall; collisions get denser each round.
        const double deficit =
            static_cast<double>(target_edges - g.numEdges()) /
            target_edges;
        draws = static_cast<EdgeId>(target_edges * deficit * 1.5) + 1024;
    }
    return g;
}

SbmResult
stochasticBlockModel(NodeId num_nodes, std::uint32_t num_communities,
                     double avg_degree, double p_in_fraction, Rng &rng)
{
    checkInvariant(num_communities >= 1, "sbm: need at least one block");
    checkInvariant(p_in_fraction >= 0.0 && p_in_fraction <= 1.0,
                   "sbm: p_in_fraction must be in [0,1]");

    SbmResult result;
    result.labels.resize(num_nodes);
    for (NodeId v = 0; v < num_nodes; ++v)
        result.labels[v] = v % num_communities;

    const EdgeId undirected =
        static_cast<EdgeId>(num_nodes * avg_degree / 2.0);
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(undirected);

    // Nodes of block b are {v : v % C == b}; sample a same-block partner by
    // stepping in strides of C.
    const NodeId per_block =
        (num_nodes + num_communities - 1) / num_communities;
    for (EdgeId e = 0; e < undirected; ++e) {
        const NodeId s = static_cast<NodeId>(rng.nextBounded(num_nodes));
        NodeId d;
        if (rng.bernoulli(static_cast<Float>(p_in_fraction))) {
            const NodeId step = static_cast<NodeId>(
                rng.nextBounded(per_block));
            d = (s % num_communities) + step * num_communities;
            if (d >= num_nodes)
                d = s; // dropped below
        } else {
            d = static_cast<NodeId>(rng.nextBounded(num_nodes));
        }
        if (s != d)
            edges.emplace_back(s, d);
    }
    result.graph =
        CsrGraph::fromEdges(num_nodes, std::move(edges), true, true);
    return result;
}

CsrGraph
ringLattice(NodeId num_nodes, std::uint32_t k, bool self_loops)
{
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(static_cast<std::size_t>(num_nodes) * (k / 2));
    for (NodeId v = 0; v < num_nodes; ++v) {
        for (std::uint32_t off = 1; off <= k / 2; ++off) {
            const NodeId u = (v + off) % num_nodes;
            if (u != v)
                edges.emplace_back(v, u);
        }
    }
    return CsrGraph::fromEdges(num_nodes, std::move(edges), true,
                               self_loops);
}

CsrGraph
zipf(NodeId num_nodes, EdgeId target_edges, double exponent, Rng &rng,
     bool self_loops)
{
    checkInvariant(num_nodes >= 2, "zipf: need at least two nodes");
    checkInvariant(exponent > 0.0, "zipf: exponent must be positive");

    // Cumulative Zipf mass over vertex ids; endpoint draws invert it by
    // binary search. O(n) setup, O(log n) per draw.
    std::vector<double> cdf(num_nodes);
    double mass = 0.0;
    for (NodeId v = 0; v < num_nodes; ++v) {
        mass += 1.0 / std::pow(static_cast<double>(v) + 1.0, exponent);
        cdf[v] = mass;
    }
    auto draw_zipf = [&]() -> NodeId {
        const double r = rng.uniform() * mass;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
        return static_cast<NodeId>(it - cdf.begin());
    };

    // One uniform endpoint, one Zipf endpoint: hubs collect edges from
    // everywhere, the tail keeps roughly constant degree. Dedup after
    // symmetrisation collapses a draw-dependent fraction (hub edges
    // collide often), so oversample in rounds like rmat().
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(target_edges);
    EdgeId draws = static_cast<EdgeId>(target_edges * 0.62);
    CsrGraph g;
    for (int round = 0; round < 8; ++round) {
        for (EdgeId e = 0; e < draws; ++e) {
            const NodeId s =
                static_cast<NodeId>(rng.nextBounded(num_nodes));
            const NodeId d = draw_zipf();
            if (s != d)
                edges.emplace_back(s, d);
        }
        g = CsrGraph::fromEdges(num_nodes, edges, true, self_loops);
        if (g.numEdges() >= target_edges)
            break;
        const double deficit =
            static_cast<double>(target_edges - g.numEdges()) /
            target_edges;
        draws = static_cast<EdgeId>(target_edges * deficit * 1.5) + 1024;
    }
    return g;
}

CsrGraph
star(NodeId num_nodes, bool self_loops)
{
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(num_nodes);
    for (NodeId v = 1; v < num_nodes; ++v)
        edges.emplace_back(0, v);
    return CsrGraph::fromEdges(num_nodes, std::move(edges), true,
                               self_loops);
}

} // namespace maxk
