#include "graph/edge_groups.hh"

#include <algorithm>

#include "common/logging.hh"

namespace maxk
{

EdgeGroupPartition
EdgeGroupPartition::build(const CsrGraph &g, std::uint32_t workload_cap)
{
    checkInvariant(workload_cap >= 1, "EG workload cap must be >= 1");
    EdgeGroupPartition part;
    part.workloadCap_ = workload_cap;
    part.groups_.reserve(g.numNodes() +
                         g.numEdges() / std::max<std::uint32_t>(
                                            workload_cap, 1));
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        EdgeId begin = g.rowPtr()[v];
        const EdgeId row_end = g.rowPtr()[v + 1];
        while (begin < row_end) {
            const EdgeId end =
                std::min<EdgeId>(begin + workload_cap, row_end);
            part.groups_.push_back(EdgeGroup{v, begin, end});
            begin = end;
        }
    }
    return part;
}

const EdgeGroupPartition &
CsrGraph::edgeGroupsCached(std::uint32_t workload_cap) const
{
    if (!egCache_ || egCacheCap_ != workload_cap) {
        egCache_ = std::make_shared<const EdgeGroupPartition>(
            EdgeGroupPartition::build(*this, workload_cap));
        egCacheCap_ = workload_cap;
        ++egBuilds_;
    }
    return *egCache_;
}

std::uint32_t
EdgeGroupPartition::egsPerWarp(std::uint32_t dim_k)
{
    if (dim_k == 0)
        return 32;
    if (dim_k <= 16)
        return 32 / dim_k; // Case 1
    return 1;              // Case 2: warp iterates over the dimension
}

std::uint64_t
EdgeGroupPartition::warpCount(std::uint32_t dim_k) const
{
    const std::uint32_t per_warp = egsPerWarp(dim_k);
    return (groups_.size() + per_warp - 1) / per_warp;
}

double
EdgeGroupPartition::imbalance(std::uint32_t dim_k) const
{
    const std::uint64_t warps = warpCount(dim_k);
    if (warps == 0)
        return 1.0;
    // Edges per warp: consecutive EGs are packed into warps in order.
    const std::uint32_t per_warp = egsPerWarp(dim_k);
    std::uint64_t max_edges = 0, total_edges = 0;
    for (std::uint64_t w = 0; w < warps; ++w) {
        std::uint64_t edges = 0;
        const std::size_t lo = w * per_warp;
        const std::size_t hi =
            std::min<std::size_t>(lo + per_warp, groups_.size());
        for (std::size_t i = lo; i < hi; ++i)
            edges += groups_[i].end - groups_[i].begin;
        max_edges = std::max(max_edges, edges);
        total_edges += edges;
    }
    const double mean =
        static_cast<double>(total_edges) / static_cast<double>(warps);
    return mean == 0.0 ? 1.0 : static_cast<double>(max_edges) / mean;
}

bool
EdgeGroupPartition::covers(const CsrGraph &g) const
{
    std::size_t gi = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        EdgeId expect = g.rowPtr()[v];
        const EdgeId row_end = g.rowPtr()[v + 1];
        while (expect < row_end) {
            if (gi >= groups_.size())
                return false;
            const EdgeGroup &eg = groups_[gi++];
            if (eg.row != v || eg.begin != expect || eg.end > row_end ||
                eg.end <= eg.begin)
                return false;
            if (eg.end - eg.begin > workloadCap_)
                return false;
            expect = eg.end;
        }
    }
    return gi == groups_.size();
}

std::vector<IndexRange>
rowAlignedChunks(const std::vector<EdgeGroup> &groups, std::size_t grain,
                 std::uint32_t threads)
{
    std::vector<IndexRange> chunks =
        splitRange(0, groups.size(), grain, threads);
    if (chunks.size() <= 1)
        return chunks;

    // Snap every interior boundary forward to the next row change, then
    // drop chunks a snap emptied. Boundaries move monotonically, so the
    // result stays contiguous, ascending, and covering.
    std::size_t prev_end = 0;
    std::vector<IndexRange> out;
    out.reserve(chunks.size());
    for (std::size_t c = 0; c < chunks.size(); ++c) {
        std::size_t end = chunks[c].end;
        if (c + 1 < chunks.size()) {
            while (end < groups.size() &&
                   groups[end].row == groups[end - 1].row)
                ++end;
        } else {
            end = groups.size();
        }
        if (end > prev_end) {
            out.push_back({prev_end, end});
            prev_end = end;
        }
    }
    return out;
}

} // namespace maxk
