#include "graph/csr.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace maxk
{

const char *
aggregatorName(Aggregator agg)
{
    switch (agg) {
      case Aggregator::SageMean: return "SAGE(mean)";
      case Aggregator::Gcn:      return "GCN";
      case Aggregator::Gin:      return "GIN";
    }
    return "?";
}

CsrGraph
CsrGraph::fromEdges(NodeId num_nodes,
                    std::vector<std::pair<NodeId, NodeId>> edges,
                    bool symmetrize, bool self_loops)
{
    if (symmetrize) {
        const std::size_t n = edges.size();
        edges.reserve(n * 2);
        for (std::size_t i = 0; i < n; ++i)
            edges.emplace_back(edges[i].second, edges[i].first);
    }
    if (self_loops) {
        edges.reserve(edges.size() + num_nodes);
        for (NodeId v = 0; v < num_nodes; ++v)
            edges.emplace_back(v, v);
    }

    for (const auto &[s, d] : edges)
        checkInvariant(s < num_nodes && d < num_nodes,
                       "fromEdges: endpoint out of range");

    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    CsrGraph g;
    g.numNodes_ = num_nodes;
    g.rowPtr_.assign(num_nodes + 1, 0);
    g.colIdx_.resize(edges.size());
    g.values_.assign(edges.size(), 1.0f);
    for (const auto &[s, d] : edges)
        ++g.rowPtr_[s + 1];
    for (NodeId v = 0; v < num_nodes; ++v)
        g.rowPtr_[v + 1] += g.rowPtr_[v];
    for (std::size_t i = 0; i < edges.size(); ++i)
        g.colIdx_[i] = edges[i].second;
    return g;
}

CsrGraph
CsrGraph::fromCsr(NodeId num_nodes, std::vector<EdgeId> row_ptr,
                  std::vector<NodeId> col_idx, std::vector<Float> values)
{
    CsrGraph g;
    g.numNodes_ = num_nodes;
    g.rowPtr_ = std::move(row_ptr);
    g.colIdx_ = std::move(col_idx);
    if (values.empty())
        g.values_.assign(g.colIdx_.size(), 1.0f);
    else
        g.values_ = std::move(values);
    checkInvariant(g.validate(), "fromCsr: invalid CSR arrays");
    checkInvariant(g.values_.size() == g.colIdx_.size(),
                   "fromCsr: value/col size mismatch");
    return g;
}

double
CsrGraph::avgDegree() const
{
    if (numNodes_ == 0)
        return 0.0;
    return static_cast<double>(numEdges()) / numNodes_;
}

EdgeId
CsrGraph::maxDegree() const
{
    EdgeId best = 0;
    for (NodeId v = 0; v < numNodes_; ++v)
        best = std::max(best, degree(v));
    return best;
}

void
CsrGraph::setAggregatorWeights(Aggregator agg)
{
    transposeCache_.reset();
    switch (agg) {
      case Aggregator::Gin:
        std::fill(values_.begin(), values_.end(), 1.0f);
        break;
      case Aggregator::SageMean:
        for (NodeId v = 0; v < numNodes_; ++v) {
            const EdgeId deg = degree(v);
            if (deg == 0)
                continue;
            const Float w = 1.0f / static_cast<Float>(deg);
            for (EdgeId e = rowPtr_[v]; e < rowPtr_[v + 1]; ++e)
                values_[e] = w;
        }
        break;
      case Aggregator::Gcn: {
        // In-degree equals out-degree only for symmetric structure; compute
        // in-degrees explicitly so directed graphs are handled too.
        std::vector<EdgeId> in_deg(numNodes_, 0);
        for (NodeId c : colIdx_)
            ++in_deg[c];
        for (NodeId v = 0; v < numNodes_; ++v) {
            const EdgeId d_i = degree(v);
            if (d_i == 0)
                continue;
            for (EdgeId e = rowPtr_[v]; e < rowPtr_[v + 1]; ++e) {
                const EdgeId d_j = in_deg[colIdx_[e]];
                values_[e] = d_j == 0
                    ? 0.0f
                    : 1.0f / std::sqrt(static_cast<Float>(d_i) *
                                       static_cast<Float>(d_j));
            }
        }
        break;
      }
    }
}

CsrGraph
CsrGraph::transposed() const
{
    CsrGraph t;
    t.numNodes_ = numNodes_;
    t.rowPtr_.assign(numNodes_ + 1, 0);
    t.colIdx_.resize(colIdx_.size());
    t.values_.resize(values_.size());

    for (NodeId c : colIdx_)
        ++t.rowPtr_[c + 1];
    for (NodeId v = 0; v < numNodes_; ++v)
        t.rowPtr_[v + 1] += t.rowPtr_[v];

    std::vector<EdgeId> cursor(t.rowPtr_.begin(), t.rowPtr_.end() - 1);
    for (NodeId r = 0; r < numNodes_; ++r) {
        for (EdgeId e = rowPtr_[r]; e < rowPtr_[r + 1]; ++e) {
            const NodeId c = colIdx_[e];
            const EdgeId slot = cursor[c]++;
            t.colIdx_[slot] = r;
            t.values_[slot] = values_[e];
        }
    }
    return t;
}

const CsrGraph &
CsrGraph::transposeCached() const
{
    if (!transposeCache_) {
        transposeCache_ =
            std::make_shared<const CsrGraph>(transposed());
        ++transposeBuilds_;
    }
    return *transposeCache_;
}

bool
CsrGraph::structureSymmetric() const
{
    const CsrGraph t = transposed();
    return t.rowPtr_ == rowPtr_ && t.colIdx_ == colIdx_;
}

bool
CsrGraph::validate() const
{
    if (rowPtr_.size() != static_cast<std::size_t>(numNodes_) + 1)
        return false;
    if (rowPtr_.front() != 0)
        return false;
    if (rowPtr_.back() != colIdx_.size())
        return false;
    for (NodeId v = 0; v < numNodes_; ++v) {
        if (rowPtr_[v] > rowPtr_[v + 1])
            return false;
        for (EdgeId e = rowPtr_[v]; e < rowPtr_[v + 1]; ++e) {
            if (colIdx_[e] >= numNodes_)
                return false;
            if (e > rowPtr_[v] && colIdx_[e - 1] >= colIdx_[e])
                return false; // must be strictly increasing within a row
        }
    }
    return true;
}

Bytes
CsrGraph::storageBytes() const
{
    return rowPtr_.size() * sizeof(EdgeId) +
           colIdx_.size() * sizeof(NodeId) + values_.size() * sizeof(Float);
}

} // namespace maxk
