/**
 * @file
 * Legacy text-CSR persistence entry points, kept for call sites that
 * want the original "load or die" contract. The parsing itself now
 * lives in graph/formats/text_csr.hh and returns
 * Expected<CsrGraph, IoError>; prefer that (or formats::loadAnyGraph
 * for format-sniffed ingestion of edge lists and binary dumps) in new
 * code — it makes malformed input testable and recoverable.
 *
 * Format (unchanged since the seed):
 *   line 1: "maxk-csr 1 <numNodes> <numEdges>"
 *   line 2: numNodes+1 white-space separated rowPtr entries
 *   line 3: numEdges column indices
 *   line 4 (optional): numEdges fp32 edge values
 */

#ifndef MAXK_GRAPH_IO_HH
#define MAXK_GRAPH_IO_HH

#include <string>

#include "graph/csr.hh"

namespace maxk
{

/** Serialise a graph to the text format; returns false on I/O failure. */
bool saveGraph(const CsrGraph &g, const std::string &path,
               bool with_values = true);

/**
 * Load a graph from the text format; fatal() on malformed content.
 * Thin wrapper over formats::loadTextCsr — unlike the seed version it
 * rejects trailing garbage after the payload instead of silently
 * ignoring it.
 */
CsrGraph loadGraph(const std::string &path);

} // namespace maxk

#endif // MAXK_GRAPH_IO_HH
