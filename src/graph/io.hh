/**
 * @file
 * Plain-text CSR graph persistence. Lets users drop in real datasets
 * (converted offline) in place of the synthetic twins: the format is the
 * same `indptr / indices` split the MaxK-GNN artifact uses, flattened to
 * one text file.
 *
 * Format:
 *   line 1: "maxk-csr 1 <numNodes> <numEdges>"
 *   line 2: numNodes+1 white-space separated rowPtr entries
 *   line 3: numEdges column indices
 *   line 4 (optional): numEdges fp32 edge values
 */

#ifndef MAXK_GRAPH_IO_HH
#define MAXK_GRAPH_IO_HH

#include <string>

#include "graph/csr.hh"

namespace maxk
{

/** Serialise a graph to the text format; returns false on I/O failure. */
bool saveGraph(const CsrGraph &g, const std::string &path,
               bool with_values = true);

/**
 * Load a graph from the text format.
 * Calls fatal() on malformed content (user error), returns the graph
 * otherwise.
 */
CsrGraph loadGraph(const std::string &path);

} // namespace maxk

#endif // MAXK_GRAPH_IO_HH
