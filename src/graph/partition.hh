/**
 * @file
 * Graph partitioning and sampling substrates.
 *
 * The paper (Sec. 1) positions MaxK-GNN as composable with the two
 * standard large-graph training strategies: partition-parallel training
 * (BNS-GCN-style) and subgraph sampling (GraphSAINT-style). These
 * utilities provide both: a BFS-grown balanced partitioner with
 * boundary accounting, subgraph extraction that remaps a node subset
 * into a self-contained CSR, and a uniform node sampler. The extension
 * bench trains MaxK-GNN on the resulting subgraphs.
 */

#ifndef MAXK_GRAPH_PARTITION_HH
#define MAXK_GRAPH_PARTITION_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "graph/csr.hh"

namespace maxk
{

/** Result of a k-way partition. */
struct Partition
{
    std::uint32_t numParts = 0;
    std::vector<std::uint32_t> assignment;  //!< node -> part id

    /** Nodes assigned to part p. */
    std::vector<NodeId> members(std::uint32_t p) const;

    /**
     * All part member lists in one pass: bucket[p] holds the nodes of
     * part p in ascending order. O(|V| + parts), unlike calling
     * members() per part (O(|V| * parts)); the HaloPlan compiler and
     * profileDistributedEpoch iterate every part, so they use this.
     */
    std::vector<std::vector<NodeId>> membersAll() const;

    /** Fraction of edges whose endpoints lie in different parts. */
    double edgeCutFraction(const CsrGraph &g) const;

    /** Ratio of the largest part size to the ideal |V|/parts. */
    double balance(NodeId num_nodes) const;
};

/**
 * BFS-grown balanced partitioning: seeds one frontier per part and
 * grows them breadth-first with a per-part size cap, assigning any
 * leftover (unreached) vertices round-robin. O(|V| + |E|); a
 * lightweight stand-in for METIS that preserves locality, which is
 * what the edge-cut metric depends on.
 */
Partition bfsPartition(const CsrGraph &g, std::uint32_t parts, Rng &rng);

/**
 * Extract the induced subgraph over `nodes` (need not be sorted;
 * duplicates ignored). Edge values are copied. `global_ids`, when
 * non-null, receives the mapping from local to original node ids.
 */
CsrGraph extractSubgraph(const CsrGraph &g,
                         const std::vector<NodeId> &nodes,
                         std::vector<NodeId> *global_ids = nullptr);

/**
 * GraphSAINT-style uniform node sampling: keep each vertex with
 * probability `fraction`, return the induced subgraph and the kept
 * global ids.
 */
struct SampledSubgraph
{
    CsrGraph graph;
    std::vector<NodeId> globalIds;
};
SampledSubgraph sampleNodes(const CsrGraph &g, double fraction, Rng &rng);

} // namespace maxk

#endif // MAXK_GRAPH_PARTITION_HH
