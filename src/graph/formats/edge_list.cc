#include "graph/formats/edge_list.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <tuple>
#include <vector>

#include "common/logging.hh"
#include "graph/formats/detail.hh"
#include "graph/formats/scan.hh"

namespace maxk::formats
{

namespace
{

constexpr std::uint64_t kIdxMax = std::numeric_limits<NodeId>::max();

/** One parsed record, ids still in file space (before base shift). */
struct RawEdge
{
    std::uint64_t src;
    std::uint64_t dst;
    Float weight;
};

Unexpected<IoError>
fail(IoErrorCode code, const std::string &path, std::uint64_t line,
     std::string msg)
{
    return unexpected(IoError{code, path, line, std::move(msg)});
}

bool
rawEdgeKeyLess(const RawEdge &a, const RawEdge &b)
{
    return std::tie(a.src, a.dst) < std::tie(b.src, b.dst);
}

bool
rawEdgeKeyEq(const RawEdge &a, const RawEdge &b)
{
    return a.src == b.src && a.dst == b.dst;
}

/**
 * The shared symmetrise/dedup contract: optionally mirror every edge,
 * then stable-sort and keep the first occurrence of each (src, dst).
 * Originals precede their mirrors in the array, so an existing weight
 * always beats the mirrored one, deterministically.
 */
void
mirrorSortDedup(std::vector<RawEdge> &edges, bool symmetrize)
{
    if (symmetrize) {
        const std::size_t n = edges.size();
        edges.reserve(n * 2);
        for (std::size_t i = 0; i < n; ++i)
            edges.push_back({edges[i].dst, edges[i].src,
                             edges[i].weight});
    }
    std::stable_sort(edges.begin(), edges.end(), rawEdgeKeyLess);
    edges.erase(std::unique(edges.begin(), edges.end(), rawEdgeKeyEq),
                edges.end());
}

/** Counting-sort CSR assembly of in-range, sorted-unique triples. */
CsrGraph
buildCsr(NodeId num_nodes, const std::vector<RawEdge> &edges)
{
    std::vector<EdgeId> row_ptr(static_cast<std::size_t>(num_nodes) + 1,
                                0);
    std::vector<NodeId> col_idx(edges.size());
    std::vector<Float> values(edges.size());
    for (const auto &e : edges)
        ++row_ptr[e.src + 1];
    for (NodeId v = 0; v < num_nodes; ++v)
        row_ptr[v + 1] += row_ptr[v];
    for (std::size_t i = 0; i < edges.size(); ++i) {
        col_idx[i] = static_cast<NodeId>(edges[i].dst);
        values[i] = edges[i].weight;
    }
    return CsrGraph::fromCsr(num_nodes, std::move(row_ptr),
                             std::move(col_idx), std::move(values));
}

/**
 * Our own writer embeds "# maxk-edges nodes=<N>" so graphs with
 * trailing isolated vertices (invisible in the records) round-trip
 * exactly. Foreign files simply won't match and fall back to max-id
 * inference.
 */
bool
parseNodesHint(std::string_view comment, std::uint64_t &nodes)
{
    constexpr std::string_view kTag = "maxk-edges nodes=";
    const std::size_t at = comment.find(kTag);
    if (at == std::string_view::npos)
        return false;
    std::string_view rest = comment.substr(at + kTag.size());
    const std::size_t end = rest.find_first_of(" \t\r");
    if (end != std::string_view::npos)
        rest = rest.substr(0, end);
    return parseU64(rest, nodes);
}

} // namespace

GraphResult
parseEdgeList(std::string_view data, const std::string &path,
              const EdgeListOptions &opt)
{
    std::vector<RawEdge> raw;
    bool weighted = false;
    bool have_arity = false;
    std::uint64_t min_id = kIdxMax, max_id = 0;
    std::uint64_t nodes_hint = 0;
    bool have_hint = false;

    std::uint64_t line_no = 0;
    std::size_t pos = 0;
    while (pos < data.size()) {
        std::size_t eol = data.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = data.size();
        std::string_view line = data.substr(pos, eol - pos);
        pos = eol + 1;
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.remove_suffix(1);

        const std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string_view::npos)
            continue; // blank
        if (line[first] == '#' || line[first] == '%') {
            std::uint64_t n = 0;
            if (!have_hint && parseNodesHint(line.substr(first), n)) {
                nodes_hint = n;
                have_hint = true;
            }
            continue;
        }

        // Tokenise the record: src dst [weight].
        std::string_view tok[4];
        std::size_t ntok = 0;
        std::size_t p = first;
        while (p < line.size()) {
            const std::size_t start = line.find_first_not_of(" \t,", p);
            if (start == std::string_view::npos)
                break;
            std::size_t stop = line.find_first_of(" \t,", start);
            if (stop == std::string_view::npos)
                stop = line.size();
            if (ntok < 4)
                tok[ntok] = line.substr(start, stop - start);
            ++ntok;
            p = stop;
        }
        if (ntok < 2 || ntok > 3)
            return fail(IoErrorCode::ParseError, path, line_no,
                        "expected 'src dst [weight]', got " +
                            std::to_string(ntok) + " fields");
        if (!have_arity) {
            weighted = ntok == 3;
            have_arity = true;
        } else if ((ntok == 3) != weighted) {
            return fail(IoErrorCode::ParseError, path, line_no,
                        weighted ? "missing weight in weighted edge list"
                                 : "unexpected weight in unweighted "
                                   "edge list");
        }

        RawEdge e{0, 0, 1.0f};
        if (!parseU64(tok[0], e.src))
            return fail(IoErrorCode::ParseError, path, line_no,
                        "non-numeric source id '" + std::string(tok[0]) +
                            "'");
        if (!parseU64(tok[1], e.dst))
            return fail(IoErrorCode::ParseError, path, line_no,
                        "non-numeric destination id '" +
                            std::string(tok[1]) + "'");
        if (weighted && !parseF32(tok[2], e.weight))
            return fail(IoErrorCode::ParseError, path, line_no,
                        "non-numeric weight '" + std::string(tok[2]) +
                            "'");
        min_id = std::min(min_id, std::min(e.src, e.dst));
        max_id = std::max(max_id, std::max(e.src, e.dst));
        raw.push_back(e);
    }

    if (raw.empty() && opt.numNodes == 0 && !have_hint)
        return fail(IoErrorCode::Truncated, path, 0,
                    "no edge records and no vertex-count hint");

    // Index base: our own files carry the nodes hint and are 0-based by
    // construction, so the hint pins Auto to Zero (a min id of 1 in
    // such a file just means vertex 0 is isolated, not 1-based ids).
    std::uint64_t shift = 0;
    switch (opt.base) {
      case IndexBase::Zero:
        break;
      case IndexBase::One:
        shift = 1;
        break;
      case IndexBase::Auto:
        shift = (!raw.empty() && !have_hint && min_id == 1) ? 1 : 0;
        break;
    }
    if (shift == 1 && !raw.empty() && min_id == 0)
        return fail(IoErrorCode::RangeError, path, 0,
                    "id 0 present in a 1-based edge list");

    std::uint64_t num_nodes64;
    if (opt.numNodes != 0)
        num_nodes64 = opt.numNodes;
    else if (have_hint)
        num_nodes64 = nodes_hint;
    else
        num_nodes64 = raw.empty() ? 0 : max_id + 1 - shift;
    if (num_nodes64 > kIdxMax)
        return fail(IoErrorCode::RangeError, path, 0,
                    "vertex count " + std::to_string(num_nodes64) +
                        " exceeds 32-bit index space");
    const NodeId num_nodes = static_cast<NodeId>(num_nodes64);

    std::vector<RawEdge> edges = std::move(raw);
    for (auto &e : edges) {
        e.src -= shift;
        e.dst -= shift;
        if (e.src >= num_nodes || e.dst >= num_nodes)
            return fail(IoErrorCode::RangeError, path, 0,
                        "edge (" + std::to_string(e.src) + ", " +
                            std::to_string(e.dst) +
                            ") out of range for " +
                            std::to_string(num_nodes) + " vertices");
    }

    // Strict mode surfaces duplicates before mirroring: a symmetric
    // input listing both directions is legitimate, a repeated record is
    // not.
    if (!opt.dedup) {
        std::vector<RawEdge> probe = edges;
        std::stable_sort(probe.begin(), probe.end(), rawEdgeKeyLess);
        const auto dup = std::adjacent_find(probe.begin(), probe.end(),
                                            rawEdgeKeyEq);
        if (dup != probe.end())
            return fail(IoErrorCode::DuplicateEdge, path, 0,
                        "duplicate edge (" + std::to_string(dup->src) +
                            ", " + std::to_string(dup->dst) +
                            ") with dedup disabled");
    }

    mirrorSortDedup(edges, opt.symmetrize);
    if (edges.size() > kIdxMax)
        return fail(IoErrorCode::RangeError, path, 0,
                    "edge count exceeds 32-bit index space");
    return buildCsr(num_nodes, edges);
}

GraphResult
loadEdgeList(const std::string &path, const EdgeListOptions &opt)
{
    std::string data;
    if (!readFileToString(path, data))
        return unexpected(IoError{IoErrorCode::OpenFailed, path, 0,
                                  "cannot open for reading"});
    return parseEdgeList(data, path, opt);
}

CsrGraph
symmetrized(const CsrGraph &g)
{
    std::vector<RawEdge> edges;
    edges.reserve(static_cast<std::size_t>(g.numEdges()) * 2);
    for (NodeId v = 0; v < g.numNodes(); ++v)
        for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e)
            edges.push_back({v, g.colIdx()[e], g.values()[e]});
    mirrorSortDedup(edges, /*symmetrize=*/true);
    checkInvariant(edges.size() <= kIdxMax,
                   "symmetrized: edge count exceeds 32-bit index space");
    return buildCsr(g.numNodes(), edges);
}

bool
saveEdgeList(const CsrGraph &g, const std::string &path, bool with_values)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "# maxk-edges nodes=" << g.numNodes() << " edges="
        << g.numEdges() << '\n';
    char buf[64];
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e) {
            out << v << '\t' << g.colIdx()[e];
            if (with_values) {
                std::snprintf(buf, sizeof(buf), "%.9g",
                              static_cast<double>(g.values()[e]));
                out << '\t' << buf;
            }
            out << '\n';
        }
    }
    return static_cast<bool>(out);
}

} // namespace maxk::formats
