/**
 * @file
 * Front door of the dataset-ingestion subsystem: format sniffing and
 * `loadAnyGraph()`, the one call sites should use when they just want
 * "this file, as a CsrGraph". Dispatches to the binary container, the
 * text-CSR format, or the SNAP-style edge-list loader by *content*
 * (magic bytes first, extension never lies the other way), so a
 * renamed file still loads.
 */

#ifndef MAXK_GRAPH_FORMATS_FORMATS_HH
#define MAXK_GRAPH_FORMATS_FORMATS_HH

#include <optional>
#include <string>

#include "graph/formats/binary_csr.hh"
#include "graph/formats/edge_list.hh"
#include "graph/formats/io_error.hh"
#include "graph/formats/text_csr.hh"

namespace maxk::formats
{

/** The on-disk formats the subsystem speaks. */
enum class GraphFormat
{
    BinaryCsr, //!< .maxkb container (magic "MAXKBIN\0")
    TextCsr,   //!< "maxk-csr" text format
    EdgeList,  //!< SNAP-style src/dst records
};

/** Stable name for CLI output ("bincsr", "textcsr", "edgelist"). */
const char *graphFormatName(GraphFormat f);

/** Inverse of graphFormatName; nullopt for unknown names. */
std::optional<GraphFormat> graphFormatFromName(const std::string &name);

/** Guess a format from a file extension (.maxkb/.csr/.txt/...). */
std::optional<GraphFormat> graphFormatFromExtension(
    const std::string &path);

/**
 * Sniff the format from leading file content: MAXKBIN magic → binary,
 * "maxk-csr" first token → text CSR, anything else → edge list. Errors
 * only when the file cannot be read at all.
 */
Expected<GraphFormat, IoError> sniffFormat(const std::string &path);

/**
 * Load a graph of any supported format, sniffing first. `elopt` applies
 * only when the file turns out to be an edge list.
 */
GraphResult loadAnyGraph(const std::string &path,
                         const EdgeListOptions &elopt = {});

/** Load a graph of a known format (CLI --from dispatch). */
GraphResult loadGraphAs(GraphFormat format, const std::string &path,
                        const EdgeListOptions &elopt = {});

/** Save a graph in the given format. Returns false on I/O failure. */
bool saveGraphAs(GraphFormat format, const CsrGraph &g,
                 const std::string &path, bool with_values = true);

} // namespace maxk::formats

#endif // MAXK_GRAPH_FORMATS_FORMATS_HH
