#include "graph/formats/binary_csr.hh"

#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

#include "graph/formats/detail.hh"

namespace maxk::formats
{

namespace
{

constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFlagHasValues = 1u << 0;
constexpr std::uint32_t kFlagSectionSums = 1u << 1;
constexpr std::uint32_t kKnownFlags = kFlagHasValues | kFlagSectionSums;
constexpr std::size_t kHeaderBytes = 40;
constexpr std::uint64_t kIdxMax = std::numeric_limits<NodeId>::max();

/** Section names, payload order (values only when present). */
constexpr const char *kSectionNames[3] = {"indptr", "indices", "values"};

Unexpected<IoError>
fail(IoErrorCode code, const std::string &path, std::string msg)
{
    return unexpected(IoError{code, path, 0, std::move(msg)});
}

template <class T>
void
appendRaw(std::string &out, T v)
{
    char buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out.append(buf, sizeof(T));
}

template <class T>
T
readRaw(const char *p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
}

/** Decoded and size-validated header fields. */
struct BinHeader
{
    std::uint64_t numNodes = 0;
    std::uint64_t numEdges = 0;
    std::uint64_t checksum = 0;
    bool hasValues = false;
    bool hasSectionSums = false;
    std::uint32_t numSections = 0; //!< 2 or 3 (values present)
    std::uint64_t payloadBytes = 0;

    /** Byte size of payload section `i` (payload order). */
    std::uint64_t sectionBytes(std::uint32_t i) const
    {
        switch (i) {
          case 0: return (numNodes + 1) * 8;
          case 1: return numEdges * 4;
          default: return hasValues ? numEdges * 4 : 0;
        }
    }
};

/**
 * Decode the fixed 40-byte header and check it against the file size.
 * Shared by the in-memory parser and the streaming loader so the two
 * cannot drift on magic/version/flag/count validation.
 */
Expected<BinHeader, IoError>
decodeHeader(const char *hdr, std::uint64_t file_size,
             const std::string &path)
{
    if (file_size < kHeaderBytes)
        return fail(IoErrorCode::Truncated, path,
                    "file too short for the 40-byte header (" +
                        std::to_string(file_size) + " bytes)");
    if (std::memcmp(hdr, kBinaryCsrMagic, sizeof(kBinaryCsrMagic)) != 0)
        return fail(IoErrorCode::BadMagic, path,
                    "leading bytes are not the MAXKBIN magic");

    const char *p = hdr + sizeof(kBinaryCsrMagic);
    const std::uint32_t version = readRaw<std::uint32_t>(p);
    const std::uint32_t flags = readRaw<std::uint32_t>(p + 4);
    BinHeader h;
    h.numNodes = readRaw<std::uint64_t>(p + 8);
    h.numEdges = readRaw<std::uint64_t>(p + 16);
    h.checksum = readRaw<std::uint64_t>(p + 24);

    if (version != kVersion)
        return fail(IoErrorCode::BadVersion, path,
                    "unsupported version " + std::to_string(version));
    if ((flags & ~kKnownFlags) != 0)
        return fail(IoErrorCode::BadHeader, path,
                    "unknown flag bits " + std::to_string(flags));
    if (h.numNodes > kIdxMax || h.numEdges > kIdxMax)
        return fail(IoErrorCode::BadHeader, path,
                    "counts exceed 32-bit index space");

    h.hasValues = (flags & kFlagHasValues) != 0;
    h.hasSectionSums = (flags & kFlagSectionSums) != 0;
    h.numSections = h.hasValues ? 3 : 2;
    h.payloadBytes = (h.numNodes + 1) * 8 + h.numEdges * 4 +
                     (h.hasValues ? h.numEdges * 4 : 0);
    const std::uint64_t expect =
        kHeaderBytes + h.payloadBytes +
        (h.hasSectionSums ? std::uint64_t(h.numSections) * 8 : 0);
    if (file_size < expect)
        return fail(IoErrorCode::Truncated, path,
                    "payload truncated: " + std::to_string(file_size) +
                        " bytes, header promises " +
                        std::to_string(expect));
    if (file_size > expect)
        return fail(IoErrorCode::TrailingData, path,
                    std::to_string(file_size - expect) +
                        " trailing bytes after payload");
    return h;
}

/** Checksum verdict + u64→u32 indptr narrowing + CSR validation.
 *  `file_sums`/`computed_sums` carry the per-section checksum table
 *  (empty when the file predates it): on a whole-payload mismatch they
 *  localise the damage to a named section and a byte offset. */
GraphResult
finalize(const BinHeader &h, std::uint64_t actual_checksum,
         const std::vector<std::uint64_t> &file_sums,
         const std::vector<std::uint64_t> &computed_sums,
         const std::vector<std::uint64_t> &indptr,
         std::vector<NodeId> col_idx, std::vector<Float> values,
         const std::string &path)
{
    if (actual_checksum != h.checksum) {
        std::uint64_t off = kHeaderBytes;
        for (std::size_t i = 0; i < file_sums.size(); ++i) {
            if (file_sums[i] != computed_sums[i])
                return fail(
                    IoErrorCode::ChecksumMismatch, path,
                    "checksum mismatch in section '" +
                        std::string(kSectionNames[i]) +
                        "' at byte offset " + std::to_string(off) +
                        " (section says " +
                        std::to_string(file_sums[i]) + ", computed " +
                        std::to_string(computed_sums[i]) + ")");
            off += h.sectionBytes(static_cast<std::uint32_t>(i));
        }
        if (!file_sums.empty())
            return fail(IoErrorCode::ChecksumMismatch, path,
                        "payload checksum mismatch but every section "
                        "verifies — the header checksum field itself "
                        "is damaged (file says " +
                            std::to_string(h.checksum) + ", computed " +
                            std::to_string(actual_checksum) + ")");
        return fail(IoErrorCode::ChecksumMismatch, path,
                    "payload checksum mismatch (file says " +
                        std::to_string(h.checksum) + ", computed " +
                        std::to_string(actual_checksum) + ")");
    }

    std::vector<EdgeId> row_ptr(indptr.size());
    for (std::size_t i = 0; i < indptr.size(); ++i) {
        if (indptr[i] > kIdxMax)
            return fail(IoErrorCode::RangeError, path,
                        "indptr entry " + std::to_string(indptr[i]) +
                            " exceeds 32-bit index space");
        row_ptr[i] = static_cast<EdgeId>(indptr[i]);
    }

    if (auto e = validateCsrArrays(path, h.numNodes, row_ptr, col_idx))
        return unexpected(std::move(*e));

    return CsrGraph::fromCsr(static_cast<NodeId>(h.numNodes),
                             std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

} // namespace

std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t seed)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

GraphResult
parseBinaryCsr(std::string_view data, const std::string &path)
{
    auto header = decodeHeader(data.data(), data.size(), path);
    if (!header)
        return unexpected(std::move(header.error()));
    const BinHeader &h = header.value();

    const char *payload = data.data() + kHeaderBytes;
    const std::uint64_t checksum = fnv1a64(payload, h.payloadBytes);

    std::vector<std::uint64_t> file_sums, computed_sums;
    if (h.hasSectionSums) {
        const char *table = payload + h.payloadBytes;
        std::uint64_t off = 0;
        for (std::uint32_t s = 0; s < h.numSections; ++s) {
            file_sums.push_back(readRaw<std::uint64_t>(table + s * 8));
            computed_sums.push_back(
                fnv1a64(payload + off, h.sectionBytes(s)));
            off += h.sectionBytes(s);
        }
    }

    std::vector<std::uint64_t> indptr(h.numNodes + 1);
    std::memcpy(indptr.data(), payload, indptr.size() * 8);
    const char *cols = payload + indptr.size() * 8;
    std::vector<NodeId> col_idx(h.numEdges);
    if (!col_idx.empty())
        std::memcpy(col_idx.data(), cols, col_idx.size() * 4);
    std::vector<Float> values;
    if (h.hasValues && h.numEdges != 0) {
        values.resize(h.numEdges);
        std::memcpy(values.data(), cols + h.numEdges * 4,
                    values.size() * 4);
    }
    return finalize(h, checksum, file_sums, computed_sums, indptr,
                    std::move(col_idx), std::move(values), path);
}

GraphResult
loadBinaryCsr(const std::string &path)
{
    // Streamed (not slurped): the container exists for fast reloads of
    // multi-hundred-MB graphs, so peak memory is the CSR arrays plus
    // one 40-byte header, not arrays + a full file copy. The payload
    // checksum is chained section by section (FNV-1a is a sequential
    // byte fold, so per-section seeding reproduces the whole-buffer
    // hash exactly).
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail(IoErrorCode::OpenFailed, path,
                    "cannot open for reading");
    in.seekg(0, std::ios::end);
    const std::uint64_t file_size =
        static_cast<std::uint64_t>(in.tellg());
    in.seekg(0, std::ios::beg);

    char hdr[kHeaderBytes] = {};
    in.read(hdr, kHeaderBytes);
    auto header = decodeHeader(
        hdr, in ? file_size : static_cast<std::uint64_t>(in.gcount()),
        path);
    if (!header)
        return unexpected(std::move(header.error()));
    const BinHeader &h = header.value();

    // Each section is folded twice: chained (seeded with the previous
    // section's running hash) to reproduce the whole-payload checksum,
    // and independently for the per-section diagnostic table.
    std::vector<std::uint64_t> computed_sums;
    auto readSection = [&](void *dst, std::uint64_t bytes,
                           std::uint64_t seed) -> std::uint64_t {
        if (bytes != 0)
            in.read(static_cast<char *>(dst),
                    static_cast<std::streamsize>(bytes));
        if (h.hasSectionSums)
            computed_sums.push_back(fnv1a64(dst, bytes));
        if (bytes == 0)
            return seed;
        return fnv1a64(dst, bytes, seed);
    };

    std::vector<std::uint64_t> indptr(h.numNodes + 1);
    std::uint64_t checksum = readSection(
        indptr.data(), indptr.size() * 8, 0xcbf29ce484222325ull);
    std::vector<NodeId> col_idx(h.numEdges);
    checksum = readSection(col_idx.data(), col_idx.size() * 4, checksum);
    std::vector<Float> values;
    if (h.hasValues) {
        values.resize(h.numEdges);
        checksum =
            readSection(values.data(), values.size() * 4, checksum);
    }
    std::vector<std::uint64_t> file_sums;
    if (h.hasSectionSums) {
        file_sums.resize(h.numSections);
        in.read(reinterpret_cast<char *>(file_sums.data()),
                static_cast<std::streamsize>(file_sums.size() * 8));
    }
    if (!in)
        return fail(IoErrorCode::Truncated, path,
                    "read failed before the promised payload ended");

    return finalize(h, checksum, file_sums, computed_sums, indptr,
                    std::move(col_idx), std::move(values), path);
}

bool
saveBinaryCsr(const CsrGraph &g, const std::string &path, bool with_values)
{
    std::string payload;
    payload.reserve(g.rowPtr().size() * 8 + g.colIdx().size() * 4 +
                    (with_values ? g.values().size() * 4 : 0));
    for (EdgeId v : g.rowPtr())
        appendRaw(payload, static_cast<std::uint64_t>(v));
    const std::size_t cols_off = payload.size();
    for (NodeId c : g.colIdx())
        appendRaw(payload, static_cast<std::uint32_t>(c));
    const std::size_t vals_off = payload.size();
    if (with_values)
        for (Float f : g.values())
            appendRaw(payload, f);

    std::string header;
    header.reserve(kHeaderBytes);
    header.append(kBinaryCsrMagic, sizeof(kBinaryCsrMagic));
    appendRaw(header, kVersion);
    appendRaw(header, (with_values ? kFlagHasValues : 0u) |
                          kFlagSectionSums);
    appendRaw(header, static_cast<std::uint64_t>(g.numNodes()));
    appendRaw(header, static_cast<std::uint64_t>(g.numEdges()));
    appendRaw(header, fnv1a64(payload.data(), payload.size()));

    // Per-section diagnostic checksums, appended after the payload.
    std::string table;
    appendRaw(table, fnv1a64(payload.data(), cols_off));
    appendRaw(table,
              fnv1a64(payload.data() + cols_off, vals_off - cols_off));
    if (with_values)
        appendRaw(table, fnv1a64(payload.data() + vals_off,
                                 payload.size() - vals_off));

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(header.data(),
              static_cast<std::streamsize>(header.size()));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    out.write(table.data(), static_cast<std::streamsize>(table.size()));
    return static_cast<bool>(out);
}

} // namespace maxk::formats
