#include "graph/formats/binary_csr.hh"

#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

#include "graph/formats/detail.hh"

namespace maxk::formats
{

namespace
{

constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFlagHasValues = 1u << 0;
constexpr std::uint32_t kKnownFlags = kFlagHasValues;
constexpr std::size_t kHeaderBytes = 40;
constexpr std::uint64_t kIdxMax = std::numeric_limits<NodeId>::max();

Unexpected<IoError>
fail(IoErrorCode code, const std::string &path, std::string msg)
{
    return unexpected(IoError{code, path, 0, std::move(msg)});
}

template <class T>
void
appendRaw(std::string &out, T v)
{
    char buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out.append(buf, sizeof(T));
}

template <class T>
T
readRaw(const char *p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
}

/** Decoded and size-validated header fields. */
struct BinHeader
{
    std::uint64_t numNodes = 0;
    std::uint64_t numEdges = 0;
    std::uint64_t checksum = 0;
    bool hasValues = false;
    std::uint64_t payloadBytes = 0;
};

/**
 * Decode the fixed 40-byte header and check it against the file size.
 * Shared by the in-memory parser and the streaming loader so the two
 * cannot drift on magic/version/flag/count validation.
 */
Expected<BinHeader, IoError>
decodeHeader(const char *hdr, std::uint64_t file_size,
             const std::string &path)
{
    if (file_size < kHeaderBytes)
        return fail(IoErrorCode::Truncated, path,
                    "file too short for the 40-byte header (" +
                        std::to_string(file_size) + " bytes)");
    if (std::memcmp(hdr, kBinaryCsrMagic, sizeof(kBinaryCsrMagic)) != 0)
        return fail(IoErrorCode::BadMagic, path,
                    "leading bytes are not the MAXKBIN magic");

    const char *p = hdr + sizeof(kBinaryCsrMagic);
    const std::uint32_t version = readRaw<std::uint32_t>(p);
    const std::uint32_t flags = readRaw<std::uint32_t>(p + 4);
    BinHeader h;
    h.numNodes = readRaw<std::uint64_t>(p + 8);
    h.numEdges = readRaw<std::uint64_t>(p + 16);
    h.checksum = readRaw<std::uint64_t>(p + 24);

    if (version != kVersion)
        return fail(IoErrorCode::BadVersion, path,
                    "unsupported version " + std::to_string(version));
    if ((flags & ~kKnownFlags) != 0)
        return fail(IoErrorCode::BadHeader, path,
                    "unknown flag bits " + std::to_string(flags));
    if (h.numNodes > kIdxMax || h.numEdges > kIdxMax)
        return fail(IoErrorCode::BadHeader, path,
                    "counts exceed 32-bit index space");

    h.hasValues = (flags & kFlagHasValues) != 0;
    h.payloadBytes = (h.numNodes + 1) * 8 + h.numEdges * 4 +
                     (h.hasValues ? h.numEdges * 4 : 0);
    const std::uint64_t expect = kHeaderBytes + h.payloadBytes;
    if (file_size < expect)
        return fail(IoErrorCode::Truncated, path,
                    "payload truncated: " + std::to_string(file_size) +
                        " bytes, header promises " +
                        std::to_string(expect));
    if (file_size > expect)
        return fail(IoErrorCode::TrailingData, path,
                    std::to_string(file_size - expect) +
                        " trailing bytes after payload");
    return h;
}

/** Checksum verdict + u64→u32 indptr narrowing + CSR validation. */
GraphResult
finalize(const BinHeader &h, std::uint64_t actual_checksum,
         const std::vector<std::uint64_t> &indptr,
         std::vector<NodeId> col_idx, std::vector<Float> values,
         const std::string &path)
{
    if (actual_checksum != h.checksum)
        return fail(IoErrorCode::ChecksumMismatch, path,
                    "payload checksum mismatch (file says " +
                        std::to_string(h.checksum) + ", computed " +
                        std::to_string(actual_checksum) + ")");

    std::vector<EdgeId> row_ptr(indptr.size());
    for (std::size_t i = 0; i < indptr.size(); ++i) {
        if (indptr[i] > kIdxMax)
            return fail(IoErrorCode::RangeError, path,
                        "indptr entry " + std::to_string(indptr[i]) +
                            " exceeds 32-bit index space");
        row_ptr[i] = static_cast<EdgeId>(indptr[i]);
    }

    if (auto e = validateCsrArrays(path, h.numNodes, row_ptr, col_idx))
        return unexpected(std::move(*e));

    return CsrGraph::fromCsr(static_cast<NodeId>(h.numNodes),
                             std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

} // namespace

std::uint64_t
fnv1a64(const void *data, std::size_t size, std::uint64_t seed)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

GraphResult
parseBinaryCsr(std::string_view data, const std::string &path)
{
    auto header = decodeHeader(data.data(), data.size(), path);
    if (!header)
        return unexpected(std::move(header.error()));
    const BinHeader &h = header.value();

    const char *payload = data.data() + kHeaderBytes;
    const std::uint64_t checksum = fnv1a64(payload, h.payloadBytes);

    std::vector<std::uint64_t> indptr(h.numNodes + 1);
    std::memcpy(indptr.data(), payload, indptr.size() * 8);
    const char *cols = payload + indptr.size() * 8;
    std::vector<NodeId> col_idx(h.numEdges);
    if (!col_idx.empty())
        std::memcpy(col_idx.data(), cols, col_idx.size() * 4);
    std::vector<Float> values;
    if (h.hasValues && h.numEdges != 0) {
        values.resize(h.numEdges);
        std::memcpy(values.data(), cols + h.numEdges * 4,
                    values.size() * 4);
    }
    return finalize(h, checksum, indptr, std::move(col_idx),
                    std::move(values), path);
}

GraphResult
loadBinaryCsr(const std::string &path)
{
    // Streamed (not slurped): the container exists for fast reloads of
    // multi-hundred-MB graphs, so peak memory is the CSR arrays plus
    // one 40-byte header, not arrays + a full file copy. The payload
    // checksum is chained section by section (FNV-1a is a sequential
    // byte fold, so per-section seeding reproduces the whole-buffer
    // hash exactly).
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail(IoErrorCode::OpenFailed, path,
                    "cannot open for reading");
    in.seekg(0, std::ios::end);
    const std::uint64_t file_size =
        static_cast<std::uint64_t>(in.tellg());
    in.seekg(0, std::ios::beg);

    char hdr[kHeaderBytes] = {};
    in.read(hdr, kHeaderBytes);
    auto header = decodeHeader(
        hdr, in ? file_size : static_cast<std::uint64_t>(in.gcount()),
        path);
    if (!header)
        return unexpected(std::move(header.error()));
    const BinHeader &h = header.value();

    auto readSection = [&](void *dst, std::uint64_t bytes,
                           std::uint64_t seed) -> std::uint64_t {
        if (bytes == 0)
            return seed;
        in.read(static_cast<char *>(dst),
                static_cast<std::streamsize>(bytes));
        return fnv1a64(dst, bytes, seed);
    };

    std::vector<std::uint64_t> indptr(h.numNodes + 1);
    std::uint64_t checksum = readSection(
        indptr.data(), indptr.size() * 8, 0xcbf29ce484222325ull);
    std::vector<NodeId> col_idx(h.numEdges);
    checksum = readSection(col_idx.data(), col_idx.size() * 4, checksum);
    std::vector<Float> values;
    if (h.hasValues && h.numEdges != 0) {
        values.resize(h.numEdges);
        checksum =
            readSection(values.data(), values.size() * 4, checksum);
    }
    if (!in)
        return fail(IoErrorCode::Truncated, path,
                    "read failed before the promised payload ended");

    return finalize(h, checksum, indptr, std::move(col_idx),
                    std::move(values), path);
}

bool
saveBinaryCsr(const CsrGraph &g, const std::string &path, bool with_values)
{
    std::string payload;
    payload.reserve(g.rowPtr().size() * 8 + g.colIdx().size() * 4 +
                    (with_values ? g.values().size() * 4 : 0));
    for (EdgeId v : g.rowPtr())
        appendRaw(payload, static_cast<std::uint64_t>(v));
    for (NodeId c : g.colIdx())
        appendRaw(payload, static_cast<std::uint32_t>(c));
    if (with_values)
        for (Float f : g.values())
            appendRaw(payload, f);

    std::string header;
    header.reserve(kHeaderBytes);
    header.append(kBinaryCsrMagic, sizeof(kBinaryCsrMagic));
    appendRaw(header, kVersion);
    appendRaw(header, with_values ? kFlagHasValues : 0u);
    appendRaw(header, static_cast<std::uint64_t>(g.numNodes()));
    appendRaw(header, static_cast<std::uint64_t>(g.numEdges()));
    appendRaw(header, fnv1a64(payload.data(), payload.size()));

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(header.data(),
              static_cast<std::streamsize>(header.size()));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    return static_cast<bool>(out);
}

} // namespace maxk::formats
