/**
 * @file
 * SNAP-style plain edge-list ingestion — the format the paper's real
 * evaluation graphs (Reddit, ogbn-*) are distributed in once unpacked:
 * one "src dst [weight]" record per line, `#` or `%` comment lines,
 * tabs or spaces, CRLF tolerated.
 *
 * Records are token-oriented: a record is two node ids plus an optional
 * fp32 weight, and the weighted/unweighted decision is made by the
 * first record (mixed arity is an error). Duplicate edges collapse to
 * the first occurrence's weight under `dedup`, or are reported as
 * IoErrorCode::DuplicateEdge in strict mode. Symmetrisation mirrors
 * every edge (and its weight); a mirrored duplicate is never a strict
 * violation because symmetric inputs legitimately list both directions.
 */

#ifndef MAXK_GRAPH_FORMATS_EDGE_LIST_HH
#define MAXK_GRAPH_FORMATS_EDGE_LIST_HH

#include <string>

#include "graph/formats/io_error.hh"

namespace maxk::formats
{

/** How node ids in the file map to [0, numNodes). */
enum class IndexBase
{
    Auto, //!< 1-based iff the smallest id seen is exactly 1, else 0-based
    Zero, //!< ids are used verbatim
    One,  //!< every id is shifted down by one (Matrix-Market style)
};

struct EdgeListOptions
{
    bool symmetrize = false; //!< insert the reverse of every edge
    bool dedup = true;       //!< collapse duplicates (false = error out)
    IndexBase base = IndexBase::Auto;

    /**
     * Vertex-count override. 0 = infer as (max id + 1) after base
     * adjustment; nonzero = exactly this many nodes, and any id at or
     * beyond it is an IoErrorCode::RangeError.
     */
    NodeId numNodes = 0;
};

/** Load a plain edge list; never terminates the process. */
GraphResult loadEdgeList(const std::string &path,
                         const EdgeListOptions &opt = {});

/** Parse edge-list content already in memory (`path` labels errors). */
GraphResult parseEdgeList(std::string_view data, const std::string &path,
                          const EdgeListOptions &opt = {});

/**
 * Serialise as an edge list: a `# maxk edge list` comment header, then
 * one "src dst weight" line per nnz (weights at %.9g, so fp32 survives
 * a round-trip bitwise). `with_values = false` writes "src dst" pairs.
 */
bool saveEdgeList(const CsrGraph &g, const std::string &path,
                  bool with_values = true);

/**
 * Mirror every edge of an already-loaded graph with the same
 * first-wins contract the loader's `symmetrize` option applies at
 * parse time: an existing (i, j) value beats the mirrored (j, i) one.
 * Used by maxk-convert for CSR-format inputs so `--symmetrize` means
 * one thing regardless of input format.
 */
CsrGraph symmetrized(const CsrGraph &g);

} // namespace maxk::formats

#endif // MAXK_GRAPH_FORMATS_EDGE_LIST_HH
