/**
 * @file
 * The project's plain-text CSR format ("maxk-csr"), behind the
 * Expected/IoError path. This is the same format graph/io.hh has always
 * documented:
 *
 *   line 1: "maxk-csr 1 <numNodes> <numEdges>"
 *   line 2: numNodes+1 white-space separated rowPtr entries
 *   line 3: numEdges column indices
 *   line 4 (optional): numEdges fp32 edge values
 *
 * Tokens may in fact wrap lines arbitrarily (the format is token-, not
 * line-oriented) and CRLF endings are accepted. Unlike the legacy
 * loader, anything after the payload — including a non-numeric token
 * where the optional values block would start — is an error instead of
 * being silently ignored.
 */

#ifndef MAXK_GRAPH_FORMATS_TEXT_CSR_HH
#define MAXK_GRAPH_FORMATS_TEXT_CSR_HH

#include <string>

#include "graph/formats/io_error.hh"

namespace maxk::formats
{

/** Magic token opening a text-CSR file. */
inline constexpr const char *kTextCsrMagic = "maxk-csr";

/** Load a text-CSR graph; never terminates the process. */
GraphResult loadTextCsr(const std::string &path);

/** Parse text-CSR content already in memory (`path` labels errors). */
GraphResult parseTextCsr(std::string_view data, const std::string &path);

/**
 * Serialise to text CSR. Values are printed with %.9g so an fp32
 * round-trip is bitwise exact. Returns false on I/O failure.
 */
bool saveTextCsr(const CsrGraph &g, const std::string &path,
                 bool with_values = true);

} // namespace maxk::formats

#endif // MAXK_GRAPH_FORMATS_TEXT_CSR_HH
