/**
 * @file
 * Internal line-tracking token scanner shared by the text-format
 * parsers. Not installed as public API: the loaders in graph/formats
 * expose file-level entry points only.
 *
 * Whitespace (space, tab, CR, LF) separates tokens; CR is treated as
 * plain whitespace so CRLF files parse identically to LF files. The
 * scanner tracks the 1-based line of the *current* token so parse
 * errors can point at the offending line.
 */

#ifndef MAXK_GRAPH_FORMATS_SCAN_HH
#define MAXK_GRAPH_FORMATS_SCAN_HH

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

namespace maxk::formats
{

class TokenScanner
{
  public:
    explicit TokenScanner(std::string_view data) : data_(data) {}

    /** Line (1-based) of the most recently returned token. */
    std::uint64_t line() const { return token_line_; }

    /** Line the scan position currently sits on (for EOF reports). */
    std::uint64_t currentLine() const { return line_; }

    /**
     * Fetch the next token; returns false at end of input. Comment
     * handling is the caller's job (formats disagree on markers).
     */
    bool
    next(std::string_view &tok)
    {
        skipSpace();
        if (pos_ >= data_.size())
            return false;
        token_line_ = line_;
        const std::size_t start = pos_;
        while (pos_ < data_.size() && !isSpace(data_[pos_]))
            ++pos_;
        tok = data_.substr(start, pos_ - start);
        return true;
    }

    /** True when only whitespace remains. */
    bool
    atEnd()
    {
        skipSpace();
        return pos_ >= data_.size();
    }

    /** Skip the remainder of the current line (comment lines). */
    void
    skipLine()
    {
        while (pos_ < data_.size() && data_[pos_] != '\n')
            ++pos_;
    }

  private:
    static bool
    isSpace(char c)
    {
        return c == ' ' || c == '\t' || c == '\r' || c == '\n' ||
               c == '\v' || c == '\f';
    }

    void
    skipSpace()
    {
        while (pos_ < data_.size() && isSpace(data_[pos_])) {
            if (data_[pos_] == '\n')
                ++line_;
            ++pos_;
        }
    }

    std::string_view data_;
    std::size_t pos_ = 0;
    std::uint64_t line_ = 1;
    std::uint64_t token_line_ = 1;
};

/** Parse an unsigned integer token strictly (no sign, no trailing). */
inline bool
parseU64(std::string_view tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : tok) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

/** Parse a float token strictly (whole token must be consumed). */
inline bool
parseF32(std::string_view tok, float &out)
{
    if (tok.empty() || tok.size() > 64)
        return false;
    char buf[65];
    tok.copy(buf, tok.size());
    buf[tok.size()] = '\0';
    errno = 0;
    char *end = nullptr;
    const float v = std::strtof(buf, &end);
    if (end != buf + tok.size())
        return false;
    // glibc sets ERANGE for subnormal results too, but still returns
    // the correctly rounded value — only genuine overflow is an error
    // (underflow-to-subnormal must round-trip, e.g. 1e-39 weights).
    if (errno == ERANGE && (v == HUGE_VALF || v == -HUGE_VALF))
        return false;
    out = v;
    return true;
}

} // namespace maxk::formats

#endif // MAXK_GRAPH_FORMATS_SCAN_HH
