#include "graph/formats/checkpoint.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"
#include "common/trace.hh"
#include "graph/formats/binary_csr.hh" // fnv1a64

namespace maxk::formats
{

namespace
{

constexpr std::uint32_t kCkptVersion = 1;
constexpr std::size_t kCkptHeaderBytes = 16; // magic + version + count

Unexpected<IoError>
fail(IoErrorCode code, const std::string &path, std::string msg)
{
    return unexpected(IoError{code, path, 0, std::move(msg)});
}

template <class T>
void
appendRaw(std::vector<std::uint8_t> &out, T v)
{
    const std::size_t at = out.size();
    out.resize(at + sizeof(T));
    std::memcpy(out.data() + at, &v, sizeof(T));
}

template <class T>
T
readRaw(const std::uint8_t *p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
}

void
appendBytes(std::vector<std::uint8_t> &out, const void *data,
            std::size_t bytes)
{
    const std::size_t at = out.size();
    out.resize(at + bytes);
    if (bytes != 0)
        std::memcpy(out.data() + at, data, bytes);
}

} // namespace

std::int64_t
Checkpoint::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return static_cast<std::int64_t>(i);
    return -1;
}

void
Checkpoint::set(const std::string &name, const void *data,
                std::size_t bytes)
{
    std::int64_t idx = indexOf(name);
    if (idx < 0) {
        idx = static_cast<std::int64_t>(names_.size());
        names_.push_back(name);
        payloads_.emplace_back();
    }
    std::vector<std::uint8_t> &dst =
        payloads_[static_cast<std::size_t>(idx)];
    dst.resize(bytes); // shrinks reuse capacity; no tracked allocation
    if (bytes != 0)
        std::memcpy(dst.data(), data, bytes);
}

bool
Checkpoint::has(const std::string &name) const
{
    return indexOf(name) >= 0;
}

Expected<const std::vector<std::uint8_t> *, IoError>
Checkpoint::section(const std::string &name) const
{
    const std::int64_t idx = indexOf(name);
    if (idx < 0)
        return fail(IoErrorCode::BadHeader, "",
                    "checkpoint section '" + name + "' missing");
    return &payloads_[static_cast<std::size_t>(idx)];
}

void
Checkpoint::setU64(const std::string &name, std::uint64_t v)
{
    set(name, &v, sizeof(v));
}

Expected<std::uint64_t, IoError>
Checkpoint::getU64(const std::string &name) const
{
    auto sec = section(name);
    if (!sec)
        return unexpected(std::move(sec.error()));
    if ((*sec.value()).size() != sizeof(std::uint64_t))
        return fail(IoErrorCode::CountMismatch, "",
                    "checkpoint section '" + name + "' is not one u64");
    return readRaw<std::uint64_t>(sec.value()->data());
}

namespace
{

template <class T>
Expected<std::vector<T>, IoError>
getArray(const Checkpoint &ck, const std::string &name)
{
    auto sec = ck.section(name);
    if (!sec)
        return unexpected(std::move(sec.error()));
    const std::vector<std::uint8_t> &bytes = *sec.value();
    if (bytes.size() % sizeof(T) != 0)
        return unexpected(
            IoError{IoErrorCode::CountMismatch, "", 0,
                    "checkpoint section '" + name +
                        "' size is not a multiple of the element size"});
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!out.empty())
        std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
}

} // namespace

void
Checkpoint::setU64s(const std::string &name,
                    const std::vector<std::uint64_t> &v)
{
    set(name, v.data(), v.size() * sizeof(std::uint64_t));
}

Expected<std::vector<std::uint64_t>, IoError>
Checkpoint::getU64s(const std::string &name) const
{
    return getArray<std::uint64_t>(*this, name);
}

void
Checkpoint::setDoubles(const std::string &name,
                       const std::vector<double> &v)
{
    set(name, v.data(), v.size() * sizeof(double));
}

Expected<std::vector<double>, IoError>
Checkpoint::getDoubles(const std::string &name) const
{
    return getArray<double>(*this, name);
}

void
Checkpoint::setU32s(const std::string &name,
                    const std::vector<std::uint32_t> &v)
{
    set(name, v.data(), v.size() * sizeof(std::uint32_t));
}

Expected<std::vector<std::uint32_t>, IoError>
Checkpoint::getU32s(const std::string &name) const
{
    return getArray<std::uint32_t>(*this, name);
}

void
Checkpoint::setMatrix(const std::string &name, const Matrix &m)
{
    std::int64_t idx = indexOf(name);
    if (idx < 0) {
        idx = static_cast<std::int64_t>(names_.size());
        names_.push_back(name);
        payloads_.emplace_back();
    }
    std::vector<std::uint8_t> &dst =
        payloads_[static_cast<std::size_t>(idx)];
    dst.resize(16 + m.size() * sizeof(Float));
    const std::uint64_t rows = m.rows(), cols = m.cols();
    std::memcpy(dst.data(), &rows, 8);
    std::memcpy(dst.data() + 8, &cols, 8);
    if (m.size() != 0)
        std::memcpy(dst.data() + 16, m.data(),
                    m.size() * sizeof(Float));
}

Expected<std::monostate, IoError>
Checkpoint::getMatrix(const std::string &name, Matrix &m) const
{
    auto sec = section(name);
    if (!sec)
        return unexpected(std::move(sec.error()));
    const std::vector<std::uint8_t> &bytes = *sec.value();
    if (bytes.size() < 16)
        return fail(IoErrorCode::Truncated, "",
                    "checkpoint matrix section '" + name +
                        "' too short for its shape header");
    const std::uint64_t rows = readRaw<std::uint64_t>(bytes.data());
    const std::uint64_t cols = readRaw<std::uint64_t>(bytes.data() + 8);
    if (bytes.size() != 16 + rows * cols * sizeof(Float))
        return fail(IoErrorCode::CountMismatch, "",
                    "checkpoint matrix section '" + name +
                        "' payload does not match its shape header");
    m.ensureShape(static_cast<std::size_t>(rows),
                  static_cast<std::size_t>(cols));
    if (rows * cols != 0)
        std::memcpy(m.data(), bytes.data() + 16,
                    rows * cols * sizeof(Float));
    return std::monostate{};
}

void
Checkpoint::encode(std::vector<std::uint8_t> &out) const
{
    out.clear();
    appendBytes(out, kCheckpointMagic, sizeof(kCheckpointMagic));
    appendRaw(out, kCkptVersion);
    appendRaw(out, static_cast<std::uint32_t>(names_.size()));
    for (std::size_t i = 0; i < names_.size(); ++i) {
        const std::string &name = names_[i];
        const std::vector<std::uint8_t> &payload = payloads_[i];
        appendRaw(out, static_cast<std::uint32_t>(name.size()));
        appendBytes(out, name.data(), name.size());
        appendRaw(out, static_cast<std::uint64_t>(payload.size()));
        appendRaw(out, fnv1a64(payload.data(), payload.size()));
        appendBytes(out, payload.data(), payload.size());
    }
}

std::uint64_t
Checkpoint::encodedBytes() const
{
    std::uint64_t total = kCkptHeaderBytes;
    for (std::size_t i = 0; i < names_.size(); ++i)
        total += 4 + names_[i].size() + 16 + payloads_[i].size();
    return total;
}

Expected<Checkpoint, IoError>
Checkpoint::decode(const std::vector<std::uint8_t> &bytes,
                   const std::string &path)
{
    if (bytes.size() < kCkptHeaderBytes)
        return fail(IoErrorCode::Truncated, path,
                    "file too short for the 16-byte checkpoint header (" +
                        std::to_string(bytes.size()) + " bytes)");
    if (std::memcmp(bytes.data(), kCheckpointMagic,
                    sizeof(kCheckpointMagic)) != 0)
        return fail(IoErrorCode::BadMagic, path,
                    "leading bytes are not the MAXKCKPT magic");
    const std::uint32_t version = readRaw<std::uint32_t>(bytes.data() + 8);
    if (version != kCkptVersion)
        return fail(IoErrorCode::BadVersion, path,
                    "unsupported checkpoint version " +
                        std::to_string(version));
    const std::uint32_t count = readRaw<std::uint32_t>(bytes.data() + 12);

    Checkpoint ck;
    std::size_t at = kCkptHeaderBytes;
    for (std::uint32_t s = 0; s < count; ++s) {
        auto need = [&](std::size_t n, const char *what)
            -> Expected<std::monostate, IoError> {
            if (bytes.size() - at < n)
                return fail(IoErrorCode::Truncated, path,
                            "section " + std::to_string(s) + ": file ends inside " +
                                what + " (offset " + std::to_string(at) +
                                ")");
            return std::monostate{};
        };
        if (auto r = need(4, "the name length"); !r)
            return unexpected(std::move(r.error()));
        const std::uint32_t name_len =
            readRaw<std::uint32_t>(bytes.data() + at);
        at += 4;
        if (auto r = need(name_len, "the section name"); !r)
            return unexpected(std::move(r.error()));
        std::string name(reinterpret_cast<const char *>(bytes.data() + at),
                         name_len);
        at += name_len;
        if (auto r = need(16, "the section size/checksum"); !r)
            return unexpected(std::move(r.error()));
        const std::uint64_t payload_bytes =
            readRaw<std::uint64_t>(bytes.data() + at);
        const std::uint64_t want_sum =
            readRaw<std::uint64_t>(bytes.data() + at + 8);
        at += 16;
        if (bytes.size() - at < payload_bytes)
            return fail(IoErrorCode::Truncated, path,
                        "section '" + name + "' payload truncated at byte offset " +
                            std::to_string(at) + " (" +
                            std::to_string(payload_bytes) +
                            " bytes promised, " +
                            std::to_string(bytes.size() - at) +
                            " present)");
        const std::uint64_t got_sum =
            fnv1a64(bytes.data() + at, payload_bytes);
        if (got_sum != want_sum)
            return fail(IoErrorCode::ChecksumMismatch, path,
                        "section '" + name +
                            "' checksum mismatch at byte offset " +
                            std::to_string(at) + " (file says " +
                            std::to_string(want_sum) + ", computed " +
                            std::to_string(got_sum) + ")");
        ck.set(name, bytes.data() + at,
               static_cast<std::size_t>(payload_bytes));
        at += payload_bytes;
    }
    if (at != bytes.size())
        return fail(IoErrorCode::TrailingData, path,
                    std::to_string(bytes.size() - at) +
                        " trailing bytes after the last section");
    return ck;
}

Expected<std::uint64_t, IoError>
Checkpoint::save(const std::string &path, FaultInjector *faults) const
{
    encode(encodeWs_);

    // Scheduled checkpoint-write corruption: applied to the in-memory
    // image so the on-disk file is damaged exactly the way a torn write
    // or a flaky medium would damage it — and so deterministically that
    // the recovery test can assert which image is bad.
    if (faults) {
        if (const FaultSpec *s = faults->fire("checkpoint.write")) {
            if (s->kind == FaultKind::CheckpointTruncate) {
                const std::size_t cut = std::min<std::size_t>(
                    encodeWs_.size(),
                    static_cast<std::size_t>(s->payload));
                encodeWs_.resize(encodeWs_.size() - cut);
                logMessage(LogLevel::Warn,
                           "checkpoint.save: injected truncation of " +
                               std::to_string(cut) + " bytes on " + path);
            } else if (s->kind == FaultKind::CheckpointBitFlip) {
                const std::size_t bit =
                    static_cast<std::size_t>(s->payload) %
                    (encodeWs_.size() * 8);
                encodeWs_[bit / 8] ^=
                    static_cast<std::uint8_t>(1u << (bit % 8));
                logMessage(LogLevel::Warn,
                           "checkpoint.save: injected bit flip at bit " +
                               std::to_string(bit) + " on " + path);
            } else {
                throw InjectedFault(*s);
            }
        }
    }

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return fail(IoErrorCode::OpenFailed, tmp,
                        "cannot open for writing");
        out.write(reinterpret_cast<const char *>(encodeWs_.data()),
                  static_cast<std::streamsize>(encodeWs_.size()));
        if (!out)
            return fail(IoErrorCode::WriteFailed, tmp,
                        "write failed mid-image");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        return fail(IoErrorCode::WriteFailed, path,
                    "rename from temp failed: " + ec.message());
    return static_cast<std::uint64_t>(encodeWs_.size());
}

Expected<Checkpoint, IoError>
Checkpoint::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail(IoErrorCode::OpenFailed, path,
                    "cannot open for reading");
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    if (size > 0)
        in.read(reinterpret_cast<char *>(bytes.data()), size);
    if (!in)
        return fail(IoErrorCode::Truncated, path,
                    "read failed before the file ended");
    auto ck = decode(bytes, path);
    if (!ck)
        return unexpected(std::move(ck.error()));
    return std::move(ck.value());
}

/* ------------------------------------------------- CheckpointStore -- */

CheckpointStore::CheckpointStore(std::string dir, std::string basename,
                                 std::uint32_t keep_last)
    : dir_(std::move(dir)), basename_(std::move(basename)),
      keepLast_(std::max<std::uint32_t>(keep_last, 1))
{
    checkInvariant(!dir_.empty() && !basename_.empty(),
                   "CheckpointStore: empty dir or basename");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
}

std::string
CheckpointStore::pathFor(std::uint64_t epoch) const
{
    return dir_ + "/" + basename_ + "-" + std::to_string(epoch) +
           kCheckpointExtension;
}

std::vector<std::uint64_t>
CheckpointStore::epochsOnDisk() const
{
    std::vector<std::uint64_t> epochs;
    const std::string prefix = basename_ + "-";
    const std::string suffix = kCheckpointExtension;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() <= prefix.size() + suffix.size())
            continue;
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        const std::string digits = name.substr(
            prefix.size(), name.size() - prefix.size() - suffix.size());
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            continue;
        epochs.push_back(std::strtoull(digits.c_str(), nullptr, 10));
    }
    std::sort(epochs.begin(), epochs.end());
    return epochs;
}

Expected<std::uint64_t, IoError>
CheckpointStore::save(const Checkpoint &ck, std::uint64_t epoch,
                      FaultInjector *faults) const
{
    MAXK_TRACE_SCOPE("checkpoint.save");
    auto bytes = ck.save(pathFor(epoch), faults);
    if (bytes && maxk::telemetry::armed())
        maxk::telemetry::counterAdd("checkpoint.saved_bytes",
                                    bytes.value());
    if (!bytes)
        return bytes;
    // Keep-last-N retention: prune the oldest images beyond the window.
    std::vector<std::uint64_t> epochs = epochsOnDisk();
    if (epochs.size() > keepLast_) {
        for (std::size_t i = 0; i + keepLast_ < epochs.size(); ++i) {
            std::error_code ec;
            std::filesystem::remove(pathFor(epochs[i]), ec);
        }
    }
    return bytes;
}

Expected<CheckpointStore::Loaded, IoError>
CheckpointStore::loadLatest(std::vector<IoError> *skipped) const
{
    MAXK_TRACE_SCOPE("checkpoint.restore");
    const std::vector<std::uint64_t> epochs = epochsOnDisk();
    if (epochs.empty())
        return fail(IoErrorCode::OpenFailed, dir_,
                    "no '" + basename_ + "-<epoch>" + kCheckpointExtension +
                        "' checkpoint found");
    IoError newest_error;
    bool have_error = false;
    for (std::size_t i = epochs.size(); i-- > 0;) {
        auto ck = Checkpoint::load(pathFor(epochs[i]));
        if (ck)
            return Loaded{std::move(ck.value()), epochs[i]};
        logMessage(LogLevel::Warn,
                   "CheckpointStore: skipping corrupt checkpoint: " +
                       ck.error().describe());
        if (skipped)
            skipped->push_back(ck.error());
        if (!have_error) {
            newest_error = std::move(ck.error());
            have_error = true;
        }
    }
    return unexpected(std::move(newest_error));
}

} // namespace maxk::formats
