/**
 * @file
 * Checksummed sectioned checkpoint container (".maxkckpt") — the
 * persistence half of the fault-tolerance subsystem (ISSUE 9).
 *
 * Layout (little-endian):
 *   bytes 0..7  magic "MAXKCKPT"
 *   u32          version (currently 1)
 *   u32          section count
 *   per section, sequentially:
 *     u32        name length
 *     bytes      name (UTF-8, no NUL)
 *     u64        payload bytes
 *     u64        FNV-1a 64 checksum of the payload
 *     payload
 *
 * Every section is independently checksummed, so corruption reports
 * name the damaged section and the byte offset where its payload
 * starts. Loading never terminates the process: every failure is a
 * typed IoError value (the .maxkb stance, reused).
 *
 * CheckpointStore layers crash-safe retention on top: atomic
 * write-temp-then-rename, keep-last-N pruning, and loadLatest() that
 * falls back to the previous good checkpoint when the newest one is
 * truncated or bit-flipped. Fault hooks (site "checkpoint.write")
 * let the injection subsystem corrupt images deterministically.
 */

#ifndef MAXK_GRAPH_FORMATS_CHECKPOINT_HH
#define MAXK_GRAPH_FORMATS_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "graph/formats/io_error.hh"
#include "tensor/matrix.hh"

namespace maxk::formats
{

/** Leading bytes of a .maxkckpt file. */
inline constexpr char kCheckpointMagic[8] = {'M', 'A', 'X', 'K',
                                             'C', 'K', 'P', 'T'};

/** Preferred file extension for checkpoint images. */
inline constexpr const char *kCheckpointExtension = ".maxkckpt";

/**
 * An in-memory checkpoint image: named byte sections plus typed
 * helpers for the shapes the trainers persist. Section payloads are
 * raw std::vector<std::uint8_t> buffers (untracked by AllocProbe), and
 * set() reuses an existing section's capacity, so repeated saves of a
 * fixed-shape trainer state perform zero tracked allocations after the
 * first — the contract bench_checkpoint pins.
 */
class Checkpoint
{
  public:
    Checkpoint() = default;

    /** Overwrite-or-create section `name` with a copy of the bytes. */
    void set(const std::string &name, const void *data,
             std::size_t bytes);

    bool has(const std::string &name) const;

    /** Payload of section `name`; typed IoError when absent. */
    Expected<const std::vector<std::uint8_t> *, IoError>
    section(const std::string &name) const;

    /* Typed helpers (little-endian raw encodings). */
    void setU64(const std::string &name, std::uint64_t v);
    Expected<std::uint64_t, IoError> getU64(const std::string &name) const;

    void setU64s(const std::string &name,
                 const std::vector<std::uint64_t> &v);
    Expected<std::vector<std::uint64_t>, IoError>
    getU64s(const std::string &name) const;

    void setDoubles(const std::string &name,
                    const std::vector<double> &v);
    Expected<std::vector<double>, IoError>
    getDoubles(const std::string &name) const;

    void setU32s(const std::string &name,
                 const std::vector<std::uint32_t> &v);
    Expected<std::vector<std::uint32_t>, IoError>
    getU32s(const std::string &name) const;

    /** Matrix section: u64 rows, u64 cols, rows*cols f32 payload. */
    void setMatrix(const std::string &name, const Matrix &m);
    /** Restores into `m` via ensureShape (no tracked allocation when
     *  the shape already matches). */
    Expected<std::monostate, IoError>
    getMatrix(const std::string &name, Matrix &m) const;

    /** Serialise to the container byte layout (reuses `out`'s
     *  capacity). */
    void encode(std::vector<std::uint8_t> &out) const;

    /** Parse a container image; `path` labels errors. */
    static Expected<Checkpoint, IoError>
    decode(const std::vector<std::uint8_t> &bytes,
           const std::string &path);

    /**
     * Atomic save: encode, apply any scheduled checkpoint-write fault
     * (site "checkpoint.write": CheckpointTruncate cuts `payload`
     * bytes off the tail, CheckpointBitFlip flips bit `payload % size`),
     * write to `path + ".tmp"`, then rename over `path`. Returns the
     * byte count written.
     */
    Expected<std::uint64_t, IoError>
    save(const std::string &path, FaultInjector *faults = nullptr) const;

    /** Load + validate every section checksum. */
    static Expected<Checkpoint, IoError> load(const std::string &path);

    std::size_t sectionCount() const { return names_.size(); }

    /** Encoded size of the current image (header + all sections). */
    std::uint64_t encodedBytes() const;

  private:
    // Parallel arrays, insertion-ordered: lookup is linear (checkpoint
    // images hold tens of sections, not thousands) and re-encoding is a
    // stable byte-for-byte function of the set() sequence.
    std::vector<std::string> names_;
    std::vector<std::vector<std::uint8_t>> payloads_;
    mutable std::vector<std::uint8_t> encodeWs_; //!< save() scratch

    std::int64_t indexOf(const std::string &name) const;
};

/**
 * Directory of rotated checkpoints: `dir/basename-<epoch>.maxkckpt`.
 * save() is atomic (temp + rename) and prunes to the newest keepLast
 * images; loadLatest() walks newest-to-oldest and returns the first
 * image whose checksums verify, so a corrupted newest checkpoint
 * degrades to the previous good one instead of failing the resume.
 */
class CheckpointStore
{
  public:
    CheckpointStore(std::string dir, std::string basename,
                    std::uint32_t keep_last = 2);

    /** Save `ck` as the epoch-`epoch` image; prune old images. */
    Expected<std::uint64_t, IoError>
    save(const Checkpoint &ck, std::uint64_t epoch,
         FaultInjector *faults = nullptr) const;

    struct Loaded
    {
        Checkpoint checkpoint;
        std::uint64_t epoch = 0;
    };

    /**
     * Newest verifiable checkpoint, or a typed error: NotFound-style
     * OpenFailed when no image exists, else the newest image's load
     * error when every image is corrupt. Corrupt-but-skipped images are
     * reported through `skipped` (for logging / tests) when non-null.
     */
    Expected<Loaded, IoError>
    loadLatest(std::vector<IoError> *skipped = nullptr) const;

    /** Epochs with an image on disk, ascending. */
    std::vector<std::uint64_t> epochsOnDisk() const;

    std::string pathFor(std::uint64_t epoch) const;
    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
    std::string basename_;
    std::uint32_t keepLast_;
};

} // namespace maxk::formats

#endif // MAXK_GRAPH_FORMATS_CHECKPOINT_HH
