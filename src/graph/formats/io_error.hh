/**
 * @file
 * Error taxonomy for the dataset-ingestion layer. Every loader in
 * graph/formats returns Expected<CsrGraph, IoError> so that malformed
 * input is a *value* the caller (and the test suite) can inspect, not a
 * process exit. The legacy graph/io.hh entry points keep their fatal()
 * contract by wrapping these results.
 */

#ifndef MAXK_GRAPH_FORMATS_IO_ERROR_HH
#define MAXK_GRAPH_FORMATS_IO_ERROR_HH

#include <cstdint>
#include <string>

#include "common/expected.hh"
#include "graph/csr.hh"

namespace maxk
{

/** What went wrong while reading or writing a graph file. */
enum class IoErrorCode
{
    OpenFailed,       //!< file missing / unreadable / unwritable
    BadMagic,         //!< leading magic does not name a known format
    BadVersion,       //!< known magic, unsupported version
    BadHeader,        //!< header counts absent, unparsable, or absurd
    Truncated,        //!< file ends before the promised payload does
    ParseError,       //!< non-numeric token where a number is required
    RangeError,       //!< node/column index out of [0, numNodes)
    CountMismatch,    //!< rowPtr/nnz/edge counts disagree
    DuplicateEdge,    //!< strict (dedup-off) load saw a repeated edge
    TrailingData,     //!< well-formed payload followed by garbage
    ChecksumMismatch, //!< binary payload does not hash to the header value
    WriteFailed,      //!< output stream failed mid-write
};

/** Stable name for an IoErrorCode (test assertions, CLI output). */
const char *ioErrorCodeName(IoErrorCode code);

/** A failed graph I/O operation: code + location + human message. */
struct IoError
{
    IoErrorCode code = IoErrorCode::OpenFailed;
    std::string path;        //!< file the failure occurred in
    std::uint64_t line = 0;  //!< 1-based line for text formats, 0 = n/a
    std::string message;     //!< human-readable detail

    /** One-line rendering: "path:line: message [code]". */
    std::string describe() const;
};

/** The result type every graph loader returns. */
using GraphResult = Expected<CsrGraph, IoError>;

} // namespace maxk

#endif // MAXK_GRAPH_FORMATS_IO_ERROR_HH
