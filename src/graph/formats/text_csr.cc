#include "graph/formats/text_csr.hh"

#include <cstdio>
#include <fstream>
#include <limits>

#include "graph/formats/detail.hh"
#include "graph/formats/scan.hh"

namespace maxk::formats
{

namespace
{

Unexpected<IoError>
fail(IoErrorCode code, const std::string &path, std::uint64_t line,
     std::string msg)
{
    return unexpected(IoError{code, path, line, std::move(msg)});
}

} // namespace

GraphResult
parseTextCsr(std::string_view data, const std::string &path)
{
    TokenScanner sc(data);
    std::string_view tok;

    if (!sc.next(tok))
        return fail(IoErrorCode::Truncated, path, 0,
                    "empty file: missing maxk-csr header");
    if (tok != kTextCsrMagic)
        return fail(IoErrorCode::BadMagic, path, sc.line(),
                    "bad header: expected '" + std::string(kTextCsrMagic) +
                        "' magic, got '" + std::string(tok) + "'");

    std::uint64_t version = 0;
    if (!sc.next(tok) || !parseU64(tok, version))
        return fail(IoErrorCode::BadHeader, path, sc.currentLine(),
                    "bad header: missing or non-numeric version");
    if (version != 1)
        return fail(IoErrorCode::BadVersion, path, sc.line(),
                    "bad header: unsupported version " +
                        std::to_string(version));

    std::uint64_t num_nodes = 0, num_edges = 0;
    if (!sc.next(tok) || !parseU64(tok, num_nodes))
        return fail(IoErrorCode::BadHeader, path, sc.currentLine(),
                    "bad header: missing or non-numeric node count");
    if (!sc.next(tok) || !parseU64(tok, num_edges))
        return fail(IoErrorCode::BadHeader, path, sc.currentLine(),
                    "bad header: missing or non-numeric edge count");

    constexpr std::uint64_t kIdxMax = std::numeric_limits<NodeId>::max();
    if (num_nodes > kIdxMax || num_edges > kIdxMax)
        return fail(IoErrorCode::BadHeader, path, sc.line(),
                    "bad header: counts exceed 32-bit index space");
    // Each payload token occupies at least one byte, so counts larger
    // than the file itself are lies — reject before allocating for them.
    if (num_nodes > data.size() || num_edges > data.size())
        return fail(IoErrorCode::BadHeader, path, sc.line(),
                    "bad header: counts exceed file size");

    std::vector<EdgeId> row_ptr(num_nodes + 1);
    for (std::size_t i = 0; i < row_ptr.size(); ++i) {
        std::uint64_t v = 0;
        if (!sc.next(tok))
            return fail(IoErrorCode::Truncated, path, sc.currentLine(),
                        "truncated rowPtr: expected " +
                            std::to_string(row_ptr.size()) +
                            " entries, got " + std::to_string(i));
        if (!parseU64(tok, v) || v > kIdxMax)
            return fail(IoErrorCode::ParseError, path, sc.line(),
                        "rowPtr: non-numeric or oversized token '" +
                            std::string(tok) + "'");
        row_ptr[i] = static_cast<EdgeId>(v);
    }

    std::vector<NodeId> col_idx(num_edges);
    for (std::size_t i = 0; i < col_idx.size(); ++i) {
        std::uint64_t v = 0;
        if (!sc.next(tok))
            return fail(IoErrorCode::Truncated, path, sc.currentLine(),
                        "truncated colIdx: expected " +
                            std::to_string(num_edges) + " entries, got " +
                            std::to_string(i));
        if (!parseU64(tok, v) || v > kIdxMax)
            return fail(IoErrorCode::ParseError, path, sc.line(),
                        "colIdx: non-numeric or oversized token '" +
                            std::string(tok) + "'");
        col_idx[i] = static_cast<NodeId>(v);
    }

    std::vector<Float> values;
    if (!sc.atEnd()) {
        values.resize(num_edges);
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (!sc.next(tok))
                return fail(IoErrorCode::Truncated, path, sc.currentLine(),
                            "truncated values: expected " +
                                std::to_string(num_edges) +
                                " entries, got " + std::to_string(i));
            if (!parseF32(tok, values[i]))
                return fail(IoErrorCode::ParseError, path, sc.line(),
                            "values: non-numeric token '" +
                                std::string(tok) + "'");
        }
    }

    // The legacy loader silently ignored anything after the payload
    // (including a garbage token where the values block would start,
    // which it treated as "no values"). Reject it instead.
    if (!sc.atEnd()) {
        sc.next(tok);
        return fail(IoErrorCode::TrailingData, path, sc.line(),
                    "trailing data after payload: '" + std::string(tok) +
                        "'");
    }

    if (auto e = validateCsrArrays(path, num_nodes, row_ptr, col_idx))
        return unexpected(std::move(*e));

    return CsrGraph::fromCsr(static_cast<NodeId>(num_nodes),
                             std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

GraphResult
loadTextCsr(const std::string &path)
{
    std::string data;
    if (!readFileToString(path, data))
        return fail(IoErrorCode::OpenFailed, path, 0,
                    "cannot open for reading");
    return parseTextCsr(data, path);
}

bool
saveTextCsr(const CsrGraph &g, const std::string &path, bool with_values)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << kTextCsrMagic << " 1 " << g.numNodes() << ' ' << g.numEdges()
        << '\n';
    for (std::size_t i = 0; i < g.rowPtr().size(); ++i)
        out << (i ? " " : "") << g.rowPtr()[i];
    out << '\n';
    for (std::size_t i = 0; i < g.colIdx().size(); ++i)
        out << (i ? " " : "") << g.colIdx()[i];
    out << '\n';
    if (with_values) {
        char buf[64];
        for (std::size_t i = 0; i < g.values().size(); ++i) {
            std::snprintf(buf, sizeof(buf), "%.9g",
                          static_cast<double>(g.values()[i]));
            out << (i ? " " : "") << buf;
        }
        out << '\n';
    }
    return static_cast<bool>(out);
}

} // namespace maxk::formats
