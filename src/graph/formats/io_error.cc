#include "graph/formats/io_error.hh"

namespace maxk
{

const char *
ioErrorCodeName(IoErrorCode code)
{
    switch (code) {
      case IoErrorCode::OpenFailed:       return "OpenFailed";
      case IoErrorCode::BadMagic:         return "BadMagic";
      case IoErrorCode::BadVersion:       return "BadVersion";
      case IoErrorCode::BadHeader:        return "BadHeader";
      case IoErrorCode::Truncated:        return "Truncated";
      case IoErrorCode::ParseError:       return "ParseError";
      case IoErrorCode::RangeError:       return "RangeError";
      case IoErrorCode::CountMismatch:    return "CountMismatch";
      case IoErrorCode::DuplicateEdge:    return "DuplicateEdge";
      case IoErrorCode::TrailingData:     return "TrailingData";
      case IoErrorCode::ChecksumMismatch: return "ChecksumMismatch";
      case IoErrorCode::WriteFailed:      return "WriteFailed";
    }
    return "?";
}

std::string
IoError::describe() const
{
    std::string out = path.empty() ? std::string("<stream>") : path;
    if (line != 0) {
        // Separate appends: `out += ":" + ...` trips GCC's -Wrestrict
        // false positive at -O3, which -Werror turns into a Release
        // build failure.
        out += ':';
        out += std::to_string(line);
    }
    out += ": ";
    out += message;
    out += " [";
    out += ioErrorCodeName(code);
    out += "]";
    return out;
}

} // namespace maxk
