/**
 * @file
 * Binary CSR container (".maxkb") for fast reload of converted real
 * datasets: parsing a multi-hundred-MB text edge list once and
 * reloading the CSR arrays as raw bytes afterwards is the difference
 * between minutes and milliseconds of ingest (cf. PyTorch-Direct's
 * observation that data loading, not kernels, limits GNN training at
 * scale).
 *
 * Layout (little-endian, fixed 40-byte header):
 *   bytes  0..7   magic "MAXKBIN\0"
 *   u32            version (currently 1)
 *   u32            flags (bit 0: fp32 values present;
 *                         bit 1: per-section checksum table present)
 *   u64            numNodes
 *   u64            numEdges
 *   u64            FNV-1a 64 checksum of the payload bytes
 *   payload        (numNodes+1) x u64 indptr
 *                  numEdges     x u32 indices
 *                  [numEdges    x f32 values]
 *   [table]        one u64 independent FNV-1a per present section
 *                  (indptr, indices, [values]) — written by default
 *                  since ISSUE 9; placed AFTER the payload so payload
 *                  byte offsets are unchanged from table-less files
 *
 * indptr is widened to u64 on disk so the container outlives the
 * current 32-bit EdgeId (a load simply rejects files that do not fit).
 *
 * The whole-payload checksum is the corruption detector; the section
 * table exists for diagnostics: on a mismatch, a load with a table
 * names the damaged section and its absolute byte offset instead of
 * the generic whole-payload message older files get.
 */

#ifndef MAXK_GRAPH_FORMATS_BINARY_CSR_HH
#define MAXK_GRAPH_FORMATS_BINARY_CSR_HH

#include <string>

#include "graph/formats/io_error.hh"

namespace maxk::formats
{

/** Leading bytes of a .maxkb file. */
inline constexpr char kBinaryCsrMagic[8] = {'M', 'A', 'X', 'K',
                                            'B', 'I', 'N', '\0'};

/** Preferred file extension for the binary container. */
inline constexpr const char *kBinaryCsrExtension = ".maxkb";

/** Load a binary CSR dump; never terminates the process. */
GraphResult loadBinaryCsr(const std::string &path);

/** Parse binary CSR content already in memory (`path` labels errors). */
GraphResult parseBinaryCsr(std::string_view data, const std::string &path);

/** Serialise to the binary container. Returns false on I/O failure. */
bool saveBinaryCsr(const CsrGraph &g, const std::string &path,
                   bool with_values = true);

/** FNV-1a 64-bit over a byte range (exposed for tests / the CLI). */
std::uint64_t fnv1a64(const void *data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

} // namespace maxk::formats

#endif // MAXK_GRAPH_FORMATS_BINARY_CSR_HH
