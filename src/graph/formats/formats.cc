#include "graph/formats/formats.hh"

#include <cstring>
#include <fstream>

#include "graph/formats/scan.hh"

namespace maxk::formats
{

const char *
graphFormatName(GraphFormat f)
{
    switch (f) {
      case GraphFormat::BinaryCsr: return "bincsr";
      case GraphFormat::TextCsr:   return "textcsr";
      case GraphFormat::EdgeList:  return "edgelist";
    }
    return "?";
}

std::optional<GraphFormat>
graphFormatFromName(const std::string &name)
{
    if (name == "bincsr" || name == "binary" || name == "maxkb")
        return GraphFormat::BinaryCsr;
    if (name == "textcsr" || name == "csr")
        return GraphFormat::TextCsr;
    if (name == "edgelist" || name == "el" || name == "edges")
        return GraphFormat::EdgeList;
    return std::nullopt;
}

std::optional<GraphFormat>
graphFormatFromExtension(const std::string &path)
{
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos)
        return std::nullopt;
    const std::string ext = path.substr(dot);
    if (ext == kBinaryCsrExtension)
        return GraphFormat::BinaryCsr;
    if (ext == ".csr" || ext == ".maxkcsr")
        return GraphFormat::TextCsr;
    if (ext == ".txt" || ext == ".tsv" || ext == ".el" || ext == ".edges")
        return GraphFormat::EdgeList;
    return std::nullopt;
}

Expected<GraphFormat, IoError>
sniffFormat(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return unexpected(IoError{IoErrorCode::OpenFailed, path, 0,
                                  "cannot open for reading"});
    char head[64] = {};
    in.read(head, sizeof(head));
    const std::size_t got = static_cast<std::size_t>(in.gcount());

    if (got >= sizeof(kBinaryCsrMagic) &&
        std::memcmp(head, kBinaryCsrMagic, sizeof(kBinaryCsrMagic)) == 0)
        return GraphFormat::BinaryCsr;

    TokenScanner sc(std::string_view(head, got));
    std::string_view tok;
    if (sc.next(tok) && tok == kTextCsrMagic)
        return GraphFormat::TextCsr;

    // Everything else — including comment-led SNAP headers — parses as
    // an edge list; the edge-list loader produces the precise error if
    // it is not one.
    return GraphFormat::EdgeList;
}

GraphResult
loadGraphAs(GraphFormat format, const std::string &path,
            const EdgeListOptions &elopt)
{
    switch (format) {
      case GraphFormat::BinaryCsr: return loadBinaryCsr(path);
      case GraphFormat::TextCsr:   return loadTextCsr(path);
      case GraphFormat::EdgeList:  return loadEdgeList(path, elopt);
    }
    return unexpected(IoError{IoErrorCode::BadMagic, path, 0,
                              "unknown graph format"});
}

GraphResult
loadAnyGraph(const std::string &path, const EdgeListOptions &elopt)
{
    auto format = sniffFormat(path);
    if (!format)
        return unexpected(std::move(format.error()));
    return loadGraphAs(format.value(), path, elopt);
}

bool
saveGraphAs(GraphFormat format, const CsrGraph &g, const std::string &path,
            bool with_values)
{
    switch (format) {
      case GraphFormat::BinaryCsr:
        return saveBinaryCsr(g, path, with_values);
      case GraphFormat::TextCsr:
        return saveTextCsr(g, path, with_values);
      case GraphFormat::EdgeList:
        return saveEdgeList(g, path, with_values);
    }
    return false;
}

} // namespace maxk::formats
