/**
 * @file
 * Internal helpers shared by the format loaders: whole-file slurping and
 * the CSR-invariant check that turns broken arrays into IoError values
 * (CsrGraph::fromCsr would panic on them, which is the right contract
 * for programmer-built arrays but not for bytes that came off disk).
 */

#ifndef MAXK_GRAPH_FORMATS_DETAIL_HH
#define MAXK_GRAPH_FORMATS_DETAIL_HH

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "graph/formats/io_error.hh"

namespace maxk::formats
{

/** Read a whole file (binary mode, so byte counts are exact). */
inline bool
readFileToString(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return static_cast<bool>(in) || in.eof();
}

/**
 * Check the CSR invariants fromCsr() would enforce, as a recoverable
 * error: rowPtr starts at 0, is monotone, ends at nnz; columns are in
 * range and strictly increasing within each row.
 */
inline std::optional<IoError>
validateCsrArrays(const std::string &path, std::uint64_t num_nodes,
                  const std::vector<EdgeId> &row_ptr,
                  const std::vector<NodeId> &col_idx)
{
    auto bad = [&](IoErrorCode code, const std::string &what) {
        return IoError{code, path, 0, "invalid CSR structure: " + what};
    };
    if (row_ptr.empty() || row_ptr.front() != 0)
        return bad(IoErrorCode::CountMismatch, "rowPtr must start at 0");
    for (std::size_t v = 0; v + 1 < row_ptr.size(); ++v)
        if (row_ptr[v] > row_ptr[v + 1])
            return bad(IoErrorCode::CountMismatch,
                       "rowPtr not monotone at row " + std::to_string(v));
    if (row_ptr.back() != col_idx.size())
        return bad(IoErrorCode::CountMismatch,
                   "rowPtr ends at " + std::to_string(row_ptr.back()) +
                       " but nnz is " + std::to_string(col_idx.size()));
    for (std::size_t v = 0; v + 1 < row_ptr.size(); ++v) {
        for (EdgeId e = row_ptr[v]; e < row_ptr[v + 1]; ++e) {
            if (col_idx[e] >= num_nodes)
                return bad(IoErrorCode::RangeError,
                           "column " + std::to_string(col_idx[e]) +
                               " out of range in row " + std::to_string(v));
            if (e > row_ptr[v] && col_idx[e - 1] >= col_idx[e])
                return bad(IoErrorCode::CountMismatch,
                           "columns unsorted or duplicated in row " +
                               std::to_string(v));
        }
    }
    return std::nullopt;
}

} // namespace maxk::formats

#endif // MAXK_GRAPH_FORMATS_DETAIL_HH
