#include "graph/io.hh"

#include "common/logging.hh"
#include "graph/formats/text_csr.hh"

namespace maxk
{

bool
saveGraph(const CsrGraph &g, const std::string &path, bool with_values)
{
    return formats::saveTextCsr(g, path, with_values);
}

CsrGraph
loadGraph(const std::string &path)
{
    GraphResult result = formats::loadTextCsr(path);
    if (!result)
        fatal("loadGraph: " + result.error().describe());
    return std::move(result.value());
}

} // namespace maxk
