#include "graph/io.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace maxk
{

bool
saveGraph(const CsrGraph &g, const std::string &path, bool with_values)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "maxk-csr 1 " << g.numNodes() << ' ' << g.numEdges() << '\n';
    for (std::size_t i = 0; i < g.rowPtr().size(); ++i)
        out << (i ? " " : "") << g.rowPtr()[i];
    out << '\n';
    for (std::size_t i = 0; i < g.colIdx().size(); ++i)
        out << (i ? " " : "") << g.colIdx()[i];
    out << '\n';
    if (with_values) {
        for (std::size_t i = 0; i < g.values().size(); ++i)
            out << (i ? " " : "") << g.values()[i];
        out << '\n';
    }
    return static_cast<bool>(out);
}

CsrGraph
loadGraph(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadGraph: cannot open " + path);

    std::string magic;
    int version = 0;
    std::uint64_t num_nodes = 0, num_edges = 0;
    in >> magic >> version >> num_nodes >> num_edges;
    if (magic != "maxk-csr" || version != 1)
        fatal("loadGraph: bad header in " + path);

    std::vector<EdgeId> row_ptr(num_nodes + 1);
    for (auto &v : row_ptr)
        if (!(in >> v))
            fatal("loadGraph: truncated rowPtr in " + path);

    std::vector<NodeId> col_idx(num_edges);
    for (auto &v : col_idx)
        if (!(in >> v))
            fatal("loadGraph: truncated colIdx in " + path);

    std::vector<Float> values;
    Float probe;
    if (in >> probe) {
        values.resize(num_edges);
        values[0] = probe;
        for (std::size_t i = 1; i < num_edges; ++i)
            if (!(in >> values[i]))
                fatal("loadGraph: truncated values in " + path);
    }

    return CsrGraph::fromCsr(static_cast<NodeId>(num_nodes),
                             std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

} // namespace maxk
