/**
 * @file
 * Dataset registry: the paper's Table 1 metadata plus scaled synthetic
 * twins that this offline reproduction materialises in place of the real
 * downloads (see DESIGN.md Sec. 1 for the substitution argument).
 *
 * Twin scaling rule: preserve the paper's average degree exactly, cap the
 * node count so that nnz stays below a simulation budget, and generate a
 * power-law (RMAT) structure for kernel benches or a planted-partition
 * (SBM) structure for training benches that need labels.
 */

#ifndef MAXK_GRAPH_REGISTRY_HH
#define MAXK_GRAPH_REGISTRY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "graph/csr.hh"
#include "graph/generators.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/** Structural family used for a dataset twin. */
enum class GraphKind { PowerLaw, Community, Mesh };

/** Registry entry: paper-published size plus twin parameters. */
struct DatasetInfo
{
    std::string name;          //!< paper dataset name (Table 1)
    std::uint64_t paperNodes;  //!< |V| reported in Table 1
    std::uint64_t paperEdges;  //!< |E| reported in Table 1
    GraphKind kind;            //!< twin structure family

    NodeId twinNodes;          //!< nodes in the synthetic twin
    EdgeId twinEdges;          //!< approximate nnz in the twin

    /**
     * Explicit on-disk graph file for this entry (any format
     * formats::loadAnyGraph speaks). Empty = resolve via the
     * MAXK_DATASET_DIR environment directory, falling back to the
     * synthetic twin when nothing is found.
     */
    std::string onDiskPath;

    double paperAvgDegree() const
    {
        return paperNodes ? static_cast<double>(paperEdges) / paperNodes
                          : 0.0;
    }
};

/** Metric reported for a training task (Table 5 columns). */
enum class MetricKind { Accuracy, MicroF1, RocAuc };

const char *metricName(MetricKind m);

/** Training-task description for the five system-evaluation datasets. */
struct TrainingTask
{
    DatasetInfo info;
    std::uint32_t numClasses;   //!< label classes (or label bits)
    std::uint32_t featureDim;   //!< input feature dimension
    bool multiLabel;            //!< BCE multi-label (Yelp, proteins twins)
    MetricKind metric;          //!< headline metric for this dataset
    double featureNoise;        //!< feature corruption level (task difficulty)
    double intraEdgeFraction;   //!< SBM homophily

    /**
     * Accuracy-twin scale. Accuracy experiments run on a smaller graph
     * than the kernel-timing twins (DESIGN.md: timing shape depends on
     * structural scale, accuracy only on task learnability), so the
     * training twin caps nodes/degree further.
     */
    NodeId accuracyNodes;
    double accuracyAvgDegree;
};

/** All 24 Table-1 graphs in paper order. */
const std::vector<DatasetInfo> &kernelSuite();

/** Look up a kernel-suite entry by name; nullopt if unknown. */
std::optional<DatasetInfo> findDataset(const std::string &name);

/** The five system-evaluation datasets of Table 3 / Fig. 9 / Table 5. */
const std::vector<TrainingTask> &trainingSuite();

/** Look up a training task by dataset name. */
std::optional<TrainingTask> findTrainingTask(const std::string &name);

/** Environment variable naming the real-dataset directory. */
inline constexpr const char *kDatasetDirEnv = "MAXK_DATASET_DIR";

/**
 * Search $MAXK_DATASET_DIR for `<name>.<ext>` over the known graph
 * extensions (.maxkb first — the fast container wins — then .csr,
 * .maxkcsr, .txt, .tsv, .el, .edges). nullopt when the variable is
 * unset or nothing matches.
 */
std::optional<std::string> resolveDatasetFile(const std::string &name);

/**
 * The on-disk source an entry will actually load from: its explicit
 * onDiskPath if set, else the environment search. nullopt = synthetic
 * twin.
 */
std::optional<std::string> resolveDatasetSource(const DatasetInfo &info);

/**
 * Resolve once and pin the result on the entry (onDiskPath), so a
 * caller's "came from disk" label and the graph materializeGraph
 * actually loads cannot diverge across two filesystem probes. Returns
 * the pinned source, nullopt for a synthetic twin.
 */
std::optional<std::string> pinResolvedSource(DatasetInfo &info);

/**
 * Materialise the graph for a registry entry: the resolved on-disk
 * dataset when one exists (fatal() on malformed files — a resolved
 * path that does not parse is a configuration error, not a recoverable
 * condition), otherwise the synthetic twin.
 */
CsrGraph materializeGraph(const DatasetInfo &info, Rng &rng);

/**
 * Materialise a labelled training twin: SBM graph + labels + features.
 * Features are noisy one-hot community indicators lifted to featureDim via
 * a fixed random projection, so the task is learnable but not trivial.
 */
struct TrainingData
{
    CsrGraph graph;
    Matrix features;                        //!< N x featureDim inputs
    std::vector<std::uint32_t> labels;      //!< one label per node
    std::vector<std::uint8_t> trainMask;    //!< 1 = training node
    std::vector<std::uint8_t> valMask;
    std::vector<std::uint8_t> testMask;
};
TrainingData materializeTrainingData(const TrainingTask &task, Rng &rng);

} // namespace maxk

#endif // MAXK_GRAPH_REGISTRY_HH
