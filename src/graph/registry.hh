/**
 * @file
 * Dataset registry: the paper's Table 1 metadata plus scaled synthetic
 * twins that this offline reproduction materialises in place of the real
 * downloads (see DESIGN.md Sec. 1 for the substitution argument).
 *
 * Twin scaling rule: preserve the paper's average degree exactly, cap the
 * node count so that nnz stays below a simulation budget, and generate a
 * power-law (RMAT) structure for kernel benches or a planted-partition
 * (SBM) structure for training benches that need labels.
 */

#ifndef MAXK_GRAPH_REGISTRY_HH
#define MAXK_GRAPH_REGISTRY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "graph/csr.hh"
#include "graph/generators.hh"
#include "tensor/matrix.hh"

namespace maxk
{

/** Structural family used for a dataset twin. */
enum class GraphKind { PowerLaw, Community, Mesh };

/** Registry entry: paper-published size plus twin parameters. */
struct DatasetInfo
{
    std::string name;          //!< paper dataset name (Table 1)
    std::uint64_t paperNodes;  //!< |V| reported in Table 1
    std::uint64_t paperEdges;  //!< |E| reported in Table 1
    GraphKind kind;            //!< twin structure family

    NodeId twinNodes;          //!< nodes in the synthetic twin
    EdgeId twinEdges;          //!< approximate nnz in the twin

    double paperAvgDegree() const
    {
        return paperNodes ? static_cast<double>(paperEdges) / paperNodes
                          : 0.0;
    }
};

/** Metric reported for a training task (Table 5 columns). */
enum class MetricKind { Accuracy, MicroF1, RocAuc };

const char *metricName(MetricKind m);

/** Training-task description for the five system-evaluation datasets. */
struct TrainingTask
{
    DatasetInfo info;
    std::uint32_t numClasses;   //!< label classes (or label bits)
    std::uint32_t featureDim;   //!< input feature dimension
    bool multiLabel;            //!< BCE multi-label (Yelp, proteins twins)
    MetricKind metric;          //!< headline metric for this dataset
    double featureNoise;        //!< feature corruption level (task difficulty)
    double intraEdgeFraction;   //!< SBM homophily

    /**
     * Accuracy-twin scale. Accuracy experiments run on a smaller graph
     * than the kernel-timing twins (DESIGN.md: timing shape depends on
     * structural scale, accuracy only on task learnability), so the
     * training twin caps nodes/degree further.
     */
    NodeId accuracyNodes;
    double accuracyAvgDegree;
};

/** All 24 Table-1 graphs in paper order. */
const std::vector<DatasetInfo> &kernelSuite();

/** Look up a kernel-suite entry by name; nullopt if unknown. */
std::optional<DatasetInfo> findDataset(const std::string &name);

/** The five system-evaluation datasets of Table 3 / Fig. 9 / Table 5. */
const std::vector<TrainingTask> &trainingSuite();

/** Look up a training task by dataset name. */
std::optional<TrainingTask> findTrainingTask(const std::string &name);

/** Materialise the synthetic twin graph for a registry entry. */
CsrGraph materializeGraph(const DatasetInfo &info, Rng &rng);

/**
 * Materialise a labelled training twin: SBM graph + labels + features.
 * Features are noisy one-hot community indicators lifted to featureDim via
 * a fixed random projection, so the task is learnable but not trivial.
 */
struct TrainingData
{
    CsrGraph graph;
    Matrix features;                        //!< N x featureDim inputs
    std::vector<std::uint32_t> labels;      //!< one label per node
    std::vector<std::uint8_t> trainMask;    //!< 1 = training node
    std::vector<std::uint8_t> valMask;
    std::vector<std::uint8_t> testMask;
};
TrainingData materializeTrainingData(const TrainingTask &task, Rng &rng);

} // namespace maxk

#endif // MAXK_GRAPH_REGISTRY_HH
