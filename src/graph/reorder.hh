/**
 * @file
 * Graph reordering for locality.
 *
 * The paper observes (Sec. 2.2) that GNNAdvisor's kernel gains come
 * mainly from the Rabbit order — a community-clustering node
 * permutation that improves the cache locality of neighbour fetches.
 * This module provides lightweight stand-ins with the same intent:
 *
 *  - bfsOrder: breadth-first relabelling from a high-degree seed
 *    (Cuthill-McKee flavour), clustering neighbourhoods;
 *  - degreeOrder: hubs first, packing hot rows into few cache lines;
 *  - randomOrder: the adversarial baseline for ablations.
 *
 * The ablation bench quantifies their effect on the simulated L2 hit
 * rate of SpMM vs SpGEMM — reproducing the observation that CBSR's
 * traffic reduction, not reordering, is where MaxK-GNN's win comes
 * from.
 */

#ifndef MAXK_GRAPH_REORDER_HH
#define MAXK_GRAPH_REORDER_HH

#include <vector>

#include "common/rng.hh"
#include "graph/csr.hh"

namespace maxk
{

/** A permutation: newId = perm[oldId]. Always a bijection. */
using Permutation = std::vector<NodeId>;

/** BFS (Cuthill-McKee style) relabelling from the max-degree vertex of
 *  each component; isolated vertices go last. */
Permutation bfsOrder(const CsrGraph &g);

/** Descending-degree relabelling (hubs get the smallest ids). */
Permutation degreeOrder(const CsrGraph &g);

/** Uniformly random relabelling. */
Permutation randomOrder(NodeId num_nodes, Rng &rng);

/** Identity permutation. */
Permutation identityOrder(NodeId num_nodes);

/** True iff perm is a bijection on [0, n). */
bool isPermutation(const Permutation &perm);

/** Relabel the graph: node v becomes perm[v]; rows re-sorted. */
CsrGraph applyPermutation(const CsrGraph &g, const Permutation &perm);

/**
 * Average neighbour-id distance |v - u| over all edges, normalised by
 * |V| — the locality proxy that correlates with cache behaviour
 * (smaller is better).
 */
double neighbourDistance(const CsrGraph &g);

} // namespace maxk

#endif // MAXK_GRAPH_REORDER_HH
