#include "graph/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

namespace maxk
{

DegreeStats
computeDegreeStats(const CsrGraph &g)
{
    DegreeStats s;
    s.numNodes = g.numNodes();
    s.numEdges = g.numEdges();
    if (g.numNodes() == 0)
        return s;

    std::vector<EdgeId> degs(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        degs[v] = g.degree(v);
    std::sort(degs.begin(), degs.end());

    s.avgDegree = g.avgDegree();
    s.maxDegree = degs.back();
    s.medianDegree = degs[degs.size() / 2];
    s.p99Degree = degs[static_cast<std::size_t>(degs.size() * 0.99)];
    s.skewRatio = s.avgDegree > 0.0 ? s.maxDegree / s.avgDegree : 0.0;
    s.density = static_cast<double>(s.numEdges) /
                (static_cast<double>(s.numNodes) * s.numNodes);

    double var = 0.0;
    std::size_t empty = 0;
    for (const EdgeId d : degs) {
        const double diff = static_cast<double>(d) - s.avgDegree;
        var += diff * diff;
        if (d == 0)
            ++empty;
    }
    s.stdDegree = std::sqrt(var / degs.size());
    s.emptyRowFraction = static_cast<double>(empty) / degs.size();

    // Gini over the sorted degree vector:
    //   G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n,  i is 1-based.
    double weighted = 0.0, total = 0.0;
    for (std::size_t i = 0; i < degs.size(); ++i) {
        weighted += static_cast<double>(i + 1) * degs[i];
        total += degs[i];
    }
    const double n = static_cast<double>(degs.size());
    if (total > 0.0)
        s.gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n;
    return s;
}

const DegreeStats &
CsrGraph::degreeStatsCached() const
{
    if (!statsCache_) {
        statsCache_ = std::make_shared<const DegreeStats>(
            computeDegreeStats(*this));
        ++statsBuilds_;
    }
    return *statsCache_;
}

std::string
describe(const DegreeStats &s)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "|V|=%u |E|=%u avg=%.1f max=%u med=%u p99=%u gini=%.3f "
                  "skew=%.1f std=%.1f dens=%.2e empty=%.3f",
                  s.numNodes, s.numEdges, s.avgDegree, s.maxDegree,
                  s.medianDegree, s.p99Degree, s.gini, s.skewRatio,
                  s.stdDegree, s.density, s.emptyRowFraction);
    return buf;
}

} // namespace maxk
