#include "graph/partition.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace maxk
{

std::vector<NodeId>
Partition::members(std::uint32_t p) const
{
    std::vector<NodeId> out;
    for (NodeId v = 0; v < assignment.size(); ++v)
        if (assignment[v] == p)
            out.push_back(v);
    return out;
}

std::vector<std::vector<NodeId>>
Partition::membersAll() const
{
    std::vector<std::vector<NodeId>> buckets(numParts);
    std::vector<std::size_t> sizes(numParts, 0);
    for (std::uint32_t p : assignment)
        ++sizes[p];
    for (std::uint32_t p = 0; p < numParts; ++p)
        buckets[p].reserve(sizes[p]);
    for (NodeId v = 0; v < assignment.size(); ++v)
        buckets[assignment[v]].push_back(v);
    return buckets;
}

double
Partition::edgeCutFraction(const CsrGraph &g) const
{
    checkInvariant(assignment.size() == g.numNodes(),
                   "edgeCutFraction: partition/graph size mismatch");
    EdgeId cut = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e)
            cut += assignment[v] != assignment[g.colIdx()[e]] ? 1 : 0;
    return g.numEdges() ? static_cast<double>(cut) / g.numEdges() : 0.0;
}

double
Partition::balance(NodeId num_nodes) const
{
    if (numParts == 0 || num_nodes == 0)
        return 1.0;
    std::vector<NodeId> sizes(numParts, 0);
    for (std::uint32_t p : assignment)
        ++sizes[p];
    const double ideal =
        static_cast<double>(num_nodes) / static_cast<double>(numParts);
    return *std::max_element(sizes.begin(), sizes.end()) / ideal;
}

Partition
bfsPartition(const CsrGraph &g, std::uint32_t parts, Rng &rng)
{
    checkInvariant(parts >= 1, "bfsPartition: need >= 1 part");
    const NodeId n = g.numNodes();
    Partition result;
    result.numParts = parts;
    result.assignment.assign(n, parts); // parts == unassigned marker
    if (n == 0)
        return result;

    const NodeId cap = (n + parts - 1) / parts;
    std::vector<NodeId> sizes(parts, 0);
    std::vector<std::deque<NodeId>> frontiers(parts);

    // Random distinct-ish seeds. If the bounded retry loop keeps
    // colliding with already-seeded vertices (likely only on tiny
    // graphs), fall back to the first unassigned vertex so that every
    // part is seeded whenever an unassigned vertex exists — otherwise a
    // part could start frontier-less and end up empty even though
    // n >= parts.
    for (std::uint32_t p = 0; p < parts; ++p) {
        NodeId seed = static_cast<NodeId>(rng.nextBounded(n));
        for (int tries = 0;
             result.assignment[seed] != parts && tries < 16; ++tries)
            seed = static_cast<NodeId>(rng.nextBounded(n));
        if (result.assignment[seed] != parts) {
            for (NodeId v = 0; v < n; ++v) {
                if (result.assignment[v] == parts) {
                    seed = v;
                    break;
                }
            }
        }
        if (result.assignment[seed] == parts) {
            result.assignment[seed] = p;
            ++sizes[p];
            frontiers[p].push_back(seed);
        }
    }

    // Round-robin BFS growth with per-part caps.
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (std::uint32_t p = 0; p < parts; ++p) {
            if (frontiers[p].empty() || sizes[p] >= cap)
                continue;
            const NodeId v = frontiers[p].front();
            frontiers[p].pop_front();
            for (EdgeId e = g.rowPtr()[v];
                 e < g.rowPtr()[v + 1] && sizes[p] < cap; ++e) {
                const NodeId u = g.colIdx()[e];
                if (result.assignment[u] == parts) {
                    result.assignment[u] = p;
                    ++sizes[p];
                    frontiers[p].push_back(u);
                }
            }
            progressed = true;
        }
    }

    // Leftovers (disconnected or cap-blocked): fill smallest part.
    for (NodeId v = 0; v < n; ++v) {
        if (result.assignment[v] != parts)
            continue;
        const std::uint32_t smallest = static_cast<std::uint32_t>(
            std::min_element(sizes.begin(), sizes.end()) -
            sizes.begin());
        result.assignment[v] = smallest;
        ++sizes[smallest];
    }
    return result;
}

CsrGraph
extractSubgraph(const CsrGraph &g, const std::vector<NodeId> &nodes,
                std::vector<NodeId> *global_ids)
{
    // Local id table; kInvalid marks excluded vertices.
    constexpr NodeId kInvalid = ~NodeId{0};
    std::vector<NodeId> local(g.numNodes(), kInvalid);
    std::vector<NodeId> kept;
    kept.reserve(nodes.size());
    for (NodeId v : nodes) {
        checkInvariant(v < g.numNodes(),
                       "extractSubgraph: node out of range");
        if (local[v] == kInvalid) {
            local[v] = static_cast<NodeId>(kept.size());
            kept.push_back(v);
        }
    }

    std::vector<EdgeId> row_ptr{0};
    std::vector<NodeId> col_idx;
    std::vector<Float> values;
    for (NodeId v : kept) {
        for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e) {
            const NodeId u = g.colIdx()[e];
            if (local[u] != kInvalid) {
                col_idx.push_back(local[u]);
                values.push_back(g.values()[e]);
            }
        }
        row_ptr.push_back(static_cast<EdgeId>(col_idx.size()));
    }

    // Column order within a row follows the original sorted order of
    // global ids, which may not be sorted locally; re-sort each row.
    for (std::size_t r = 0; r + 1 < row_ptr.size(); ++r) {
        const EdgeId lo = row_ptr[r], hi = row_ptr[r + 1];
        std::vector<std::pair<NodeId, Float>> row;
        row.reserve(hi - lo);
        for (EdgeId e = lo; e < hi; ++e)
            row.emplace_back(col_idx[e], values[e]);
        std::sort(row.begin(), row.end());
        for (EdgeId e = lo; e < hi; ++e) {
            col_idx[e] = row[e - lo].first;
            values[e] = row[e - lo].second;
        }
    }

    if (global_ids)
        *global_ids = kept;
    return CsrGraph::fromCsr(static_cast<NodeId>(kept.size()),
                             std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

SampledSubgraph
sampleNodes(const CsrGraph &g, double fraction, Rng &rng)
{
    checkInvariant(fraction > 0.0 && fraction <= 1.0,
                   "sampleNodes: fraction must be in (0, 1]");
    std::vector<NodeId> kept;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        if (rng.bernoulli(static_cast<Float>(fraction)))
            kept.push_back(v);
    if (kept.empty() && g.numNodes() > 0)
        kept.push_back(static_cast<NodeId>(rng.nextBounded(
            g.numNodes())));

    SampledSubgraph out;
    out.graph = extractSubgraph(g, kept, &out.globalIds);
    return out;
}

} // namespace maxk
