#include "graph/reorder.hh"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <numeric>

#include "common/logging.hh"

namespace maxk
{

Permutation
bfsOrder(const CsrGraph &g)
{
    const NodeId n = g.numNodes();
    constexpr NodeId kUnset = ~NodeId{0};
    Permutation perm(n, kUnset);
    NodeId next = 0;

    // Visit components in order of their max-degree vertex.
    std::vector<NodeId> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), 0);
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&](NodeId a, NodeId b) {
                         return g.degree(a) > g.degree(b);
                     });

    std::deque<NodeId> frontier;
    for (NodeId seed : by_degree) {
        if (perm[seed] != kUnset)
            continue;
        perm[seed] = next++;
        frontier.push_back(seed);
        while (!frontier.empty()) {
            const NodeId v = frontier.front();
            frontier.pop_front();
            for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e) {
                const NodeId u = g.colIdx()[e];
                if (perm[u] == kUnset) {
                    perm[u] = next++;
                    frontier.push_back(u);
                }
            }
        }
    }
    checkInvariant(next == n, "bfsOrder: did not reach every vertex");
    return perm;
}

Permutation
degreeOrder(const CsrGraph &g)
{
    const NodeId n = g.numNodes();
    std::vector<NodeId> by_degree(n);
    std::iota(by_degree.begin(), by_degree.end(), 0);
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&](NodeId a, NodeId b) {
                         return g.degree(a) > g.degree(b);
                     });
    Permutation perm(n);
    for (NodeId rank = 0; rank < n; ++rank)
        perm[by_degree[rank]] = rank;
    return perm;
}

Permutation
randomOrder(NodeId num_nodes, Rng &rng)
{
    Permutation perm(num_nodes);
    std::iota(perm.begin(), perm.end(), 0);
    // Fisher-Yates with the project RNG.
    for (NodeId i = num_nodes; i > 1; --i) {
        const NodeId j = static_cast<NodeId>(rng.nextBounded(i));
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

Permutation
identityOrder(NodeId num_nodes)
{
    Permutation perm(num_nodes);
    std::iota(perm.begin(), perm.end(), 0);
    return perm;
}

bool
isPermutation(const Permutation &perm)
{
    std::vector<bool> seen(perm.size(), false);
    for (NodeId v : perm) {
        if (v >= perm.size() || seen[v])
            return false;
        seen[v] = true;
    }
    return true;
}

CsrGraph
applyPermutation(const CsrGraph &g, const Permutation &perm)
{
    checkInvariant(perm.size() == g.numNodes(),
                   "applyPermutation: size mismatch");
    checkInvariant(isPermutation(perm),
                   "applyPermutation: not a bijection");

    const NodeId n = g.numNodes();
    std::vector<NodeId> inverse(n);
    for (NodeId old_id = 0; old_id < n; ++old_id)
        inverse[perm[old_id]] = old_id;

    std::vector<EdgeId> row_ptr(n + 1, 0);
    std::vector<NodeId> col_idx;
    std::vector<Float> values;
    col_idx.reserve(g.numEdges());
    values.reserve(g.numEdges());

    std::vector<std::pair<NodeId, Float>> row;
    for (NodeId new_id = 0; new_id < n; ++new_id) {
        const NodeId old_id = inverse[new_id];
        row.clear();
        for (EdgeId e = g.rowPtr()[old_id]; e < g.rowPtr()[old_id + 1];
             ++e)
            row.emplace_back(perm[g.colIdx()[e]], g.values()[e]);
        std::sort(row.begin(), row.end());
        for (const auto &[c, v] : row) {
            col_idx.push_back(c);
            values.push_back(v);
        }
        row_ptr[new_id + 1] = static_cast<EdgeId>(col_idx.size());
    }
    return CsrGraph::fromCsr(n, std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

double
neighbourDistance(const CsrGraph &g)
{
    if (g.numEdges() == 0 || g.numNodes() == 0)
        return 0.0;
    double total = 0.0;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1]; ++e)
            total += std::abs(static_cast<double>(v) -
                              static_cast<double>(g.colIdx()[e]));
    return total / g.numEdges() / g.numNodes();
}

} // namespace maxk
