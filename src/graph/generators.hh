/**
 * @file
 * Synthetic graph generators standing in for the paper's 24 public
 * datasets (DESIGN.md Sec. 1). Two families matter for kernel behaviour:
 *
 *  - power-law graphs (RMAT): reproduce the skewed "evil row" degree
 *    distribution that causes SpMM warp imbalance (Sec. 1 of the paper);
 *  - planted-partition (SBM) community graphs: supply learnable labels for
 *    the training-accuracy experiments (Fig. 9/10, Table 5).
 */

#ifndef MAXK_GRAPH_GENERATORS_HH
#define MAXK_GRAPH_GENERATORS_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "graph/csr.hh"

namespace maxk
{

/** Erdős–Rényi G(n, m): m undirected edges drawn uniformly. */
CsrGraph erdosRenyi(NodeId num_nodes, EdgeId num_edges, Rng &rng,
                    bool self_loops = true);

/**
 * RMAT power-law generator (Chakrabarti et al. parameters). Produces a
 * symmetric graph with roughly target_edges directed edges whose degree
 * distribution is heavy-tailed, like Reddit / ogbn-products.
 *
 * @param scale     log2 of node count
 * @param target_edges desired nnz after symmetrisation/dedup (approximate)
 * @param a,b,c     RMAT quadrant probabilities (d = 1-a-b-c)
 */
CsrGraph rmat(std::uint32_t scale, EdgeId target_edges, Rng &rng,
              double a = 0.57, double b = 0.19, double c = 0.19,
              bool self_loops = true);

/**
 * Stochastic block model with equal-size communities and the labelling.
 *
 * @param num_nodes      vertex count
 * @param num_communities number of blocks (= classification classes)
 * @param avg_degree     expected degree per vertex
 * @param p_in_fraction  fraction of a vertex's edges that stay in-block
 */
struct SbmResult
{
    CsrGraph graph;
    std::vector<std::uint32_t> labels;
};
SbmResult stochasticBlockModel(NodeId num_nodes,
                               std::uint32_t num_communities,
                               double avg_degree, double p_in_fraction,
                               Rng &rng);

/** k-regular ring lattice: each node links to k/2 neighbours each side. */
CsrGraph ringLattice(NodeId num_nodes, std::uint32_t k,
                     bool self_loops = true);

/** Star graph: node 0 connected to all others (extreme imbalance case). */
CsrGraph star(NodeId num_nodes, bool self_loops = true);

/**
 * Zipfian-degree hub graph: endpoint v is drawn with probability
 * proportional to 1 / (v + 1)^exponent, so low-numbered vertices become
 * hubs while the tail stays sparse. Unlike RMAT (whose skew is coupled
 * to the quadrant probabilities) the tail exponent is a direct knob,
 * which is what the kernel-selector fixtures need: a family of graphs
 * whose degree skew varies while |V| and nnz stay fixed.
 *
 * @param num_nodes    vertex count
 * @param target_edges approximate nnz after symmetrisation/dedup
 * @param exponent     Zipf tail exponent (larger = heavier hubs);
 *                     must be > 0
 */
CsrGraph zipf(NodeId num_nodes, EdgeId target_edges, double exponent,
              Rng &rng, bool self_loops = true);

} // namespace maxk

#endif // MAXK_GRAPH_GENERATORS_HH
