/**
 * @file
 * Edge-Group (EG) warp-level workload partitioner.
 *
 * The paper's kernels (Sec. 4.1 "Warp Level Partition" and Sec. 4.2) split
 * the workload of every adjacency row into Edge Groups of at most w
 * workload units; each EG owns a shared-memory accumulation buffer of
 * dim_origin floats. The partition is computed in O(|V| + |E|/w) during
 * graph preprocessing and is shared by the forward SpGEMM and backward
 * SSpMM kernels. Warp packing follows the paper's two cases:
 *
 *   Case 1 (dim_k <= 16): each 32-lane warp hosts floor(32/dim_k) EGs;
 *   Case 2 (dim_k > 16): one EG per warp, lanes iterate over dim_k.
 */

#ifndef MAXK_GRAPH_EDGE_GROUPS_HH
#define MAXK_GRAPH_EDGE_GROUPS_HH

#include <cstdint>
#include <vector>

#include "common/parallel.hh"
#include "graph/csr.hh"

namespace maxk
{

/** One edge group: a contiguous slice of a single adjacency row. */
struct EdgeGroup
{
    NodeId row;    //!< adjacency row this EG belongs to
    EdgeId begin;  //!< first edge index (into colIdx/values)
    EdgeId end;    //!< one past the last edge index
};

/** Result of the O(n) partition pass. */
class EdgeGroupPartition
{
  public:
    /**
     * Partition every row of g into EGs of at most workload_cap edges.
     * Empty rows produce no groups.
     */
    static EdgeGroupPartition build(const CsrGraph &g,
                                    std::uint32_t workload_cap);

    const std::vector<EdgeGroup> &groups() const { return groups_; }
    std::uint32_t workloadCap() const { return workloadCap_; }

    /** Number of EGs assigned to each warp for the given dim_k (paper
     *  Case 1 / Case 2 rule). */
    static std::uint32_t egsPerWarp(std::uint32_t dim_k);

    /** Total warps needed to execute this partition at the given dim_k. */
    std::uint64_t warpCount(std::uint32_t dim_k) const;

    /**
     * Warp balance metric: max EGs owned by a warp divided by mean
     * (1.0 = perfectly balanced). Because every EG is bounded by the cap,
     * this stays near 1 even on power-law rows — the property the paper's
     * partitioner exists to provide.
     */
    double imbalance(std::uint32_t dim_k) const;

    /** Validate coverage: every edge of g in exactly one EG, in order. */
    bool covers(const CsrGraph &g) const;

  private:
    std::vector<EdgeGroup> groups_;
    std::uint32_t workloadCap_ = 0;
};

/**
 * Static partition of [0, groups.size()) into at most `threads`
 * contiguous chunks of roughly equal size whose boundaries never split
 * one adjacency row's EGs across chunks (the partitioner emits EGs
 * row-contiguous). Row alignment keeps per-row state — the SSpMM
 * prefetch buffer, SpGEMM's first-EG-of-row write-back discount, output
 * row ownership — entirely within one chunk, so the parallel kernels
 * behave exactly like the serial sweep. Deterministic in its arguments.
 */
std::vector<IndexRange> rowAlignedChunks(
    const std::vector<EdgeGroup> &groups, std::size_t grain,
    std::uint32_t threads);

} // namespace maxk

#endif // MAXK_GRAPH_EDGE_GROUPS_HH
