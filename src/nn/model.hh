/**
 * @file
 * Multi-layer GNN model: a stack of GnnLayer with the architecture the
 * paper evaluates (Table 3: 3-4 layers, hidden 256/384, SAGE/GCN/GIN).
 */

#ifndef MAXK_NN_MODEL_HH
#define MAXK_NN_MODEL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/csr.hh"
#include "nn/gnn_layer.hh"
#include "nn/param.hh"
#include "tensor/matrix.hh"

namespace maxk::nn
{

/** Whole-network configuration. */
struct ModelConfig
{
    GnnKind kind = GnnKind::Sage;
    Nonlinearity nonlin = Nonlinearity::Relu;
    std::uint32_t maxkK = 32;       //!< k for MaxK layers
    bool fusedForward = false;      //!< fuse MaxK select into the SpGEMM
    std::uint32_t numLayers = 3;
    std::size_t inDim = 64;
    std::size_t hiddenDim = 64;
    std::size_t outDim = 8;
    Float dropout = 0.5f;
    Float ginEps = 0.0f;
    std::uint64_t seed = 42;

    /** SpMM variant for dense aggregation ("" = default, "auto" =
     *  adaptive selector, else a registry name); copied into every
     *  layer's GnnLayerConfig. */
    std::string kernelVariant;
};

/** Stack of GNN layers with cached activations for backprop. */
class GnnModel
{
  public:
    explicit GnnModel(const ModelConfig &cfg);

    /**
     * Full-batch forward. Returns the logits (N x outDim). The input and
     * every intermediate activation are cached for backward().
     */
    const Matrix &forward(const CsrGraph &a, const Matrix &x,
                          bool training);

    /**
     * Hook invoked between a layer's forwardCompute and forwardCombine
     * phases — the point where the activation (CBSR for MaxK layers,
     * dense otherwise) is complete but not yet aggregated. The serving
     * layer injects cached embedding rows and harvests newly computed
     * ones here; the sharded executor exchanges halo rows at the same
     * seam.
     */
    using LayerHook = std::function<void(std::uint32_t layer, GnnLayer &)>;

    /**
     * Forward starting at layer `first` (0 == forward()): `x` is taken
     * as the input of layer `first` and layers below it are skipped
     * entirely. This is the cached-embedding entry point: when every
     * activation a serving batch needs below `first` comes out of the
     * EmbeddingCache, the lower layers contribute no arithmetic at all.
     * The optional `hook` runs per executed layer between the compute
     * and combine phases (see LayerHook). Activations from layer `first`
     * on are cached for backward(); earlier ones keep their prior
     * contents. No dropout stream is consumed for skipped layers when
     * `training` is false (the serving mode), so partial and full
     * forwards stay bitwise-consistent.
     */
    const Matrix &forwardFrom(std::uint32_t first, const CsrGraph &a,
                              const Matrix &x, bool training,
                              const LayerHook &hook = {});

    /** Backprop from d(loss)/d(logits); accumulates parameter grads. */
    void backward(const CsrGraph &a, const Matrix &grad_logits);

    ParamRefs params();

    const ModelConfig &config() const { return cfg_; }
    std::vector<GnnLayer> &layers() { return layers_; }

    /**
     * The dropout RNG stream. The sharded executor (dist::ShardedModel)
     * drives the layer phase hooks directly and must consume this
     * stream exactly like forward() does, so a 1-rank sharded run stays
     * bitwise-identical to the single-device path.
     */
    Rng &dropoutRng() { return dropRng_; }

    /** Input/output width of layer l per the stacking rule. */
    std::size_t layerInDim(std::uint32_t l) const;
    std::size_t layerOutDim(std::uint32_t l) const;

  private:
    ModelConfig cfg_;
    Rng dropRng_;
    std::vector<GnnLayer> layers_;
    std::vector<Matrix> acts_;  //!< acts_[l] = input of layer l

    // Persistent backward ping-pong buffers: backward() alternates the
    // upstream/downstream gradient between these two workspaces instead
    // of moving locals (which would strand their storage and force a
    // reallocation every epoch).
    Matrix gradCur_;
    Matrix gradPrev_;
};

} // namespace maxk::nn

#endif // MAXK_NN_MODEL_HH
