/**
 * @file
 * Partition-parallel full-graph training model (BNS-GCN-style).
 *
 * The paper argues (Sec. 1) that MaxK-GNN composes with
 * partition-parallel training: each GPU holds one graph partition,
 * boundary-node features are exchanged every layer, and the aggregation
 * kernels run unchanged within each partition. This module models that
 * deployment: per-partition simulated compute (from profileEpoch on the
 * partition subgraph) plus an all-to-all boundary-feature exchange
 * charged against NVLink bandwidth. It quantifies two effects:
 *
 *  - MaxK shrinks the exchanged features too (CBSR: (4+idx)*k bytes vs
 *    4*dim bytes per boundary node per layer), compounding its win;
 *  - boundary sampling (the BNS trick) trades exchange volume for
 *    accuracy, orthogonally to MaxK.
 */

#ifndef MAXK_NN_DISTRIBUTED_HH
#define MAXK_NN_DISTRIBUTED_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"
#include "graph/partition.hh"
#include "kernels/sim_options.hh"
#include "nn/model.hh"
#include "nn/trainer.hh"

namespace maxk::nn
{

/** Interconnect + deployment parameters. */
struct ClusterConfig
{
    std::uint32_t numGpus = 4;
    double nvlinkGBs = 300.0;      //!< per-GPU all-reduce bandwidth
    double boundarySampleRate = 1.0; //!< BNS-GCN keeps this fraction
};

/** Per-epoch decomposition of a partition-parallel run. */
struct DistributedEpochTiming
{
    double computeSeconds = 0.0;   //!< slowest partition's kernel time
    double exchangeSeconds = 0.0;  //!< boundary feature all-to-all
    double imbalance = 1.0;        //!< max/mean over non-empty partitions
    std::uint64_t boundaryNodes = 0;    //!< distinct boundary vertices
    std::uint64_t boundaryReplicas = 0; //!< per-destination send copies
    Bytes exchangedBytes = 0;

    double total() const { return computeSeconds + exchangeSeconds; }
};

/**
 * Count boundary nodes of each partition: vertices with at least one
 * neighbour in a different part (their features must be exchanged).
 */
std::vector<std::uint64_t> boundaryCounts(const CsrGraph &g,
                                          const Partition &p);

/**
 * Replica-exact exchange count: every (vertex, remote reader part) pair
 * is one shipped row — a boundary node adjacent to three remote parts
 * is sent three times per layer direction, once per reader. This is
 * exactly the number of halo rows the sharded executor materialises
 * (dist::HaloPlan::totalReplicas()).
 */
std::uint64_t boundaryReplicaCount(const CsrGraph &g, const Partition &p);

/**
 * Wire bytes of one exchanged activation row of layer `layer` under
 * `cfg`: CBSR rows (k values + k narrow indices) for MaxK layers, dense
 * fp32 rows otherwise. The final layer produces dense logits in both
 * variants, and its width is outDim, not hiddenDim. Shared between the
 * analytical model below and the tests that reconcile it with the
 * measured dist::Communicator traffic.
 */
Bytes activationRowBytes(const ModelConfig &cfg, std::uint32_t layer);

/**
 * Model one partition-parallel training epoch of `cfg` on graph g
 * split by `part` across `cluster.numGpus` devices.
 *
 * Compute: profileEpoch on each partition's induced subgraph; the
 * epoch waits for the slowest. Exchange: every layer moves each
 * boundary node's feature row to the partitions that read it — dense
 * rows for ReLU models, CBSR rows for MaxK models.
 */
DistributedEpochTiming profileDistributedEpoch(
    const ModelConfig &cfg, const CsrGraph &g, const Partition &part,
    const ClusterConfig &cluster, const SimOptions &opt);

} // namespace maxk::nn

#endif // MAXK_NN_DISTRIBUTED_HH
