#include "nn/distributed.hh"

#include <algorithm>

#include "common/logging.hh"
#include "graph/edge_groups.hh"

namespace maxk::nn
{

std::vector<std::uint64_t>
boundaryCounts(const CsrGraph &g, const Partition &p)
{
    checkInvariant(p.assignment.size() == g.numNodes(),
                   "boundaryCounts: partition size mismatch");
    std::vector<std::uint64_t> counts(p.numParts, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        const std::uint32_t home = p.assignment[v];
        bool boundary = false;
        for (EdgeId e = g.rowPtr()[v];
             e < g.rowPtr()[v + 1] && !boundary; ++e)
            boundary = p.assignment[g.colIdx()[e]] != home;
        counts[home] += boundary ? 1 : 0;
    }
    return counts;
}

DistributedEpochTiming
profileDistributedEpoch(const ModelConfig &cfg, const CsrGraph &g,
                        const Partition &part,
                        const ClusterConfig &cluster,
                        const SimOptions &opt)
{
    checkInvariant(part.numParts == cluster.numGpus,
                   "profileDistributedEpoch: parts != GPUs");
    DistributedEpochTiming result;

    // Per-partition compute: profile each induced subgraph.
    double worst = 0.0, total = 0.0;
    for (std::uint32_t p = 0; p < part.numParts; ++p) {
        const std::vector<NodeId> members = part.members(p);
        if (members.empty())
            continue;
        CsrGraph sub = extractSubgraph(g, members);
        sub.setAggregatorWeights(aggregatorFor(cfg.kind));
        const auto eg = EdgeGroupPartition::build(
            sub, std::max<std::uint32_t>(opt.workloadCap, 1));
        const double t = profileEpoch(cfg, sub, eg, opt).total();
        worst = std::max(worst, t);
        total += t;
    }
    result.computeSeconds = worst;
    result.imbalance =
        total > 0.0 ? worst / (total / part.numParts) : 1.0;

    // Boundary exchange: each boundary node's activation row crosses
    // the interconnect once per layer, forward and backward. MaxK
    // models ship CBSR rows; ReLU models ship dense rows.
    const auto counts = boundaryCounts(g, part);
    std::uint64_t boundary = 0;
    for (std::uint64_t c : counts)
        boundary += c;
    boundary = static_cast<std::uint64_t>(
        boundary * cluster.boundarySampleRate);
    result.boundaryNodes = boundary;

    const std::uint32_t k = std::min<std::uint32_t>(
        cfg.maxkK, static_cast<std::uint32_t>(cfg.hiddenDim));
    const Bytes row_bytes =
        cfg.nonlin == Nonlinearity::MaxK
            ? Bytes(k) * (4 + (cfg.hiddenDim <= 256 ? 1 : 2))
            : Bytes(4) * cfg.hiddenDim;
    result.exchangedBytes =
        Bytes(boundary) * row_bytes * cfg.numLayers * 2; // fwd + bwd
    result.exchangeSeconds = static_cast<double>(result.exchangedBytes) /
                             (cluster.nvlinkGBs * 1e9);
    return result;
}

} // namespace maxk::nn
