#include "nn/distributed.hh"

#include <algorithm>

#include "common/logging.hh"
#include "graph/edge_groups.hh"

namespace maxk::nn
{

std::vector<std::uint64_t>
boundaryCounts(const CsrGraph &g, const Partition &p)
{
    checkInvariant(p.assignment.size() == g.numNodes(),
                   "boundaryCounts: partition size mismatch");
    std::vector<std::uint64_t> counts(p.numParts, 0);
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        const std::uint32_t home = p.assignment[v];
        bool boundary = false;
        for (EdgeId e = g.rowPtr()[v];
             e < g.rowPtr()[v + 1] && !boundary; ++e)
            boundary = p.assignment[g.colIdx()[e]] != home;
        counts[home] += boundary ? 1 : 0;
    }
    return counts;
}

std::uint64_t
boundaryReplicaCount(const CsrGraph &g, const Partition &p)
{
    checkInvariant(p.assignment.size() == g.numNodes(),
                   "boundaryReplicaCount: partition size mismatch");
    // Count distinct (reader part, read vertex) pairs: part r reads
    // vertex u when any row owned by r has u among its columns. This
    // is exactly the halo-row count dist::HaloPlan materialises, for
    // directed structure too (a row reads its out-neighbours, so the
    // readers of u are determined by u's in-edges — walking the rows
    // one part at a time gets that right without a transpose: within
    // part r's contiguous pass, stamp[u] == r+1 dedupes repeat reads,
    // and no part is visited twice; 0 is the never-stamped sentinel).
    const auto buckets = p.membersAll();
    std::vector<std::uint32_t> stamp(g.numNodes(), 0);
    std::uint64_t replicas = 0;
    for (std::uint32_t r = 0; r < p.numParts; ++r) {
        for (NodeId v : buckets[r]) {
            for (EdgeId e = g.rowPtr()[v]; e < g.rowPtr()[v + 1];
                 ++e) {
                const NodeId u = g.colIdx()[e];
                if (p.assignment[u] != r && stamp[u] != r + 1) {
                    stamp[u] = r + 1;
                    ++replicas;
                }
            }
        }
    }
    return replicas;
}

Bytes
activationRowBytes(const ModelConfig &cfg, std::uint32_t layer)
{
    const bool last = layer + 1 == cfg.numLayers;
    const std::size_t out_dim = last ? cfg.outDim : cfg.hiddenDim;
    if (cfg.nonlin != Nonlinearity::MaxK || last)
        return Bytes(4) * out_dim;
    const std::uint32_t k = std::min<std::uint32_t>(
        cfg.maxkK, static_cast<std::uint32_t>(out_dim));
    // CBSR wire format: k fp32 values + k indices (uint8 when the
    // original width fits, matching CbsrMatrix::indexBytes()).
    return Bytes(k) * (4 + (out_dim <= 256 ? 1 : 2));
}

DistributedEpochTiming
profileDistributedEpoch(const ModelConfig &cfg, const CsrGraph &g,
                        const Partition &part,
                        const ClusterConfig &cluster,
                        const SimOptions &opt)
{
    checkInvariant(part.numParts == cluster.numGpus,
                   "profileDistributedEpoch: parts != GPUs");
    DistributedEpochTiming result;

    // Per-partition compute: profile each induced subgraph. Empty parts
    // contribute no compute and must not deflate the imbalance mean.
    const auto buckets = part.membersAll();
    double worst = 0.0, total = 0.0;
    std::uint32_t non_empty = 0;
    for (std::uint32_t p = 0; p < part.numParts; ++p) {
        if (buckets[p].empty())
            continue;
        ++non_empty;
        CsrGraph sub = extractSubgraph(g, buckets[p]);
        sub.setAggregatorWeights(aggregatorFor(cfg.kind));
        const auto eg = EdgeGroupPartition::build(
            sub, std::max<std::uint32_t>(opt.workloadCap, 1));
        const double t = profileEpoch(cfg, sub, eg, opt).total();
        worst = std::max(worst, t);
        total += t;
    }
    result.computeSeconds = worst;
    result.imbalance =
        total > 0.0 && non_empty > 0 ? worst / (total / non_empty) : 1.0;

    // Boundary exchange, replica-exact: a boundary node adjacent to
    // multiple remote parts is shipped once per remote reader, every
    // layer, forward and backward — which is what the sharded executor
    // (dist::HaloExchange) actually sends. MaxK layers ship CBSR rows,
    // the final layer and ReLU models ship dense rows.
    const auto counts = boundaryCounts(g, part);
    std::uint64_t boundary = 0;
    for (std::uint64_t c : counts)
        boundary += c;
    result.boundaryNodes = static_cast<std::uint64_t>(
        boundary * cluster.boundarySampleRate);

    const std::uint64_t replicas = static_cast<std::uint64_t>(
        boundaryReplicaCount(g, part) * cluster.boundarySampleRate);
    result.boundaryReplicas = replicas;

    Bytes per_replica = 0;
    for (std::uint32_t l = 0; l < cfg.numLayers; ++l)
        per_replica += activationRowBytes(cfg, l);
    result.exchangedBytes = Bytes(replicas) * per_replica * 2; // fwd+bwd
    result.exchangeSeconds = static_cast<double>(result.exchangedBytes) /
                             (cluster.nvlinkGBs * 1e9);
    return result;
}

} // namespace maxk::nn
