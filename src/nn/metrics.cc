#include "nn/metrics.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace maxk::nn
{

double
accuracy(const Matrix &logits, const std::vector<std::uint32_t> &labels,
         const std::vector<std::uint8_t> &mask)
{
    checkInvariant(labels.size() == logits.rows() &&
                       mask.size() == logits.rows(),
                   "accuracy: size mismatch");
    std::size_t correct = 0, total = 0;
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        if (!mask[r])
            continue;
        const Float *row = logits.row(r);
        std::size_t best = 0;
        for (std::size_t c = 1; c < logits.cols(); ++c)
            if (row[c] > row[best])
                best = c;
        correct += best == labels[r] ? 1 : 0;
        ++total;
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

double
microF1(const Matrix &logits, const Matrix &targets,
        const std::vector<std::uint8_t> &mask)
{
    checkInvariant(targets.rows() == logits.rows() &&
                       targets.cols() == logits.cols(),
                   "microF1: shape mismatch");
    std::uint64_t tp = 0, fp = 0, fn = 0;
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        if (!mask[r])
            continue;
        const Float *z = logits.row(r);
        const Float *t = targets.row(r);
        for (std::size_t c = 0; c < logits.cols(); ++c) {
            const bool pred = z[c] > 0.0f; // sigmoid(z) > 0.5
            const bool truth = t[c] > 0.5f;
            if (pred && truth)
                ++tp;
            else if (pred)
                ++fp;
            else if (truth)
                ++fn;
        }
    }
    const double denom = 2.0 * tp + fp + fn;
    return denom > 0.0 ? 2.0 * tp / denom : 0.0;
}

double
rocAuc(const Matrix &logits, const Matrix &targets,
       const std::vector<std::uint8_t> &mask)
{
    checkInvariant(targets.rows() == logits.rows() &&
                       targets.cols() == logits.cols(),
                   "rocAuc: shape mismatch");
    struct Entry
    {
        Float score;
        bool positive;
    };
    std::vector<Entry> entries;
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        if (!mask[r])
            continue;
        for (std::size_t c = 0; c < logits.cols(); ++c)
            entries.push_back(
                {logits.at(r, c), targets.at(r, c) > 0.5f});
    }
    if (entries.empty())
        return 0.0;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.score < b.score;
              });

    // Rank-sum (Mann-Whitney) with average ranks for ties.
    double pos_rank_sum = 0.0;
    std::uint64_t num_pos = 0, num_neg = 0;
    std::size_t i = 0;
    while (i < entries.size()) {
        std::size_t j = i;
        while (j < entries.size() && entries[j].score == entries[i].score)
            ++j;
        const double avg_rank = 0.5 * (static_cast<double>(i + 1) +
                                       static_cast<double>(j));
        for (std::size_t t = i; t < j; ++t) {
            if (entries[t].positive) {
                pos_rank_sum += avg_rank;
                ++num_pos;
            } else {
                ++num_neg;
            }
        }
        i = j;
    }
    if (num_pos == 0 || num_neg == 0)
        return 0.0;
    const double u = pos_rank_sum -
                     static_cast<double>(num_pos) * (num_pos + 1) / 2.0;
    return u / (static_cast<double>(num_pos) * num_neg);
}

} // namespace maxk::nn
