/**
 * @file
 * Inverted dropout. Table 3 trains every dataset with dropout between
 * 0.1 and 0.5; the mask is drawn from the project Rng so runs are
 * reproducible.
 */

#ifndef MAXK_NN_DROPOUT_HH
#define MAXK_NN_DROPOUT_HH

#include <vector>

#include "common/rng.hh"
#include "tensor/matrix.hh"

namespace maxk::nn
{

/** Inverted dropout layer (scales survivors by 1/(1-p) at train time). */
class Dropout
{
  public:
    explicit Dropout(Float p = 0.0f) : p_(p) {}

    Float rate() const { return p_; }

    /**
     * Forward. In training mode draws a fresh mask; in eval mode the
     * input passes through untouched.
     */
    void forward(const Matrix &x, Matrix &y, bool training, Rng &rng);

    /** Backward through the last forward's mask. */
    void backward(const Matrix &dy, Matrix &dx) const;

  private:
    Float p_;
    std::vector<std::uint8_t> mask_;  //!< 1 = kept
    bool lastTraining_ = false;
};

} // namespace maxk::nn

#endif // MAXK_NN_DROPOUT_HH
