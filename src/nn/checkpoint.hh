/**
 * @file
 * Trainer-state <-> Checkpoint section mapping (ISSUE 9).
 *
 * The three training loops (nn::Trainer, sample::SampledTrainer,
 * dist::ShardedTrainer) persist the same core state: parameter values,
 * Adam moments + step count, the dropout RNG stream position, and the
 * metric trajectories accumulated so far. This file centralises the
 * section naming so a checkpoint written by one loop is legible to the
 * tools (maxk-faults) and the tests.
 *
 * Sections:
 *   "param.count"  u64   parameter-tensor count (validation)
 *   "param.shape"  u64[] rows,cols per parameter (validation)
 *   "param.<i>"    matrix
 *   "adam.m.<i>"   matrix  first moments
 *   "adam.v.<i>"   matrix  second moments
 *   "adam.t"       u64     bias-correction step count
 *   "rng.drop"     u64[4]  dropout stream position
 *   "epoch"        u64     last completed epoch (written by the loops)
 *   "traj.*"       metric trajectories up to the checkpointed epoch
 *
 * Restoring all of the above at an end-of-epoch boundary makes the
 * resumed run bitwise-equal to the uninterrupted one: the parameters,
 * optimizer state, and every RNG stream continue exactly where the
 * checkpointed run left them.
 */

#ifndef MAXK_NN_CHECKPOINT_HH
#define MAXK_NN_CHECKPOINT_HH

#include "graph/formats/checkpoint.hh"
#include "nn/model.hh"
#include "nn/optimizer.hh"

namespace maxk::nn
{

/** Write params + Adam state + dropout RNG position into `ck`.
 *  Section buffers are reused across calls (alloc-free once warm). */
void writeModelState(formats::Checkpoint &ck, GnnModel &model,
                     const Adam &adam);

/** Restore params + Adam state + dropout RNG position from `ck`.
 *  Typed error when sections are missing or were written by a model
 *  with different parameter shapes. */
Expected<std::monostate, IoError>
readModelState(const formats::Checkpoint &ck, GnnModel &model,
               Adam &adam);

/**
 * Trajectory persistence over any result type with the shared field
 * names (TrainResult, SampledTrainResult). The sharded loop passes its
 * embedded nn::TrainResult.
 */
template <class R>
void
writeTrajectories(formats::Checkpoint &ck, const R &r)
{
    ck.setDoubles("traj.trainLoss", r.trainLoss);
    ck.setDoubles("traj.valMetric", r.valMetric);
    ck.setDoubles("traj.testMetric", r.testMetric);
    ck.setU32s("traj.evalEpochs", r.evalEpochs);
    ck.setDoubles("traj.best", {r.bestValMetric, r.testAtBestVal,
                                r.finalTestMetric});
}

template <class R>
Expected<std::monostate, IoError>
readTrajectories(const formats::Checkpoint &ck, R &r)
{
    auto loss = ck.getDoubles("traj.trainLoss");
    if (!loss)
        return unexpected(std::move(loss.error()));
    auto val = ck.getDoubles("traj.valMetric");
    if (!val)
        return unexpected(std::move(val.error()));
    auto test = ck.getDoubles("traj.testMetric");
    if (!test)
        return unexpected(std::move(test.error()));
    auto epochs = ck.getU32s("traj.evalEpochs");
    if (!epochs)
        return unexpected(std::move(epochs.error()));
    auto best = ck.getDoubles("traj.best");
    if (!best)
        return unexpected(std::move(best.error()));
    if (best.value().size() != 3)
        return unexpected(IoError{
            IoErrorCode::CountMismatch, "", 0,
            "checkpoint section 'traj.best' must hold three doubles"});
    r.trainLoss = std::move(loss.value());
    r.valMetric = std::move(val.value());
    r.testMetric = std::move(test.value());
    r.evalEpochs = std::move(epochs.value());
    r.bestValMetric = best.value()[0];
    r.testAtBestVal = best.value()[1];
    r.finalTestMetric = best.value()[2];
    return std::monostate{};
}

} // namespace maxk::nn

#endif // MAXK_NN_CHECKPOINT_HH
