/**
 * @file
 * Optimizers for full-batch GNN training. Adam is what the MaxK-GNN
 * artifact trains with (Table 3 learning rates); plain SGD is kept for
 * tests and the MLP approximation experiment.
 */

#ifndef MAXK_NN_OPTIMIZER_HH
#define MAXK_NN_OPTIMIZER_HH

#include <vector>

#include "nn/param.hh"
#include "tensor/matrix.hh"

namespace maxk::nn
{

/** Adam (Kingma & Ba) with bias correction. */
class Adam
{
  public:
    explicit Adam(ParamRefs params, Float lr = 1e-3f, Float beta1 = 0.9f,
                  Float beta2 = 0.999f, Float eps = 1e-8f,
                  Float weight_decay = 0.0f);

    /** Apply one update from the accumulated gradients, then zero them. */
    void step();

    Float learningRate() const { return lr_; }
    void setLearningRate(Float lr) { lr_ = lr; }

    /**
     * Optimizer-state access for checkpoint/restore: the bias-correction
     * step count and both moment estimates. restoreState checkInvariants
     * that the shapes match the construction-time parameters, so a
     * restored Adam continues the exact update sequence.
     */
    std::uint64_t stepCount() const { return t_; }
    const std::vector<Matrix> &firstMoments() const { return m_; }
    const std::vector<Matrix> &secondMoments() const { return v_; }
    void restoreState(const std::vector<Matrix> &m,
                      const std::vector<Matrix> &v, std::uint64_t t);

  private:
    ParamRefs params_;
    std::vector<Matrix> m_, v_;
    Float lr_, beta1_, beta2_, eps_, weightDecay_;
    std::uint64_t t_ = 0;
};

/** Vanilla SGD. */
class Sgd
{
  public:
    explicit Sgd(ParamRefs params, Float lr = 1e-2f);

    /** w -= lr * grad, then zero the gradients. */
    void step();

    void setLearningRate(Float lr) { lr_ = lr; }

  private:
    ParamRefs params_;
    Float lr_;
};

} // namespace maxk::nn

#endif // MAXK_NN_OPTIMIZER_HH
