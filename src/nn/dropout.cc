#include "nn/dropout.hh"

#include "common/logging.hh"

namespace maxk::nn
{

void
Dropout::forward(const Matrix &x, Matrix &y, bool training, Rng &rng)
{
    y.ensureShape(x.rows(), x.cols());
    lastTraining_ = training && p_ > 0.0f;
    if (!lastTraining_) {
        std::copy(x.data(), x.data() + x.size(), y.data());
        return;
    }
    mask_.resize(x.size());
    const Float scale = 1.0f / (1.0f - p_);
    const Float *px = x.data();
    Float *py = y.data();
    for (std::size_t i = 0; i < x.size(); ++i) {
        const bool keep = !rng.bernoulli(p_);
        mask_[i] = keep ? 1 : 0;
        py[i] = keep ? px[i] * scale : 0.0f;
    }
}

void
Dropout::backward(const Matrix &dy, Matrix &dx) const
{
    dx.ensureShape(dy.rows(), dy.cols());
    if (!lastTraining_) {
        std::copy(dy.data(), dy.data() + dy.size(), dx.data());
        return;
    }
    checkInvariant(mask_.size() == dy.size(),
                   "Dropout::backward: no matching forward mask");
    const Float scale = 1.0f / (1.0f - p_);
    const Float *pdy = dy.data();
    Float *pdx = dx.data();
    for (std::size_t i = 0; i < dy.size(); ++i)
        pdx[i] = mask_[i] ? pdy[i] * scale : 0.0f;
}

} // namespace maxk::nn
