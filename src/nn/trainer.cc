#include "nn/trainer.hh"

#include <algorithm>
#include <optional>

#include "common/logging.hh"
#include "common/stopwatch.hh"
#include "common/trace.hh"
#include "core/linear_backward_cbsr.hh"
#include "core/maxk.hh"
#include "core/spgemm_forward.hh"
#include "core/sspmm_backward.hh"
#include "kernels/gemm_cost.hh"
#include "kernels/registry.hh"
#include "kernels/spmm_gnna.hh"
#include "nn/checkpoint.hh"
#include "nn/loss.hh"
#include "nn/metrics.hh"
#include "nn/optimizer.hh"
#include "tensor/init.hh"

namespace maxk::nn
{

namespace
{

/**
 * Simulated latency of one SpMM of width dim on graph a. A configured
 * kernel variant (model- or launch-level, "auto" included) overrides
 * the legacy baseline enum and dispatches through the registry; the
 * enum keeps charging its historical kernels otherwise.
 */
double
baselineAggSeconds(const CsrGraph &a, const EdgeGroupPartition &part,
                   std::size_t dim, const SimOptions &opt,
                   BaselineKernel baseline, std::string_view variant,
                   Rng &rng)
{
    Matrix x(a.numNodes(), dim);
    fillNormal(x, rng, 0.0f, 1.0f);
    Matrix y;
    if (!variant.empty())
        return kernels::resolveSpmmVariant(variant, a, dim, 0, opt)
            .run(a, x, y, opt)
            .totalSeconds;
    if (baseline == BaselineKernel::CuSparse)
        return kernels::defaultSpmmVariant().run(a, x, y, opt).totalSeconds;
    return spmmGnna(a, part, x, y, opt).totalSeconds;
}

} // namespace

EpochTiming
profileEpoch(const ModelConfig &cfg, const CsrGraph &a,
             const EdgeGroupPartition &part, const SimOptions &opt,
             BaselineKernel baseline)
{
    EpochTiming t;
    const NodeId n = a.numNodes();
    Rng rng(0xBADF00Dull + cfg.maxkK * 7919 + cfg.numLayers);

    std::uint64_t param_elems = 0;
    for (std::uint32_t l = 0; l < cfg.numLayers; ++l) {
        const std::size_t in_dim =
            l == 0 ? cfg.inDim : cfg.hiddenDim;
        const std::size_t out_dim =
            l + 1 == cfg.numLayers ? cfg.outDim : cfg.hiddenDim;
        const bool last = l + 1 == cfg.numLayers;
        const bool maxk_layer =
            cfg.nonlin == Nonlinearity::MaxK && !last;

        // Linear stages: forward GEMM, backward dW and dX GEMMs. SAGE
        // adds the self-path linear with identical shapes.
        const std::uint32_t linears =
            cfg.kind == GnnKind::Sage ? 2 : 1;
        // Optimizer-sweep footprint of this layer: weight + bias of
        // every linear, honouring the true layer shapes (the last layer
        // is hiddenDim x outDim, and SAGE carries a second linear).
        param_elems += static_cast<std::uint64_t>(linears) *
                       (static_cast<std::uint64_t>(in_dim) * out_dim +
                        out_dim);
        const std::uint32_t k = std::min<std::uint32_t>(
            cfg.maxkK, static_cast<std::uint32_t>(out_dim));
        const double fwd = gemmSimSeconds(n, in_dim, out_dim, opt.device);
        const double bwd_dw =
            gemmSimSeconds(in_dim, n, out_dim, opt.device);
        const double bwd_dx =
            gemmSimSeconds(n, out_dim, in_dim, opt.device);
        t.linear += linears * fwd;
        if (maxk_layer) {
            // The primary linear's upstream gradient stays in CBSR form
            // (GnnLayer::backward never densifies it), so its dW/dX pass
            // is the sparse kernel; SAGE's self path still sees the
            // dense d_out.
            t.linear += linearBackwardCbsrSimSeconds(n, in_dim, out_dim,
                                                     k, opt.device);
            t.linear += (linears - 1) * (bwd_dw + bwd_dx);
        } else {
            t.linear += linears * (bwd_dw + bwd_dx);
        }

        // Nonlinearity + aggregation.
        if (maxk_layer) {
            Matrix h(n, out_dim);
            fillNormal(h, rng, 0.0f, 1.0f);

            CbsrMatrix pattern;
            if (opt.fusedForward || cfg.fusedForward) {
                // One launch: select+compress feeds the row-wise
                // product on-chip. The select phase is still charged to
                // the nonlinearity bucket so the Fig. 1 decomposition
                // stays comparable with the unfused pipeline.
                Matrix y;
                const gpusim::KernelStats st =
                    spgemmForwardFused(a, part, h, k, pattern, y, opt);
                double select_seconds = 0.0;
                for (const auto &ph : st.phases)
                    if (ph.name == "select+compress")
                        select_seconds =
                            ph.seconds(opt.device, st.efficiency);
                t.nonlin += select_seconds;
                t.aggFwd += st.totalSeconds - select_seconds;
            } else {
                MaxKResult mk = maxkCompress(h, k, opt);
                t.nonlin += mk.stats.totalSeconds;
                Matrix y;
                t.aggFwd +=
                    spgemmForward(a, part, mk.cbsr, y, opt).totalSeconds;
                pattern = std::move(mk.cbsr);
            }
            // Backward of MaxK: the gradient keeps the forward pattern
            // and stays in CBSR form end-to-end, so the only extra pass
            // is over the N*k survivors (no dense decompress).
            t.nonlin += elementwiseSimSeconds(
                static_cast<std::uint64_t>(n) * k, opt.device);

            Matrix dxl(n, out_dim);
            fillNormal(dxl, rng, 0.0f, 1.0f);
            CbsrMatrix dxs;
            dxs.adoptPattern(pattern);
            t.aggBwd +=
                sspmmBackward(a, part, dxl, dxs, opt).totalSeconds;
        } else {
            if (!last) {
                // ReLU forward + backward masks.
                t.nonlin += 2.0 * elementwiseSimSeconds(
                                      static_cast<std::uint64_t>(n) *
                                          out_dim,
                                      opt.device);
            }
            // Model-level variant beats the launch-level one; both beat
            // the legacy baseline enum.
            const std::string_view variant = !cfg.kernelVariant.empty()
                                                 ? cfg.kernelVariant
                                                 : opt.kernelVariant;
            t.aggFwd += baselineAggSeconds(a, part, out_dim, opt,
                                           baseline, variant, rng);
            // Backward SpMM on A^T (same structure for the symmetric
            // twins; identical traffic).
            t.aggBwd += baselineAggSeconds(a, part, out_dim, opt,
                                           baseline, variant, rng);
        }
    }

    // Loss + metric + optimizer sweeps: a few elementwise passes over
    // logits and parameters.
    t.other = 3.0 * elementwiseSimSeconds(
                        static_cast<std::uint64_t>(n) * cfg.outDim +
                            param_elems,
                        opt.device);
    // Framework dispatch overhead (the PyTorch/DGL op-launch cost that
    // Fig. 1 buckets under "Others"): ~12 host-dispatched ops per layer
    // per step at ~10 us each, independent of graph size.
    t.other += cfg.numLayers * 12 * 10e-6;

    // Publish the Fig. 1 buckets as live counters (integer ns) so the
    // breakdown is reproducible from a metrics snapshot
    // (bench_fig1_breakdown --metrics-json).
    if (telemetry::armed()) {
        const auto ns = [](double s) {
            return static_cast<std::uint64_t>(s * 1e9 + 0.5);
        };
        telemetry::counterAdd("profile.agg_fwd.sim_ns", ns(t.aggFwd));
        telemetry::counterAdd("profile.agg_bwd.sim_ns", ns(t.aggBwd));
        telemetry::counterAdd("profile.linear.sim_ns", ns(t.linear));
        telemetry::counterAdd("profile.nonlin.sim_ns", ns(t.nonlin));
        telemetry::counterAdd("profile.other.sim_ns", ns(t.other));
    }
    return t;
}

Trainer::Trainer(GnnModel &model, TrainingData &data,
                 const TrainingTask &task)
    : model_(model), data_(data), task_(task)
{
    data_.graph.setAggregatorWeights(aggregatorFor(model.config().kind));
    if (task_.multiLabel)
        multiTargets_ = multiLabelTargets(data_.labels, task_.numClasses);
}

double
Trainer::evalMetric(const Matrix &logits,
                    const std::vector<std::uint8_t> &mask) const
{
    switch (task_.metric) {
      case MetricKind::Accuracy:
        return accuracy(logits, data_.labels, mask);
      case MetricKind::MicroF1:
        return microF1(logits, multiTargets_, mask);
      case MetricKind::RocAuc:
        return rocAuc(logits, multiTargets_, mask);
    }
    return 0.0;
}

void
Trainer::saveCheckpoint(formats::Checkpoint &ck,
                        const formats::CheckpointStore &store,
                        const Adam &adam, const TrainResult &result,
                        std::uint32_t epoch, FaultInjector *faults)
{
    writeModelState(ck, model_, adam);
    writeTrajectories(ck, result);
    ck.setU64("epoch", epoch);
    auto saved = store.save(ck, epoch, faults);
    if (!saved)
        logMessage(LogLevel::Warn, "Trainer: checkpoint save failed: " +
                                       saved.error().describe());
}

std::uint32_t
Trainer::resumeFrom(const formats::CheckpointStore &store, Adam &adam,
                    TrainResult &result)
{
    if (store.epochsOnDisk().empty())
        return 0;
    auto loaded = store.loadLatest();
    if (!loaded) {
        logMessage(LogLevel::Warn,
                   "Trainer: no usable checkpoint, starting fresh: " +
                       loaded.error().describe());
        return 0;
    }
    const formats::Checkpoint &ck = loaded.value().checkpoint;
    auto restored = readModelState(ck, model_, adam);
    if (!restored) {
        logMessage(LogLevel::Warn,
                   "Trainer: checkpoint rejected, starting fresh: " +
                       restored.error().describe());
        return 0;
    }
    if (auto r = readTrajectories(ck, result); !r) {
        logMessage(LogLevel::Warn,
                   "Trainer: checkpoint rejected, starting fresh: " +
                       r.error().describe());
        return 0;
    }
    logMessage(LogLevel::Info,
               "Trainer: resuming after epoch " +
                   std::to_string(loaded.value().epoch));
    return static_cast<std::uint32_t>(loaded.value().epoch) + 1;
}

TrainResult
Trainer::run(const TrainConfig &cfg)
{
    checkInvariant(model_.config().outDim == task_.numClasses,
                   "Trainer: model outDim != task classes");
    // evalEvery == 0 would divide by zero in the eval-cadence check
    // below; treat it as "evaluate every epoch" rather than aborting a
    // long run on a config slip.
    const std::uint32_t eval_every =
        std::max<std::uint32_t>(cfg.evalEvery, 1);
    if (cfg.evalEvery == 0)
        logMessage(LogLevel::Warn,
                   "Trainer: evalEvery=0 clamped to 1 (every epoch)");
    const std::uint32_t ckpt_every =
        std::max<std::uint32_t>(cfg.checkpointEvery, 1);
    Stopwatch watch;
    TrainResult result;

    // Observation only: arming telemetry must not perturb training
    // (numerics never read telemetry state; bitwise-equality pinned in
    // tests/test_telemetry.cc).
    std::optional<telemetry::ArmGuard> arm;
    telemetry::TelemetryReport epoch_report;
    if (cfg.telemetry) {
        arm.emplace(true);
        epoch_report = telemetry::TelemetryReport::capture();
    }

    Adam adam(model_.params(), cfg.lr, 0.9f, 0.999f, 1e-8f,
              cfg.weightDecay);

    std::optional<formats::CheckpointStore> store;
    formats::Checkpoint ck;
    std::uint32_t start_epoch = 0;
    if (!cfg.checkpointDir.empty()) {
        store.emplace(cfg.checkpointDir, "trainer", cfg.checkpointKeep);
        start_epoch = resumeFrom(*store, adam, result);
    }

    for (std::uint32_t epoch = start_epoch; epoch < cfg.epochs;
         ++epoch) {
        MAXK_TRACE_SCOPE("train.epoch");
        if (cfg.faults)
            cfg.faults->maybeThrow("trainer.epoch");
        LossResult loss;
        const Matrix *logits = nullptr;
        {
            MAXK_TRACE_SCOPE("train.forward");
            logits = &model_.forward(data_.graph, data_.features, true);
        }
        {
            MAXK_TRACE_SCOPE("train.loss");
            loss = task_.multiLabel
                       ? sigmoidBce(*logits, multiTargets_,
                                    data_.trainMask)
                       : softmaxCrossEntropy(*logits, data_.labels,
                                             data_.trainMask);
        }
        result.trainLoss.push_back(loss.loss);
        {
            MAXK_TRACE_SCOPE("train.backward");
            model_.backward(data_.graph, loss.gradLogits);
        }
        {
            MAXK_TRACE_SCOPE("train.optimizer");
            adam.step();
        }

        if (epoch % eval_every == 0 || epoch + 1 == cfg.epochs) {
            MAXK_TRACE_SCOPE("train.eval");
            const Matrix &eval_logits =
                model_.forward(data_.graph, data_.features, false);
            const double val = evalMetric(eval_logits, data_.valMask);
            const double test = evalMetric(eval_logits, data_.testMask);
            result.evalEpochs.push_back(epoch);
            result.valMetric.push_back(val);
            result.testMetric.push_back(test);
            if (val >= result.bestValMetric) {
                result.bestValMetric = val;
                result.testAtBestVal = test;
            }
            result.finalTestMetric = test;
            if (cfg.verbose) {
                logMessage(LogLevel::Info,
                           "epoch " + std::to_string(epoch) + " loss " +
                               std::to_string(loss.loss) + " val " +
                               std::to_string(val) + " test " +
                               std::to_string(test));
            }
        }

        if (store &&
            ((epoch + 1) % ckpt_every == 0 || epoch + 1 == cfg.epochs))
            saveCheckpoint(ck, *store, adam, result, epoch, cfg.faults);

        if (cfg.telemetry) {
            // Per-epoch TelemetryReport: counters that advanced this
            // epoch, at Debug so steady runs stay quiet by default.
            telemetry::TelemetryReport now =
                telemetry::TelemetryReport::capture();
            const std::string delta = now.deltaText(epoch_report);
            if (!delta.empty())
                logMessage(LogLevel::Debug,
                           "telemetry epoch " + std::to_string(epoch) +
                               " deltas:\n" + delta);
            epoch_report = std::move(now);
        }
    }

    result.hostSeconds = watch.seconds();
    return result;
}

} // namespace maxk::nn
