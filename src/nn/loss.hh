/**
 * @file
 * Losses for the two task families of the system evaluation: masked
 * softmax cross-entropy for single-label node classification (Flickr,
 * Reddit, ogbn-products twins) and masked sigmoid BCE for multi-label
 * tasks (Yelp, ogbn-proteins twins).
 */

#ifndef MAXK_NN_LOSS_HH
#define MAXK_NN_LOSS_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"

namespace maxk::nn
{

/** Loss value plus gradient w.r.t. logits. */
struct LossResult
{
    double loss = 0.0;   //!< mean over masked nodes
    Matrix gradLogits;   //!< same shape as logits, zero on unmasked rows
};

/**
 * Masked softmax cross-entropy.
 *
 * @param logits (N x C)
 * @param labels length-N class ids
 * @param mask   length-N, nonzero = node contributes
 */
LossResult softmaxCrossEntropy(const Matrix &logits,
                               const std::vector<std::uint32_t> &labels,
                               const std::vector<std::uint8_t> &mask);

/**
 * Workspace-reusing core of softmaxCrossEntropy: the gradient and the
 * softmax scratch live in caller-owned storage (capacity is reused
 * across epochs — required by the sharded trainer's fully
 * allocation-free steady-state epochs), and `norm_count`, when nonzero,
 * overrides the masked-node count in the mean normalisation. Sharded
 * ranks pass the GLOBAL training-node count so each local gradient row
 * is bitwise-identical to the single-device gradient of that node.
 * Returns the (normalised) loss contribution of the masked rows.
 */
double softmaxCrossEntropyInto(const Matrix &logits,
                               const std::vector<std::uint32_t> &labels,
                               const std::vector<std::uint8_t> &mask,
                               std::size_t norm_count, Matrix &grad,
                               Matrix &probs);

/**
 * Masked sigmoid binary cross-entropy against dense {0,1} targets.
 *
 * @param logits  (N x C)
 * @param targets (N x C) with entries in {0,1}
 * @param mask    length-N node mask
 */
LossResult sigmoidBce(const Matrix &logits, const Matrix &targets,
                      const std::vector<std::uint8_t> &mask);

/** Workspace-reusing core of sigmoidBce; see softmaxCrossEntropyInto
 *  for the norm_count contract. */
double sigmoidBceInto(const Matrix &logits, const Matrix &targets,
                      const std::vector<std::uint8_t> &mask,
                      std::size_t norm_count, Matrix &grad);

/**
 * Build multi-label targets from community labels: bits `label` and
 * `(label+1) % C` are set, giving every node two active labels — a
 * learnable multi-label task standing in for Yelp/proteins categories.
 */
Matrix multiLabelTargets(const std::vector<std::uint32_t> &labels,
                         std::uint32_t num_classes);

} // namespace maxk::nn

#endif // MAXK_NN_LOSS_HH
