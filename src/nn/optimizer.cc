#include "nn/optimizer.hh"

#include <cmath>

#include "common/logging.hh"

namespace maxk::nn
{

Adam::Adam(ParamRefs params, Float lr, Float beta1, Float beta2, Float eps,
           Float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weightDecay_(weight_decay)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Param *p : params_) {
        m_.emplace_back(p->value.rows(), p->value.cols());
        v_.emplace_back(p->value.rows(), p->value.cols());
    }
}

void
Adam::step()
{
    ++t_;
    const double bc1 = 1.0 - std::pow(static_cast<double>(beta1_),
                                      static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(static_cast<double>(beta2_),
                                      static_cast<double>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Param *p = params_[i];
        checkInvariant(p->grad.size() == p->value.size(),
                       "Adam::step: gradient missing for " + p->name);
        Float *w = p->value.data();
        Float *g = p->grad.data();
        Float *m = m_[i].data();
        Float *v = v_[i].data();
        for (std::size_t e = 0; e < p->value.size(); ++e) {
            Float grad = g[e] + weightDecay_ * w[e];
            m[e] = beta1_ * m[e] + (1.0f - beta1_) * grad;
            v[e] = beta2_ * v[e] + (1.0f - beta2_) * grad * grad;
            const double mhat = m[e] / bc1;
            const double vhat = v[e] / bc2;
            w[e] -= static_cast<Float>(
                lr_ * mhat / (std::sqrt(vhat) + eps_));
        }
        p->grad.setZero();
    }
}

void
Adam::restoreState(const std::vector<Matrix> &m,
                   const std::vector<Matrix> &v, std::uint64_t t)
{
    checkInvariant(m.size() == m_.size() && v.size() == v_.size(),
                   "Adam::restoreState: moment count mismatch");
    for (std::size_t i = 0; i < m_.size(); ++i) {
        checkInvariant(m[i].size() == m_[i].size() &&
                           v[i].size() == v_[i].size(),
                       "Adam::restoreState: moment shape mismatch");
        m_[i] = m[i];
        v_[i] = v[i];
    }
    t_ = t;
}

Sgd::Sgd(ParamRefs params, Float lr) : params_(std::move(params)), lr_(lr)
{
}

void
Sgd::step()
{
    for (Param *p : params_) {
        Float *w = p->value.data();
        Float *g = p->grad.data();
        for (std::size_t e = 0; e < p->value.size(); ++e)
            w[e] -= lr_ * g[e];
        p->grad.setZero();
    }
}

} // namespace maxk::nn
