#include "nn/linear.hh"

#include "common/logging.hh"
#include "core/linear_backward_cbsr.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

namespace maxk::nn
{

Linear::Linear(std::size_t in, std::size_t out, Rng &rng,
               const std::string &name)
{
    weight_.name = name + ".weight";
    weight_.value.resize(in, out);
    xavierUniform(weight_.value, rng);
    weight_.resetGrad();

    bias_.name = name + ".bias";
    bias_.value.resize(1, out);
    bias_.resetGrad();
}

void
Linear::forward(const Matrix &x, Matrix &y) const
{
    checkInvariant(x.cols() == weight_.value.rows(),
                   "Linear::forward: input width mismatch");
    gemm(x, weight_.value, y);
    addRowVector(y, bias_.value);
}

void
Linear::backward(const Matrix &x, const Matrix &dy, Matrix &dx)
{
    checkInvariant(dy.cols() == weight_.value.cols(),
                   "Linear::backward: grad width mismatch");
    // dW += x^T dy (accumulated: a second backward call must add, not
    // overwrite, so multi-path layers like SAGE compose correctly).
    gemmTransA(x, dy, dwScratch_);
    addInPlace(weight_.grad, dwScratch_);
    // db += column sums of dy
    columnSums(dy, colScratch_);
    addInPlace(bias_.grad, colScratch_);
    // dx = dy W^T
    gemmTransB(dy, weight_.value, dx);
}

void
Linear::backward(const Matrix &x, const CbsrMatrix &dy, Matrix &dx)
{
    checkInvariant(dy.dimOrigin() == weight_.value.cols(),
                   "Linear::backward: CBSR grad width mismatch");
    cbsrGemmTransA(x, dy, dwScratch_);
    addInPlace(weight_.grad, dwScratch_);
    cbsrColumnSums(dy, colScratch_);
    addInPlace(bias_.grad, colScratch_);
    cbsrGemmTransB(dy, weight_.value, dx);
}

void
Linear::collectParams(ParamRefs &out)
{
    out.push_back(&weight_);
    out.push_back(&bias_);
}

} // namespace maxk::nn
