#include "nn/linear.hh"

#include "common/logging.hh"
#include "tensor/init.hh"
#include "tensor/ops.hh"

namespace maxk::nn
{

Linear::Linear(std::size_t in, std::size_t out, Rng &rng,
               const std::string &name)
{
    weight_.name = name + ".weight";
    weight_.value.resize(in, out);
    xavierUniform(weight_.value, rng);
    weight_.resetGrad();

    bias_.name = name + ".bias";
    bias_.value.resize(1, out);
    bias_.resetGrad();
}

void
Linear::forward(const Matrix &x, Matrix &y) const
{
    checkInvariant(x.cols() == weight_.value.rows(),
                   "Linear::forward: input width mismatch");
    gemm(x, weight_.value, y);
    addRowVector(y, bias_.value);
}

void
Linear::backward(const Matrix &x, const Matrix &dy, Matrix &dx)
{
    checkInvariant(dy.cols() == weight_.value.cols(),
                   "Linear::backward: grad width mismatch");
    // dW += x^T dy (accumulated: a second backward call must add, not
    // overwrite, so multi-path layers like SAGE compose correctly).
    Matrix dw;
    gemmTransA(x, dy, dw);
    addInPlace(weight_.grad, dw);
    // db += column sums of dy
    Matrix col;
    columnSums(dy, col);
    addInPlace(bias_.grad, col);
    // dx = dy W^T
    dx.resize(dy.rows(), weight_.value.rows());
    dx.setZero();
    gemmTransB(dy, weight_.value, dx);
}

void
Linear::collectParams(ParamRefs &out)
{
    out.push_back(&weight_);
    out.push_back(&bias_);
}

} // namespace maxk::nn
