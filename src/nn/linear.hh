/**
 * @file
 * Fully-connected layer Y = X W + b — the linear-transformation stage of
 * every GNN layer (Fig. 3 stage 1). The paper runs these through cuBLAS;
 * the reproduction computes them on the host and charges simulated time
 * through the GEMM roofline model at the trainer level.
 */

#ifndef MAXK_NN_LINEAR_HH
#define MAXK_NN_LINEAR_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "core/cbsr.hh"
#include "nn/param.hh"
#include "tensor/matrix.hh"

namespace maxk::nn
{

/** Dense linear layer with bias. */
class Linear
{
  public:
    Linear() = default;

    /**
     * @param in   input feature width
     * @param out  output feature width
     * @param rng  initialiser stream (Xavier uniform, zero bias)
     * @param name parameter name prefix
     */
    Linear(std::size_t in, std::size_t out, Rng &rng,
           const std::string &name);

    /** y = x * W + b. */
    void forward(const Matrix &x, Matrix &y) const;

    /**
     * Backward: accumulate dW += x^T * dy, db += colsum(dy) and produce
     * dx = dy * W^T.
     *
     * @param x  the input the forward pass saw
     * @param dy upstream gradient
     * @param dx output gradient w.r.t. x (resized)
     */
    void backward(const Matrix &x, const Matrix &dy, Matrix &dx);

    /**
     * CBSR-aware backward: the upstream gradient stays in the CBSR form
     * the backward SSpMM produced (k values per row at the forward
     * pattern). Computes the same dW/db/dX as the dense overload on
     * decompress(dy) — bitwise — without materialising the dense
     * gradient (core/linear_backward_cbsr.hh).
     */
    void backward(const Matrix &x, const CbsrMatrix &dy, Matrix &dx);

    /** Parameters (weight then bias). */
    void collectParams(ParamRefs &out);

    std::size_t inDim() const { return weight_.value.rows(); }
    std::size_t outDim() const { return weight_.value.cols(); }

    Param &weight() { return weight_; }
    Param &bias() { return bias_; }

  private:
    Param weight_;  //!< (in x out)
    Param bias_;    //!< (1 x out)

    // Persistent backward workspaces (gradients are accumulated into
    // the Param buffers via these, so repeated epochs allocate nothing).
    Matrix dwScratch_;   //!< dW of the current call
    Matrix colScratch_;  //!< db of the current call
};

} // namespace maxk::nn

#endif // MAXK_NN_LINEAR_HH
