/**
 * @file
 * One GNN layer in both of the paper's configurations (Fig. 2):
 *
 *  ReLU baseline:  out = Agg(A, ReLU(Linear1(x)))  [+ model-specific term]
 *  MaxK-GNN:       out = Agg(A, MaxK_k(Linear1(x))) with the sparsified
 *                  activation held in CBSR, aggregated by SpGEMM forward
 *                  and SSpMM backward.
 *
 * Model-specific combination:
 *  SAGE: out += Linear2(x)        (self connection, mean aggregator A)
 *  GCN:  out = Agg(...)           (symmetric-normalised A)
 *  GIN:  out += (1 + eps) * h     (sum aggregator A)
 *
 * The final layer of a network skips the nonlinearity (logits stay
 * dense), so both variants run one dense SpMM there.
 *
 * This class implements the fast functional path used for training
 * epochs; simulated kernel timing is produced separately by
 * profileEpoch() in trainer.hh (see DESIGN.md Sec. 4, decision 4).
 */

#ifndef MAXK_NN_GNN_LAYER_HH
#define MAXK_NN_GNN_LAYER_HH

#include <cstdint>
#include <string>
#include <utility>

#include "core/cbsr.hh"
#include "graph/csr.hh"
#include "nn/dropout.hh"
#include "nn/linear.hh"
#include "nn/param.hh"
#include "tensor/matrix.hh"

namespace maxk::nn
{

/** GNN architecture family. */
enum class GnnKind { Sage, Gcn, Gin };

/** Nonlinearity placed before the aggregation (Fig. 2). */
enum class Nonlinearity { Relu, MaxK };

const char *gnnKindName(GnnKind kind);
const char *nonlinearityName(Nonlinearity n);

/** Aggregator convention a model kind uses for its edge weights. */
Aggregator aggregatorFor(GnnKind kind);

/** Configuration of one layer. */
struct GnnLayerConfig
{
    GnnKind kind = GnnKind::Sage;
    Nonlinearity nonlin = Nonlinearity::Relu;
    std::uint32_t maxkK = 32;   //!< clamped to the layer width
    bool lastLayer = false;     //!< last layer: identity nonlinearity
    Float ginEps = 0.0f;
    Float dropout = 0.0f;

    /**
     * Run the MaxK nonlinearity and the SpGEMM aggregation as one fused
     * launch: profileEpoch selects the spgemmForwardFused cost model,
     * where the fused launch saves the sp_data global round-trip
     * (core/spgemm_forward.hh). The functional path is phase-split
     * either way (forwardCompute / forwardCombine, so the sharded
     * executor can exchange halo rows in between) and the result is
     * bitwise-identical — the fused launch executes the exact same
     * arithmetic as compress-then-aggregate.
     */
    bool fusedForward = false;

    /**
     * SpMM variant for the dense aggregation path: "" = static
     * row-wise default, "auto" = adaptive selector, else a registered
     * variant name (kernels/registry.hh). Every variant shares the
     * same fp32 functional loop, so training numerics are invariant —
     * the choice drives the simulated schedule profileEpoch charges
     * and what the sharded executor pins per partition.
     */
    std::string kernelVariant;
};

/** One trainable GNN layer (fast functional path). */
class GnnLayer
{
  public:
    GnnLayer(const GnnLayerConfig &cfg, std::size_t in_dim,
             std::size_t out_dim, Rng &rng, const std::string &name);

    /**
     * Forward pass; caches intermediates for backward.
     *
     * @param a        adjacency with this model's aggregator weights
     * @param x        input features (N x in_dim)
     * @param out      output (N x out_dim)
     * @param training enables dropout
     * @param rng      dropout stream
     */
    void forward(const CsrGraph &a, const Matrix &x, Matrix &out,
                 bool training, Rng &rng);

    /**
     * Backward pass using the cached forward state. Accumulates
     * parameter gradients and produces dx.
     *
     * The structural transpose is never materialised: CSR(A) is CSC(A^T)
     * so the same arrays serve the reverse aggregation, as in the
     * paper's SSpMM (Fig. 5).
     */
    void backward(const CsrGraph &a, const Matrix &d_out, Matrix &dx);

    /*
     * Sharded-execution phase hooks (src/dist/). The sharded executor
     * must exchange boundary activation rows *between* the nonlinearity
     * and the aggregation (that is the point where MaxK models carry
     * CBSR rows — the paper's compounding communication win), and
     * exchange partial gradients between the reverse aggregation and
     * the rest of the backward pass. forward() and backward() above are
     * expressed in terms of these phases, so the single-device path and
     * the sharded path execute the exact same arithmetic in the same
     * order (bitwise-identical at one rank).
     */

    /** Forward phase 1: dropout + Linear1 + nonlinearity (no
     *  aggregation). Fills the activation accessible below. */
    void forwardCompute(const Matrix &x, bool training, Rng &rng);

    /** Forward phase 2: aggregation over `a` plus the model-specific
     *  combination (SAGE self path / GIN eps term) into `out`. */
    void forwardCombine(const CsrGraph &a, Matrix &out);

    /** Whether the current forward activation is CBSR (MaxK non-last
     *  layer) rather than dense. Valid after forwardCompute(). */
    bool activationIsCbsr() const { return usedCbsr_; }

    /** Mutable activation buffers — the sharded executor overwrites the
     *  halo rows with the owners' exchanged values before
     *  forwardCombine(). */
    Matrix &activationDense() { return hDense_; }
    CbsrMatrix &activationCbsr() { return cbsr_; }

    /** Backward phase 1: reverse aggregation only (A^T * d_out, dense
     *  or SSpMM at the forward pattern). */
    void backwardAgg(const CsrGraph &a, const Matrix &d_out);

    /** Mutable reverse-aggregation gradients — the sharded executor
     *  ships the halo rows back to their owners (which add them into
     *  their local rows) and zeroes them before backwardPost(). */
    Matrix &gradAggDense() { return dh_; }
    CbsrMatrix &gradAggCbsr() { return dcbsr_; }

    /** Backward phase 2: nonlinearity backward, Linear backward, self
     *  path, dropout backward — everything after the aggregation. */
    void backwardPost(const CsrGraph &a, const Matrix &d_out, Matrix &dx);

    void collectParams(ParamRefs &out);

    /** Re-pin the aggregation variant after construction (the sharded
     *  executor resolves "auto" once against its rank's extended
     *  subgraph and pins the result here). */
    void setKernelVariant(std::string v)
    {
        cfg_.kernelVariant = std::move(v);
    }

    const GnnLayerConfig &config() const { return cfg_; }
    std::size_t inDim() const { return linear1_.inDim(); }
    std::size_t outDim() const { return linear1_.outDim(); }

    /** Effective k after clamping to the layer width. */
    std::uint32_t effectiveK() const;

    /** CBSR activation of the last forward (MaxK layers only). */
    const CbsrMatrix &lastCbsr() const { return cbsr_; }

  private:
    GnnLayerConfig cfg_;
    Linear linear1_;
    Linear linear2_;  //!< SAGE self path only
    Dropout dropout_;

    // Cached forward state.
    Matrix xDropped_;   //!< layer input after dropout
    Matrix y_;          //!< Linear1 output (pre-activation)
    Matrix hDense_;     //!< activation (dense form; ReLU/identity path)
    CbsrMatrix cbsr_;   //!< activation (CBSR form; MaxK path)
    bool usedCbsr_ = false;

    // Persistent backward/forward workspaces: every per-call temporary
    // lives here so steady-state epochs perform zero Matrix/CbsrMatrix
    // heap allocations (asserted by tests/test_workspace.cc via
    // tensor/alloc_probe.hh).
    Matrix self_;       //!< SAGE self-path output (forward)
    CbsrMatrix dcbsr_;  //!< CBSR gradient at the forward pattern
    Matrix dh_;         //!< reverse-aggregated dense gradient
    Matrix dy_;         //!< gradient w.r.t. the pre-activation
    Matrix dxDropped_;  //!< gradient w.r.t. the dropped input
    Matrix dxSelf_;     //!< SAGE self-path input gradient
};

/** out = A * x for dense x (reference aggregation, fast path). */
void aggregateDense(const CsrGraph &a, const Matrix &x, Matrix &out);

/** out = A^T * x for dense x (reverse aggregation, fast path). */
void aggregateDenseTransposed(const CsrGraph &a, const Matrix &x,
                              Matrix &out);

/** out = A * cbsr (row-wise product SpGEMM semantics, fast path). */
void aggregateCbsr(const CsrGraph &a, const CbsrMatrix &xs, Matrix &out);

/**
 * dxs.data = sampled A^T * dxl at dxs's pattern (SSpMM semantics, fast
 * path). dxs must already carry the forward pattern.
 */
void aggregateCbsrBackward(const CsrGraph &a, const Matrix &dxl,
                           CbsrMatrix &dxs);

/** MaxK + CBSR compression without device simulation (fast path). */
void maxkCompressFast(const Matrix &x, std::uint32_t k, CbsrMatrix &out);

} // namespace maxk::nn

#endif // MAXK_NN_GNN_LAYER_HH
