#include "nn/checkpoint.hh"

namespace maxk::nn
{

void
writeModelState(formats::Checkpoint &ck, GnnModel &model,
                const Adam &adam)
{
    const ParamRefs params = model.params();
    ck.setU64("param.count", params.size());
    std::vector<std::uint64_t> shapes;
    shapes.reserve(params.size() * 2);
    for (const Param *p : params) {
        shapes.push_back(p->value.rows());
        shapes.push_back(p->value.cols());
    }
    ck.setU64s("param.shape", shapes);
    for (std::size_t i = 0; i < params.size(); ++i) {
        ck.setMatrix("param." + std::to_string(i), params[i]->value);
        ck.setMatrix("adam.m." + std::to_string(i),
                     adam.firstMoments()[i]);
        ck.setMatrix("adam.v." + std::to_string(i),
                     adam.secondMoments()[i]);
    }
    ck.setU64("adam.t", adam.stepCount());

    std::uint64_t words[4];
    model.dropoutRng().stateWords(words);
    ck.setU64s("rng.drop", {words[0], words[1], words[2], words[3]});
}

Expected<std::monostate, IoError>
readModelState(const formats::Checkpoint &ck, GnnModel &model,
               Adam &adam)
{
    const ParamRefs params = model.params();

    auto count = ck.getU64("param.count");
    if (!count)
        return unexpected(std::move(count.error()));
    if (count.value() != params.size())
        return unexpected(IoError{
            IoErrorCode::CountMismatch, "", 0,
            "checkpoint holds " + std::to_string(count.value()) +
                " parameter tensors but the model has " +
                std::to_string(params.size())});

    auto shapes = ck.getU64s("param.shape");
    if (!shapes)
        return unexpected(std::move(shapes.error()));
    if (shapes.value().size() != params.size() * 2)
        return unexpected(IoError{
            IoErrorCode::CountMismatch, "", 0,
            "checkpoint section 'param.shape' length does not match "
            "its parameter count"});
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (shapes.value()[2 * i] != params[i]->value.rows() ||
            shapes.value()[2 * i + 1] != params[i]->value.cols())
            return unexpected(IoError{
                IoErrorCode::CountMismatch, "", 0,
                "checkpoint parameter " + std::to_string(i) + " ('" +
                    params[i]->name +
                    "') was written with a different shape — the "
                    "checkpoint belongs to a different model "
                    "configuration"});
    }

    // Shapes verified; restore in place. Moments go through temporary
    // matrices because Adam owns its state (resume is a one-time path;
    // the per-epoch save path is the allocation-free one).
    std::vector<Matrix> m(params.size()), v(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (auto r = ck.getMatrix("param." + std::to_string(i),
                                  params[i]->value);
            !r)
            return r;
        if (auto r = ck.getMatrix("adam.m." + std::to_string(i), m[i]);
            !r)
            return r;
        if (auto r = ck.getMatrix("adam.v." + std::to_string(i), v[i]);
            !r)
            return r;
    }
    auto t = ck.getU64("adam.t");
    if (!t)
        return unexpected(std::move(t.error()));
    adam.restoreState(m, v, t.value());

    auto words = ck.getU64s("rng.drop");
    if (!words)
        return unexpected(std::move(words.error()));
    if (words.value().size() != 4)
        return unexpected(IoError{
            IoErrorCode::CountMismatch, "", 0,
            "checkpoint section 'rng.drop' must hold four u64 words"});
    model.dropoutRng().setStateWords(words.value().data());
    return std::monostate{};
}

} // namespace maxk::nn
