/**
 * @file
 * Evaluation metrics matching Table 5's columns: accuracy (Reddit,
 * products, Flickr), micro-F1 (Yelp), and ROC-AUC (ogbn-proteins).
 */

#ifndef MAXK_NN_METRICS_HH
#define MAXK_NN_METRICS_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"

namespace maxk::nn
{

/** Fraction of masked nodes whose argmax logit equals the label. */
double accuracy(const Matrix &logits,
                const std::vector<std::uint32_t> &labels,
                const std::vector<std::uint8_t> &mask);

/**
 * Micro-averaged F1 over masked nodes with per-class threshold 0 on the
 * logits (i.e. sigmoid > 0.5).
 */
double microF1(const Matrix &logits, const Matrix &targets,
               const std::vector<std::uint8_t> &mask);

/**
 * Micro ROC-AUC over all (masked node, class) pairs via the rank
 * statistic; ties share average rank.
 */
double rocAuc(const Matrix &logits, const Matrix &targets,
              const std::vector<std::uint8_t> &mask);

} // namespace maxk::nn

#endif // MAXK_NN_METRICS_HH
