#include "nn/gnn_layer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/maxk.hh"
#include "core/transpose_gather.hh"
#include "kernels/registry.hh"
#include "kernels/spmm_fast.hh"
#include "tensor/ops.hh"

namespace maxk::nn
{

namespace
{
/** Rows per chunk for the row-parallel aggregation loops. */
constexpr std::size_t kRowGrain = 16;
} // namespace

const char *
gnnKindName(GnnKind kind)
{
    switch (kind) {
      case GnnKind::Sage: return "SAGE";
      case GnnKind::Gcn:  return "GCN";
      case GnnKind::Gin:  return "GIN";
    }
    return "?";
}

const char *
nonlinearityName(Nonlinearity n)
{
    return n == Nonlinearity::Relu ? "ReLU" : "MaxK";
}

Aggregator
aggregatorFor(GnnKind kind)
{
    switch (kind) {
      case GnnKind::Sage: return Aggregator::SageMean;
      case GnnKind::Gcn:  return Aggregator::Gcn;
      case GnnKind::Gin:  return Aggregator::Gin;
    }
    return Aggregator::SageMean;
}

void
aggregateDense(const CsrGraph &a, const Matrix &x, Matrix &out)
{
    // The shared fp32 fast loop behind every registered forward variant
    // (kernels/spmm_fast.hh); the historical name stays for call sites.
    spmmRowWiseFast(a, x, out);
}

void
aggregateDenseTransposed(const CsrGraph &a, const Matrix &x, Matrix &out)
{
    // Shared fp32 reverse-aggregation loop (kernels/spmm_fast.hh).
    spmmTransposedFast(a, x, out);
}

void
aggregateCbsr(const CsrGraph &a, const CbsrMatrix &xs, Matrix &out)
{
    const std::uint32_t dim_k = xs.dimK();
    out.ensureShape(a.numNodes(), xs.dimOrigin());
    out.setZero();
    parallelFor(0, a.numNodes(), kRowGrain,
                [&](std::uint32_t, std::size_t begin, std::size_t end) {
                    for (std::size_t r = begin; r < end; ++r) {
                        const NodeId i = static_cast<NodeId>(r);
                        Float *o = out.row(i);
                        for (EdgeId e = a.rowPtr()[i];
                             e < a.rowPtr()[i + 1]; ++e) {
                            const NodeId j = a.colIdx()[e];
                            const Float v = a.values()[e];
                            const Float *data = xs.dataRow(j);
                            for (std::uint32_t kk = 0; kk < dim_k; ++kk)
                                o[xs.indexAt(j, kk)] += v * data[kk];
                        }
                    }
                });
}

void
aggregateCbsrBackward(const CsrGraph &a, const Matrix &dxl,
                      CbsrMatrix &dxs)
{
    const std::uint32_t dim_k = dxs.dimK();
    dxs.zeroData();
    if (resolveThreads(0) <= 1) {
        for (NodeId i = 0; i < a.numNodes(); ++i) {
            const Float *g = dxl.row(i);
            for (EdgeId e = a.rowPtr()[i]; e < a.rowPtr()[i + 1]; ++e) {
                const NodeId j = a.colIdx()[e];
                const Float v = a.values()[e];
                Float *out = dxs.dataRow(j);
                for (std::uint32_t kk = 0; kk < dim_k; ++kk)
                    out[kk] += v * g[dxs.indexAt(j, kk)];
            }
        }
        return;
    }

    // Scatter-shaped: bitwise-deterministic gather over the stable
    // transpose (see core/transpose_gather.hh).
    gatherTransposedCbsr(a, dxl, dxs);
}

void
maxkCompressFast(const Matrix &x, std::uint32_t k, CbsrMatrix &out)
{
    const NodeId n = static_cast<NodeId>(x.rows());
    const std::uint32_t dim = static_cast<std::uint32_t>(x.cols());
    out.ensureShape(n, k, dim);
    parallelFor(0, n, kRowGrain,
                [&](std::uint32_t, std::size_t begin, std::size_t end) {
                    std::vector<std::uint32_t> selected;
                    for (std::size_t r = begin; r < end; ++r) {
                        const Float *row = x.row(r);
                        pivotSelect(row, dim, k, selected);
                        Float *data =
                            out.dataRow(static_cast<NodeId>(r));
                        for (std::uint32_t kk = 0; kk < k; ++kk) {
                            data[kk] = row[selected[kk]];
                            out.setIndex(static_cast<NodeId>(r), kk,
                                         selected[kk]);
                        }
                    }
                });
}

GnnLayer::GnnLayer(const GnnLayerConfig &cfg, std::size_t in_dim,
                   std::size_t out_dim, Rng &rng, const std::string &name)
    : cfg_(cfg),
      linear1_(in_dim, out_dim, rng, name + ".linear1"),
      dropout_(cfg.dropout)
{
    if (cfg_.kind == GnnKind::Sage)
        linear2_ = Linear(in_dim, out_dim, rng, name + ".linear2");
}

std::uint32_t
GnnLayer::effectiveK() const
{
    return std::min<std::uint32_t>(
        cfg_.maxkK, static_cast<std::uint32_t>(linear1_.outDim()));
}

void
GnnLayer::forward(const CsrGraph &a, const Matrix &x, Matrix &out,
                  bool training, Rng &rng)
{
    checkInvariant(x.rows() == a.numNodes(),
                   "GnnLayer::forward: feature row count != |V|");
    // The two phases run back-to-back here; the sharded executor
    // (dist::ShardedModel) inserts the boundary-row halo exchange
    // between them. The fused-forward flag only selects the fused cost
    // model in profileEpoch; the fused launch executes the exact same
    // arithmetic as compress-then-aggregate, so the functional result
    // is bitwise-identical either way.
    forwardCompute(x, training, rng);
    forwardCombine(a, out);
}

void
GnnLayer::forwardCompute(const Matrix &x, bool training, Rng &rng)
{
    dropout_.forward(x, xDropped_, training, rng);
    linear1_.forward(xDropped_, y_);

    usedCbsr_ = cfg_.nonlin == Nonlinearity::MaxK && !cfg_.lastLayer;
    if (usedCbsr_) {
        // MaxK -> CBSR (Fig. 2b path); aggregated in forwardCombine.
        maxkCompressFast(y_, effectiveK(), cbsr_);
    } else {
        if (cfg_.lastLayer)
            hDense_ = y_;  // identity: logits stay dense
        else
            reluForward(y_, hDense_);
    }
}

void
GnnLayer::forwardCombine(const CsrGraph &a, Matrix &out)
{
    if (usedCbsr_) {
        aggregateCbsr(a, cbsr_, out);
    } else {
        // Registry dispatch: every forward variant shares the same fp32
        // fast loop, so the configured variant ("auto" included) cannot
        // perturb training numerics — it selects the simulated schedule
        // profileEpoch charges for this aggregation.
        kernels::resolveSpmmVariant(cfg_.kernelVariant, a, hDense_.cols())
            .fast(a, hDense_, out);
    }

    if (cfg_.kind == GnnKind::Sage) {
        linear2_.forward(xDropped_, self_);
        addInPlace(out, self_);
    } else if (cfg_.kind == GnnKind::Gin) {
        // out += (1 + eps) * h
        const Float w = 1.0f + cfg_.ginEps;
        if (usedCbsr_) {
            // Row-aligned scatter: each output row has one writer, so
            // the parallel sweep is bitwise-identical to the serial one.
            parallelFor(0, cbsr_.rows(), kRowGrain,
                        [&](std::uint32_t, std::size_t begin,
                            std::size_t end) {
                            for (std::size_t r = begin; r < end; ++r) {
                                const NodeId row =
                                    static_cast<NodeId>(r);
                                const Float *data = cbsr_.dataRow(row);
                                Float *o = out.row(r);
                                for (std::uint32_t kk = 0;
                                     kk < cbsr_.dimK(); ++kk)
                                    o[cbsr_.indexAt(row, kk)] +=
                                        w * data[kk];
                            }
                        });
        } else {
            axpy(out, w, hDense_);
        }
    }
}

void
GnnLayer::backward(const CsrGraph &a, const Matrix &d_out, Matrix &dx)
{
    checkInvariant(d_out.rows() == a.numNodes(),
                   "GnnLayer::backward: gradient row count != |V|");
    // Phase split mirrors forward(): the sharded executor inserts the
    // reverse halo exchange (partial gradients back to their owners)
    // between the two calls.
    backwardAgg(a, d_out);
    backwardPost(a, d_out, dx);
}

void
GnnLayer::backwardAgg(const CsrGraph &a, const Matrix &d_out)
{
    checkInvariant(d_out.rows() == a.numNodes(),
                   "GnnLayer::backwardAgg: gradient row count != |V|");
    if (usedCbsr_) {
        // SSpMM: sampled A^T * d_out at the forward pattern.
        dcbsr_.adoptPattern(cbsr_);
        aggregateCbsrBackward(a, d_out, dcbsr_);
    } else {
        aggregateDenseTransposed(a, d_out, dh_);
    }
}

void
GnnLayer::backwardPost(const CsrGraph &a, const Matrix &d_out, Matrix &dx)
{
    (void)a;
    const Float gin_w = 1.0f + cfg_.ginEps;

    // Gradient w.r.t. the pre-activation y.
    if (usedCbsr_) {
        if (cfg_.kind == GnnKind::Gin) {
            // Direct (1+eps) h path, masked by the same pattern —
            // folded into the CBSR gradient by the same row-aligned
            // gather (one writer per row, bitwise-deterministic).
            parallelFor(0, dcbsr_.rows(), kRowGrain,
                        [&](std::uint32_t, std::size_t begin,
                            std::size_t end) {
                            for (std::size_t r = begin; r < end; ++r) {
                                const NodeId row =
                                    static_cast<NodeId>(r);
                                Float *g = dcbsr_.dataRow(row);
                                const Float *go = d_out.row(r);
                                for (std::uint32_t kk = 0;
                                     kk < dcbsr_.dimK(); ++kk)
                                    g[kk] += gin_w *
                                             go[dcbsr_.indexAt(row, kk)];
                            }
                        });
        }
        // MaxK's backward reuses the forward sparsity (Sec. 3.1), so
        // the gradient stays in CBSR form all the way into the linear
        // backward — no dense decompress round-trip (ISSUE 4).
        linear1_.backward(xDropped_, dcbsr_, dxDropped_);
    } else {
        if (cfg_.kind == GnnKind::Gin)
            axpy(dh_, gin_w, d_out);
        if (!cfg_.lastLayer)
            reluBackward(y_, dh_, dy_);
        // The last layer's nonlinearity is the identity: dh_ already is
        // the pre-activation gradient, no move into dy_ (which would
        // leave an empty buffer to reallocate next epoch).
        const Matrix &dy = cfg_.lastLayer ? dh_ : dy_;
        linear1_.backward(xDropped_, dy, dxDropped_);
    }

    if (cfg_.kind == GnnKind::Sage) {
        linear2_.backward(xDropped_, d_out, dxSelf_);
        addInPlace(dxDropped_, dxSelf_);
    }

    dropout_.backward(dxDropped_, dx);
}

void
GnnLayer::collectParams(ParamRefs &out)
{
    linear1_.collectParams(out);
    if (cfg_.kind == GnnKind::Sage)
        linear2_.collectParams(out);
}

} // namespace maxk::nn
