/**
 * @file
 * Full-batch training loop plus the simulated epoch-time profiler.
 *
 * The two concerns are deliberately decoupled (DESIGN.md Sec. 1):
 *  - Trainer runs the fast functional path to measure accuracy /
 *    convergence on the (small) accuracy twin;
 *  - profileEpoch runs the simulated kernels once on the (larger,
 *    degree-faithful) kernel twin to obtain the epoch-time composition
 *    that Fig. 1 / Fig. 9 / Table 5 report. Epoch timing is workload-
 *    shape dependent but not weight dependent, so one profile per
 *    configuration suffices.
 */

#ifndef MAXK_NN_TRAINER_HH
#define MAXK_NN_TRAINER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "graph/csr.hh"
#include "graph/edge_groups.hh"
#include "graph/registry.hh"
#include "kernels/sim_options.hh"
#include "nn/model.hh"

namespace maxk::formats
{
class Checkpoint;
class CheckpointStore;
} // namespace maxk::formats

namespace maxk::nn
{

class Adam;

/** Which baseline SpMM implementation a profile charges (Fig. 9 axes). */
enum class BaselineKernel { CuSparse, Gnna };

/** Simulated per-epoch time decomposition (seconds). */
struct EpochTiming
{
    double aggFwd = 0.0;    //!< forward aggregation (SpMM or SpGEMM)
    double aggBwd = 0.0;    //!< backward aggregation (SpMM or SSpMM)
    double linear = 0.0;    //!< all GEMM work, fwd + bwd
    double nonlin = 0.0;    //!< ReLU or MaxK + CBSR (de)compression
    double other = 0.0;     //!< loss, optimizer, bookkeeping

    double total() const
    {
        return aggFwd + aggBwd + linear + nonlin + other;
    }

    /** Fraction of epoch spent in aggregation (the Amdahl p of Sec. 5). */
    double
    aggFraction() const
    {
        const double t = total();
        return t > 0.0 ? (aggFwd + aggBwd) / t : 0.0;
    }
};

/**
 * Profile one simulated training epoch of `cfg` on graph `a`.
 * For ReLU models the aggregation is charged to `baseline`'s SpMM; for
 * MaxK models to the SpGEMM/SSpMM kernels. Deterministic given opt.
 */
EpochTiming profileEpoch(const ModelConfig &cfg, const CsrGraph &a,
                         const EdgeGroupPartition &part,
                         const SimOptions &opt,
                         BaselineKernel baseline = BaselineKernel::CuSparse);

/** Training hyper-parameters (Table 3 analogue). */
struct TrainConfig
{
    std::uint32_t epochs = 100;
    Float lr = 0.01f;
    Float weightDecay = 0.0f;
    std::uint32_t evalEvery = 1;  //!< metric sampling cadence (0 is
                                  //!< clamped to 1: eval every epoch)
    std::uint64_t seed = 7;
    bool verbose = false;

    /**
     * Checkpoint/restore (ISSUE 9). When checkpointDir is non-empty the
     * trainer writes a rotated end-of-epoch checkpoint every
     * checkpointEvery epochs (keeping checkpointKeep images) and, on
     * the next run(), resumes from the newest verifiable image — with
     * bitwise-identical final state to the uninterrupted run.
     */
    std::string checkpointDir;
    std::uint32_t checkpointEvery = 1;
    std::uint32_t checkpointKeep = 2;

    /** Optional fault injector (hook sites "trainer.epoch",
     *  "checkpoint.write"). Not owned. */
    FaultInjector *faults = nullptr;

    /**
     * Arm the telemetry subsystem for the duration of the run and log
     * a TelemetryReport counter-delta summary per epoch (ISSUE 10).
     * Observation only: the trained state is bitwise-identical with
     * the knob on or off (pinned by tests/test_telemetry.cc).
     */
    bool telemetry = false;
};

/** Outcome of a training run. */
struct TrainResult
{
    std::vector<double> trainLoss;    //!< one per epoch
    std::vector<double> valMetric;    //!< one per eval point
    std::vector<double> testMetric;   //!< one per eval point
    std::vector<std::uint32_t> evalEpochs;

    double bestValMetric = 0.0;
    double testAtBestVal = 0.0;   //!< Table 5's reported number
    double finalTestMetric = 0.0;
    double hostSeconds = 0.0;     //!< wall clock of the whole run
};

/** Full-batch trainer for one model on one training twin. */
class Trainer
{
  public:
    /**
     * @param model trainable model (aggregator weights are applied to
     *              `data.graph` according to the model kind)
     * @param data  graph + features + labels + masks (mutated: edge
     *              weights are set for the model's aggregator)
     * @param task  metric / multi-label configuration
     */
    Trainer(GnnModel &model, TrainingData &data, const TrainingTask &task);

    /** Run the loop; deterministic given cfg.seed. */
    TrainResult run(const TrainConfig &cfg);

  private:
    double evalMetric(const Matrix &logits,
                      const std::vector<std::uint8_t> &mask) const;

    /** Write the end-of-`epoch` state into `store` (rotated image). */
    void saveCheckpoint(formats::Checkpoint &ck,
                        const formats::CheckpointStore &store,
                        const Adam &adam, const TrainResult &result,
                        std::uint32_t epoch, FaultInjector *faults);

    /**
     * Restore from the newest verifiable image in `store` (falling back
     * past corrupt ones). Returns the epoch to resume at (0 when no
     * usable checkpoint exists); fills `result`'s trajectories.
     */
    std::uint32_t resumeFrom(const formats::CheckpointStore &store,
                             Adam &adam, TrainResult &result);

    GnnModel &model_;
    TrainingData &data_;
    const TrainingTask &task_;
    Matrix multiTargets_;  //!< BCE targets when task_.multiLabel
};

} // namespace maxk::nn

#endif // MAXK_NN_TRAINER_HH
