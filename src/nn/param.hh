/**
 * @file
 * Trainable parameter: a value matrix with its gradient accumulator.
 * Layers expose their parameters through collectParams() so optimizers
 * can iterate them generically.
 */

#ifndef MAXK_NN_PARAM_HH
#define MAXK_NN_PARAM_HH

#include <string>
#include <vector>

#include "tensor/matrix.hh"

namespace maxk::nn
{

/** A learnable tensor and its gradient. */
struct Param
{
    std::string name;
    Matrix value;
    Matrix grad;

    /** Allocate grad with value's shape and zero it. */
    void
    resetGrad()
    {
        if (grad.rows() != value.rows() || grad.cols() != value.cols())
            grad.resize(value.rows(), value.cols());
        else
            grad.setZero();
    }
};

/** Non-owning list of parameters (layers keep ownership). */
using ParamRefs = std::vector<Param *>;

} // namespace maxk::nn

#endif // MAXK_NN_PARAM_HH
