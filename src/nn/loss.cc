#include "nn/loss.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "tensor/ops.hh"

namespace maxk::nn
{

double
softmaxCrossEntropyInto(const Matrix &logits,
                        const std::vector<std::uint32_t> &labels,
                        const std::vector<std::uint8_t> &mask,
                        std::size_t norm_count, Matrix &grad,
                        Matrix &probs)
{
    checkInvariant(labels.size() == logits.rows(),
                   "softmaxCrossEntropy: label count mismatch");
    checkInvariant(mask.size() == logits.rows(),
                   "softmaxCrossEntropy: mask size mismatch");

    grad.resize(logits.rows(), logits.cols());

    std::size_t active = 0;
    for (std::uint8_t m : mask)
        active += m ? 1 : 0;
    if (active == 0)
        return 0.0;
    const std::size_t denom = norm_count ? norm_count : active;

    rowSoftmax(logits, probs);

    const double inv_n = 1.0 / static_cast<double>(denom);
    double loss = 0.0;
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        if (!mask[r])
            continue;
        const std::uint32_t y = labels[r];
        checkInvariant(y < logits.cols(),
                       "softmaxCrossEntropy: label out of range");
        const Float p = std::max(probs.at(r, y), 1e-12f);
        loss -= std::log(static_cast<double>(p));
        Float *g = grad.row(r);
        const Float *pr = probs.row(r);
        for (std::size_t c = 0; c < logits.cols(); ++c)
            g[c] = static_cast<Float>((pr[c] - (c == y ? 1.0f : 0.0f)) *
                                      inv_n);
    }
    return loss * inv_n;
}

LossResult
softmaxCrossEntropy(const Matrix &logits,
                    const std::vector<std::uint32_t> &labels,
                    const std::vector<std::uint8_t> &mask)
{
    LossResult result;
    Matrix probs;
    result.loss = softmaxCrossEntropyInto(logits, labels, mask, 0,
                                          result.gradLogits, probs);
    return result;
}

double
sigmoidBceInto(const Matrix &logits, const Matrix &targets,
               const std::vector<std::uint8_t> &mask,
               std::size_t norm_count, Matrix &grad)
{
    checkInvariant(targets.rows() == logits.rows() &&
                       targets.cols() == logits.cols(),
                   "sigmoidBce: target shape mismatch");
    checkInvariant(mask.size() == logits.rows(),
                   "sigmoidBce: mask size mismatch");

    grad.resize(logits.rows(), logits.cols());

    std::size_t active = 0;
    for (std::uint8_t m : mask)
        active += m ? 1 : 0;
    if (active == 0)
        return 0.0;

    const double denom =
        static_cast<double>(norm_count ? norm_count : active) *
        static_cast<double>(logits.cols());
    double loss = 0.0;
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        if (!mask[r])
            continue;
        const Float *z = logits.row(r);
        const Float *t = targets.row(r);
        Float *g = grad.row(r);
        for (std::size_t c = 0; c < logits.cols(); ++c) {
            // Numerically-stable BCE-with-logits:
            // loss = max(z,0) - z*t + log(1 + exp(-|z|)).
            const double zd = z[c], td = t[c];
            loss += std::max(zd, 0.0) - zd * td +
                    std::log1p(std::exp(-std::fabs(zd)));
            const double sig = 1.0 / (1.0 + std::exp(-zd));
            g[c] = static_cast<Float>((sig - td) / denom);
        }
    }
    return loss / denom;
}

LossResult
sigmoidBce(const Matrix &logits, const Matrix &targets,
           const std::vector<std::uint8_t> &mask)
{
    LossResult result;
    result.loss =
        sigmoidBceInto(logits, targets, mask, 0, result.gradLogits);
    return result;
}

Matrix
multiLabelTargets(const std::vector<std::uint32_t> &labels,
                  std::uint32_t num_classes)
{
    Matrix t(labels.size(), num_classes);
    for (std::size_t r = 0; r < labels.size(); ++r) {
        const std::uint32_t a = labels[r] % num_classes;
        const std::uint32_t b = (labels[r] + 1) % num_classes;
        t.at(r, a) = 1.0f;
        t.at(r, b) = 1.0f;
    }
    return t;
}

} // namespace maxk::nn
