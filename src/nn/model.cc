#include "nn/model.hh"

#include <cstdio>

#include "common/logging.hh"
#include "common/trace.hh"

namespace maxk::nn
{

namespace
{

/** "layerN" tag for span args; empty (and free) when disarmed. */
void
layerTag(char (&tag)[32], std::size_t l)
{
    tag[0] = '\0';
    if (telemetry::armed())
        std::snprintf(tag, sizeof(tag), "layer%zu", l);
}

} // namespace

GnnModel::GnnModel(const ModelConfig &cfg)
    : cfg_(cfg), dropRng_(cfg.seed ^ 0xD80C7ull)
{
    checkInvariant(cfg.numLayers >= 1, "GnnModel: need >= 1 layer");
    Rng init_rng(cfg.seed);
    layers_.reserve(cfg.numLayers);
    for (std::uint32_t l = 0; l < cfg.numLayers; ++l) {
        GnnLayerConfig lc;
        lc.kind = cfg.kind;
        lc.nonlin = cfg.nonlin;
        lc.maxkK = cfg.maxkK;
        lc.fusedForward = cfg.fusedForward;
        lc.lastLayer = l + 1 == cfg.numLayers;
        lc.ginEps = cfg.ginEps;
        lc.dropout = cfg.dropout;
        lc.kernelVariant = cfg.kernelVariant;
        layers_.emplace_back(lc, layerInDim(l), layerOutDim(l), init_rng,
                             "layer" + std::to_string(l));
    }
}

std::size_t
GnnModel::layerInDim(std::uint32_t l) const
{
    return l == 0 ? cfg_.inDim : cfg_.hiddenDim;
}

std::size_t
GnnModel::layerOutDim(std::uint32_t l) const
{
    return l + 1 == cfg_.numLayers ? cfg_.outDim : cfg_.hiddenDim;
}

const Matrix &
GnnModel::forward(const CsrGraph &a, const Matrix &x, bool training)
{
    return forwardFrom(0, a, x, training);
}

const Matrix &
GnnModel::forwardFrom(std::uint32_t first, const CsrGraph &a,
                      const Matrix &x, bool training,
                      const LayerHook &hook)
{
    checkInvariant(first < layers_.size(),
                   "GnnModel::forwardFrom: layer index out of range");
    acts_.resize(layers_.size() + 1);
    acts_[first] = x;
    for (std::size_t l = first; l < layers_.size(); ++l) {
        GnnLayer &layer = layers_[l];
        char tag[32];
        layerTag(tag, l);
        MAXK_TRACE_SCOPE("nn.layer.forward", tag);
        if (!hook) {
            layer.forward(a, acts_[l], acts_[l + 1], training, dropRng_);
            continue;
        }
        // Phase-split path: same arithmetic in the same order as
        // layer.forward(), with the hook at the activation seam.
        layer.forwardCompute(acts_[l], training, dropRng_);
        hook(static_cast<std::uint32_t>(l), layer);
        layer.forwardCombine(a, acts_[l + 1]);
    }
    return acts_.back();
}

void
GnnModel::backward(const CsrGraph &a, const Matrix &grad_logits)
{
    gradCur_ = grad_logits;
    for (std::size_t l = layers_.size(); l-- > 0;) {
        char tag[32];
        layerTag(tag, l);
        MAXK_TRACE_SCOPE("nn.layer.backward", tag);
        layers_[l].backward(a, gradCur_, gradPrev_);
        std::swap(gradCur_, gradPrev_);
    }
}

ParamRefs
GnnModel::params()
{
    ParamRefs refs;
    for (auto &layer : layers_)
        layer.collectParams(refs);
    return refs;
}

} // namespace maxk::nn
