#include "kernels/spmm_gnna.hh"

#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "gpusim/context.hh"

namespace maxk
{

gpusim::KernelStats
spmmGnna(const CsrGraph &a, const EdgeGroupPartition &part, const Matrix &x,
         Matrix &y, SimOptions opt)
{
    checkInvariant(x.rows() == a.numNodes(), "spmmGnna: X row count != |V|");
    checkInvariant(part.covers(a), "spmmGnna: partition does not cover A");
    const std::size_t dim = x.cols();
    // ensureShape: a shape-matching relaunch must not reallocate or
    // double-fill (the setZero below is the only write before accumulate).
    y.ensureShape(a.numNodes(), dim);
    y.setZero();

    if (opt.efficiency == 1.0)
        opt.efficiency = kGnnaEfficiency;

    gpusim::KernelContext ctx(opt.device, "spmm_gnna", opt.simulateCaches);
    ctx.beginPhase("compute+accumulate");

    // EG-parallel with row-aligned chunk boundaries: all EGs of one
    // adjacency row stay in one chunk, so each output row has a single
    // writer accumulating in serial EG order (bitwise-identical result).
    const auto chunks = rowAlignedChunks(part.groups(), 32,
                                         resolveThreads(opt.threads));
    gpusim::runSharded(ctx, chunks, [&](auto &dev, std::uint32_t,
                                        IndexRange egs) {
        // Row accumulator held in double across all of a row's EGs (the
        // row-aligned chunks guarantee they share one chunk), flushed
        // with a single cast at the row's last EG — reference-order
        // numerics, so the result is bitwise-identical to spmmReference.
        std::vector<double> buf(dim);
        for (std::size_t gi = egs.begin; gi < egs.end; ++gi) {
            const EdgeGroup &eg = part.groups()[gi];
            const std::uint64_t warp = gi + 1; // serial loop pre-increments
            const bool first_eg_of_row = eg.begin == a.rowPtr()[eg.row];
            const bool last_eg_of_row = eg.end == a.rowPtr()[eg.row + 1];
            // Neighbour-group metadata (group descriptor: row id + extent).
            dev.globalReadStreaming(warp, &eg, sizeof(EdgeGroup));
            dev.globalReadStreaming(warp, &a.values()[eg.begin],
                                    (eg.end - eg.begin) * sizeof(Float));
            dev.globalReadStreaming(warp, &a.colIdx()[eg.begin],
                                    (eg.end - eg.begin) * sizeof(NodeId));

            if (first_eg_of_row)
                std::fill(buf.begin(), buf.end(), 0.0);
            for (EdgeId e = eg.begin; e < eg.end; ++e) {
                const NodeId j = a.colIdx()[e];
                const Float v = a.values()[e];
                const Float *xr = x.row(j);
                dev.globalRead(warp, xr, dim * sizeof(Float));
                dev.flops(2 * dim);
                // Dense accumulation into the shared-memory staging
                // buffer: contiguous lanes, so it vectorises (4
                // elements/issue) — unlike the index-scattered
                // accumulation of SpGEMM.
                dev.sharedOps(dim / 4 + 1, dim * sizeof(Float));
                for (std::size_t d = 0; d < dim; ++d)
                    buf[d] += static_cast<double>(v) * xr[d];
            }

            // Atomic merge of the group's partial sum into global output;
            // groups beyond a row's first serialize on the same addresses.
            Float *yr = y.row(eg.row);
            if (last_eg_of_row)
                for (std::size_t d = 0; d < dim; ++d)
                    yr[d] = static_cast<Float>(buf[d]);
            dev.sharedOps(first_eg_of_row ? dim / 4 : 2 * dim, 0);
            dev.globalAtomicAccum(warp, yr, dim * sizeof(Float));
        }
    });
    return ctx.finish(opt.efficiency);
}

} // namespace maxk
