#include "kernels/spmm_outer_naive.hh"

#include "common/logging.hh"
#include "common/parallel.hh"
#include "core/transpose_gather.hh"
#include "gpusim/context.hh"

namespace maxk
{

gpusim::KernelStats
spmmOuterNaive(const CsrGraph &a, const Matrix &x, Matrix &y,
               const SimOptions &opt)
{
    checkInvariant(x.rows() == a.numNodes(),
                   "spmmOuterNaive: X row count != |V|");
    const std::size_t dim = x.cols();
    y.resize(a.numNodes(), dim);
    y.setZero();

    gpusim::KernelContext ctx(opt.device, "spmm_outer_naive",
                              opt.simulateCaches);
    ctx.beginPhase("compute+accumulate");

    // Scatter-shaped kernel: every source row writes arbitrary output
    // rows. The traffic walk (purely structural) shards over source
    // rows; the numeric side, when parallel, runs as a gather over the
    // stable transpose so each output element receives its
    // contributions in the exact serial edge order — bitwise-identical
    // results for any thread count. The single-chunk path keeps the
    // original fused loop.
    const auto chunks =
        splitRange(0, a.numNodes(), 16, resolveThreads(opt.threads));

    auto walk = [&](auto &dev, IndexRange rows, bool numeric) {
        for (std::size_t r = rows.begin; r < rows.end; ++r) {
            const NodeId i = static_cast<NodeId>(r);
            const std::uint64_t warp = r; // one warp per row, id == row
            const EdgeId begin = a.rowPtr()[i], end = a.rowPtr()[i + 1];
            if (begin == end)
                continue;
            dev.globalReadStreaming(warp, &a.values()[begin],
                                    (end - begin) * sizeof(Float));
            dev.globalReadStreaming(warp, &a.colIdx()[begin],
                                    (end - begin) * sizeof(NodeId));
            const Float *xr = x.row(i);
            for (EdgeId e = begin; e < end; ++e) {
                const NodeId j = a.colIdx()[e];
                const Float v = a.values()[e];
                // No prefetch: the dense input row is re-read per nonzero.
                dev.globalRead(warp, xr, dim * sizeof(Float));
                dev.flops(2 * dim);
                Float *yr = y.row(j);
                if (numeric) {
                    for (std::size_t d = 0; d < dim; ++d)
                        yr[d] += v * xr[d];
                }
                // Full dense output row accumulated atomically in global
                // memory; every nonzero of column j contends on it.
                dev.sharedOps(dim, 0);
                dev.globalAtomicAccum(warp, yr, dim * sizeof(Float));
            }
        }
    };

    if (chunks.size() <= 1) {
        if (!chunks.empty())
            walk(ctx, chunks[0], true);
        return ctx.finish(opt.efficiency);
    }

    gpusim::runSharded(ctx, chunks, [&](auto &dev, std::uint32_t,
                                        IndexRange rows) {
        walk(dev, rows, false);
    });

    gatherTransposedDense(a, x, y, opt.threads);
    return ctx.finish(opt.efficiency);
}

} // namespace maxk
