#include "kernels/spmm_outer_naive.hh"

#include "common/logging.hh"
#include "gpusim/context.hh"

namespace maxk
{

gpusim::KernelStats
spmmOuterNaive(const CsrGraph &a, const Matrix &x, Matrix &y,
               const SimOptions &opt)
{
    checkInvariant(x.rows() == a.numNodes(),
                   "spmmOuterNaive: X row count != |V|");
    const std::size_t dim = x.cols();
    y.resize(a.numNodes(), dim);
    y.setZero();

    gpusim::KernelContext ctx(opt.device, "spmm_outer_naive",
                              opt.simulateCaches);
    ctx.beginPhase("compute+accumulate");

    std::uint64_t warp = 0;
    for (NodeId i = 0; i < a.numNodes(); ++i, ++warp) {
        const EdgeId begin = a.rowPtr()[i], end = a.rowPtr()[i + 1];
        if (begin == end)
            continue;
        ctx.globalReadStreaming(warp, &a.values()[begin],
                       (end - begin) * sizeof(Float));
        ctx.globalReadStreaming(warp, &a.colIdx()[begin],
                       (end - begin) * sizeof(NodeId));
        const Float *xr = x.row(i);
        for (EdgeId e = begin; e < end; ++e) {
            const NodeId j = a.colIdx()[e];
            const Float v = a.values()[e];
            // No prefetch: the dense input row is re-read per nonzero.
            ctx.globalRead(warp, xr, dim * sizeof(Float));
            ctx.flops(2 * dim);
            Float *yr = y.row(j);
            for (std::size_t d = 0; d < dim; ++d)
                yr[d] += v * xr[d];
            // Full dense output row accumulated atomically in global
            // memory; every nonzero of column j contends on it.
            ctx.sharedOps(dim, 0);
            ctx.globalAtomicAccum(warp, yr, dim * sizeof(Float));
        }
    }
    return ctx.finish(opt.efficiency);
}

} // namespace maxk
