#include "kernels/spmm_row_caching.hh"

#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "gpusim/context.hh"
#include "kernels/eg_units.hh"
#include "kernels/spmm_ref.hh"

namespace maxk
{

gpusim::KernelStats
spmmRowCaching(const CsrGraph &a, const Matrix &x, Matrix &y,
               const SimOptions &opt)
{
    checkInvariant(x.rows() == a.numNodes(),
                   "spmmRowCaching: X row count != |V|");
    const std::size_t dim = x.cols();
    y.ensureShape(a.numNodes(), dim);

    const EdgeGroupPartition &part = a.edgeGroupsCached(opt.workloadCap);
    const std::vector<EdgeGroup> &groups = part.groups();
    const EdgeId tile_nnz = opt.workloadCap * kRowCacheTileGroups;
    const std::vector<kernels::EgUnit> tiles =
        kernels::planEgUnits(a, groups, tile_nnz);
    const std::vector<std::uint8_t> split =
        kernels::markSplitRows(groups, tiles, a.numNodes());

    // Staging budget: dense X rows the tile can pin on-chip. Half the
    // SM's shared memory goes to the row cache (the rest covers the
    // block's metadata buffers and occupancy headroom), so wide feature
    // dimensions shrink the cache — a selector-visible effect.
    const std::size_t row_bytes = dim * sizeof(Float);
    const std::size_t staged_cap =
        row_bytes ? opt.device.sharedMemPerSm / 2 / row_bytes : 0;

    // Numeric path: reference-order per-row double accumulation; the
    // tile/staging structure is an accounting concern only, so the
    // functional result is bitwise-identical to spmmReference at any
    // MAXK_THREADS.
    spmmReference(a, x, y);

    gpusim::KernelContext ctx(opt.device, "spmm_row_caching",
                              opt.simulateCaches);

    // Same pre-launch zeroing contract as the nnz-balanced variant:
    // empty rows and tile-straddling rows get no plain per-tile store.
    ctx.beginPhase("zero-fill");
    for (NodeId r = 0; r < a.numNodes(); ++r)
        if (a.degree(r) == 0 || split[r])
            ctx.globalWrite(r, y.row(r), dim * sizeof(Float));

    ctx.beginPhase("compute");
    // Tile-parallel traffic walk; chunks hold whole tiles, so the
    // aggregate charges and shard replay order are thread-invariant.
    const auto chunks =
        splitRange(0, tiles.size(), 8, resolveThreads(opt.threads));
    gpusim::runSharded(ctx, chunks, [&](auto &dev, std::uint32_t,
                                        IndexRange range) {
        // Tile-stamped scratch: seen/staged marks survive across tiles
        // without a per-tile clear (stamp = tile index + 1).
        std::vector<std::uint32_t> seen(a.numNodes(), 0);
        std::vector<std::uint32_t> staged(a.numNodes(), 0);
        for (std::size_t u = range.begin; u < range.end; ++u) {
            const kernels::EgUnit &tile = tiles[u];
            const std::uint64_t warp = u + 1;
            const std::uint32_t stamp = static_cast<std::uint32_t>(u + 1);
            const EdgeGroup &first = groups[tile.egBegin];
            const EdgeGroup &last = groups[tile.egEnd - 1];
            const EdgeId e0 = first.begin, e1 = last.end;

            // Block-coalesced metadata: one contiguous streaming request
            // per array per tile (as in the nnz-balanced schedule).
            dev.globalReadStreaming(
                warp, &a.rowPtr()[first.row],
                (last.row - first.row + 2) * sizeof(EdgeId));
            dev.globalReadStreaming(warp, &a.values()[e0],
                                    (e1 - e0) * sizeof(Float));
            dev.globalReadStreaming(warp, &a.colIdx()[e0],
                                    (e1 - e0) * sizeof(NodeId));
            // Stage/consume barrier bookkeeping for the block.
            dev.sharedOps(64, 0);

            std::size_t staged_count = 0;
            for (EdgeId e = e0; e < e1; ++e) {
                const NodeId j = a.colIdx()[e];
                if (seen[j] != stamp) {
                    seen[j] = stamp;
                    if (staged_count < staged_cap) {
                        // First touch within the tile: fetch the dense
                        // row once and pin it in shared memory.
                        staged[j] = stamp;
                        ++staged_count;
                        dev.globalRead(warp, x.row(j),
                                       dim * sizeof(Float));
                        dev.sharedOps(dim / 4, dim * sizeof(Float));
                    }
                }
                if (staged[j] == stamp) {
                    // Served from the staged copy: shared traffic only.
                    dev.sharedOps(dim / 4, dim * sizeof(Float));
                } else {
                    // Cache full (or never staged): direct global read.
                    dev.globalRead(warp, x.row(j), dim * sizeof(Float));
                }
                dev.flops(2 * dim);
            }

            // Write-back mirrors the nnz-balanced variant: plain store
            // per tile-local row, atomic merge for straddling rows.
            for (std::size_t gi = tile.egBegin; gi < tile.egEnd; ++gi) {
                const EdgeGroup &eg = groups[gi];
                const bool row_ends = gi + 1 == tile.egEnd ||
                                      groups[gi + 1].row != eg.row;
                if (!row_ends)
                    continue;
                if (split[eg.row])
                    dev.globalAtomicAccum(warp, y.row(eg.row),
                                          dim * sizeof(Float));
                else
                    dev.globalWrite(warp, y.row(eg.row),
                                    dim * sizeof(Float));
            }
        }
    });
    const double eff = opt.efficiency == 1.0 ? kRowCachingEfficiency
                                             : opt.efficiency;
    return ctx.finish(eff);
}

} // namespace maxk
