#include "kernels/spmm_fast.hh"

#include "common/parallel.hh"
#include "core/transpose_gather.hh"

namespace maxk
{

namespace
{
constexpr std::size_t kRowGrain = 16;
} // namespace

void
spmmRowWiseFast(const CsrGraph &a, const Matrix &x, Matrix &out)
{
    const std::size_t dim = x.cols();
    out.ensureShape(a.numNodes(), dim);
    out.setZero();
    parallelFor(0, a.numNodes(), kRowGrain,
                [&](std::uint32_t, std::size_t begin, std::size_t end) {
                    for (std::size_t r = begin; r < end; ++r) {
                        const NodeId i = static_cast<NodeId>(r);
                        Float *o = out.row(i);
                        for (EdgeId e = a.rowPtr()[i];
                             e < a.rowPtr()[i + 1]; ++e) {
                            const Float v = a.values()[e];
                            const Float *xr = x.row(a.colIdx()[e]);
                            for (std::size_t d = 0; d < dim; ++d)
                                o[d] += v * xr[d];
                        }
                    }
                });
}

void
spmmTransposedFast(const CsrGraph &a, const Matrix &x, Matrix &out)
{
    const std::size_t dim = x.cols();
    out.ensureShape(a.numNodes(), dim);
    out.setZero();
    if (resolveThreads(0) <= 1) {
        for (NodeId i = 0; i < a.numNodes(); ++i) {
            const Float *xr = x.row(i);
            for (EdgeId e = a.rowPtr()[i]; e < a.rowPtr()[i + 1]; ++e) {
                const Float v = a.values()[e];
                Float *o = out.row(a.colIdx()[e]);
                for (std::size_t d = 0; d < dim; ++d)
                    o[d] += v * xr[d];
            }
        }
        return;
    }

    // Scatter-shaped: bitwise-deterministic gather over the stable
    // transpose (see core/transpose_gather.hh).
    gatherTransposedDense(a, x, out);
}

} // namespace maxk
