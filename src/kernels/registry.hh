/**
 * @file
 * Kernel-variant registry: the single dispatch point for every SpMM
 * implementation in the tree.
 *
 * Each variant exposes two entry points behind one uniform signature:
 *
 *  - run():  the simulated kernel — real arithmetic plus roofline
 *            accounting, functional output bitwise-identical to
 *            spmmReference (double accumulation) at any MAXK_THREADS;
 *  - fast(): the functional training loop — fp32 accumulation, no
 *            device model. All forward variants share the same fast
 *            loops (the schedule only changes the traffic model), so
 *            training numerics are invariant under kernel selection.
 *
 * Call sites name variants by string ("spmm_row_wise", ...); "auto"
 * resolves through the adaptive selector (kernels/selector.hh). The
 * registry is enumerable so tests and benches can sweep every variant
 * without naming them one by one.
 */

#ifndef MAXK_KERNELS_REGISTRY_HH
#define MAXK_KERNELS_REGISTRY_HH

#include <span>
#include <string>
#include <string_view>

#include "gpusim/kernel_stats.hh"
#include "graph/csr.hh"
#include "kernels/sim_options.hh"
#include "tensor/matrix.hh"

namespace maxk::kernels
{

/** Uniform simulated-kernel signature. */
using SpmmSimFn = gpusim::KernelStats (*)(const CsrGraph &, const Matrix &,
                                          Matrix &, const SimOptions &);

/** Uniform functional fast-path signature. */
using SpmmFastFn = void (*)(const CsrGraph &, const Matrix &, Matrix &);

/** One registered SpMM implementation. */
struct KernelVariant
{
    std::string_view name;    //!< stable id ("spmm_row_wise", ...)
    std::string_view summary; //!< one-line description for CLIs/tables

    /** False for the golden reference: run() computes the product but
     *  reports no device stats — a zero-stats entry must never win a
     *  stats-based comparison, so it is also never selectable. */
    bool simulated = true;

    /** True for kernels computing Y = A^T * X (backward-shaped). */
    bool transposed = false;

    /** Candidate for the adaptive selector (forward, simulated). */
    bool selectable = false;

    SpmmSimFn run = nullptr;
    SpmmFastFn fast = nullptr;
};

/** All registered variants, in registration order. */
std::span<const KernelVariant> kernelRegistry();

/** Lookup by name; nullptr when unknown. */
const KernelVariant *findKernelVariant(std::string_view name);

/** Lookup by name; dies with the list of known names when unknown. */
const KernelVariant &kernelVariantOrDie(std::string_view name);

/** The static default forward variant ("spmm_row_wise"). */
const KernelVariant &defaultSpmmVariant();

/**
 * Resolve a configuration string to a forward variant: "" falls back to
 * the static default, "auto" consults the adaptive selector on the
 * graph's cached degree statistics, anything else must name a
 * registered selectable variant (dies otherwise).
 *
 * @param dim    feature width of the launch (selector feature)
 * @param k      MaxK width, 0 when the operand is dense
 * @param opt    provides the device (shared-memory budget feature)
 * @param reason when non-null, receives the selector's justification
 */
const KernelVariant &resolveSpmmVariant(std::string_view requested,
                                        const CsrGraph &g, std::size_t dim,
                                        std::uint32_t k = 0,
                                        const SimOptions &opt = {},
                                        std::string *reason = nullptr);

} // namespace maxk::kernels

#endif // MAXK_KERNELS_REGISTRY_HH
